// Package pfs implements the Pangea file system (paper §4): a user-level
// paged file layer that bypasses any OS-cache layering. A distributed file
// instance is associated with one locality set; on each worker node it is
// one PagedFile — a data file per disk drive (pages assigned round-robin
// when the node has multiple drives) plus a meta file that indexes each
// page's drive and offset. A locality-set page may have an on-disk image
// here, or not (transient write-back sets spill only under memory
// pressure), so the file holds an arbitrary subset of the set's pages.
package pfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"pangea/internal/disk"
	"pangea/internal/locking"
)

// PageLoc records where a page image lives: which drive and the byte offset
// within that drive's data file.
type PageLoc struct {
	Drive  int32
	Offset int64
}

// ErrNoPage is returned when reading a page that has no on-disk image.
var ErrNoPage = errors.New("pfs: page has no on-disk image")

// ErrNoSideObject is returned when reading a side object that was never
// written.
var ErrNoSideObject = errors.New("pfs: no such side object")

// ErrCorruptSideObject is returned when a side object's on-disk frame fails
// validation — a torn write (crash between truncate and the full payload
// landing), a bit flip, or an object written by something that is not
// WriteSideObject. Side objects are derived caches, so callers treat this
// as "rebuild", never as data loss — but unlike ErrNoSideObject it means a
// write happened and did not survive intact.
var ErrCorruptSideObject = errors.New("pfs: side object corrupt or torn")

const (
	metaMagic   = 0x50414E47 // "PANG"
	metaVersion = 1
)

// PagedFile is one node-local file instance of a locality set.
type PagedFile struct {
	name     string
	pageSize int64
	array    *disk.Array

	mu    locking.Mutex
	data  []*disk.File          // one per drive
	meta  *disk.File            // on drive 0
	pages map[int64]PageLoc     // page number -> location
	next  []int64               // per-drive append offset
	seq   int64                 // round-robin counter for new pages
	sides map[string]*disk.File // open side-object files by tag, on drive 0
}

// Create makes a new, empty paged file named name with the given page size.
func Create(array *disk.Array, name string, pageSize int64) (*PagedFile, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("pfs: invalid page size %d", pageSize)
	}
	pf := &PagedFile{
		name:     name,
		pageSize: pageSize,
		array:    array,
		pages:    make(map[int64]PageLoc),
		next:     make([]int64, array.Len()),
	}
	pf.mu.Init(locking.RankPFS)
	for i := 0; i < array.Len(); i++ {
		f, err := array.Disk(i).Create(name + ".data")
		if err != nil {
			_ = pf.closeAll()
			return nil, err
		}
		pf.data = append(pf.data, f)
	}
	meta, err := array.Disk(0).Create(name + ".meta")
	if err != nil {
		_ = pf.closeAll()
		return nil, err
	}
	pf.meta = meta
	return pf, nil
}

// Open re-attaches an existing paged file, reading the page index from the
// meta file. Used after restart and by durability tests.
func Open(array *disk.Array, name string) (*PagedFile, error) {
	pf := &PagedFile{
		name:  name,
		array: array,
		pages: make(map[int64]PageLoc),
		next:  make([]int64, array.Len()),
	}
	pf.mu.Init(locking.RankPFS)
	for i := 0; i < array.Len(); i++ {
		f, err := array.Disk(i).OpenFile(name + ".data")
		if err != nil {
			_ = pf.closeAll()
			return nil, err
		}
		pf.data = append(pf.data, f)
	}
	meta, err := array.Disk(0).OpenFile(name + ".meta")
	if err != nil {
		_ = pf.closeAll()
		return nil, err
	}
	pf.meta = meta
	if err := pf.loadMeta(); err != nil {
		_ = pf.closeAll()
		return nil, err
	}
	return pf, nil
}

// Name returns the file instance's name.
func (pf *PagedFile) Name() string { return pf.name }

// PageSize returns the fixed page size of the associated locality set.
func (pf *PagedFile) PageSize() int64 { return pf.pageSize }

// PlacePage returns the on-disk location of page pageNum, assigning one if
// the page has no image yet: new pages are appended to the next drive in
// round-robin order. The assignment is stable — a later failed write keeps
// the location, and a retry writes to the same extent. Placement is the
// only part of a page write that needs the index lock; the eviction
// daemon's spill pipeline places every victim first, groups them by
// PageLoc.Drive, and lets per-drive writers call WritePageAt concurrently.
func (pf *PagedFile) PlacePage(pageNum int64) PageLoc {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	loc, ok := pf.pages[pageNum]
	if !ok {
		drive := int32(pf.seq % int64(len(pf.data)))
		pf.seq++
		loc = PageLoc{Drive: drive, Offset: pf.next[drive]}
		pf.next[drive] += pf.pageSize
		pf.pages[pageNum] = loc
	}
	return loc
}

// WritePageAt persists data as the image of page pageNum at loc, which must
// come from PlacePage (or a prior read of the index). It takes no lock: the
// per-drive data files are immutable after Create/Open and the location is
// already assigned, so concurrent writers targeting different drives never
// serialize on the file — only on their own drive's time model.
func (pf *PagedFile) WritePageAt(loc PageLoc, pageNum int64, data []byte) error {
	if int64(len(data)) > pf.pageSize {
		return fmt.Errorf("pfs: page %d data %d bytes exceeds page size %d", pageNum, len(data), pf.pageSize)
	}
	if loc.Drive < 0 || int(loc.Drive) >= len(pf.data) {
		return fmt.Errorf("pfs: page %d location names drive %d of %d", pageNum, loc.Drive, len(pf.data))
	}
	// Pad to full page so every on-disk image has fixed extent.
	if int64(len(data)) < pf.pageSize {
		padded := make([]byte, pf.pageSize)
		copy(padded, data)
		data = padded
	}
	_, err := pf.data[loc.Drive].WriteAt(data, loc.Offset)
	return err
}

// WritePage persists the image of page pageNum. len(data) must not exceed
// the page size. Re-writing an existing page overwrites it in place; a new
// page is appended to the next drive in round-robin order.
func (pf *PagedFile) WritePage(pageNum int64, data []byte) error {
	if int64(len(data)) > pf.pageSize {
		// Reject before placement so an invalid write never claims an
		// index entry and a disk extent.
		return fmt.Errorf("pfs: page %d data %d bytes exceeds page size %d", pageNum, len(data), pf.pageSize)
	}
	return pf.WritePageAt(pf.PlacePage(pageNum), pageNum, data)
}

// Locate returns the on-disk location of page pageNum, or an ErrNoPage
// error when the page has no image. It is the read-side half of PlacePage:
// look the location up once under the index lock, then read the extent with
// ReadPageAt without it. Locations are stable — pages are never relocated —
// so a Locate result stays valid for the life of the file instance.
func (pf *PagedFile) Locate(pageNum int64) (PageLoc, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	loc, ok := pf.pages[pageNum]
	if !ok {
		return PageLoc{}, fmt.Errorf("%w: page %d of %s", ErrNoPage, pageNum, pf.name)
	}
	return loc, nil
}

// ReadPageAt reads the image of page pageNum from loc, which must come from
// Locate (or PlacePage). Like WritePageAt it takes no lock: the per-drive
// data files are immutable after Create/Open and the location is already
// known, so concurrent readers targeting different drives never serialize on
// the file — only on their own drive's time model. The prefetching read
// path's per-drive queues depend on this.
func (pf *PagedFile) ReadPageAt(loc PageLoc, pageNum int64, buf []byte) error {
	if int64(len(buf)) < pf.pageSize {
		return fmt.Errorf("pfs: buffer %d bytes smaller than page size %d", len(buf), pf.pageSize)
	}
	if loc.Drive < 0 || int(loc.Drive) >= len(pf.data) {
		return fmt.Errorf("pfs: page %d location names drive %d of %d", pageNum, loc.Drive, len(pf.data))
	}
	_, err := pf.data[loc.Drive].ReadAt(buf[:pf.pageSize], loc.Offset)
	return err
}

// ReadPage reads the image of page pageNum into buf, which must be at least
// the page size.
func (pf *PagedFile) ReadPage(pageNum int64, buf []byte) error {
	loc, err := pf.Locate(pageNum)
	if err != nil {
		return err
	}
	return pf.ReadPageAt(loc, pageNum, buf)
}

// HasPage reports whether page pageNum has an on-disk image.
func (pf *PagedFile) HasPage(pageNum int64) bool {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	_, ok := pf.pages[pageNum]
	return ok
}

// NumPages returns the number of pages with on-disk images.
func (pf *PagedFile) NumPages() int {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return len(pf.pages)
}

// PageNums returns the sorted page numbers that have on-disk images.
func (pf *PagedFile) PageNums() []int64 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	out := make([]int64, 0, len(pf.pages))
	for n := range pf.pages {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DiskBytes reports the total on-disk footprint of the file instance.
func (pf *PagedFile) DiskBytes() int64 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return int64(len(pf.pages)) * pf.pageSize
}

// FlushMeta persists the page index to the meta file. Pangea's meta file is
// small — the central manager stores only set-level metadata, and each
// node's meta file indexes only local pages (paper §4).
func (pf *PagedFile) FlushMeta() error {
	pf.mu.Lock()
	nums := make([]int64, 0, len(pf.pages))
	for n := range pf.pages {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	buf := make([]byte, 0, 32+len(nums)*20)
	var tmp [8]byte
	put64 := func(v int64) {
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		buf = append(buf, tmp[:]...)
	}
	put64(metaMagic)
	put64(metaVersion)
	put64(pf.pageSize)
	put64(int64(len(nums)))
	for _, n := range nums {
		loc := pf.pages[n]
		put64(n)
		put64(int64(loc.Drive))
		put64(loc.Offset)
	}
	meta := pf.meta
	pf.mu.Unlock()
	if err := meta.Truncate(0); err != nil {
		return err
	}
	if _, err := meta.WriteAt(buf, 0); err != nil {
		return err
	}
	return meta.Sync()
}

// loadMeta reads the page index back from the meta file.
func (pf *PagedFile) loadMeta() error {
	size, err := pf.meta.Size()
	if err != nil {
		return err
	}
	if size == 0 {
		return errors.New("pfs: empty meta file")
	}
	buf := make([]byte, size)
	if _, err := pf.meta.ReadAt(buf, 0); err != nil {
		return err
	}
	get64 := func(i int) int64 { return int64(binary.LittleEndian.Uint64(buf[i*8:])) }
	if get64(0) != metaMagic {
		return fmt.Errorf("pfs: bad meta magic in %s", pf.name)
	}
	if get64(1) != metaVersion {
		return fmt.Errorf("pfs: unsupported meta version %d", get64(1))
	}
	pf.pageSize = get64(2)
	count := get64(3)
	for i := int64(0); i < count; i++ {
		base := int(4 + i*3)
		num, drive, off := get64(base), get64(base+1), get64(base+2)
		pf.pages[num] = PageLoc{Drive: int32(drive), Offset: off}
		if end := off + pf.pageSize; end > pf.next[drive] {
			pf.next[drive] = end
		}
	}
	pf.seq = count
	return nil
}

// Side objects are small named companions of a file instance — per-set
// summaries like zone maps — stored as "<name>.<tag>" on drive 0 next to the
// meta file. They are caches derived from the page data: a reader that finds
// none (or a stale one) rebuilds, so side objects need none of the paging
// machinery — a whole-object write and a whole-object read suffice.

// sideFile returns the open handle for tag, opening or (when create is set)
// creating the on-disk file on demand. Caller holds pf.mu.
func (pf *PagedFile) sideFile(tag string, create bool) (*disk.File, error) {
	if f, ok := pf.sides[tag]; ok {
		return f, nil
	}
	name := pf.name + "." + tag
	if !create && !pf.array.Disk(0).Exists(name) {
		return nil, fmt.Errorf("%w: %s of %s", ErrNoSideObject, tag, pf.name)
	}
	f, err := pf.array.Disk(0).OpenFile(name)
	if err != nil {
		return nil, err
	}
	if pf.sides == nil {
		pf.sides = make(map[string]*disk.File)
	}
	pf.sides[tag] = f
	return f, nil
}

// Side objects are framed on disk so a torn write is detectable: a fixed
// header carrying the payload length and its CRC precedes the payload, and
// ReadSideObject re-verifies both. WriteSideObject still truncates then
// writes (side objects are rebuildable caches, so detection suffices —
// readers that find a torn frame get ErrCorruptSideObject and rebuild),
// but it writes the whole frame in one WriteAt so a crash can no longer
// leave a prefix of the new object that parses as a short valid one.
const (
	sideMagic      = 0x44495350 // "PSID"
	sideVersion    = 1
	sideHeaderSize = 4 + 4 + 8 + 4 // magic, version, payload length, payload crc32
)

// WriteSideObject replaces the contents of the named side object.
func (pf *PagedFile) WriteSideObject(tag string, data []byte) error {
	pf.mu.Lock()
	f, err := pf.sideFile(tag, true)
	pf.mu.Unlock()
	if err != nil {
		return err
	}
	frame := make([]byte, sideHeaderSize+len(data))
	le := binary.LittleEndian
	le.PutUint32(frame[0:4], sideMagic)
	le.PutUint32(frame[4:8], sideVersion)
	le.PutUint64(frame[8:16], uint64(len(data)))
	le.PutUint32(frame[16:20], crc32.ChecksumIEEE(data))
	copy(frame[sideHeaderSize:], data)
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt(frame, 0); err != nil {
		return err
	}
	return f.Sync()
}

// ReadSideObject returns the full contents of the named side object, an
// error wrapping ErrNoSideObject when it was never written, or one wrapping
// ErrCorruptSideObject when the on-disk frame fails validation (torn or
// corrupted object — rebuild it).
func (pf *PagedFile) ReadSideObject(tag string) ([]byte, error) {
	pf.mu.Lock()
	f, err := pf.sideFile(tag, false)
	pf.mu.Unlock()
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < sideHeaderSize {
		return nil, fmt.Errorf("%w: %s of %s is %d bytes, shorter than the %d-byte frame header",
			ErrCorruptSideObject, tag, pf.name, size, sideHeaderSize)
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:4]) != sideMagic {
		return nil, fmt.Errorf("%w: %s of %s has bad frame magic", ErrCorruptSideObject, tag, pf.name)
	}
	if v := le.Uint32(buf[4:8]); v != sideVersion {
		return nil, fmt.Errorf("%w: %s of %s has frame version %d", ErrCorruptSideObject, tag, pf.name, v)
	}
	plen := le.Uint64(buf[8:16])
	if plen != uint64(size-sideHeaderSize) {
		return nil, fmt.Errorf("%w: %s of %s claims %d payload bytes, file holds %d",
			ErrCorruptSideObject, tag, pf.name, plen, size-sideHeaderSize)
	}
	payload := buf[sideHeaderSize:]
	if crc32.ChecksumIEEE(payload) != le.Uint32(buf[16:20]) {
		return nil, fmt.Errorf("%w: %s of %s fails its checksum", ErrCorruptSideObject, tag, pf.name)
	}
	return payload, nil
}

// closeAll closes every underlying file and returns the first close
// error. Error-path callers discard the result deliberately (the original
// error wins); Close propagates it, since a failed close of a written data
// file can mean lost bytes.
func (pf *PagedFile) closeAll() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	for _, f := range pf.data {
		if f != nil {
			keep(f.Close())
		}
	}
	if pf.meta != nil {
		keep(pf.meta.Close())
	}
	for _, f := range pf.sides {
		keep(f.Close())
	}
	return first
}

// Close closes all underlying files after flushing the meta index.
func (pf *PagedFile) Close() error {
	if err := pf.FlushMeta(); err != nil {
		return err
	}
	return pf.closeAll()
}

// Remove deletes the file instance from all drives. The data is gone; used
// when a locality set's lifetime ends or a set is dropped.
func (pf *PagedFile) Remove() error {
	var first error
	for _, f := range pf.data {
		if err := f.Remove(); err != nil && first == nil {
			first = err
		}
	}
	if err := pf.meta.Remove(); err != nil && first == nil {
		first = err
	}
	for _, f := range pf.sides {
		if err := f.Remove(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
