package pfs

import (
	"bytes"
	"errors"
	"testing"

	"pangea/internal/disk"
)

// TestSideObjectRoundTrip: whole-object write/read, overwrite with a
// shorter payload (no stale tail), multiple independent tags, and
// ErrNoSideObject for tags never written.
func TestSideObjectRoundTrip(t *testing.T) {
	a := newArray(t, 2)
	pf, err := Create(a, "set1", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Remove()

	if _, err := pf.ReadSideObject("zmap"); !errors.Is(err, ErrNoSideObject) {
		t.Fatalf("read of unwritten side object = %v, want ErrNoSideObject", err)
	}
	want := bytes.Repeat([]byte{0xA5}, 1000)
	if err := pf.WriteSideObject("zmap", want); err != nil {
		t.Fatal(err)
	}
	got, err := pf.ReadSideObject("zmap")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("side object round-trip mismatch")
	}
	// Overwrite with a shorter object: the old tail must not survive.
	short := []byte("short")
	if err := pf.WriteSideObject("zmap", short); err != nil {
		t.Fatal(err)
	}
	if got, err = pf.ReadSideObject("zmap"); err != nil || !bytes.Equal(got, short) {
		t.Fatalf("after shrink: %q err %v, want %q", got, err, short)
	}
	// Tags are independent.
	if err := pf.WriteSideObject("other", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, _ = pf.ReadSideObject("zmap"); !bytes.Equal(got, short) {
		t.Error("writing one tag disturbed another")
	}
}

// TestSideObjectSurvivesReopen: side objects persist with the file instance
// and come back after Close/Open — the restart path zone maps rely on.
func TestSideObjectSurvivesReopen(t *testing.T) {
	a := newArray(t, 1)
	pf, err := Create(a, "set1", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.WritePage(0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	want := []byte("persisted summary")
	if err := pf.WriteSideObject("zmap", want); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	pf2, err := Open(a, "set1")
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Remove()
	got, err := pf2.ReadSideObject("zmap")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("after reopen: %q, want %q", got, want)
	}
}

// TestSideObjectRejectsTornWrites: a crash between WriteSideObject's
// truncate and the full frame landing leaves a torn object; the frame's
// length+checksum header makes every such state — empty file, truncated
// payload, flipped byte — fail the read deterministically with
// ErrCorruptSideObject instead of handing a prefix to the decoder.
func TestSideObjectRejectsTornWrites(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5A, 0x3C}, 500)
	corrupt := func(t *testing.T, mutate func(f *disk.File, size int64) error) {
		t.Helper()
		a := newArray(t, 2)
		pf, err := Create(a, "set1", 4096)
		if err != nil {
			t.Fatal(err)
		}
		defer pf.Remove()
		if err := pf.WriteSideObject("zmap", payload); err != nil {
			t.Fatal(err)
		}
		// Tear the object behind the paged file's back, as a crash would.
		f, err := a.Disk(0).OpenFile("set1.zmap")
		if err != nil {
			t.Fatal(err)
		}
		size, err := f.Size()
		if err != nil {
			t.Fatal(err)
		}
		if err := mutate(f, size); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		// Reopen the instance so the read sees only the on-disk state.
		if err := pf.Close(); err != nil {
			t.Fatal(err)
		}
		pf2, err := Open(a, "set1")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pf2.ReadSideObject("zmap"); !errors.Is(err, ErrCorruptSideObject) {
			t.Fatalf("read of torn side object = %v, want ErrCorruptSideObject", err)
		}
	}
	t.Run("truncate-then-crash", func(t *testing.T) {
		// Crash right after the truncate: the file exists but is empty.
		corrupt(t, func(f *disk.File, _ int64) error { return f.Truncate(0) })
	})
	t.Run("partial-frame", func(t *testing.T) {
		// Crash mid-write: only a prefix of the new frame landed.
		corrupt(t, func(f *disk.File, size int64) error { return f.Truncate(size / 2) })
	})
	t.Run("flipped-byte", func(t *testing.T) {
		corrupt(t, func(f *disk.File, size int64) error {
			_, err := f.WriteAt([]byte{0xFF}, size-3)
			return err
		})
	})
	t.Run("header-only", func(t *testing.T) {
		// Everything but the payload landed: length check must fire.
		corrupt(t, func(f *disk.File, _ int64) error { return f.Truncate(20) })
	})
}

// TestSideObjectWriteFaultLeavesDetectableState: a write that fails mid
// WriteSideObject (injected drive fault after the truncate) must not leave
// a state a later reader accepts.
func TestSideObjectWriteFaultLeavesDetectableState(t *testing.T) {
	a := newArray(t, 1)
	pf, err := Create(a, "set1", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Remove()
	if err := pf.WriteSideObject("zmap", []byte("good object")); err != nil {
		t.Fatal(err)
	}
	a.Disk(0).SetWriteFault(func() error { return errors.New("drive gone") })
	err = pf.WriteSideObject("zmap", []byte("replacement that never lands"))
	a.Disk(0).SetWriteFault(nil)
	if err == nil {
		t.Fatal("WriteSideObject succeeded through a write fault")
	}
	// The failed replacement truncated the old object away; the reader must
	// report corruption, not silently return an empty or partial object.
	if _, err := pf.ReadSideObject("zmap"); !errors.Is(err, ErrCorruptSideObject) {
		t.Fatalf("read after failed replacement = %v, want ErrCorruptSideObject", err)
	}
}

// TestRemoveDeletesSideObjects: Remove takes the instance's side objects
// with it, so a recreated same-named set does not inherit them.
func TestRemoveDeletesSideObjects(t *testing.T) {
	a := newArray(t, 1)
	pf, err := Create(a, "set1", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.WriteSideObject("zmap", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := pf.Remove(); err != nil {
		t.Fatal(err)
	}
	pf2, err := Create(a, "set1", 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Remove()
	if _, err := pf2.ReadSideObject("zmap"); !errors.Is(err, ErrNoSideObject) {
		t.Fatalf("recreated set inherited a side object: err %v, want ErrNoSideObject", err)
	}
}
