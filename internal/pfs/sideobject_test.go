package pfs

import (
	"bytes"
	"errors"
	"testing"
)

// TestSideObjectRoundTrip: whole-object write/read, overwrite with a
// shorter payload (no stale tail), multiple independent tags, and
// ErrNoSideObject for tags never written.
func TestSideObjectRoundTrip(t *testing.T) {
	a := newArray(t, 2)
	pf, err := Create(a, "set1", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Remove()

	if _, err := pf.ReadSideObject("zmap"); !errors.Is(err, ErrNoSideObject) {
		t.Fatalf("read of unwritten side object = %v, want ErrNoSideObject", err)
	}
	want := bytes.Repeat([]byte{0xA5}, 1000)
	if err := pf.WriteSideObject("zmap", want); err != nil {
		t.Fatal(err)
	}
	got, err := pf.ReadSideObject("zmap")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("side object round-trip mismatch")
	}
	// Overwrite with a shorter object: the old tail must not survive.
	short := []byte("short")
	if err := pf.WriteSideObject("zmap", short); err != nil {
		t.Fatal(err)
	}
	if got, err = pf.ReadSideObject("zmap"); err != nil || !bytes.Equal(got, short) {
		t.Fatalf("after shrink: %q err %v, want %q", got, err, short)
	}
	// Tags are independent.
	if err := pf.WriteSideObject("other", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, _ = pf.ReadSideObject("zmap"); !bytes.Equal(got, short) {
		t.Error("writing one tag disturbed another")
	}
}

// TestSideObjectSurvivesReopen: side objects persist with the file instance
// and come back after Close/Open — the restart path zone maps rely on.
func TestSideObjectSurvivesReopen(t *testing.T) {
	a := newArray(t, 1)
	pf, err := Create(a, "set1", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.WritePage(0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	want := []byte("persisted summary")
	if err := pf.WriteSideObject("zmap", want); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	pf2, err := Open(a, "set1")
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Remove()
	got, err := pf2.ReadSideObject("zmap")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("after reopen: %q, want %q", got, want)
	}
}

// TestRemoveDeletesSideObjects: Remove takes the instance's side objects
// with it, so a recreated same-named set does not inherit them.
func TestRemoveDeletesSideObjects(t *testing.T) {
	a := newArray(t, 1)
	pf, err := Create(a, "set1", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.WriteSideObject("zmap", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := pf.Remove(); err != nil {
		t.Fatal(err)
	}
	pf2, err := Create(a, "set1", 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Remove()
	if _, err := pf2.ReadSideObject("zmap"); !errors.Is(err, ErrNoSideObject) {
		t.Fatalf("recreated set inherited a side object: err %v, want ErrNoSideObject", err)
	}
}
