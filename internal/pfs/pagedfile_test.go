package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"pangea/internal/disk"
)

func newArray(t *testing.T, n int) *disk.Array {
	t.Helper()
	a, err := disk.NewArray(t.TempDir(), n, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestWriteReadPage(t *testing.T) {
	a := newArray(t, 1)
	pf, err := Create(a, "set1", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Remove()
	want := bytes.Repeat([]byte{0x5A}, 4096)
	if err := pf.WritePage(7, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := pf.ReadPage(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page round-trip mismatch")
	}
}

func TestReadMissingPage(t *testing.T) {
	a := newArray(t, 1)
	pf, _ := Create(a, "set1", 4096)
	defer pf.Remove()
	err := pf.ReadPage(3, make([]byte, 4096))
	if err == nil {
		t.Fatal("expected error for missing page")
	}
}

func TestOverwriteInPlace(t *testing.T) {
	a := newArray(t, 1)
	pf, _ := Create(a, "set1", 1024)
	defer pf.Remove()
	pf.WritePage(0, bytes.Repeat([]byte{1}, 1024))
	pf.WritePage(0, bytes.Repeat([]byte{2}, 1024))
	if pf.NumPages() != 1 {
		t.Fatalf("NumPages = %d after overwrite, want 1", pf.NumPages())
	}
	got := make([]byte, 1024)
	pf.ReadPage(0, got)
	if got[0] != 2 {
		t.Fatalf("read %d, want overwritten value 2", got[0])
	}
}

func TestShortPagePadded(t *testing.T) {
	a := newArray(t, 1)
	pf, _ := Create(a, "set1", 1024)
	defer pf.Remove()
	if err := pf.WritePage(0, []byte("short")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1024)
	if err := pf.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "short" {
		t.Fatalf("prefix = %q", got[:5])
	}
}

func TestOversizedPageRejected(t *testing.T) {
	a := newArray(t, 1)
	pf, _ := Create(a, "set1", 64)
	defer pf.Remove()
	if err := pf.WritePage(0, make([]byte, 65)); err == nil {
		t.Fatal("expected error for oversized page")
	}
}

func TestMultiDiskDistribution(t *testing.T) {
	a := newArray(t, 2)
	pf, _ := Create(a, "set1", 512)
	defer pf.Remove()
	for i := int64(0); i < 8; i++ {
		pf.WritePage(i, bytes.Repeat([]byte{byte(i)}, 512))
	}
	s0, s1 := a.Disk(0).Stats(), a.Disk(1).Stats()
	if s0.BytesWritten == 0 || s1.BytesWritten == 0 {
		t.Fatalf("pages not distributed: disk0=%d disk1=%d bytes", s0.BytesWritten, s1.BytesWritten)
	}
	// All pages must still read back correctly.
	buf := make([]byte, 512)
	for i := int64(0); i < 8; i++ {
		if err := pf.ReadPage(i, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("page %d corrupted across disks", i)
		}
	}
}

func TestMetaPersistence(t *testing.T) {
	a := newArray(t, 2)
	pf, _ := Create(a, "set1", 256)
	for i := int64(0); i < 5; i++ {
		pf.WritePage(i*10, bytes.Repeat([]byte{byte(i + 1)}, 256))
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(a, "set1")
	if err != nil {
		t.Fatal(err)
	}
	defer re.Remove()
	if re.PageSize() != 256 {
		t.Fatalf("PageSize = %d after reopen, want 256", re.PageSize())
	}
	if re.NumPages() != 5 {
		t.Fatalf("NumPages = %d after reopen, want 5", re.NumPages())
	}
	buf := make([]byte, 256)
	for i := int64(0); i < 5; i++ {
		if err := re.ReadPage(i*10, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d wrong after reopen: %d", i*10, buf[0])
		}
	}
	// New pages appended after reopen must not clobber existing ones.
	if err := re.WritePage(999, bytes.Repeat([]byte{0xEE}, 256)); err != nil {
		t.Fatal(err)
	}
	re.ReadPage(0, buf)
	if buf[0] != 1 {
		t.Fatal("append after reopen clobbered existing page")
	}
}

func TestPageNumsSorted(t *testing.T) {
	a := newArray(t, 1)
	pf, _ := Create(a, "s", 64)
	defer pf.Remove()
	for _, n := range []int64{5, 1, 9, 3} {
		pf.WritePage(n, []byte{byte(n)})
	}
	nums := pf.PageNums()
	want := []int64{1, 3, 5, 9}
	for i := range want {
		if nums[i] != want[i] {
			t.Fatalf("PageNums = %v, want %v", nums, want)
		}
	}
}

func TestDiskBytes(t *testing.T) {
	a := newArray(t, 1)
	pf, _ := Create(a, "s", 1024)
	defer pf.Remove()
	pf.WritePage(0, []byte{1})
	pf.WritePage(1, []byte{2})
	if got := pf.DiskBytes(); got != 2048 {
		t.Fatalf("DiskBytes = %d, want 2048", got)
	}
}

// Property: any sequence of page writes (numbers and payload seeds) reads
// back the last value written for every page, across 1..3 disks.
func TestPagedFileProperty(t *testing.T) {
	prop := func(pageNums []uint8, disks uint8) bool {
		nd := int(disks%3) + 1
		a, err := disk.NewArray(t.TempDir(), nd, disk.Unthrottled())
		if err != nil {
			return false
		}
		defer a.RemoveAll()
		pf, err := Create(a, "p", 128)
		if err != nil {
			return false
		}
		defer pf.Remove()
		last := map[int64]byte{}
		for i, pn := range pageNums {
			n := int64(pn % 16)
			v := byte(i + 1)
			if err := pf.WritePage(n, bytes.Repeat([]byte{v}, 128)); err != nil {
				return false
			}
			last[n] = v
		}
		buf := make([]byte, 128)
		for n, v := range last {
			if err := pf.ReadPage(n, buf); err != nil {
				return false
			}
			for _, b := range buf {
				if b != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestManyFilesShareArray(t *testing.T) {
	a := newArray(t, 2)
	var files []*PagedFile
	for i := 0; i < 4; i++ {
		pf, err := Create(a, fmt.Sprintf("set%d", i), 256)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, pf)
		pf.WritePage(0, []byte{byte(i + 1)})
	}
	buf := make([]byte, 256)
	for i, pf := range files {
		if err := pf.ReadPage(0, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("file %d corrupted by sibling files", i)
		}
		pf.Remove()
	}
}

func TestPlacePageStableRoundRobin(t *testing.T) {
	a := newArray(t, 3)
	pf, _ := Create(a, "s", 256)
	defer pf.Remove()
	perDrive := map[int32]int{}
	for i := int64(0); i < 9; i++ {
		loc := pf.PlacePage(i)
		perDrive[loc.Drive]++
		if again := pf.PlacePage(i); again != loc {
			t.Fatalf("page %d placement moved: %+v then %+v", i, loc, again)
		}
	}
	for d := int32(0); d < 3; d++ {
		if perDrive[d] != 3 {
			t.Fatalf("drive %d got %d of 9 pages, want 3 (round-robin)", d, perDrive[d])
		}
	}
}

// TestWritePageAtConcurrentAcrossDrives drives the spill pipeline's usage:
// place every page first, then write the images from one goroutine per
// drive concurrently, and verify all of them read back.
func TestWritePageAtConcurrentAcrossDrives(t *testing.T) {
	const pages, pageSize = 12, 256
	a := newArray(t, 3)
	pf, _ := Create(a, "s", pageSize)
	defer pf.Remove()
	byDrive := map[int32][]int64{}
	locs := make([]PageLoc, pages)
	for i := int64(0); i < pages; i++ {
		locs[i] = pf.PlacePage(i)
		byDrive[locs[i].Drive] = append(byDrive[locs[i].Drive], i)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(byDrive))
	for _, nums := range byDrive {
		wg.Add(1)
		go func(nums []int64) {
			defer wg.Done()
			for _, n := range nums {
				if err := pf.WritePageAt(locs[n], n, bytes.Repeat([]byte{byte(n + 1)}, pageSize)); err != nil {
					errs <- err
					return
				}
			}
		}(nums)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	buf := make([]byte, pageSize)
	for i := int64(0); i < pages; i++ {
		if err := pf.ReadPage(i, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d = %d after concurrent write-back, want %d", i, buf[0], i+1)
		}
	}
}

func TestWritePageAtRejectsBadDrive(t *testing.T) {
	a := newArray(t, 1)
	pf, _ := Create(a, "s", 64)
	defer pf.Remove()
	if err := pf.WritePageAt(PageLoc{Drive: 5}, 0, []byte{1}); err == nil {
		t.Fatal("expected error for out-of-range drive")
	}
	if err := pf.WritePageAt(PageLoc{Drive: 0}, 0, make([]byte, 65)); err == nil {
		t.Fatal("expected error for oversized data")
	}
}

// TestLocateReadPageAt exercises the split read path: Locate under the index
// lock, then lock-free ReadPageAt against the returned location. The
// location must stay valid across overwrites (pages are never relocated),
// and a missing page must fail Locate with ErrNoPage.
func TestLocateReadPageAt(t *testing.T) {
	a := newArray(t, 2)
	pf, err := Create(a, "set1", 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Remove()
	for num := int64(0); num < 4; num++ {
		if err := pf.WritePage(num, bytes.Repeat([]byte{byte(num + 1)}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	for num := int64(0); num < 4; num++ {
		loc, err := pf.Locate(num)
		if err != nil {
			t.Fatalf("Locate(%d): %v", num, err)
		}
		got := make([]byte, 1024)
		if err := pf.ReadPageAt(loc, num, got); err != nil {
			t.Fatalf("ReadPageAt(%d): %v", num, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(num + 1)}, 1024)) {
			t.Fatalf("page %d round-trip mismatch via Locate/ReadPageAt", num)
		}
	}
	// Locations survive an in-place overwrite.
	loc, _ := pf.Locate(2)
	if err := pf.WritePage(2, bytes.Repeat([]byte{0xEE}, 1024)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1024)
	if err := pf.ReadPageAt(loc, 2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0xEE}, 1024)) {
		t.Fatal("stale location after overwrite: pages must never relocate")
	}
	if _, err := pf.Locate(99); !errors.Is(err, ErrNoPage) {
		t.Fatalf("Locate(99) = %v, want ErrNoPage", err)
	}
	if err := pf.ReadPageAt(loc, 2, make([]byte, 512)); err == nil {
		t.Fatal("ReadPageAt accepted an undersized buffer")
	}
}

// TestClosePropagatesCloseError: Close must surface errors from closing the
// underlying files (a failed close of a written data file can mean lost
// bytes). A second Close hits already-closed files, the portable way to
// force that path — before the pangea-lint errdrop fix, closeAll swallowed
// these errors entirely.
func TestClosePropagatesCloseError(t *testing.T) {
	a := newArray(t, 2)
	pf, err := Create(a, "closeme", 512)
	if err != nil {
		t.Fatal(err)
	}
	loc := pf.PlacePage(0)
	if err := pf.WritePageAt(loc, 0, bytes.Repeat([]byte{7}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := pf.closeAll(); err == nil {
		t.Fatal("closeAll on closed files returned nil, want error")
	}
}
