package tpch

import (
	"os"

	"pangea/internal/cluster"
	"pangea/internal/core"
	"pangea/internal/query"
	"pangea/internal/services"
)

// Lineitem column indices into the columnar schema, in record order. The
// widths mirror the fixed offsets in schema.go exactly, so a columnar
// page's reconstructed rows are byte-identical to row-layout records and
// every row accessor keeps working through the WalkPage compatibility path.
const (
	LiColOrderKey = iota
	LiColPartKey
	LiColSuppKey
	LiColLineNumber
	LiColQuantity
	LiColExtendedPrice
	LiColDiscount
	LiColTax
	LiColReturnFlag
	LiColLineStatus
	LiColShipDate
	LiColCommitDate
	LiColReceiptDate
	LiColShipMode
	LiColShipInstruct
)

// LineitemSchema describes lineitem's fixed-width columns for
// core.SetSpec.Columns / the services columnar writer.
func LineitemSchema() []services.ColumnSpec {
	return services.MakeSchema(
		[]string{"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
			"l_quantity", "l_extendedprice", "l_discount", "l_tax",
			"l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
			"l_receiptdate", "l_shipmode", "l_shipinstruct"},
		[]int{8, 8, 8, 4, 4, 8, 8, 8, 1, 1, 2, 2, 2, 1, 1},
	)
}

// ColumnarDefault reports whether TPC-H loads should default the lineitem
// set to LayoutColumnar, controlled by the PANGEA_COLUMNAR=1 environment
// toggle (CI runs the query/tpch suites under both values).
func ColumnarDefault() bool { return os.Getenv("PANGEA_COLUMNAR") == "1" }

// lineitemColumnar reports whether the deployment's lineitem sets were
// loaded columnar (Load creates the set uniformly on every node, so node 0
// speaks for all).
func (r *Runner) lineitemColumnar() bool {
	s, err := r.E.Set(0, "lineitem")
	return err == nil && s.Layout() == core.LayoutColumnar
}

// addF64s element-wise adds vectors of little-endian float64s — the batch
// specs' Combine, matching f64Spec's.
func addF64s(dst, src []byte) {
	for i := 0; i+8 <= len(dst); i += 8 {
		putF64(dst[i:], getF64(dst[i:])+getF64(src[i:]))
	}
}

// q01Batch is Q01 over columnar lineitem: per node, a batch pipeline
// (shipdate selection kernel → five-metric fold over selected lanes into
// per-thread partial maps), merged across nodes like any aggregate. The
// predicate is the same q01Pred the row plan uses — here it compiles to
// the selection kernels and, with zone maps on, the page prune.
func (r *Runner) q01Batch() (Result, error) {
	spec := query.BatchAggSpec{
		Key: func(b *query.Batch, row int, dst []byte) []byte {
			return append(dst, b.Byte(LiColReturnFlag, row), b.Byte(LiColLineStatus, row))
		},
		ValSize: 40,
		Accumulate: func(b *query.Batch, row int, val []byte) {
			price := b.F64(LiColExtendedPrice, row)
			disc := price * (1 - b.F64(LiColDiscount, row))
			putF64(val[0:], getF64(val[0:])+float64(b.U32(LiColQuantity, row)))
			putF64(val[8:], getF64(val[8:])+price)
			putF64(val[16:], getF64(val[16:])+disc)
			putF64(val[24:], getF64(val[24:])+disc*(1+b.F64(LiColTax, row)))
			putF64(val[32:], getF64(val[32:])+1)
		},
		Combine: addF64s,
	}
	m, err := r.E.DistributedMerge(func(node int, _ *cluster.Worker) (map[string][]byte, error) {
		s, err := r.E.Set(node, "lineitem")
		if err != nil {
			return nil, err
		}
		return query.ScanSpec{Set: s, Threads: r.Threads, Pred: q01Pred()}.AggBatches(nil, spec)
	}, spec.Combine)
	if err != nil {
		return nil, err
	}
	return decodeF64s(m), nil
}

// q06Batch is Q06 over columnar lineitem: three selection kernels narrow
// each batch (shipdate band, discount band, quantity cap), then only the
// surviving lanes' price and discount columns are touched.
func (r *Runner) q06Batch() (Result, error) {
	spec := query.BatchAggSpec{
		Key: func(_ *query.Batch, _ int, dst []byte) []byte {
			return append(dst, starKey...)
		},
		ValSize: 8,
		Accumulate: func(b *query.Batch, row int, val []byte) {
			putF64(val, getF64(val)+b.F64(LiColExtendedPrice, row)*b.F64(LiColDiscount, row))
		},
		Combine: addF64s,
	}
	m, err := r.E.DistributedMerge(func(node int, _ *cluster.Worker) (map[string][]byte, error) {
		s, err := r.E.Set(node, "lineitem")
		if err != nil {
			return nil, err
		}
		return query.ScanSpec{Set: s, Threads: r.Threads, Pred: q06Pred()}.AggBatches(nil, spec)
	}, spec.Combine)
	if err != nil {
		return nil, err
	}
	return decodeF64s(m), nil
}
