package tpch

import "math"

// rng is a splitmix64 generator: deterministic, seedable, allocation-free.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

// rangeF returns a uniform float in [lo, hi).
func (r *rng) rangeF(lo, hi float64) float64 { return lo + (hi-lo)*r.f64() }

// Data holds one generated TPC-H database in memory, encoded rows per
// table, ready for dispatch into Pangea or a baseline.
type Data struct {
	ScaleFactor float64
	Lineitem    [][]byte
	Orders      [][]byte
	Customer    [][]byte
	Part        [][]byte
	Supplier    [][]byte
	PartSupp    [][]byte
}

// Counts reports the table cardinalities.
func (d *Data) Counts() map[string]int {
	return map[string]int{
		"lineitem": len(d.Lineitem),
		"orders":   len(d.Orders),
		"customer": len(d.Customer),
		"part":     len(d.Part),
		"supplier": len(d.Supplier),
		"partsupp": len(d.PartSupp),
	}
}

// TotalBytes sums the encoded sizes of every table.
func (d *Data) TotalBytes() int64 {
	var n int64
	for _, t := range [][][]byte{d.Lineitem, d.Orders, d.Customer, d.Part, d.Supplier, d.PartSupp} {
		for _, r := range t {
			n += int64(len(r))
		}
	}
	return n
}

// Generate builds a deterministic TPC-H database at the given scale factor
// using dbgen's cardinality ratios: SF×1.5M orders with 1–7 lineitems each,
// SF×150K customers, SF×200K parts with 4 partsupps each, SF×10K suppliers.
// Column distributions carry the selectivities the nine benchmark queries
// depend on (date ranges, discount/quantity bands, enum frequencies).
func Generate(sf float64, seed uint64) *Data {
	r := newRng(seed)
	scale := func(base int) int {
		n := int(math.Round(float64(base) * sf))
		if n < 1 {
			n = 1
		}
		return n
	}
	numOrders := scale(1_500_000)
	numCustomers := scale(150_000)
	numParts := scale(200_000)
	numSuppliers := scale(10_000)

	d := &Data{ScaleFactor: sf}

	// customer
	for i := 0; i < numCustomers; i++ {
		c := Customer{
			CustKey:    uint64(i + 1),
			AcctBal:    r.rangeF(-999.99, 9999.99),
			PhoneCode:  uint16(10 + r.intn(25)),
			MktSegment: byte(r.intn(5)),
		}
		rec := make([]byte, CustomerSize)
		c.Encode(rec)
		d.Customer = append(d.Customer, rec)
	}

	// supplier
	for i := 0; i < numSuppliers; i++ {
		s := Supplier{
			SuppKey:   uint64(i + 1),
			AcctBal:   r.rangeF(-999.99, 9999.99),
			NationKey: byte(r.intn(NationCount)),
		}
		rec := make([]byte, SupplierSize)
		s.Encode(rec)
		d.Supplier = append(d.Supplier, rec)
	}

	// part + partsupp
	for i := 0; i < numParts; i++ {
		p := Part{
			PartKey:    uint64(i + 1),
			Brand:      byte(r.intn(25)),
			Container:  byte(r.intn(40)),
			Promo:      r.intn(5) == 0,
			Size:       byte(1 + r.intn(50)),
			TypeSuffix: byte(r.intn(15)),
		}
		rec := make([]byte, PartSize)
		p.Encode(rec)
		d.Part = append(d.Part, rec)
		for j := 0; j < 4; j++ {
			ps := PartSupp{
				PartKey:    p.PartKey,
				SuppKey:    uint64(1 + (int(p.PartKey)+j*numParts/4)%numSuppliers),
				SupplyCost: r.rangeF(1, 1000),
			}
			rec := make([]byte, PartSuppSize)
			ps.Encode(rec)
			d.PartSupp = append(d.PartSupp, rec)
		}
	}

	// orders + lineitem. Order dates span the full 7-year range minus the
	// trailing 151 days dbgen reserves so lineitem dates stay in range.
	for i := 0; i < numOrders; i++ {
		orderDate := uint16(r.intn(DatesTotal - 151))
		o := Orders{
			OrderKey:        uint64(i + 1),
			CustKey:         uint64(1 + r.intn(numCustomers)),
			OrderStatus:     "FOP"[r.intn(3)],
			OrderDate:       orderDate,
			OrderPriority:   byte(r.intn(NumOrderPriorities)),
			SpecialRequests: r.intn(100) == 0,
		}
		numLines := 1 + r.intn(7)
		var total float64
		for ln := 0; ln < numLines; ln++ {
			qty := uint32(1 + r.intn(50))
			price := r.rangeF(900, 105000) * float64(qty) / 50
			ship := orderDate + uint16(1+r.intn(121))
			commit := orderDate + uint16(30+r.intn(61))
			receipt := ship + uint16(1+r.intn(30))
			l := Lineitem{
				OrderKey:      o.OrderKey,
				PartKey:       uint64(1 + r.intn(numParts)),
				SuppKey:       uint64(1 + r.intn(numSuppliers)),
				LineNumber:    uint32(ln + 1),
				Quantity:      qty,
				ExtendedPrice: price,
				Discount:      float64(r.intn(11)) / 100,
				Tax:           float64(r.intn(9)) / 100,
				ReturnFlag:    "RAN"[r.intn(3)],
				LineStatus:    "OF"[r.intn(2)],
				ShipDate:      ship,
				CommitDate:    commit,
				ReceiptDate:   receipt,
				ShipMode:      byte(r.intn(NumShipModes)),
				ShipInstruct:  byte(r.intn(4)),
			}
			total += price
			rec := make([]byte, LineitemSize)
			l.Encode(rec)
			d.Lineitem = append(d.Lineitem, rec)
		}
		o.TotalPrice = total
		rec := make([]byte, OrdersSize)
		o.Encode(rec)
		d.Orders = append(d.Orders, rec)
	}
	return d
}
