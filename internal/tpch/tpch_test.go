package tpch

import (
	"testing"

	"pangea/internal/cluster"
	"pangea/internal/query"
)

const testKey = "tpch-test-key"

func startExec(t *testing.T, nodes int) *query.Executor {
	t.Helper()
	return startExecMem(t, nodes, 64<<20)
}

func startExecMem(t *testing.T, nodes int, mem int64) *query.Executor {
	t.Helper()
	mgr, err := cluster.NewManager("127.0.0.1:0", testKey)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })
	cl := cluster.NewClient(mgr.Addr(), testKey)
	var workers []*cluster.Worker
	for i := 0; i < nodes; i++ {
		w, err := cluster.NewWorker("127.0.0.1:0", cluster.WorkerConfig{
			PrivateKey: testKey, Memory: mem, DiskDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		if _, err := cl.RegisterWorker(w.Addr()); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	return query.NewExecutor(cl, workers, 2)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.001, 42)
	b := Generate(0.001, 42)
	if len(a.Lineitem) != len(b.Lineitem) {
		t.Fatalf("lineitem counts differ: %d vs %d", len(a.Lineitem), len(b.Lineitem))
	}
	for i := range a.Lineitem {
		if string(a.Lineitem[i]) != string(b.Lineitem[i]) {
			t.Fatalf("lineitem %d differs", i)
		}
	}
	c := Generate(0.001, 43)
	if string(a.Lineitem[0]) == string(c.Lineitem[0]) {
		t.Error("different seeds produced identical rows")
	}
}

func TestGenerateCardinalities(t *testing.T) {
	d := Generate(0.001, 1)
	counts := d.Counts()
	if counts["orders"] != 1500 {
		t.Errorf("orders = %d, want 1500", counts["orders"])
	}
	if counts["customer"] != 150 {
		t.Errorf("customer = %d, want 150", counts["customer"])
	}
	if counts["part"] != 200 {
		t.Errorf("part = %d, want 200", counts["part"])
	}
	if counts["partsupp"] != 800 {
		t.Errorf("partsupp = %d, want 800", counts["partsupp"])
	}
	// lineitem averages 4 per order.
	if l := counts["lineitem"]; l < 3*1500 || l > 5*1500 {
		t.Errorf("lineitem = %d, outside [4500, 7500]", l)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := Generate(0.0005, 7)
	for _, rec := range d.Lineitem[:10] {
		l := DecodeLineitem(rec)
		out := make([]byte, LineitemSize)
		l.Encode(out)
		if string(out) != string(rec) {
			t.Fatal("lineitem round trip mismatch")
		}
	}
	for _, rec := range d.Orders[:10] {
		o := DecodeOrders(rec)
		out := make([]byte, OrdersSize)
		o.Encode(out)
		if string(out) != string(rec) {
			t.Fatal("orders round trip mismatch")
		}
	}
	c := DecodeCustomer(d.Customer[0])
	outC := make([]byte, CustomerSize)
	c.Encode(outC)
	if string(outC) != string(d.Customer[0]) {
		t.Fatal("customer round trip mismatch")
	}
}

func TestDateMonotone(t *testing.T) {
	if !(Date(1992, 1, 1) < Date(1993, 1, 1) && Date(1993, 1, 1) < Date(1993, 7, 1)) {
		t.Error("dates not monotone")
	}
	if Date(1994, 1, 1)-Date(1993, 1, 1) != daysPerYear {
		t.Error("year length wrong")
	}
}

func TestReferenceQueriesNonTrivial(t *testing.T) {
	d := Generate(0.002, 11)
	for _, q := range QueryNames {
		res, err := Reference(q, d)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(res) == 0 && q != "Q22" {
			t.Errorf("%s returned an empty result; generator selectivities too tight", q)
		}
	}
}

// TestQueriesMatchReference runs all nine queries in both modes on a 3-node
// deployment and compares against the in-memory reference.
func TestQueriesMatchReference(t *testing.T) {
	e := startExec(t, 3)
	d := Generate(0.002, 5)
	if err := Load(e, d, 256<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildReplicas(e, 256<<10); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []bool{true, false} {
		r := NewRunner(e, 2, mode)
		for _, q := range QueryNames {
			want, err := Reference(q, d)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Run(q)
			if err != nil {
				t.Fatalf("mode=%v %s: %v", mode, q, err)
			}
			if err := ResultsEqual(want, got, 1e-9); err != nil {
				t.Errorf("mode=%v %s: %v", mode, q, err)
			}
		}
	}
}
