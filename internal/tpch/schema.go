// Package tpch implements the TPC-H substrate of the paper's distributed
// benchmark (§9.1.2): a deterministic data generator, compact fixed-layout
// binary encodings of the tables, loaders that build the heterogeneous
// replicas the paper registers (lineitem by l_orderkey and l_partkey,
// orders by o_orderkey and o_custkey, part by p_partkey), and the nine
// benchmark queries (Q01 Q02 Q04 Q06 Q12 Q13 Q14 Q17 Q22) written against
// the Pangea query processor.
//
// Rows are fixed-offset little-endian records. Text fields the queries only
// test with LIKE or IN predicates are modelled as enums or booleans carrying
// the same selectivity (documented per field), which preserves query shape
// without string parsing overhead dominating the MB-scale runs.
package tpch

import (
	"encoding/binary"
	"math"
)

// Dates are u16 days since 1992-01-01; the 7-year TPC-H date range spans
// [0, 2557).
const (
	DateEpoch   = "1992-01-01"
	DatesTotal  = 2557 // days in [1992-01-01, 1999-01-01)
	daysPerYear = 365
)

// Date constructs a day offset from a (year, month, day) in 1992..1998,
// with TPC-H-sufficient 365-day years (months of 30 days + remainder
// folded; the queries only use range comparisons, so a monotone mapping is
// all that is required).
func Date(year, month, day int) uint16 {
	return uint16((year-1992)*daysPerYear + (month-1)*30 + (day - 1))
}

// le is a shorthand for the little-endian byte order.
var le = binary.LittleEndian

func putF64(b []byte, v float64) { le.PutUint64(b, math.Float64bits(v)) }
func getF64(b []byte) float64    { return math.Float64frombits(le.Uint64(b)) }

// --- lineitem ---------------------------------------------------------------

// LineitemSize is the fixed record size of the lineitem table.
const LineitemSize = 66

// Lineitem is the decoded form of one lineitem row.
type Lineitem struct {
	OrderKey      uint64
	PartKey       uint64
	SuppKey       uint64
	LineNumber    uint32
	Quantity      uint32 // 1..50
	ExtendedPrice float64
	Discount      float64 // 0.00..0.10
	Tax           float64 // 0.00..0.08
	ReturnFlag    byte    // 'R', 'A', 'N'
	LineStatus    byte    // 'O', 'F'
	ShipDate      uint16
	CommitDate    uint16
	ReceiptDate   uint16
	ShipMode      byte // enum 0..6: REG AIR, AIR, RAIL, SHIP, TRUCK, MAIL, FOB
	ShipInstruct  byte // enum 0..3: DELIVER IN PERSON, COLLECT COD, NONE, TAKE BACK RETURN
}

// Shipmode enum values used by Q12.
const (
	ShipModeRegAir = iota
	ShipModeAir
	ShipModeRail
	ShipModeShip
	ShipModeTruck
	ShipModeMail
	ShipModeFOB
	NumShipModes
)

// ShipModeName renders the enum for result rows.
func ShipModeName(m byte) string {
	return [...]string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}[m]
}

// Encode appends the row's binary form to dst (which must have LineitemSize
// free bytes starting at 0).
func (l *Lineitem) Encode(dst []byte) {
	le.PutUint64(dst[0:8], l.OrderKey)
	le.PutUint64(dst[8:16], l.PartKey)
	le.PutUint64(dst[16:24], l.SuppKey)
	le.PutUint32(dst[24:28], l.LineNumber)
	le.PutUint32(dst[28:32], l.Quantity)
	putF64(dst[32:40], l.ExtendedPrice)
	putF64(dst[40:48], l.Discount)
	putF64(dst[48:56], l.Tax)
	dst[56] = l.ReturnFlag
	dst[57] = l.LineStatus
	le.PutUint16(dst[58:60], l.ShipDate)
	le.PutUint16(dst[60:62], l.CommitDate)
	le.PutUint16(dst[62:64], l.ReceiptDate)
	dst[64] = l.ShipMode
	dst[65] = l.ShipInstruct
}

// DecodeLineitem parses a lineitem record.
func DecodeLineitem(r []byte) Lineitem {
	return Lineitem{
		OrderKey:      le.Uint64(r[0:8]),
		PartKey:       le.Uint64(r[8:16]),
		SuppKey:       le.Uint64(r[16:24]),
		LineNumber:    le.Uint32(r[24:28]),
		Quantity:      le.Uint32(r[28:32]),
		ExtendedPrice: getF64(r[32:40]),
		Discount:      getF64(r[40:48]),
		Tax:           getF64(r[48:56]),
		ReturnFlag:    r[56],
		LineStatus:    r[57],
		ShipDate:      le.Uint16(r[58:60]),
		CommitDate:    le.Uint16(r[60:62]),
		ReceiptDate:   le.Uint16(r[62:64]),
		ShipMode:      r[64],
		ShipInstruct:  r[65],
	}
}

// Field accessors that avoid a full decode on hot paths.

// LOrderKey reads l_orderkey from an encoded row.
func LOrderKey(r []byte) []byte { return r[0:8] }

// LPartKey reads l_partkey from an encoded row.
func LPartKey(r []byte) []byte { return r[8:16] }

// LShipDate reads l_shipdate.
func LShipDate(r []byte) uint16 { return le.Uint16(r[58:60]) }

// LQuantity reads l_quantity.
func LQuantity(r []byte) uint32 { return le.Uint32(r[28:32]) }

// LDiscount reads l_discount.
func LDiscount(r []byte) float64 { return getF64(r[40:48]) }

// LExtendedPrice reads l_extendedprice.
func LExtendedPrice(r []byte) float64 { return getF64(r[32:40]) }

// --- orders -----------------------------------------------------------------

// OrdersSize is the fixed record size of the orders table.
const OrdersSize = 29

// Orders is the decoded form of one orders row.
type Orders struct {
	OrderKey    uint64
	CustKey     uint64
	OrderStatus byte // 'F', 'O', 'P'
	OrderDate   uint16
	// OrderPriority is 0..4 for '1-URGENT'..'5-LOW'; Q12 counts priorities
	// 0 and 1 as high.
	OrderPriority byte
	TotalPrice    float64
	// SpecialRequests models o_comment LIKE '%special%requests%' (true for
	// about 1% of orders); Q13 excludes these.
	SpecialRequests bool
}

// NumOrderPriorities is the order priority enum size.
const NumOrderPriorities = 5

// OrderPriorityName renders the enum for Q04 result rows.
func OrderPriorityName(p byte) string {
	return [...]string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}[p]
}

// Encode writes the row's binary form into dst.
func (o *Orders) Encode(dst []byte) {
	le.PutUint64(dst[0:8], o.OrderKey)
	le.PutUint64(dst[8:16], o.CustKey)
	dst[16] = o.OrderStatus
	le.PutUint16(dst[17:19], o.OrderDate)
	dst[19] = o.OrderPriority
	putF64(dst[20:28], o.TotalPrice)
	if o.SpecialRequests {
		dst[28] = 1
	} else {
		dst[28] = 0
	}
}

// DecodeOrders parses an orders record.
func DecodeOrders(r []byte) Orders {
	return Orders{
		OrderKey:        le.Uint64(r[0:8]),
		CustKey:         le.Uint64(r[8:16]),
		OrderStatus:     r[16],
		OrderDate:       le.Uint16(r[17:19]),
		OrderPriority:   r[19],
		TotalPrice:      getF64(r[20:28]),
		SpecialRequests: r[28] == 1,
	}
}

// OOrderKey reads o_orderkey from an encoded row.
func OOrderKey(r []byte) []byte { return r[0:8] }

// OCustKey reads o_custkey from an encoded row.
func OCustKey(r []byte) []byte { return r[8:16] }

// OOrderDate reads o_orderdate.
func OOrderDate(r []byte) uint16 { return le.Uint16(r[17:19]) }

// --- customer ---------------------------------------------------------------

// CustomerSize is the fixed record size of the customer table.
const CustomerSize = 19

// Customer is the decoded form of one customer row.
type Customer struct {
	CustKey uint64
	AcctBal float64
	// PhoneCode is the country code (10..34) that Q22 extracts with
	// substring(c_phone, 1, 2).
	PhoneCode  uint16
	MktSegment byte // enum 0..4
}

// Encode writes the row's binary form into dst.
func (c *Customer) Encode(dst []byte) {
	le.PutUint64(dst[0:8], c.CustKey)
	putF64(dst[8:16], c.AcctBal)
	le.PutUint16(dst[16:18], c.PhoneCode)
	dst[18] = c.MktSegment
}

// DecodeCustomer parses a customer record.
func DecodeCustomer(r []byte) Customer {
	return Customer{
		CustKey:    le.Uint64(r[0:8]),
		AcctBal:    getF64(r[8:16]),
		PhoneCode:  le.Uint16(r[16:18]),
		MktSegment: r[18],
	}
}

// CCustKey reads c_custkey from an encoded row.
func CCustKey(r []byte) []byte { return r[0:8] }

// --- part -------------------------------------------------------------------

// PartSize is the fixed record size of the part table.
const PartSize = 13

// Part is the decoded form of one part row.
type Part struct {
	PartKey uint64
	Brand   byte // 0..24 ('Brand#MN')
	// Container is 0..39; Q17 filters one container kind.
	Container byte
	// Promo models p_type LIKE 'PROMO%' (roughly 1/5 of types).
	Promo bool
	Size  byte // 1..50
	// TypeSuffix is 0..14, the third word of p_type; Q02 wants '%BRASS'
	// which is suffix index 0 here.
	TypeSuffix byte
}

// TypeSuffixBrass is the TypeSuffix value modelling '%BRASS'.
const TypeSuffixBrass = 0

// Encode writes the row's binary form into dst.
func (p *Part) Encode(dst []byte) {
	le.PutUint64(dst[0:8], p.PartKey)
	dst[8] = p.Brand
	dst[9] = p.Container
	if p.Promo {
		dst[10] = 1
	} else {
		dst[10] = 0
	}
	dst[11] = p.Size
	dst[12] = p.TypeSuffix
}

// DecodePart parses a part record.
func DecodePart(r []byte) Part {
	return Part{
		PartKey:    le.Uint64(r[0:8]),
		Brand:      r[8],
		Container:  r[9],
		Promo:      r[10] == 1,
		Size:       r[11],
		TypeSuffix: r[12],
	}
}

// PPartKey reads p_partkey from an encoded row.
func PPartKey(r []byte) []byte { return r[0:8] }

// --- supplier ---------------------------------------------------------------

// SupplierSize is the fixed record size of the supplier table.
const SupplierSize = 17

// Supplier is the decoded form of one supplier row.
type Supplier struct {
	SuppKey   uint64
	AcctBal   float64
	NationKey byte // 0..24
}

// Encode writes the row's binary form into dst.
func (s *Supplier) Encode(dst []byte) {
	le.PutUint64(dst[0:8], s.SuppKey)
	putF64(dst[8:16], s.AcctBal)
	dst[16] = s.NationKey
}

// DecodeSupplier parses a supplier record.
func DecodeSupplier(r []byte) Supplier {
	return Supplier{SuppKey: le.Uint64(r[0:8]), AcctBal: getF64(r[8:16]), NationKey: r[16]}
}

// --- partsupp ---------------------------------------------------------------

// PartSuppSize is the fixed record size of the partsupp table.
const PartSuppSize = 24

// PartSupp is the decoded form of one partsupp row.
type PartSupp struct {
	PartKey    uint64
	SuppKey    uint64
	SupplyCost float64
}

// Encode writes the row's binary form into dst.
func (ps *PartSupp) Encode(dst []byte) {
	le.PutUint64(dst[0:8], ps.PartKey)
	le.PutUint64(dst[8:16], ps.SuppKey)
	putF64(dst[16:24], ps.SupplyCost)
}

// DecodePartSupp parses a partsupp record.
func DecodePartSupp(r []byte) PartSupp {
	return PartSupp{PartKey: le.Uint64(r[0:8]), SuppKey: le.Uint64(r[8:16]), SupplyCost: getF64(r[16:24])}
}

// PsPartKey reads ps_partkey from an encoded row.
func PsPartKey(r []byte) []byte { return r[0:8] }

// --- nation / region ----------------------------------------------------------

// NationCount and RegionCount are the fixed TPC-H cardinalities.
const (
	NationCount = 25
	RegionCount = 5
)

// NationRegion maps nationkey -> regionkey the way dbgen does (5 nations
// per region, round-robin).
func NationRegion(nationKey byte) byte { return nationKey % RegionCount }
