package tpch

import (
	"fmt"

	"pangea/internal/core"
	"pangea/internal/placement"
	"pangea/internal/query"
	"pangea/internal/services"
)

// Table names as created in the deployment.
var TableNames = []string{"lineitem", "orders", "customer", "part", "supplier", "partsupp"}

// Replica partition schemes the paper registers (§9.1.2): lineitem is
// partitioned by l_orderkey and l_partkey, orders by o_orderkey and
// o_custkey; Q17's plan additionally uses a part replica partitioned by
// p_partkey.
const (
	SchemeLOrderKey = "hash(l_orderkey)"
	SchemeLPartKey  = "hash(l_partkey)"
	SchemeOOrderKey = "hash(o_orderkey)"
	SchemeOCustKey  = "hash(o_custkey)"
	SchemePPartKey  = "hash(p_partkey)"
)

// Load creates the six TPC-H source sets across the deployment and
// dispatches the generated rows randomly — the paper's "randomly dispatched
// set". The lineitem layout defaults to the PANGEA_COLUMNAR toggle; use
// LoadLayout to pick explicitly.
func Load(e *query.Executor, d *Data, pageSize int64) error {
	layout := core.LayoutRow
	if ColumnarDefault() {
		layout = core.LayoutColumnar
	}
	return LoadLayout(e, d, pageSize, layout)
}

// LoadLayout is Load with the scan-heavy lineitem table's page layout
// chosen by the caller. With LayoutColumnar the set is created with the
// lineitem column widths and the workers' sequential writers transpose the
// dispatched records into columnar pages; the other five tables stay
// row-layout (they feed joins and point lookups through the row API).
func LoadLayout(e *query.Executor, d *Data, pageSize int64, layout core.PageLayout) error {
	tables := map[string][][]byte{
		"lineitem": d.Lineitem,
		"orders":   d.Orders,
		"customer": d.Customer,
		"part":     d.Part,
		"supplier": d.Supplier,
		"partsupp": d.PartSupp,
	}
	for _, name := range TableNames {
		spec := core.SetSpec{Name: name, PageSize: pageSize, Durability: core.WriteBack}
		if name == "lineitem" && layout == core.LayoutColumnar {
			spec.Layout = core.LayoutColumnar
			spec.Columns = services.SchemaWidths(LineitemSchema())
		}
		if err := e.Client.CreateSetSpec(spec); err != nil {
			return fmt.Errorf("tpch: create %s: %w", name, err)
		}
		if err := placement.DispatchRandom(e.Client, e.Addrs, name, tables[name]); err != nil {
			return fmt.Errorf("tpch: load %s: %w", name, err)
		}
	}
	if services.ZoneMapsDefault() {
		if err := EnsureLineitemZoneMaps(e); err != nil {
			return err
		}
	}
	if services.MicroindexDefault() {
		return EnsureLineitemMicroindexes(e)
	}
	return nil
}

// LineitemZoneSpec is the zone-map shape the benchmark's selective queries
// prune against: min/max over every lineitem column (the date and quantity
// ranges of Q01/Q06/Q12/Q14), plus a bloom on shipmode for Q12's equality
// disjunction.
func LineitemZoneSpec() services.ZoneMapSpec {
	return services.ZoneMapSpec{
		Schema:    LineitemSchema(),
		BloomCols: []int{LiColShipMode},
	}
}

// EnsureLineitemZoneMaps builds (or reloads from the persisted side
// object) a zone map for every node's lineitem partition — one full scan
// per partition the first time, a side-object read after. Load calls this
// under the PANGEA_ZONEMAPS toggle; callers with their own deployments can
// invoke it directly.
func EnsureLineitemZoneMaps(e *query.Executor) error {
	for node := range e.Workers {
		s, err := e.Set(node, "lineitem")
		if err != nil {
			return err
		}
		if _, err := services.EnsureZoneMap(s, LineitemZoneSpec()); err != nil {
			return fmt.Errorf("tpch: zone map for lineitem on node %d: %w", node, err)
		}
	}
	return nil
}

// LineitemMicroindexSpec is the posting-list shape for the benchmark's
// equality predicates: l_shipmode, the column Q12 probes with an equality
// disjunction, is the only lineitem column queried by point value.
func LineitemMicroindexSpec() services.MicroindexSpec {
	return services.MicroindexSpec{
		Schema: LineitemSchema(),
		Cols:   []int{LiColShipMode},
	}
}

// EnsureLineitemMicroindexes builds (or reloads from the persisted side
// object) a microindex for every node's lineitem partition, mirroring
// EnsureLineitemZoneMaps. Load calls this under the PANGEA_MICROINDEX
// toggle; callers with their own deployments can invoke it directly.
func EnsureLineitemMicroindexes(e *query.Executor) error {
	for node := range e.Workers {
		s, err := e.Set(node, "lineitem")
		if err != nil {
			return err
		}
		if _, err := services.EnsureMicroindex(s, LineitemMicroindexSpec()); err != nil {
			return fmt.Errorf("tpch: microindex for lineitem on node %d: %w", node, err)
		}
	}
	return nil
}

// partitioners returns the replica partitioners for one deployment size.
// NumPartitions is fixed per deployment so that two replicas built with the
// same key layout are co-partitioned node-by-node.
func partitioners(numNodes int) map[string]map[string]*placement.Partitioner {
	np := numNodes * 4
	key := func(f func([]byte) []byte) placement.KeyFunc {
		return func(rec []byte) ([]byte, error) { return f(rec), nil }
	}
	return map[string]map[string]*placement.Partitioner{
		"lineitem": {
			SchemeLOrderKey: {Scheme: SchemeLOrderKey, NumPartitions: np, Key: key(LOrderKey)},
			SchemeLPartKey:  {Scheme: SchemeLPartKey, NumPartitions: np, Key: key(LPartKey)},
		},
		"orders": {
			SchemeOOrderKey: {Scheme: SchemeOOrderKey, NumPartitions: np, Key: key(OOrderKey)},
			SchemeOCustKey:  {Scheme: SchemeOCustKey, NumPartitions: np, Key: key(OCustKey)},
		},
		"part": {
			SchemePPartKey: {Scheme: SchemePPartKey, NumPartitions: np, Key: key(PPartKey)},
		},
	}
}

// BuildReplicas builds and registers the paper's heterogeneous replicas and
// returns the replication groups (for the recovery experiment).
func BuildReplicas(e *query.Executor, pageSize int64) (map[string]*placement.Group, error) {
	groups := make(map[string]*placement.Group)
	for table, schemes := range partitioners(len(e.Workers)) {
		var parts []*placement.Partitioner
		for _, scheme := range replicaOrder(table) {
			parts = append(parts, schemes[scheme])
		}
		g, err := placement.BuildGroup(e.Client, e.Addrs, table, parts, pageSize)
		if err != nil {
			return nil, fmt.Errorf("tpch: build replicas of %s: %w", table, err)
		}
		groups[table] = g
	}
	return groups, nil
}

// replicaOrder pins a deterministic replica build order per table.
func replicaOrder(table string) []string {
	switch table {
	case "lineitem":
		return []string{SchemeLOrderKey, SchemeLPartKey}
	case "orders":
		return []string{SchemeOOrderKey, SchemeOCustKey}
	case "part":
		return []string{SchemePPartKey}
	}
	return nil
}
