package tpch

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pangea/internal/cluster"
	"pangea/internal/core"
	"pangea/internal/query"
	"pangea/internal/services"
)

// Runner executes the nine benchmark queries over a loaded deployment.
// With UseReplicas set, the query scheduler consults the statistics service
// and picks the co-partitioned replica for each join, so joins pipeline
// locally with no repartition (the Pangea plan of §9.1.2). Without it, every
// join input is repartitioned at runtime through a shuffle — the plan a
// Spark application is forced into when loading from HDFS.
type Runner struct {
	E           *query.Executor
	Threads     int
	UseReplicas bool
	PageSize    int64

	seq atomic.Int64
}

// NewRunner builds a query runner.
func NewRunner(e *query.Executor, threads int, useReplicas bool) *Runner {
	if threads < 1 {
		threads = 2
	}
	return &Runner{E: e, Threads: threads, UseReplicas: useReplicas, PageSize: 256 << 10}
}

// Run dispatches a query by name.
func (r *Runner) Run(q string) (Result, error) {
	switch q {
	case "Q01":
		return r.Q01()
	case "Q02":
		return r.Q02()
	case "Q04":
		return r.Q04()
	case "Q06":
		return r.Q06()
	case "Q12":
		return r.Q12()
	case "Q13":
		return r.Q13()
	case "Q14":
		return r.Q14()
	case "Q17":
		return r.Q17()
	case "Q22":
		return r.Q22()
	}
	return nil, fmt.Errorf("tpch: unknown query %q", q)
}

// scan streams one node's partition of a set.
func (r *Runner) scan(node int, set string) query.Iter {
	return r.scanPred(node, set, nil, nil)
}

// scanPred streams one node's partition through the predicate scan API:
// pred pushes down to the row closure, to the batch kernels on columnar
// sets, and — when the set carries a zone map — to the page prune, so a
// selective query never reads pages its filter excludes. schema describes
// the record layout pred's column indices address (nil derives it for
// columnar sets; row sets with a nil pred don't need one).
func (r *Runner) scanPred(node int, set string, schema []services.ColumnSpec, pred query.Predicate) query.Iter {
	return func(emit func(query.Row) error) error {
		s, err := r.E.Set(node, set)
		if err != nil {
			return err
		}
		return query.ScanSpec{Set: s, Threads: r.Threads, Pred: pred, Schema: schema}.Iter()(emit)
	}
}

// --- declarative benchmark filters -------------------------------------------
//
// The selective scans below express their filters in the predicate algebra,
// one definition driving the row closure, the columnar kernels, and the
// zone-map prune. Cross-column comparisons (Q04/Q12's commit-vs-receipt
// dates) stay RowPred residuals under an And: they cannot prune, but the
// algebraic siblings still can.

func q01Pred() query.Predicate {
	return query.ColRange{Col: LiColShipDate, Lo: 0, Hi: uint64(Q01Cutoff) + 1}
}

func q06Pred() query.Predicate {
	return query.And{
		query.ColRange{Col: LiColShipDate, Lo: uint64(Q06Lo), Hi: uint64(Q06Hi)},
		query.ColRangeF64{Col: LiColDiscount, Lo: 0.05 - 1e-9, Hi: 0.07 + 1e-9},
		query.ColRange{Col: LiColQuantity, Lo: 0, Hi: 24},
	}
}

func q04LiPred() query.Predicate {
	return query.RowPred(func(row query.Row) bool {
		l := DecodeLineitem(row)
		return l.CommitDate < l.ReceiptDate
	})
}

func q12LiPred() query.Predicate {
	return query.And{
		query.Or{
			query.ColEq{Col: LiColShipMode, V: uint64(Q12ModeA)},
			query.ColEq{Col: LiColShipMode, V: uint64(Q12ModeB)},
		},
		query.ColRange{Col: LiColReceiptDate, Lo: uint64(Q12Lo), Hi: uint64(Q12Hi)},
		query.RowPred(func(row query.Row) bool {
			l := DecodeLineitem(row)
			return l.CommitDate < l.ReceiptDate && l.ShipDate < l.CommitDate
		}),
	}
}

func q14LiPred() query.Predicate {
	return query.ColRange{Col: LiColShipDate, Lo: uint64(Q14Lo), Hi: uint64(Q14Hi)}
}

// ordersPredSchema exposes the two orders columns the benchmark filters on
// to the predicate algebra; the rest of the record stays decode-accessed.
func ordersPredSchema() []services.ColumnSpec {
	return []services.ColumnSpec{
		{Name: "o_orderdate", Width: 2, Offset: 17},
		{Name: "o_special", Width: 1, Offset: 28},
	}
}

const (
	ordColOrderDate = 0
	ordColSpecial   = 1
)

func q04OrdPred() query.Predicate {
	return query.ColRange{Col: ordColOrderDate, Lo: uint64(Q04Lo), Hi: uint64(Q04Hi)}
}

func q13OrdPred() query.Predicate {
	return query.ColEq{Col: ordColSpecial, V: 0}
}

// tempName mints a unique temp set name.
func (r *Runner) tempName(tag string) string {
	return fmt.Sprintf("tmp-%s-%d", tag, r.seq.Add(1))
}

// input resolves a join input: in replica mode the statistics service
// supplies the replica partitioned under scheme; otherwise the (filtered)
// source is repartitioned at runtime onto a temp set — the shuffle a
// layered engine cannot avoid. src supplies each node's (typically
// predicate-filtered) source stream; nil scans the whole table. cleanup
// drops any temp set.
func (r *Runner) input(table, scheme string, key func(query.Row) []byte, src func(node int) query.Iter) (string, func(), error) {
	if r.UseReplicas {
		if set, ok := r.E.ChooseReplica(table, scheme); ok {
			return set, func() {}, nil
		}
	}
	tmp := r.tempName(table)
	if src == nil {
		src = func(node int) query.Iter { return r.scan(node, table) }
	}
	if err := r.E.Exchange(tmp, src, key, r.PageSize); err != nil {
		return "", nil, err
	}
	return tmp, func() { r.E.DropEverywhere(tmp) }, nil
}

// --- aggregation plumbing ---------------------------------------------------

// f64Spec builds an AggSpec whose accumulator is a vector of n float64s
// combined element-wise with +.
func f64Spec(n int, key func(query.Row) []byte, init func(query.Row, []float64)) query.AggSpec {
	return query.AggSpec{
		Key:     key,
		ValSize: 8 * n,
		Init: func(row query.Row, val []byte) {
			v := make([]float64, n)
			init(row, v)
			for i, x := range v {
				putF64(val[8*i:], x)
			}
		},
		Combine: func(dst, src []byte) {
			for i := 0; i < n; i++ {
				putF64(dst[8*i:], getF64(dst[8*i:])+getF64(src[8*i:]))
			}
		},
	}
}

// decodeF64s converts an aggregated byte map into a Result.
func decodeF64s(m map[string][]byte) Result {
	out := Result{}
	for k, v := range m {
		fs := make([]float64, len(v)/8)
		for i := range fs {
			fs[i] = getF64(v[8*i:])
		}
		out[k] = fs
	}
	return out
}

var starKey = []byte("*")

// --- joins: per-node build helpers ------------------------------------------

// buildMap constructs a node-local join map from a pipeline. The caller
// must drop the returned set when done probing.
func (r *Runner) buildMap(node int, tag string, in query.Iter, key func(query.Row) []byte) (*joinHandle, error) {
	w := r.E.Workers[node]
	set, err := w.Pool().CreateSet(core.SetSpec{Name: r.tempName(tag), PageSize: r.PageSize})
	if err != nil {
		return nil, err
	}
	m, err := query.BuildPartitionedMap(in, set, key)
	if err != nil {
		_ = w.Pool().DropSet(set)
		return nil, err
	}
	return &joinHandle{m: m, set: set, pool: w.Pool()}, nil
}

type joinHandle struct {
	m    *services.JoinMap
	set  *core.LocalitySet
	pool *core.BufferPool
}

func (h *joinHandle) drop() { _ = h.pool.DropSet(h.set) }

// --- Q01: pricing summary report -------------------------------------------

// Q01 scans lineitem with a date filter and aggregates five metrics by
// (returnflag, linestatus). No join: both modes share the plan. Columnar
// lineitem runs the vectorized batch pipeline instead of the row iterators.
func (r *Runner) Q01() (Result, error) {
	if r.lineitemColumnar() {
		return r.q01Batch()
	}
	spec := f64Spec(5,
		func(row query.Row) []byte { return row[56:58] }, // returnflag, linestatus
		func(row query.Row, v []float64) {
			l := DecodeLineitem(row)
			disc := l.ExtendedPrice * (1 - l.Discount)
			v[0] = float64(l.Quantity)
			v[1] = l.ExtendedPrice
			v[2] = disc
			v[3] = disc * (1 + l.Tax)
			v[4] = 1
		})
	m, err := r.E.DistributedAggregate("q01", func(node int) query.Iter {
		return r.scanPred(node, "lineitem", LineitemSchema(), q01Pred())
	}, spec)
	if err != nil {
		return nil, err
	}
	return decodeF64s(m), nil
}

// --- Q02: minimum cost supplier ---------------------------------------------

// Q02 broadcasts the small part and supplier tables, then makes two
// distributed passes over partsupp: one to find each wanted part's minimum
// supply cost in the region, one to count the pairs achieving it.
func (r *Runner) Q02() (Result, error) {
	partB, suppB := r.tempName("q02part"), r.tempName("q02supp")
	if err := r.E.Broadcast("part", partB, r.PageSize); err != nil {
		return nil, err
	}
	defer r.E.DropEverywhere(partB)
	if err := r.E.Broadcast("supplier", suppB, r.PageSize); err != nil {
		return nil, err
	}
	defer r.E.DropEverywhere(suppB)

	// Per-node dimension maps (broadcast map service).
	type dims struct {
		wanted map[uint64]bool
		nation map[uint64]byte
		bal    map[uint64]float64
	}
	nodeDims := make([]dims, len(r.E.Workers))
	buildDims := func(node int) (dims, error) {
		d := dims{wanted: map[uint64]bool{}, nation: map[uint64]byte{}, bal: map[uint64]float64{}}
		if err := r.scan(node, partB)(func(row query.Row) error {
			p := DecodePart(row)
			if p.Size == Q02Size && p.TypeSuffix == TypeSuffixBrass {
				d.wanted[p.PartKey] = true
			}
			return nil
		}); err != nil {
			return d, err
		}
		if err := r.scan(node, suppB)(func(row query.Row) error {
			s := DecodeSupplier(row)
			d.nation[s.SuppKey] = s.NationKey
			d.bal[s.SuppKey] = s.AcctBal
			return nil
		}); err != nil {
			return d, err
		}
		return d, nil
	}

	// Pass 1: minimum supply cost per wanted part, min-combined.
	minSpec := query.AggSpec{
		Key:     func(row query.Row) []byte { return PsPartKey(row) },
		ValSize: 8,
		Init: func(row query.Row, val []byte) {
			putF64(val, DecodePartSupp(row).SupplyCost)
		},
		Combine: func(dst, src []byte) {
			if getF64(src) < getF64(dst) {
				putF64(dst, getF64(src))
			}
		},
	}
	minRaw, err := r.E.DistributedAggregate("q02min", func(node int) query.Iter {
		return func(emit func(query.Row) error) error {
			d, err := buildDims(node)
			if err != nil {
				return err
			}
			nodeDims[node] = d
			return query.Filter(r.scan(node, "partsupp"), func(row query.Row) bool {
				ps := DecodePartSupp(row)
				return d.wanted[ps.PartKey] && NationRegion(d.nation[ps.SuppKey]) == Q02Region
			})(emit)
		}
	}, minSpec)
	if err != nil {
		return nil, err
	}
	minCost := make(map[uint64]float64, len(minRaw))
	for k, v := range minRaw {
		minCost[le.Uint64([]byte(k))] = getF64(v)
	}

	// Pass 2: count pairs at the minimum and sum supplier balances.
	out := Result{"*": {0, 0}}
	var mu sync.Mutex
	err = r.E.Parallel(func(node int, _ *cluster.Worker) error {
		d := nodeDims[node]
		var rows, bal float64
		err := r.scan(node, "partsupp")(func(row query.Row) error {
			ps := DecodePartSupp(row)
			c, ok := minCost[ps.PartKey]
			if !ok || ps.SupplyCost != c {
				return nil
			}
			if NationRegion(d.nation[ps.SuppKey]) != Q02Region {
				return nil
			}
			rows++
			bal += d.bal[ps.SuppKey]
			return nil
		})
		if err != nil {
			return err
		}
		mu.Lock()
		out["*"][0] += rows
		out["*"][1] += bal
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- Q04: order priority checking -------------------------------------------

// Q04 semi-joins date-filtered orders with late lineitems on orderkey. With
// the o_orderkey/l_orderkey replicas the join is node-local; otherwise both
// inputs are repartitioned first.
func (r *Runner) Q04() (Result, error) {
	liSet, liClean, err := r.input("lineitem", SchemeLOrderKey,
		func(row query.Row) []byte { return LOrderKey(row) },
		func(node int) query.Iter {
			return r.scanPred(node, "lineitem", LineitemSchema(), q04LiPred())
		})
	if err != nil {
		return nil, err
	}
	defer liClean()
	ordSet, ordClean, err := r.input("orders", SchemeOOrderKey,
		func(row query.Row) []byte { return OOrderKey(row) },
		func(node int) query.Iter {
			return r.scanPred(node, "orders", ordersPredSchema(), q04OrdPred())
		})
	if err != nil {
		return nil, err
	}
	defer ordClean()

	spec := f64Spec(1,
		func(row query.Row) []byte { return []byte(OrderPriorityName(row[19])) },
		func(query.Row, []float64) {})
	spec2 := spec
	spec2.Init = func(row query.Row, val []byte) { putF64(val, 1) }

	m, err := r.E.DistributedAggregate("q04", func(node int) query.Iter {
		return func(emit func(query.Row) error) error {
			h, err := r.buildMap(node, "q04map",
				r.scanPred(node, liSet, LineitemSchema(), q04LiPred()),
				func(row query.Row) []byte { return LOrderKey(row) })
			if err != nil {
				return err
			}
			defer h.drop()
			probe := r.scanPred(node, ordSet, ordersPredSchema(), q04OrdPred())
			return query.SemiJoin(probe, h.m, func(row query.Row) []byte { return OOrderKey(row) })(emit)
		}
	}, spec2)
	if err != nil {
		return nil, err
	}
	return decodeF64s(m), nil
}

// --- Q06: forecasting revenue change -----------------------------------------

// Q06 is a pure filter + sum over lineitem; columnar lineitem runs the
// selection-kernel batch pipeline.
func (r *Runner) Q06() (Result, error) {
	if r.lineitemColumnar() {
		return r.q06Batch()
	}
	spec := f64Spec(1, func(query.Row) []byte { return starKey },
		func(row query.Row, v []float64) {
			v[0] = LExtendedPrice(row) * LDiscount(row)
		})
	m, err := r.E.DistributedAggregate("q06", func(node int) query.Iter {
		return r.scanPred(node, "lineitem", LineitemSchema(), q06Pred())
	}, spec)
	if err != nil {
		return nil, err
	}
	return decodeF64s(m), nil
}

// --- Q12: shipping modes and order priority ----------------------------------

// Q12 joins filtered lineitems with orders on orderkey and counts
// high/low-priority lines per shipmode.
func (r *Runner) Q12() (Result, error) {
	liSet, liClean, err := r.input("lineitem", SchemeLOrderKey,
		func(row query.Row) []byte { return LOrderKey(row) },
		func(node int) query.Iter {
			return r.scanPred(node, "lineitem", LineitemSchema(), q12LiPred())
		})
	if err != nil {
		return nil, err
	}
	defer liClean()
	ordSet, ordClean, err := r.input("orders", SchemeOOrderKey,
		func(row query.Row) []byte { return OOrderKey(row) }, nil)
	if err != nil {
		return nil, err
	}
	defer ordClean()

	// Joined rows are [shipmode byte, highPriority byte].
	spec := f64Spec(2,
		func(row query.Row) []byte { return []byte(ShipModeName(row[0])) },
		func(row query.Row, v []float64) {
			if row[1] == 1 {
				v[0] = 1
			} else {
				v[1] = 1
			}
		})
	m, err := r.E.DistributedAggregate("q12", func(node int) query.Iter {
		return func(emit func(query.Row) error) error {
			h, err := r.buildMap(node, "q12map",
				r.scanPred(node, liSet, LineitemSchema(), q12LiPred()),
				func(row query.Row) []byte { return LOrderKey(row) })
			if err != nil {
				return err
			}
			defer h.drop()
			joined := query.HashJoin(r.scan(node, ordSet), h.m,
				func(row query.Row) []byte { return OOrderKey(row) },
				func(ord, li query.Row) query.Row {
					out := make(query.Row, 2)
					out[0] = li[64] // shipmode
					if p := ord[19]; p == 0 || p == 1 {
						out[1] = 1
					}
					return out
				})
			return joined(emit)
		}
	}, spec)
	if err != nil {
		return nil, err
	}
	return decodeF64s(m), nil
}

// --- Q13: customer distribution ----------------------------------------------

// Q13 counts non-special orders per customer on the o_custkey organization,
// then histograms customers by order count (including zero).
func (r *Runner) Q13() (Result, error) {
	ordSet, ordClean, err := r.input("orders", SchemeOCustKey,
		func(row query.Row) []byte { return OCustKey(row) },
		func(node int) query.Iter {
			return r.scanPred(node, "orders", ordersPredSchema(), q13OrdPred())
		})
	if err != nil {
		return nil, err
	}
	defer ordClean()

	spec := f64Spec(1, func(row query.Row) []byte { return OCustKey(row) },
		func(row query.Row, v []float64) { v[0] = 1 })
	counts, err := r.E.DistributedAggregate("q13", func(node int) query.Iter {
		return r.scanPred(node, ordSet, ordersPredSchema(), q13OrdPred())
	}, spec)
	if err != nil {
		return nil, err
	}

	var totalCustomers int64
	var mu sync.Mutex
	err = r.E.Parallel(func(node int, _ *cluster.Worker) error {
		n, err := query.Count(r.scan(node, "customer"))
		if err != nil {
			return err
		}
		mu.Lock()
		totalCustomers += n
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	hist := make(map[int]float64)
	for _, v := range counts {
		hist[int(getF64(v))]++
	}
	hist[0] += float64(totalCustomers - int64(len(counts)))
	if hist[0] == 0 {
		delete(hist, 0)
	}
	out := Result{}
	for cnt, n := range hist {
		out[fmt.Sprintf("%d", cnt)] = []float64{n}
	}
	return out, nil
}

// --- Q14: promotion effect ----------------------------------------------------

// Q14 joins one ship-month of lineitem with part on partkey and computes
// the promo revenue share.
func (r *Runner) Q14() (Result, error) {
	liSet, liClean, err := r.input("lineitem", SchemeLPartKey,
		func(row query.Row) []byte { return LPartKey(row) },
		func(node int) query.Iter {
			return r.scanPred(node, "lineitem", LineitemSchema(), q14LiPred())
		})
	if err != nil {
		return nil, err
	}
	defer liClean()
	partSet, partClean, err := r.input("part", SchemePPartKey,
		func(row query.Row) []byte { return PPartKey(row) }, nil)
	if err != nil {
		return nil, err
	}
	defer partClean()

	spec := f64Spec(2, func(query.Row) []byte { return starKey },
		func(row query.Row, v []float64) {
			rev := getF64(row[1:9])
			v[1] = rev
			if row[0] == 1 {
				v[0] = rev
			}
		})
	m, err := r.E.DistributedAggregate("q14", func(node int) query.Iter {
		return func(emit func(query.Row) error) error {
			h, err := r.buildMap(node, "q14map", r.scan(node, partSet),
				func(row query.Row) []byte { return PPartKey(row) })
			if err != nil {
				return err
			}
			defer h.drop()
			joined := query.HashJoin(r.scanPred(node, liSet, LineitemSchema(), q14LiPred()), h.m,
				func(row query.Row) []byte { return LPartKey(row) },
				func(li, part query.Row) query.Row {
					out := make(query.Row, 9)
					out[0] = part[10] // promo flag
					l := DecodeLineitem(li)
					putF64(out[1:9], l.ExtendedPrice*(1-l.Discount))
					return out
				})
			return joined(emit)
		}
	}, spec)
	if err != nil {
		return nil, err
	}
	res := decodeF64s(m)
	v := res["*"]
	if v == nil || v[1] == 0 {
		return Result{"*": {0}}, nil
	}
	return Result{"*": {100 * v[0] / v[1]}}, nil
}

// --- Q17: small-quantity-order revenue ----------------------------------------

// Q17 needs each part's average lineitem quantity, which is node-local on
// the l_partkey organization: two local passes over lineitem plus a local
// part map, no data movement at all in replica mode.
func (r *Runner) Q17() (Result, error) {
	liSet, liClean, err := r.input("lineitem", SchemeLPartKey,
		func(row query.Row) []byte { return LPartKey(row) }, nil)
	if err != nil {
		return nil, err
	}
	defer liClean()
	partSet, partClean, err := r.input("part", SchemePPartKey,
		func(row query.Row) []byte { return PPartKey(row) }, nil)
	if err != nil {
		return nil, err
	}
	defer partClean()

	spec := f64Spec(1, func(query.Row) []byte { return starKey },
		func(row query.Row, v []float64) { v[0] = getF64(row) })
	m, err := r.E.DistributedAggregate("q17", func(node int) query.Iter {
		return func(emit func(query.Row) error) error {
			// Local pass 1: average quantity per partkey through the hash
			// service (exact under partkey co-partitioning).
			w := r.E.Workers[node]
			aggSet, err := w.Pool().CreateSet(core.SetSpec{Name: r.tempName("q17avg"), PageSize: r.PageSize})
			if err != nil {
				return err
			}
			defer func() { _ = w.Pool().DropSet(aggSet) }()
			avgSpec := f64Spec(2, func(row query.Row) []byte { return LPartKey(row) },
				func(row query.Row, v []float64) {
					v[0] = float64(LQuantity(row))
					v[1] = 1
				})
			h, err := query.LocalAggregate(r.scan(node, liSet), aggSet, 8, avgSpec)
			if err != nil {
				return err
			}
			// Merge partials (keys may repeat across spilled pages).
			qtySum := make(map[uint64]float64)
			qtyCnt := make(map[uint64]float64)
			if err := h.Walk(func(key, val []byte) error {
				pk := le.Uint64(key)
				qtySum[pk] += getF64(val[0:8])
				qtyCnt[pk] += getF64(val[8:16])
				return nil
			}); err != nil {
				return err
			}

			// Local part filter (brand + container).
			wanted := make(map[uint64]bool)
			if err := r.scan(node, partSet)(func(row query.Row) error {
				p := DecodePart(row)
				if p.Brand == Q17Brand && p.Container == Q17Container {
					wanted[p.PartKey] = true
				}
				return nil
			}); err != nil {
				return err
			}

			// Local pass 2: sum prices of small-quantity lines.
			return r.scan(node, liSet)(func(row query.Row) error {
				l := DecodeLineitem(row)
				if !wanted[l.PartKey] {
					return nil
				}
				avg := qtySum[l.PartKey] / qtyCnt[l.PartKey]
				if float64(l.Quantity) >= 0.2*avg {
					return nil
				}
				out := make(query.Row, 8)
				putF64(out, l.ExtendedPrice)
				return emit(out)
			})
		}
	}, spec)
	if err != nil {
		return nil, err
	}
	res := decodeF64s(m)
	v := res["*"]
	if v == nil {
		return Result{"*": {0}}, nil
	}
	return Result{"*": {v[0] / 7.0}}, nil
}

// --- Q22: global sales opportunity ---------------------------------------------

// Q22 anti-joins qualifying customers with orders on custkey.
func (r *Runner) Q22() (Result, error) {
	// Pass 1: average positive balance of customers in the seven codes.
	avgSpec := f64Spec(2, func(query.Row) []byte { return starKey },
		func(row query.Row, v []float64) {
			c := DecodeCustomer(row)
			v[0] = c.AcctBal
			v[1] = 1
		})
	avgRaw, err := r.E.DistributedAggregate("q22avg", func(node int) query.Iter {
		return query.Filter(r.scan(node, "customer"), func(row query.Row) bool {
			c := DecodeCustomer(row)
			return q22CodeIn(c.PhoneCode) && c.AcctBal > 0
		})
	}, avgSpec)
	if err != nil {
		return nil, err
	}
	v := avgRaw["*"]
	if v == nil || getF64(v[8:]) == 0 {
		return Result{}, nil
	}
	avg := getF64(v[0:8]) / getF64(v[8:16])

	// Orders organized by custkey (replica or runtime exchange).
	ordSet, ordClean, err := r.input("orders", SchemeOCustKey,
		func(row query.Row) []byte { return OCustKey(row) }, nil)
	if err != nil {
		return nil, err
	}
	defer ordClean()
	// Customers must be co-partitioned with the orders organization; the
	// customer table has no registered replica, so both modes exchange it
	// (it is an order of magnitude smaller than orders).
	custSet := r.tempName("q22cust")
	if err := r.E.Exchange(custSet, func(node int) query.Iter {
		return query.Filter(r.scan(node, "customer"), func(row query.Row) bool {
			c := DecodeCustomer(row)
			return q22CodeIn(c.PhoneCode) && c.AcctBal > avg
		})
	}, func(row query.Row) []byte { return CCustKey(row) }, r.PageSize); err != nil {
		return nil, err
	}
	defer r.E.DropEverywhere(custSet)

	spec := f64Spec(2,
		func(row query.Row) []byte {
			c := DecodeCustomer(row)
			return []byte(fmt.Sprintf("%d", c.PhoneCode))
		},
		func(row query.Row, v []float64) {
			v[0] = 1
			v[1] = DecodeCustomer(row).AcctBal
		})
	m, err := r.E.DistributedAggregate("q22", func(node int) query.Iter {
		return func(emit func(query.Row) error) error {
			h, err := r.buildMap(node, "q22map", r.scan(node, ordSet),
				func(row query.Row) []byte { return OCustKey(row) })
			if err != nil {
				return err
			}
			defer h.drop()
			anti := query.AntiJoin(r.scan(node, custSet), h.m,
				func(row query.Row) []byte { return CCustKey(row) })
			return anti(emit)
		}
	}, spec)
	if err != nil {
		return nil, err
	}
	return decodeF64s(m), nil
}
