package tpch

import (
	"fmt"
	"math"
)

// Result is a query result: one metric vector per group key. Single-row
// queries use the key "*".
type Result map[string][]float64

// ResultsEqual compares two results within a relative tolerance.
func ResultsEqual(a, b Result, tol float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("tpch: result sizes differ: %d vs %d", len(a), len(b))
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			return fmt.Errorf("tpch: key %q missing", k)
		}
		if len(va) != len(vb) {
			return fmt.Errorf("tpch: key %q metric counts differ: %d vs %d", k, len(va), len(vb))
		}
		for i := range va {
			d := math.Abs(va[i] - vb[i])
			scale := math.Max(math.Abs(va[i]), math.Abs(vb[i]))
			if scale < 1 {
				scale = 1
			}
			if d/scale > tol {
				return fmt.Errorf("tpch: key %q metric %d: %v vs %v", k, i, va[i], vb[i])
			}
		}
	}
	return nil
}

// Query parameter constants shared by the reference and Pangea plans so the
// two compute identical results.
var (
	// Q01: l_shipdate <= date '1998-12-01' - 90 days.
	Q01Cutoff = Date(1998, 9, 2)
	// Q02: p_size = 15, p_type like '%BRASS', region EUROPE (regionkey 3).
	Q02Size   = byte(15)
	Q02Region = byte(3)
	// Q04: o_orderdate in [1993-07-01, 1993-10-01).
	Q04Lo, Q04Hi = Date(1993, 7, 1), Date(1993, 10, 1)
	// Q06: shipdate in 1994, discount in [0.05, 0.07], quantity < 24.
	Q06Lo, Q06Hi = Date(1994, 1, 1), Date(1995, 1, 1)
	// Q12: shipmodes MAIL and SHIP, receiptdate in 1994.
	Q12ModeA, Q12ModeB = byte(ShipModeMail), byte(ShipModeShip)
	Q12Lo, Q12Hi       = Date(1994, 1, 1), Date(1995, 1, 1)
	// Q14: shipdate in [1995-09-01, 1995-10-01).
	Q14Lo, Q14Hi = Date(1995, 9, 1), Date(1995, 10, 1)
	// Q17: brand 12, container 7.
	Q17Brand, Q17Container = byte(12), byte(7)
	// Q22: the seven phone country codes.
	Q22Codes = []uint16{13, 31, 23, 29, 30, 18, 17}
)

func q22CodeIn(code uint16) bool {
	for _, c := range Q22Codes {
		if c == code {
			return true
		}
	}
	return false
}

// RefQ01 is the in-memory reference for TPC-H Q01 (pricing summary).
// Metrics per (returnflag, linestatus): sum_qty, sum_base_price,
// sum_disc_price, sum_charge, count.
func RefQ01(d *Data) Result {
	out := Result{}
	for _, rec := range d.Lineitem {
		l := DecodeLineitem(rec)
		if l.ShipDate > Q01Cutoff {
			continue
		}
		k := string([]byte{l.ReturnFlag, l.LineStatus})
		m := out[k]
		if m == nil {
			m = make([]float64, 5)
			out[k] = m
		}
		m[0] += float64(l.Quantity)
		m[1] += l.ExtendedPrice
		m[2] += l.ExtendedPrice * (1 - l.Discount)
		m[3] += l.ExtendedPrice * (1 - l.Discount) * (1 + l.Tax)
		m[4]++
	}
	return out
}

// RefQ02 is the reference for Q02 (minimum cost supplier): for parts with
// the wanted size and type in region EUROPE, count the (part, supplier)
// pairs achieving the minimum supply cost and sum their s_acctbal.
func RefQ02(d *Data) Result {
	suppNation := make(map[uint64]byte)
	suppBal := make(map[uint64]float64)
	for _, rec := range d.Supplier {
		s := DecodeSupplier(rec)
		suppNation[s.SuppKey] = s.NationKey
		suppBal[s.SuppKey] = s.AcctBal
	}
	wanted := make(map[uint64]bool)
	for _, rec := range d.Part {
		p := DecodePart(rec)
		if p.Size == Q02Size && p.TypeSuffix == TypeSuffixBrass {
			wanted[p.PartKey] = true
		}
	}
	minCost := make(map[uint64]float64)
	for _, rec := range d.PartSupp {
		ps := DecodePartSupp(rec)
		if !wanted[ps.PartKey] {
			continue
		}
		if NationRegion(suppNation[ps.SuppKey]) != Q02Region {
			continue
		}
		if c, ok := minCost[ps.PartKey]; !ok || ps.SupplyCost < c {
			minCost[ps.PartKey] = ps.SupplyCost
		}
	}
	var rows, bal float64
	for _, rec := range d.PartSupp {
		ps := DecodePartSupp(rec)
		c, ok := minCost[ps.PartKey]
		if !ok || ps.SupplyCost != c {
			continue
		}
		if NationRegion(suppNation[ps.SuppKey]) != Q02Region {
			continue
		}
		rows++
		bal += suppBal[ps.SuppKey]
	}
	return Result{"*": {rows, bal}}
}

// RefQ04 is the reference for Q04 (order priority checking).
func RefQ04(d *Data) Result {
	late := make(map[uint64]bool)
	for _, rec := range d.Lineitem {
		l := DecodeLineitem(rec)
		if l.CommitDate < l.ReceiptDate {
			late[l.OrderKey] = true
		}
	}
	out := Result{}
	for _, rec := range d.Orders {
		o := DecodeOrders(rec)
		if o.OrderDate < Q04Lo || o.OrderDate >= Q04Hi || !late[o.OrderKey] {
			continue
		}
		k := OrderPriorityName(o.OrderPriority)
		m := out[k]
		if m == nil {
			m = make([]float64, 1)
			out[k] = m
		}
		m[0]++
	}
	return out
}

// RefQ06 is the reference for Q06 (forecasting revenue change).
func RefQ06(d *Data) Result {
	var rev float64
	for _, rec := range d.Lineitem {
		l := DecodeLineitem(rec)
		if l.ShipDate >= Q06Lo && l.ShipDate < Q06Hi &&
			l.Discount >= 0.05-1e-9 && l.Discount <= 0.07+1e-9 &&
			l.Quantity < 24 {
			rev += l.ExtendedPrice * l.Discount
		}
	}
	return Result{"*": {rev}}
}

// RefQ12 is the reference for Q12 (shipping modes and order priority).
// Metrics per shipmode: high_line_count, low_line_count.
func RefQ12(d *Data) Result {
	prio := make(map[uint64]byte)
	for _, rec := range d.Orders {
		o := DecodeOrders(rec)
		prio[o.OrderKey] = o.OrderPriority
	}
	out := Result{}
	for _, rec := range d.Lineitem {
		l := DecodeLineitem(rec)
		if l.ShipMode != Q12ModeA && l.ShipMode != Q12ModeB {
			continue
		}
		if !(l.CommitDate < l.ReceiptDate && l.ShipDate < l.CommitDate) {
			continue
		}
		if l.ReceiptDate < Q12Lo || l.ReceiptDate >= Q12Hi {
			continue
		}
		k := ShipModeName(l.ShipMode)
		m := out[k]
		if m == nil {
			m = make([]float64, 2)
			out[k] = m
		}
		if p := prio[l.OrderKey]; p == 0 || p == 1 {
			m[0]++
		} else {
			m[1]++
		}
	}
	return out
}

// RefQ13 is the reference for Q13 (customer distribution): a histogram of
// customers by their count of non-special-request orders.
func RefQ13(d *Data) Result {
	perCust := make(map[uint64]int)
	for _, rec := range d.Orders {
		o := DecodeOrders(rec)
		if o.SpecialRequests {
			continue
		}
		perCust[o.CustKey]++
	}
	hist := make(map[int]float64)
	for _, rec := range d.Customer {
		c := DecodeCustomer(rec)
		hist[perCust[c.CustKey]]++
	}
	out := Result{}
	for cnt, n := range hist {
		out[fmt.Sprintf("%d", cnt)] = []float64{n}
	}
	return out
}

// RefQ14 is the reference for Q14 (promotion effect): 100 × promo revenue /
// total revenue for one ship month.
func RefQ14(d *Data) Result {
	promo := make(map[uint64]bool)
	for _, rec := range d.Part {
		p := DecodePart(rec)
		promo[p.PartKey] = p.Promo
	}
	var promoRev, rev float64
	for _, rec := range d.Lineitem {
		l := DecodeLineitem(rec)
		if l.ShipDate < Q14Lo || l.ShipDate >= Q14Hi {
			continue
		}
		v := l.ExtendedPrice * (1 - l.Discount)
		rev += v
		if promo[l.PartKey] {
			promoRev += v
		}
	}
	if rev == 0 {
		return Result{"*": {0}}
	}
	return Result{"*": {100 * promoRev / rev}}
}

// RefQ17 is the reference for Q17 (small-quantity-order revenue):
// sum(extendedprice)/7 over lines of one brand+container whose quantity is
// below 20% of the part's average quantity.
func RefQ17(d *Data) Result {
	var qtySum, qtyCnt = make(map[uint64]float64), make(map[uint64]float64)
	for _, rec := range d.Lineitem {
		l := DecodeLineitem(rec)
		qtySum[l.PartKey] += float64(l.Quantity)
		qtyCnt[l.PartKey]++
	}
	wanted := make(map[uint64]bool)
	for _, rec := range d.Part {
		p := DecodePart(rec)
		if p.Brand == Q17Brand && p.Container == Q17Container {
			wanted[p.PartKey] = true
		}
	}
	var sum float64
	for _, rec := range d.Lineitem {
		l := DecodeLineitem(rec)
		if !wanted[l.PartKey] {
			continue
		}
		avg := qtySum[l.PartKey] / qtyCnt[l.PartKey]
		if float64(l.Quantity) < 0.2*avg {
			sum += l.ExtendedPrice
		}
	}
	return Result{"*": {sum / 7.0}}
}

// RefQ22 is the reference for Q22 (global sales opportunity). Metrics per
// phone country code: numcust, totacctbal.
func RefQ22(d *Data) Result {
	var balSum, balCnt float64
	for _, rec := range d.Customer {
		c := DecodeCustomer(rec)
		if q22CodeIn(c.PhoneCode) && c.AcctBal > 0 {
			balSum += c.AcctBal
			balCnt++
		}
	}
	if balCnt == 0 {
		return Result{}
	}
	avg := balSum / balCnt
	hasOrders := make(map[uint64]bool)
	for _, rec := range d.Orders {
		hasOrders[DecodeOrders(rec).CustKey] = true
	}
	out := Result{}
	for _, rec := range d.Customer {
		c := DecodeCustomer(rec)
		if !q22CodeIn(c.PhoneCode) || c.AcctBal <= avg || hasOrders[c.CustKey] {
			continue
		}
		k := fmt.Sprintf("%d", c.PhoneCode)
		m := out[k]
		if m == nil {
			m = make([]float64, 2)
			out[k] = m
		}
		m[0]++
		m[1] += c.AcctBal
	}
	return out
}

// Reference dispatches a query by name.
func Reference(q string, d *Data) (Result, error) {
	switch q {
	case "Q01":
		return RefQ01(d), nil
	case "Q02":
		return RefQ02(d), nil
	case "Q04":
		return RefQ04(d), nil
	case "Q06":
		return RefQ06(d), nil
	case "Q12":
		return RefQ12(d), nil
	case "Q13":
		return RefQ13(d), nil
	case "Q14":
		return RefQ14(d), nil
	case "Q17":
		return RefQ17(d), nil
	case "Q22":
		return RefQ22(d), nil
	}
	return nil, fmt.Errorf("tpch: unknown query %q", q)
}

// QueryNames lists the nine benchmark queries in the paper's order.
var QueryNames = []string{"Q01", "Q02", "Q04", "Q06", "Q12", "Q13", "Q14", "Q17", "Q22"}
