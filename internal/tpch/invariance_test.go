package tpch

import (
	"testing"
)

// TestDistributionInvariance: query answers are identical on 1-node and
// 4-node deployments and independent of replica usage — the fundamental
// correctness property of the data placement and query scheduling layers.
func TestDistributionInvariance(t *testing.T) {
	d := Generate(0.0015, 77)
	want := map[string]Result{}
	for _, q := range QueryNames {
		res, err := Reference(q, d)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res
	}
	for _, nodes := range []int{1, 4} {
		e := startExec(t, nodes)
		if err := Load(e, d, 128<<10); err != nil {
			t.Fatal(err)
		}
		if _, err := BuildReplicas(e, 128<<10); err != nil {
			t.Fatal(err)
		}
		r := NewRunner(e, 2, true)
		for _, q := range QueryNames {
			got, err := r.Run(q)
			if err != nil {
				t.Fatalf("%d nodes %s: %v", nodes, q, err)
			}
			if err := ResultsEqual(want[q], got, 1e-9); err != nil {
				t.Errorf("%d nodes %s: %v", nodes, q, err)
			}
		}
	}
}

// TestQueriesUnderMemoryPressure: the replica-mode plans stay correct when
// worker pools are small enough to force spilling mid-query.
func TestQueriesUnderMemoryPressure(t *testing.T) {
	d := Generate(0.002, 13)
	e := startExecMem(t, 2, 1<<20) // 1 MiB pools vs ~700 KiB of data
	if err := Load(e, d, 32<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildReplicas(e, 32<<10); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(e, 2, true)
	r.PageSize = 32 << 10
	for _, q := range QueryNames {
		want, err := Reference(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Run(q)
		if err != nil {
			t.Fatalf("%s under pressure: %v", q, err)
		}
		if err := ResultsEqual(want, got, 1e-9); err != nil {
			t.Errorf("%s under pressure: %v", q, err)
		}
	}
	var evictions int64
	for _, w := range e.Workers {
		evictions += w.Pool().Stats().Evictions.Load()
	}
	if evictions == 0 {
		t.Error("expected evictions; raise the data size or shrink the pools")
	}
}

// TestRunUnknownQuery rejects bad names.
func TestRunUnknownQuery(t *testing.T) {
	e := startExec(t, 1)
	r := NewRunner(e, 1, true)
	if _, err := r.Run("Q99"); err == nil {
		t.Error("unknown query must error")
	}
	if _, err := Reference("Q99", Generate(0.0005, 1)); err == nil {
		t.Error("unknown reference must error")
	}
}
