// Package lint implements pangea-lint: a small go/analysis-style framework
// plus the analyzers that encode Pangea's hand-maintained invariants —
// pin/unpin pairing, the global lock order, gauge mutation discipline, and
// never-dropped I/O errors. The framework is deliberately self-contained
// (go/ast + go/types + `go list` only, no external modules) so the linter
// builds in the same sandbox as the tree it checks.
//
// Suppressions follow the staticcheck convention:
//
//	//lint:ignore <analyzer> <justification>
//
// placed on the flagged line or on the line directly above it. The
// justification is mandatory; an ignore directive without one does not
// suppress anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's parsed and type-checked form to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full pangea-lint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{PinLeak, LockOrder, GaugePair, ErrDrop}
}

// RunAnalyzers applies every analyzer to pkg, returning findings with
// suppressed diagnostics already removed and the rest sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
		}
	}
	diags = applySuppressions(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int // line the directive suppresses (its own, or the next)
	analyzers map[string]bool
}

// parseIgnores extracts //lint:ignore directives from a file. A directive
// suppresses matching diagnostics on the source line it shares (trailing
// comment) or, when it sits on a line of its own, on the next line.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) < 2 {
				// No justification: directive is inert by design.
				continue
			}
			names := map[string]bool{}
			for _, n := range strings.Split(fields[0], ",") {
				names[n] = true
			}
			// A trailing comment suppresses its own line; a comment on a
			// line of its own suppresses the next. Registering both lines
			// covers either placement without tracking token layout.
			pos := fset.Position(c.Pos())
			line := pos.Line
			out = append(out,
				ignoreDirective{file: pos.Filename, line: line, analyzers: names},
				ignoreDirective{file: pos.Filename, line: line + 1, analyzers: names})
		}
	}
	return out
}

// applySuppressions filters diags through the package's ignore directives.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	var ignores []ignoreDirective
	for _, f := range pkg.Files {
		ignores = append(ignores, parseIgnores(pkg.Fset, f)...)
	}
	if len(ignores) == 0 {
		return diags
	}
	keep := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ig := range ignores {
			if ig.file == d.Pos.Filename && ig.line == d.Pos.Line &&
				(ig.analyzers[d.Analyzer] || ig.analyzers["*"]) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			keep = append(keep, d)
		}
	}
	return keep
}
