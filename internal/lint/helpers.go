package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression invokes,
// or nil for calls through function values, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// namedRecv returns the named type of fn's receiver (dereferencing a
// pointer receiver), or nil if fn is not a method.
func namedRecv(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fieldSelection resolves expr as a field selection and returns the field
// variable plus the named type that declares it, or nils. Handles both
// `x.f` on a value/pointer of a named struct type and plain package-level
// variable references (declared == nil in that case).
func fieldSelection(info *types.Info, expr ast.Expr) (field *types.Var, owner *types.Named) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok {
			// Qualified identifier (pkg.Var): Uses on the Sel.
			if v, ok := info.Uses[e.Sel].(*types.Var); ok {
				return v, nil
			}
			return nil, nil
		}
		v, ok := sel.Obj().(*types.Var)
		if !ok || !v.IsField() {
			return nil, nil
		}
		t := sel.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, _ := t.(*types.Named)
		return v, named
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() {
			return v, nil
		}
	}
	return nil, nil
}

// pkgPathOf returns obj's package path, "" for universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// enclosingFuncName returns the name of the innermost function declaration
// enclosing pos within file: the method/function name for declarations,
// or the nearest named enclosing declaration for function literals.
func enclosingFuncName(file *ast.File, pos ast.Node) string {
	name := ""
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if fd, ok := n.(*ast.FuncDecl); ok {
			if fd.Pos() <= pos.Pos() && pos.End() <= fd.End() {
				name = fd.Name.Name
			}
		}
		return true
	})
	return name
}

// returnsError reports whether fn has at least one error result.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}
