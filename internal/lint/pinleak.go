package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinSource describes methods that return a pinned page the caller must
// release, and the method that releases it.
type PinSource struct {
	PkgPath string
	Type    string
	Pins    []string // methods returning (page, error) with the page pinned
	Release string   // method taking the page as first argument
}

// PinSources is the default registry: core.LocalitySet.Pin/NewPage hand
// out pinned pages; core.LocalitySet.Unpin releases them. Tests may append.
var PinSources = []PinSource{
	{
		PkgPath: "pangea/internal/core",
		Type:    "LocalitySet",
		Pins:    []string{"Pin", "NewPage"},
		Release: "Unpin",
	},
}

// PinLeak reports code paths on which a page obtained from Pin/NewPage can
// escape its scope still pinned: early returns between the pin and the
// Unpin (the classic error-path leak), fallthrough off the end of the
// pinning scope, and `_`-discarded pin results, which can never be
// unpinned at all.
//
// The analysis is intraprocedural and ownership-based: passing the page to
// any other function, storing it, returning it, or capturing it in a
// closure transfers ownership and ends tracking (the receiver is then
// responsible — Pangea helpers that consume pages unpin them). Method
// calls on the page itself (p.Bytes(), p.Num()) are reads, not transfers.
// The idiomatic `if err != nil { return err }` immediately after a pin is
// understood: no page exists on that branch.
var PinLeak = &Analyzer{
	Name: "pinleak",
	Doc: "flags LocalitySet.Pin/NewPage results that may not reach Unpin on " +
		"all paths, including error returns",
	Run: runPinLeak,
}

func pinSourceFor(fn *types.Func) *PinSource {
	recv := namedRecv(fn)
	if recv == nil {
		return nil
	}
	for i := range PinSources {
		s := &PinSources[i]
		if s.PkgPath == pkgPathOf(fn) && s.Type == recv.Obj().Name() {
			return s
		}
	}
	return nil
}

// isPinCall reports whether call obtains a pinned page.
func isPinCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	src := pinSourceFor(fn)
	if src == nil {
		return false
	}
	for _, m := range src.Pins {
		if m == fn.Name() {
			return true
		}
	}
	return false
}

// isReleaseCall reports whether call releases obj (s.Unpin(p, ...)).
func isReleaseCall(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	src := pinSourceFor(fn)
	if src == nil || fn.Name() != src.Release {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
			return true
		}
	}
	return false
}

func runPinLeak(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					findPins(pass, fn.Body)
				}
			case *ast.FuncLit:
				findPins(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// findPins locates pin assignments directly inside body's statement lists
// (skipping nested function literals, which are analyzed on their own) and
// tracks each one through its enclosing block.
func findPins(pass *Pass, body *ast.BlockStmt) {
	var visitList func(list []ast.Stmt)
	var visitStmt func(s ast.Stmt)
	visitStmt = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.BlockStmt:
			visitList(st.List)
		case *ast.IfStmt:
			visitList(st.Body.List)
			if st.Else != nil {
				visitStmt(st.Else)
			}
		case *ast.ForStmt:
			visitList(st.Body.List)
		case *ast.RangeStmt:
			visitList(st.Body.List)
		case *ast.SwitchStmt:
			for _, cc := range st.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					visitList(c.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range st.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					visitList(c.Body)
				}
			}
		case *ast.SelectStmt:
			for _, cc := range st.Body.List {
				if c, ok := cc.(*ast.CommClause); ok {
					visitList(c.Body)
				}
			}
		case *ast.LabeledStmt:
			visitStmt(st.Stmt)
		}
	}
	visitList = func(list []ast.Stmt) {
		for i, s := range list {
			if assign, ok := s.(*ast.AssignStmt); ok {
				if pin := pinAssign(pass, assign); pin != nil {
					trackPin(pass, pin, list[i+1:])
					continue
				}
			}
			visitStmt(s)
		}
	}
	visitList(body.List)
}

// pinnedVar is one tracked pin: the page variable, the error variable from
// the same assignment (nil once reassigned), and the pin position.
type pinnedVar struct {
	page ast.Expr // the call, for reporting
	obj  types.Object
	err  types.Object
	line int
}

// pinAssign recognizes `p, err := s.Pin(n)` / `= s.NewPage()` shapes and
// returns the tracking state, reporting discarded pages immediately. A nil
// return means the statement is not a trackable pin.
func pinAssign(pass *Pass, assign *ast.AssignStmt) *pinnedVar {
	if len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
		return nil
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || !isPinCall(pass.TypesInfo, call) {
		return nil
	}
	pageID, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return nil // pinned page stored directly into a field/element: owner escapes
	}
	if pageID.Name == "_" {
		pass.Reportf(call.Pos(),
			"pinned page is discarded: assign the %s result and Unpin it",
			calleeFunc(pass.TypesInfo, call).Name())
		return nil
	}
	if assign.Tok != token.DEFINE {
		// Reassignment into an existing variable: the page may outlive
		// this block; too aliased to track soundly.
		return nil
	}
	obj := pass.TypesInfo.Defs[pageID]
	if obj == nil {
		// `p, err :=` where p was declared earlier in the scope: go/types
		// records a Use instead of a Def.
		obj = pass.TypesInfo.Uses[pageID]
	}
	if obj == nil {
		return nil
	}
	pin := &pinnedVar{page: call, obj: obj, line: pass.Fset.Position(call.Pos()).Line}
	if errID, ok := assign.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
		if eo := pass.TypesInfo.Defs[errID]; eo != nil {
			pin.err = eo
		} else {
			pin.err = pass.TypesInfo.Uses[errID]
		}
	}
	return pin
}

// trackPin walks the statements after the pin within its scope and reports
// paths on which the page stays pinned.
func trackPin(pass *Pass, pin *pinnedVar, rest []ast.Stmt) {
	released, terminated := walkPin(pass, pin, rest, false, 0)
	if !released && !terminated {
		pass.Reportf(pin.page.Pos(),
			"pinned page '%s' goes out of scope without Unpin", pin.obj.Name())
	}
}

// usesObj reports whether obj appears under n in an ownership-consuming
// position: any use except as the receiver of a method call, a field/
// method selection base, or a nil comparison.
func usesObj(info *types.Info, n ast.Node, obj types.Object) (consumed, read bool) {
	if n == nil {
		return false, false
	}
	var parents []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			parents = parents[:len(parents)-1]
			return false
		}
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			read = true
			if !benignUse(parents, id) {
				consumed = true
			}
		}
		parents = append(parents, m)
		return true
	})
	return consumed, read
}

// benignUse reports whether the identifier's immediate context is a
// non-consuming read: `p.Field`, `p.Method(...)`, or `p == nil`/`p != nil`.
func benignUse(parents []ast.Node, id *ast.Ident) bool {
	if len(parents) == 0 {
		return false
	}
	switch p := parents[len(parents)-1].(type) {
	case *ast.SelectorExpr:
		return p.X == id // selection base: field read or method receiver
	case *ast.BinaryExpr:
		if p.Op == token.EQL || p.Op == token.NEQ {
			other := p.X
			if p.X == id {
				other = p.Y
			}
			if lit, ok := other.(*ast.Ident); ok && lit.Name == "nil" {
				return true
			}
		}
	}
	return false
}

// stmtReleases reports whether executing s releases or consumes the pin.
func stmtReleases(pass *Pass, pin *pinnedVar, s ast.Stmt) bool {
	released := false
	ast.Inspect(s, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && isReleaseCall(pass.TypesInfo, call, pin.obj) {
			released = true
			return false
		}
		return true
	})
	if released {
		return true
	}
	consumed, _ := usesObj(pass.TypesInfo, s, pin.obj)
	return consumed
}

// errCond classifies an if-condition against the pin's error variable:
// +1 for `err != nil` (pin failed inside the branch), -1 for `err == nil`
// (pin succeeded inside), 0 otherwise.
func errCond(pass *Pass, pin *pinnedVar, cond ast.Expr) int {
	if pin.err == nil {
		return 0
	}
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return 0
	}
	isErr := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == pin.err
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (isErr(be.X) && isNil(be.Y)) || (isErr(be.Y) && isNil(be.X)) {
		if be.Op == token.NEQ {
			return +1
		}
		return -1
	}
	return 0
}

// assignsErr reports whether s writes to the pin's error variable (which
// invalidates the err-nil branch special case from then on).
func assignsErr(pass *Pass, pin *pinnedVar, s ast.Stmt) bool {
	if pin.err == nil {
		return false
	}
	hit := false
	ast.Inspect(s, func(m ast.Node) bool {
		if as, ok := m.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if pass.TypesInfo.Uses[id] == pin.err || pass.TypesInfo.Defs[id] == pin.err {
						hit = true
					}
				}
			}
		}
		return true
	})
	return hit
}

// walkPin interprets stmts with the pin live. released carries "the pin
// has been released or its ownership transferred on this path". loopDepth
// counts loops entered since the pin's own block: break/continue at depth
// zero exit the pin's scope. Returns the fallthrough released state and
// whether every path through stmts terminated (returned).
func walkPin(pass *Pass, pin *pinnedVar, stmts []ast.Stmt, released bool, loopDepth int) (bool, bool) {
	reportReturn := func(ret *ast.ReturnStmt) {
		pass.Reportf(ret.Pos(),
			"pinned page '%s' (pinned at line %d) is not unpinned on this return path",
			pin.obj.Name(), pin.line)
	}
	for _, stmt := range stmts {
		if assignsErr(pass, pin, stmt) {
			pin.err = nil
		}
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			if released {
				return true, true
			}
			consumed, _ := usesObj(pass.TypesInfo, s, pin.obj)
			if consumed {
				return true, true // page returned to caller: ownership transfer
			}
			reportReturn(s)
			return released, true
		case *ast.BranchStmt:
			if s.Tok == token.GOTO {
				return true, true // cannot follow; stop tracking
			}
			if loopDepth == 0 && !released {
				// break/continue out of the iteration that pinned the
				// page: the variable dies with the iteration.
				pass.Reportf(s.Pos(),
					"pinned page '%s' (pinned at line %d) is not unpinned before this %s",
					pin.obj.Name(), pin.line, s.Tok)
				return released, true
			}
			return released, true
		case *ast.IfStmt:
			if s.Init != nil {
				if assignsErr(pass, pin, s.Init) {
					pin.err = nil
				}
				if stmtReleases(pass, pin, s.Init) {
					released = true
				}
			}
			condConsumed, _ := usesObj(pass.TypesInfo, s.Cond, pin.obj)
			if condConsumed {
				released = true
			}
			switch errCond(pass, pin, s.Cond) {
			case +1: // err != nil: no page exists inside the branch
				walkPin(pass, pin, s.Body.List, true, loopDepth)
				if s.Else != nil {
					r, t := walkPin(pass, pin, []ast.Stmt{s.Else}, released, loopDepth)
					if t {
						return r, true
					}
					released = r
				}
				continue
			case -1: // err == nil: page exists only inside the branch
				rB, tB := walkPin(pass, pin, s.Body.List, released, loopDepth)
				if s.Else != nil {
					walkPin(pass, pin, []ast.Stmt{s.Else}, true, loopDepth)
				}
				// After the if, the pin either never happened (err != nil
				// path) or went through the body.
				if tB {
					released = true
				} else {
					released = rB
				}
				continue
			}
			rB, tB := walkPin(pass, pin, s.Body.List, released, loopDepth)
			rE, tE := released, false
			if s.Else != nil {
				rE, tE = walkPin(pass, pin, []ast.Stmt{s.Else}, released, loopDepth)
			}
			if tB && tE {
				return released, true
			}
			switch {
			case tB:
				released = rE
			case tE:
				released = rB
			default:
				released = rB && rE
			}
		case *ast.BlockStmt:
			r, t := walkPin(pass, pin, s.List, released, loopDepth)
			if t {
				return r, true
			}
			released = r
		case *ast.ForStmt:
			walkPin(pass, pin, s.Body.List, released, loopDepth+1)
			if stmtReleases(pass, pin, s) {
				released = true
			}
		case *ast.RangeStmt:
			walkPin(pass, pin, s.Body.List, released, loopDepth+1)
			if stmtReleases(pass, pin, s) {
				released = true
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var bodies [][]ast.Stmt
			switch sw := s.(type) {
			case *ast.SwitchStmt:
				for _, cc := range sw.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						bodies = append(bodies, c.Body)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, cc := range sw.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						bodies = append(bodies, c.Body)
					}
				}
			case *ast.SelectStmt:
				for _, cc := range sw.Body.List {
					if c, ok := cc.(*ast.CommClause); ok {
						bodies = append(bodies, c.Body)
					}
				}
			}
			for _, b := range bodies {
				walkPin(pass, pin, b, released, loopDepth+1)
			}
			if stmtReleases(pass, pin, s) {
				released = true
			}
		case *ast.LabeledStmt:
			r, t := walkPin(pass, pin, []ast.Stmt{s.Stmt}, released, loopDepth)
			if t {
				return r, true
			}
			released = r
		default:
			if stmtReleases(pass, pin, stmt) {
				released = true
			}
		}
	}
	return released, false
}
