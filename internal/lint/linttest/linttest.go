// Package linttest runs lint analyzers over testdata packages and checks
// their diagnostics against `// want "regex"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest: every line carrying a want
// comment must produce diagnostics matching its regexes one-to-one, and no
// unannotated diagnostics may appear.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pangea/internal/lint"
)

// wantKey addresses one source line.
type wantKey struct {
	file string
	line int
}

// Run loads the package at pattern (relative to the calling test's
// directory, e.g. "./testdata/src/pinleak") and applies the analyzers,
// comparing diagnostics against the package's want comments.
func Run(t *testing.T, pattern string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.Load("", pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("pattern %s matched %d packages, want 1", pattern, len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("testdata does not type-check: %v", terr)
	}
	if t.Failed() {
		t.FailNow()
	}

	diags, err := lint.RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	wants := parseWants(t, pkg)
	matched := 0
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		res := wants[key]
		hit := -1
		for i, re := range res {
			if re != nil && re.MatchString(d.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer)
			continue
		}
		res[hit] = nil // consume
		matched++
	}
	for key, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, re)
			}
		}
	}
	if matched == 0 {
		t.Errorf("analyzer never fired on %s: every testdata package must contain flagged shapes", pattern)
	}
}

// parseWants extracts want comments: `// want "re1" "re2"` attached to the
// line the comment starts on.
func parseWants(t *testing.T, pkg *lint.Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, q := range splitQuoted(t, pos.String(), rest) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, q, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted strings.
func splitQuoted(t *testing.T, at, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: malformed want comment near %q", at, s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated want string: %q", at, s)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want string %q: %v", at, s[:end+1], err)
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no patterns", at)
	}
	return out
}
