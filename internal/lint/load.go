package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Package is one loaded, parsed and type-checked target package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors collects soft type-check failures. Analysis proceeds on
	// the partial information go/types recovered.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load builds the packages matching patterns (relative to dir, "" = cwd)
// and returns the non-dependency matches parsed and type-checked. It shells
// out to `go list -export -deps -json`, so dependencies — the standard
// library included — are imported from compiler export data rather than
// re-type-checked from source; only the target packages themselves are
// parsed. This is the offline-friendly core of what
// golang.org/x/tools/go/packages does for analysis drivers.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,ImportMap,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Cgo off: keeps GoFiles == the compiled file set, so parsing GoFiles
	// matches what the export data of sibling packages was built from.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}   // import path -> export data file
	importMap := map[string]string{} // source import path -> canonical
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil && len(t.GoFiles) == 0 {
			return nil, fmt.Errorf("go list: %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := typecheck(t, exports, importMap)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one target package against the export
// data of its dependencies.
func typecheck(t *listedPackage, exports, importMap map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !strings.HasPrefix(path, "/") {
			path = t.Dir + "/" + name
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}

	pkg := &Package{PkgPath: t.ImportPath, Dir: t.Dir, Fset: fset, Files: files}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, _ := conf.Check(t.ImportPath, fset, files, info)
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}
