// Package gaugepair is gaugepair analyzer testdata. The test registers
// Tracker.resident with blessed helpers charge/release; raw mutations
// elsewhere must be flagged, loads never.
package gaugepair

import "sync/atomic"

type Tracker struct {
	resident atomic.Int64
	other    atomic.Int64 // unregistered: never flagged
}

// charge is a blessed helper.
func (t *Tracker) charge(n int64) int64 { return t.resident.Add(n) }

// release is a blessed helper.
func (t *Tracker) release(n int64) { t.resident.Add(-n) }

// --- clean shapes ---

func goodViaHelpers(t *Tracker) {
	t.charge(4096)
	t.release(4096)
}

func goodLoad(t *Tracker) int64 {
	return t.resident.Load() // loads are unrestricted
}

func goodOtherField(t *Tracker) {
	t.other.Add(1) // not a registered gauge
}

// --- flagged shapes ---

func badRawAdd(t *Tracker) {
	t.resident.Add(4096) // want "raw Add on gauge Tracker.resident outside its blessed helpers"
}

func badRawStore(t *Tracker) {
	t.resident.Store(0) // want "raw Store on gauge Tracker.resident outside its blessed helpers"
}

func badInClosure(t *Tracker) func() {
	return func() {
		t.resident.Add(-4096) // want "raw Add on gauge Tracker.resident outside its blessed helpers"
	}
}

// --- suppression ---

func suppressedReset(t *Tracker) {
	//lint:ignore gaugepair test-only counter reset outside the charge/release pairing
	t.resident.Store(0)
}
