// Package pinleak is pinleak analyzer testdata: Set/Page mirror the
// core.LocalitySet pin protocol (registered by the test), covering flagged
// and clean shapes.
package pinleak

import "errors"

type Page struct {
	Data []byte
}

func (p *Page) Bytes() []byte { return p.Data }
func (p *Page) Num() int64    { return 0 }

type Set struct{}

func (s *Set) Pin(num int64) (*Page, error)    { return &Page{}, nil }
func (s *Set) NewPage() (*Page, error)         { return &Page{}, nil }
func (s *Set) Unpin(p *Page, dirty bool) error { return nil }

func consume(p *Page) {}

var errBoom = errors.New("boom")

// --- clean shapes ---

func goodDeferred(s *Set) error {
	p, err := s.Pin(1)
	if err != nil {
		return err
	}
	defer s.Unpin(p, false)
	if len(p.Bytes()) == 0 {
		return errBoom
	}
	return nil
}

func goodExplicit(s *Set) error {
	p, err := s.NewPage()
	if err != nil {
		return err
	}
	copy(p.Bytes(), "hello")
	return s.Unpin(p, true)
}

func goodTransfer(s *Set) (*Page, error) {
	p, err := s.Pin(2)
	if err != nil {
		return nil, err
	}
	return p, nil // ownership moves to the caller
}

func goodHelper(s *Set) error {
	p, err := s.Pin(3)
	if err != nil {
		return err
	}
	consume(p) // ownership moves to the helper
	return nil
}

func goodBranches(s *Set, cold bool) error {
	p, err := s.Pin(4)
	if err != nil {
		return err
	}
	if cold {
		return s.Unpin(p, false)
	}
	return s.Unpin(p, true)
}

func goodErrEqNil(s *Set) {
	p, err := s.NewPage()
	if err == nil {
		consume(p)
	}
}

func goodClosureCapture(s *Set) (func(), error) {
	p, err := s.Pin(5)
	if err != nil {
		return nil, err
	}
	return func() { _ = s.Unpin(p, false) }, nil
}

// --- flagged shapes ---

func badDiscard(s *Set) error {
	_, err := s.Pin(10) // want "pinned page is discarded"
	return err
}

func badEarlyReturn(s *Set, work func() error) error {
	p, err := s.Pin(11)
	if err != nil {
		return err
	}
	if err := work(); err != nil {
		return err // want "pinned page 'p' .* not unpinned on this return path"
	}
	return s.Unpin(p, false)
}

func badScopeEnd(s *Set) {
	p, err := s.Pin(12) // want "pinned page 'p' goes out of scope without Unpin"
	if err != nil {
		return
	}
	_ = p.Num()
}

func badReusedErr(s *Set, work func() error) error {
	p, err := s.Pin(13)
	if err != nil {
		return err
	}
	err = work()
	if err != nil {
		return err // want "pinned page 'p' .* not unpinned on this return path"
	}
	return s.Unpin(p, true)
}

func badLoopContinue(s *Set, skip func(int64) bool) error {
	for i := int64(0); i < 8; i++ {
		p, err := s.Pin(i)
		if err != nil {
			return err
		}
		if skip(p.Num()) {
			continue // want "pinned page 'p' .* not unpinned before this continue"
		}
		if err := s.Unpin(p, false); err != nil {
			return err
		}
	}
	return nil
}

// --- suppression: the ignore directive must silence the early return ---

func suppressed(s *Set, work func() error) error {
	p, err := s.Pin(20)
	if err != nil {
		return err
	}
	if err := work(); err != nil {
		//lint:ignore pinleak the page is intentionally left pinned for the process lifetime in this shape
		return err
	}
	return s.Unpin(p, false)
}
