// Package errdrop is errdrop analyzer testdata. The test registers this
// package's Spill/Flush/Close as must-check functions; Log stays
// unregistered.
package errdrop

import "errors"

type Writer struct{}

func (w *Writer) Spill(page int64) error { return errors.New("spill failed") }
func (w *Writer) Close() error           { return nil }

func Flush() error { return nil }

// Log is not in the rule set: its dropped error is fine.
func Log() error { return nil }

// --- clean shapes ---

func goodChecked(w *Writer) error {
	if err := w.Spill(1); err != nil {
		return err
	}
	return Flush()
}

func goodExplicitDiscard(w *Writer) {
	// An explicit blank assignment documents the drop; the analyzer leaves
	// the escape hatch to the reviewer.
	_ = w.Spill(2)
}

func goodUnregistered() {
	Log()
}

// --- flagged shapes ---

func badDropped(w *Writer) {
	w.Spill(3) // want "error result of errdrop.Writer.Spill is discarded"
}

func badDroppedFunc() {
	Flush() // want "error result of errdrop.Flush is discarded"
}

func badDeferred(w *Writer) {
	defer w.Close() // want "error result of errdrop.Writer.Close is discarded \\(in deferred call\\)"
	w.Spill(4)      // want "error result of errdrop.Writer.Spill is discarded"
}

func badGoroutine(w *Writer) {
	go w.Spill(5) // want "error result of errdrop.Writer.Spill is discarded \\(in go statement\\)"
}

// --- suppression ---

func suppressedDrop(w *Writer) {
	//lint:ignore errdrop best-effort cleanup on an already-failing path
	w.Spill(6)
}
