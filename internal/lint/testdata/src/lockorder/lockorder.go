// Package lockorder is lockorder analyzer testdata. The test registers
// Registry.mu -> Set.mu -> Shard.mu (ranks 20/30/50) in the order table;
// acquisitions here exercise in-order, inverted and same-rank shapes.
package lockorder

import "pangea/internal/locking"

type Registry struct {
	mu locking.RWMutex
}

type Set struct {
	mu locking.Mutex
}

type Shard struct {
	mu locking.Mutex
}

// --- clean shapes ---

func goodNested(r *Registry, s *Set, sh *Shard) {
	r.mu.Lock()
	s.mu.Lock()
	sh.mu.Lock()
	sh.mu.Unlock()
	s.mu.Unlock()
	r.mu.Unlock()
}

func goodSequential(r *Registry, s *Set) {
	r.mu.Lock()
	r.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
	r.mu.RLock() // re-acquiring after release is not nesting
	r.mu.RUnlock()
}

func goodDeferredUnlock(s *Set, sh *Shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh.mu.Lock()
	sh.mu.Unlock()
}

func goodBranchRelease(r *Registry, s *Set, cold bool) {
	s.mu.Lock()
	if cold {
		s.mu.Unlock()
		r.mu.Lock() // set lock released on this path before registry
		r.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// --- flagged shapes ---

func badInversion(r *Registry, s *Set) {
	s.mu.Lock()
	r.mu.Lock() // want "lock order violation: acquiring lockorder.Registry.mu\\(rank 20\\) while holding lockorder.Set.mu\\(rank 30\\)"
	r.mu.Unlock()
	s.mu.Unlock()
}

func badReadInversion(r *Registry, sh *Shard) {
	sh.mu.Lock()
	r.mu.RLock() // want "lock order violation"
	r.mu.RUnlock()
	sh.mu.Unlock()
}

func badSameRank(a, b *Set) {
	a.mu.Lock()
	b.mu.Lock() // want "lock order violation"
	b.mu.Unlock()
	a.mu.Unlock()
}

func badAfterDeferredUnlock(s *Set, r *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock() // set stays held to function end
	r.mu.Lock()         // want "lock order violation"
	r.mu.Unlock()
}

func badInsideBranch(r *Registry, s *Set, cold bool) {
	s.mu.Lock()
	if cold {
		r.mu.Lock() // want "lock order violation"
		r.mu.Unlock()
	}
	s.mu.Unlock()
}

// --- suppression ---

func suppressedInversion(r *Registry, s *Set) {
	s.mu.Lock()
	//lint:ignore lockorder deliberate inversion in testdata to prove the directive works
	r.mu.Lock()
	r.mu.Unlock()
	s.mu.Unlock()
}
