package lint

import (
	"go/ast"
	"go/types"

	"pangea/internal/locking"
)

// LockClass places one mutex field in the global lock order. Type may be
// empty to register a package-level mutex variable.
type LockClass struct {
	PkgPath string
	Type    string
	Field   string
	Rank    locking.Rank
}

func (c *LockClass) String() string {
	pkg := c.PkgPath
	for i := len(pkg) - 1; i >= 0; i-- {
		if pkg[i] == '/' {
			pkg = pkg[i+1:]
			break
		}
	}
	if c.Type == "" {
		return pkg + "." + c.Field
	}
	return pkg + "." + c.Type + "." + c.Field
}

// LockOrderTable is the declarative order registry, mirroring the ranks in
// internal/locking (the runtime twin enforces the same table under
// -tags pangea_checks). Tests may append entries.
var LockOrderTable = []LockClass{
	{"pangea/internal/cluster", "Worker", "mu", locking.RankWorker},
	{"pangea/internal/cluster", "setWriter", "mu", locking.RankSetWriter},
	{"pangea/internal/core", "BufferPool", "regMu", locking.RankRegistry},
	{"pangea/internal/core", "LocalitySet", "mu", locking.RankSet},
	{"pangea/internal/services", "ZoneMap", "mu", locking.RankZoneMap},
	{"pangea/internal/services", "Microindex", "mu", locking.RankMicroindex},
	{"pangea/internal/memory", "tlsfShard", "cacheMu", locking.RankAllocCache},
	{"pangea/internal/memory", "TLSF", "mu", locking.RankAllocTLSF},
	{"pangea/internal/pfs", "PagedFile", "mu", locking.RankPFS},
	{"pangea/internal/disk", "Queue", "mu", locking.RankIOQueue},
	{"pangea/internal/disk", "Disk", "mu", locking.RankDisk},
}

// LockOrder statically checks Lock/RLock nesting inside each function
// against LockOrderTable: acquiring a class whose rank is <= the rank of a
// class already held is an inversion. The analysis is intraprocedural and
// follows statement order; locks taken in one branch are not assumed held
// after the branch rejoins, and a deferred Unlock keeps its class held to
// function end (which is exactly what it does at run time). The
// pangea_checks runtime twin covers the interprocedural cases.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "flags mutex acquisitions that invert the documented Pangea lock order " +
		"(registry -> set -> allocator shard -> pfs index -> I/O queue -> disk)",
	Run: runLockOrder,
}

var lockMethods = map[string]bool{"Lock": true, "RLock": true, "TryLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

func lockClassFor(pkgPath, typ, field string) *LockClass {
	for i := range LockOrderTable {
		c := &LockOrderTable[i]
		if c.PkgPath == pkgPath && c.Type == typ && c.Field == field {
			return c
		}
	}
	return nil
}

// classOf resolves the lock class of a Lock/Unlock call's operand, or nil.
func classOf(info *types.Info, call *ast.CallExpr) *LockClass {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	field, owner := fieldSelection(info, sel.X)
	if field == nil {
		return nil
	}
	typ := ""
	if owner != nil {
		typ = owner.Obj().Name()
	}
	return lockClassFor(pkgPathOf(field), typ, field.Name())
}

type heldClass struct {
	class *LockClass
}

func runLockOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				walkLockOrder(pass, fd.Body.List, nil)
				return false
			}
			return true
		})
	}
	return nil
}

// scanLockCalls finds ranked Lock/Unlock calls inside a single statement
// or expression (conditions, init statements, call arguments) in source
// order and applies them to held. Nested function literals are skipped:
// their bodies run on their own call schedule, not at this point.
func scanLockCalls(pass *Pass, n ast.Node, held *[]heldClass, skipDefer bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			walkLockOrder(pass, x.Body.List, nil)
			return false
		case *ast.DeferStmt:
			if skipDefer {
				// A deferred Unlock releases at function end; model it by
				// leaving the class held for the rest of the walk. A
				// deferred Lock inside would be bizarre; ignore likewise.
				return false
			}
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if lockMethods[sel.Sel.Name] {
				if c := classOf(pass.TypesInfo, x); c != nil {
					for _, h := range *held {
						if h.class.Rank >= c.Rank {
							pass.Reportf(x.Pos(),
								"lock order violation: acquiring %s(rank %d) while holding %s(rank %d)",
								c, c.Rank, h.class, h.class.Rank)
							return true
						}
					}
					*held = append(*held, heldClass{class: c})
				}
			} else if unlockMethods[sel.Sel.Name] {
				if c := classOf(pass.TypesInfo, x); c != nil {
					for i := len(*held) - 1; i >= 0; i-- {
						if (*held)[i].class == c {
							*held = append((*held)[:i], (*held)[i+1:]...)
							break
						}
					}
				}
			}
		}
		return true
	})
}

// walkLockOrder interprets stmts in order, tracking the held set. Branch
// bodies are checked with a copy of the held set; their effects do not
// propagate past the branch (conservative: under-tracking can miss
// violations but cannot invent them).
func walkLockOrder(pass *Pass, stmts []ast.Stmt, held []heldClass) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			walkLockOrder(pass, s.List, append([]heldClass(nil), held...))
		case *ast.IfStmt:
			scanLockCalls(pass, s.Init, &held, true)
			scanLockCalls(pass, s.Cond, &held, true)
			walkLockOrder(pass, s.Body.List, append([]heldClass(nil), held...))
			if s.Else != nil {
				walkLockOrder(pass, []ast.Stmt{s.Else}, append([]heldClass(nil), held...))
			}
		case *ast.ForStmt:
			scanLockCalls(pass, s.Init, &held, true)
			scanLockCalls(pass, s.Cond, &held, true)
			walkLockOrder(pass, s.Body.List, append([]heldClass(nil), held...))
		case *ast.RangeStmt:
			scanLockCalls(pass, s.X, &held, true)
			walkLockOrder(pass, s.Body.List, append([]heldClass(nil), held...))
		case *ast.SwitchStmt:
			scanLockCalls(pass, s.Init, &held, true)
			scanLockCalls(pass, s.Tag, &held, true)
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					walkLockOrder(pass, c.Body, append([]heldClass(nil), held...))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					walkLockOrder(pass, c.Body, append([]heldClass(nil), held...))
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CommClause); ok {
					walkLockOrder(pass, c.Body, append([]heldClass(nil), held...))
				}
			}
		case *ast.LabeledStmt:
			walkLockOrder(pass, []ast.Stmt{s.Stmt}, held)
		case *ast.DeferStmt:
			// Deferred unlocks keep the class held to function end: skip
			// the release but still check any Lock calls in the deferred
			// expression's arguments, and walk deferred closures.
			scanLockCalls(pass, s.Call.Fun, &held, true)
			for _, a := range s.Call.Args {
				scanLockCalls(pass, a, &held, true)
			}
		default:
			scanLockCalls(pass, stmt, &held, false)
		}
	}
}
