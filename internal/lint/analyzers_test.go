package lint_test

import (
	"testing"

	"pangea/internal/lint"
	"pangea/internal/lint/linttest"
	"pangea/internal/locking"
)

const tdBase = "pangea/internal/lint/testdata/src/"

func TestPinLeak(t *testing.T) {
	orig := lint.PinSources
	lint.PinSources = append(lint.PinSources, lint.PinSource{
		PkgPath: tdBase + "pinleak",
		Type:    "Set",
		Pins:    []string{"Pin", "NewPage"},
		Release: "Unpin",
	})
	defer func() { lint.PinSources = orig }()
	linttest.Run(t, "./testdata/src/pinleak", lint.PinLeak)
}

func TestLockOrder(t *testing.T) {
	orig := lint.LockOrderTable
	lint.LockOrderTable = append(lint.LockOrderTable,
		lint.LockClass{PkgPath: tdBase + "lockorder", Type: "Registry", Field: "mu", Rank: locking.RankRegistry},
		lint.LockClass{PkgPath: tdBase + "lockorder", Type: "Set", Field: "mu", Rank: locking.RankSet},
		lint.LockClass{PkgPath: tdBase + "lockorder", Type: "Shard", Field: "mu", Rank: locking.RankAllocCache},
	)
	defer func() { lint.LockOrderTable = orig }()
	linttest.Run(t, "./testdata/src/lockorder", lint.LockOrder)
}

func TestGaugePair(t *testing.T) {
	orig := lint.GaugeTable
	lint.GaugeTable = append(lint.GaugeTable, lint.GaugeField{
		PkgPath: tdBase + "gaugepair",
		Type:    "Tracker",
		Field:   "resident",
		Allowed: []string{"charge", "release"},
	})
	defer func() { lint.GaugeTable = orig }()
	linttest.Run(t, "./testdata/src/gaugepair", lint.GaugePair)
}

func TestErrDrop(t *testing.T) {
	orig := lint.ErrDropRules
	lint.ErrDropRules = append(lint.ErrDropRules, lint.ErrDropRule{
		PkgPath: tdBase + "errdrop",
		Names:   []string{"Spill", "Flush", "Close"},
	})
	defer func() { lint.ErrDropRules = orig }()
	linttest.Run(t, "./testdata/src/errdrop", lint.ErrDrop)
}

// TestRealTreeClean is the in-repo twin of the CI lint job: the shipped
// tree must produce zero diagnostics (after suppressions).
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and analyzes the whole module; skipped in -short")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, lint.Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
		}
	}
}
