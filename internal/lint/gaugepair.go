package lint

import (
	"go/ast"
)

// GaugeField marks an atomic gauge whose mutations must flow through a
// blessed set of charge/release helpers so every charge has a matching
// release and the accounting stays greppable.
type GaugeField struct {
	PkgPath string
	Type    string
	Field   string
	// Allowed lists the names of the functions/methods permitted to
	// mutate the gauge (the blessed helpers themselves).
	Allowed []string
}

// GaugeTable is the default gauge registry: the admission-control gauges
// of internal/core, which PR 4 made load-bearing for fairness — a
// mismatched Add corrupts entitlement math silently. Tests may append.
var GaugeTable = []GaugeField{
	{"pangea/internal/core", "LocalitySet", "residentBytes",
		[]string{"chargeResident", "releaseResident"}},
	{"pangea/internal/core", "LocalitySet", "pendingBytes",
		[]string{"chargePending", "releasePending"}},
	{"pangea/internal/core", "BufferPool", "loadStarved",
		[]string{"noteStarved", "consumeStarved"}},
}

// mutatingMethods are the atomic methods that change a gauge's value;
// loads stay unrestricted.
var mutatingMethods = map[string]bool{
	"Add": true, "Store": true, "Swap": true,
	"CompareAndSwap": true, "And": true, "Or": true,
}

// GaugePair reports raw atomic mutations of registered gauge fields made
// outside their blessed charge/release helpers.
var GaugePair = &Analyzer{
	Name: "gaugepair",
	Doc: "flags raw atomic Add/Store on residency/pending/starved gauge fields " +
		"outside the blessed charge/release helpers in internal/core",
	Run: runGaugePair,
}

func gaugeFor(pkgPath, typ, field string) *GaugeField {
	for i := range GaugeTable {
		g := &GaugeTable[i]
		if g.PkgPath == pkgPath && g.Type == typ && g.Field == field {
			return g
		}
	}
	return nil
}

func runGaugePair(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !mutatingMethods[sel.Sel.Name] {
				return true
			}
			field, owner := fieldSelection(pass.TypesInfo, sel.X)
			if field == nil || owner == nil {
				return true
			}
			g := gaugeFor(pkgPathOf(field), owner.Obj().Name(), field.Name())
			if g == nil {
				return true
			}
			encl := enclosingFuncName(f, call)
			for _, a := range g.Allowed {
				if a == encl {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"raw %s on gauge %s.%s outside its blessed helpers (%v)",
				sel.Sel.Name, owner.Obj().Name(), field.Name(), g.Allowed)
			return true
		})
	}
	return nil
}
