package lint

import (
	"go/ast"
	"strings"
)

// ErrDropRule marks functions whose error results must never be discarded.
// An empty Names list covers every error-returning function and method of
// the package.
type ErrDropRule struct {
	PkgPath string
	Names   []string
}

// ErrDropRules is the default rule set: the storage stack's spill, queue
// and paged-file layers — the exact shape of the PR 2 swallowed
// eviction-error bug — plus the core and services entry points whose
// errors carry data-loss information. Tests may append rules.
var ErrDropRules = []ErrDropRule{
	{PkgPath: "pangea/internal/pfs"},
	{PkgPath: "pangea/internal/disk"},
	{PkgPath: "pangea/internal/core", Names: []string{
		"Unpin", "FlushAll", "DropSet", "WriteSideObject", "Close", "Shutdown",
	}},
	{PkgPath: "pangea/internal/services", Names: []string{
		"Add", "Close", "Flush", "Save", "AppendServiceRecord",
	}},
}

// ErrDrop reports call statements that discard an error result from the
// configured spill/evict/queue/pfs functions.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flags discarded error results from spill/evict/queue/pfs functions; " +
		"an explicit `_ =` assignment or //lint:ignore marks a deliberate drop",
	Run: runErrDrop,
}

func errDropMatch(pkgPath, name string) bool {
	for _, r := range ErrDropRules {
		if r.PkgPath != pkgPath {
			continue
		}
		if len(r.Names) == 0 {
			return true
		}
		for _, n := range r.Names {
			if n == name {
				return true
			}
		}
	}
	return false
}

func runErrDrop(pass *Pass) error {
	check := func(call *ast.CallExpr, how string) {
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || !returnsError(fn) {
			return
		}
		if !errDropMatch(pkgPathOf(fn), fn.Name()) {
			return
		}
		qual := fn.Name()
		if recv := namedRecv(fn); recv != nil {
			qual = recv.Obj().Name() + "." + qual
		}
		pkg := pkgPathOf(fn)
		pkg = pkg[strings.LastIndex(pkg, "/")+1:]
		pass.Reportf(call.Pos(), "error result of %s.%s is discarded%s", pkg, qual, how)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.GoStmt:
				check(s.Call, " (in go statement)")
			case *ast.DeferStmt:
				check(s.Call, " (in deferred call)")
			}
			return true
		})
	}
	return nil
}
