package layered

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"pangea/internal/disk"
)

// Storage is the layer below the Spark-like engine: a block-oriented store
// holding serialized objects. Adapters wrap the HDFS, Alluxio and Ignite
// baselines so the same engine runs over each — the three Spark
// configurations of Fig 3.
type Storage interface {
	Name() string
	Create(name string)
	// Append serializes one object into a block of the dataset.
	Append(name string, block int, obj []byte) error
	// NumBlocks reports how many blocks the dataset has.
	NumBlocks(name string) int
	// ScanBlock deserializes every object of one block to fn.
	ScanBlock(name string, block int, fn func(obj []byte) error) error
	// MemoryUsed reports the layer's own RAM footprint (worker memory,
	// off-heap region, or OS buffer cache) for the Fig 4 accounting.
	MemoryUsed() int64
	Remove(name string) error
}

func blockFile(name string, block int) string { return fmt.Sprintf("%s#%d", name, block) }

// --- HDFS adapter -------------------------------------------------------------

type hdfsStorage struct {
	h    *HDFS
	nblk map[string]int
}

// NewHDFSStorage adapts the HDFS baseline to the Spark engine.
func NewHDFSStorage(arr *disk.Array, cacheBytes int64) Storage {
	return &hdfsStorage{h: NewHDFS(arr, cacheBytes), nblk: make(map[string]int)}
}

func (s *hdfsStorage) Name() string              { return "HDFS" }
func (s *hdfsStorage) Create(name string)        { s.nblk[name] = 0 }
func (s *hdfsStorage) NumBlocks(name string) int { return s.nblk[name] }

func (s *hdfsStorage) Append(name string, block int, obj []byte) error {
	if block >= s.nblk[name] {
		s.nblk[name] = block + 1
		s.h.Create(blockFile(name, block))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(obj)))
	if err := s.h.Append(blockFile(name, block), hdr[:]); err != nil {
		return err
	}
	return s.h.Append(blockFile(name, block), obj)
}

func (s *hdfsStorage) ScanBlock(name string, block int, fn func(obj []byte) error) error {
	var pending []byte
	return s.h.Scan(blockFile(name, block), func(chunk []byte) error {
		pending = append(pending, chunk...)
		for len(pending) >= 4 {
			n := binary.LittleEndian.Uint32(pending[0:4])
			if len(pending) < 4+int(n) {
				break
			}
			if err := fn(pending[4 : 4+n]); err != nil {
				return err
			}
			pending = pending[4+n:]
		}
		return nil
	})
}

func (s *hdfsStorage) MemoryUsed() int64 {
	// The OS buffer cache under the data nodes.
	var n int64
	for _, fs := range s.h.fss {
		n += int64(len(fs.cache)) * OSVMPageSize
	}
	return n
}

func (s *hdfsStorage) Remove(name string) error {
	for b := 0; b < s.nblk[name]; b++ {
		if err := s.h.Remove(blockFile(name, b)); err != nil {
			return err
		}
	}
	delete(s.nblk, name)
	return nil
}

// --- Alluxio adapter -----------------------------------------------------------

type alluxioStorage struct {
	a    *Alluxio
	nblk map[string]int
}

// NewAlluxioStorage adapts the Alluxio baseline to the Spark engine.
func NewAlluxioStorage(memBytes int64) Storage {
	return &alluxioStorage{a: NewAlluxio(memBytes), nblk: make(map[string]int)}
}

func (s *alluxioStorage) Name() string              { return "Alluxio" }
func (s *alluxioStorage) Create(name string)        { s.nblk[name] = 0 }
func (s *alluxioStorage) NumBlocks(name string) int { return s.nblk[name] }

func (s *alluxioStorage) Append(name string, block int, obj []byte) error {
	if block >= s.nblk[name] {
		s.nblk[name] = block + 1
		s.a.Create(blockFile(name, block))
	}
	return s.a.WriteObject(blockFile(name, block), obj)
}

func (s *alluxioStorage) ScanBlock(name string, block int, fn func(obj []byte) error) error {
	return s.a.Scan(blockFile(name, block), fn)
}

func (s *alluxioStorage) MemoryUsed() int64 { return s.a.Used() }

func (s *alluxioStorage) Remove(name string) error {
	for b := 0; b < s.nblk[name]; b++ {
		s.a.Remove(blockFile(name, b))
	}
	delete(s.nblk, name)
	return nil
}

// --- Ignite adapter --------------------------------------------------------------

type igniteStorage struct {
	g    *Ignite
	nblk map[string]int
}

// NewIgniteStorage adapts the Ignite baseline to the Spark engine.
func NewIgniteStorage(offHeapBytes int64) Storage {
	return &igniteStorage{g: NewIgnite(offHeapBytes), nblk: make(map[string]int)}
}

func (s *igniteStorage) Name() string              { return "Ignite" }
func (s *igniteStorage) Create(name string)        { s.nblk[name] = 0 }
func (s *igniteStorage) NumBlocks(name string) int { return s.nblk[name] }

func (s *igniteStorage) Append(name string, block int, obj []byte) error {
	if block >= s.nblk[name] {
		s.nblk[name] = block + 1
		s.g.Create(blockFile(name, block))
	}
	return s.g.WriteObject(blockFile(name, block), obj)
}

func (s *igniteStorage) ScanBlock(name string, block int, fn func(obj []byte) error) error {
	return s.g.Scan(blockFile(name, block), fn)
}

func (s *igniteStorage) MemoryUsed() int64 { return s.g.Used() }

func (s *igniteStorage) Remove(name string) error {
	for b := 0; b < s.nblk[name]; b++ {
		s.g.Remove(blockFile(name, b))
	}
	delete(s.nblk, name)
	return nil
}

// --- the Spark-like engine -------------------------------------------------------

// rddCache is the Spark storage pool: deserialized blocks under LRU, with
// whole-block eviction (evicted blocks are recomputed from the storage
// layer, as Spark lineage does).
type rddCache struct {
	capacity int64
	used     int64
	blocks   map[string][][]byte
	sizes    map[string]int64
	lru      []string
}

func newRDDCache(capacity int64) *rddCache {
	return &rddCache{capacity: capacity, blocks: make(map[string][][]byte), sizes: make(map[string]int64)}
}

func (c *rddCache) get(id string) ([][]byte, bool) {
	b, ok := c.blocks[id]
	if ok {
		for i, e := range c.lru {
			if e == id {
				copy(c.lru[i:], c.lru[i+1:])
				c.lru[len(c.lru)-1] = id
				break
			}
		}
	}
	return b, ok
}

func (c *rddCache) put(id string, recs [][]byte, size int64) {
	if size > c.capacity {
		return // block cannot be cached at all
	}
	for c.used+size > c.capacity && len(c.lru) > 0 {
		victim := c.lru[0]
		c.lru = c.lru[1:]
		c.used -= c.sizes[victim]
		delete(c.blocks, victim)
		delete(c.sizes, victim)
	}
	c.blocks[id] = recs
	c.sizes[id] = size
	c.used += size
	c.lru = append(c.lru, id)
}

// SparkConfig parameterises the Spark-like k-means run.
type SparkConfig struct {
	K, Dim, Iterations int
	// StoragePool is the RDD cache budget; ExecPool the execution memory.
	StoragePool, ExecPool int64
}

// SparkModel reports the run's timings and memory for Figs 3 and 4.
type SparkModel struct {
	Centroids   [][]float64
	InitTime    time.Duration
	IterTimes   []time.Duration
	PeakMemory  int64 // Spark pools + storage layer, max over the run
	CacheMisses int64 // blocks recomputed from the storage layer
}

// TotalTime sums initialization and iterations.
func (m *SparkModel) TotalTime() time.Duration {
	t := m.InitTime
	for _, it := range m.IterTimes {
		t += it
	}
	return t
}

// LoadPointsToStorage writes encoded points into the storage layer in
// blocks of objsPerBlock.
func LoadPointsToStorage(st Storage, name string, pts [][]byte, objsPerBlock int) error {
	st.Create(name)
	for i, p := range pts {
		if err := st.Append(name, i/objsPerBlock, p); err != nil {
			return err
		}
	}
	return nil
}

// SparkKMeans runs the MLlib-style computation over the layered stack: a
// wave of per-block tasks per stage, deserializing blocks out of the
// storage layer into the RDD cache, recomputing evicted blocks, and keeping
// execution state in the separate execution pool. Its failures are the
// baselines' failures: Alluxio refuses datasets beyond its memory and
// Ignite crashes — the gaps in Fig 3.
func SparkKMeans(st Storage, name string, cfg SparkConfig) (*SparkModel, error) {
	model := &SparkModel{}
	cache := newRDDCache(cfg.StoragePool)
	recSize := int64(8 * (cfg.Dim + 1))
	trackPeak := func(exec int64) {
		if m := cache.used + exec + st.MemoryUsed(); m > model.PeakMemory {
			model.PeakMemory = m
		}
	}

	// normsBlock deserializes one block from storage and computes the
	// points-with-norms rows (the lineage recomputation path).
	normsBlock := func(block int) ([][]byte, int64, error) {
		var recs [][]byte
		var size int64
		err := st.ScanBlock(name, block, func(obj []byte) error {
			out := make([]byte, recSize)
			var norm float64
			for j := 0; j < cfg.Dim; j++ {
				v := math.Float64frombits(binary.LittleEndian.Uint64(obj[8*j:]))
				norm += v * v
			}
			binary.LittleEndian.PutUint64(out[0:8], math.Float64bits(norm))
			copy(out[8:], obj) // JVM-side deserialized copy
			recs = append(recs, out)
			size += recSize
			return nil
		})
		return recs, size, err
	}

	// --- Initialization stage: one task per block.
	start := time.Now()
	nblocks := st.NumBlocks(name)
	var centroids [][]float64
	for b := 0; b < nblocks; b++ {
		recs, size, err := normsBlock(b)
		if err != nil {
			return nil, err
		}
		cache.put(fmt.Sprintf("%s-norms-%d", name, b), recs, size)
		for _, rec := range recs {
			if len(centroids) < cfg.K {
				c := make([]float64, cfg.Dim)
				for j := range c {
					c[j] = math.Float64frombits(binary.LittleEndian.Uint64(rec[8+8*j:]))
				}
				centroids = append(centroids, c)
			}
		}
		trackPeak(0)
	}
	if len(centroids) < cfg.K {
		return nil, fmt.Errorf("layered: only %d points for %d clusters", len(centroids), cfg.K)
	}
	model.InitTime = time.Since(start)

	// --- Iterations: wave of per-block tasks, partial sums in the
	// execution pool, merged at the driver.
	for iter := 0; iter < cfg.Iterations; iter++ {
		iterStart := time.Now()
		cNorm := make([]float64, cfg.K)
		for c, cen := range centroids {
			for _, v := range cen {
				cNorm[c] += v * v
			}
		}
		sums := make([][]float64, cfg.K)
		counts := make([]int64, cfg.K)
		for c := range sums {
			sums[c] = make([]float64, cfg.Dim)
		}
		execBytes := int64(cfg.K) * recSize
		for b := 0; b < nblocks; b++ {
			id := fmt.Sprintf("%s-norms-%d", name, b)
			recs, ok := cache.get(id)
			if !ok {
				var size int64
				var err error
				recs, size, err = normsBlock(b) // recompute from the layer below
				if err != nil {
					return nil, err
				}
				cache.put(id, recs, size)
				model.CacheMisses++
			}
			for _, rec := range recs {
				norm := math.Float64frombits(binary.LittleEndian.Uint64(rec[0:8]))
				best, bestDist := 0, math.Inf(1)
				for c, cen := range centroids {
					dot := 0.0
					for j := 0; j < cfg.Dim; j++ {
						x := math.Float64frombits(binary.LittleEndian.Uint64(rec[8+8*j:]))
						dot += x * cen[j]
					}
					if d := norm - 2*dot + cNorm[c]; d < bestDist {
						best, bestDist = c, d
					}
				}
				for j := 0; j < cfg.Dim; j++ {
					sums[best][j] += math.Float64frombits(binary.LittleEndian.Uint64(rec[8+8*j:]))
				}
				counts[best]++
			}
			trackPeak(execBytes)
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				continue
			}
			for j := 0; j < cfg.Dim; j++ {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		model.IterTimes = append(model.IterTimes, time.Since(iterStart))
	}
	model.Centroids = centroids
	return model, nil
}
