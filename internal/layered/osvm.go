// Package layered implements the layered-system baselines the paper
// compares Pangea against (§9): OS virtual memory (4 KB pages, LRU with
// page stealing, swap), an OS file system with a kernel buffer cache, an
// HDFS-like distributed file system (name node + client/server copies), an
// Alluxio-like memory-capped in-memory file system with serialization at
// the boundary, an Ignite-like shared store with a 16 KB hard page size and
// compaction, a Spark-like engine (separate storage/execution memory pools,
// wave-of-tasks, per-core shuffle spill files), and a Redis-like
// client/server key-value store.
//
// Each baseline reproduces the *mechanisms* the paper blames for layering
// overhead — extra copies at layer boundaries, redundant caching, and
// un-coordinated paging — with real memory copies and the same throttled
// disk substrate Pangea runs on, so measured gaps arise from the mechanisms
// rather than hard-coded constants.
package layered

import (
	"fmt"

	"pangea/internal/disk"
)

// OSVMPageSize is the 4 KB virtual memory page size.
const OSVMPageSize = 4096

// OSVM models process anonymous memory under OS paging: a bump allocator
// over 4 KB virtual pages, a global LRU of resident pages, a swap file, and
// (like a real kernel) page stealing — a reclaimer that evicts down to a
// low watermark once residency crosses a high watermark, even when there is
// no allocation pressure. §9.2.1 credits much of Pangea's win over OS VM to
// avoiding exactly this behaviour plus the small page-out granularity.
type OSVM struct {
	memPages  int
	stealing  bool
	swap      *disk.File
	pages     []vpage
	resident  []int32 // LRU queue of resident page indices (front = oldest)
	nextAddr  int64
	pageOuts  int64
	pageIns   int64
	swapBytes int64
}

type vpage struct {
	data    []byte // nil when swapped out
	swapped bool
	dirty   bool
}

// NewOSVM builds a VM with the given resident budget backed by a swap file
// on d.
func NewOSVM(d *disk.Disk, memBytes int64, stealing bool) (*OSVM, error) {
	swap, err := d.Create("swap")
	if err != nil {
		return nil, err
	}
	return &OSVM{memPages: int(memBytes / OSVMPageSize), stealing: stealing, swap: swap}, nil
}

// Malloc reserves n bytes of heap address space, 16-byte aligned the way a
// libc allocator packs small objects. Pages materialize on first touch,
// like anonymous mmap behind the heap.
func (vm *OSVM) Malloc(n int64) int64 {
	addr := vm.nextAddr
	vm.nextAddr += (n + 15) &^ 15
	need := int((vm.nextAddr + OSVMPageSize - 1) / OSVMPageSize)
	for len(vm.pages) < need {
		vm.pages = append(vm.pages, vpage{})
	}
	return addr
}

// touch makes page idx resident and returns its data.
func (vm *OSVM) touch(idx int32, forWrite bool) ([]byte, error) {
	p := &vm.pages[idx]
	if p.data == nil {
		buf := make([]byte, OSVMPageSize)
		if p.swapped {
			if _, err := vm.swap.ReadAt(buf, int64(idx)*OSVMPageSize); err != nil {
				return nil, fmt.Errorf("layered: swap in: %w", err)
			}
			vm.pageIns++
		}
		p.data = buf
		vm.resident = append(vm.resident, idx)
		if err := vm.reclaim(vm.memPages); err != nil {
			return nil, err
		}
	} else {
		vm.bumpLRU(idx)
	}
	if forWrite {
		p.dirty = true
	}
	// Kernel page stealing keeps a reserve free even without demand.
	if vm.stealing && len(vm.resident) > vm.memPages*9/10 {
		if err := vm.reclaim(vm.memPages * 3 / 4); err != nil {
			return nil, err
		}
	}
	return p.data, nil
}

func (vm *OSVM) bumpLRU(idx int32) {
	if n := len(vm.resident); n > 0 && vm.resident[n-1] == idx {
		return // sequential fast path: already most recent
	}
	for i, r := range vm.resident {
		if r == idx {
			copy(vm.resident[i:], vm.resident[i+1:])
			vm.resident[len(vm.resident)-1] = idx
			return
		}
	}
}

// reclaim evicts LRU pages until at most target are resident.
func (vm *OSVM) reclaim(target int) error {
	for len(vm.resident) > target {
		idx := vm.resident[0]
		vm.resident = vm.resident[1:]
		p := &vm.pages[idx]
		if p.dirty {
			if _, err := vm.swap.WriteAt(p.data, int64(idx)*OSVMPageSize); err != nil {
				return fmt.Errorf("layered: swap out: %w", err)
			}
			vm.pageOuts++
			vm.swapBytes += OSVMPageSize
			p.swapped = true
			p.dirty = false
		}
		p.data = nil
	}
	return nil
}

// Write copies data into virtual memory at addr.
func (vm *OSVM) Write(addr int64, data []byte) error {
	for len(data) > 0 {
		idx := int32(addr / OSVMPageSize)
		off := int(addr % OSVMPageSize)
		buf, err := vm.touch(idx, true)
		if err != nil {
			return err
		}
		n := copy(buf[off:], data)
		data = data[n:]
		addr += int64(n)
	}
	return nil
}

// Read copies from virtual memory at addr into out.
func (vm *OSVM) Read(addr int64, out []byte) error {
	for len(out) > 0 {
		idx := int32(addr / OSVMPageSize)
		off := int(addr % OSVMPageSize)
		buf, err := vm.touch(idx, false)
		if err != nil {
			return err
		}
		n := copy(out, buf[off:])
		out = out[n:]
		addr += int64(n)
	}
	return nil
}

// FreeAll releases the whole address space at once (the cheap bulk
// deallocation both Pangea and Alluxio enjoy; per-object free is what the
// paper's OS VM deallocation curve pays for).
func (vm *OSVM) FreeAll() {
	vm.pages = nil
	vm.resident = nil
	vm.nextAddr = 0
}

// PageOuts reports pages written to swap (the sar -B page-out count the
// paper samples).
func (vm *OSVM) PageOuts() int64 { return vm.pageOuts }

// PageIns reports pages read back from swap.
func (vm *OSVM) PageIns() int64 { return vm.pageIns }

// SwapBytes reports total bytes written to swap.
func (vm *OSVM) SwapBytes() int64 { return vm.swapBytes }

// Close releases the swap file.
func (vm *OSVM) Close() error { return vm.swap.Remove() }
