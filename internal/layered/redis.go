package layered

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// RedisServer is a Redis-like in-memory key-value server with a text
// protocol over TCP. The paper's Table 4 attributes Redis's aggregation
// latency to exactly this architecture: every upsert is a client/server
// round trip, while Pangea's hash service runs on local data (§9.2.3).
type RedisServer struct {
	ln net.Listener

	mu sync.Mutex
	m  map[string]int64

	wg     sync.WaitGroup
	closed bool
}

// NewRedisServer starts a server on addr ("127.0.0.1:0" picks a port).
func NewRedisServer(addr string) (*RedisServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &RedisServer{ln: ln, m: make(map[string]int64)}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the server's listen address.
func (s *RedisServer) Addr() string { return s.ln.Addr().String() }

// Len reports the number of keys.
func (s *RedisServer) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Close stops the server.
func (s *RedisServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *RedisServer) serve() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(c)
		}()
	}
}

func (s *RedisServer) handle(c net.Conn) {
	defer c.Close()
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		parts := strings.Fields(strings.TrimSpace(line))
		if len(parts) == 0 {
			continue
		}
		var reply string
		switch strings.ToUpper(parts[0]) {
		case "INCRBY":
			if len(parts) != 3 {
				reply = "-ERR wrong number of arguments"
				break
			}
			v, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				reply = "-ERR not an integer"
				break
			}
			s.mu.Lock()
			s.m[parts[1]] += v
			nv := s.m[parts[1]]
			s.mu.Unlock()
			reply = ":" + strconv.FormatInt(nv, 10)
		case "GET":
			s.mu.Lock()
			v, ok := s.m[parts[1]]
			s.mu.Unlock()
			if ok {
				reply = ":" + strconv.FormatInt(v, 10)
			} else {
				reply = "$-1"
			}
		case "DBSIZE":
			s.mu.Lock()
			n := len(s.m)
			s.mu.Unlock()
			reply = ":" + strconv.Itoa(n)
		default:
			reply = "-ERR unknown command"
		}
		if _, err := w.WriteString(reply + "\r\n"); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// RedisClient is a blocking, one-round-trip-per-command client.
type RedisClient struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// DialRedis connects a client.
func DialRedis(addr string) (*RedisClient, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &RedisClient{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}, nil
}

func (c *RedisClient) roundTrip(cmd string) (string, error) {
	if _, err := c.w.WriteString(cmd + "\r\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "-ERR") {
		return "", fmt.Errorf("layered: redis: %s", line)
	}
	return line, nil
}

// IncrBy adds v to key and returns the new value.
func (c *RedisClient) IncrBy(key string, v int64) (int64, error) {
	line, err := c.roundTrip(fmt.Sprintf("INCRBY %s %d", key, v))
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(strings.TrimPrefix(line, ":"), 10, 64)
}

// Get reads a key; ok is false when absent.
func (c *RedisClient) Get(key string) (v int64, ok bool, err error) {
	line, err := c.roundTrip("GET " + key)
	if err != nil {
		return 0, false, err
	}
	if line == "$-1" {
		return 0, false, nil
	}
	v, err = strconv.ParseInt(strings.TrimPrefix(line, ":"), 10, 64)
	return v, err == nil, err
}

// Close closes the connection.
func (c *RedisClient) Close() error { return c.c.Close() }
