package layered

import (
	"fmt"

	"pangea/internal/disk"
)

// OSFS models a file system behind the POSIX read/write interface: every
// operation copies between the user buffer and a kernel buffer cache of
// 4 KB pages under global LRU with page stealing. Pangea's direct-I/O
// shared-memory path avoids both the copy and the double caching (§4, §9.2.1).
type OSFS struct {
	d        *disk.Disk
	capPages int

	files map[string]*osFile
	// cache is the kernel buffer cache.
	cache map[fsPageKey][]byte
	dirty map[fsPageKey]bool
	lru   []fsPageKey

	hits, misses int64
}

type fsPageKey struct {
	file string
	num  int64
}

type osFile struct {
	f    *disk.File
	size int64
	// flushed is the on-disk high-water mark: pages wholly beyond it have
	// never been written back, so a cache miss on them must not issue a
	// read-modify-write disk read.
	flushed int64
}

// NewOSFS mounts a simulated OS file system with a buffer cache of
// cacheBytes on drive d.
func NewOSFS(d *disk.Disk, cacheBytes int64) *OSFS {
	return &OSFS{
		d:        d,
		capPages: int(cacheBytes / OSVMPageSize),
		files:    make(map[string]*osFile),
		cache:    make(map[fsPageKey][]byte),
		dirty:    make(map[fsPageKey]bool),
	}
}

func (fs *OSFS) file(name string) (*osFile, error) {
	if f, ok := fs.files[name]; ok {
		return f, nil
	}
	f, err := fs.d.Create("osfs-" + name)
	if err != nil {
		return nil, err
	}
	of := &osFile{f: f}
	fs.files[name] = of
	return of, nil
}

func (fs *OSFS) bump(k fsPageKey) {
	if n := len(fs.lru); n > 0 && fs.lru[n-1] == k {
		return // sequential fast path: already most recent
	}
	for i, e := range fs.lru {
		if e == k {
			copy(fs.lru[i:], fs.lru[i+1:])
			fs.lru[len(fs.lru)-1] = k
			return
		}
	}
	fs.lru = append(fs.lru, k)
}

// reclaim evicts LRU cache pages down to target, writing dirty ones back.
func (fs *OSFS) reclaim(target int) error {
	for len(fs.lru) > target {
		k := fs.lru[0]
		fs.lru = fs.lru[1:]
		if fs.dirty[k] {
			of := fs.files[k.file]
			if _, err := of.f.WriteAt(fs.cache[k], k.num*OSVMPageSize); err != nil {
				return err
			}
			if end := (k.num + 1) * OSVMPageSize; end > of.flushed {
				of.flushed = end
			}
			delete(fs.dirty, k)
		}
		delete(fs.cache, k)
	}
	return nil
}

// page returns the cached kernel page, loading it on a miss.
func (fs *OSFS) page(of *osFile, name string, num int64, fill bool) ([]byte, error) {
	k := fsPageKey{name, num}
	if buf, ok := fs.cache[k]; ok {
		fs.hits++
		fs.bump(k)
		return buf, nil
	}
	fs.misses++
	buf := make([]byte, OSVMPageSize)
	if fill && num*OSVMPageSize < of.flushed {
		if _, err := of.f.ReadAt(buf, num*OSVMPageSize); err != nil {
			return nil, fmt.Errorf("layered: osfs read: %w", err)
		}
	}
	fs.cache[k] = buf
	fs.bump(k)
	if err := fs.reclaim(fs.capPages); err != nil {
		return nil, err
	}
	// Page stealing, as in OSVM.
	if len(fs.lru) > fs.capPages*9/10 {
		if err := fs.reclaim(fs.capPages * 3 / 4); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// WriteAt copies data through the buffer cache into the file (user→kernel
// copy per page; write-back to disk on eviction or Sync).
func (fs *OSFS) WriteAt(name string, data []byte, off int64) error {
	of, err := fs.file(name)
	if err != nil {
		return err
	}
	for len(data) > 0 {
		num := off / OSVMPageSize
		po := int(off % OSVMPageSize)
		buf, err := fs.page(of, name, num, po != 0)
		if err != nil {
			return err
		}
		n := copy(buf[po:], data) // the kernel copy
		fs.dirty[fsPageKey{name, num}] = true
		data = data[n:]
		off += int64(n)
		if off > of.size {
			of.size = off
		}
	}
	return nil
}

// ReadAt copies data from the buffer cache (kernel→user copy), loading
// missing pages from disk.
func (fs *OSFS) ReadAt(name string, out []byte, off int64) error {
	of, err := fs.file(name)
	if err != nil {
		return err
	}
	for len(out) > 0 {
		num := off / OSVMPageSize
		po := int(off % OSVMPageSize)
		buf, err := fs.page(of, name, num, true)
		if err != nil {
			return err
		}
		n := copy(out, buf[po:]) // the kernel copy
		out = out[n:]
		off += int64(n)
	}
	return nil
}

// Sync flushes every dirty page of a file to disk.
func (fs *OSFS) Sync(name string) error {
	of, ok := fs.files[name]
	if !ok {
		return nil
	}
	for k := range fs.dirty {
		if k.file != name {
			continue
		}
		if _, err := of.f.WriteAt(fs.cache[k], k.num*OSVMPageSize); err != nil {
			return err
		}
		if end := (k.num + 1) * OSVMPageSize; end > of.flushed {
			of.flushed = end
		}
		delete(fs.dirty, k)
	}
	return of.f.Sync()
}

// Size returns a file's logical size.
func (fs *OSFS) Size(name string) int64 {
	if of, ok := fs.files[name]; ok {
		return of.size
	}
	return 0
}

// CacheStats reports buffer cache hits and misses.
func (fs *OSFS) CacheStats() (hits, misses int64) { return fs.hits, fs.misses }

// Remove deletes a file and drops its cached pages.
func (fs *OSFS) Remove(name string) error {
	of, ok := fs.files[name]
	if !ok {
		return nil
	}
	delete(fs.files, name)
	keep := fs.lru[:0]
	for _, k := range fs.lru {
		if k.file == name {
			delete(fs.cache, k)
			delete(fs.dirty, k)
			continue
		}
		keep = append(keep, k)
	}
	fs.lru = keep
	return of.f.Remove()
}
