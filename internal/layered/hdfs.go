package layered

import (
	"fmt"

	"pangea/internal/disk"
)

// HDFSBlockSize is the (scaled) HDFS block size.
const HDFSBlockSize = 1 << 20

// HDFS models a single-node slice of an HDFS deployment: a name node
// mapping files to blocks, data nodes writing blocks round-robin over the
// drives through the OS buffer cache, and a client protocol that copies
// every byte once more between client and server — the copy libhdfs3
// cannot avoid and Pangea's shared-memory path does (§9.2.1).
type HDFS struct {
	fss    []*OSFS // one buffer-cached file system per drive
	blocks map[string][]hdfsBlock
}

type hdfsBlock struct {
	diskIdx int
	name    string
	size    int
}

// NewHDFS builds the baseline over an array of drives, giving each drive's
// OS layer an equal share of cacheBytes of buffer cache.
func NewHDFS(arr *disk.Array, cacheBytes int64) *HDFS {
	h := &HDFS{blocks: make(map[string][]hdfsBlock)}
	per := cacheBytes / int64(arr.Len())
	for i := 0; i < arr.Len(); i++ {
		h.fss = append(h.fss, NewOSFS(arr.Disk(i), per))
	}
	return h
}

// Create starts a new file, dropping any previous version.
func (h *HDFS) Create(name string) {
	h.blocks[name] = nil
}

// Append writes data to the end of a file, block by block.
func (h *HDFS) Append(name string, data []byte) error {
	// Client-side copy: the client buffers the write before shipping it to
	// the data node (the client/server copy of the protocol).
	shipped := append([]byte(nil), data...)
	for len(shipped) > 0 {
		blocks := h.blocks[name]
		if len(blocks) == 0 || blocks[len(blocks)-1].size >= HDFSBlockSize {
			idx := len(blocks) % len(h.fss)
			blocks = append(blocks, hdfsBlock{
				diskIdx: idx,
				name:    fmt.Sprintf("%s-blk-%d", name, len(blocks)),
			})
			h.blocks[name] = blocks
		}
		b := &h.blocks[name][len(h.blocks[name])-1]
		n := HDFSBlockSize - b.size
		if n > len(shipped) {
			n = len(shipped)
		}
		if err := h.fss[b.diskIdx].WriteAt(b.name, shipped[:n], int64(b.size)); err != nil {
			return err
		}
		b.size += n
		shipped = shipped[n:]
	}
	return nil
}

// Sync flushes all of a file's blocks to their drives.
func (h *HDFS) Sync(name string) error {
	for _, b := range h.blocks[name] {
		if err := h.fss[b.diskIdx].Sync(b.name); err != nil {
			return err
		}
	}
	return nil
}

// Scan streams a file's contents to fn in block-sized chunks, paying the
// server→client copy per chunk.
func (h *HDFS) Scan(name string, fn func(chunk []byte) error) error {
	for _, b := range h.blocks[name] {
		server := make([]byte, b.size)
		if err := h.fss[b.diskIdx].ReadAt(b.name, server, 0); err != nil {
			return err
		}
		// Server→client protocol copy.
		client := append([]byte(nil), server...)
		if err := fn(client); err != nil {
			return err
		}
	}
	return nil
}

// Size reports a file's logical size.
func (h *HDFS) Size(name string) int64 {
	var n int64
	for _, b := range h.blocks[name] {
		n += int64(b.size)
	}
	return n
}

// Remove deletes a file's blocks.
func (h *HDFS) Remove(name string) error {
	for _, b := range h.blocks[name] {
		if err := h.fss[b.diskIdx].Remove(b.name); err != nil {
			return err
		}
	}
	delete(h.blocks, name)
	return nil
}
