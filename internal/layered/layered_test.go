package layered

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"

	"pangea/internal/disk"
)

func newDisk(t *testing.T) *disk.Disk {
	t.Helper()
	d, err := disk.Open(t.TempDir(), disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.RemoveAll() })
	return d
}

func newArray(t *testing.T, n int) *disk.Array {
	t.Helper()
	arr, err := disk.NewArray(t.TempDir(), n, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	return arr
}

// --- OSVM ----------------------------------------------------------------

func TestOSVMReadWriteWithinMemory(t *testing.T) {
	vm, err := NewOSVM(newDisk(t), 1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	addr := vm.Malloc(10000)
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i)
	}
	if err := vm.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 10000)
	if err := vm.Read(addr, out); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, out[i], data[i])
		}
	}
	if vm.PageOuts() != 0 {
		t.Errorf("unexpected page-outs within memory: %d", vm.PageOuts())
	}
}

func TestOSVMSwapsBeyondMemory(t *testing.T) {
	vm, err := NewOSVM(newDisk(t), 64<<10, false) // 16 resident pages
	if err != nil {
		t.Fatal(err)
	}
	const n = 256 << 10
	addr := vm.Malloc(n)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := vm.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	if vm.PageOuts() == 0 {
		t.Fatal("expected swap-outs")
	}
	out := make([]byte, n)
	if err := vm.Read(addr, out); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("byte %d corrupted after swap", i)
		}
	}
	if vm.PageIns() == 0 {
		t.Error("expected swap-ins on read-back")
	}
}

// TestOSVMPageStealingWritesMore reproduces the §9.2.1 observation: with
// page stealing the kernel pages out more data than a demand-only pager.
func TestOSVMPageStealingWritesMore(t *testing.T) {
	run := func(stealing bool) int64 {
		vm, err := NewOSVM(newDisk(t), 64<<10, stealing)
		if err != nil {
			t.Fatal(err)
		}
		addr := vm.Malloc(128 << 10)
		buf := make([]byte, 1024)
		for pass := 0; pass < 3; pass++ {
			for off := int64(0); off < 128<<10; off += 1024 {
				if err := vm.Write(addr+off, buf); err != nil {
					t.Fatal(err)
				}
			}
		}
		return vm.SwapBytes()
	}
	demand, stealing := run(false), run(true)
	if stealing <= demand {
		t.Errorf("page stealing wrote %d bytes, demand paging %d; stealing should write more", stealing, demand)
	}
}

// --- OSFS ----------------------------------------------------------------

func TestOSFSWriteReadThroughCache(t *testing.T) {
	fs := NewOSFS(newDisk(t), 1<<20)
	data := make([]byte, 50000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := fs.WriteAt("f", data, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync("f"); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(data))
	if err := fs.ReadAt("f", out, 0); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	hits, _ := fs.CacheStats()
	if hits == 0 {
		t.Error("expected cache hits on read-after-write")
	}
}

func TestOSFSEvictsBeyondCache(t *testing.T) {
	fs := NewOSFS(newDisk(t), 64<<10)
	data := make([]byte, 256<<10)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteAt("big", data, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync("big"); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(data))
	if err := fs.ReadAt("big", out, 0); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("byte %d mismatch after cache eviction", i)
		}
	}
}

// --- HDFS ----------------------------------------------------------------

func TestHDFSAppendScanRoundTrip(t *testing.T) {
	h := NewHDFS(newArray(t, 2), 4<<20)
	h.Create("data")
	var want []byte
	for i := 0; i < 300; i++ {
		chunk := make([]byte, 9000)
		for j := range chunk {
			chunk[j] = byte(i + j)
		}
		want = append(want, chunk...)
		if err := h.Append("data", chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Sync("data"); err != nil {
		t.Fatal(err)
	}
	if h.Size("data") != int64(len(want)) {
		t.Fatalf("size = %d, want %d", h.Size("data"), len(want))
	}
	var got []byte
	if err := h.Scan("data", func(chunk []byte) error {
		got = append(got, chunk...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("scan bytes differ from appended bytes")
	}
	// Blocks must be spread over both drives.
	if len(h.blocks["data"]) < 2 {
		t.Fatal("expected multiple blocks")
	}
	seen := map[int]bool{}
	for _, b := range h.blocks["data"] {
		seen[b.diskIdx] = true
	}
	if len(seen) != 2 {
		t.Errorf("blocks on %d drives, want 2", len(seen))
	}
}

// --- Alluxio ----------------------------------------------------------------

func TestAlluxioRoundTripAndCapacity(t *testing.T) {
	a := NewAlluxio(64 << 10)
	a.Create("f")
	obj := make([]byte, 1000)
	var wrote int
	var errFull error
	for i := 0; i < 100; i++ {
		obj[0] = byte(i)
		if err := a.WriteObject("f", obj); err != nil {
			errFull = err
			break
		}
		wrote++
	}
	if errFull == nil {
		t.Fatal("Alluxio must refuse writes beyond its memory")
	}
	if !errors.Is(errFull, ErrAlluxioFull) {
		t.Errorf("err = %v, want ErrAlluxioFull", errFull)
	}
	var scanned int
	if err := a.Scan("f", func(o []byte) error {
		if o[0] != byte(scanned) {
			t.Errorf("object %d corrupted", scanned)
		}
		scanned++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if scanned != wrote {
		t.Errorf("scanned %d, wrote %d", scanned, wrote)
	}
}

// --- Ignite ----------------------------------------------------------------

func TestIgniteRoundTripAndCrash(t *testing.T) {
	g := NewIgnite(128 << 10) // 8 × 16KB pages
	g.Create("f")
	obj := make([]byte, 1000)
	var wrote int
	var crash error
	for i := 0; i < 1000; i++ {
		binary.LittleEndian.PutUint32(obj, uint32(i))
		if err := g.WriteObject("f", obj); err != nil {
			crash = err
			break
		}
		wrote++
	}
	if crash == nil {
		t.Fatal("Ignite must crash beyond its off-heap region")
	}
	if !errors.Is(crash, ErrIgniteCrash) {
		t.Errorf("err = %v, want ErrIgniteCrash", crash)
	}
	var scanned int
	if err := g.Scan("f", func(o []byte) error {
		if binary.LittleEndian.Uint32(o) != uint32(scanned) {
			t.Errorf("object %d corrupted", scanned)
		}
		scanned++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if scanned != wrote {
		t.Errorf("scanned %d, wrote %d", scanned, wrote)
	}
	if g.Compactions() == 0 {
		t.Error("expected compaction passes before crashing")
	}
	if g.WriteObject("f", make([]byte, IgnitePageSize)) == nil {
		t.Error("oversized object must be rejected (16KB hard page)")
	}
}

// --- Spark engine ----------------------------------------------------------------

func sparkPoints(n, dim int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		rec := make([]byte, 8*dim)
		for j := 0; j < dim; j++ {
			v := float64((i*31+j*17)%100) + float64(i%2)*500
			binary.LittleEndian.PutUint64(rec[8*j:], math.Float64bits(v))
		}
		out[i] = rec
	}
	return out
}

func TestSparkKMeansOverEachStorage(t *testing.T) {
	const n, dim, k = 2000, 4, 2
	pts := sparkPoints(n, dim)
	stores := []Storage{
		NewHDFSStorage(newArray(t, 1), 4<<20),
		NewAlluxioStorage(8 << 20),
		NewIgniteStorage(8 << 20),
	}
	for _, st := range stores {
		if err := LoadPointsToStorage(st, "pts", pts, 200); err != nil {
			t.Fatalf("%s: load: %v", st.Name(), err)
		}
		m, err := SparkKMeans(st, "pts", SparkConfig{K: k, Dim: dim, Iterations: 3, StoragePool: 4 << 20, ExecPool: 1 << 20})
		if err != nil {
			t.Fatalf("%s: %v", st.Name(), err)
		}
		if len(m.Centroids) != k {
			t.Errorf("%s: centroids = %d", st.Name(), len(m.Centroids))
		}
		if len(m.IterTimes) != 3 {
			t.Errorf("%s: iterations = %d", st.Name(), len(m.IterTimes))
		}
		if m.PeakMemory == 0 {
			t.Errorf("%s: peak memory not tracked", st.Name())
		}
	}
}

// TestSparkRDDCacheMissesWhenPoolSmall: with a storage pool smaller than
// the norms RDD, blocks are recomputed from the layer below each iteration.
func TestSparkRDDCacheMissesWhenPoolSmall(t *testing.T) {
	const n, dim = 4000, 4
	pts := sparkPoints(n, dim)
	st := NewHDFSStorage(newArray(t, 1), 4<<20)
	if err := LoadPointsToStorage(st, "pts", pts, 200); err != nil {
		t.Fatal(err)
	}
	m, err := SparkKMeans(st, "pts", SparkConfig{K: 2, Dim: dim, Iterations: 3, StoragePool: 32 << 10, ExecPool: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheMisses == 0 {
		t.Error("expected RDD cache misses with a tiny storage pool")
	}
}

// TestSparkOverAlluxioDoubleCaches: the same dataset occupies both Alluxio
// worker memory and the RDD cache — the redundant placement of Fig 4.
func TestSparkOverAlluxioDoubleCaches(t *testing.T) {
	const n, dim = 2000, 4
	pts := sparkPoints(n, dim)
	st := NewAlluxioStorage(8 << 20)
	if err := LoadPointsToStorage(st, "pts", pts, 200); err != nil {
		t.Fatal(err)
	}
	m, err := SparkKMeans(st, "pts", SparkConfig{K: 2, Dim: dim, Iterations: 2, StoragePool: 8 << 20, ExecPool: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dataBytes := int64(n * dim * 8)
	if m.PeakMemory < 2*dataBytes {
		t.Errorf("peak memory %d < 2× data %d; double caching not captured", m.PeakMemory, 2*dataBytes)
	}
}

// --- Spark shuffle ----------------------------------------------------------------

func TestSparkShuffleRoundTripAndFileCount(t *testing.T) {
	arr := newArray(t, 1)
	s, err := NewSparkShuffle(arr, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumFiles() != 16 {
		t.Errorf("files = %d, want 4×4", s.NumFiles())
	}
	rec := make([]byte, 100)
	var written [4]int64
	for i := 0; i < 4000; i++ {
		core, part := i%4, (i/7)%4
		if err := s.Write(core, part, rec); err != nil {
			t.Fatal(err)
		}
		written[part] += 100
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		var got int64
		if err := s.ReadPartition(p, func(chunk []byte) error {
			got += int64(len(chunk))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != written[p] {
			t.Errorf("partition %d: read %d bytes, wrote %d", p, got, written[p])
		}
	}
}

// --- Redis ----------------------------------------------------------------

func TestRedisIncrGetRoundTrip(t *testing.T) {
	srv, err := NewRedisServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialRedis(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i%10)
		if _, err := c.IncrBy(key, 2); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := c.Get("k3")
	if err != nil || !ok || v != 20 {
		t.Errorf("Get(k3) = %d,%v,%v; want 20,true,nil", v, ok, err)
	}
	if srv.Len() != 10 {
		t.Errorf("keys = %d, want 10", srv.Len())
	}
	if _, ok, _ := c.Get("absent"); ok {
		t.Error("absent key reported present")
	}
}
