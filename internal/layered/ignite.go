package layered

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// IgnitePageSize is the 16 KB hard page size limitation the paper observes
// in Ignite (§9.1.1).
const IgnitePageSize = 16 << 10

// ErrIgniteCrash models the segmentation fault Ignite throws when the
// working set exceeds its configured off-heap region (§9.1.1, "Ignite
// throws a segmentation fault when processing 2 billion or more points").
var ErrIgniteCrash = errors.New("layered: ignite segmentation fault (off-heap region exhausted)")

// Ignite models an Ignite-style shared store: objects are packed into
// 16 KB hard pages inside a bounded off-heap region, updates fragment
// pages, and a compactor periodically rewrites the whole live region —
// the "about 40% of time in memory compaction due to fragmentation" the
// paper profiles. There is no spill path: exhausting the region crashes.
type Ignite struct {
	offHeap int64
	pages   [][]byte
	cur     int
	curOff  int
	files   map[string][]igniteLoc

	liveBytes    int64
	deadBytes    int64
	compactions  int64
	compactedByt int64
}

type igniteLoc struct {
	page, off int
}

// NewIgnite builds a store with the given off-heap region size.
func NewIgnite(offHeapBytes int64) *Ignite {
	return &Ignite{offHeap: offHeapBytes, cur: -1, files: make(map[string][]igniteLoc)}
}

// Create starts a new dataset.
func (g *Ignite) Create(name string) { g.files[name] = nil }

// WriteObject serializes an object into the off-heap region.
func (g *Ignite) WriteObject(name string, obj []byte) error {
	need := 4 + len(obj)
	if need > IgnitePageSize {
		return fmt.Errorf("layered: ignite object of %d bytes exceeds the 16KB hard page size", len(obj))
	}
	if g.cur < 0 || g.curOff+need > IgnitePageSize {
		// Fragmentation: the tail of the old page is wasted.
		if g.cur >= 0 {
			g.deadBytes += int64(IgnitePageSize - g.curOff)
		}
		if int64(len(g.pages)+1)*IgnitePageSize > g.offHeap {
			if err := g.compact(); err != nil {
				return err
			}
			if int64(len(g.pages)+1)*IgnitePageSize > g.offHeap {
				return ErrIgniteCrash
			}
		}
		g.pages = append(g.pages, make([]byte, IgnitePageSize))
		g.cur = len(g.pages) - 1
		g.curOff = 0
	}
	buf := g.pages[g.cur]
	binary.LittleEndian.PutUint32(buf[g.curOff:], uint32(len(obj)))
	copy(buf[g.curOff+4:], obj) // serialization copy into off-heap
	g.files[name] = append(g.files[name], igniteLoc{g.cur, g.curOff})
	g.curOff += need
	g.liveBytes += int64(need)
	return nil
}

// compact rewrites every live object into fresh pages — the de-fragmentation
// pass that dominated the paper's Ignite profile. It is a real copy of the
// whole live region.
func (g *Ignite) compact() error {
	g.compactions++
	oldPages := g.pages
	g.pages = nil
	g.cur = -1
	g.curOff = 0
	g.deadBytes = 0
	g.liveBytes = 0
	for name, locs := range g.files {
		newLocs := make([]igniteLoc, 0, len(locs))
		for _, loc := range locs {
			buf := oldPages[loc.page]
			n := binary.LittleEndian.Uint32(buf[loc.off:])
			obj := buf[loc.off+4 : loc.off+4+int(n)]
			g.compactedByt += int64(n)
			if g.cur < 0 || g.curOff+4+int(n) > IgnitePageSize {
				g.pages = append(g.pages, make([]byte, IgnitePageSize))
				g.cur = len(g.pages) - 1
				g.curOff = 0
			}
			dst := g.pages[g.cur]
			binary.LittleEndian.PutUint32(dst[g.curOff:], n)
			copy(dst[g.curOff+4:], obj)
			newLocs = append(newLocs, igniteLoc{g.cur, g.curOff})
			g.curOff += 4 + int(n)
			g.liveBytes += int64(4 + n)
		}
		g.files[name] = newLocs
	}
	return nil
}

// Scan deserializes every object of a dataset to fn.
func (g *Ignite) Scan(name string, fn func(obj []byte) error) error {
	for _, loc := range g.files[name] {
		buf := g.pages[loc.page]
		n := binary.LittleEndian.Uint32(buf[loc.off:])
		obj := make([]byte, n)
		copy(obj, buf[loc.off+4:loc.off+4+int(n)]) // deserialization copy
		if err := fn(obj); err != nil {
			return err
		}
	}
	return nil
}

// Used reports the off-heap bytes in use (whole pages).
func (g *Ignite) Used() int64 { return int64(len(g.pages)) * IgnitePageSize }

// Compactions reports how many de-fragmentation passes ran.
func (g *Ignite) Compactions() int64 { return g.compactions }

// Remove drops a dataset and triggers a compaction to reclaim its space.
func (g *Ignite) Remove(name string) {
	delete(g.files, name)
	_ = g.compact()
}
