package layered

import (
	"fmt"

	"pangea/internal/disk"
)

// SparkShuffle simulates Spark's shuffle file layout (§9.2.2, Table 3):
// every CPU core keeps a separate spill file per shuffle partition, so the
// node hosts numCores × numPartitions files. Each written record is first
// allocated on the heap (malloc) and then appended to the file through a
// libc-style buffered fwrite. Pangea's shuffle service instead combines all
// streams of one partition into a single locality set (numPartitions
// files), allocating objects directly in small pages.
type SparkShuffle struct {
	arr        *disk.Array
	cores      int
	partitions int
	files      [][]*spillFile // [core][partition]
}

type spillFile struct {
	f   *disk.File
	buf []byte
	off int64
}

const fwriteBuf = 64 << 10

// NewSparkShuffle creates the numCores × numPartitions spill files, spread
// round-robin over the drives.
func NewSparkShuffle(arr *disk.Array, cores, partitions int) (*SparkShuffle, error) {
	s := &SparkShuffle{arr: arr, cores: cores, partitions: partitions}
	for c := 0; c < cores; c++ {
		var row []*spillFile
		for p := 0; p < partitions; p++ {
			f, err := arr.Pick(int64(c*partitions + p)).Create(fmt.Sprintf("spill-c%d-p%d", c, p))
			if err != nil {
				return nil, err
			}
			row = append(row, &spillFile{f: f})
		}
		s.files = append(s.files, row)
	}
	return s, nil
}

// Write appends one record from one core to a partition: a heap allocation
// plus copy (malloc) followed by a buffered file append (fwrite).
func (s *SparkShuffle) Write(core, partition int, rec []byte) error {
	heap := make([]byte, len(rec))
	copy(heap, rec) // malloc + copy
	sf := s.files[core][partition]
	sf.buf = append(sf.buf, heap...) // fwrite buffering copy
	if len(sf.buf) >= fwriteBuf {
		return s.flush(sf)
	}
	return nil
}

func (s *SparkShuffle) flush(sf *spillFile) error {
	if len(sf.buf) == 0 {
		return nil
	}
	if _, err := sf.f.WriteAt(sf.buf, sf.off); err != nil {
		return err
	}
	sf.off += int64(len(sf.buf))
	sf.buf = sf.buf[:0]
	return nil
}

// Flush drains every file's buffer to disk.
func (s *SparkShuffle) Flush() error {
	for _, row := range s.files {
		for _, sf := range row {
			if err := s.flush(sf); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadPartition streams one partition back: the reader must open and read
// every core's spill file for that partition.
func (s *SparkShuffle) ReadPartition(partition int, fn func(chunk []byte) error) error {
	for c := 0; c < s.cores; c++ {
		sf := s.files[c][partition]
		remaining := sf.off
		var off int64
		buf := make([]byte, fwriteBuf)
		for remaining > 0 {
			n := int64(len(buf))
			if n > remaining {
				n = remaining
			}
			if _, err := sf.f.ReadAt(buf[:n], off); err != nil {
				return err
			}
			if err := fn(buf[:n]); err != nil {
				return err
			}
			off += n
			remaining -= n
		}
	}
	return nil
}

// NumFiles reports the spill file count (cores × partitions).
func (s *SparkShuffle) NumFiles() int { return s.cores * s.partitions }

// Close removes every spill file.
func (s *SparkShuffle) Close() error {
	var first error
	for _, row := range s.files {
		for _, sf := range row {
			if err := sf.f.Remove(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
