package layered

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrAlluxioFull is returned when a write exceeds the worker's configured
// memory: "Alluxio doesn't support writing more data than its configured
// memory size" (§9.2.1).
var ErrAlluxioFull = errors.New("layered: alluxio worker memory exhausted")

// Alluxio models an in-memory file system worker: a fixed memory budget
// holding serialized objects. Every write serializes (length-prefix +
// copy) into worker memory and every read deserializes (copy out) — the
// interfacing overhead of pushing data through a separate in-memory layer,
// which also double-caches anything the application keeps deserialized.
type Alluxio struct {
	capacity int64
	buf      []byte
	files    map[string][]alluxioRange
}

type alluxioRange struct{ off, n int64 }

// NewAlluxio builds a worker with the given memory size.
func NewAlluxio(memBytes int64) *Alluxio {
	return &Alluxio{capacity: memBytes, files: make(map[string][]alluxioRange)}
}

// Create starts a new file.
func (a *Alluxio) Create(name string) { a.files[name] = nil }

// WriteObject serializes one object into worker memory.
func (a *Alluxio) WriteObject(name string, obj []byte) error {
	need := int64(4 + len(obj))
	if int64(len(a.buf))+need > a.capacity {
		return fmt.Errorf("%w (writing %d into %d/%d)", ErrAlluxioFull, need, len(a.buf), a.capacity)
	}
	off := int64(len(a.buf))
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(obj)))
	a.buf = append(a.buf, hdr[:]...)
	a.buf = append(a.buf, obj...) // the serialization copy
	a.files[name] = append(a.files[name], alluxioRange{off, need})
	return nil
}

// Scan deserializes every object of a file to fn (copy out per object).
func (a *Alluxio) Scan(name string, fn func(obj []byte) error) error {
	for _, r := range a.files[name] {
		n := binary.LittleEndian.Uint32(a.buf[r.off : r.off+4])
		obj := make([]byte, n)
		copy(obj, a.buf[r.off+4:r.off+4+int64(n)]) // the deserialization copy
		if err := fn(obj); err != nil {
			return err
		}
	}
	return nil
}

// Used reports the worker memory in use.
func (a *Alluxio) Used() int64 { return int64(len(a.buf)) }

// Capacity reports the configured worker memory.
func (a *Alluxio) Capacity() int64 { return a.capacity }

// Remove drops a file. Like a log-structured worker, memory is reclaimed
// only when the whole store empties — large-block deallocation is cheap,
// which the paper notes both Alluxio and Pangea benefit from.
func (a *Alluxio) Remove(name string) {
	delete(a.files, name)
	if len(a.files) == 0 {
		a.buf = a.buf[:0]
	}
}
