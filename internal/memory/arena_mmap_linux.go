//go:build linux

package memory

import (
	"runtime"
	"syscall"
)

// mmapBytes maps an anonymous private region of the given size, or reports
// false so the caller can fall back to heap memory. The mapping is not
// touched, so its physical pages are placed at first fault — which is what
// lets a per-shard mbind decide where each region lands.
func mmapBytes(size int64) ([]byte, bool) {
	if size <= 0 || size != int64(int(size)) {
		return nil, false
	}
	buf, err := syscall.Mmap(-1, 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_PRIVATE|syscall.MAP_ANON)
	if err != nil {
		return nil, false
	}
	return buf, true
}

// finalizeMmap unmaps the region when its Arena is collected; mmap'd bytes
// are invisible to the GC, so without this every pool would leak its arena
// until process exit.
func finalizeMmap(a *Arena) {
	buf := a.buf
	a.buf = nil
	runtime.SetFinalizer(a, nil)
	_ = syscall.Munmap(buf)
}
