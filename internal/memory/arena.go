// Package memory provides the raw memory substrate for Pangea's unified
// buffer pool: a contiguous arena standing in for the anonymous-mmap shared
// memory region of the paper (§5), a two-level segregated fit (TLSF)
// allocator used to carve variable-sized pages out of that arena, and a
// memcached-style slab allocator used by the hash service to bound all
// allocation for one hash partition to the memory of its host page (§8).
package memory

import (
	"fmt"
	"runtime"

	"pangea/internal/numa"
)

// Arena is a contiguous region of bytes from which page memory is allocated.
// It models the shared-memory buffer pool: allocators hand out offsets, and
// both the "storage process" and "computation process" sides of Pangea view
// pages as slices of the same arena.
type Arena struct {
	buf    []byte
	mapped bool // anonymous mmap, placed per-node at first touch
}

// NewArena allocates an arena of the given size in bytes.
func NewArena(size int64) *Arena {
	if size <= 0 {
		panic(fmt.Sprintf("memory: non-positive arena size %d", size))
	}
	return &Arena{buf: make([]byte, size)}
}

// NewMmapArena allocates an arena backed by an anonymous private mmap — the
// paper's shared-memory region (§5) for real this time — so that its
// physical pages are placed at first touch and per-shard regions can be
// bound to NUMA nodes. Falls back to an ordinary heap arena when mmap is
// unavailable (non-Linux, or a failed map). The mapping is unmapped by a
// finalizer when the Arena is collected, so slices of a mapped arena are
// valid only while the Arena itself is reachable.
func NewMmapArena(size int64) *Arena {
	if size <= 0 {
		panic(fmt.Sprintf("memory: non-positive arena size %d", size))
	}
	if buf, ok := mmapBytes(size); ok {
		a := &Arena{buf: buf, mapped: true}
		runtime.SetFinalizer(a, finalizeMmap)
		return a
	}
	return NewArena(size)
}

// NewNUMAArena picks the arena backing for a topology: a real multi-node
// machine gets the mmap-backed variant (so shard regions can be mbind-ed to
// their nodes), everything else — single-node boxes, synthetic test
// topologies — keeps the seed's plain heap arena.
func NewNUMAArena(size int64, topo numa.Topology) *Arena {
	if topo != nil && topo.Physical() && topo.NumNodes() > 1 {
		return NewMmapArena(size)
	}
	return NewArena(size)
}

// Mapped reports whether the arena is mmap-backed (bindable to NUMA nodes).
func (a *Arena) Mapped() bool { return a.mapped }

// Size returns the arena capacity in bytes.
func (a *Arena) Size() int64 { return int64(len(a.buf)) }

// Slice returns the sub-slice [off, off+n) of the arena. It panics if the
// range is out of bounds, which always indicates allocator corruption.
func (a *Arena) Slice(off, n int64) []byte {
	if off < 0 || n < 0 || off+n > int64(len(a.buf)) {
		panic(fmt.Sprintf("memory: slice [%d,%d) out of arena bounds %d", off, off+n, len(a.buf)))
	}
	return a.buf[off : off+n : off+n]
}

// Bytes exposes the whole arena. Intended for tests and for the data proxy,
// which shares the arena with computation threads.
func (a *Arena) Bytes() []byte { return a.buf }

// View returns a sub-arena aliasing bytes [off, off+size) of a. Shards of a
// sharded allocator each own one non-overlapping view of the pool's arena.
func (a *Arena) View(off, size int64) *Arena {
	if off < 0 || size <= 0 || off+size > int64(len(a.buf)) {
		panic(fmt.Sprintf("memory: view [%d,%d) out of arena bounds %d", off, off+size, len(a.buf)))
	}
	return &Arena{buf: a.buf[off : off+size : off+size]}
}
