package memory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArenaSlice(t *testing.T) {
	a := NewArena(1024)
	if a.Size() != 1024 {
		t.Fatalf("Size() = %d, want 1024", a.Size())
	}
	s := a.Slice(16, 32)
	if len(s) != 32 {
		t.Fatalf("len(slice) = %d, want 32", len(s))
	}
	s[0] = 0xAB
	if a.Bytes()[16] != 0xAB {
		t.Fatal("slice does not alias arena")
	}
}

func TestArenaSliceOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds slice")
		}
	}()
	NewArena(64).Slice(60, 8)
}

func TestTLSFAllocFree(t *testing.T) {
	tl := NewTLSF(NewArena(1 << 20))
	off, err := tl.Alloc(1000)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if off%16 != 0 {
		t.Fatalf("offset %d not 16-aligned", off)
	}
	if got := tl.UsableSize(off); got < 1000 {
		t.Fatalf("UsableSize = %d, want >= 1000", got)
	}
	tl.Free(off)
	if err := tl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if tl.Used() != 0 {
		t.Fatalf("Used = %d after freeing everything", tl.Used())
	}
}

func TestTLSFExhaustion(t *testing.T) {
	tl := NewTLSF(NewArena(4096))
	var offs []int64
	for {
		off, err := tl.Alloc(512)
		if err == ErrOutOfMemory {
			break
		}
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		offs = append(offs, off)
	}
	if len(offs) == 0 {
		t.Fatal("could not allocate anything")
	}
	// Free one and the same size must fit again.
	tl.Free(offs[0])
	if _, err := tl.Alloc(512); err != nil {
		t.Fatalf("Alloc after Free: %v", err)
	}
}

func TestTLSFCoalescing(t *testing.T) {
	tl := NewTLSF(NewArena(1 << 16))
	a, _ := tl.Alloc(1024)
	b, _ := tl.Alloc(1024)
	c, _ := tl.Alloc(1024)
	// Free in an order that exercises next-, prev- and both-side coalescing.
	tl.Free(a)
	tl.Free(c)
	tl.Free(b)
	if err := tl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// After full coalescing a near-arena-size allocation must succeed.
	if _, err := tl.Alloc(1<<16 - 64); err != nil {
		t.Fatalf("large Alloc after coalescing: %v", err)
	}
}

func TestTLSFDoubleFreePanics(t *testing.T) {
	tl := NewTLSF(NewArena(4096))
	off, _ := tl.Alloc(100)
	tl.Free(off)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	tl.Free(off)
}

func TestTLSFRejectsBadSizes(t *testing.T) {
	tl := NewTLSF(NewArena(4096))
	if _, err := tl.Alloc(0); err == nil {
		t.Fatal("Alloc(0) should fail")
	}
	if _, err := tl.Alloc(-5); err == nil {
		t.Fatal("Alloc(-5) should fail")
	}
}

func TestTLSFVariableSizes(t *testing.T) {
	tl := NewTLSF(NewArena(1 << 20))
	sizes := []int64{17, 64, 255, 4096, 65536, 100000, 1, 31}
	offs := make([]int64, len(sizes))
	for i, sz := range sizes {
		off, err := tl.Alloc(sz)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", sz, err)
		}
		offs[i] = off
		if got := tl.UsableSize(off); got < sz {
			t.Fatalf("UsableSize(%d) = %d < requested %d", off, got, sz)
		}
	}
	// Allocations must not overlap: write a distinct byte pattern to each.
	a := tl.arena
	for i, off := range offs {
		buf := a.Slice(off, sizes[i])
		for j := range buf {
			buf[j] = byte(i + 1)
		}
	}
	for i, off := range offs {
		buf := a.Slice(off, sizes[i])
		for j := range buf {
			if buf[j] != byte(i+1) {
				t.Fatalf("allocation %d overwritten at byte %d", i, j)
			}
		}
	}
	for _, off := range offs {
		tl.Free(off)
	}
	if err := tl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestTLSFRandomized is a property test: after any interleaving of allocs
// and frees, the physical chain is consistent and all memory is recovered.
func TestTLSFRandomized(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTLSF(NewArena(1 << 18))
		type alloc struct{ off, size int64 }
		var live []alloc
		for i := 0; i < 300; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				j := rng.Intn(len(live))
				tl.Free(live[j].off)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				sz := int64(1 + rng.Intn(8000))
				off, err := tl.Alloc(sz)
				if err != nil {
					continue // exhausted; fine
				}
				live = append(live, alloc{off, sz})
			}
		}
		if err := tl.CheckConsistency(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, l := range live {
			tl.Free(l.off)
		}
		if tl.Used() != 0 {
			t.Logf("seed %d: leaked %d bytes", seed, tl.Used())
			return false
		}
		return tl.CheckConsistency() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTLSFConcurrent(t *testing.T) {
	tl := NewTLSF(NewArena(4 << 20))
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			var offs []int64
			for i := 0; i < 200; i++ {
				if off, err := tl.Alloc(int64(64 + rng.Intn(1024))); err == nil {
					offs = append(offs, off)
				}
				if len(offs) > 4 {
					tl.Free(offs[0])
					offs = offs[1:]
				}
			}
			for _, off := range offs {
				tl.Free(off)
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if tl.Used() != 0 {
		t.Fatalf("leaked %d bytes after concurrent workload", tl.Used())
	}
	if err := tl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTLSFAllocFree(b *testing.B) {
	tl := NewTLSF(NewArena(64 << 20))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off, err := tl.Alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		tl.Free(off)
	}
}
