package memory

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pangea/internal/numa"
)

// newNUMAAlloc builds a sharded allocator over a fresh heap arena and a
// fake topology of the given shape, returning both.
func newNUMAAlloc(t *testing.T, arenaBytes int64, shards, nodes int) (*ShardedTLSF, *numa.FakeTopology) {
	t.Helper()
	topo := numa.NewFake(nodes, maxOf(nodes, 8))
	s := NewShardedTLSFNUMA(NewArena(arenaBytes), shards, topo, nil)
	if s.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d (arena %d bytes)", s.Shards(), shards, arenaBytes)
	}
	return s, topo
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestShardNodePartition: shards are partitioned across nodes in contiguous
// runs, every shard's arena region is Bind-ed to its node in shard order,
// and the per-node shard lists cover exactly the shard set — for square,
// lopsided, single-node, and more-nodes-than-shards shapes.
func TestShardNodePartition(t *testing.T) {
	cases := []struct {
		shards, nodes int
		wantNode      []int // shard -> node
	}{
		{4, 1, []int{0, 0, 0, 0}},
		{4, 2, []int{0, 0, 1, 1}},
		{8, 4, []int{0, 0, 1, 1, 2, 2, 3, 3}},
		{8, 3, []int{0, 0, 0, 1, 1, 1, 2, 2}},
		{2, 4, []int{0, 2}}, // nodes 1 and 3 own no shards
		{1, 4, []int{0}},
	}
	for _, c := range cases {
		s, topo := newNUMAAlloc(t, int64(c.shards)<<20, c.shards, c.nodes)
		if s.NumNodes() != c.nodes {
			t.Errorf("%d shards/%d nodes: NumNodes = %d", c.shards, c.nodes, s.NumNodes())
		}
		got := make([]int, c.shards)
		for i := range got {
			got[i] = s.NodeOfShard(i)
		}
		if !reflect.DeepEqual(got, c.wantNode) {
			t.Errorf("%d shards/%d nodes: shard→node = %v, want %v", c.shards, c.nodes, got, c.wantNode)
		}
		// One Bind per shard, in shard order, covering the usable arena.
		binds := topo.Binds()
		if len(binds) != c.shards {
			t.Fatalf("%d shards/%d nodes: %d Bind calls, want one per shard", c.shards, c.nodes, len(binds))
		}
		var bound int64
		for i, b := range binds {
			if b.Node != c.wantNode[i] {
				t.Errorf("%d shards/%d nodes: shard %d bound to node %d, want %d", c.shards, c.nodes, i, b.Node, c.wantNode[i])
			}
			bound += int64(b.Bytes)
		}
		if bound > int64(c.shards)<<20 || bound < int64(c.shards)<<20-tlsfAlign {
			t.Errorf("%d shards/%d nodes: bound %d bytes of a %d arena", c.shards, c.nodes, bound, int64(c.shards)<<20)
		}
		// The per-node lists partition the shard set.
		seen := map[int]bool{}
		for node := 0; node < c.nodes; node++ {
			for _, idx := range s.NodeShards(node) {
				if s.NodeOfShard(idx) != node || seen[idx] {
					t.Errorf("%d shards/%d nodes: node %d lists shard %d (node %d, dup %v)", c.shards, c.nodes, node, idx, s.NodeOfShard(idx), seen[idx])
				}
				seen[idx] = true
			}
		}
		if len(seen) != c.shards {
			t.Errorf("%d shards/%d nodes: node lists cover %d shards, want %d", c.shards, c.nodes, len(seen), c.shards)
		}
	}
}

// TestHomeShardOn: the home shard for a (node, hint) pair is node-local
// whenever the node owns shards, covers all of the node's shards across
// hints, and falls back to the global mapping for shardless nodes.
func TestHomeShardOn(t *testing.T) {
	for _, c := range []struct{ shards, nodes int }{{4, 2}, {8, 3}, {2, 4}, {4, 1}} {
		s, _ := newNUMAAlloc(t, int64(c.shards)<<20, c.shards, c.nodes)
		for node := 0; node < c.nodes; node++ {
			local := s.NodeShards(node)
			covered := map[int]bool{}
			for hint := 0; hint < 32; hint++ {
				h := s.HomeShardOn(node, hint)
				if h < 0 || h >= c.shards {
					t.Fatalf("%d/%d: HomeShardOn(%d,%d) = %d out of range", c.shards, c.nodes, node, hint, h)
				}
				if len(local) > 0 && s.NodeOfShard(h) != node {
					t.Errorf("%d/%d: HomeShardOn(%d,%d) = shard %d on node %d, want node-local", c.shards, c.nodes, node, hint, h, s.NodeOfShard(h))
				}
				covered[h] = true
			}
			if len(local) > 0 && len(covered) != len(local) {
				t.Errorf("%d/%d: node %d hints covered %d of %d local shards", c.shards, c.nodes, node, len(covered), len(local))
			}
		}
		// Out-of-range nodes use the global fallback rather than panicking.
		if h := s.HomeShardOn(-1, 3); h != s.HomeShard(3) {
			t.Errorf("HomeShardOn(-1) = %d, want global fallback %d", h, s.HomeShard(3))
		}
	}
}

// TestTwoTierStealOrder exhausts shards one allocation at a time (each
// sized to fill a whole shard) and checks the landing order: home shard,
// then the rest of the home node, then the remote nodes — with the
// cross-node counter ticking only on the interconnect crossings.
func TestTwoTierStealOrder(t *testing.T) {
	s, _ := newNUMAAlloc(t, 4<<20, 4, 2) // node 0: shards {0,1}, node 1: {2,3}
	big := s.MaxAlloc()                  // one block fills one shard
	wantShard := []int{0, 1, 2, 3}
	wantCross := []int64{0, 0, 1, 2}
	var offs []int64
	for i, want := range wantShard {
		off, err := s.AllocAffinity(big, 0) // all traffic homed on shard 0
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		offs = append(offs, off)
		if got := s.ShardOf(off); got != want {
			t.Errorf("alloc %d landed in shard %d, want %d (two-tier order)", i, got, want)
		}
		if got := s.CrossNodeSteals(); got != wantCross[i] {
			t.Errorf("after alloc %d: CrossNodeSteals = %d, want %d", i, got, wantCross[i])
		}
	}
	if _, err := s.AllocAffinity(big, 0); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("5th shard-filling alloc: err = %v, want ErrOutOfMemory", err)
	}
	for _, off := range offs {
		s.Free(off)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossNodeDrainBeforeOOM is the regression test that a full cross-node
// drain still precedes ErrOutOfMemory: with every shard full, freeing one
// remote block must let a home-node-routed allocation succeed (landing on
// the remote node), and OOM may be reported only when genuinely nothing is
// left anywhere.
func TestCrossNodeDrainBeforeOOM(t *testing.T) {
	s, _ := newNUMAAlloc(t, 4<<20, 4, 2)
	// Fill the whole arena with 64 KiB blocks homed on shard 0: the hot
	// hint must be able to consume every node's shards.
	var offs []int64
	for {
		off, err := s.AllocAffinity(64<<10, 0)
		if errors.Is(err, ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	if len(offs) < 48 {
		t.Fatalf("only %d×64KiB allocated from a 4 MiB arena; cross-node stealing failed", len(offs))
	}
	// Free two adjacent blocks on the remote node (they coalesce into one
	// region a 64 KiB request is guaranteed to find despite TLSF's class
	// round-up) and retry from the node-0 home: the allocation must succeed
	// by crossing the interconnect rather than reporting OOM while remote
	// memory is free.
	remote := -1
	for i, off := range offs {
		if s.NodeOfShard(s.ShardOf(off)) == 1 && i+1 < len(offs) &&
			s.ShardOf(offs[i+1]) == s.ShardOf(off) {
			remote = i
			break
		}
	}
	if remote < 0 {
		t.Fatal("no adjacent allocations landed on node 1; steal never crossed nodes")
	}
	s.Free(offs[remote])
	s.Free(offs[remote+1])
	offs = append(offs[:remote], offs[remote+2:]...)
	off, err := s.AllocAffinity(64<<10, 0)
	if err != nil {
		t.Fatalf("alloc after remote free: %v (cross-node drain must precede OOM)", err)
	}
	if got := s.NodeOfShard(s.ShardOf(off)); got != 1 {
		t.Errorf("refill landed on node %d, want the freed remote node 1", got)
	}
	offs = append(offs, off)
	for _, o := range offs {
		s.Free(o)
	}
	if s.Used() != 0 {
		t.Fatalf("leaked %d bytes", s.Used())
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestSingleShardReproducesSeedBehaviour: AllocShards=1 with any topology
// must behave exactly like the seed's single TLSF — same offsets for the
// same operation sequence, home shard 0 for every (node, hint) pair, and
// no cross-node steals ever.
func TestSingleShardReproducesSeedBehaviour(t *testing.T) {
	const arenaBytes = 2 << 20
	seed := NewShardedTLSFNUMA(NewArena(arenaBytes), 1, numa.SingleNode(), nil)
	four := NewShardedTLSFNUMA(NewArena(arenaBytes), 1, numa.NewFake(4, 8), nil)
	if seed.Shards() != 1 || four.Shards() != 1 {
		t.Fatalf("Shards = %d/%d, want 1/1", seed.Shards(), four.Shards())
	}
	for node := 0; node < 4; node++ {
		for hint := 0; hint < 8; hint++ {
			if h := four.HomeShardOn(node, hint); h != 0 {
				t.Fatalf("HomeShardOn(%d,%d) = %d with one shard", node, hint, h)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	type op struct {
		free bool
		idx  int
		size int64
		hint int
	}
	var ops []op
	for i := 0; i < 300; i++ {
		if i > 0 && rng.Intn(3) == 0 {
			ops = append(ops, op{free: true, idx: rng.Intn(i)})
		} else {
			ops = append(ops, op{size: int64(1 + rng.Intn(32<<10)), hint: rng.Intn(16)})
		}
	}
	replay := func(s *ShardedTLSF) []int64 {
		var got []int64
		live := map[int]int64{}
		order := []int{}
		for i, o := range ops {
			if o.free {
				// Free the o.idx-th still-live allocation, if any.
				if len(order) == 0 {
					continue
				}
				k := order[o.idx%len(order)]
				s.Free(live[k])
				delete(live, k)
				for j, v := range order {
					if v == k {
						order = append(order[:j], order[j+1:]...)
						break
					}
				}
				continue
			}
			off, err := s.AllocAffinity(o.size, o.hint)
			if err != nil {
				got = append(got, -1)
				continue
			}
			got = append(got, off)
			live[i] = off
			order = append(order, i)
		}
		return got
	}
	a, b := replay(seed), replay(four)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("single-shard allocation sequence diverges between single-node and fake 4-node topologies")
	}
	if seed.CrossNodeSteals() != 0 || four.CrossNodeSteals() != 0 {
		t.Errorf("cross-node steals = %d/%d with one shard, want 0", seed.CrossNodeSteals(), four.CrossNodeSteals())
	}
}

func TestNegativeShardCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardedTLSFNUMA(-1 shards) must panic")
		}
	}()
	NewShardedTLSFNUMA(NewArena(1<<20), -1, numa.SingleNode(), nil)
}

// TestNodeUsedGauges: per-node usage tracks where allocations actually
// landed and sums to the aggregate at quiescence.
func TestNodeUsedGauges(t *testing.T) {
	s, _ := newNUMAAlloc(t, 4<<20, 4, 2)
	n1, err := s.AllocAffinity(100<<10, s.HomeShardOn(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	used := s.NodeUsed()
	if len(used) != 2 {
		t.Fatalf("NodeUsed len = %d, want 2", len(used))
	}
	if used[0] != 0 || used[1] <= 0 {
		t.Errorf("NodeUsed = %v after a node-1 allocation, want [0, >0]", used)
	}
	if sum := used[0] + used[1]; sum != s.Used() {
		t.Errorf("NodeUsed sum %d != Used %d", sum, s.Used())
	}
	s.Free(n1)
	used = s.NodeUsed()
	// The freed block may park in a front cache, but parked counts free.
	if used[0] != 0 || used[1] != 0 {
		t.Errorf("NodeUsed = %v after freeing everything", used)
	}
}

// TestShardedNUMAConcurrentStress: node-affine allocation traffic on a fake
// 2-node topology, with a slice of deliberately remote traffic, while a
// checker interleaves per-shard consistency checks. Run with -race.
func TestShardedNUMAConcurrentStress(t *testing.T) {
	const workers = 8
	topo := numa.NewFake(2, workers)
	s := NewShardedTLSFNUMA(NewArena(16<<20), 4, topo, nil)
	stop := make(chan struct{})
	checkErr := make(chan error, 1)
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.CheckConsistency(); err != nil {
				select {
				case checkErr <- err:
				default:
				}
				return
			}
		}
	}()

	sizes := []int64{80, 512, 4096, 4096, 4096, 64 << 10, 100_000}
	var wg sync.WaitGroup
	workerErr := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := topo.NodeOfCPU(w)
			rng := rand.New(rand.NewSource(int64(w)))
			var live []int64
			for i := 0; i < 3000; i++ {
				if len(live) > 24 || (len(live) > 0 && rng.Intn(2) == 0) {
					j := rng.Intn(len(live))
					s.Free(live[j])
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				home := s.HomeShardOn(node, w)
				if rng.Intn(8) == 0 {
					// Deliberately remote: home on the other node.
					home = s.HomeShardOn(1-node, w)
				}
				off, err := s.AllocAffinity(sizes[rng.Intn(len(sizes))], home)
				if errors.Is(err, ErrOutOfMemory) {
					continue
				}
				if err != nil {
					workerErr <- err
					return
				}
				live = append(live, off)
			}
			for _, off := range live {
				s.Free(off)
			}
			workerErr <- nil
		}(w)
	}
	wg.Wait()
	close(stop)
	checker.Wait()
	close(workerErr)
	for err := range workerErr {
		if err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-checkErr:
		t.Fatalf("mid-stress consistency check: %v", err)
	default:
	}
	if s.Used() != 0 {
		t.Fatalf("leaked %d bytes after concurrent stress", s.Used())
	}
	var perNode int64
	for _, u := range s.NodeUsed() {
		perNode += u
	}
	if perNode != 0 {
		t.Fatalf("NodeUsed sums to %d at quiescence, want 0", perNode)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestMmapArena: the mmap-backed variant is readable/writable end to end
// and serves a TLSF allocator exactly like a heap arena (falling back to
// heap where mmap is unavailable — the test passes either way).
func TestMmapArena(t *testing.T) {
	a := NewMmapArena(2 << 20)
	if a.Size() != 2<<20 {
		t.Fatalf("Size = %d", a.Size())
	}
	buf := a.Slice(0, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	for i := range buf {
		if buf[i] != byte(i) {
			t.Fatalf("mmap arena byte %d corrupt", i)
		}
	}
	s := NewShardedTLSFNUMA(a, 1, numa.SingleNode(), nil)
	off, err := s.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	copy(a.Slice(off, 64<<10), []byte("pangea"))
	s.Free(off)
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
