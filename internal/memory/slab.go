package memory

import "fmt"

// Slab is a memcached-style slab allocator confined to a fixed byte region.
// Pangea's hash service uses one Slab per buffer-pool page so that a hash
// partition's table and key-value pairs are all bounded to the memory space
// hosting that page (paper §8); when Alloc fails the service splits a new
// partition onto a fresh page or spills.
//
// The region is carved into slabs of SlabSize bytes; each slab is dedicated
// to one size class, and classes grow geometrically from MinChunk by Factor.
type Slab struct {
	region      []byte
	slabSize    int
	classes     []slabClass
	slabOfClass []int // class index per slab, -1 if not yet carved
	nextSlab    int
	usedBytes   int
	allocBytes  int // bytes requested by callers (for utilization stats)
}

type slabClass struct {
	chunkSize int
	free      []int // offsets of free chunks
}

// SlabConfig controls size-class geometry.
type SlabConfig struct {
	SlabSize int     // bytes per slab; default 64 KiB
	MinChunk int     // smallest chunk size; default 64
	Factor   float64 // geometric growth factor; default 1.25
}

func (c *SlabConfig) fill() {
	if c.SlabSize == 0 {
		c.SlabSize = 64 << 10
	}
	if c.MinChunk == 0 {
		c.MinChunk = 64
	}
	if c.Factor == 0 {
		c.Factor = 1.25
	}
}

// NewSlab builds a slab allocator over region.
func NewSlab(region []byte, cfg SlabConfig) *Slab {
	cfg.fill()
	if len(region) < cfg.SlabSize {
		cfg.SlabSize = len(region)
	}
	s := &Slab{region: region, slabSize: cfg.SlabSize}
	for sz := cfg.MinChunk; sz <= cfg.SlabSize; {
		s.classes = append(s.classes, slabClass{chunkSize: sz})
		next := int(float64(sz) * cfg.Factor)
		if next <= sz {
			next = sz + 1
		}
		sz = (next + 7) &^ 7
	}
	if last := s.classes[len(s.classes)-1].chunkSize; last != cfg.SlabSize {
		s.classes = append(s.classes, slabClass{chunkSize: cfg.SlabSize})
	}
	numSlabs := (len(region) + cfg.SlabSize - 1) / cfg.SlabSize
	s.slabOfClass = make([]int, numSlabs)
	for i := range s.slabOfClass {
		s.slabOfClass[i] = -1
	}
	return s
}

// classFor returns the index of the smallest class whose chunks hold n
// bytes, or -1 if n exceeds the largest chunk.
func (s *Slab) classFor(n int) int {
	lo, hi := 0, len(s.classes)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.classes[mid].chunkSize < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(s.classes) {
		return -1
	}
	return lo
}

// Alloc reserves n bytes and returns the chunk offset within the region.
// ok is false when the region is exhausted for this size — the caller is
// expected to react by splitting a partition or spilling a page.
func (s *Slab) Alloc(n int) (off int, ok bool) {
	ci := s.classFor(n)
	if ci < 0 {
		return 0, false
	}
	c := &s.classes[ci]
	if len(c.free) == 0 && !s.carve(ci) {
		return 0, false
	}
	off = c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	s.usedBytes += c.chunkSize
	s.allocBytes += n
	return off, true
}

// carve dedicates the next uncarved slab to class ci and splits it into
// chunks. Returns false when the region has no uncarved slab left.
func (s *Slab) carve(ci int) bool {
	if s.nextSlab >= len(s.slabOfClass) {
		return false
	}
	slab := s.nextSlab
	s.nextSlab++
	s.slabOfClass[slab] = ci
	c := &s.classes[ci]
	base := slab * s.slabSize
	end := base + s.slabSize
	if end > len(s.region) {
		end = len(s.region)
	}
	for off := base; off+c.chunkSize <= end; off += c.chunkSize {
		c.free = append(c.free, off)
	}
	return len(c.free) > 0
}

// Free returns a chunk to its class's free list. n must be the size passed
// to Alloc (used only for utilization accounting).
func (s *Slab) Free(off, n int) {
	slab := off / s.slabSize
	ci := s.slabOfClass[slab]
	if ci < 0 {
		panic(fmt.Sprintf("memory: free of offset %d in uncarved slab", off))
	}
	c := &s.classes[ci]
	c.free = append(c.free, off)
	s.usedBytes -= c.chunkSize
	s.allocBytes -= n
}

// ChunkSize reports the capacity of the chunk at off.
func (s *Slab) ChunkSize(off int) int {
	ci := s.slabOfClass[off/s.slabSize]
	if ci < 0 {
		return 0
	}
	return s.classes[ci].chunkSize
}

// Bytes returns the n-byte chunk slice at off.
func (s *Slab) Bytes(off, n int) []byte { return s.region[off : off+n : off+n] }

// Used reports bytes consumed by live chunks (including internal
// fragmentation within chunks).
func (s *Slab) Used() int { return s.usedBytes }

// Utilization reports requested-bytes / chunk-bytes for live allocations,
// a measure of internal fragmentation. Returns 1 when nothing is live.
func (s *Slab) Utilization() float64 {
	if s.usedBytes == 0 {
		return 1
	}
	return float64(s.allocBytes) / float64(s.usedBytes)
}
