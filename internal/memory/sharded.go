package memory

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Allocator is the arena-allocator interface the buffer pool programs
// against: shard-affine allocation of variable-sized regions out of a
// shared arena, identified by 16-byte-aligned offsets. ShardedTLSF is the
// default implementation; a NUMA-arena allocator can slot in behind the
// same interface (ROADMAP).
type Allocator interface {
	Alloc(n int64) (int64, error)
	AllocAffinity(n int64, hint int) (int64, error)
	Free(off int64)
	UsableSize(off int64) int64
	MaxAlloc() int64
	Used() int64
	FreeBytes() int64
	NumShards() int
	HomeShard(hint int) int
	CheckConsistency() error
}

var _ Allocator = (*ShardedTLSF)(nil)

const (
	// minShardBytes keeps shards large enough to hold real pages; arenas
	// smaller than 2*minShardBytes stay unsharded, so tiny test pools keep
	// the seed's single-TLSF behaviour.
	minShardBytes = 1 << 20
	// maxShards caps the shard count regardless of GOMAXPROCS.
	maxShards = 64
	// maxClassesPerShard bounds how many distinct hot sizes a shard caches.
	maxClassesPerShard = 8
	// classCapMax bounds a front cache's depth in blocks.
	classCapMax = 32
)

// classStack is one size class's front cache: a LIFO stack of user offsets
// whose blocks all have the exact total size `need`. Freed blocks of a hot
// page size park here and the next same-size allocation pops one back
// without touching the shard's TLSF bitmaps or boundary tags.
type classStack struct {
	need int64 // exact block size (header included) of every cached block
	cap  int
	offs []int64 // global user offsets, LIFO
}

// tlsfShard is one contiguous arena region with its own TLSF instance and
// front caches. Lock order: cacheMu before the shard's tlsf.mu, never the
// reverse.
type tlsfShard struct {
	base int64
	size int64
	tlsf *TLSF

	// cacheMu guards the front caches: the class table, every class stack,
	// the cached-offset set (double-free guard) and the cached-bytes total.
	// Critical sections are a few map/slice operations, so the common
	// NewPage/Free path of a shard's home sets is a near-lock-free pop/push.
	cacheMu     sync.Mutex
	classes     map[int64]*classStack
	cachedSet   map[int64]struct{}
	cachedBytes int64
}

// ShardedTLSF splits one arena into N contiguous TLSF shards (N ≈
// GOMAXPROCS, power of two), each with its own mutex, bitmaps and free
// lists, fronted by small per-size-class caches refilled and drained in
// batches. Allocations carry a home-shard hint (the pool routes by locality
// set); on exhaustion the allocator steals from the other shards in ring
// order and, as a last resort, drains every front cache so parked blocks
// can coalesce before reporting ErrOutOfMemory. Used and FreeBytes
// aggregate across shards and count cache-parked blocks as free.
type ShardedTLSF struct {
	arena     *Arena
	shards    []*tlsfShard
	shardSize int64
	total     int64         // usable (16-aligned) arena bytes across shards
	used      atomic.Int64  // aggregate bytes handed out; cached blocks count free
	rr        atomic.Uint32 // round-robin homes for hint-less Alloc
}

// shardCount resolves the shard count for a 16-aligned arena size: <= 0
// selects ~GOMAXPROCS; any value is rounded up to a power of two, capped
// at maxShards, and reduced until every shard holds at least minShardBytes
// (so small arenas degrade to a single shard).
func shardCount(total int64, nshards int) int {
	n := nshards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		n = maxShards
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	for n > 1 && total/int64(n) < minShardBytes {
		n >>= 1
	}
	return n
}

// DefaultShardCount reports how many shards NewShardedTLSF would create
// for an arena of the given size under the automatic (GOMAXPROCS) policy,
// without building anything.
func DefaultShardCount(arenaBytes int64) int {
	return shardCount(arenaBytes&^(tlsfAlign-1), 0)
}

// NewShardedTLSF builds a sharded allocator over the whole arena; see
// shardCount for how nshards is resolved.
func NewShardedTLSF(a *Arena, nshards int) *ShardedTLSF {
	total := a.Size() &^ (tlsfAlign - 1)
	n := shardCount(total, nshards)
	s := &ShardedTLSF{arena: a, shardSize: (total / int64(n)) &^ (tlsfAlign - 1), total: total}
	for i := 0; i < n; i++ {
		base := int64(i) * s.shardSize
		size := s.shardSize
		if i == n-1 {
			size = total - base
		}
		s.shards = append(s.shards, &tlsfShard{
			base:      base,
			size:      size,
			tlsf:      NewTLSF(a.View(base, size)),
			classes:   make(map[int64]*classStack),
			cachedSet: make(map[int64]struct{}),
		})
	}
	return s
}

// NumShards reports how many TLSF shards the arena was split into.
func (s *ShardedTLSF) NumShards() int { return len(s.shards) }

// HomeShard maps an affinity hint (e.g. a locality-set ID) to its home
// shard index.
func (s *ShardedTLSF) HomeShard(hint int) int {
	return int(uint(hint) & uint(len(s.shards)-1))
}

func (s *ShardedTLSF) shardFor(userOff int64) *tlsfShard {
	i := (userOff - headerSize) / s.shardSize
	if i >= int64(len(s.shards)) {
		i = int64(len(s.shards)) - 1
	}
	return s.shards[i]
}

// capFor sizes a front cache so no class can park more than 1/16 of its
// shard; classes too large to cache at least two blocks are not cached.
func (sh *tlsfShard) capFor(need int64) int {
	c := sh.size / (16 * need)
	if c > classCapMax {
		c = classCapMax
	}
	if c < 2 {
		return 0
	}
	return int(c)
}

// Alloc reserves n bytes from a round-robin home shard. Pool code uses
// AllocAffinity so a locality set's pages stay on its home shard.
func (s *ShardedTLSF) Alloc(n int64) (int64, error) {
	return s.AllocAffinity(n, int(s.rr.Add(1)))
}

// AllocAffinity reserves n bytes, preferring the home shard that the hint
// maps to: front cache first, then the home TLSF (refilling the cache in
// the same batch), then work-stealing from the other shards, then a full
// cache drain so parked blocks can coalesce.
func (s *ShardedTLSF) AllocAffinity(n int64, hint int) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("memory: invalid allocation size %d", n)
	}
	ns := len(s.shards)
	need := blockNeed(n)
	h := s.HomeShard(hint)

	if off, ok := s.shards[h].popCached(need); ok {
		s.used.Add(need)
		return off, nil
	}
	if off, ok := s.shards[h].allocRefill(n, need); ok {
		return s.granted(s.shards[h], off), nil
	}
	for d := 1; d < ns; d++ {
		sh := s.shards[(h+d)%ns]
		if off, ok := sh.popCached(need); ok {
			s.used.Add(need)
			return off, nil
		}
		if off, err := sh.tlsf.Alloc(n); err == nil {
			return s.granted(sh, sh.base+off), nil
		}
	}
	// Retry unconditionally after the drain: even when our own drain found
	// nothing, a concurrent drain or an in-flight cache overflow may have
	// just returned blocks to a TLSF our steal loop had already passed.
	s.drainAll()
	for d := 0; d < ns; d++ {
		sh := s.shards[(h+d)%ns]
		if off, err := sh.tlsf.Alloc(n); err == nil {
			return s.granted(sh, sh.base+off), nil
		}
	}
	return 0, ErrOutOfMemory
}

// granted records a fresh TLSF grant in the aggregate used counter (the
// granted block can be slightly larger than requested when a remainder was
// too small to split) and returns the offset unchanged.
func (s *ShardedTLSF) granted(sh *tlsfShard, userOff int64) int64 {
	s.used.Add(int64(sh.tlsf.header(userOff-sh.base) &^ 1))
	return userOff
}

// popCached pops a parked block of the exact class off the front cache.
func (sh *tlsfShard) popCached(need int64) (int64, bool) {
	sh.cacheMu.Lock()
	cls := sh.classes[need]
	if cls == nil || len(cls.offs) == 0 {
		sh.cacheMu.Unlock()
		return 0, false
	}
	off := cls.offs[len(cls.offs)-1]
	cls.offs = cls.offs[:len(cls.offs)-1]
	delete(sh.cachedSet, off)
	sh.cachedBytes -= need
	sh.cacheMu.Unlock()
	return off, true
}

// allocRefill allocates from the shard's TLSF, topping up the size class's
// front cache in the same batch (one TLSF lock acquisition). Hot sizes are
// discovered here: the first cache miss for a cacheable size creates its
// class.
func (sh *tlsfShard) allocRefill(n, need int64) (int64, bool) {
	sh.cacheMu.Lock()
	cls := sh.classes[need]
	if cls == nil && len(sh.classes) < maxClassesPerShard {
		if c := sh.capFor(need); c > 0 {
			cls = &classStack{need: need, cap: c}
			sh.classes[need] = cls
		}
	}
	want := 1
	if cls != nil {
		want = cls.cap/4 + 1
		if want > 8 {
			want = 8
		}
		if room := cls.cap - len(cls.offs); want > room+1 {
			want = room + 1
		}
	}
	sh.cacheMu.Unlock()

	offs := sh.tlsf.AllocBatch(n, want, nil)
	if len(offs) == 0 {
		return 0, false
	}
	ret := sh.base + offs[0]
	if len(offs) == 1 {
		return ret, true
	}
	// Park exact-size spares in the front cache; anything oversized (an
	// unsplit remainder) or overflowing goes straight back to the TLSF.
	var freeBack []int64
	sh.cacheMu.Lock()
	for _, lo := range offs[1:] {
		if cls != nil && int64(sh.tlsf.header(lo)&^1) == need && len(cls.offs) < cls.cap {
			g := sh.base + lo
			cls.offs = append(cls.offs, g)
			sh.cachedSet[g] = struct{}{}
			sh.cachedBytes += need
		} else {
			freeBack = append(freeBack, lo)
		}
	}
	sh.cacheMu.Unlock()
	sh.tlsf.FreeBatch(freeBack)
	return ret, true
}

// Free releases a region previously returned by Alloc/AllocAffinity. Blocks
// of a cached size class park in their shard's front cache; when a cache
// overflows, the coldest half drains back to the TLSF in one batch.
func (s *ShardedTLSF) Free(userOff int64) {
	sh := s.shardFor(userOff)
	local := userOff - sh.base
	hdr := sh.tlsf.header(local)
	if hdr&1 == 1 {
		panic(fmt.Sprintf("memory: double free at offset %d", userOff))
	}
	size := int64(hdr &^ 1)

	sh.cacheMu.Lock()
	if _, dup := sh.cachedSet[userOff]; dup {
		sh.cacheMu.Unlock()
		panic(fmt.Sprintf("memory: double free at offset %d (block is parked in a front cache)", userOff))
	}
	s.used.Add(-size)
	cls := sh.classes[size]
	if cls == nil {
		sh.cacheMu.Unlock()
		sh.tlsf.Free(local)
		return
	}
	var drain []int64
	if len(cls.offs) >= cls.cap {
		half := len(cls.offs) / 2
		if half == 0 {
			half = len(cls.offs)
		}
		drain = make([]int64, half)
		for i, g := range cls.offs[:half] {
			drain[i] = g - sh.base
			delete(sh.cachedSet, g)
		}
		n := copy(cls.offs, cls.offs[half:])
		cls.offs = cls.offs[:n]
		sh.cachedBytes -= int64(half) * size
	}
	cls.offs = append(cls.offs, userOff)
	sh.cachedSet[userOff] = struct{}{}
	sh.cachedBytes += size
	sh.cacheMu.Unlock()
	sh.tlsf.FreeBatch(drain)
}

// drainAll returns every cache-parked block to its shard's TLSF so the
// memory can coalesce and serve other sizes.
func (s *ShardedTLSF) drainAll() {
	for _, sh := range s.shards {
		sh.cacheMu.Lock()
		var offs []int64
		for _, cls := range sh.classes {
			for _, g := range cls.offs {
				offs = append(offs, g-sh.base)
				delete(sh.cachedSet, g)
			}
			sh.cachedBytes -= cls.need * int64(len(cls.offs))
			cls.offs = cls.offs[:0]
		}
		sh.cacheMu.Unlock()
		sh.tlsf.FreeBatch(offs)
	}
}

// UsableSize reports the payload capacity of an allocated region.
func (s *ShardedTLSF) UsableSize(userOff int64) int64 {
	sh := s.shardFor(userOff)
	return sh.tlsf.UsableSize(userOff - sh.base)
}

// MaxAlloc returns the largest single allocation the allocator can
// satisfy when empty: one block spanning the largest shard, rounded down
// to what mappingSearch's class round-up can actually find. CreateSet
// validates page sizes against this, since a page cannot span shards.
func (s *ShardedTLSF) MaxAlloc() int64 {
	// The last shard absorbs the division remainder, so it is the largest.
	sh := s.shards[len(s.shards)-1]
	return classFloor(sh.size&^(tlsfAlign-1)) - headerSize
}

// Used returns the bytes currently handed out to callers (including block
// headers). Blocks parked in front caches count as free: they are
// reusable by any allocation after a drain. Maintained as one atomic
// aggregate so the hot allocation path never sweeps every shard's locks
// for its peak-usage and watermark checks.
func (s *ShardedTLSF) Used() int64 { return s.used.Load() }

// FreeBytes returns the bytes not currently allocated, aggregated across
// shards; the eviction daemon's watermarks compare against this total.
func (s *ShardedTLSF) FreeBytes() int64 { return s.total - s.used.Load() }

// CheckShard verifies shard i: front-cache accounting (every parked block
// allocated, exact-sized, and counted once) plus the shard TLSF's physical
// chain invariants. Safe to call concurrently with allocation traffic.
func (s *ShardedTLSF) CheckShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("memory: no shard %d", i)
	}
	sh := s.shards[i]
	sh.cacheMu.Lock()
	defer sh.cacheMu.Unlock()
	var cached int64
	entries := 0
	for need, cls := range sh.classes {
		for _, g := range cls.offs {
			if _, ok := sh.cachedSet[g]; !ok {
				return fmt.Errorf("shard %d: cached block %d missing from cached set", i, g)
			}
			hdr := sh.tlsf.header(g - sh.base)
			if hdr&1 == 1 {
				return fmt.Errorf("shard %d: cached block %d marked free", i, g)
			}
			if int64(hdr&^1) != need {
				return fmt.Errorf("shard %d: cached block %d has size %d in class %d", i, g, hdr&^1, need)
			}
			cached += need
			entries++
		}
	}
	if entries != len(sh.cachedSet) {
		return fmt.Errorf("shard %d: %d cached blocks but %d set entries", i, entries, len(sh.cachedSet))
	}
	if cached != sh.cachedBytes {
		return fmt.Errorf("shard %d: cachedBytes %d, stacks hold %d", i, sh.cachedBytes, cached)
	}
	return sh.tlsf.CheckConsistency()
}

// CheckConsistency checks every shard; tests call it after stress runs.
func (s *ShardedTLSF) CheckConsistency() error {
	for i := range s.shards {
		if err := s.CheckShard(i); err != nil {
			return err
		}
	}
	return nil
}
