package memory

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"pangea/internal/locking"
	"pangea/internal/numa"
)

// Allocator is the arena-allocator interface the buffer pool programs
// against: shard-affine allocation of variable-sized regions out of a
// shared arena, identified by 16-byte-aligned offsets, with the shards
// partitioned across the machine's NUMA nodes. ShardedTLSF is the default
// implementation.
type Allocator interface {
	Alloc(n int64) (int64, error)
	AllocAffinity(n int64, hint int) (int64, error)
	Free(off int64)
	UsableSize(off int64) int64
	MaxAlloc() int64
	Used() int64
	FreeBytes() int64
	Shards() int
	HomeShard(hint int) int
	// HomeShardOn maps an affinity hint to a home shard local to the given
	// NUMA node, falling back to the global mapping when the node owns no
	// shards.
	HomeShardOn(node, hint int) int
	// NumNodes reports how many NUMA nodes the shards are partitioned over.
	NumNodes() int
	// NodeOfShard reports which node a shard's arena region belongs to.
	NodeOfShard(i int) int
	// NodeUsed reports the bytes handed out per node (cache-parked blocks
	// count free, as in Used).
	NodeUsed() []int64
	// CrossNodeSteals counts allocations that crossed the interconnect:
	// served by a shard on a different node than the home shard's.
	CrossNodeSteals() int64
	CheckConsistency() error
}

var _ Allocator = (*ShardedTLSF)(nil)

const (
	// minShardBytes keeps shards large enough to hold real pages; arenas
	// smaller than 2*minShardBytes stay unsharded, so tiny test pools keep
	// the seed's single-TLSF behaviour.
	minShardBytes = 1 << 20
	// maxShards caps the shard count regardless of GOMAXPROCS.
	maxShards = 64
	// maxClassesPerShard bounds how many distinct hot sizes a shard caches.
	maxClassesPerShard = 8
	// classCapMax bounds a front cache's depth in blocks.
	classCapMax = 32
)

// classStack is one size class's front cache: a LIFO stack of user offsets
// whose blocks all have the exact total size `need`. Freed blocks of a hot
// page size park here and the next same-size allocation pops one back
// without touching the shard's TLSF bitmaps or boundary tags.
type classStack struct {
	need int64 // exact block size (header included) of every cached block
	cap  int
	offs []int64 // global user offsets, LIFO
}

// tlsfShard is one contiguous arena region with its own TLSF instance and
// front caches. Lock order: cacheMu before the shard's tlsf.mu, never the
// reverse.
type tlsfShard struct {
	base int64
	size int64
	node int // NUMA node this shard's arena region is bound to
	tlsf *TLSF

	// used mirrors the shard's slice of the allocator-wide used aggregate,
	// so per-node residency gauges never sweep the shard locks.
	used atomic.Int64

	// cacheMu guards the front caches: the class table, every class stack,
	// the cached-offset set (double-free guard) and the cached-bytes total.
	// Critical sections are a few map/slice operations, so the common
	// NewPage/Free path of a shard's home sets is a near-lock-free pop/push.
	cacheMu     locking.Mutex
	classes     map[int64]*classStack
	cachedSet   map[int64]struct{}
	cachedBytes int64
}

// ShardedTLSF splits one arena into N contiguous TLSF shards (N ≈
// GOMAXPROCS, power of two), each with its own mutex, bitmaps and free
// lists, fronted by small per-size-class caches refilled and drained in
// batches. The shards are partitioned across the topology's NUMA nodes in
// contiguous runs (shard i belongs to node i·M/N) and each shard's arena
// region is bound to its node, so a page allocated from a node-local shard
// is node-local memory. Allocations carry a home-shard hint (the pool
// routes by locality set, choosing a home on the creating worker's node);
// on exhaustion the allocator steals in two tiers — every same-node shard
// first, only then the remote nodes' shards in ring order — and, as a last
// resort, drains every front cache so parked blocks can coalesce before
// reporting ErrOutOfMemory. A single hot set can therefore still consume
// the whole arena; it just pays the interconnect only once its own node is
// genuinely full. Used and FreeBytes aggregate across shards and count
// cache-parked blocks as free.
type ShardedTLSF struct {
	arena      *Arena
	topo       numa.Topology
	shards     []*tlsfShard
	nodeShards [][]int // node -> its shard indexes (may be empty)
	stealOrder [][]int // per home shard: every other shard, same node first
	sameNode   []int   // per home shard: how many stealOrder entries are local
	shardSize  int64
	total      int64         // usable (16-aligned) arena bytes across shards
	used       atomic.Int64  // aggregate bytes handed out; cached blocks count free
	rr         atomic.Uint32 // round-robin homes for hint-less Alloc

	crossSteals *atomic.Int64 // cross-node allocations; pool-owned when injected
}

// shardCount resolves the shard count for a 16-aligned arena size: <= 0
// selects ~GOMAXPROCS; any value is rounded up to a power of two, capped
// at maxShards, and reduced until every shard holds at least minShardBytes
// (so small arenas degrade to a single shard). The effective count is
// surfaced by ShardedTLSF.Shards.
func shardCount(total int64, nshards int) int {
	n := nshards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		n = maxShards
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	for n > 1 && total/int64(n) < minShardBytes {
		n >>= 1
	}
	return n
}

// DefaultShardCount reports how many shards NewShardedTLSF would create
// for an arena of the given size under the automatic (GOMAXPROCS) policy,
// without building anything.
func DefaultShardCount(arenaBytes int64) int {
	return shardCount(arenaBytes&^(tlsfAlign-1), 0)
}

// NewShardedTLSF builds a sharded allocator over the whole arena under the
// machine's discovered topology (which honours the PANGEA_FAKE_NUMA
// override); see shardCount for how nshards is resolved.
func NewShardedTLSF(a *Arena, nshards int) *ShardedTLSF {
	return NewShardedTLSFNUMA(a, nshards, nil, nil)
}

// NewShardedTLSFNUMA builds a sharded allocator with an explicit topology
// and an optional external cross-node steal counter (the pool injects its
// PoolStats gauge; nil keeps a private one). A nil topo selects
// numa.Discover(). nshards < 0 panics — silently "rounding" a negative
// shard count hid configuration bugs; the pool validates before calling.
func NewShardedTLSFNUMA(a *Arena, nshards int, topo numa.Topology, crossSteals *atomic.Int64) *ShardedTLSF {
	if nshards < 0 {
		panic(fmt.Sprintf("memory: negative shard count %d", nshards))
	}
	if topo == nil {
		topo = numa.Discover()
	}
	if crossSteals == nil {
		crossSteals = new(atomic.Int64)
	}
	total := a.Size() &^ (tlsfAlign - 1)
	n := shardCount(total, nshards)
	s := &ShardedTLSF{
		arena:       a,
		topo:        topo,
		shardSize:   (total / int64(n)) &^ (tlsfAlign - 1),
		total:       total,
		crossSteals: crossSteals,
	}
	nodes := topo.NumNodes()
	s.nodeShards = make([][]int, nodes)
	// Bind shard regions only where binding means something: a synthetic
	// topology records the call, a real machine mbinds — but only
	// mmap-backed regions, never the Go heap, whose placement belongs to
	// the runtime (on real hardware the arena is heap-backed exactly when
	// there is a single node, where Bind is a no-op anyway).
	bind := !topo.Physical() || a.Mapped()
	for i := 0; i < n; i++ {
		base := int64(i) * s.shardSize
		size := s.shardSize
		if i == n-1 {
			size = total - base
		}
		node := i * nodes / n
		s.nodeShards[node] = append(s.nodeShards[node], i)
		sh := &tlsfShard{
			base:      base,
			size:      size,
			node:      node,
			tlsf:      NewTLSF(a.View(base, size)),
			classes:   make(map[int64]*classStack),
			cachedSet: make(map[int64]struct{}),
		}
		sh.cacheMu.Init(locking.RankAllocCache)
		s.shards = append(s.shards, sh)
		if bind {
			_ = topo.Bind(a.Slice(base, size), node) // best-effort placement
		}
	}
	s.buildStealOrders()
	return s
}

// buildStealOrders precomputes, for every home shard h, the order the
// other shards are tried on exhaustion: the rest of h's node in ring order
// (cheap, same-socket memory), then the other nodes' shards — nodes in
// ring order from node(h)+1, each node's shards in ring order — so an
// allocation exhausts its own node before paying the interconnect, yet a
// full sweep still visits every shard before ErrOutOfMemory.
func (s *ShardedTLSF) buildStealOrders() {
	n := len(s.shards)
	nodes := len(s.nodeShards)
	s.stealOrder = make([][]int, n)
	s.sameNode = make([]int, n)
	for h := 0; h < n; h++ {
		home := s.shards[h].node
		order := make([]int, 0, n-1)
		local := s.nodeShards[home]
		pos := 0
		for i, idx := range local {
			if idx == h {
				pos = i
				break
			}
		}
		for d := 1; d < len(local); d++ {
			order = append(order, local[(pos+d)%len(local)])
		}
		s.sameNode[h] = len(order)
		for dn := 1; dn < nodes; dn++ {
			order = append(order, s.nodeShards[(home+dn)%nodes]...)
		}
		s.stealOrder[h] = order
	}
}

// Shards reports the effective shard count the arena was split into (after
// power-of-two rounding and the min-shard-size reduction).
func (s *ShardedTLSF) Shards() int { return len(s.shards) }

// NumNodes reports how many NUMA nodes the shards are partitioned over.
func (s *ShardedTLSF) NumNodes() int { return len(s.nodeShards) }

// NodeOfShard reports the node shard i's arena region belongs to.
func (s *ShardedTLSF) NodeOfShard(i int) int { return s.shards[i].node }

// NodeShards returns the shard indexes local to a node (possibly empty:
// with more nodes than shards, some nodes own none and their traffic is
// inherently remote).
func (s *ShardedTLSF) NodeShards(node int) []int {
	return append([]int(nil), s.nodeShards[node]...)
}

// CrossNodeSteals reports how many allocations were served by a shard on a
// different node than their home shard's.
func (s *ShardedTLSF) CrossNodeSteals() int64 { return s.crossSteals.Load() }

// HomeShard maps an affinity hint (e.g. a locality-set ID) to its home
// shard index over the whole arena, ignoring the topology.
func (s *ShardedTLSF) HomeShard(hint int) int {
	return int(uint(hint) & uint(len(s.shards)-1))
}

// HomeShardOn maps an affinity hint to a home shard among the given node's
// local shards, so a locality set created by a worker on that node keeps
// its page memory node-local. A node with no local shards (more nodes than
// shards) falls back to the global mapping — its traffic is remote from
// every shard anyway, so spreading beats pinning.
func (s *ShardedTLSF) HomeShardOn(node, hint int) int {
	if node < 0 || node >= len(s.nodeShards) || len(s.nodeShards[node]) == 0 {
		return s.HomeShard(hint)
	}
	local := s.nodeShards[node]
	return local[int(uint(hint)%uint(len(local)))]
}

// ShardOf reports which shard the allocated region at userOff lives in.
func (s *ShardedTLSF) ShardOf(userOff int64) int {
	i := (userOff - headerSize) / s.shardSize
	if i >= int64(len(s.shards)) {
		i = int64(len(s.shards)) - 1
	}
	return int(i)
}

func (s *ShardedTLSF) shardFor(userOff int64) *tlsfShard {
	return s.shards[s.ShardOf(userOff)]
}

// capFor sizes a front cache so no class can park more than 1/16 of its
// shard; classes too large to cache at least two blocks are not cached.
func (sh *tlsfShard) capFor(need int64) int {
	c := sh.size / (16 * need)
	if c > classCapMax {
		c = classCapMax
	}
	if c < 2 {
		return 0
	}
	return int(c)
}

// Alloc reserves n bytes from a round-robin home shard. Pool code uses
// AllocAffinity so a locality set's pages stay on its home shard.
func (s *ShardedTLSF) Alloc(n int64) (int64, error) {
	return s.AllocAffinity(n, int(s.rr.Add(1)))
}

// AllocAffinity reserves n bytes, preferring the home shard that the hint
// maps to: front cache first, then the home TLSF (refilling the cache in
// the same batch), then two-tier work-stealing — the home node's other
// shards before any remote node's — then a full cache drain so parked
// blocks can coalesce, with a final sweep over every shard (home node
// first again) before ErrOutOfMemory.
func (s *ShardedTLSF) AllocAffinity(n int64, hint int) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("memory: invalid allocation size %d", n)
	}
	need := blockNeed(n)
	h := s.HomeShard(hint)

	home := s.shards[h]
	if off, ok := home.popCached(need); ok {
		s.popped(home, need)
		return off, nil
	}
	if off, ok := home.allocRefill(n, need); ok {
		return s.granted(home, off), nil
	}
	for i, si := range s.stealOrder[h] {
		sh := s.shards[si]
		if off, ok := sh.popCached(need); ok {
			s.popped(sh, need)
			s.noteSteal(h, i)
			return off, nil
		}
		if off, err := sh.tlsf.Alloc(n); err == nil {
			s.noteSteal(h, i)
			return s.granted(sh, sh.base+off), nil
		}
	}
	// Retry unconditionally after the drain: even when our own drain found
	// nothing, a concurrent drain or an in-flight cache overflow may have
	// just returned blocks to a TLSF our steal loop had already passed.
	s.drainAll()
	if off, err := home.tlsf.Alloc(n); err == nil {
		return s.granted(home, home.base+off), nil
	}
	for i, si := range s.stealOrder[h] {
		sh := s.shards[si]
		if off, err := sh.tlsf.Alloc(n); err == nil {
			s.noteSteal(h, i)
			return s.granted(sh, sh.base+off), nil
		}
	}
	return 0, ErrOutOfMemory
}

// noteSteal counts a successful steal from stealOrder[h][i]: entries past
// the same-node prefix crossed the interconnect.
func (s *ShardedTLSF) noteSteal(h, i int) {
	if i >= s.sameNode[h] {
		s.crossSteals.Add(1)
	}
}

// popped books a front-cache hit in the aggregate and per-shard gauges.
func (s *ShardedTLSF) popped(sh *tlsfShard, need int64) {
	s.used.Add(need)
	sh.used.Add(need)
}

// granted records a fresh TLSF grant in the aggregate and per-shard used
// counters (the granted block can be slightly larger than requested when a
// remainder was too small to split) and returns the offset unchanged.
func (s *ShardedTLSF) granted(sh *tlsfShard, userOff int64) int64 {
	size := int64(sh.tlsf.header(userOff-sh.base) &^ 1)
	s.used.Add(size)
	sh.used.Add(size)
	return userOff
}

// popCached pops a parked block of the exact class off the front cache.
func (sh *tlsfShard) popCached(need int64) (int64, bool) {
	sh.cacheMu.Lock()
	cls := sh.classes[need]
	if cls == nil || len(cls.offs) == 0 {
		sh.cacheMu.Unlock()
		return 0, false
	}
	off := cls.offs[len(cls.offs)-1]
	cls.offs = cls.offs[:len(cls.offs)-1]
	delete(sh.cachedSet, off)
	sh.cachedBytes -= need
	sh.cacheMu.Unlock()
	return off, true
}

// allocRefill allocates from the shard's TLSF, topping up the size class's
// front cache in the same batch (one TLSF lock acquisition). Hot sizes are
// discovered here: the first cache miss for a cacheable size creates its
// class.
func (sh *tlsfShard) allocRefill(n, need int64) (int64, bool) {
	sh.cacheMu.Lock()
	cls := sh.classes[need]
	if cls == nil && len(sh.classes) < maxClassesPerShard {
		if c := sh.capFor(need); c > 0 {
			cls = &classStack{need: need, cap: c}
			sh.classes[need] = cls
		}
	}
	want := 1
	if cls != nil {
		want = cls.cap/4 + 1
		if want > 8 {
			want = 8
		}
		if room := cls.cap - len(cls.offs); want > room+1 {
			want = room + 1
		}
	}
	sh.cacheMu.Unlock()

	offs := sh.tlsf.AllocBatch(n, want, nil)
	if len(offs) == 0 {
		return 0, false
	}
	ret := sh.base + offs[0]
	if len(offs) == 1 {
		return ret, true
	}
	// Park exact-size spares in the front cache; anything oversized (an
	// unsplit remainder) or overflowing goes straight back to the TLSF.
	var freeBack []int64
	sh.cacheMu.Lock()
	for _, lo := range offs[1:] {
		if cls != nil && int64(sh.tlsf.header(lo)&^1) == need && len(cls.offs) < cls.cap {
			g := sh.base + lo
			cls.offs = append(cls.offs, g)
			sh.cachedSet[g] = struct{}{}
			sh.cachedBytes += need
		} else {
			freeBack = append(freeBack, lo)
		}
	}
	sh.cacheMu.Unlock()
	sh.tlsf.FreeBatch(freeBack)
	return ret, true
}

// Free releases a region previously returned by Alloc/AllocAffinity. Blocks
// of a cached size class park in their shard's front cache; when a cache
// overflows, the coldest half drains back to the TLSF in one batch.
func (s *ShardedTLSF) Free(userOff int64) {
	sh := s.shardFor(userOff)
	local := userOff - sh.base
	hdr := sh.tlsf.header(local)
	if hdr&1 == 1 {
		panic(fmt.Sprintf("memory: double free at offset %d", userOff))
	}
	size := int64(hdr &^ 1)

	sh.cacheMu.Lock()
	if _, dup := sh.cachedSet[userOff]; dup {
		sh.cacheMu.Unlock()
		panic(fmt.Sprintf("memory: double free at offset %d (block is parked in a front cache)", userOff))
	}
	s.used.Add(-size)
	sh.used.Add(-size)
	cls := sh.classes[size]
	if cls == nil {
		sh.cacheMu.Unlock()
		sh.tlsf.Free(local)
		return
	}
	var drain []int64
	if len(cls.offs) >= cls.cap {
		half := len(cls.offs) / 2
		if half == 0 {
			half = len(cls.offs)
		}
		drain = make([]int64, half)
		for i, g := range cls.offs[:half] {
			drain[i] = g - sh.base
			delete(sh.cachedSet, g)
		}
		n := copy(cls.offs, cls.offs[half:])
		cls.offs = cls.offs[:n]
		sh.cachedBytes -= int64(half) * size
	}
	cls.offs = append(cls.offs, userOff)
	sh.cachedSet[userOff] = struct{}{}
	sh.cachedBytes += size
	sh.cacheMu.Unlock()
	sh.tlsf.FreeBatch(drain)
}

// drainAll returns every cache-parked block to its shard's TLSF so the
// memory can coalesce and serve other sizes.
func (s *ShardedTLSF) drainAll() {
	for _, sh := range s.shards {
		sh.cacheMu.Lock()
		var offs []int64
		for _, cls := range sh.classes {
			for _, g := range cls.offs {
				offs = append(offs, g-sh.base)
				delete(sh.cachedSet, g)
			}
			sh.cachedBytes -= cls.need * int64(len(cls.offs))
			cls.offs = cls.offs[:0]
		}
		sh.cacheMu.Unlock()
		sh.tlsf.FreeBatch(offs)
	}
}

// UsableSize reports the payload capacity of an allocated region.
func (s *ShardedTLSF) UsableSize(userOff int64) int64 {
	sh := s.shardFor(userOff)
	return sh.tlsf.UsableSize(userOff - sh.base)
}

// MaxAlloc returns the largest single allocation the allocator can
// satisfy when empty: one block spanning the largest shard, rounded down
// to what mappingSearch's class round-up can actually find. CreateSet
// validates page sizes against this, since a page cannot span shards.
func (s *ShardedTLSF) MaxAlloc() int64 {
	// The last shard absorbs the division remainder, so it is the largest.
	sh := s.shards[len(s.shards)-1]
	return classFloor(sh.size&^(tlsfAlign-1)) - headerSize
}

// Used returns the bytes currently handed out to callers (including block
// headers). Blocks parked in front caches count as free: they are
// reusable by any allocation after a drain. Maintained as one atomic
// aggregate so the hot allocation path never sweeps every shard's locks
// for its peak-usage and watermark checks.
func (s *ShardedTLSF) Used() int64 { return s.used.Load() }

// FreeBytes returns the bytes not currently allocated, aggregated across
// shards; the eviction daemon's watermarks compare against this total.
func (s *ShardedTLSF) FreeBytes() int64 { return s.total - s.used.Load() }

// NodeUsed returns the bytes currently handed out per NUMA node, summed
// over each node's shards (cache-parked blocks count free, as in Used).
// Nodes with no local shards report zero.
func (s *ShardedTLSF) NodeUsed() []int64 {
	out := make([]int64, len(s.nodeShards))
	for _, sh := range s.shards {
		out[sh.node] += sh.used.Load()
	}
	return out
}

// CheckShard verifies shard i: front-cache accounting (every parked block
// allocated, exact-sized, and counted once) plus the shard TLSF's physical
// chain invariants. Safe to call concurrently with allocation traffic.
func (s *ShardedTLSF) CheckShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("memory: no shard %d", i)
	}
	sh := s.shards[i]
	sh.cacheMu.Lock()
	defer sh.cacheMu.Unlock()
	var cached int64
	entries := 0
	for need, cls := range sh.classes {
		for _, g := range cls.offs {
			if _, ok := sh.cachedSet[g]; !ok {
				return fmt.Errorf("shard %d: cached block %d missing from cached set", i, g)
			}
			hdr := sh.tlsf.header(g - sh.base)
			if hdr&1 == 1 {
				return fmt.Errorf("shard %d: cached block %d marked free", i, g)
			}
			if int64(hdr&^1) != need {
				return fmt.Errorf("shard %d: cached block %d has size %d in class %d", i, g, hdr&^1, need)
			}
			cached += need
			entries++
		}
	}
	if entries != len(sh.cachedSet) {
		return fmt.Errorf("shard %d: %d cached blocks but %d set entries", i, entries, len(sh.cachedSet))
	}
	if cached != sh.cachedBytes {
		return fmt.Errorf("shard %d: cachedBytes %d, stacks hold %d", i, sh.cachedBytes, cached)
	}
	return sh.tlsf.CheckConsistency()
}

// CheckConsistency checks every shard plus the per-shard used gauges (a
// negative gauge means a double release). The per-shard gauges and the
// aggregate are separate atomics updated in sequence, so their *sum* is
// compared only by quiesced tests, never here — this runs concurrently
// with traffic in the stress tests.
func (s *ShardedTLSF) CheckConsistency() error {
	for i := range s.shards {
		if err := s.CheckShard(i); err != nil {
			return err
		}
	}
	for i, sh := range s.shards {
		if u := sh.used.Load(); u < 0 {
			return fmt.Errorf("memory: shard %d (node %d) has negative used %d", i, sh.node, u)
		}
	}
	return nil
}
