package memory

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestShardedBasicAllocFree(t *testing.T) {
	s := NewShardedTLSF(NewArena(8<<20), 4)
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", s.Shards())
	}
	off, err := s.AllocAffinity(1000, 2)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if off%16 != 0 {
		t.Fatalf("offset %d not 16-aligned", off)
	}
	if got := s.UsableSize(off); got < 1000 {
		t.Fatalf("UsableSize = %d, want >= 1000", got)
	}
	s.Free(off)
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 0 {
		t.Fatalf("Used = %d after freeing everything", s.Used())
	}
}

// TestShardedTinyArenaStaysSingle: arenas too small to shard keep the
// seed's single-TLSF layout, so tiny test pools behave exactly as before.
func TestShardedTinyArenaStaysSingle(t *testing.T) {
	if got := NewShardedTLSF(NewArena(64<<10), 0).Shards(); got != 1 {
		t.Fatalf("64 KiB arena got %d shards, want 1", got)
	}
	if got := NewShardedTLSF(NewArena(64<<10), 8).Shards(); got != 1 {
		t.Fatalf("forced shards on tiny arena got %d, want 1", got)
	}
}

// TestShardedHomeRouting: allocations with the same hint land in the home
// shard while it has space.
func TestShardedHomeRouting(t *testing.T) {
	s := NewShardedTLSF(NewArena(4<<20), 4)
	for hint := 0; hint < 8; hint++ {
		home := s.HomeShard(hint)
		off, err := s.AllocAffinity(4096, hint)
		if err != nil {
			t.Fatal(err)
		}
		sh := s.shards[home]
		if off < sh.base || off >= sh.base+sh.size {
			t.Errorf("hint %d: offset %d outside home shard %d [%d,%d)", hint, off, home, sh.base, sh.base+sh.size)
		}
		s.Free(off)
	}
}

// TestShardedSteal: a single hot hint must be able to consume the whole
// arena, overflowing from its exhausted home shard into the others.
func TestShardedSteal(t *testing.T) {
	s := NewShardedTLSF(NewArena(4<<20), 4)
	var offs []int64
	for {
		off, err := s.AllocAffinity(64<<10, 0) // all traffic homed on shard 0
		if errors.Is(err, ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// 4 MiB arena, 64 KiB pages: stealing must get well past one shard.
	if len(offs) < 48 {
		t.Fatalf("only %d×64KiB allocated from a 4 MiB arena; stealing failed", len(offs))
	}
	for _, off := range offs {
		s.Free(off)
	}
	if s.Used() != 0 {
		t.Fatalf("leaked %d bytes", s.Used())
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedFrontCacheRecycles: a free followed by a same-size alloc on
// the same home must be served by the front cache (same block back).
func TestShardedFrontCacheRecycles(t *testing.T) {
	s := NewShardedTLSF(NewArena(8<<20), 2)
	a, err := s.AllocAffinity(4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Free(a)
	b, err := s.AllocAffinity(4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("front cache miss: freed %d, re-alloc got %d", a, b)
	}
	s.Free(b)
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedDrainServesLargeAlloc: blocks parked in front caches must be
// drained and coalesced when a large allocation needs the space.
func TestShardedDrainServesLargeAlloc(t *testing.T) {
	s := NewShardedTLSF(NewArena(2<<20), 1)
	var offs []int64
	for {
		off, err := s.AllocAffinity(4096, 0)
		if errors.Is(err, ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	for _, off := range offs {
		s.Free(off) // many of these park in the 4 KiB front cache
	}
	// Nearly the whole arena: only possible after a full drain + coalesce.
	big, err := s.Alloc(2<<20 - 64)
	if err != nil {
		t.Fatalf("large alloc after frees: %v", err)
	}
	s.Free(big)
	if s.Used() != 0 {
		t.Fatalf("leaked %d bytes", s.Used())
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMaxAllocSatisfiable: an allocation of exactly MaxAlloc bytes
// must succeed on an empty allocator for awkward arena sizes too — the
// promise CreateSet's page-size validation relies on (TLSF's class
// round-up must not make the reported maximum unreachable).
func TestShardedMaxAllocSatisfiable(t *testing.T) {
	for _, size := range []int64{1 << 20, 2<<20 + 16, 12_345_678, 100_000_000} {
		for _, shards := range []int{1, 4, 8} {
			s := NewShardedTLSF(NewArena(size), shards)
			max := s.MaxAlloc()
			off, err := s.AllocAffinity(max, 0)
			if err != nil {
				t.Errorf("arena %d, %d shards: Alloc(MaxAlloc=%d) failed: %v", size, s.Shards(), max, err)
				continue
			}
			s.Free(off)
			if s.Used() != 0 {
				t.Errorf("arena %d, %d shards: leaked %d bytes", size, s.Shards(), s.Used())
			}
		}
	}
}

func TestShardedDoubleFreePanics(t *testing.T) {
	s := NewShardedTLSF(NewArena(8<<20), 2)
	off, err := s.AllocAffinity(4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Free(off) // parks in the front cache
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free of a cached block")
		}
	}()
	s.Free(off)
}

// TestShardedRandomized is the single-goroutine property test: any
// interleaving of affinity allocs and frees leaves every shard consistent
// and recovers all memory.
func TestShardedRandomized(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewShardedTLSF(NewArena(4<<20), 4)
		type alloc struct{ off, size int64 }
		var live []alloc
		for i := 0; i < 400; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				j := rng.Intn(len(live))
				s.Free(live[j].off)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				sz := int64(1 + rng.Intn(16000))
				off, err := s.AllocAffinity(sz, rng.Intn(8))
				if err != nil {
					continue // exhausted; fine
				}
				live = append(live, alloc{off, sz})
			}
		}
		if err := s.CheckConsistency(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, l := range live {
			s.Free(l.off)
		}
		if s.Used() != 0 {
			t.Logf("seed %d: leaked %d bytes", seed, s.Used())
			return false
		}
		return s.CheckConsistency() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedConcurrentStress is the randomized concurrency property test:
// goroutines alloc/free across shards (each biased to its own home, with a
// slice of cross-shard traffic) while a checker goroutine interleaves
// CheckConsistency on every shard. Run with -race.
func TestShardedConcurrentStress(t *testing.T) {
	const workers = 8
	s := NewShardedTLSF(NewArena(16<<20), 4)
	stop := make(chan struct{})
	checkErr := make(chan error, 1)
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < s.Shards(); i++ {
				if err := s.CheckShard(i); err != nil {
					select {
					case checkErr <- err:
					default:
					}
					return
				}
			}
		}
	}()

	sizes := []int64{80, 512, 4096, 4096, 4096, 64 << 10, 100_000}
	var wg sync.WaitGroup
	workerErr := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var live []int64
			for i := 0; i < 3000; i++ {
				if len(live) > 24 || (len(live) > 0 && rng.Intn(2) == 0) {
					j := rng.Intn(len(live))
					s.Free(live[j])
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				hint := w
				if rng.Intn(8) == 0 {
					hint = rng.Intn(workers) // cross-shard traffic
				}
				off, err := s.AllocAffinity(sizes[rng.Intn(len(sizes))], hint)
				if errors.Is(err, ErrOutOfMemory) {
					continue
				}
				if err != nil {
					workerErr <- err
					return
				}
				live = append(live, off)
			}
			for _, off := range live {
				s.Free(off)
			}
			workerErr <- nil
		}(w)
	}
	wg.Wait()
	close(stop)
	checker.Wait()
	close(workerErr)
	for err := range workerErr {
		if err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-checkErr:
		t.Fatalf("mid-stress consistency check: %v", err)
	default:
	}
	if s.Used() != 0 {
		t.Fatalf("leaked %d bytes after concurrent stress", s.Used())
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkShardedTLSFAllocFree(b *testing.B) {
	s := NewShardedTLSF(NewArena(64<<20), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off, err := s.AllocAffinity(4096, 0)
		if err != nil {
			b.Fatal(err)
		}
		s.Free(off)
	}
}
