//go:build !linux

package memory

// mmapBytes reports false on platforms without the anonymous-mmap path;
// NewMmapArena degrades to an ordinary heap arena.
func mmapBytes(size int64) ([]byte, bool) { return nil, false }

func finalizeMmap(a *Arena) {}
