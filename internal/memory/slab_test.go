package memory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlabAllocWithinRegion(t *testing.T) {
	region := make([]byte, 1<<20)
	s := NewSlab(region, SlabConfig{})
	off, ok := s.Alloc(100)
	if !ok {
		t.Fatal("Alloc failed on fresh slab")
	}
	if off < 0 || off+100 > len(region) {
		t.Fatalf("chunk [%d,%d) outside region", off, off+100)
	}
	if cs := s.ChunkSize(off); cs < 100 {
		t.Fatalf("ChunkSize = %d < 100", cs)
	}
}

func TestSlabClassGeometry(t *testing.T) {
	s := NewSlab(make([]byte, 1<<20), SlabConfig{MinChunk: 64, Factor: 1.25})
	prev := 0
	for _, c := range s.classes {
		if c.chunkSize <= prev {
			t.Fatalf("class sizes not strictly increasing: %d after %d", c.chunkSize, prev)
		}
		prev = c.chunkSize
	}
	if s.classes[0].chunkSize != 64 {
		t.Fatalf("first class = %d, want 64", s.classes[0].chunkSize)
	}
	if last := s.classes[len(s.classes)-1].chunkSize; last != s.slabSize {
		t.Fatalf("last class = %d, want slab size %d", last, s.slabSize)
	}
}

func TestSlabExhaustionAndReuse(t *testing.T) {
	s := NewSlab(make([]byte, 64<<10), SlabConfig{SlabSize: 8 << 10})
	var offs []int
	for {
		off, ok := s.Alloc(1000)
		if !ok {
			break
		}
		offs = append(offs, off)
	}
	if len(offs) == 0 {
		t.Fatal("no allocations before exhaustion")
	}
	s.Free(offs[0], 1000)
	if _, ok := s.Alloc(1000); !ok {
		t.Fatal("Alloc failed right after Free of same size")
	}
}

func TestSlabOversizedRejected(t *testing.T) {
	s := NewSlab(make([]byte, 64<<10), SlabConfig{SlabSize: 8 << 10})
	if _, ok := s.Alloc(9 << 10); ok {
		t.Fatal("Alloc larger than slab size should fail")
	}
}

func TestSlabUtilizationAccounting(t *testing.T) {
	s := NewSlab(make([]byte, 1<<20), SlabConfig{})
	off, _ := s.Alloc(64) // exact class fit -> utilization 1.0
	if u := s.Utilization(); u != 1.0 {
		t.Fatalf("Utilization = %v, want 1.0 for exact fit", u)
	}
	s.Free(off, 64)
	if s.Used() != 0 {
		t.Fatalf("Used = %d after full free", s.Used())
	}
	if u := s.Utilization(); u != 1.0 {
		t.Fatalf("empty Utilization = %v, want 1.0", u)
	}
}

// Property: chunks handed out concurrently-live never overlap and always
// lie within the region.
func TestSlabNoOverlap(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		region := make([]byte, 256<<10)
		s := NewSlab(region, SlabConfig{SlabSize: 16 << 10})
		type chunk struct{ off, n int }
		var live []chunk
		occupied := make(map[int]bool) // chunk start offsets
		for i := 0; i < 400; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				delete(occupied, live[j].off)
				s.Free(live[j].off, live[j].n)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			n := 1 + rng.Intn(4000)
			off, ok := s.Alloc(n)
			if !ok {
				continue
			}
			if off < 0 || off+n > len(region) {
				return false
			}
			if occupied[off] {
				return false // same chunk handed out twice
			}
			occupied[off] = true
			live = append(live, chunk{off, n})
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The paper attributes the Pangea hashmap's late spill point to the slab
// allocator's memory utilization; verify utilization stays high for the
// small-string workload the hash service sees.
func TestSlabUtilizationSmallObjects(t *testing.T) {
	s := NewSlab(make([]byte, 1<<20), SlabConfig{})
	for i := 0; i < 2000; i++ {
		if _, ok := s.Alloc(60 + i%30); !ok {
			break
		}
	}
	if u := s.Utilization(); u < 0.70 {
		t.Fatalf("Utilization = %.2f, want >= 0.70 for small objects", u)
	}
}
