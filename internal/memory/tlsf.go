package memory

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"pangea/internal/locking"
)

// TLSF is a two-level segregated fit allocator over an Arena. Pangea uses it
// as the default pool-based allocator of the unified buffer pool because it
// is space-efficient when allocating variable-sized pages from one shared
// memory region (paper §5). All bookkeeping (boundary tags and free-list
// links) lives inside the arena itself, exactly as in an mmap'd shared
// memory segment.
//
// Block layout (offsets relative to block start o):
//
//	[o+0,  o+8):  size|flags — total block size including header; bit0 = free
//	[o+8,  o+16): offset of previous physical block (nullOffset if first)
//	[o+16, o+24): next free block in class list (free blocks only)
//	[o+24, o+32): previous free block in class list (free blocks only)
type TLSF struct {
	mu       locking.Mutex
	arena    *Arena
	freeHead [64][slCount]int64 // head offset of each (fl, sl) free list, -1 empty
	flBitmap uint64
	slBitmap [64]uint32
	used     int64 // bytes handed out to callers, including headers
}

const (
	tlsfAlign  = 16
	headerSize = 16
	minBlock   = 32 // header + two free-list links
	sli        = 5  // log2 of second-level subdivisions
	slCount    = 1 << sli
	nullOffset = int64(-1)
)

// ErrOutOfMemory is returned when no free block can satisfy an allocation.
var ErrOutOfMemory = errors.New("memory: out of buffer pool memory")

// NewTLSF initialises a TLSF allocator owning the whole arena.
func NewTLSF(a *Arena) *TLSF {
	t := &TLSF{arena: a}
	t.mu.Init(locking.RankAllocTLSF)
	for fl := range t.freeHead {
		for sl := range t.freeHead[fl] {
			t.freeHead[fl][sl] = nullOffset
		}
	}
	total := a.Size() &^ (tlsfAlign - 1)
	if total < minBlock {
		panic("memory: arena too small for TLSF")
	}
	t.setSize(0, total, true)
	t.setPrevPhys(0, nullOffset)
	t.insert(0, total)
	return t
}

func align16(n int64) int64 { return (n + tlsfAlign - 1) &^ (tlsfAlign - 1) }

// --- raw field accessors -------------------------------------------------

func (t *TLSF) u64(off int64) uint64 {
	return binary.LittleEndian.Uint64(t.arena.Slice(off, 8))
}

func (t *TLSF) putU64(off int64, v uint64) {
	binary.LittleEndian.PutUint64(t.arena.Slice(off, 8), v)
}

func (t *TLSF) blockSize(o int64) int64 { return int64(t.u64(o) &^ 1) }
func (t *TLSF) isFree(o int64) bool     { return t.u64(o)&1 == 1 }

func (t *TLSF) setSize(o, size int64, free bool) {
	v := uint64(size)
	if free {
		v |= 1
	}
	t.putU64(o, v)
}

func (t *TLSF) prevPhys(o int64) int64 { return int64(t.u64(o + 8)) }

func (t *TLSF) setPrevPhys(o, p int64) { t.putU64(o+8, uint64(p)) }

func (t *TLSF) nextFree(o int64) int64 { return int64(t.u64(o + 16)) }
func (t *TLSF) prevFree(o int64) int64 { return int64(t.u64(o + 24)) }
func (t *TLSF) setNextFree(o, v int64) { t.putU64(o+16, uint64(v)) }
func (t *TLSF) setPrevFree(o, v int64) { t.putU64(o+24, uint64(v)) }
func (t *TLSF) nextPhys(o int64) int64 { return o + t.blockSize(o) }
func (t *TLSF) arenaLimit() int64      { return t.arena.Size() &^ (tlsfAlign - 1) }

// --- class mapping --------------------------------------------------------

// mappingInsert computes the (fl, sl) class that block size belongs to.
func mappingInsert(size int64) (int, int) {
	fl := bits.Len64(uint64(size)) - 1
	sl := int((uint64(size) >> (uint(fl) - sli)) ^ (1 << sli))
	return fl, sl
}

// mappingSearch rounds the request up so the found class is guaranteed to
// hold blocks that fit, then maps it.
func mappingSearch(size int64) (int, int) {
	fl := bits.Len64(uint64(size)) - 1
	size += (1 << (uint(fl) - sli)) - 1
	return mappingInsert(size)
}

// classFloor rounds size down to its size class's lower bound: the largest
// request that mappingSearch still resolves to (or below) the class a free
// block of this size is inserted into. A lone free block of `size` bytes
// can satisfy any request needing at most classFloor(size) total bytes.
func classFloor(size int64) int64 {
	fl := bits.Len64(uint64(size)) - 1
	if fl <= sli {
		return size // classes this small are exact
	}
	g := int64(1) << (uint(fl) - sli)
	return size &^ (g - 1)
}

// --- free-list maintenance -------------------------------------------------

func (t *TLSF) insert(o, size int64) {
	fl, sl := mappingInsert(size)
	head := t.freeHead[fl][sl]
	t.setNextFree(o, head)
	t.setPrevFree(o, nullOffset)
	if head != nullOffset {
		t.setPrevFree(head, o)
	}
	t.freeHead[fl][sl] = o
	t.flBitmap |= 1 << uint(fl)
	t.slBitmap[fl] |= 1 << uint(sl)
}

func (t *TLSF) remove(o int64) {
	fl, sl := mappingInsert(t.blockSize(o))
	next, prev := t.nextFree(o), t.prevFree(o)
	if prev != nullOffset {
		t.setNextFree(prev, next)
	} else {
		t.freeHead[fl][sl] = next
	}
	if next != nullOffset {
		t.setPrevFree(next, prev)
	}
	if t.freeHead[fl][sl] == nullOffset {
		t.slBitmap[fl] &^= 1 << uint(sl)
		if t.slBitmap[fl] == 0 {
			t.flBitmap &^= 1 << uint(fl)
		}
	}
}

// findSuitable locates a non-empty class ≥ (fl, sl); it returns ok=false
// when the allocator is exhausted for this size.
func (t *TLSF) findSuitable(fl, sl int) (int, int, bool) {
	slMap := t.slBitmap[fl] & (^uint32(0) << uint(sl))
	if slMap == 0 {
		flMap := t.flBitmap & (^uint64(0) << uint(fl+1))
		if flMap == 0 {
			return 0, 0, false
		}
		fl = bits.TrailingZeros64(flMap)
		slMap = t.slBitmap[fl]
	}
	return fl, bits.TrailingZeros32(slMap), true
}

// --- public API -------------------------------------------------------------

// blockNeed returns the total block size (header included) that a request
// of n payload bytes occupies. Exported within the package so the sharded
// allocator can key its front caches by exact block size.
func blockNeed(n int64) int64 {
	need := align16(n) + headerSize
	if need < minBlock {
		need = minBlock
	}
	return need
}

// Alloc reserves n bytes and returns the offset of the usable region within
// the arena. The region is 16-byte aligned.
func (t *TLSF) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("memory: invalid allocation size %d", n)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	off, ok := t.allocLocked(blockNeed(n))
	if !ok {
		return 0, ErrOutOfMemory
	}
	return off, nil
}

// AllocBatch reserves up to max blocks of n bytes each under a single lock
// acquisition, appending their user offsets to dst. It stops early when the
// allocator is exhausted; callers check len(result) for how many they got.
func (t *TLSF) AllocBatch(n int64, max int, dst []int64) []int64 {
	if n <= 0 || max <= 0 {
		return dst
	}
	need := blockNeed(n)
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < max; i++ {
		off, ok := t.allocLocked(need)
		if !ok {
			break
		}
		dst = append(dst, off)
	}
	return dst
}

// allocLocked carves one block of exactly need total bytes (header included)
// out of the free lists. Caller holds t.mu.
func (t *TLSF) allocLocked(need int64) (int64, bool) {
	fl, sl := mappingSearch(need)
	fl, sl, ok := t.findSuitable(fl, sl)
	if !ok {
		return 0, false
	}
	o := t.freeHead[fl][sl]
	t.remove(o)
	size := t.blockSize(o)

	if rem := size - need; rem >= minBlock {
		remOff := o + need
		t.setSize(remOff, rem, true)
		t.setPrevPhys(remOff, o)
		if nn := remOff + rem; nn < t.arenaLimit() {
			t.setPrevPhys(nn, remOff)
		}
		t.insert(remOff, rem)
		size = need
	}
	t.setSize(o, size, false)
	t.used += size
	return o + headerSize, true
}

// Free releases a region previously returned by Alloc, coalescing with
// physically adjacent free blocks.
func (t *TLSF) Free(userOff int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.freeLocked(userOff)
}

// FreeBatch releases every offset under a single lock acquisition; the
// sharded allocator drains front caches through it.
func (t *TLSF) FreeBatch(offs []int64) {
	if len(offs) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, off := range offs {
		t.freeLocked(off)
	}
}

// header returns the raw size|flags word of an allocated block without
// taking the allocator lock. Safe only for the block's current owner: TLSF
// never writes the first header word of an allocated block (coalescing
// touches only its prev-phys word).
func (t *TLSF) header(userOff int64) uint64 { return t.u64(userOff - headerSize) }

func (t *TLSF) freeLocked(userOff int64) {
	o := userOff - headerSize
	if t.isFree(o) {
		panic(fmt.Sprintf("memory: double free at offset %d", userOff))
	}
	size := t.blockSize(o)
	t.used -= size

	// Coalesce with the next physical block.
	if nn := o + size; nn < t.arenaLimit() && t.isFree(nn) {
		t.remove(nn)
		size += t.blockSize(nn)
	}
	// Coalesce with the previous physical block.
	if p := t.prevPhys(o); p != nullOffset && t.isFree(p) {
		t.remove(p)
		size += o - p
		o = p
	}
	t.setSize(o, size, true)
	if nn := o + size; nn < t.arenaLimit() {
		t.setPrevPhys(nn, o)
	}
	t.insert(o, size)
}

// UsableSize reports the payload capacity of an allocated region.
func (t *TLSF) UsableSize(userOff int64) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.blockSize(userOff-headerSize) - headerSize
}

// Used returns the number of bytes currently allocated, including block
// headers; Free bytes are the remainder of the arena.
func (t *TLSF) Used() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used
}

// FreeBytes returns the bytes not currently allocated.
func (t *TLSF) FreeBytes() int64 { return t.arenaLimit() - t.Used() }

// CheckConsistency walks the physical block chain and verifies boundary
// tags, alignment and coalescing invariants. It is used by tests and returns
// the first violation found.
func (t *TLSF) CheckConsistency() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	limit := t.arenaLimit()
	prev := nullOffset
	prevWasFree := false
	for o := int64(0); o < limit; {
		size := t.blockSize(o)
		if size < minBlock || size%tlsfAlign != 0 {
			return fmt.Errorf("block at %d has bad size %d", o, size)
		}
		if got := t.prevPhys(o); got != prev {
			return fmt.Errorf("block at %d has prevPhys %d, want %d", o, got, prev)
		}
		free := t.isFree(o)
		if free && prevWasFree {
			return fmt.Errorf("adjacent free blocks at %d and %d not coalesced", prev, o)
		}
		prev, prevWasFree = o, free
		o += size
	}
	return nil
}
