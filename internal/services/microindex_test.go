package services

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"pangea/internal/core"
)

// miSpec indexes the tag column (col 1) of the shared colRec shape.
func miSpec() MicroindexSpec {
	return MicroindexSpec{Schema: zmSchema(), Cols: []int{1}}
}

// miTruth rescans the set and returns, per tag value, the exact set of
// pages holding at least one row with that value.
func miTruth(t *testing.T, set *core.LocalitySet) map[uint64]map[int64]bool {
	t.Helper()
	truth := make(map[uint64]map[int64]bool)
	for _, num := range set.PageNums() {
		p, err := set.Pin(num)
		if err != nil {
			t.Fatal(err)
		}
		err = WalkPage(p.Bytes(), func(rec []byte) error {
			v := uint64(binary.LittleEndian.Uint16(rec[4:6]))
			if truth[v] == nil {
				truth[v] = make(map[int64]bool)
			}
			truth[v][num] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := set.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}
	return truth
}

// miCheckExact verifies the index's lookups against a rescan of the set's
// actual bytes: for every present value the posting list is exactly the
// pages holding it, and absent in-domain values return no candidates. The
// index is authoritative, so this is equality, not containment.
func miCheckExact(t *testing.T, set *core.LocalitySet, m *Microindex) {
	t.Helper()
	truth := miTruth(t, set)
	for v := uint64(0); v < 256; v++ {
		pages, ok := m.LookupPages(1, v)
		if !ok {
			t.Fatalf("indexed column did not answer value %d", v)
		}
		want := truth[v]
		if len(pages) != len(want) {
			t.Fatalf("value %d: lookup returned %d pages, set holds it on %d", v, len(pages), len(want))
		}
		for i, num := range pages {
			if !want[num] {
				t.Errorf("value %d: lookup includes page %d which does not hold it", v, num)
			}
			if i > 0 && pages[i-1] >= num {
				t.Errorf("value %d: lookup pages not ascending: %v", v, pages)
			}
		}
	}
	if _, ok := m.LookupPages(0, 1); ok {
		t.Error("unindexed column answered a lookup")
	}
}

// TestMicroindexIncrementalMatchesRebuild: the append-time index (row and
// columnar writer hooks alike) carries exact postings, identical to what a
// from-scratch rebuild of the same set derives.
func TestMicroindexIncrementalMatchesRebuild(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		name := map[bool]string{false: "row", true: "columnar"}[columnar]
		t.Run(name, func(t *testing.T) {
			bp := newPool(t, 1<<20)
			spec := core.SetSpec{Name: "s", PageSize: 512}
			if columnar {
				spec.Layout = core.LayoutColumnar
				spec.Columns = colWidths
			}
			set, err := bp.CreateSet(spec)
			if err != nil {
				t.Fatal(err)
			}
			w := NewSeqWriter(set)
			m, err := AttachMicroindex(w, miSpec())
			if err != nil {
				t.Fatal(err)
			}
			const n = 400
			for i := 0; i < n; i++ {
				if err := w.Add(colRec(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if !m.Covers(set.NumPages()) {
				t.Fatalf("index covers %d of %d pages", m.NumPages(), set.NumPages())
			}
			miCheckExact(t, set, m)

			// A rebuild from the pages derives the same postings.
			set.SetSideIndex(MicroindexTag, nil)
			rebuilt, err := EnsureMicroindex(set, miSpec())
			if err != nil {
				t.Fatal(err)
			}
			if rebuilt == m {
				t.Fatal("EnsureMicroindex returned the detached index")
			}
			miCheckExact(t, set, rebuilt)
		})
	}
}

// TestMicroindexPersistRoundTrip: Marshal/Load round-trips every posting; a
// stale side object (fewer pages than the set) is rejected by coverage and
// healed by rebuild; a reshaped spec is rejected by the header check.
func TestMicroindexPersistRoundTrip(t *testing.T) {
	bp := newPool(t, 1<<20)
	set := mkColSet(t, bp, "c", 512)
	w := NewSeqWriter(set)
	m, err := AttachMicroindex(w, miSpec())
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := w.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(set); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadMicroindex(m.Marshal(), miSpec())
	if err != nil {
		t.Fatal(err)
	}
	miCheckExact(t, set, loaded)
	set.SetSideIndex(MicroindexTag, nil)
	ensured, err := EnsureMicroindex(set, miSpec())
	if err != nil {
		t.Fatal(err)
	}
	miCheckExact(t, set, ensured)

	// Reshaped spec: the persisted object no longer matches, Ensure rebuilds.
	set.SetSideIndex(MicroindexTag, nil)
	reshaped := MicroindexSpec{Schema: zmSchema(), Cols: []int{0}}
	if _, err := LoadMicroindex(m.Marshal(), reshaped); err == nil {
		t.Error("loading under a reshaped spec must error")
	}
	if _, err := EnsureMicroindex(set, reshaped); err != nil {
		t.Fatalf("Ensure under reshaped spec: %v", err)
	}

	// Stale: persist, append more pages, then Ensure must rebuild to cover.
	set2 := mkColSet(t, bp, "c2", 512)
	w2 := NewSeqWriter(set2)
	m2, err := AttachMicroindex(w2, miSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := w2.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Save(set2); err != nil {
		t.Fatal(err)
	}
	w2 = NewSeqWriter(set2)
	for i := 50; i < 300; i++ {
		if err := w2.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	set2.SetSideIndex(MicroindexTag, nil)
	healed, err := EnsureMicroindex(set2, miSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !healed.Covers(set2.NumPages()) {
		t.Errorf("healed index covers %d of %d pages", healed.NumPages(), set2.NumPages())
	}
	miCheckExact(t, set2, healed)
}

// TestMicroindexInvalidPagesAlwaysCandidates: a page the index could not
// parse (short record) stays covered but joins every lookup result — an
// authoritative index must never vouch for a page it could not read. The
// property survives a marshal/load round trip.
func TestMicroindexInvalidPagesAlwaysCandidates(t *testing.T) {
	m, err := NewMicroindex(miSpec())
	if err != nil {
		t.Fatal(err)
	}
	m.NoteAppend(0, colRec(1)) // tag 1%251 = 1
	m.NoteAppend(1, colRec(2))
	m.NoteAppend(1, []byte{9}) // short: page 1 unparseable
	m.NoteAppend(2, colRec(3))
	if !m.Covers(3) {
		t.Fatal("invalid page lost coverage")
	}
	for _, idx := range []*Microindex{m, mustReload(t, m)} {
		pages, ok := idx.LookupPages(1, 1)
		if !ok || len(pages) != 2 || pages[0] != 0 || pages[1] != 1 {
			t.Fatalf("lookup(tag=1) = %v ok=%v, want [0 1] (hit page + invalid page)", pages, ok)
		}
		// Even a value nothing holds must surface the invalid page.
		pages, _ = idx.LookupPages(1, 200)
		if len(pages) != 1 || pages[0] != 1 {
			t.Fatalf("lookup(absent tag) = %v, want just the invalid page [1]", pages)
		}
	}
}

func mustReload(t *testing.T, m *Microindex) *Microindex {
	t.Helper()
	loaded, err := LoadMicroindex(m.Marshal(), miSpec())
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestEnsureMicroindexPropagatesReadFault: a genuine I/O failure reading
// the persisted side object must surface, not silently trigger a rebuild
// that overwrites an object which may be intact on disk. (Before the heal
// discipline distinguished error classes, any read error fell through to
// rebuild-and-save — a warm set would quietly paper over a failing drive.)
func TestEnsureMicroindexPropagatesReadFault(t *testing.T) {
	bp := newPool(t, 1<<20)
	set := mkColSet(t, bp, "c", 512)
	w := NewSeqWriter(set)
	m, err := AttachMicroindex(w, miSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(set); err != nil {
		t.Fatal(err)
	}
	set.SetSideIndex(MicroindexTag, nil)

	fault := errors.New("injected drive fault")
	bp.Array().Disk(0).SetReadFault(func() error { return fault })
	_, err = EnsureMicroindex(set, miSpec())
	bp.Array().Disk(0).SetReadFault(nil)
	if !errors.Is(err, fault) {
		t.Fatalf("EnsureMicroindex with a failing drive = %v, want the injected fault", err)
	}
	if got := bp.Stats().SideObjectRebuilds.Load(); got != 0 {
		t.Errorf("read fault counted %d side-object rebuilds, want 0", got)
	}
	// With the drive healthy again the persisted object loads as-is.
	healed, err := EnsureMicroindex(set, miSpec())
	if err != nil {
		t.Fatal(err)
	}
	miCheckExact(t, set, healed)
}

// TestEnsureMicroindexHealsCorruptObject: an undecodable persisted object
// rebuilds (bumping the side-object rebuild counter) instead of erroring,
// and the healed object is exact.
func TestEnsureMicroindexHealsCorruptObject(t *testing.T) {
	bp := newPool(t, 1<<20)
	set := mkColSet(t, bp, "c", 512)
	w := NewSeqWriter(set)
	m, err := AttachMicroindex(w, miSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(set); err != nil {
		t.Fatal(err)
	}

	// Undecodable payload inside a well-formed pfs frame.
	if err := set.WriteSideObject(MicroindexTag, []byte("not a microindex")); err != nil {
		t.Fatal(err)
	}
	set.SetSideIndex(MicroindexTag, nil)
	before := bp.Stats().SideObjectRebuilds.Load()
	healed, err := EnsureMicroindex(set, miSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.Stats().SideObjectRebuilds.Load(); got != before+1 {
		t.Errorf("undecodable object counted %d rebuilds, want %d", got, before+1)
	}
	miCheckExact(t, set, healed)

	// A torn pfs frame (crash mid-write) heals the same way.
	f, err := bp.Array().Disk(0).OpenFile(fmt.Sprintf("c.%d.%s", set.ID(), MicroindexTag))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	set.SetSideIndex(MicroindexTag, nil)
	before = bp.Stats().SideObjectRebuilds.Load()
	healed, err = EnsureMicroindex(set, miSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.Stats().SideObjectRebuilds.Load(); got != before+1 {
		t.Errorf("torn object counted %d rebuilds, want %d", got, before+1)
	}
	miCheckExact(t, set, healed)
}

// TestDualHooksBothFire is the regression test for the hook-composability
// fix: attaching a zone map and a microindex to one writer must chain the
// seal/append hooks, not overwrite them — before ChainOnSeal/ChainOnAppend,
// the second Attach silently disconnected the first. Both side objects must
// come out complete and exact, for both layouts, alongside a caller's own
// pre-existing hook.
func TestDualHooksBothFire(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		name := map[bool]string{false: "row", true: "columnar"}[columnar]
		t.Run(name, func(t *testing.T) {
			bp := newPool(t, 1<<20)
			spec := core.SetSpec{Name: "s", PageSize: 512}
			if columnar {
				spec.Layout = core.LayoutColumnar
				spec.Columns = colWidths
			}
			set, err := bp.CreateSet(spec)
			if err != nil {
				t.Fatal(err)
			}
			w := NewSeqWriter(set)
			// A hook the caller installed before either Attach must survive.
			callerSaw := 0
			if columnar {
				w.cw.OnSeal = func(int64, *ColumnarPage) { callerSaw++ }
			} else {
				w.OnAppend = func(int64, []byte) { callerSaw++ }
			}
			z, err := AttachZoneMap(w, ZoneMapSpec{Schema: zmSchema(), BloomCols: []int{1}})
			if err != nil {
				t.Fatal(err)
			}
			m, err := AttachMicroindex(w, miSpec())
			if err != nil {
				t.Fatal(err)
			}
			const n = 400
			for i := 0; i < n; i++ {
				if err := w.Add(colRec(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			np := set.NumPages()
			if callerSaw == 0 {
				t.Error("attaching side objects disconnected the caller's own hook")
			}
			if !z.Covers(np) {
				t.Errorf("zone map covers %d of %d pages — its hook was displaced", int64(z.NumPages()), np)
			}
			if !m.Covers(np) {
				t.Errorf("microindex covers %d of %d pages — its hook was displaced", int64(m.NumPages()), np)
			}
			zmCheckRanges(t, set, z)
			miCheckExact(t, set, m)
			// Both registered under their own keys.
			if set.SideIndex(ZoneMapTag) != any(z) || set.SideIndex(MicroindexTag) != any(m) {
				t.Error("side-index registry lost one of the two attached objects")
			}
		})
	}
}
