package services

import (
	"encoding/binary"
	"fmt"

	"pangea/internal/core"
)

// Columnar pages store fixed-width records transposed into per-column
// segments, so a scan touches only the bytes of the columns it reads and a
// predicate runs as a tight loop over one contiguous vector (the batch
// operator API in internal/query is built on these views).
//
// Page layout (all integers little-endian):
//
//	[0:4)          u32 magic (columnarMagic, > 2^31 so it can never collide
//	               with a row page's regionSize, which is bounded by the
//	               page size)
//	[4:8)          u32 number of columns
//	[8:12)         u32 number of rows stored
//	[12:16)        u32 row capacity
//	[16:16+4*c)    u32 width of each column
//	[header:)      column segments, column j occupying capacity*width_j
//	               bytes starting at header + Σ_{k<j} capacity*width_k;
//	               trailing bytes that do not fit a whole row are unused
//
// The row count is kept current on every append, so a page is always
// self-describing: spill, reload, and the row-compatibility path (WalkPage)
// need no out-of-band state.

const (
	columnarMagic       = 0xC07C07C1
	columnarFixedHeader = 16
)

// ColumnSpec describes one fixed-width column of a columnar set: its name,
// byte width, and byte offset within the row-format record that Add
// transposes. Offsets normally follow from the widths (see MakeSchema).
type ColumnSpec struct {
	Name   string
	Width  int
	Offset int
}

// MakeSchema builds a schema descriptor from (name, width) pairs, assigning
// each column the offset its predecessors' widths imply — the layout of a
// packed fixed-width record.
func MakeSchema(names []string, widths []int) []ColumnSpec {
	if len(names) != len(widths) {
		panic(fmt.Sprintf("services: %d names for %d widths", len(names), len(widths)))
	}
	specs := make([]ColumnSpec, len(names))
	off := 0
	for i := range names {
		specs[i] = ColumnSpec{Name: names[i], Width: widths[i], Offset: off}
		off += widths[i]
	}
	return specs
}

// SchemaWidths projects a schema descriptor to the per-column widths that
// core.SetSpec.Columns wants.
func SchemaWidths(schema []ColumnSpec) []int {
	widths := make([]int, len(schema))
	for i, c := range schema {
		widths[i] = c.Width
	}
	return widths
}

// columnarHeaderSize is the page header size for ncols columns.
func columnarHeaderSize(ncols int) int { return columnarFixedHeader + 4*ncols }

// IsColumnarPage reports whether buf holds a columnar page. Row pages can
// never match: their leading u32 is a region size bounded by the page size,
// while the magic exceeds 2^31.
func IsColumnarPage(buf []byte) bool {
	return len(buf) >= columnarFixedHeader &&
		binary.LittleEndian.Uint32(buf[0:4]) == columnarMagic
}

// ColumnarPage is a decoded view over one columnar page buffer. Col returns
// zero-copy slices of the underlying (pinned) page: they alias the buffer
// pool's arena and are invalid once the page is released.
type ColumnarPage struct {
	buf     []byte
	widths  []int
	offs    []int // per-column segment start within buf
	nrows   int
	cap     int
	rowSize int
}

// OpenColumnarPage parses buf as a columnar page.
func OpenColumnarPage(buf []byte) (*ColumnarPage, error) {
	p := &ColumnarPage{}
	if err := p.Reset(buf); err != nil {
		return nil, err
	}
	return p, nil
}

// Reset re-points the view at a new page buffer, reusing the view's width
// and offset slices when the column shape is unchanged — scan loops parse
// one page per iteration without allocating.
func (p *ColumnarPage) Reset(buf []byte) error {
	if !IsColumnarPage(buf) {
		return fmt.Errorf("services: not a columnar page (%d bytes)", len(buf))
	}
	le := binary.LittleEndian
	ncols := int(le.Uint32(buf[4:8]))
	nrows := int(le.Uint32(buf[8:12]))
	capacity := int(le.Uint32(buf[12:16]))
	hdr := columnarHeaderSize(ncols)
	if ncols <= 0 || len(buf) < hdr {
		return fmt.Errorf("services: columnar page header truncated (%d cols, %d bytes)", ncols, len(buf))
	}
	if cap(p.widths) < ncols {
		p.widths = make([]int, ncols)
		p.offs = make([]int, ncols)
	}
	p.widths, p.offs = p.widths[:ncols], p.offs[:ncols]
	rowSize, off := 0, hdr
	for c := 0; c < ncols; c++ {
		w := int(le.Uint32(buf[columnarFixedHeader+4*c : columnarFixedHeader+4*c+4]))
		if w <= 0 {
			return fmt.Errorf("services: columnar page column %d has width %d", c, w)
		}
		// capacity and w come off disk as full u32s, so their product can
		// wrap even int64 (it is < 2^64, so a wrap always lands negative);
		// bound each segment against the bytes that actually remain before
		// committing the offset.
		seg := int64(capacity) * int64(w)
		if seg < 0 || seg > int64(len(buf))-int64(off) {
			return fmt.Errorf("services: corrupt columnar page: column %d segment of %d*%d bytes at %d exceeds %d-byte page",
				c, capacity, w, off, len(buf))
		}
		p.widths[c], p.offs[c] = w, off
		rowSize += w
		off += int(seg)
	}
	if nrows > capacity {
		return fmt.Errorf("services: corrupt columnar page: %d rows in a %d-row page", nrows, capacity)
	}
	p.buf, p.nrows, p.cap, p.rowSize = buf, nrows, capacity, rowSize
	return nil
}

// NumRows returns the number of rows stored in the page.
func (p *ColumnarPage) NumRows() int { return p.nrows }

// NumCols returns the number of columns.
func (p *ColumnarPage) NumCols() int { return len(p.widths) }

// Width returns the byte width of column c.
func (p *ColumnarPage) Width(c int) int { return p.widths[c] }

// RowSize returns the byte size of one reconstructed row record.
func (p *ColumnarPage) RowSize() int { return p.rowSize }

// Col returns the stored values of column c as one contiguous slice of
// NumRows()*Width(c) bytes. The slice aliases the pinned page buffer.
func (p *ColumnarPage) Col(c int) []byte {
	return p.buf[p.offs[c] : p.offs[c]+p.nrows*p.widths[c]]
}

// AppendRow materializes row i back into record form (the concatenation of
// its column values) by appending to dst, and returns the extended slice.
// This is the late-materialization sink: sinks that need whole rows call it
// only for rows that survived selection.
func (p *ColumnarPage) AppendRow(dst []byte, i int) []byte {
	for c, w := range p.widths {
		off := p.offs[c] + i*w
		dst = append(dst, p.buf[off:off+w]...)
	}
	return dst
}

// initColumnarPage stamps the header of a fresh columnar page buffer.
func initColumnarPage(buf []byte, widths []int, capacity int) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:4], columnarMagic)
	le.PutUint32(buf[4:8], uint32(len(widths)))
	le.PutUint32(buf[8:12], 0)
	le.PutUint32(buf[12:16], uint32(capacity))
	for c, w := range widths {
		le.PutUint32(buf[columnarFixedHeader+4*c:columnarFixedHeader+4*c+4], uint32(w))
	}
}

// ColumnarWriter is the sequential write service for columnar sets: Add
// transposes each fixed-width record into the per-column segments of the
// current page and pins a fresh page when it fills. Like SeqWriter, one
// writer per thread. NewSeqWriter constructs one automatically for sets
// declared LayoutColumnar, so callers of the row write API (WriteAll, the
// cluster's AddRecords path, query.Materialize) transparently produce
// columnar pages.
type ColumnarWriter struct {
	set      *core.LocalitySet
	widths   []int
	rowSize  int
	capacity int // rows per page
	page     *core.Page
	segs     [][]byte // column segments of the current page
	view     ColumnarPage
	n        int   // rows in the current page
	total    int64 // records written

	// OnSeal, when set, is called with each page just before it is
	// unpinned, while its bytes are still valid — the hook the zone-map
	// roadmap item plugs per-column min/max extraction into.
	OnSeal func(pageNum int64, p *ColumnarPage)
}

// NewColumnarWriter attaches a columnar sequential allocator to the set,
// which must have been created with LayoutColumnar.
func NewColumnarWriter(set *core.LocalitySet) (*ColumnarWriter, error) {
	if set.Layout() != core.LayoutColumnar {
		return nil, fmt.Errorf("services: set %q has %s layout, want columnar", set.Name(), set.Layout())
	}
	set.SetWriting(core.SequentialWrite)
	set.SetCurrentOp(core.OpWrite)
	return newColumnarWriter(set), nil
}

// newColumnarWriter builds the writer without stamping attributes; the
// set's columnar invariants (widths present, one row fits) were validated
// by core.CreateSet.
func newColumnarWriter(set *core.LocalitySet) *ColumnarWriter {
	widths := set.ColumnWidths()
	rowSize := 0
	for _, w := range widths {
		rowSize += w
	}
	return &ColumnarWriter{
		set:      set,
		widths:   widths,
		rowSize:  rowSize,
		capacity: (int(set.PageSize()) - columnarHeaderSize(len(widths))) / rowSize,
		segs:     make([][]byte, len(widths)),
	}
}

// Add appends one record, which must be exactly the schema's row size.
func (w *ColumnarWriter) Add(rec []byte) error {
	if len(rec) != w.rowSize {
		return fmt.Errorf("services: record of %d bytes does not match the %d-byte columnar row", len(rec), w.rowSize)
	}
	if w.page == nil {
		p, err := w.set.NewPage()
		if err != nil {
			return err
		}
		buf := p.Bytes()
		initColumnarPage(buf, w.widths, w.capacity)
		off := columnarHeaderSize(len(w.widths))
		for c, cw := range w.widths {
			w.segs[c] = buf[off : off+w.capacity*cw]
			off += w.capacity * cw
		}
		w.page, w.n = p, 0
	}
	off := 0
	for c, cw := range w.widths {
		copy(w.segs[c][w.n*cw:], rec[off:off+cw])
		off += cw
	}
	w.n++
	w.total++
	binary.LittleEndian.PutUint32(w.page.Bytes()[8:12], uint32(w.n))
	if w.n == w.capacity {
		return w.seal()
	}
	return nil
}

// ChainOnSeal adds fn to the writer's seal hook, running after any hook
// already attached — so side objects that feed off sealed pages (zone map,
// microindex) compose on one writer instead of silently displacing each
// other.
func (w *ColumnarWriter) ChainOnSeal(fn func(pageNum int64, p *ColumnarPage)) {
	if prev := w.OnSeal; prev != nil {
		w.OnSeal = func(num int64, p *ColumnarPage) {
			prev(num, p)
			fn(num, p)
		}
	} else {
		w.OnSeal = fn
	}
}

// seal finishes the current page: runs the OnSeal hook while the page is
// still pinned, then unpins it dirty.
func (w *ColumnarWriter) seal() error {
	if w.page == nil {
		return nil
	}
	if w.OnSeal != nil {
		if err := w.view.Reset(w.page.Bytes()); err != nil {
			return err
		}
		w.OnSeal(w.page.Num(), &w.view)
	}
	err := w.set.Unpin(w.page, true)
	w.page = nil
	for c := range w.segs {
		w.segs[c] = nil
	}
	return err
}

// Count returns the number of records written so far.
func (w *ColumnarWriter) Count() int64 { return w.total }

// RowSize returns the byte size of one record under the writer's schema.
func (w *ColumnarWriter) RowSize() int { return w.rowSize }

// Close seals the partial page and clears the set's current operation.
func (w *ColumnarWriter) Close() error {
	err := w.seal()
	w.set.SetCurrentOp(core.OpNone)
	return err
}

// walkColumnarPage adapts a columnar page to the record-at-a-time walk:
// each row is materialized into a reused scratch buffer and handed to fn.
// This is the compatibility path that lets every row-API consumer (joins,
// FetchSet, replica builds) read columnar sets unchanged; rec is only valid
// for the duration of the callback, the same contract as row pages.
func walkColumnarPage(buf []byte, fn func(rec []byte) error) error {
	p, err := OpenColumnarPage(buf)
	if err != nil {
		return err
	}
	scratch := make([]byte, 0, p.RowSize())
	for i := 0; i < p.NumRows(); i++ {
		if err := fn(p.AppendRow(scratch[:0], i)); err != nil {
			return err
		}
	}
	return nil
}
