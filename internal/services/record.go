// Package services implements the computational services Pangea pushes into
// the storage system (paper §8): the sequential read/write service, the
// shuffle service with its virtual shuffle buffers and small-page allocator,
// the hash service with page-local hash tables over a slab allocator, and
// the join/broadcast map services. Each service stamps the attribute tags of
// the locality sets it touches, which is how the paging system learns access
// patterns at runtime (§3.2).
package services

import (
	"encoding/binary"
	"fmt"
)

// Service pages are divided into fixed-size regions, each holding a stream
// of length-prefixed records terminated by a zero length (or the region
// end). Sequential pages have a single region spanning the page; shuffle
// pages are split into small pages, one region each, so multiple writer
// threads can fill one buffer-pool page concurrently (§8).
//
// Page layout:
//
//	[0:4)  u32 regionSize
//	[4:8)  u32 reserved
//	[8:)   regions, each regionSize bytes; trailing bytes that do not fit a
//	       whole region are unused
//
// Record framing within a region: u32 length, then payload. Length 0 marks
// the end of the region's records.

const (
	pageHeaderSize = 8
	recHeaderSize  = 4
)

// initPage stamps the region size into a freshly allocated page buffer.
func initPage(buf []byte, regionSize int) {
	if regionSize < recHeaderSize+1 || regionSize > len(buf)-pageHeaderSize {
		panic(fmt.Sprintf("services: region size %d invalid for page of %d bytes", regionSize, len(buf)))
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(regionSize))
	binary.LittleEndian.PutUint32(buf[4:8], 0)
	// Zero the first record header of every region so readers see empty
	// regions rather than stale bytes from a recycled arena block.
	for off := pageHeaderSize; off+recHeaderSize <= len(buf) && off+regionSize <= len(buf); off += regionSize {
		binary.LittleEndian.PutUint32(buf[off:off+4], 0)
	}
}

// pageRegionSize reads the region size from a page buffer.
func pageRegionSize(buf []byte) int {
	return int(binary.LittleEndian.Uint32(buf[0:4]))
}

// regionsPerPage returns how many whole regions fit in a page buffer.
func regionsPerPage(pageSize int64, regionSize int) int {
	return int((pageSize - pageHeaderSize) / int64(regionSize))
}

// appendRecord writes one framed record at off within buf and returns the
// next offset. end is the exclusive limit of the region. ok is false when
// the record (plus its trailing terminator slot) does not fit.
func appendRecord(buf []byte, off, end int, rec []byte) (next int, ok bool) {
	need := recHeaderSize + len(rec)
	if off+need > end {
		return off, false
	}
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(rec)))
	copy(buf[off+4:off+4+len(rec)], rec)
	// Pre-write the terminator; the next append overwrites it.
	if off+need+recHeaderSize <= end {
		binary.LittleEndian.PutUint32(buf[off+need:off+need+4], 0)
	}
	return off + need, true
}

// walkRegion calls fn for every record in the region buf[off:end). It stops
// at a zero-length header or when fn returns an error.
func walkRegion(buf []byte, off, end int, fn func(rec []byte) error) error {
	for off+recHeaderSize <= end {
		n := int(binary.LittleEndian.Uint32(buf[off : off+4]))
		if n == 0 {
			return nil
		}
		if off+recHeaderSize+n > end {
			return fmt.Errorf("services: corrupt record of %d bytes at offset %d (region end %d)", n, off, end)
		}
		if err := fn(buf[off+recHeaderSize : off+recHeaderSize+n]); err != nil {
			return err
		}
		off += recHeaderSize + n
	}
	return nil
}

// PageHeaderSize is the size of the service-page header; the first record
// slot of a single-region page sits at this offset.
const PageHeaderSize = pageHeaderSize

// InitServicePage formats buf as a service page with the given region size.
// External writers (the cluster data proxy fills pinned shared-memory pages
// in place) use this before appending records.
func InitServicePage(buf []byte, regionSize int) { initPage(buf, regionSize) }

// AppendServiceRecord appends one framed record to buf at off, bounded by
// end. It returns the next offset and whether the record fit.
func AppendServiceRecord(buf []byte, off, end int, rec []byte) (next int, ok bool) {
	return appendRecord(buf, off, end, rec)
}

// WalkPage iterates every record in every region of a service page buffer.
// Columnar pages (recognized by their magic) are walked row-at-a-time
// through the materializing compatibility path.
func WalkPage(buf []byte, fn func(rec []byte) error) error {
	if IsColumnarPage(buf) {
		return walkColumnarPage(buf, fn)
	}
	rs := pageRegionSize(buf)
	if rs <= 0 {
		return fmt.Errorf("services: page has invalid region size %d", rs)
	}
	for off := pageHeaderSize; off+rs <= len(buf); off += rs {
		if err := walkRegion(buf, off, off+rs, fn); err != nil {
			return err
		}
	}
	return nil
}
