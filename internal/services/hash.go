package services

import (
	"encoding/binary"
	"fmt"

	"pangea/internal/core"
	"pangea/internal/memory"
)

// The hash service (§8) adopts a dynamic partitioning approach: each
// buffer-pool page contains an independent hash table plus all of its
// key-value pairs, with a memcached-style slab allocator using the page as
// its memory pool so every allocation is bounded to the page. All hash
// partitions are grouped into one locality set. When a page fills, a new
// page is allocated (splitting a child partition); when the buffer pool
// itself is short, full pages are unpinned and spilled to disk as
// partial-aggregation results, and Result re-aggregates the spilled
// partials.
//
// In-page layout:
//
//	[0:4)    u32 bucket count B
//	[4:8)    u32 entry count
//	[8:12)   u32 value size V
//	[12:12+4B) bucket heads: u32 slab offsets, 0 = empty
//	[...:)   slab region
//
// Entry layout inside a slab chunk:
//
//	[0:4)   u32 next entry offset (0 = end of chain)
//	[4:8)   u32 key length
//	[8:8+V) value bytes
//	[8+V:)  key bytes
//
// Slab offsets are stored +1 so that 0 can mean "nil".

const (
	hashHdrSize   = 12
	entryHdrSize  = 8
	hashFillDenom = 6 // one bucket per hashFillDenom*32 bytes of page
)

// hashPartition is one page-local hash table.
type hashPartition struct {
	page    *core.Page
	slab    *memory.Slab
	buckets []byte // aliases the page
	nb      uint32
	vs      int // value size
	slabOff int // offset of the slab region within the page
}

// fnv1a hashes a key.
func fnv1a(key []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// initHashPage formats a fresh page as an empty hash partition.
func initHashPage(p *core.Page, valSize int) *hashPartition {
	buf := p.Bytes()
	nb := uint32(len(buf) / (hashFillDenom * 32))
	if nb < 16 {
		nb = 16
	}
	binary.LittleEndian.PutUint32(buf[0:4], nb)
	binary.LittleEndian.PutUint32(buf[4:8], 0)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(valSize))
	bucketEnd := hashHdrSize + 4*int(nb)
	for i := hashHdrSize; i < bucketEnd; i += 4 {
		binary.LittleEndian.PutUint32(buf[i:i+4], 0)
	}
	region := buf[bucketEnd:]
	return &hashPartition{
		page:    p,
		slab:    memory.NewSlab(region, memory.SlabConfig{SlabSize: 4 << 10, MinChunk: 32}),
		buckets: buf[hashHdrSize:bucketEnd],
		nb:      nb,
		vs:      valSize,
		slabOff: bucketEnd,
	}
}

// openHashPage builds a read-only partition view over an existing page
// image (used when re-aggregating spilled partials).
func openHashPage(p *core.Page) *hashPartition {
	buf := p.Bytes()
	nb := binary.LittleEndian.Uint32(buf[0:4])
	vs := int(binary.LittleEndian.Uint32(buf[8:12]))
	bucketEnd := hashHdrSize + 4*int(nb)
	return &hashPartition{page: p, buckets: buf[hashHdrSize:bucketEnd], nb: nb, vs: vs, slabOff: bucketEnd}
}

func (hp *hashPartition) bucketHead(b uint32) uint32 {
	return binary.LittleEndian.Uint32(hp.buckets[4*b : 4*b+4])
}

func (hp *hashPartition) setBucketHead(b, off uint32) {
	binary.LittleEndian.PutUint32(hp.buckets[4*b:4*b+4], off)
}

// entry views an entry chunk at slab offset off (stored +1).
func (hp *hashPartition) entry(off uint32) []byte {
	base := hp.slabOff + int(off) - 1
	return hp.page.Bytes()[base:]
}

// find returns the slab offset (+1) of the entry holding key, or 0.
func (hp *hashPartition) find(key []byte) uint32 {
	b := uint32(fnv1a(key) % uint64(hp.nb))
	for off := hp.bucketHead(b); off != 0; {
		e := hp.entry(off)
		klen := binary.LittleEndian.Uint32(e[4:8])
		if int(klen) == len(key) && string(e[entryHdrSize+hp.vs:entryHdrSize+hp.vs+int(klen)]) == string(key) {
			return off
		}
		off = binary.LittleEndian.Uint32(e[0:4])
	}
	return 0
}

// value returns the mutable value slice of the entry at off.
func (hp *hashPartition) value(off uint32) []byte {
	return hp.entry(off)[entryHdrSize : entryHdrSize+hp.vs]
}

// insert allocates a new entry; returns false when the page's slab is full.
func (hp *hashPartition) insert(key, val []byte) bool {
	chunk, ok := hp.slab.Alloc(entryHdrSize + hp.vs + len(key))
	if !ok {
		return false
	}
	off := uint32(chunk + 1)
	e := hp.entry(off)
	b := uint32(fnv1a(key) % uint64(hp.nb))
	binary.LittleEndian.PutUint32(e[0:4], hp.bucketHead(b))
	binary.LittleEndian.PutUint32(e[4:8], uint32(len(key)))
	copy(e[entryHdrSize:entryHdrSize+hp.vs], val)
	copy(e[entryHdrSize+hp.vs:], key)
	hp.setBucketHead(b, off)
	buf := hp.page.Bytes()
	binary.LittleEndian.PutUint32(buf[4:8], binary.LittleEndian.Uint32(buf[4:8])+1)
	return true
}

// walk calls fn for every (key, value) in the partition.
func (hp *hashPartition) walk(fn func(key, val []byte) error) error {
	for b := uint32(0); b < hp.nb; b++ {
		for off := hp.bucketHead(b); off != 0; {
			e := hp.entry(off)
			klen := binary.LittleEndian.Uint32(e[4:8])
			key := e[entryHdrSize+hp.vs : entryHdrSize+hp.vs+int(klen)]
			if err := fn(key, e[entryHdrSize:entryHdrSize+hp.vs]); err != nil {
				return err
			}
			off = binary.LittleEndian.Uint32(e[0:4])
		}
	}
	return nil
}

// CombineFunc merges a source value into a destination aggregate in place.
type CombineFunc func(dst, src []byte)

// VirtualHashBuffer is the hash service's user-facing handle: K root
// partitions indexed by key hash, each backed by page-local hash tables
// holding fixed-size values. Inserting into a full partition transparently
// splits a child partition onto a fresh page; under memory pressure older
// pages spill as partial aggregates and Result re-aggregates them.
type VirtualHashBuffer struct {
	set     *core.LocalitySet
	combine CombineFunc
	valSize int
	parts   []*hashPartition // active page per root partition
	k       uint64
}

// NewVirtualHashBuffer attaches the hash service to a locality set with k
// root partitions and valSize-byte values. It stamps
// WritingPattern=random-mutable-write, ReadingPattern=random-read and
// CurrentOperation=read-and-write on the set (§3.2).
func NewVirtualHashBuffer(set *core.LocalitySet, k, valSize int, combine CombineFunc) (*VirtualHashBuffer, error) {
	if k < 1 {
		return nil, fmt.Errorf("services: hash buffer needs at least 1 partition, got %d", k)
	}
	if valSize < 1 {
		return nil, fmt.Errorf("services: hash buffer needs a positive value size, got %d", valSize)
	}
	if combine == nil {
		return nil, fmt.Errorf("services: hash buffer needs a combine function")
	}
	set.SetWriting(core.RandomMutableWrite)
	set.SetReading(core.RandomRead)
	set.SetCurrentOp(core.OpReadWrite)
	return &VirtualHashBuffer{
		set:     set,
		combine: combine,
		valSize: valSize,
		parts:   make([]*hashPartition, k),
		k:       uint64(k),
	}, nil
}

// Upsert inserts key with value val, or combines val into the key's current
// value if the key is present in the partition's active page. Keys spilled
// earlier are merged by Result, so Upsert is the paper's find/insert/set
// flow in one call.
func (h *VirtualHashBuffer) Upsert(key, val []byte) error {
	if len(val) != h.valSize {
		return fmt.Errorf("services: value size %d, buffer configured for %d", len(val), h.valSize)
	}
	r := fnv1a(key) % h.k
	hp := h.parts[r]
	if hp != nil {
		if off := hp.find(key); off != 0 {
			h.combine(hp.value(off), val)
			return nil
		}
		if hp.insert(key, val) {
			return nil
		}
		// Page full: retire it (unpin dirty; it becomes a spill candidate)
		// and split a fresh child partition below.
		if err := h.set.Unpin(hp.page, true); err != nil {
			return err
		}
		h.parts[r] = nil
	}
	p, err := h.set.NewPage()
	if err != nil {
		return err
	}
	hp = initHashPage(p, h.valSize)
	h.parts[r] = hp
	if !hp.insert(key, val) {
		return fmt.Errorf("services: key of %d bytes does not fit an empty hash page of %d bytes", len(key), h.set.PageSize())
	}
	return nil
}

// Find returns a copy of the key's value in its partition's active page. ok
// is false if the key is absent there (it may still exist in spilled
// partials).
func (h *VirtualHashBuffer) Find(key []byte) (val []byte, ok bool) {
	hp := h.parts[fnv1a(key)%h.k]
	if hp == nil {
		return nil, false
	}
	off := hp.find(key)
	if off == 0 {
		return nil, false
	}
	return append([]byte(nil), hp.value(off)...), true
}

// Close unpins all active pages. Call before Result.
func (h *VirtualHashBuffer) Close() error {
	var first error
	for i, hp := range h.parts {
		if hp == nil {
			continue
		}
		if err := h.set.Unpin(hp.page, true); err != nil && first == nil {
			first = err
		}
		h.parts[i] = nil
	}
	h.set.SetCurrentOp(core.OpNone)
	return first
}

// Result re-aggregates every hash page of the set — resident and spilled —
// into a single map: the final-stage merge the paper performs after all
// objects are inserted through the virtual hash buffer.
func (h *VirtualHashBuffer) Result() (map[string][]byte, error) {
	out := make(map[string][]byte)
	err := h.Walk(func(key, val []byte) error {
		k := string(key)
		if old, ok := out[k]; ok {
			h.combine(old, val)
		} else {
			out[k] = append([]byte(nil), val...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Walk streams every (key, partial-value) pair across all hash pages of the
// set in page order. Values with the same key may appear several times
// (once per partial); use Result for fully merged values.
func (h *VirtualHashBuffer) Walk(fn func(key, val []byte) error) error {
	n := h.set.NumPages()
	for num := int64(0); num < n; num++ {
		p, err := h.set.Pin(num)
		if err != nil {
			return fmt.Errorf("services: re-aggregate page %d: %w", num, err)
		}
		hp := openHashPage(p)
		werr := hp.walk(fn)
		if uerr := h.set.Unpin(p, false); werr == nil {
			werr = uerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// Int64HashBuffer aggregates <key, int64> pairs — the shape of the paper's
// key-value aggregation micro-benchmark (Table 4) and of counting
// aggregations generally.
type Int64HashBuffer struct {
	h       *VirtualHashBuffer
	combine func(old, new int64) int64
}

// Sum is the additive combiner.
func Sum(old, new int64) int64 { return old + new }

// NewInt64HashBuffer wraps the hash service for int64 values.
func NewInt64HashBuffer(set *core.LocalitySet, k int, combine func(old, new int64) int64) (*Int64HashBuffer, error) {
	if combine == nil {
		combine = Sum
	}
	byteCombine := func(dst, src []byte) {
		old := int64(binary.LittleEndian.Uint64(dst))
		new := int64(binary.LittleEndian.Uint64(src))
		binary.LittleEndian.PutUint64(dst, uint64(combine(old, new)))
	}
	h, err := NewVirtualHashBuffer(set, k, 8, byteCombine)
	if err != nil {
		return nil, err
	}
	return &Int64HashBuffer{h: h, combine: combine}, nil
}

// Upsert inserts or combines one pair.
func (b *Int64HashBuffer) Upsert(key []byte, v int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return b.h.Upsert(key, buf[:])
}

// Find looks the key up in its partition's active page.
func (b *Int64HashBuffer) Find(key []byte) (int64, bool) {
	v, ok := b.h.Find(key)
	if !ok {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(v)), true
}

// Close unpins active pages.
func (b *Int64HashBuffer) Close() error { return b.h.Close() }

// Result merges all partials into a map.
func (b *Int64HashBuffer) Result() (map[string]int64, error) {
	raw, err := b.h.Result()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(raw))
	for k, v := range raw {
		out[k] = int64(binary.LittleEndian.Uint64(v))
	}
	return out, nil
}
