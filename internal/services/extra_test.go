package services

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"pangea/internal/core"
)

// TestRecordFramingProperty: any sequence of records that fits round-trips
// through a page region in order.
func TestRecordFramingProperty(t *testing.T) {
	f := func(lens []uint8) bool {
		buf := make([]byte, 8192)
		initPage(buf, len(buf)-pageHeaderSize)
		var want [][]byte
		off := pageHeaderSize
		for i, ln := range lens {
			rec := bytes.Repeat([]byte{byte(i + 1)}, int(ln))
			next, ok := appendRecord(buf, off, len(buf), rec)
			if !ok {
				break
			}
			// Zero-length records terminate the region by construction, so
			// the framing cannot represent them mid-stream; writers in
			// Pangea never emit empty records.
			if ln == 0 {
				return true
			}
			want = append(want, rec)
			off = next
		}
		var got [][]byte
		if err := WalkPage(buf, func(rec []byte) error {
			got = append(got, append([]byte(nil), rec...))
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWalkPageDetectsCorruptLength: a record header pointing past the
// region is an error, not a crash or silent truncation.
func TestWalkPageDetectsCorruptLength(t *testing.T) {
	buf := make([]byte, 256)
	initPage(buf, 256-pageHeaderSize)
	if _, ok := appendRecord(buf, pageHeaderSize, len(buf), []byte("x")); !ok {
		t.Fatal("append failed")
	}
	// Corrupt the length field.
	buf[pageHeaderSize] = 0xFF
	buf[pageHeaderSize+1] = 0xFF
	if err := WalkPage(buf, func([]byte) error { return nil }); err == nil {
		t.Error("corrupt record length must be reported")
	}
}

// TestShuffleSlowWriterHoldsPagePinned: a page is unpinned only after the
// slowest writer releases its small page, even when the allocator has long
// moved on to fresh pages.
func TestShuffleSlowWriterHoldsPagePinned(t *testing.T) {
	bp := newPool(t, 2<<20)
	set := mkSet(t, bp, "sh", 64<<10)
	sink, err := NewShuffleSink(set, 16<<10) // 3 regions per page (header)
	if err != nil {
		t.Fatal(err)
	}
	slow := NewVirtualShuffleBuffer(sink)
	if err := slow.Add([]byte("slow writer's first record")); err != nil {
		t.Fatal(err)
	}
	// Fast writers churn through several pages.
	fast := NewVirtualShuffleBuffer(sink)
	big := make([]byte, 15<<10)
	for i := 0; i < 12; i++ {
		if err := fast.Add(big); err != nil {
			t.Fatal(err)
		}
	}
	if err := fast.Close(); err != nil {
		t.Fatal(err)
	}
	// The slow writer still holds a region of the first page: that page
	// must be pinned (evictable set must exclude it).
	if set.NumPages() < 3 {
		t.Fatalf("expected several pages, got %d", set.NumPages())
	}
	if err := slow.Add([]byte("slow writer's second record")); err != nil {
		t.Fatalf("slow writer's region must remain writable: %v", err)
	}
	if err := slow.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything written must come back.
	var recs int
	if err := ScanSet(set, 1, func(_ int, rec []byte) error {
		recs++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if recs != 14 {
		t.Errorf("scanned %d records, want 14", recs)
	}
}

// TestHashBufferCustomCombiner: max-combining works through spills.
func TestHashBufferCustomCombiner(t *testing.T) {
	bp := newPool(t, 1<<20)
	set := mkSet(t, bp, "max", 32<<10)
	max := func(old, new int64) int64 {
		if new > old {
			return new
		}
		return old
	}
	h, err := NewInt64HashBuffer(set, 2, max)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		key := []byte(fmt.Sprintf("k%02d", i%50))
		if err := h.Upsert(key, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res {
		var i int
		fmt.Sscanf(k, "k%d", &i)
		want := int64(2950 + i)
		if v != want {
			t.Errorf("%s = %d, want %d", k, v, want)
		}
	}
}

// TestVirtualHashBufferValueSizeEnforced: mismatched value widths are
// rejected up front.
func TestVirtualHashBufferValueSizeEnforced(t *testing.T) {
	bp := newPool(t, 1<<20)
	set := mkSet(t, bp, "vs", 32<<10)
	h, err := NewVirtualHashBuffer(set, 1, 16, func(dst, src []byte) { copy(dst, src) })
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Upsert([]byte("k"), make([]byte, 8)); err == nil {
		t.Error("wrong value size must be rejected")
	}
	if err := h.Upsert([]byte("k"), make([]byte, 16)); err != nil {
		t.Errorf("correct value size rejected: %v", err)
	}
	_ = h.Close()
}

func TestNewVirtualHashBufferValidation(t *testing.T) {
	bp := newPool(t, 1<<20)
	set := mkSet(t, bp, "bad", 32<<10)
	if _, err := NewVirtualHashBuffer(set, 0, 8, func(dst, src []byte) {}); err == nil {
		t.Error("zero partitions must be rejected")
	}
	if _, err := NewVirtualHashBuffer(set, 1, 0, func(dst, src []byte) {}); err == nil {
		t.Error("zero value size must be rejected")
	}
	if _, err := NewVirtualHashBuffer(set, 1, 8, nil); err == nil {
		t.Error("nil combiner must be rejected")
	}
}

// TestScanEmptySet: iterating a set with no pages completes immediately.
func TestScanEmptySet(t *testing.T) {
	bp := newPool(t, 1<<20)
	set := mkSet(t, bp, "empty", 4096)
	done := make(chan error, 1)
	go func() {
		done <- ScanSet(set, 3, func(int, []byte) error {
			t.Error("callback on empty set")
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scan of empty set hung")
	}
}

// TestJoinMapEmptyKeyAndPayload: degenerate shapes are stored faithfully.
func TestJoinMapEmptyKeyAndPayload(t *testing.T) {
	bp := newPool(t, 1<<20)
	set := mkSet(t, bp, "jm", 4096)
	m := NewJoinMap(set)
	if err := m.Insert([]byte{}, []byte("payload-under-empty-key")); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert([]byte("key"), []byte{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	var got string
	if err := m.Probe([]byte{}, func(p []byte) error {
		got = string(p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != "payload-under-empty-key" {
		t.Errorf("empty-key payload = %q", got)
	}
	var hits int
	if err := m.Probe([]byte("key"), func(p []byte) error {
		hits++
		if len(p) != 0 {
			t.Errorf("payload = %q, want empty", p)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Errorf("hits = %d", hits)
	}
}

// TestSeqWriterInterleavedWithDifferentSets: two writers on different sets
// in one pool do not interfere.
func TestSeqWriterInterleavedWithDifferentSets(t *testing.T) {
	bp := newPool(t, 2<<20)
	a := mkSet(t, bp, "a", 8<<10)
	b := mkSet(t, bp, "b", 8<<10)
	wa, wb := NewSeqWriter(a), NewSeqWriter(b)
	for i := 0; i < 500; i++ {
		if err := wa.Add([]byte(fmt.Sprintf("a-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := wb.Add([]byte(fmt.Sprintf("b-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_ = wa.Close()
	_ = wb.Close()
	for name, set := range map[string]*core.LocalitySet{"a": a, "b": b} {
		var n int
		if err := ScanSet(set, 1, func(_ int, rec []byte) error {
			if rec[0] != name[0] {
				t.Errorf("record %q in set %s", rec, name)
			}
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n != 500 {
			t.Errorf("set %s has %d records", name, n)
		}
	}
}
