package services

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"

	"pangea/internal/core"
	"pangea/internal/locking"
	"pangea/internal/pfs"
)

// Zone maps are per-page column summaries — min/max per fixed-width column,
// plus an optional small bloom filter per designated equality column — that
// the predicate scan consults *before* pinning a page: a page whose summary
// proves no row can match is skipped with zero I/O and zero pin traffic.
// They are built incrementally as records are appended (the columnar
// writer's seal hook or the row writer's append hook; see AttachZoneMap),
// persisted as a compact per-set side object in pfs, and rebuilt by one full
// scan when the side object is absent or stale — so seed sets keep working.
//
// A zone map is valid only for append-once sets (the write pattern every
// Pangea set has today: load then scan). Summaries are conservative: a page
// without one is simply never pruned.

// ZoneMapTag is the pfs side-object name zone maps persist under.
const ZoneMapTag = "zmap"

// ZoneMapsDefault reports whether scans should build zone maps by default,
// controlled by the PANGEA_ZONEMAPS=1 environment toggle (CI runs the
// query/tpch/services suites under both values).
func ZoneMapsDefault() bool { return os.Getenv("PANGEA_ZONEMAPS") == "1" }

// ZoneMapSpec describes what a zone map summarizes: the fixed-width column
// schema (offsets address the row-record form; for columnar sets the widths
// must match the set's column widths exactly, in order), and which columns
// additionally get a per-page bloom filter for equality pruning. Columns
// whose width is not 1/2/4/8 (payload blobs, packed strings) are carried
// for shape but never summarized — predicates on them simply never prune.
type ZoneMapSpec struct {
	Schema    []ColumnSpec
	BloomCols []int
}

// bloomBytes is the fixed per-page, per-column bloom size: 256 bits with
// two probes — at the few hundred distinct values a page holds, small
// enough to keep the whole side object a handful of KiB and selective
// enough to prune point lookups on non-clustered key columns.
const bloomBytes = 32

// bloomProbes mixes a column value into its two bloom bit positions.
func bloomProbes(v uint64) (uint32, uint32) {
	h := v * 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return uint32(h) & (bloomBytes*8 - 1), uint32(h>>32) & (bloomBytes*8 - 1)
}

func bloomSet(b []byte, v uint64) {
	p, q := bloomProbes(v)
	b[p>>3] |= 1 << (p & 7)
	b[q>>3] |= 1 << (q & 7)
}

func bloomHas(b []byte, v uint64) bool {
	p, q := bloomProbes(v)
	return b[p>>3]&(1<<(p&7)) != 0 && b[q>>3]&(1<<(q&7)) != 0
}

// zonePage is one page's summary. minU/maxU are the unsigned interpretation
// of every column; minF/maxF the float64 interpretation of 8-byte columns
// (NaN = no valid float summary, so float prune checks never fire — NaN
// comparisons are false). An invalid page (a row shorter than the schema was
// appended) keeps its slot so coverage checks still pass, but never prunes.
type zonePage struct {
	rows   int64
	valid  bool
	minU   []uint64
	maxU   []uint64
	minF   []float64
	maxF   []float64
	blooms [][]byte // parallel to spec.BloomCols
}

// ZoneMap holds the per-page summaries of one locality set.
type ZoneMap struct {
	widths    []int
	offsets   []int
	tracked   []bool // width is 1/2/4/8: the column is summarized
	rowSize   int    // bytes of record prefix the schema addresses
	bloomCols []int  // sorted column indices with blooms
	bloomPos  map[int]int

	mu    locking.RWMutex
	pages map[int64]*zonePage
}

// NewZoneMap builds an empty zone map for the given spec.
func NewZoneMap(spec ZoneMapSpec) (*ZoneMap, error) {
	if len(spec.Schema) == 0 {
		return nil, fmt.Errorf("services: zone map needs a schema")
	}
	z := &ZoneMap{
		widths:   make([]int, len(spec.Schema)),
		offsets:  make([]int, len(spec.Schema)),
		tracked:  make([]bool, len(spec.Schema)),
		bloomPos: make(map[int]int),
		pages:    make(map[int64]*zonePage),
	}
	z.mu.Init(locking.RankZoneMap)
	for i, c := range spec.Schema {
		if c.Width <= 0 {
			return nil, fmt.Errorf("services: zone map column %d has width %d", i, c.Width)
		}
		if c.Offset < 0 {
			return nil, fmt.Errorf("services: zone map column %d has offset %d", i, c.Offset)
		}
		switch c.Width {
		case 1, 2, 4, 8:
			z.tracked[i] = true
		}
		z.widths[i], z.offsets[i] = c.Width, c.Offset
		if end := c.Offset + c.Width; end > z.rowSize {
			z.rowSize = end
		}
	}
	for _, c := range spec.BloomCols {
		if c < 0 || c >= len(spec.Schema) {
			return nil, fmt.Errorf("services: zone map bloom column %d out of range [0,%d)", c, len(spec.Schema))
		}
		if !z.tracked[c] {
			return nil, fmt.Errorf("services: zone map bloom column %d has width %d, want 1/2/4/8", c, z.widths[c])
		}
		if _, dup := z.bloomPos[c]; dup {
			continue
		}
		z.bloomPos[c] = len(z.bloomCols)
		z.bloomCols = append(z.bloomCols, c)
	}
	return z, nil
}

// matches reports whether the map was built for exactly this spec.
func (z *ZoneMap) matches(spec ZoneMapSpec) bool {
	if len(spec.Schema) != len(z.widths) || len(z.bloomCols) != len(z.bloomPos) {
		return false
	}
	for i, c := range spec.Schema {
		if z.widths[i] != c.Width || z.offsets[i] != c.Offset {
			return false
		}
	}
	seen := 0
	for _, c := range spec.BloomCols {
		if _, ok := z.bloomPos[c]; !ok {
			return false
		}
		seen++
	}
	return seen == len(z.bloomCols)
}

// page returns (creating if asked) the summary slot for pageNum. Caller
// holds z.mu.
func (z *ZoneMap) page(num int64, create bool) *zonePage {
	p := z.pages[num]
	if p == nil && create {
		p = &zonePage{
			valid:  true,
			minU:   make([]uint64, len(z.widths)),
			maxU:   make([]uint64, len(z.widths)),
			minF:   make([]float64, len(z.widths)),
			maxF:   make([]float64, len(z.widths)),
			blooms: make([][]byte, len(z.bloomCols)),
		}
		for i := range p.minF {
			p.minF[i] = math.NaN()
			p.maxF[i] = math.NaN()
		}
		for i := range p.blooms {
			p.blooms[i] = make([]byte, bloomBytes)
		}
		z.pages[num] = p
	}
	return p
}

// noteValue folds one column value into a page summary. Caller holds z.mu.
func (z *ZoneMap) noteValue(p *zonePage, col int, u uint64, first bool) {
	if first || u < p.minU[col] {
		p.minU[col] = u
	}
	if first || u > p.maxU[col] {
		p.maxU[col] = u
	}
	if z.widths[col] == 8 {
		f := math.Float64frombits(u)
		switch {
		case math.IsNaN(f):
			// Poison the float interpretation: a NaN is unordered, so no
			// min/max statement about this page's floats can be trusted.
			p.minF[col] = math.NaN()
			p.maxF[col] = math.NaN()
		case first:
			p.minF[col], p.maxF[col] = f, f
		case !math.IsNaN(p.minF[col]):
			if f < p.minF[col] {
				p.minF[col] = f
			}
			if f > p.maxF[col] {
				p.maxF[col] = f
			}
		}
	}
	if bi, ok := z.bloomPos[col]; ok {
		bloomSet(p.blooms[bi], u)
	}
}

// readU reads column col's unsigned value out of a row record.
func (z *ZoneMap) readU(rec []byte, col int) uint64 {
	off := z.offsets[col]
	switch z.widths[col] {
	case 1:
		return uint64(rec[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(rec[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(rec[off:]))
	default:
		return binary.LittleEndian.Uint64(rec[off:])
	}
}

// NoteAppend folds one appended row record into page pageNum's summary —
// the SeqWriter.OnAppend hook. A record shorter than the schema's footprint
// invalidates the page's summary (it stays covered, but never prunes).
func (z *ZoneMap) NoteAppend(pageNum int64, rec []byte) {
	z.mu.Lock()
	defer z.mu.Unlock()
	p := z.page(pageNum, true)
	if len(rec) < z.rowSize {
		p.valid = false
		return
	}
	if !p.valid {
		return
	}
	first := p.rows == 0
	for c := range z.widths {
		if !z.tracked[c] {
			continue
		}
		z.noteValue(p, c, z.readU(rec, c), first)
	}
	p.rows++
}

// NoteColumnarPage folds one sealed columnar page into its summary — the
// ColumnarWriter.OnSeal hook, and the vectorized path of rebuilds: each
// column's min/max is a tight loop over its contiguous segment.
func (z *ZoneMap) NoteColumnarPage(pageNum int64, cp *ColumnarPage) {
	z.mu.Lock()
	defer z.mu.Unlock()
	p := z.page(pageNum, true)
	n := cp.NumRows()
	if cp.NumCols() != len(z.widths) || n == 0 {
		if cp.NumCols() != len(z.widths) {
			p.valid = false
		}
		return
	}
	// Re-sealing the same page (Close after its last Add already sealed it)
	// restates the same rows; each column's first value restarts its summary
	// rather than double-folding.
	for c, w := range z.widths {
		if cp.Width(c) != w {
			p.valid = false
			return
		}
		if !z.tracked[c] {
			continue
		}
		seg := cp.Col(c)
		for i := 0; i < n; i++ {
			var u uint64
			switch w {
			case 1:
				u = uint64(seg[i])
			case 2:
				u = uint64(binary.LittleEndian.Uint16(seg[i*2:]))
			case 4:
				u = uint64(binary.LittleEndian.Uint32(seg[i*4:]))
			default:
				u = binary.LittleEndian.Uint64(seg[i*8:])
			}
			z.noteValue(p, c, u, i == 0)
		}
	}
	p.rows = int64(n)
}

// NumPages returns how many pages have summaries.
func (z *ZoneMap) NumPages() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.pages)
}

// Covers reports whether every page 0..n-1 has a summary slot — the
// staleness check EnsureZoneMap applies against the set's page count.
func (z *ZoneMap) Covers(n int64) bool {
	z.mu.RLock()
	defer z.mu.RUnlock()
	if int64(len(z.pages)) < n {
		return false
	}
	for i := int64(0); i < n; i++ {
		if z.pages[i] == nil {
			return false
		}
	}
	return true
}

// The three accessors below are the prune surface the query layer's
// predicate algebra consults (query.PruneStats). All are conservative:
// ok=false / true means "cannot exclude the page".

// ColRangeU returns column col's [min,max] under the unsigned
// interpretation for page pageNum.
func (z *ZoneMap) ColRangeU(pageNum int64, col int) (lo, hi uint64, ok bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	p := z.pages[pageNum]
	if p == nil || !p.valid || p.rows == 0 || col < 0 || col >= len(z.widths) || !z.tracked[col] {
		return 0, 0, false
	}
	return p.minU[col], p.maxU[col], true
}

// ColRangeF64 returns column col's [min,max] under the float64
// interpretation for page pageNum; ok is false for non-8-byte columns and
// for pages whose floats include a NaN.
func (z *ZoneMap) ColRangeF64(pageNum int64, col int) (lo, hi float64, ok bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	p := z.pages[pageNum]
	if p == nil || !p.valid || p.rows == 0 || col < 0 || col >= len(z.widths) || z.widths[col] != 8 || !z.tracked[col] {
		return 0, 0, false
	}
	if math.IsNaN(p.minF[col]) {
		return 0, 0, false
	}
	return p.minF[col], p.maxF[col], true
}

// MayContain reports whether page pageNum may hold value v in column col:
// false only when the min/max range — or the column's bloom, if it has one —
// proves it cannot.
func (z *ZoneMap) MayContain(pageNum int64, col int, v uint64) bool {
	z.mu.RLock()
	defer z.mu.RUnlock()
	p := z.pages[pageNum]
	if p == nil || !p.valid || p.rows == 0 || col < 0 || col >= len(z.widths) || !z.tracked[col] {
		return true
	}
	if v < p.minU[col] || v > p.maxU[col] {
		return false
	}
	if bi, ok := z.bloomPos[col]; ok {
		return bloomHas(p.blooms[bi], v)
	}
	return true
}

// --- persistence -------------------------------------------------------------

const (
	zoneMapMagic   = 0x504D5A47 // "GZMP"
	zoneMapVersion = 1

	zpValid = 1 // flags bit: page summary is usable for pruning
)

// Marshal serializes the map as the compact side object: a versioned header
// carrying the schema shape (so a stale or reshaped map is rejected on
// load), then one fixed-size record per page.
func (z *ZoneMap) Marshal() []byte {
	z.mu.RLock()
	defer z.mu.RUnlock()
	nums := make([]int64, 0, len(z.pages))
	for n := range z.pages {
		nums = append(nums, n)
	}
	// Insertion order is append order; serialize sorted for determinism.
	for i := 1; i < len(nums); i++ {
		for j := i; j > 0 && nums[j] < nums[j-1]; j-- {
			nums[j], nums[j-1] = nums[j-1], nums[j]
		}
	}
	perPage := 8 + 8 + 8 + 32*len(z.widths) + bloomBytes*len(z.bloomCols)
	buf := make([]byte, 0, 40+16*len(z.widths)+8*len(z.bloomCols)+perPage*len(nums))
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(zoneMapMagic)
	put(zoneMapVersion)
	put(uint64(len(z.widths)))
	put(uint64(len(z.bloomCols)))
	put(uint64(len(nums)))
	for i := range z.widths {
		put(uint64(z.widths[i]))
		put(uint64(z.offsets[i]))
	}
	for _, c := range z.bloomCols {
		put(uint64(c))
	}
	for _, n := range nums {
		p := z.pages[n]
		put(uint64(n))
		put(uint64(p.rows))
		flags := uint64(0)
		if p.valid {
			flags |= zpValid
		}
		put(flags)
		for c := range z.widths {
			put(p.minU[c])
			put(p.maxU[c])
			put(math.Float64bits(p.minF[c]))
			put(math.Float64bits(p.maxF[c]))
		}
		for _, b := range p.blooms {
			buf = append(buf, b...)
		}
	}
	return buf
}

// LoadZoneMap parses a serialized zone map and verifies it was built for
// spec; a mismatch (schema evolved, bloom columns changed) is an error so
// callers rebuild instead of pruning against stale shapes.
func LoadZoneMap(data []byte, spec ZoneMapSpec) (*ZoneMap, error) {
	z, err := NewZoneMap(spec)
	if err != nil {
		return nil, err
	}
	if len(data) < 40 {
		return nil, fmt.Errorf("services: zone map side object truncated (%d bytes)", len(data))
	}
	off := 0
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	if get() != zoneMapMagic {
		return nil, fmt.Errorf("services: bad zone map magic")
	}
	if v := get(); v != zoneMapVersion {
		return nil, fmt.Errorf("services: unsupported zone map version %d", v)
	}
	ncols, nbloom, npages := int(get()), int(get()), int(get())
	if ncols != len(z.widths) || nbloom != len(z.bloomCols) {
		return nil, fmt.Errorf("services: zone map shape mismatch (%d cols, %d blooms, %d bytes)", ncols, nbloom, len(data))
	}
	// The page count comes off disk as a full u64: bound it against the
	// bytes actually present before it enters any size arithmetic, so a
	// corrupt count can neither overflow the need computation nor drive
	// the decode loop past the buffer.
	fixed := 40 + 16*ncols + 8*nbloom
	if len(data) < fixed {
		return nil, fmt.Errorf("services: zone map schema section truncated (%d of %d bytes)", len(data), fixed)
	}
	perPage := 24 + 32*ncols + bloomBytes*nbloom
	maxPages := (len(data) - fixed) / perPage
	if npages < 0 || npages > maxPages {
		return nil, fmt.Errorf("services: zone map claims %d pages, %d bytes hold at most %d", npages, len(data), maxPages)
	}
	for i := 0; i < ncols; i++ {
		if w, o := int(get()), int(get()); w != z.widths[i] || o != z.offsets[i] {
			return nil, fmt.Errorf("services: zone map column %d is %d@%d, spec wants %d@%d", i, w, o, z.widths[i], z.offsets[i])
		}
	}
	for i := 0; i < nbloom; i++ {
		if c := int(get()); c != z.bloomCols[i] {
			return nil, fmt.Errorf("services: zone map bloom columns differ from spec")
		}
	}
	for i := 0; i < npages; i++ {
		num := int64(get())
		p := z.page(num, true)
		p.rows = int64(get())
		p.valid = get()&zpValid != 0
		for c := 0; c < ncols; c++ {
			p.minU[c] = get()
			p.maxU[c] = get()
			p.minF[c] = math.Float64frombits(get())
			p.maxF[c] = math.Float64frombits(get())
		}
		for b := 0; b < nbloom; b++ {
			copy(p.blooms[b], data[off:off+bloomBytes])
			off += bloomBytes
		}
	}
	return z, nil
}

// Save persists the map as the set's zone-map side object.
func (z *ZoneMap) Save(set *core.LocalitySet) error {
	return set.WriteSideObject(ZoneMapTag, z.Marshal())
}

// --- wiring ------------------------------------------------------------------

// AttachZoneMap wires incremental zone-map maintenance into a sequential
// writer: columnar sets hook the page-seal callback (vectorized per-segment
// min/max, computed while the sealed page is still pinned), row sets hook
// the per-record append callback. The map is registered as the set's side
// index so predicate scans find it; call Save after the writer closes to
// persist it.
func AttachZoneMap(w *SeqWriter, spec ZoneMapSpec) (*ZoneMap, error) {
	z, err := NewZoneMap(spec)
	if err != nil {
		return nil, err
	}
	if w.cw != nil {
		widths := w.set.ColumnWidths()
		if len(widths) != len(z.widths) {
			return nil, fmt.Errorf("services: zone map schema has %d columns, columnar set %q has %d",
				len(z.widths), w.set.Name(), len(widths))
		}
		for i, cw := range widths {
			if z.widths[i] != cw {
				return nil, fmt.Errorf("services: zone map column %d width %d, columnar set %q stores %d",
					i, z.widths[i], w.set.Name(), cw)
			}
		}
		w.cw.ChainOnSeal(z.NoteColumnarPage)
	} else {
		w.ChainOnAppend(z.NoteAppend)
	}
	w.set.SetSideIndex(ZoneMapTag, z)
	return z, nil
}

// EnsureZoneMap returns a usable zone map for the set: the attached one if
// it matches the spec and covers every page; else the persisted side object
// if it parses against the spec and covers every page; else a fresh rebuild
// by one full scan, persisted and attached before returning — absent, torn
// or stale side objects on seed sets heal here. A real read failure (a
// drive fault, not a missing or corrupt object) propagates instead of
// triggering a rebuild: healing over it would mask the fault and overwrite
// an object that may be intact on disk.
func EnsureZoneMap(set *core.LocalitySet, spec ZoneMapSpec) (*ZoneMap, error) {
	n := set.NumPages()
	if z, ok := set.SideIndex(ZoneMapTag).(*ZoneMap); ok && z.matches(spec) && z.Covers(n) {
		return z, nil
	}
	switch data, err := set.ReadSideObject(ZoneMapTag); {
	case err == nil:
		if z, lerr := LoadZoneMap(data, spec); lerr != nil {
			// Read back fine but does not decode against the spec: count
			// the corrupt-object heal and rebuild.
			set.NoteSideObjectRebuild()
		} else if z.Covers(n) {
			set.SetSideIndex(ZoneMapTag, z)
			return z, nil
		}
		// Decoded but stale (pages appended since the save): plain rebuild.
	case errors.Is(err, pfs.ErrNoSideObject):
		// Never written (seed set): plain rebuild.
	case errors.Is(err, pfs.ErrCorruptSideObject):
		// Torn by a crash mid-write: count the heal and rebuild.
		set.NoteSideObjectRebuild()
	default:
		return nil, fmt.Errorf("services: read zone map of %q: %w", set.Name(), err)
	}
	z, err := NewZoneMap(spec)
	if err != nil {
		return nil, err
	}
	if err := rebuildFromScan(set, n, z.NoteColumnarPage, z.NoteAppend); err != nil {
		return nil, fmt.Errorf("services: rebuild zone map of %q: %w", set.Name(), err)
	}
	if err := z.Save(set); err != nil {
		return nil, err
	}
	set.SetSideIndex(ZoneMapTag, z)
	return z, nil
}

// rebuildFromScan drives one full scan of the set through a side object's
// note hooks — vectorized over columnar pages, record-walked over row pages.
// The heal path shared by EnsureZoneMap and EnsureMicroindex.
func rebuildFromScan(set *core.LocalitySet, n int64, noteCol func(int64, *ColumnarPage), noteRow func(int64, []byte)) error {
	for num := int64(0); num < n; num++ {
		p, err := set.Pin(num)
		if err != nil {
			return err
		}
		buf := p.Bytes()
		if IsColumnarPage(buf) {
			var view ColumnarPage
			if err = view.Reset(buf); err == nil {
				noteCol(num, &view)
			}
		} else {
			err = WalkPage(buf, func(rec []byte) error {
				noteRow(num, rec)
				return nil
			})
		}
		if uerr := set.Unpin(p, false); err == nil {
			err = uerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
