package services

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"

	"pangea/internal/core"
)

// zmSchema matches colRec: u32 key, u16 tag, u64 value.
func zmSchema() []ColumnSpec {
	return MakeSchema([]string{"key", "tag", "val"}, colWidths)
}

// zmCheckRanges verifies the map's per-page min/max against a rescan of the
// set's actual bytes — the summaries must be exact, not merely conservative.
func zmCheckRanges(t *testing.T, set *core.LocalitySet, z *ZoneMap) {
	t.Helper()
	for _, num := range set.PageNums() {
		wantMin := map[int]uint64{}
		wantMax := map[int]uint64{}
		rows := 0
		p, err := set.Pin(num)
		if err != nil {
			t.Fatal(err)
		}
		err = WalkPage(p.Bytes(), func(rec []byte) error {
			for c, off := 0, 0; c < len(colWidths); c++ {
				var u uint64
				switch colWidths[c] {
				case 2:
					u = uint64(binary.LittleEndian.Uint16(rec[off:]))
				case 4:
					u = uint64(binary.LittleEndian.Uint32(rec[off:]))
				default:
					u = binary.LittleEndian.Uint64(rec[off:])
				}
				if rows == 0 || u < wantMin[c] {
					wantMin[c] = u
				}
				if rows == 0 || u > wantMax[c] {
					wantMax[c] = u
				}
				off += colWidths[c]
			}
			rows++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := set.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
		for c := range colWidths {
			lo, hi, ok := z.ColRangeU(num, c)
			if !ok {
				t.Fatalf("page %d col %d: no summary", num, c)
			}
			if lo != wantMin[c] || hi != wantMax[c] {
				t.Errorf("page %d col %d: summary [%d,%d], actual [%d,%d]", num, c, lo, hi, wantMin[c], wantMax[c])
			}
		}
	}
}

// TestZoneMapIncrementalMatchesRebuild: the append-time map (row and
// columnar writer hooks alike) carries exact per-page ranges, identical to
// what a from-scratch rebuild of the same set derives.
func TestZoneMapIncrementalMatchesRebuild(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		name := map[bool]string{false: "row", true: "columnar"}[columnar]
		t.Run(name, func(t *testing.T) {
			bp := newPool(t, 1<<20)
			spec := core.SetSpec{Name: "s", PageSize: 512}
			if columnar {
				spec.Layout = core.LayoutColumnar
				spec.Columns = colWidths
			}
			set, err := bp.CreateSet(spec)
			if err != nil {
				t.Fatal(err)
			}
			w := NewSeqWriter(set)
			z, err := AttachZoneMap(w, ZoneMapSpec{Schema: zmSchema(), BloomCols: []int{1}})
			if err != nil {
				t.Fatal(err)
			}
			const n = 400
			for i := 0; i < n; i++ {
				if err := w.Add(colRec(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if !z.Covers(set.NumPages()) {
				t.Fatalf("map covers %d of %d pages", z.NumPages(), set.NumPages())
			}
			zmCheckRanges(t, set, z)

			// A rebuild from the pages derives the same summaries.
			set.SetSideIndex(ZoneMapTag, nil)
			rebuilt, err := EnsureZoneMap(set, ZoneMapSpec{Schema: zmSchema(), BloomCols: []int{1}})
			if err != nil {
				t.Fatal(err)
			}
			if rebuilt == z {
				t.Fatal("EnsureZoneMap returned the detached map")
			}
			zmCheckRanges(t, set, rebuilt)

		})
	}
}

// TestZoneMapBloomExcludesSparseValues: with sparse equality-column values,
// the per-page bloom excludes most absent values that min/max alone cannot
// (they fall inside the page's range), never a present one, and survives a
// marshal/load round trip.
func TestZoneMapBloomExcludesSparseValues(t *testing.T) {
	spec := ZoneMapSpec{Schema: zmSchema(), BloomCols: []int{1}}
	z, err := NewZoneMap(spec)
	if err != nil {
		t.Fatal(err)
	}
	present := map[uint64]bool{}
	for i := 0; i < 40; i++ {
		rec := colRec(i)
		tag := uint16(i * 97)
		binary.LittleEndian.PutUint16(rec[4:6], tag)
		present[uint64(tag)] = true
		z.NoteAppend(0, rec)
	}
	loaded, err := LoadZoneMap(z.Marshal(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*ZoneMap{z, loaded} {
		lo, hi, ok := m.ColRangeU(0, 1)
		if !ok || lo != 0 || hi != 39*97 {
			t.Fatalf("tag range [%d,%d] ok=%v, want [0,%d]", lo, hi, ok, 39*97)
		}
		excluded, absent := 0, 0
		for v := lo; v <= hi; v++ {
			if present[v] {
				if !m.MayContain(0, 1, v) {
					t.Errorf("bloom excluded present tag %d", v)
				}
				continue
			}
			absent++
			if !m.MayContain(0, 1, v) {
				excluded++
			}
		}
		// 40 values in a 256-bit bloom: the false-positive rate is under 10%,
		// so the vast majority of absent in-range tags must be excluded.
		if excluded < absent/2 {
			t.Errorf("bloom excluded %d of %d absent in-range tags", excluded, absent)
		}
	}
}

// TestZoneMapPersistRoundTrip: Save/Load round-trips every summary; a stale
// side object (fewer pages than the set) is rejected by coverage and healed
// by rebuild; a reshaped spec is rejected by the header check.
func TestZoneMapPersistRoundTrip(t *testing.T) {
	bp := newPool(t, 1<<20)
	set := mkColSet(t, bp, "c", 512)
	w := NewSeqWriter(set)
	z, err := AttachZoneMap(w, ZoneMapSpec{Schema: zmSchema()})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := w.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := z.Save(set); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadZoneMap(z.Marshal(), ZoneMapSpec{Schema: zmSchema()})
	if err != nil {
		t.Fatal(err)
	}
	zmCheckRanges(t, set, loaded)
	set.SetSideIndex(ZoneMapTag, nil)
	ensured, err := EnsureZoneMap(set, ZoneMapSpec{Schema: zmSchema()})
	if err != nil {
		t.Fatal(err)
	}
	zmCheckRanges(t, set, ensured)

	// Reshaped spec: the persisted object no longer matches, Ensure rebuilds.
	set.SetSideIndex(ZoneMapTag, nil)
	reshaped := ZoneMapSpec{Schema: MakeSchema([]string{"key", "tag"}, []int{4, 2})}
	if _, err := LoadZoneMap(z.Marshal(), reshaped); err == nil {
		t.Error("loading under a reshaped spec must error")
	}
	if _, err := EnsureZoneMap(set, reshaped); err != nil {
		t.Fatalf("Ensure under reshaped spec: %v", err)
	}

	// Stale: persist a truncated map, append more pages, then Ensure must
	// rebuild to cover them.
	set2 := mkColSet(t, bp, "c2", 512)
	w2 := NewSeqWriter(set2)
	z2, err := AttachZoneMap(w2, ZoneMapSpec{Schema: zmSchema()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := w2.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := z2.Save(set2); err != nil {
		t.Fatal(err)
	}
	w2 = NewSeqWriter(set2)
	for i := 50; i < 300; i++ {
		if err := w2.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	set2.SetSideIndex(ZoneMapTag, nil)
	healed, err := EnsureZoneMap(set2, ZoneMapSpec{Schema: zmSchema()})
	if err != nil {
		t.Fatal(err)
	}
	if !healed.Covers(set2.NumPages()) {
		t.Errorf("healed map covers %d of %d pages", healed.NumPages(), set2.NumPages())
	}
	zmCheckRanges(t, set2, healed)
}

// TestEnsureZoneMapPropagatesReadFault is the regression test for the heal
// discipline: EnsureZoneMap must distinguish "no side object" and "corrupt
// side object" (both heal by rebuild) from a genuine I/O failure, which
// must surface to the caller. Before the fix, any read error fell through
// to rebuild-and-save — on a warm set the rebuild succeeded from resident
// pages, silently masking a failing drive and overwriting an object that
// may be intact on disk.
func TestEnsureZoneMapPropagatesReadFault(t *testing.T) {
	bp := newPool(t, 1<<20)
	set := mkColSet(t, bp, "c", 512)
	w := NewSeqWriter(set)
	z, err := AttachZoneMap(w, ZoneMapSpec{Schema: zmSchema()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := z.Save(set); err != nil {
		t.Fatal(err)
	}
	set.SetSideIndex(ZoneMapTag, nil)

	fault := errors.New("injected drive fault")
	bp.Array().Disk(0).SetReadFault(func() error { return fault })
	_, err = EnsureZoneMap(set, ZoneMapSpec{Schema: zmSchema()})
	bp.Array().Disk(0).SetReadFault(nil)
	if !errors.Is(err, fault) {
		t.Fatalf("EnsureZoneMap with a failing drive = %v, want the injected fault", err)
	}
	if got := bp.Stats().SideObjectRebuilds.Load(); got != 0 {
		t.Errorf("read fault counted %d side-object rebuilds, want 0", got)
	}
	// With the drive healthy again the persisted object loads as-is.
	healed, err := EnsureZoneMap(set, ZoneMapSpec{Schema: zmSchema()})
	if err != nil {
		t.Fatal(err)
	}
	zmCheckRanges(t, set, healed)
}

// TestEnsureZoneMapHealsCorruptObject: an undecodable or torn persisted
// object rebuilds (bumping the side-object rebuild counter) instead of
// erroring, and the healed summaries are exact.
func TestEnsureZoneMapHealsCorruptObject(t *testing.T) {
	bp := newPool(t, 1<<20)
	set := mkColSet(t, bp, "c", 512)
	w := NewSeqWriter(set)
	z, err := AttachZoneMap(w, ZoneMapSpec{Schema: zmSchema()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := z.Save(set); err != nil {
		t.Fatal(err)
	}

	// Undecodable payload inside a well-formed pfs frame.
	if err := set.WriteSideObject(ZoneMapTag, []byte("not a zone map")); err != nil {
		t.Fatal(err)
	}
	set.SetSideIndex(ZoneMapTag, nil)
	before := bp.Stats().SideObjectRebuilds.Load()
	healed, err := EnsureZoneMap(set, ZoneMapSpec{Schema: zmSchema()})
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.Stats().SideObjectRebuilds.Load(); got != before+1 {
		t.Errorf("undecodable object counted %d rebuilds, want %d", got, before+1)
	}
	zmCheckRanges(t, set, healed)

	// A torn pfs frame (crash mid-write) heals the same way.
	f, err := bp.Array().Disk(0).OpenFile(fmt.Sprintf("c.%d.%s", set.ID(), ZoneMapTag))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	set.SetSideIndex(ZoneMapTag, nil)
	before = bp.Stats().SideObjectRebuilds.Load()
	healed, err = EnsureZoneMap(set, ZoneMapSpec{Schema: zmSchema()})
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.Stats().SideObjectRebuilds.Load(); got != before+1 {
		t.Errorf("torn object counted %d rebuilds, want %d", got, before+1)
	}
	zmCheckRanges(t, set, healed)
}

// TestZoneMapConservativeEdges: untracked wide columns never prune, short
// records poison their page, and NaN floats poison only the float ranges.
func TestZoneMapConservativeEdges(t *testing.T) {
	// Wide (untracked) columns are carried but never answer.
	wide := ZoneMapSpec{Schema: MakeSchema([]string{"key", "blob"}, []int{4, 40})}
	z, err := NewZoneMap(wide)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 44)
	binary.LittleEndian.PutUint32(rec[0:4], 7)
	z.NoteAppend(0, rec)
	if lo, hi, ok := z.ColRangeU(0, 0); !ok || lo != 7 || hi != 7 {
		t.Errorf("tracked col: [%d,%d] ok=%v, want [7,7]", lo, hi, ok)
	}
	if _, _, ok := z.ColRangeU(0, 1); ok {
		t.Error("untracked 40-byte column answered a range query")
	}
	if !z.MayContain(0, 1, 0) {
		t.Error("untracked column excluded a value")
	}
	if _, err := NewZoneMap(ZoneMapSpec{Schema: wide.Schema, BloomCols: []int{1}}); err == nil {
		t.Error("bloom on an untracked column must error")
	}

	// A short record invalidates its page but keeps it covered.
	z2, err := NewZoneMap(ZoneMapSpec{Schema: zmSchema()})
	if err != nil {
		t.Fatal(err)
	}
	z2.NoteAppend(0, colRec(1))
	z2.NoteAppend(0, []byte{1, 2})
	if !z2.Covers(1) {
		t.Error("poisoned page lost coverage")
	}
	if _, _, ok := z2.ColRangeU(0, 0); ok {
		t.Error("poisoned page still answers range queries")
	}
	if !z2.MayContain(0, 0, 999) {
		t.Error("poisoned page excluded a value")
	}

	// NaN poisons the float interpretation, not the unsigned one.
	fspec := ZoneMapSpec{Schema: MakeSchema([]string{"f"}, []int{8})}
	z3, err := NewZoneMap(fspec)
	if err != nil {
		t.Fatal(err)
	}
	frec := func(f float64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, math.Float64bits(f))
		return b
	}
	z3.NoteAppend(0, frec(1.5))
	z3.NoteAppend(0, frec(math.NaN()))
	z3.NoteAppend(0, frec(-2.5))
	if _, _, ok := z3.ColRangeF64(0, 0); ok {
		t.Error("NaN page still answers float range queries")
	}
	if _, _, ok := z3.ColRangeU(0, 0); !ok {
		t.Error("NaN poisoned the unsigned interpretation too")
	}
	z3.NoteAppend(1, frec(1.5))
	z3.NoteAppend(1, frec(-2.5))
	if lo, hi, ok := z3.ColRangeF64(1, 0); !ok || lo != -2.5 || hi != 1.5 {
		t.Errorf("float range [%v,%v] ok=%v, want [-2.5,1.5]", lo, hi, ok)
	}
}
