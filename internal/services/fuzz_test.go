package services

import (
	"encoding/binary"
	"testing"
)

// fuzzZoneSpec is the fixed schema the zone-map fuzzer decodes against:
// two columns (u64 key, u32 value) with a bloom filter on the key.
func fuzzZoneSpec() ZoneMapSpec {
	return ZoneMapSpec{
		Schema:    MakeSchema([]string{"k", "v"}, []int{8, 4}),
		BloomCols: []int{0},
	}
}

// validColumnarSeed builds a well-formed two-column page with three rows.
func validColumnarSeed() []byte {
	widths := []int{4, 8}
	buf := make([]byte, 256)
	capacity := (len(buf) - columnarHeaderSize(len(widths))) / 12
	initColumnarPage(buf, widths, capacity)
	binary.LittleEndian.PutUint32(buf[8:12], 3) // nrows
	return buf
}

// overflowColumnarSeed reproduces the segment-size overflow: one column of
// width 0xFFFFFFFF in a page claiming 0xFFFFFFFF rows of capacity, whose
// capacity*width product wraps a 64-bit int to a negative segment end.
func overflowColumnarSeed() []byte {
	buf := make([]byte, 64)
	le := binary.LittleEndian
	le.PutUint32(buf[0:4], columnarMagic)
	le.PutUint32(buf[4:8], 1)         // ncols
	le.PutUint32(buf[8:12], 3)        // nrows
	le.PutUint32(buf[12:16], 1<<32-1) // capacity
	le.PutUint32(buf[16:20], 1<<32-1) // width
	return buf
}

// TestResetRejectsOverflowingSegments is the regression test for the
// capacity*width int overflow: before the 64-bit bound, this page passed
// validation with a wrapped segment end and Col(0) read far past the
// buffer.
func TestResetRejectsOverflowingSegments(t *testing.T) {
	var p ColumnarPage
	if err := p.Reset(overflowColumnarSeed()); err == nil {
		t.Fatal("Reset accepted a page whose segment sizes overflow int64")
	}
}

// FuzzColumnarPageReset throws arbitrary bytes at the columnar page
// decoder: it must either reject the buffer or yield a view whose every
// accessor stays in bounds.
func FuzzColumnarPageReset(f *testing.F) {
	f.Add(validColumnarSeed())
	f.Add(overflowColumnarSeed())
	f.Add([]byte{})
	f.Add([]byte{0xC1, 0x07, 0x7C, 0xC0}) // magic only, header truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		var p ColumnarPage
		if err := p.Reset(data); err != nil {
			return
		}
		// The view parsed: exercise every zero-copy accessor. Any panic
		// here is a decoder validation hole.
		var row []byte
		for c := 0; c < p.NumCols(); c++ {
			seg := p.Col(c)
			if len(seg) != p.NumRows()*p.Width(c) {
				t.Fatalf("column %d: %d bytes for %d rows of width %d",
					c, len(seg), p.NumRows(), p.Width(c))
			}
		}
		for i := 0; i < p.NumRows(); i++ {
			row = p.AppendRow(row[:0], i)
			if len(row) != p.RowSize() {
				t.Fatalf("row %d materialized to %d bytes, RowSize is %d", i, len(row), p.RowSize())
			}
		}
	})
}

// validZoneMapSeed marshals a real two-page map under fuzzZoneSpec.
func validZoneMapSeed(t testing.TB) []byte {
	z, err := NewZoneMap(fuzzZoneSpec())
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 12)
	for page := int64(0); page < 2; page++ {
		for r := 0; r < 4; r++ {
			binary.LittleEndian.PutUint64(rec[0:8], uint64(page*100+int64(r)))
			binary.LittleEndian.PutUint32(rec[8:12], uint32(r))
			z.NoteAppend(page, rec)
		}
	}
	return z.Marshal()
}

// hugePageCountSeed reproduces the npages overflow: a shape-correct header
// claiming 2^61 pages, whose need computation wrapped to a small number and
// sent the decode loop off the end of the buffer.
func hugePageCountSeed(t testing.TB) []byte {
	data := validZoneMapSeed(t)
	binary.LittleEndian.PutUint64(data[32:40], 1<<61)
	return data
}

// TestLoadZoneMapRejectsHugePageCount is the regression test for the
// npages size-computation overflow.
func TestLoadZoneMapRejectsHugePageCount(t *testing.T) {
	if _, err := LoadZoneMap(hugePageCountSeed(t), fuzzZoneSpec()); err == nil {
		t.Fatal("LoadZoneMap accepted a map claiming 2^61 pages")
	}
}

// TestZoneMapRoundTrip pins the happy path the fuzzer mutates from.
func TestZoneMapRoundTrip(t *testing.T) {
	z, err := LoadZoneMap(validZoneMapSeed(t), fuzzZoneSpec())
	if err != nil {
		t.Fatal(err)
	}
	if z.NumPages() != 2 {
		t.Fatalf("round-tripped map has %d pages, want 2", z.NumPages())
	}
	if lo, hi, ok := z.ColRangeU(1, 0); !ok || lo != 100 || hi != 103 {
		t.Fatalf("page 1 key range = [%d,%d] ok=%v, want [100,103]", lo, hi, ok)
	}
}

// fuzzMISpec is the fixed spec the microindex fuzzer decodes against: the
// zone-map fuzzer's two-column schema with postings on the key column.
func fuzzMISpec() MicroindexSpec {
	return MicroindexSpec{
		Schema: MakeSchema([]string{"k", "v"}, []int{8, 4}),
		Cols:   []int{0},
	}
}

// validMicroindexSeed marshals a real index under fuzzMISpec: two parsed
// pages plus one invalid page, so the fuzzer mutates coverage flags and
// posting lists from a shape that exercises both.
func validMicroindexSeed(t testing.TB) []byte {
	m, err := NewMicroindex(fuzzMISpec())
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 12)
	for page := int64(0); page < 2; page++ {
		for r := 0; r < 4; r++ {
			binary.LittleEndian.PutUint64(rec[0:8], uint64(page*100+int64(r)))
			binary.LittleEndian.PutUint32(rec[8:12], uint32(r))
			m.NoteAppend(page, rec)
		}
	}
	m.NoteAppend(2, rec[:4]) // short record: page 2 covered but invalid
	return m.Marshal()
}

// hugeMicroindexCountSeed is the count-overflow shape the decoder must
// bound before any size arithmetic: a well-formed object whose npages
// field claims 2^61 pages.
func hugeMicroindexCountSeed(t testing.TB) []byte {
	data := validMicroindexSeed(t)
	binary.LittleEndian.PutUint64(data[32:40], 1<<61)
	return data
}

// TestLoadMicroindexRejectsHugePageCount pins the npages bound.
func TestLoadMicroindexRejectsHugePageCount(t *testing.T) {
	if _, err := LoadMicroindex(hugeMicroindexCountSeed(t), fuzzMISpec()); err == nil {
		t.Fatal("LoadMicroindex accepted an index claiming 2^61 pages")
	}
}

// TestMicroindexSeedRoundTrip pins the happy path the fuzzer mutates from.
func TestMicroindexSeedRoundTrip(t *testing.T) {
	m, err := LoadMicroindex(validMicroindexSeed(t), fuzzMISpec())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPages() != 3 {
		t.Fatalf("round-tripped index has %d pages, want 3", m.NumPages())
	}
	if !m.Covers(3) || m.Covers(4) {
		t.Fatalf("coverage: Covers(3)=%v Covers(4)=%v, want true/false", m.Covers(3), m.Covers(4))
	}
	// Key 101 lives on page 1; invalid page 2 joins every lookup.
	if pages, ok := m.LookupPages(0, 101); !ok || len(pages) != 2 || pages[0] != 1 || pages[1] != 2 {
		t.Fatalf("LookupPages(0, 101) = %v ok=%v, want [1 2] true", pages, ok)
	}
}

// FuzzLoadMicroindex throws arbitrary bytes at the microindex side-object
// decoder: it must either reject the buffer or return an index whose
// lookups stay sorted and in bounds — the authoritative-semantics contract
// the query layer builds candidate page lists from.
func FuzzLoadMicroindex(f *testing.F) {
	f.Add(validMicroindexSeed(f))
	f.Add(hugeMicroindexCountSeed(f))
	f.Add([]byte{})
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadMicroindex(data, fuzzMISpec())
		if err != nil {
			return
		}
		for n := int64(-1); n < 5; n++ {
			m.Covers(n)
		}
		for _, v := range []uint64{0, 1, 101, ^uint64(0)} {
			for c := -1; c < 3; c++ {
				pages, ok := m.LookupPages(c, v)
				if !ok {
					if pages != nil {
						t.Fatalf("unindexed column %d answered %v", c, pages)
					}
					continue
				}
				for i := range pages {
					if pages[i] < 0 || (i > 0 && pages[i] <= pages[i-1]) {
						t.Fatalf("LookupPages(%d, %d) not strictly ascending: %v", c, v, pages)
					}
				}
			}
		}
		if _, lerr := LoadMicroindex(m.Marshal(), fuzzMISpec()); lerr != nil {
			t.Fatalf("re-marshal of an accepted index was rejected: %v", lerr)
		}
	})
}

// FuzzLoadZoneMap throws arbitrary bytes at the zone-map side-object
// decoder: it must either reject the buffer or return a usable map whose
// query methods stay in bounds.
func FuzzLoadZoneMap(f *testing.F) {
	f.Add(validZoneMapSeed(f))
	f.Add(hugePageCountSeed(f))
	f.Add([]byte{})
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		z, err := LoadZoneMap(data, fuzzZoneSpec())
		if err != nil {
			return
		}
		for n := int64(-1); n < 4; n++ {
			z.Covers(n)
			for c := 0; c < 2; c++ {
				z.ColRangeU(n, c)
				z.ColRangeF64(n, c)
				z.MayContain(n, c, 42)
			}
		}
		if len(z.Marshal()) == 0 && z.NumPages() > 0 {
			t.Fatal("non-empty map marshaled to zero bytes")
		}
	})
}
