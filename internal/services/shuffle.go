package services

import (
	"fmt"
	"sync"

	"pangea/internal/core"
)

// DefaultSmallPageSize is the default size of the small pages the shuffle
// service splits off a buffer-pool page — "several megabytes" in the paper;
// configurable per shuffle for the MB-scale experiments here.
const DefaultSmallPageSize = 1 << 20

// ShuffleSink manages one shuffle partition's locality set: a secondary,
// small-page allocator that pins a large buffer-pool page, splits it into
// small pages, and hands those to concurrent writer threads so multiple
// data streams for the same partition share one page (§8). The large page
// is unpinned only after all of its small pages are fully written.
type ShuffleSink struct {
	set       *core.LocalitySet
	smallSize int

	mu         sync.Mutex
	cur        *shufflePage
	nextRegion int
	perPage    int
}

type shufflePage struct {
	p       *core.Page
	refs    int  // small pages handed out and not yet released
	retired bool // no further regions will be split from this page
}

// NewShuffleSink attaches a small-page allocator to the partition's set.
// It stamps WritingPattern=concurrent-write, CurrentOperation=write.
func NewShuffleSink(set *core.LocalitySet, smallPageSize int) (*ShuffleSink, error) {
	if smallPageSize <= 0 {
		smallPageSize = DefaultSmallPageSize
	}
	perPage := regionsPerPage(set.PageSize(), smallPageSize)
	if perPage < 1 {
		return nil, fmt.Errorf("services: small page size %d exceeds page size %d", smallPageSize, set.PageSize())
	}
	set.SetWriting(core.ConcurrentWrite)
	set.SetCurrentOp(core.OpWrite)
	return &ShuffleSink{set: set, smallSize: smallPageSize, perPage: perPage}, nil
}

// Set returns the partition's locality set.
func (sk *ShuffleSink) Set() *core.LocalitySet { return sk.set }

// acquireRegion splits the next small page off the current large page,
// pinning a new large page when the current one is fully split.
func (sk *ShuffleSink) acquireRegion() (*shufflePage, int, error) {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.cur == nil || sk.nextRegion >= sk.perPage {
		if sk.cur != nil {
			sk.cur.retired = true
			if err := sk.maybeUnpinLocked(sk.cur); err != nil {
				return nil, 0, err
			}
		}
		p, err := sk.set.NewPage()
		if err != nil {
			return nil, 0, err
		}
		initPage(p.Bytes(), sk.smallSize)
		sk.cur = &shufflePage{p: p}
		sk.nextRegion = 0
	}
	off := pageHeaderSize + sk.nextRegion*sk.smallSize
	sk.nextRegion++
	sk.cur.refs++
	return sk.cur, off, nil
}

// releaseRegion records that a small page is fully written.
func (sk *ShuffleSink) releaseRegion(sp *shufflePage) error {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	sp.refs--
	return sk.maybeUnpinLocked(sp)
}

// maybeUnpinLocked unpins a large page once it is retired and all of its
// small pages are written.
func (sk *ShuffleSink) maybeUnpinLocked(sp *shufflePage) error {
	if sp.retired && sp.refs == 0 && sp.p != nil {
		p := sp.p
		sp.p = nil
		return sk.set.Unpin(p, true)
	}
	return nil
}

// Close retires the current large page. Every VirtualShuffleBuffer drawing
// from this sink must be closed first.
func (sk *ShuffleSink) Close() error {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.cur != nil {
		sk.cur.retired = true
		if err := sk.maybeUnpinLocked(sk.cur); err != nil {
			return err
		}
		sk.cur = nil
	}
	sk.set.SetCurrentOp(core.OpNone)
	return nil
}

// VirtualShuffleBuffer gives one writer thread transparent access to small
// pages of a partition (§8): it holds a pointer to the partition's
// small-page allocator and the offset in the small page currently in use by
// its thread. One buffer per (worker, partition).
type VirtualShuffleBuffer struct {
	sink *ShuffleSink
	sp   *shufflePage
	off  int
	end  int
	n    int64
}

// NewVirtualShuffleBuffer creates a writer-thread-local view of a sink.
func NewVirtualShuffleBuffer(sink *ShuffleSink) *VirtualShuffleBuffer {
	return &VirtualShuffleBuffer{sink: sink}
}

// Add appends one record to the partition.
func (b *VirtualShuffleBuffer) Add(rec []byte) error {
	if len(rec)+recHeaderSize > b.sink.smallSize {
		return fmt.Errorf("services: record of %d bytes exceeds small page size %d", len(rec), b.sink.smallSize)
	}
	for {
		if b.sp == nil {
			sp, off, err := b.sink.acquireRegion()
			if err != nil {
				return err
			}
			b.sp, b.off, b.end = sp, off, off+b.sink.smallSize
		}
		next, ok := appendRecord(b.sp.p.Bytes(), b.off, b.end, rec)
		if ok {
			b.off = next
			b.n++
			return nil
		}
		sp := b.sp
		b.sp = nil
		if err := b.sink.releaseRegion(sp); err != nil {
			return err
		}
	}
}

// Count returns the number of records this buffer has written.
func (b *VirtualShuffleBuffer) Count() int64 { return b.n }

// Close releases the buffer's current small page.
func (b *VirtualShuffleBuffer) Close() error {
	if b.sp == nil {
		return nil
	}
	sp := b.sp
	b.sp = nil
	return b.sink.releaseRegion(sp)
}

// Shuffle is the full shuffle service: one sink (and hence one locality
// set) per partition, so that spilled shuffle data produces at most
// numPartitions files instead of Spark's numCores × numPartitions (§9.2.2).
type Shuffle struct {
	sinks []*ShuffleSink
}

// NewShuffle creates one locality set per partition in the pool, named
// prefix-<partition>.
func NewShuffle(bp *core.BufferPool, prefix string, partitions int, pageSize int64, smallPageSize int) (*Shuffle, error) {
	sh := &Shuffle{}
	for i := 0; i < partitions; i++ {
		set, err := bp.CreateSet(core.SetSpec{
			Name:     fmt.Sprintf("%s-%d", prefix, i),
			PageSize: pageSize,
		})
		if err != nil {
			return nil, err
		}
		sink, err := NewShuffleSink(set, smallPageSize)
		if err != nil {
			return nil, err
		}
		sh.sinks = append(sh.sinks, sink)
	}
	return sh, nil
}

// Partitions returns the number of shuffle partitions.
func (sh *Shuffle) Partitions() int { return len(sh.sinks) }

// Sink returns the sink for one partition.
func (sh *Shuffle) Sink(partition int) *ShuffleSink { return sh.sinks[partition] }

// Writer returns a per-thread set of virtual shuffle buffers, one per
// partition.
func (sh *Shuffle) Writer() []*VirtualShuffleBuffer {
	out := make([]*VirtualShuffleBuffer, len(sh.sinks))
	for i, sk := range sh.sinks {
		out[i] = NewVirtualShuffleBuffer(sk)
	}
	return out
}

// CloseWriters closes a thread's buffers.
func CloseWriters(bufs []*VirtualShuffleBuffer) error {
	var first error
	for _, b := range bufs {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close retires all sinks; call after every writer thread has closed its
// buffers.
func (sh *Shuffle) Close() error {
	var first error
	for _, sk := range sh.sinks {
		if err := sk.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReadPartition scans one partition's records with numThreads workers via
// the sequential read service.
func (sh *Shuffle) ReadPartition(partition, numThreads int, fn func(rec []byte) error) error {
	return ScanSet(sh.sinks[partition].set, numThreads, func(_ int, rec []byte) error { return fn(rec) })
}
