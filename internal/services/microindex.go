package services

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"

	"pangea/internal/core"
	"pangea/internal/locking"
	"pangea/internal/pfs"
)

// Microindexes are per-set secondary indexes over designated columns: for
// each indexed column, a sorted map from column value to the list of pages
// holding at least one row with that value. Where a zone map is a
// conservative filter (a page it cannot exclude must still be visited), a
// microindex is authoritative — a covered lookup returns *every* page that
// may hold the value — so a point predicate gets an explicit candidate page
// list up front instead of testing every page's summary. On a non-clustered
// key column whose per-page blooms have saturated, that is the difference
// between visiting most of the set and visiting one page.
//
// Like zone maps, microindexes are built incrementally from the sequential
// writers' hooks (see AttachMicroindex), persisted as a per-set pfs side
// object, and healed by a full-scan rebuild when the persisted object is
// absent, torn, or stale. Authoritative semantics make coverage a
// correctness gate, not an optimization: the query layer consults a
// microindex only after Covers confirms every page of the set is described,
// and pages whose rows could not be parsed stay in every lookup result.

// MicroindexTag is the pfs side-object name microindexes persist under.
const MicroindexTag = "midx"

// MicroindexDefault reports whether loads should build microindexes by
// default, controlled by the PANGEA_MICROINDEX=1 environment toggle (CI
// runs the query and services suites under both values).
func MicroindexDefault() bool { return os.Getenv("PANGEA_MICROINDEX") == "1" }

// MicroindexSpec describes what a microindex covers: the fixed-width column
// schema (same shape rules as ZoneMapSpec), and which columns get posting
// lists. Indexed columns must have width 1/2/4/8 — an index over a payload
// blob has no value domain to key on.
type MicroindexSpec struct {
	Schema []ColumnSpec
	Cols   []int
}

// idxPage is one page's coverage slot. A page whose rows could not all be
// parsed (short record, shape mismatch) is marked invalid: it stays covered
// but is folded into every lookup result, because the index cannot vouch
// for what it holds.
type idxPage struct {
	rows  int64
	valid bool
}

// Microindex holds the per-column postings of one locality set.
type Microindex struct {
	widths  []int
	offsets []int
	rowSize int   // bytes of record prefix the schema addresses
	cols    []int // sorted indexed column indices
	colPos  map[int]int

	mu       locking.RWMutex
	pages    map[int64]*idxPage
	postings []map[uint64][]int64 // parallel to cols; page lists ascending
	invalid  []int64              // ascending pages with valid=false
}

// NewMicroindex builds an empty microindex for the given spec.
func NewMicroindex(spec MicroindexSpec) (*Microindex, error) {
	if len(spec.Schema) == 0 {
		return nil, fmt.Errorf("services: microindex needs a schema")
	}
	if len(spec.Cols) == 0 {
		return nil, fmt.Errorf("services: microindex needs at least one indexed column")
	}
	m := &Microindex{
		widths:  make([]int, len(spec.Schema)),
		offsets: make([]int, len(spec.Schema)),
		colPos:  make(map[int]int),
		pages:   make(map[int64]*idxPage),
	}
	m.mu.Init(locking.RankMicroindex)
	for i, c := range spec.Schema {
		if c.Width <= 0 {
			return nil, fmt.Errorf("services: microindex column %d has width %d", i, c.Width)
		}
		if c.Offset < 0 {
			return nil, fmt.Errorf("services: microindex column %d has offset %d", i, c.Offset)
		}
		m.widths[i], m.offsets[i] = c.Width, c.Offset
		if end := c.Offset + c.Width; end > m.rowSize {
			m.rowSize = end
		}
	}
	for _, c := range spec.Cols {
		if c < 0 || c >= len(spec.Schema) {
			return nil, fmt.Errorf("services: microindex column %d out of range [0,%d)", c, len(spec.Schema))
		}
		switch m.widths[c] {
		case 1, 2, 4, 8:
		default:
			return nil, fmt.Errorf("services: microindex column %d has width %d, want 1/2/4/8", c, m.widths[c])
		}
		if _, dup := m.colPos[c]; dup {
			continue
		}
		m.colPos[c] = len(m.cols)
		m.cols = append(m.cols, c)
	}
	sort.Ints(m.cols)
	for pos, c := range m.cols {
		m.colPos[c] = pos
	}
	m.postings = make([]map[uint64][]int64, len(m.cols))
	for i := range m.postings {
		m.postings[i] = make(map[uint64][]int64)
	}
	return m, nil
}

// matches reports whether the index was built for exactly this spec.
func (m *Microindex) matches(spec MicroindexSpec) bool {
	if len(spec.Schema) != len(m.widths) {
		return false
	}
	for i, c := range spec.Schema {
		if m.widths[i] != c.Width || m.offsets[i] != c.Offset {
			return false
		}
	}
	seen := make(map[int]bool, len(spec.Cols))
	for _, c := range spec.Cols {
		if _, ok := m.colPos[c]; !ok {
			return false
		}
		seen[c] = true
	}
	return len(seen) == len(m.cols)
}

// page returns (creating if asked) the coverage slot for pageNum. Caller
// holds m.mu.
func (m *Microindex) page(num int64, create bool) *idxPage {
	p := m.pages[num]
	if p == nil && create {
		p = &idxPage{valid: true}
		m.pages[num] = p
	}
	return p
}

// invalidate marks a page's rows unparseable: it stays covered but joins
// every lookup result. Caller holds m.mu.
func (m *Microindex) invalidate(num int64, p *idxPage) {
	if !p.valid {
		return
	}
	p.valid = false
	i := sort.Search(len(m.invalid), func(i int) bool { return m.invalid[i] >= num })
	if i < len(m.invalid) && m.invalid[i] == num {
		return
	}
	m.invalid = append(m.invalid, 0)
	copy(m.invalid[i+1:], m.invalid[i:])
	m.invalid[i] = num
}

// post records that page num holds value v in indexed-column slot pos,
// keeping each posting list ascending and deduplicated. Caller holds m.mu.
func (m *Microindex) post(pos int, v uint64, num int64) {
	list := m.postings[pos][v]
	if n := len(list); n > 0 && list[n-1] >= num {
		if list[n-1] == num {
			return // sequential writers restate a page's last value often
		}
		// Out-of-order note (a re-sealed earlier page): insert sorted.
		i := sort.Search(n, func(i int) bool { return list[i] >= num })
		if i < n && list[i] == num {
			return
		}
		list = append(list, 0)
		copy(list[i+1:], list[i:])
		list[i] = num
		m.postings[pos][v] = list
		return
	}
	m.postings[pos][v] = append(list, num)
}

// readU reads an indexed column's unsigned value out of a row record.
func (m *Microindex) readU(rec []byte, col int) uint64 {
	off := m.offsets[col]
	switch m.widths[col] {
	case 1:
		return uint64(rec[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(rec[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(rec[off:]))
	default:
		return binary.LittleEndian.Uint64(rec[off:])
	}
}

// NoteAppend folds one appended row record into the postings — the
// SeqWriter append hook. A record shorter than the schema's footprint
// invalidates the page (covered, but a candidate for every lookup).
func (m *Microindex) NoteAppend(pageNum int64, rec []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.page(pageNum, true)
	if len(rec) < m.rowSize {
		m.invalidate(pageNum, p)
		return
	}
	for pos, c := range m.cols {
		m.post(pos, m.readU(rec, c), pageNum)
	}
	p.rows++
}

// NoteColumnarPage folds one sealed columnar page into the postings — the
// ColumnarWriter seal hook and the vectorized path of rebuilds: each
// indexed column is a tight loop over its contiguous segment.
func (m *Microindex) NoteColumnarPage(pageNum int64, cp *ColumnarPage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.page(pageNum, true)
	n := cp.NumRows()
	if cp.NumCols() != len(m.widths) {
		m.invalidate(pageNum, p)
		return
	}
	for _, c := range m.cols {
		if cp.Width(c) != m.widths[c] {
			m.invalidate(pageNum, p)
			return
		}
	}
	for pos, c := range m.cols {
		seg := cp.Col(c)
		w := m.widths[c]
		for i := 0; i < n; i++ {
			var u uint64
			switch w {
			case 1:
				u = uint64(seg[i])
			case 2:
				u = uint64(binary.LittleEndian.Uint16(seg[i*2:]))
			case 4:
				u = uint64(binary.LittleEndian.Uint32(seg[i*4:]))
			default:
				u = binary.LittleEndian.Uint64(seg[i*8:])
			}
			m.post(pos, u, pageNum)
		}
	}
	p.rows = int64(n)
}

// NumPages returns how many pages have coverage slots.
func (m *Microindex) NumPages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// Covers reports whether every page 0..n-1 has a coverage slot — the gate
// the query layer checks before trusting lookups, since an authoritative
// index that misses a page would wrongly exclude it.
func (m *Microindex) Covers(n int64) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int64(len(m.pages)) < n {
		return false
	}
	for i := int64(0); i < n; i++ {
		if m.pages[i] == nil {
			return false
		}
	}
	return true
}

// LookupPages returns the ascending candidate pages that may hold value v
// in column col — the value's posting list plus every invalid page — and
// ok=false when the column is not indexed. The query layer's
// query.PointIndex surface.
func (m *Microindex) LookupPages(col int, v uint64) ([]int64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	pos, ok := m.colPos[col]
	if !ok {
		return nil, false
	}
	list := m.postings[pos][v]
	out := make([]int64, 0, len(list)+len(m.invalid))
	i, j := 0, 0
	for i < len(list) && j < len(m.invalid) {
		switch {
		case list[i] < m.invalid[j]:
			out = append(out, list[i])
			i++
		case list[i] > m.invalid[j]:
			out = append(out, m.invalid[j])
			j++
		default:
			out = append(out, list[i])
			i++
			j++
		}
	}
	out = append(out, list[i:]...)
	return append(out, m.invalid[j:]...), true
}

// --- persistence -------------------------------------------------------------

const (
	microindexMagic   = 0x58494D47 // "GMIX"
	microindexVersion = 1

	miValid = 1 // flags bit: page parsed cleanly, postings are authoritative
)

// Marshal serializes the index as the compact side object: a versioned
// header carrying the schema shape and indexed columns (so a stale or
// reshaped index is rejected on load), the per-page coverage records, then
// each indexed column's postings sorted by value.
func (m *Microindex) Marshal() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	nums := make([]int64, 0, len(m.pages))
	for n := range m.pages {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	size := 40 + 16*len(m.widths) + 8*len(m.cols) + 24*len(nums)
	for _, post := range m.postings {
		size += 8
		for _, list := range post {
			size += 16 + 8*len(list)
		}
	}
	buf := make([]byte, 0, size)
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(microindexMagic)
	put(microindexVersion)
	put(uint64(len(m.widths)))
	put(uint64(len(m.cols)))
	put(uint64(len(nums)))
	for i := range m.widths {
		put(uint64(m.widths[i]))
		put(uint64(m.offsets[i]))
	}
	for _, c := range m.cols {
		put(uint64(c))
	}
	for _, n := range nums {
		p := m.pages[n]
		put(uint64(n))
		put(uint64(p.rows))
		flags := uint64(0)
		if p.valid {
			flags |= miValid
		}
		put(flags)
	}
	for _, post := range m.postings {
		vals := make([]uint64, 0, len(post))
		for v := range post {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		put(uint64(len(vals)))
		for _, v := range vals {
			list := post[v]
			put(v)
			put(uint64(len(list)))
			for _, num := range list {
				put(uint64(num))
			}
		}
	}
	return buf
}

// LoadMicroindex parses a serialized microindex and verifies it was built
// for spec; a mismatch (schema evolved, indexed columns changed) is an
// error so callers rebuild instead of trusting stale shapes. Every count in
// the object is bounded against the bytes actually present before it enters
// size arithmetic or drives a loop, so a corrupt object errors instead of
// over-allocating or reading past the buffer.
func LoadMicroindex(data []byte, spec MicroindexSpec) (*Microindex, error) {
	m, err := NewMicroindex(spec)
	if err != nil {
		return nil, err
	}
	if len(data) < 40 {
		return nil, fmt.Errorf("services: microindex side object truncated (%d bytes)", len(data))
	}
	off := 0
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	if get() != microindexMagic {
		return nil, fmt.Errorf("services: bad microindex magic")
	}
	if v := get(); v != microindexVersion {
		return nil, fmt.Errorf("services: unsupported microindex version %d", v)
	}
	ncols, nidx, npages := int(get()), int(get()), int(get())
	if ncols != len(m.widths) || nidx != len(m.cols) {
		return nil, fmt.Errorf("services: microindex shape mismatch (%d cols, %d indexed)", ncols, nidx)
	}
	fixed := 40 + 16*ncols + 8*nidx
	if len(data) < fixed {
		return nil, fmt.Errorf("services: microindex schema section truncated (%d of %d bytes)", len(data), fixed)
	}
	if npages < 0 || npages > (len(data)-fixed)/24 {
		return nil, fmt.Errorf("services: microindex claims %d pages, %d bytes hold at most %d",
			npages, len(data), (len(data)-fixed)/24)
	}
	for i := 0; i < ncols; i++ {
		if w, o := int(get()), int(get()); w != m.widths[i] || o != m.offsets[i] {
			return nil, fmt.Errorf("services: microindex column %d is %d@%d, spec wants %d@%d", i, w, o, m.widths[i], m.offsets[i])
		}
	}
	for i := 0; i < nidx; i++ {
		if c := int(get()); c != m.cols[i] {
			return nil, fmt.Errorf("services: microindex indexed columns differ from spec")
		}
	}
	for i := 0; i < npages; i++ {
		num := int64(get())
		if num < 0 {
			return nil, fmt.Errorf("services: microindex page number %d out of range", num)
		}
		if m.pages[num] != nil {
			return nil, fmt.Errorf("services: microindex repeats page %d", num)
		}
		p := m.page(num, true)
		p.rows = int64(get())
		if get()&miValid == 0 {
			m.invalidate(num, p)
		}
	}
	for pos := range m.postings {
		if len(data)-off < 8 {
			return nil, fmt.Errorf("services: microindex postings truncated")
		}
		nvals := int(get())
		if nvals < 0 || nvals > (len(data)-off)/16 {
			return nil, fmt.Errorf("services: microindex claims %d values, %d bytes left", nvals, len(data)-off)
		}
		var prevVal uint64
		for i := 0; i < nvals; i++ {
			if len(data)-off < 16 {
				return nil, fmt.Errorf("services: microindex postings truncated")
			}
			v := get()
			if i > 0 && v <= prevVal {
				return nil, fmt.Errorf("services: microindex values out of order")
			}
			prevVal = v
			nlist := int(get())
			if nlist <= 0 || nlist > (len(data)-off)/8 {
				return nil, fmt.Errorf("services: microindex claims %d postings, %d bytes left", nlist, len(data)-off)
			}
			list := make([]int64, nlist)
			for j := range list {
				num := int64(get())
				if num < 0 || (j > 0 && num <= list[j-1]) {
					return nil, fmt.Errorf("services: microindex posting list malformed")
				}
				if m.pages[num] == nil {
					return nil, fmt.Errorf("services: microindex posting references uncovered page %d", num)
				}
				list[j] = num
			}
			m.postings[pos][v] = list
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("services: microindex has %d trailing bytes", len(data)-off)
	}
	return m, nil
}

// Save persists the index as the set's microindex side object.
func (m *Microindex) Save(set *core.LocalitySet) error {
	return set.WriteSideObject(MicroindexTag, m.Marshal())
}

// --- wiring ------------------------------------------------------------------

// AttachMicroindex wires incremental index maintenance into a sequential
// writer, chaining onto the same seal/append hooks a zone map uses — both
// side objects ride one writer. The index is registered under the set's
// microindex side-index key so point-lookup scans find it; call Save after
// the writer closes to persist it.
func AttachMicroindex(w *SeqWriter, spec MicroindexSpec) (*Microindex, error) {
	m, err := NewMicroindex(spec)
	if err != nil {
		return nil, err
	}
	if w.cw != nil {
		widths := w.set.ColumnWidths()
		if len(widths) != len(m.widths) {
			return nil, fmt.Errorf("services: microindex schema has %d columns, columnar set %q has %d",
				len(m.widths), w.set.Name(), len(widths))
		}
		for i, cw := range widths {
			if m.widths[i] != cw {
				return nil, fmt.Errorf("services: microindex column %d width %d, columnar set %q stores %d",
					i, m.widths[i], w.set.Name(), cw)
			}
		}
		w.cw.ChainOnSeal(m.NoteColumnarPage)
	} else {
		w.ChainOnAppend(m.NoteAppend)
	}
	w.set.SetSideIndex(MicroindexTag, m)
	return m, nil
}

// EnsureMicroindex returns a usable microindex for the set, mirroring
// EnsureZoneMap's heal discipline: the attached index if it matches the
// spec and covers every page; else the persisted side object if it decodes
// and covers; else a full-scan rebuild, persisted and attached before
// returning. Torn or undecodable objects count a side-object rebuild; a
// real read failure propagates instead of triggering a rebuild.
func EnsureMicroindex(set *core.LocalitySet, spec MicroindexSpec) (*Microindex, error) {
	n := set.NumPages()
	if m, ok := set.SideIndex(MicroindexTag).(*Microindex); ok && m.matches(spec) && m.Covers(n) {
		return m, nil
	}
	switch data, err := set.ReadSideObject(MicroindexTag); {
	case err == nil:
		if m, lerr := LoadMicroindex(data, spec); lerr != nil {
			set.NoteSideObjectRebuild()
		} else if m.Covers(n) {
			set.SetSideIndex(MicroindexTag, m)
			return m, nil
		}
	case errors.Is(err, pfs.ErrNoSideObject):
		// Never written (seed set): plain rebuild.
	case errors.Is(err, pfs.ErrCorruptSideObject):
		set.NoteSideObjectRebuild()
	default:
		return nil, fmt.Errorf("services: read microindex of %q: %w", set.Name(), err)
	}
	m, err := NewMicroindex(spec)
	if err != nil {
		return nil, err
	}
	if err := rebuildFromScan(set, n, m.NoteColumnarPage, m.NoteAppend); err != nil {
		return nil, fmt.Errorf("services: rebuild microindex of %q: %w", set.Name(), err)
	}
	if err := m.Save(set); err != nil {
		return nil, err
	}
	set.SetSideIndex(MicroindexTag, m)
	return m, nil
}
