package services

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"pangea/internal/core"
)

// colSchema is the test schema: u32 key, u16 tag, f64-sized payload.
var colWidths = []int{4, 2, 8}

func colRec(i int) []byte {
	r := make([]byte, 14)
	binary.LittleEndian.PutUint32(r[0:4], uint32(i))
	binary.LittleEndian.PutUint16(r[4:6], uint16(i%251))
	binary.LittleEndian.PutUint64(r[6:14], uint64(i)*3)
	return r
}

func mkColSet(t *testing.T, bp *core.BufferPool, name string, pageSize int64) *core.LocalitySet {
	t.Helper()
	s, err := bp.CreateSet(core.SetSpec{
		Name: name, PageSize: pageSize,
		Layout: core.LayoutColumnar, Columns: colWidths,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestColumnarRoundTrip: records written through the layout-dispatching
// SeqWriter come back identically via the column-slice decode and via the
// row-compatible WalkPage, and the column vectors hold the transposed
// values.
func TestColumnarRoundTrip(t *testing.T) {
	bp := newPool(t, 1<<20)
	s := mkColSet(t, bp, "c", 512) // small pages force several
	const n = 300
	w := NewSeqWriter(s)
	for i := 0; i < n; i++ {
		if err := w.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != n {
		t.Fatalf("writer count %d, want %d", w.Count(), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if s.NumPages() < 2 {
		t.Fatalf("%d pages, want several", s.NumPages())
	}

	// Column-slice decode, page by page.
	var fromCols [][]byte
	for _, num := range s.PageNums() {
		p, err := s.Pin(num)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := OpenColumnarPage(p.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if cp.NumCols() != len(colWidths) || cp.RowSize() != 14 {
			t.Fatalf("page shape %d cols / %d-byte rows", cp.NumCols(), cp.RowSize())
		}
		keys, tags, vals := cp.Col(0), cp.Col(1), cp.Col(2)
		for i := 0; i < cp.NumRows(); i++ {
			rec := make([]byte, 0, 14)
			rec = append(rec, keys[i*4:i*4+4]...)
			rec = append(rec, tags[i*2:i*2+2]...)
			rec = append(rec, vals[i*8:i*8+8]...)
			if got := cp.AppendRow(nil, i); !bytes.Equal(got, rec) {
				t.Fatalf("AppendRow %d = %x, want column concatenation %x", i, got, rec)
			}
			fromCols = append(fromCols, rec)
		}
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}

	// Row-compatible decode through ScanSet/WalkPage.
	var fromRows [][]byte
	if err := ScanSet(s, 1, func(_ int, rec []byte) error {
		fromRows = append(fromRows, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(fromCols) != n || len(fromRows) != n {
		t.Fatalf("decoded %d columnar / %d row records, want %d", len(fromCols), len(fromRows), n)
	}
	seen := make(map[uint32]bool)
	for i := range fromRows {
		if !bytes.Equal(fromRows[i], fromCols[i]) {
			t.Fatalf("record %d: row decode %x != columnar decode %x", i, fromRows[i], fromCols[i])
		}
		seen[binary.LittleEndian.Uint32(fromRows[i][0:4])] = true
	}
	for i := 0; i < n; i++ {
		if !seen[uint32(i)] {
			t.Fatalf("record %d missing after round-trip", i)
		}
	}
}

// TestColumnarWriterRejectsWrongSize: only exact schema-width records fit.
func TestColumnarWriterRejectsWrongSize(t *testing.T) {
	bp := newPool(t, 1<<20)
	s := mkColSet(t, bp, "c", 4096)
	w := NewSeqWriter(s)
	defer func() { _ = w.Close() }()
	if err := w.Add(make([]byte, 13)); err == nil {
		t.Error("13-byte record accepted into a 14-byte-row schema")
	}
	if err := w.Add(colRec(1)); err != nil {
		t.Fatal(err)
	}
}

// TestNewColumnarWriterRequiresColumnarSet: the explicit constructor
// refuses row-layout sets.
func TestNewColumnarWriterRequiresColumnarSet(t *testing.T) {
	bp := newPool(t, 1<<20)
	s := mkSet(t, bp, "row", 4096)
	if _, err := NewColumnarWriter(s); err == nil {
		t.Error("columnar writer attached to a row-layout set")
	}
}

// TestMixedLayoutsInOnePool: a row set and a columnar set coexist in one
// pool; each scan sees exactly its own records with its own framing.
func TestMixedLayoutsInOnePool(t *testing.T) {
	bp := newPool(t, 1<<20)
	rowSet := mkSet(t, bp, "rows", 2048)
	colSet := mkColSet(t, bp, "cols", 2048)
	const n = 200
	var rowRecs, colRecs [][]byte
	for i := 0; i < n; i++ {
		rowRecs = append(rowRecs, []byte(fmt.Sprintf("row-%04d", i)))
		colRecs = append(colRecs, colRec(i))
	}
	if err := WriteAll(rowSet, rowRecs); err != nil {
		t.Fatal(err)
	}
	if err := WriteAll(colSet, colRecs); err != nil {
		t.Fatal(err)
	}
	count := func(s *core.LocalitySet, want []byte) int {
		got := 0
		if err := ScanSet(s, 2, func(_ int, rec []byte) error {
			if len(rec) == len(want) {
				got++
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if got := count(rowSet, rowRecs[0]); got != n {
		t.Errorf("row set scan saw %d records, want %d", got, n)
	}
	if got := count(colSet, colRecs[0]); got != n {
		t.Errorf("columnar set scan saw %d records, want %d", got, n)
	}
	for _, num := range colSet.PageNums() {
		p, err := colSet.Pin(num)
		if err != nil {
			t.Fatal(err)
		}
		if !IsColumnarPage(p.Bytes()) {
			t.Errorf("columnar set page %d not columnar", num)
		}
		_ = colSet.Unpin(p, false)
	}
	for _, num := range rowSet.PageNums() {
		p, err := rowSet.Pin(num)
		if err != nil {
			t.Fatal(err)
		}
		if IsColumnarPage(p.Bytes()) {
			t.Errorf("row set page %d claims to be columnar", num)
		}
		_ = rowSet.Unpin(p, false)
	}
}

// TestColumnarSpillReload: columnar pages written through a pool too small
// to hold them are spilled by the evictor and read back intact — the pages
// are self-describing, so reload needs no side state.
func TestColumnarSpillReload(t *testing.T) {
	bp := newPool(t, 256<<10) // 64 pages of 4 KiB; data is ~3x that
	s := mkColSet(t, bp, "c", 4096)
	const n = 50000 // ~700 KiB of 14-byte rows
	w := NewSeqWriter(s)
	for i := 0; i < n; i++ {
		if err := w.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if bp.Stats().Spills.Load() == 0 {
		t.Fatal("no spills: the pool was not under pressure, test proves nothing")
	}
	base := bp.Stats().Loads.Load()
	var sum uint64
	got := 0
	if err := ScanSet(s, 2, func(_ int, rec []byte) error {
		sum += uint64(binary.LittleEndian.Uint32(rec[0:4]))
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("reloaded scan saw %d records, want %d", got, n)
	}
	var want uint64
	for i := 0; i < n; i++ {
		want += uint64(i)
	}
	if sum != want {
		t.Fatalf("key sum %d after spill/reload, want %d", sum, want)
	}
	if bp.Stats().Loads.Load() == base {
		t.Error("scan never read from disk: spilled pages were not reloaded")
	}
}

// TestColumnarOnSealHook: the writer's seal hook sees every page, pinned
// and fully described — the surface the zone-map roadmap item builds on.
func TestColumnarOnSealHook(t *testing.T) {
	bp := newPool(t, 1<<20)
	s := mkColSet(t, bp, "c", 512)
	w, err := NewColumnarWriter(s)
	if err != nil {
		t.Fatal(err)
	}
	rowsSeen := 0
	pages := 0
	w.OnSeal = func(num int64, p *ColumnarPage) {
		pages++
		rowsSeen += p.NumRows()
		// A min over a column vector — what a zone-map builder would do.
		keys := p.Col(0)
		for i := 0; i < p.NumRows(); i++ {
			_ = binary.LittleEndian.Uint32(keys[i*4:])
		}
	}
	const n = 123
	for i := 0; i < n; i++ {
		if err := w.Add(colRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if int64(pages) != s.NumPages() {
		t.Errorf("hook saw %d pages, set has %d", pages, s.NumPages())
	}
	if rowsSeen != n {
		t.Errorf("hook saw %d rows, want %d", rowsSeen, n)
	}
}
