package services

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"pangea/internal/core"
	"pangea/internal/disk"
)

func newPool(t *testing.T, mem int64) *core.BufferPool {
	t.Helper()
	arr, err := disk.NewArray(t.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	bp, err := core.NewPool(core.PoolConfig{Memory: mem, Array: arr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	return bp
}

func mkSet(t *testing.T, bp *core.BufferPool, name string, pageSize int64) *core.LocalitySet {
	t.Helper()
	s, err := bp.CreateSet(core.SetSpec{Name: name, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRecordFramingRoundTrip(t *testing.T) {
	buf := make([]byte, 4096)
	initPage(buf, 4096-pageHeaderSize)
	recs := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), {}, []byte("end")}
	off := pageHeaderSize
	for _, r := range recs[:3] {
		var ok bool
		off, ok = appendRecord(buf, off, len(buf), r)
		if !ok {
			t.Fatalf("append %q failed", r)
		}
	}
	var got [][]byte
	if err := WalkPage(buf, func(rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records, want 3", len(got))
	}
	for i, r := range recs[:3] {
		if !bytes.Equal(got[i], r) {
			t.Errorf("record %d = %q, want %q", i, got[i], r)
		}
	}
}

func TestAppendRecordRejectsOverflow(t *testing.T) {
	buf := make([]byte, 64)
	initPage(buf, 64-pageHeaderSize)
	_, ok := appendRecord(buf, pageHeaderSize, len(buf), make([]byte, 61))
	if ok {
		t.Error("record larger than region must be rejected")
	}
}

func TestSequentialWriteReadRoundTrip(t *testing.T) {
	bp := newPool(t, 1<<20)
	s := mkSet(t, bp, "s", 4096)
	const n = 500
	w := NewSeqWriter(s)
	for i := 0; i < n; i++ {
		if err := w.Add([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != n {
		t.Errorf("Count = %d, want %d", w.Count(), n)
	}
	// Attribute inference (§3.2): writer stamped sequential-write.
	if a := s.Attrs(); a.Writing != core.SequentialWrite {
		t.Errorf("Writing = %v, want sequential-write", a.Writing)
	}

	seen := make([]bool, n)
	var mu sync.Mutex
	if err := ScanSet(s, 4, func(_ int, rec []byte) error {
		var i int
		if _, err := fmt.Sscanf(string(rec), "record-%d", &i); err != nil {
			return err
		}
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("record %d missing from scan", i)
		}
	}
	if a := s.Attrs(); a.Reading != core.SequentialRead {
		t.Errorf("Reading = %v, want sequential-read", a.Reading)
	}
}

func TestSequentialSpillAndRescan(t *testing.T) {
	// Working set exceeds memory: pages spill under the data-aware policy
	// and every record still comes back on re-scan (×5 like Fig 7's test).
	bp := newPool(t, 8*4096)
	s := mkSet(t, bp, "big", 4096)
	const n = 20000
	w := NewSeqWriter(s)
	for i := 0; i < n; i++ {
		if err := w.Add([]byte(fmt.Sprintf("%08d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if bp.Stats().Evictions.Load() == 0 {
		t.Fatal("expected spills for oversized working set")
	}
	for iter := 0; iter < 5; iter++ {
		var count int64
		var mu sync.Mutex
		if err := ScanSet(s, 2, func(_ int, rec []byte) error {
			mu.Lock()
			count++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("iteration %d: scanned %d records, want %d", iter, count, n)
		}
	}
}

func TestSeqWriterRejectsOversizedRecord(t *testing.T) {
	bp := newPool(t, 1<<20)
	s := mkSet(t, bp, "s", 256)
	w := NewSeqWriter(s)
	if err := w.Add(make([]byte, 256)); err == nil {
		t.Error("record exceeding page size must be rejected")
	}
	_ = w.Close()
}

func TestPageIteratorsCoverAllPagesDisjointly(t *testing.T) {
	bp := newPool(t, 1<<20)
	s := mkSet(t, bp, "s", 512)
	w := NewSeqWriter(s)
	for i := 0; i < 300; i++ {
		if err := w.Add([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Close()
	total := s.NumPages()
	for _, nThreads := range []int{1, 3, 7} {
		iters := PageIterators(s, nThreads)
		seen := make(map[int64]int)
		for _, it := range iters {
			for {
				p, err := it.Next()
				if err != nil {
					t.Fatal(err)
				}
				if p == nil {
					break
				}
				seen[p.Num()]++
				_ = it.Release(p)
			}
		}
		if int64(len(seen)) != total {
			t.Errorf("n=%d: covered %d pages, want %d", nThreads, len(seen), total)
		}
		for num, c := range seen {
			if c != 1 {
				t.Errorf("n=%d: page %d visited %d times", nThreads, num, c)
			}
		}
	}
}

func TestShuffleConcurrentWritersOnePartition(t *testing.T) {
	bp := newPool(t, 4<<20)
	sh, err := NewShuffle(bp, "shuf", 4, 256<<10, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perWriter = 1000
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			bufs := sh.Writer()
			for i := 0; i < perWriter; i++ {
				rec := []byte(fmt.Sprintf("w%d-%06d", wtr, i))
				part := int(fnv1a(rec) % 4)
				if err := bufs[part].Add(rec); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
			if err := CloseWriters(bufs); err != nil {
				t.Errorf("close: %v", err)
			}
		}(wtr)
	}
	wg.Wait()
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	// Attribute inference: shuffle stamps concurrent-write.
	if a := sh.Sink(0).Set().Attrs(); a.Writing != core.ConcurrentWrite {
		t.Errorf("Writing = %v, want concurrent-write", a.Writing)
	}
	// Every record must land in exactly the partition its hash names.
	var total int
	for p := 0; p < 4; p++ {
		if err := sh.ReadPartition(p, 2, func(rec []byte) error {
			if int(fnv1a(rec)%4) != p {
				t.Errorf("record %q found in wrong partition %d", rec, p)
			}
			total++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if total != writers*perWriter {
		t.Errorf("read %d records, want %d", total, writers*perWriter)
	}
}

func TestShuffleSpillsWithOneFilePerPartition(t *testing.T) {
	// Shuffle data exceeding memory produces at most numPartitions spill
	// files (one locality set per partition), not numCores×numPartitions.
	bp := newPool(t, 256<<10)
	sh, err := NewShuffle(bp, "s", 2, 32<<10, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	bufs := sh.Writer()
	rec := make([]byte, 100)
	for i := 0; i < 20000; i++ {
		binary.LittleEndian.PutUint64(rec, uint64(i))
		if err := bufs[i%2].Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	_ = CloseWriters(bufs)
	_ = sh.Close()
	if bp.Stats().Spills.Load() == 0 {
		t.Fatal("expected shuffle spills")
	}
	var count int
	for p := 0; p < 2; p++ {
		if err := sh.ReadPartition(p, 1, func([]byte) error { count++; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if count != 20000 {
		t.Errorf("read back %d records, want 20000", count)
	}
}

func TestHashBufferAggregatesInMemory(t *testing.T) {
	bp := newPool(t, 4<<20)
	s := mkSet(t, bp, "agg", 64<<10)
	h, err := NewInt64HashBuffer(s, 4, Sum)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9000; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i%300))
		if err := h.Upsert(key, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Attribute inference: hash service stamps random patterns.
	if a := s.Attrs(); a.Writing != core.RandomMutableWrite || a.Reading != core.RandomRead {
		t.Errorf("attrs = %+v, want random-mutable-write/random-read", a)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("distinct keys = %d, want 300", len(got))
	}
	for k, v := range got {
		if v != 30 {
			t.Errorf("%s = %d, want 30", k, v)
		}
	}
}

func TestHashBufferSpillsAndReAggregates(t *testing.T) {
	// Many distinct keys force page splits and spills; Result must merge
	// partial aggregates from spilled pages.
	bp := newPool(t, 256<<10)
	s := mkSet(t, bp, "agg", 16<<10)
	h, err := NewInt64HashBuffer(s, 2, Sum)
	if err != nil {
		t.Fatal(err)
	}
	const distinct = 8000
	for round := 0; round < 2; round++ {
		for i := 0; i < distinct; i++ {
			if err := h.Upsert([]byte(fmt.Sprintf("k%06d", i)), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if bp.Stats().Spills.Load() == 0 {
		t.Fatal("expected hash pages to spill")
	}
	got, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != distinct {
		t.Fatalf("distinct keys = %d, want %d", len(got), distinct)
	}
	for k, v := range got {
		if v != 2 {
			t.Fatalf("%s = %d, want 2", k, v)
		}
	}
}

func TestHashBufferFindActivePage(t *testing.T) {
	bp := newPool(t, 1<<20)
	s := mkSet(t, bp, "f", 32<<10)
	h, _ := NewInt64HashBuffer(s, 1, Sum)
	_ = h.Upsert([]byte("a"), 7)
	_ = h.Upsert([]byte("a"), 5)
	if v, ok := h.Find([]byte("a")); !ok || v != 12 {
		t.Errorf("Find(a) = %d,%v want 12,true", v, ok)
	}
	if _, ok := h.Find([]byte("missing")); ok {
		t.Error("Find(missing) should be false")
	}
	_ = h.Close()
}

func TestHashBufferPropertySumMatchesMap(t *testing.T) {
	bp := newPool(t, 4<<20)
	idx := 0
	f := func(keys []uint8, vals []int16) bool {
		idx++
		s := mkSet(t, bp, fmt.Sprintf("prop-%d", idx), 32<<10)
		h, err := NewInt64HashBuffer(s, 3, Sum)
		if err != nil {
			return false
		}
		want := make(map[string]int64)
		for i, k := range keys {
			v := int64(1)
			if i < len(vals) {
				v = int64(vals[i])
			}
			key := fmt.Sprintf("k%d", k)
			want[key] += v
			if err := h.Upsert([]byte(key), v); err != nil {
				return false
			}
		}
		if err := h.Close(); err != nil {
			return false
		}
		got, err := h.Result()
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		_ = bp.DropSet(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJoinMapProbe(t *testing.T) {
	bp := newPool(t, 1<<20)
	s := mkSet(t, bp, "jm", 4096)
	m := NewJoinMap(s)
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("k%02d", i%20))
		if err := m.Insert(key, []byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	if m.Keys() != 20 || m.Len() != 200 {
		t.Errorf("Keys=%d Len=%d, want 20, 200", m.Keys(), m.Len())
	}
	var hits int
	if err := m.Probe([]byte("k03"), func(payload []byte) error {
		hits++
		var i int
		if _, err := fmt.Sscanf(string(payload), "payload-%d", &i); err != nil {
			return err
		}
		if i%20 != 3 {
			t.Errorf("payload %q under wrong key", payload)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if hits != 10 {
		t.Errorf("hits = %d, want 10", hits)
	}
	if err := m.Probe([]byte("absent"), func([]byte) error {
		t.Error("probe of absent key must not call fn")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinMapProbeAfterSpill(t *testing.T) {
	bp := newPool(t, 64<<10)
	s := mkSet(t, bp, "jm", 8<<10)
	m := NewJoinMap(s)
	payload := make([]byte, 128)
	for i := 0; i < 2000; i++ {
		binary.LittleEndian.PutUint64(payload, uint64(i))
		if err := m.Insert([]byte(fmt.Sprintf("key-%04d", i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	if bp.Stats().Spills.Load() == 0 {
		t.Fatal("expected join map pages to spill")
	}
	for _, i := range []int{0, 517, 1999} {
		var got uint64
		var hits int
		if err := m.Probe([]byte(fmt.Sprintf("key-%04d", i)), func(p []byte) error {
			got = binary.LittleEndian.Uint64(p)
			hits++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if hits != 1 || got != uint64(i) {
			t.Errorf("probe %d: hits=%d got=%d", i, hits, got)
		}
	}
}

func TestBuildBroadcastMap(t *testing.T) {
	bp := newPool(t, 1<<20)
	src := mkSet(t, bp, "src", 4096)
	var recs [][]byte
	for i := 0; i < 100; i++ {
		recs = append(recs, []byte(fmt.Sprintf("%02d:value-%03d", i%10, i)))
	}
	if err := WriteAll(src, recs); err != nil {
		t.Fatal(err)
	}
	dst := mkSet(t, bp, "bcast", 4096)
	m, err := BuildBroadcastMap(src, dst, func(rec []byte) ([]byte, error) {
		return rec[:2], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Keys() != 10 || m.Len() != 100 {
		t.Errorf("Keys=%d Len=%d, want 10, 100", m.Keys(), m.Len())
	}
	var hits int
	_ = m.Probe([]byte("07"), func(payload []byte) error { hits++; return nil })
	if hits != 10 {
		t.Errorf("hits = %d, want 10", hits)
	}
}

func TestFnv1aDistribution(t *testing.T) {
	buckets := make([]int, 8)
	for i := 0; i < 8000; i++ {
		buckets[fnv1a([]byte(fmt.Sprintf("key-%d", i)))%8]++
	}
	for b, c := range buckets {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d has %d keys; hash badly skewed", b, c)
		}
	}
}
