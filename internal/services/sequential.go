package services

import (
	"fmt"
	"sync"

	"pangea/internal/core"
)

// SeqWriter is the sequential write service (§8): a sequential allocator
// that carves record space from the current page of a locality set and pins
// a fresh page when the current one fills. One SeqWriter per thread; each
// thread writes to its own page, as the paper prescribes.
//
// Attaching a SeqWriter stamps WritingPattern=sequential-write and
// CurrentOperation=write on the set (§3.2).
type SeqWriter struct {
	set  *core.LocalitySet
	page *core.Page
	off  int
	end  int
	n    int64 // records written

	// cw handles sets declared LayoutColumnar: Add transposes into column
	// segments instead of framing records, so every row-API producer
	// (WriteAll, the cluster data proxy, query.Materialize) writes
	// whichever layout the set was created with.
	cw *ColumnarWriter

	// OnAppend, when set, is called after each record lands in a row page,
	// with the page's number and the record bytes — the row-path append
	// hook zone maps fold per-page summaries through, the counterpart of
	// ColumnarWriter.OnSeal. Not called for columnar sets (attach to the
	// seal hook instead; AttachZoneMap wires whichever applies).
	OnAppend func(pageNum int64, rec []byte)
}

// ChainOnAppend adds fn to the writer's row-append hook, running after any
// hook already attached — the row-path counterpart of
// ColumnarWriter.ChainOnSeal, so a zone map and a microindex can both ride
// the same writer.
func (w *SeqWriter) ChainOnAppend(fn func(pageNum int64, rec []byte)) {
	if prev := w.OnAppend; prev != nil {
		w.OnAppend = func(num int64, rec []byte) {
			prev(num, rec)
			fn(num, rec)
		}
	} else {
		w.OnAppend = fn
	}
}

// NewSeqWriter attaches a sequential allocator to the set.
func NewSeqWriter(set *core.LocalitySet) *SeqWriter {
	set.SetWriting(core.SequentialWrite)
	set.SetCurrentOp(core.OpWrite)
	w := &SeqWriter{set: set}
	if set.Layout() == core.LayoutColumnar {
		w.cw = newColumnarWriter(set)
	}
	return w
}

// Add appends one record to the set.
func (w *SeqWriter) Add(rec []byte) error {
	if w.cw != nil {
		return w.cw.Add(rec)
	}
	if int64(len(rec)+recHeaderSize+pageHeaderSize) > w.set.PageSize() {
		return fmt.Errorf("services: record of %d bytes exceeds page size %d", len(rec), w.set.PageSize())
	}
	for {
		if w.page == nil {
			p, err := w.set.NewPage()
			if err != nil {
				return err
			}
			initPage(p.Bytes(), int(w.set.PageSize())-pageHeaderSize)
			w.page, w.off, w.end = p, pageHeaderSize, int(w.set.PageSize())
		}
		next, ok := appendRecord(w.page.Bytes(), w.off, w.end, rec)
		if ok {
			w.off = next
			w.n++
			if w.OnAppend != nil {
				w.OnAppend(w.page.Num(), rec)
			}
			return nil
		}
		if err := w.set.Unpin(w.page, true); err != nil {
			return err
		}
		w.page = nil
	}
}

// Count returns the number of records written so far.
func (w *SeqWriter) Count() int64 {
	if w.cw != nil {
		return w.cw.Count()
	}
	return w.n
}

// Close releases the current page and clears the set's current operation.
func (w *SeqWriter) Close() error {
	if w.cw != nil {
		return w.cw.Close()
	}
	var err error
	if w.page != nil {
		err = w.set.Unpin(w.page, true)
		w.page = nil
	}
	w.set.SetCurrentOp(core.OpNone)
	return err
}

// PageIterator scans a stripe of a locality set's pages. Obtain one per
// worker thread from PageIterators; each Next pins a page that the caller
// must release with Release (or by unpinning directly).
type PageIterator struct {
	set  *core.LocalitySet
	nums []int64
	i    int
	ra   int // read-ahead window (pages), resolved once at construction
}

// PageIterators is the sequential read service's entry point (§8): it
// returns n concurrent iterators that partition the set's pages in stripes,
// and stamps ReadingPattern=sequential-read, CurrentOperation=read on the
// set. The stamp makes the buffer pool prefetch ahead of each stripe (see
// PoolConfig.ReadAhead): as an iterator advances it hints the next pages of
// its own stripe, so the drives read tomorrow's pages while the worker
// computes over today's — pin misses on a warm window become hits.
func PageIterators(set *core.LocalitySet, n int) []*PageIterator {
	return PageIteratorsFor(set, set.PageNums(), n)
}

// PageIteratorsFor is PageIterators over an explicit page list — the entry
// point for predicate scans whose zone map already pruned some pages: the
// stripes, and therefore every read-ahead hint they issue, cover only the
// listed pages.
func PageIteratorsFor(set *core.LocalitySet, all []int64, n int) []*PageIterator {
	if n < 1 {
		n = 1
	}
	set.SetReading(core.SequentialRead)
	set.SetCurrentOp(core.OpRead)
	ra := set.ReadAhead()
	iters := make([]*PageIterator, n)
	for k := 0; k < n; k++ {
		var nums []int64
		for i := k; i < len(all); i += n {
			nums = append(nums, all[i])
		}
		iters[k] = &PageIterator{set: set, nums: nums, ra: ra}
	}
	return iters
}

// Next pins and returns the iterator's next page, or nil at the end of the
// stripe.
func (it *PageIterator) Next() (*core.Page, error) {
	if it.i >= len(it.nums) {
		return nil, nil
	}
	if it.ra > 0 {
		// Hint the window ahead of the cursor within this stripe, every step:
		// the hints dedupe against resident and in-flight pages, so a warm
		// window costs a few map lookups, while pages whose earlier hint was
		// starved of memory get retried as the evictor frees frames up.
		lo, hi := it.i+1, it.i+1+it.ra
		if hi > len(it.nums) {
			hi = len(it.nums)
		}
		if lo < hi {
			it.set.Prefetch(it.nums[lo:hi])
		}
	}
	p, err := it.set.Pin(it.nums[it.i])
	if err != nil {
		return nil, err
	}
	it.i++
	return p, nil
}

// Release unpins a page returned by Next.
func (it *PageIterator) Release(p *core.Page) error { return it.set.Unpin(p, false) }

// ScanSet runs fn over every record of the set using numThreads concurrent
// page iterators — the long-living worker-thread model of Fig 2, where each
// worker pulls pages in a loop rather than scheduling one task per block.
func ScanSet(set *core.LocalitySet, numThreads int, fn func(thread int, rec []byte) error) error {
	return ScanPages(set, set.PageNums(), numThreads, fn)
}

// ScanPages is ScanSet restricted to an explicit page list — the row-scan
// substrate for predicate pushdown, where the query layer's zone-map prune
// has already dropped pages no matching row can live in.
func ScanPages(set *core.LocalitySet, nums []int64, numThreads int, fn func(thread int, rec []byte) error) error {
	iters := PageIteratorsFor(set, nums, numThreads)
	var wg sync.WaitGroup
	errCh := make(chan error, numThreads)
	for t, it := range iters {
		wg.Add(1)
		go func(t int, it *PageIterator) {
			defer wg.Done()
			for {
				p, err := it.Next()
				if err != nil {
					errCh <- err
					return
				}
				if p == nil {
					return
				}
				err = WalkPage(p.Bytes(), func(rec []byte) error { return fn(t, rec) })
				if uerr := it.Release(p); err == nil {
					err = uerr
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(t, it)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	set.SetCurrentOp(core.OpNone)
	return nil
}

// WriteAll writes records to the set with a single sequential writer and
// closes it. A convenience wrapper used by examples and tests.
func WriteAll(set *core.LocalitySet, records [][]byte) error {
	w := NewSeqWriter(set)
	for _, r := range records {
		if err := w.Add(r); err != nil {
			_ = w.Close()
			return err
		}
	}
	return w.Close()
}
