package services

import (
	"encoding/binary"
	"fmt"

	"pangea/internal/core"
)

// JoinMap is the join map service (§8): it builds a key → records hash
// table whose record payloads live in buffer-pool pages of a locality set,
// with an in-memory index of record locations. Probing pins the hosting
// page, so large build sides spill and reload under the unified paging
// policy like any other locality set.
//
// Records are stored through the sequential service framed as
// [u32 keyLen][key][payload], so a join map's set can also be rebuilt by
// re-scanning its pages (used by broadcast maps on remote nodes).
type JoinMap struct {
	set    *core.LocalitySet
	writer *SeqWriter
	index  map[string][]recLoc
	n      int64
}

// recLoc addresses one framed record: the page number and the offset of
// its record header within the page.
type recLoc struct {
	page int64
	off  int32
}

// NewJoinMap attaches a join map to a locality set. The set's pages get
// random reads during probing, so the hash-service attribute tags apply.
func NewJoinMap(set *core.LocalitySet) *JoinMap {
	set.SetWriting(core.RandomMutableWrite)
	set.SetReading(core.RandomRead)
	set.SetCurrentOp(core.OpReadWrite)
	return &JoinMap{set: set, writer: NewSeqWriter(set), index: make(map[string][]recLoc)}
}

// Set returns the underlying locality set.
func (m *JoinMap) Set() *core.LocalitySet { return m.set }

// Len returns the number of records inserted.
func (m *JoinMap) Len() int64 { return m.n }

// Insert adds one (key, payload) record to the map.
func (m *JoinMap) Insert(key, payload []byte) error {
	rec := make([]byte, 4+len(key)+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	copy(rec[4:], key)
	copy(rec[4+len(key):], payload)

	// The writer appends within the current page; capture where.
	pageBefore := m.writer.page
	offBefore := m.writer.off
	if err := m.writer.Add(rec); err != nil {
		return err
	}
	loc := recLoc{off: int32(offBefore)}
	if m.writer.page != pageBefore {
		// Record went to a fresh page at the first record slot.
		loc.off = pageHeaderSize
	}
	loc.page = m.writer.page.Num()
	m.index[string(key)] = append(m.index[string(key)], loc)
	m.n++
	return nil
}

// Seal finishes building: the current page is unpinned and the map becomes
// probe-only.
func (m *JoinMap) Seal() error {
	err := m.writer.Close()
	m.set.SetCurrentOp(core.OpRead)
	return err
}

// Probe calls fn for every payload stored under key.
func (m *JoinMap) Probe(key []byte, fn func(payload []byte) error) error {
	locs, ok := m.index[string(key)]
	if !ok {
		return nil
	}
	for _, loc := range locs {
		p, err := m.set.Pin(loc.page)
		if err != nil {
			return fmt.Errorf("services: probe page %d: %w", loc.page, err)
		}
		buf := p.Bytes()
		n := int(binary.LittleEndian.Uint32(buf[loc.off : loc.off+4]))
		rec := buf[loc.off+4 : int(loc.off)+4+n]
		klen := int(binary.LittleEndian.Uint32(rec[0:4]))
		perr := fn(rec[4+klen:])
		if uerr := m.set.Unpin(p, false); perr == nil {
			perr = uerr
		}
		if perr != nil {
			return perr
		}
	}
	return nil
}

// Keys returns the number of distinct keys.
func (m *JoinMap) Keys() int { return len(m.index) }

// BuildBroadcastMap is the broadcast map service (§8): it scans a locality
// set (typically a broadcast replica received from other nodes) and
// constructs a join map from it, extracting the key of each record with
// keyFn. The resulting map is backed by the target set.
func BuildBroadcastMap(source, target *core.LocalitySet, keyFn func(rec []byte) ([]byte, error)) (*JoinMap, error) {
	m := NewJoinMap(target)
	err := ScanSet(source, 1, func(_ int, rec []byte) error {
		key, err := keyFn(rec)
		if err != nil {
			return err
		}
		return m.Insert(key, rec)
	})
	if err != nil {
		return nil, err
	}
	if err := m.Seal(); err != nil {
		return nil, err
	}
	return m, nil
}
