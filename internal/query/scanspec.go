package query

import (
	"fmt"

	"pangea/internal/core"
	"pangea/internal/services"
)

// ScanHint tunes how a ScanSpec executes.
type ScanHint int

const (
	// HintNone lets the scan use every optimization it can see.
	HintNone ScanHint = iota
	// HintNoPrune evaluates the predicate against every row but never
	// consults zone maps or microindexes — the baseline side of
	// page-skipping experiments, and an escape hatch if a summary is ever
	// suspected stale.
	HintNoPrune
	// HintNoIndex consults zone maps but never the microindex — the
	// zone-map-only side of point-lookup experiments, isolating what the
	// index adds over bloom pruning.
	HintNoIndex
)

// ScanSpec is the unified scan entry point: one declarative description —
// which set, how many worker threads, what predicate — that drives the row
// path (Run/Iter) and the batch path (RunBatches and friends) identically.
//
// Because the predicate is algebraic rather than an opaque closure, the
// scan prunes before it reads: if the set carries a zone map (see
// services.AttachZoneMap / EnsureZoneMap), pages the predicate provably
// cannot match are dropped from the page list up front — never pinned,
// never read — and masked out of the prefetch window, so the drives only
// speculate on pages the scan will consume. On a selective scan of a
// clustered column that is most of the set; on an unselective one the
// prune pass costs a map lookup per page and changes nothing.
//
// The zero value of everything but Set is usable: Threads defaults to 1, a
// nil Pred scans every row, and Schema is derived from the set's column
// widths for columnar sets (row sets need an explicit Schema only when Pred
// is non-nil).
type ScanSpec struct {
	Set     *core.LocalitySet
	Threads int
	// Pred filters rows declaratively; nil keeps every row.
	Pred Predicate
	// Schema describes the record layout Pred's column indices address.
	// Optional for columnar sets (the set knows its widths); required for
	// row sets when Pred is non-nil.
	Schema []services.ColumnSpec
	Hint   ScanHint
}

func (sp ScanSpec) threads() int {
	if sp.Threads < 1 {
		return 1
	}
	return sp.Threads
}

// schema resolves the record layout Pred compiles against.
func (sp ScanSpec) schema() ([]services.ColumnSpec, error) {
	if sp.Schema != nil {
		return sp.Schema, nil
	}
	if widths := sp.Set.ColumnWidths(); widths != nil {
		specs := make([]services.ColumnSpec, len(widths))
		off := 0
		for i, w := range widths {
			specs[i] = services.ColumnSpec{Width: w, Offset: off}
			off += w
		}
		return specs, nil
	}
	if sp.Pred == nil {
		return nil, nil
	}
	return nil, fmt.Errorf("query: predicate scan over row set %q needs ScanSpec.Schema", sp.Set.Name())
}

// compile validates the predicate against the schema and returns its row
// closure (nil when there is no predicate).
func (sp ScanSpec) compile() (func(Row) bool, error) {
	if sp.Pred == nil {
		return nil, nil
	}
	schema, err := sp.schema()
	if err != nil {
		return nil, err
	}
	return sp.Pred.compileRow(schema)
}

// pages runs the pruning passes: the page list the scan will visit, plus a
// cleanup that must run when the scan ends. With a predicate and pruning
// allowed, the set's microindex (if attached and covering — its answers are
// authoritative, so a stale index is never consulted) first narrows the
// list to the predicate's explicit candidate pages, then the zone map
// drops candidates whose summaries exclude a match. Surviving pages are the
// scan's demand reads; everything else is masked out of the set's prefetch
// window for the scan's duration (the filter is a set-wide hint; concurrent
// predicate scans of one set may briefly mask each other's speculation,
// never their demand reads). Pages evaluated against the index count toward
// the set's IndexChecks and kept candidates toward IndexHits; pages
// evaluated against the zone map count toward ZoneMapChecks, pruned ones
// toward ZoneMapSkips.
func (sp ScanSpec) pages() ([]int64, func()) {
	all := sp.Set.PageNums()
	if sp.Pred == nil || sp.Hint == HintNoPrune {
		return all, func() {}
	}
	kept := all
	if sp.Hint != HintNoIndex {
		if idx, ok := sp.Set.SideIndex(services.MicroindexTag).(PointIndex); ok && idx.Covers(int64(len(all))) {
			if cand, answered := sp.Pred.indexPages(idx); answered {
				kept = cand
				sp.Set.NoteMicroindex(int64(len(all)), int64(len(cand)))
			}
		}
	}
	if stats, ok := sp.Set.SideIndex(services.ZoneMapTag).(PruneStats); ok {
		pruned := make([]int64, 0, len(kept))
		for _, num := range kept {
			if !sp.Pred.prune(stats, num) {
				pruned = append(pruned, num)
			}
		}
		sp.Set.NoteZoneMap(int64(len(kept)), int64(len(kept)-len(pruned)))
		kept = pruned
	}
	if len(kept) == len(all) {
		return all, func() {}
	}
	keep := make(map[int64]bool, len(kept))
	for _, num := range kept {
		keep[num] = true
	}
	set := sp.Set
	set.SetPrefetchFilter(func(num int64) bool { return keep[num] })
	return kept, func() { set.SetPrefetchFilter(nil) }
}

// Run streams every matching row to fn, which may be called from Threads
// goroutines (one per page-iterator stripe). Rows alias pinned pages and
// are invalid after fn returns.
func (sp ScanSpec) Run(fn func(thread int, row Row) error) error {
	match, err := sp.compile()
	if err != nil {
		return err
	}
	nums, done := sp.pages()
	defer done()
	if match == nil {
		return services.ScanPages(sp.Set, nums, sp.threads(), fn)
	}
	return services.ScanPages(sp.Set, nums, sp.threads(), func(t int, rec []byte) error {
		if !match(rec) {
			return nil
		}
		return fn(t, rec)
	})
}

// Iter adapts the scan to the push-based operator pipeline, predicate
// already applied.
func (sp ScanSpec) Iter() Iter {
	return func(emit func(Row) error) error {
		return sp.Run(func(_ int, r Row) error { return emit(r) })
	}
}

// RunBatches streams a columnar set batch-at-a-time; each batch arrives
// with its selection already narrowed to the predicate's matches (pages the
// zone map pruned never arrive at all).
func (sp ScanSpec) RunBatches(fn func(thread int, b *Batch) error) error {
	// compileRow doubles as predicate-vs-schema validation for the batch
	// path; the closure itself is unused here.
	if _, err := sp.compile(); err != nil {
		return err
	}
	nums, done := sp.pages()
	defer done()
	if sp.Pred == nil {
		return scanBatchesOver(sp.Set, nums, sp.threads(), fn)
	}
	return scanBatchesOver(sp.Set, nums, sp.threads(), func(t int, b *Batch) error {
		if err := sp.Pred.applyBatch(b); err != nil {
			return err
		}
		return fn(t, b)
	})
}

// AggBatches runs the scan-filter-aggregate pipeline under the spec's
// predicate: filter (nil allowed) further narrows each batch after the
// predicate — the residual for shapes the algebra doesn't express — and
// spec folds the survivors into one merged result map.
func (sp ScanSpec) AggBatches(filter func(*Batch), spec BatchAggSpec) (map[string][]byte, error) {
	n := sp.threads()
	maps := make([]map[string][]byte, n)
	keys := make([][]byte, n)
	err := sp.RunBatches(func(t int, b *Batch) error {
		if filter != nil {
			filter(b)
		}
		if maps[t] == nil {
			maps[t] = make(map[string][]byte)
		}
		keys[t] = AggBatch(b, spec, maps[t], keys[t])
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte)
	for _, m := range maps {
		for k, v := range m {
			if old, ok := out[k]; ok {
				spec.Combine(old, v)
			} else {
				out[k] = v
			}
		}
	}
	return out, nil
}

// CountBatches counts the rows the predicate (and optional residual filter)
// keeps.
func (sp ScanSpec) CountBatches(filter func(*Batch)) (int64, error) {
	counts := make([]int64, sp.threads())
	err := sp.RunBatches(func(t int, b *Batch) error {
		if filter != nil {
			filter(b)
		}
		counts[t] += int64(b.Selected())
		return nil
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	return total, err
}
