package query

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"pangea/internal/core"
	"pangea/internal/services"
)

// Batch is one page worth of a columnar set presented batch-at-a-time: the
// column vectors of a pinned page plus a selection index vector that
// predicates narrow. The column slices are zero-copy views of the pinned
// page (late materialization: rows are only reassembled at sinks, and only
// for selected lanes) — they alias the buffer pool's arena and are invalid
// once the scan moves past the page.
type Batch struct {
	page   services.ColumnarPage
	n      int
	sel    []int32 // selected row indices; nil = all n rows selected
	selBuf []int32 // reused selection storage across pages
	rowBuf []byte  // reused MaterializeRow scratch
}

// reset points the batch at a new page buffer and selects every row.
func (b *Batch) reset(buf []byte) error {
	if err := b.page.Reset(buf); err != nil {
		return err
	}
	b.n = b.page.NumRows()
	b.sel = nil
	return nil
}

// NumRows returns the page's row count, before selection.
func (b *Batch) NumRows() int { return b.n }

// NumCols returns the number of columns.
func (b *Batch) NumCols() int { return b.page.NumCols() }

// Col returns column c's full vector (NumRows values, selection not
// applied). The slice aliases the pinned page.
func (b *Batch) Col(c int) []byte { return b.page.Col(c) }

// Width returns the byte width of column c.
func (b *Batch) Width(c int) int { return b.page.Width(c) }

// Selected returns how many rows the current selection keeps.
func (b *Batch) Selected() int {
	if b.sel == nil {
		return b.n
	}
	return len(b.sel)
}

// Sel returns the selected row indices, materializing the all-rows
// selection if no predicate has run yet. The slice is reused across pages.
func (b *Batch) Sel() []int32 {
	if b.sel == nil {
		b.selBuf = grow(b.selBuf, b.n)
		for i := range b.selBuf {
			b.selBuf[i] = int32(i)
		}
		b.sel = b.selBuf
	}
	return b.sel
}

// Typed lane accessors; row is a row index (typically drawn from Sel).

func (b *Batch) Byte(c, row int) byte { return b.page.Col(c)[row] }

func (b *Batch) U16(c, row int) uint16 {
	return binary.LittleEndian.Uint16(b.page.Col(c)[row*2:])
}

func (b *Batch) U32(c, row int) uint32 {
	return binary.LittleEndian.Uint32(b.page.Col(c)[row*4:])
}

func (b *Batch) U64(c, row int) uint64 {
	return binary.LittleEndian.Uint64(b.page.Col(c)[row*8:])
}

func (b *Batch) F64(c, row int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b.page.Col(c)[row*8:]))
}

// MaterializeRow reassembles one row into record form by appending its
// column values to dst — the late-materialization sink, paid only for rows
// that survived selection. The default dst of nil uses (and returns) a
// scratch buffer owned by the batch, overwritten by the next call.
func (b *Batch) MaterializeRow(row int, dst []byte) []byte {
	if dst == nil {
		b.rowBuf = b.page.AppendRow(b.rowBuf[:0], row)
		return b.rowBuf
	}
	return b.page.AppendRow(dst, row)
}

func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// narrow runs keep over the current selection and installs the surviving
// indices as the new selection. The survivors are written into the batch's
// reused selection buffer; writing lane j always trails reading lane i
// (j ≤ i), so narrowing in place over the previous selection is safe.
func (b *Batch) narrow(keep func(row int32) bool) {
	if b.sel == nil {
		out := grow(b.selBuf, b.n)[:0]
		for i := int32(0); i < int32(b.n); i++ {
			if keep(i) {
				out = append(out, i)
			}
		}
		b.selBuf, b.sel = out[:cap(out)], out
		return
	}
	out := b.sel[:0]
	for _, i := range b.sel {
		if keep(i) {
			out = append(out, i)
		}
	}
	b.sel = out
}

// FilterBatch narrows the selection with an arbitrary row predicate — the
// generic kernel; the typed Sel* kernels below are the fast paths for
// common fixed-width comparisons, each a branch-light loop over one column
// vector.
func FilterBatch(b *Batch, pred func(b *Batch, row int) bool) {
	b.narrow(func(i int32) bool { return pred(b, int(i)) })
}

// The typed Sel* kernels below spell their loops out instead of going
// through narrow: the per-row indirect call a closure costs is the
// difference between a vectorizable compare loop and a row-at-a-time
// dispatch, and these kernels sit on the hot path of every selective scan.

// SelU16Range keeps rows with lo <= col[row] < hi.
func (b *Batch) SelU16Range(c int, lo, hi uint16) {
	col := b.page.Col(c)
	if b.sel == nil {
		b.selBuf = grow(b.selBuf, b.n)
		out := b.selBuf[:0]
		for i := 0; i < b.n; i++ {
			if v := binary.LittleEndian.Uint16(col[i*2:]); v >= lo && v < hi {
				out = append(out, int32(i))
			}
		}
		b.sel = out
		return
	}
	out := b.sel[:0]
	for _, i := range b.sel {
		if v := binary.LittleEndian.Uint16(col[i*2:]); v >= lo && v < hi {
			out = append(out, i)
		}
	}
	b.sel = out
}

// SelU32Range keeps rows with lo <= col[row] < hi.
func (b *Batch) SelU32Range(c int, lo, hi uint32) {
	col := b.page.Col(c)
	if b.sel == nil {
		b.selBuf = grow(b.selBuf, b.n)
		out := b.selBuf[:0]
		for i := 0; i < b.n; i++ {
			if v := binary.LittleEndian.Uint32(col[i*4:]); v >= lo && v < hi {
				out = append(out, int32(i))
			}
		}
		b.sel = out
		return
	}
	out := b.sel[:0]
	for _, i := range b.sel {
		if v := binary.LittleEndian.Uint32(col[i*4:]); v >= lo && v < hi {
			out = append(out, i)
		}
	}
	b.sel = out
}

// SelF64Range keeps rows with lo <= col[row] <= hi (closed interval, the
// shape of TPC-H's discount band predicate).
func (b *Batch) SelF64Range(c int, lo, hi float64) {
	col := b.page.Col(c)
	if b.sel == nil {
		b.selBuf = grow(b.selBuf, b.n)
		out := b.selBuf[:0]
		for i := 0; i < b.n; i++ {
			if v := math.Float64frombits(binary.LittleEndian.Uint64(col[i*8:])); v >= lo && v <= hi {
				out = append(out, int32(i))
			}
		}
		b.sel = out
		return
	}
	out := b.sel[:0]
	for _, i := range b.sel {
		if v := math.Float64frombits(binary.LittleEndian.Uint64(col[i*8:])); v >= lo && v <= hi {
			out = append(out, i)
		}
	}
	b.sel = out
}

// SelU64Range keeps rows with lo <= col[row] < hi.
func (b *Batch) SelU64Range(c int, lo, hi uint64) {
	col := b.page.Col(c)
	if b.sel == nil {
		b.selBuf = grow(b.selBuf, b.n)
		out := b.selBuf[:0]
		for i := 0; i < b.n; i++ {
			if v := binary.LittleEndian.Uint64(col[i*8:]); v >= lo && v < hi {
				out = append(out, int32(i))
			}
		}
		b.sel = out
		return
	}
	out := b.sel[:0]
	for _, i := range b.sel {
		if v := binary.LittleEndian.Uint64(col[i*8:]); v >= lo && v < hi {
			out = append(out, i)
		}
	}
	b.sel = out
}

// SelByteRange keeps rows with lo <= col[row] < hi over a 1-byte column.
// Bounds are uint64 — the predicate algebra's value domain — so hi=256
// still expresses a half-open interval covering the whole byte range.
func (b *Batch) SelByteRange(c int, lo, hi uint64) {
	col := b.page.Col(c)
	if b.sel == nil {
		b.selBuf = grow(b.selBuf, b.n)
		out := b.selBuf[:0]
		for i := 0; i < b.n; i++ {
			if v := uint64(col[i]); v >= lo && v < hi {
				out = append(out, int32(i))
			}
		}
		b.sel = out
		return
	}
	out := b.sel[:0]
	for _, i := range b.sel {
		if v := uint64(col[i]); v >= lo && v < hi {
			out = append(out, i)
		}
	}
	b.sel = out
}

// SelByteEq keeps rows whose 1-byte column equals v.
func (b *Batch) SelByteEq(c int, v byte) {
	col := b.page.Col(c)
	if b.sel == nil {
		b.selBuf = grow(b.selBuf, b.n)
		out := b.selBuf[:0]
		for i := 0; i < b.n; i++ {
			if col[i] == v {
				out = append(out, int32(i))
			}
		}
		b.sel = out
		return
	}
	out := b.sel[:0]
	for _, i := range b.sel {
		if col[i] == v {
			out = append(out, i)
		}
	}
	b.sel = out
}

// ScanBatches streams a columnar set batch-at-a-time: numThreads page
// iterator stripes (with the same read-ahead hinting as the row scan), one
// Batch per pinned page, each thread reusing a single Batch so the steady
// state allocates nothing. fn's batch — including any column slice taken
// from it — is invalid after fn returns, when the page is released.
//
// Deprecated: use ScanSpec{Set: set, Threads: numThreads}.RunBatches(fn),
// which also takes a declarative Predicate the scan can prune pages with.
func ScanBatches(set *core.LocalitySet, numThreads int, fn func(thread int, b *Batch) error) error {
	return scanBatchesOver(set, set.PageNums(), numThreads, fn)
}

// scanBatchesOver is the batch-scan substrate shared by ScanBatches and
// ScanSpec.RunBatches: the same striped iterator loop, restricted to an
// explicit page list so a zone-map prune can drop pages up front.
func scanBatchesOver(set *core.LocalitySet, nums []int64, numThreads int, fn func(thread int, b *Batch) error) error {
	if set.Layout() != core.LayoutColumnar {
		return fmt.Errorf("query: batch scan over %q, a %s-layout set", set.Name(), set.Layout())
	}
	iters := services.PageIteratorsFor(set, nums, numThreads)
	var wg sync.WaitGroup
	errCh := make(chan error, len(iters))
	for t, it := range iters {
		wg.Add(1)
		go func(t int, it *services.PageIterator) {
			defer wg.Done()
			var b Batch
			for {
				p, err := it.Next()
				if err != nil {
					errCh <- err
					return
				}
				if p == nil {
					return
				}
				if err = b.reset(p.Bytes()); err == nil {
					err = fn(t, &b)
				}
				if uerr := it.Release(p); err == nil {
					err = uerr
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(t, it)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	set.SetCurrentOp(core.OpNone)
	return nil
}

// ProjectBatch materializes the selected rows of a batch and feeds them to
// emit in record form — the bridge from a batch pipeline into row sinks.
// Rows alias a scratch buffer reused per row (the same validity contract as
// rows emitted by Scan).
func ProjectBatch(b *Batch, emit func(Row) error) error {
	for _, i := range b.Sel() {
		if err := emit(b.MaterializeRow(int(i), nil)); err != nil {
			return err
		}
	}
	return nil
}

// BatchAggSpec defines a hash aggregation over batches. Unlike AggSpec's
// init-into-scratch contract, Accumulate folds a selected lane directly
// into the group's accumulator, so one group touched by many rows never
// round-trips through a per-row scratch value.
type BatchAggSpec struct {
	// Key appends the grouping key of the given row to dst and returns the
	// extended slice (dst arrives empty with reused capacity).
	Key func(b *Batch, row int, dst []byte) []byte
	// ValSize is the accumulator width in bytes.
	ValSize int
	// Accumulate folds row into val, which starts zeroed for a new group.
	Accumulate func(b *Batch, row int, val []byte)
	// Combine merges src into dst, for cross-thread and cross-node merges.
	Combine func(dst, src []byte)
}

// AggBatch folds a batch's selected rows into the partial result map.
// keyBuf is reused scratch for key extraction; the returned slice replaces
// it.
func AggBatch(b *Batch, spec BatchAggSpec, m map[string][]byte, keyBuf []byte) []byte {
	for _, i := range b.Sel() {
		keyBuf = spec.Key(b, int(i), keyBuf[:0])
		val, ok := m[string(keyBuf)]
		if !ok {
			val = make([]byte, spec.ValSize)
			m[string(keyBuf)] = val
		}
		spec.Accumulate(b, int(i), val)
	}
	return keyBuf
}

// AggBatches runs a scan-filter-aggregate pipeline over a columnar set:
// filter narrows each batch's selection (nil keeps every row), spec folds
// the survivors into per-thread partial maps, and the partials merge into
// one result map at the end — the batch counterpart of LocalAggregate +
// FinalAggregate on a single node.
//
// Deprecated: use ScanSpec{Set: set, Threads: numThreads}.AggBatches,
// which also takes a declarative Predicate the scan can prune pages with.
func AggBatches(set *core.LocalitySet, numThreads int, filter func(*Batch), spec BatchAggSpec) (map[string][]byte, error) {
	return ScanSpec{Set: set, Threads: numThreads}.AggBatches(filter, spec)
}

// CountBatches counts the rows a filter keeps — a batch pipeline ending in
// a count sink, with per-thread tallies.
//
// Deprecated: use ScanSpec{Set: set, Threads: numThreads}.CountBatches.
func CountBatches(set *core.LocalitySet, numThreads int, filter func(*Batch)) (int64, error) {
	return ScanSpec{Set: set, Threads: numThreads}.CountBatches(filter)
}
