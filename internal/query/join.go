package query

import (
	"sync"

	"pangea/internal/core"
	"pangea/internal/services"
)

// BuildBroadcastMap builds a join hash map from a (typically small) build
// side (Table 2: "Build broadcast hash map"). In a distributed run, each
// node first receives the full build side through the broadcast service and
// then builds this map locally.
func BuildBroadcastMap(in Iter, set *core.LocalitySet, key func(Row) []byte) (*services.JoinMap, error) {
	m := services.NewJoinMap(set)
	var mu sync.Mutex
	err := in(func(r Row) error {
		mu.Lock()
		defer mu.Unlock()
		return m.Insert(key(r), r)
	})
	if err != nil {
		return nil, err
	}
	if err := m.Seal(); err != nil {
		return nil, err
	}
	return m, nil
}

// BuildPartitionedMap builds a join hash map over one node's partition of a
// co-partitioned build side (Table 2: "Build partitioned hash map"). It is
// identical in mechanism to the broadcast build — the difference is the
// input: a replica already partitioned on the join key, so each node builds
// only from its local partition and no network transfer happens. The query
// scheduler arranges for that input via the statistics service (§7).
func BuildPartitionedMap(in Iter, set *core.LocalitySet, key func(Row) []byte) (*services.JoinMap, error) {
	return BuildBroadcastMap(in, set, key)
}

// HashJoin probes a built join map for every probe row (Table 2: Join),
// emitting combine(probeRow, buildRow) for each match. The probe pipeline
// runs while probe-side pages stay pinned, so the join is pipelined with
// upstream filters and downstream aggregation.
func HashJoin(probe Iter, m *services.JoinMap, probeKey func(Row) []byte, combine func(probeRow, buildRow Row) Row) Iter {
	return func(emit func(Row) error) error {
		return probe(func(pr Row) error {
			return m.Probe(probeKey(pr), func(br Row) error {
				return emit(combine(pr, br))
			})
		})
	}
}

// SemiJoin emits probe rows that have at least one match in the map
// (EXISTS), used by Q04.
func SemiJoin(probe Iter, m *services.JoinMap, probeKey func(Row) []byte) Iter {
	return func(emit func(Row) error) error {
		return probe(func(pr Row) error {
			found := false
			err := m.Probe(probeKey(pr), func(Row) error {
				found = true
				return errStopProbe
			})
			if err != nil && err != errStopProbe {
				return err
			}
			if found {
				return emit(pr)
			}
			return nil
		})
	}
}

// AntiJoin emits probe rows with no match in the map (NOT EXISTS), used by
// Q22.
func AntiJoin(probe Iter, m *services.JoinMap, probeKey func(Row) []byte) Iter {
	return func(emit func(Row) error) error {
		return probe(func(pr Row) error {
			found := false
			err := m.Probe(probeKey(pr), func(Row) error {
				found = true
				return errStopProbe
			})
			if err != nil && err != errStopProbe {
				return err
			}
			if !found {
				return emit(pr)
			}
			return nil
		})
	}
}

// errStopProbe short-circuits a probe after the first match.
var errStopProbe = stopProbe{}

type stopProbe struct{}

func (stopProbe) Error() string { return "query: stop probe" }
