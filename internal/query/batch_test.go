package query

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"
	"testing"

	"pangea/internal/core"
	"pangea/internal/services"
)

// loadColSet mirrors loadSet with the mkRow schema declared columnar:
// three u32 columns (id, group, amount).
func loadColSet(t *testing.T, bp *core.BufferPool, name string, rows []Row) *core.LocalitySet {
	t.Helper()
	s, err := bp.CreateSet(core.SetSpec{
		Name: name, PageSize: 4 << 10,
		Layout: core.LayoutColumnar, Columns: []int{4, 4, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := services.WriteAll(s, rows); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScanBatchesRejectsRowLayout(t *testing.T) {
	bp := newPool(t, 8<<20)
	s := loadSet(t, bp, "rows", testRows(10))
	if err := ScanBatches(s, 2, func(int, *Batch) error { return nil }); err == nil {
		t.Error("batch scan over a row-layout set must error")
	}
}

// TestScanBatchesMatchesRowScan: a multi-threaded batch scan visits every
// row exactly once, with column accessors agreeing with the row decode.
// Run under -race this is the multi-threaded batch-scan regression test.
func TestScanBatchesMatchesRowScan(t *testing.T) {
	bp := newPool(t, 8<<20)
	rows := testRows(5000)
	s := loadColSet(t, bp, "c", rows)
	var n, idSum, amountSum atomic.Int64
	err := ScanBatches(s, 4, func(_ int, b *Batch) error {
		if b.NumCols() != 3 || b.Width(0) != 4 {
			t.Errorf("batch shape: %d cols, width0 %d", b.NumCols(), b.Width(0))
		}
		ids, amounts := b.Col(0), b.Col(2)
		for i := 0; i < b.NumRows(); i++ {
			idSum.Add(int64(binary.LittleEndian.Uint32(ids[i*4:])))
			amountSum.Add(int64(b.U32(2, i)))
			_ = amounts
		}
		n.Add(int64(b.NumRows()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantID, wantAmount int64
	for _, r := range rows {
		wantID += int64(rowID(r))
		wantAmount += int64(rowAmount(r))
	}
	if n.Load() != int64(len(rows)) || idSum.Load() != wantID || amountSum.Load() != wantAmount {
		t.Fatalf("batch scan: n=%d idSum=%d amountSum=%d, want %d/%d/%d",
			n.Load(), idSum.Load(), amountSum.Load(), int64(len(rows)), wantID, wantAmount)
	}
}

// TestSelectionKernels: each kernel narrows the selection like the
// equivalent row predicate, and kernels compose (each narrows the previous
// selection).
func TestSelectionKernels(t *testing.T) {
	bp := newPool(t, 8<<20)
	rows := testRows(4000)
	s := loadColSet(t, bp, "c", rows)

	count := func(filter func(*Batch), pred func(Row) bool) (int64, int64) {
		got, err := CountBatches(s, 3, filter)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, r := range rows {
			if pred(r) {
				want++
			}
		}
		return got, want
	}

	if got, want := count(
		func(b *Batch) { b.SelU32Range(2, 10, 40) },
		func(r Row) bool { return rowAmount(r) >= 10 && rowAmount(r) < 40 },
	); got != want {
		t.Errorf("SelU32Range: %d, want %d", got, want)
	}
	if got, want := count(
		func(b *Batch) {
			b.SelU32Range(1, 2, 3) // group == 2
			b.SelU32Range(2, 0, 50)
		},
		func(r Row) bool { return rowGroup(r) == 2 && rowAmount(r) < 50 },
	); got != want {
		t.Errorf("composed kernels: %d, want %d", got, want)
	}
	if got, want := count(
		func(b *Batch) {
			FilterBatch(b, func(b *Batch, row int) bool { return b.U32(0, row)%3 == 0 })
		},
		func(r Row) bool { return rowID(r)%3 == 0 },
	); got != want {
		t.Errorf("FilterBatch: %d, want %d", got, want)
	}
	if got, want := count(nil, func(Row) bool { return true }); got != want {
		t.Errorf("unfiltered count: %d, want %d", got, want)
	}
}

// TestAggBatchesMatchesRowAggregate: the batch scan-filter-agg pipeline
// computes the same groups as the row-path Aggregate over the same data.
func TestAggBatchesMatchesRowAggregate(t *testing.T) {
	bp := newPool(t, 8<<20)
	rows := testRows(3000)
	colSet := loadColSet(t, bp, "c", rows)
	rowSet := loadSet(t, bp, "r", rows)

	rowSpec := AggSpec{
		Key:     func(r Row) []byte { return r[4:8] },
		ValSize: 8,
		Init: func(r Row, val []byte) {
			binary.LittleEndian.PutUint64(val, uint64(rowAmount(r)))
		},
		Combine: func(dst, src []byte) {
			binary.LittleEndian.PutUint64(dst,
				binary.LittleEndian.Uint64(dst)+binary.LittleEndian.Uint64(src))
		},
	}
	pred := func(r Row) bool { return rowAmount(r) < 30 }
	want, err := Aggregate(Filter(Scan(rowSet, 3), pred), bp, "agg-row", rowSpec)
	if err != nil {
		t.Fatal(err)
	}

	batchSpec := BatchAggSpec{
		Key: func(b *Batch, row int, dst []byte) []byte {
			return append(dst, b.Col(1)[row*4:row*4+4]...)
		},
		ValSize: 8,
		Accumulate: func(b *Batch, row int, val []byte) {
			binary.LittleEndian.PutUint64(val,
				binary.LittleEndian.Uint64(val)+uint64(b.U32(2, row)))
		},
		Combine: rowSpec.Combine,
	}
	got, err := AggBatches(colSet, 3, func(b *Batch) { b.SelU32Range(2, 0, 30) }, batchSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Errorf("group %x: %x, want %x", k, got[k], v)
		}
	}
}

// TestProjectBatch: late materialization emits exactly the selected rows,
// byte-identical to the original records.
func TestProjectBatch(t *testing.T) {
	bp := newPool(t, 8<<20)
	rows := testRows(1000)
	s := loadColSet(t, bp, "c", rows)
	byID := make(map[uint32]Row, len(rows))
	for _, r := range rows {
		byID[rowID(r)] = r
	}
	var emitted atomic.Int64
	err := ScanBatches(s, 2, func(_ int, b *Batch) error {
		b.SelU32Range(1, 5, 6) // group == 5
		return ProjectBatch(b, func(r Row) error {
			want := byID[rowID(r)]
			if rowGroup(r) != 5 || !bytes.Equal(r, want) {
				t.Errorf("materialized row %x, want %x", r, want)
			}
			emitted.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, r := range rows {
		if rowGroup(r) == 5 {
			want++
		}
	}
	if emitted.Load() != want {
		t.Errorf("projected %d rows, want %d", emitted.Load(), want)
	}
}
