// Package query implements the distributed relational query processor the
// paper builds on top of Pangea to run TPC-H (§9.1.2, Table 2): scan,
// filter, flatten, hash, broadcast/partitioned hash map construction, join,
// two-stage aggregation, pipelines, and query scheduling that consults the
// statistics service to pick co-partitioned replicas.
//
// Rows are raw byte records stored in locality sets; operators compose as
// push-based iterators so a whole pipeline runs over each page while it is
// pinned — the paper's pipelining of joins with other computations.
package query

import (
	"sync"

	"pangea/internal/core"
	"pangea/internal/services"
)

// Row is one relational record in its set's binary layout.
type Row = []byte

// Iter is a push-based row stream: it calls emit for every row, stopping on
// error. Operators wrap Iters, forming the paper's Pipeline module.
type Iter func(emit func(Row) error) error

// Scan streams every row of a locality set with numThreads concurrent page
// iterators (Table 2: Scan). emit may be called from multiple goroutines;
// downstream stateful sinks must either lock or use per-thread state via
// ScanThreaded.
//
// Scanning declares a sequential reading pattern on the set, so on a cold
// set the page iterators read ahead through the buffer pool's per-drive
// prefetch queues: the whole operator pipeline runs over a pinned page
// while the drives load the pages behind it, instead of stalling the
// pipeline on one synchronous read per page. Every TPC-H operator that
// consumes a base or intermediate set inherits this by scanning through
// here.
func Scan(set *core.LocalitySet, numThreads int) Iter {
	return func(emit func(Row) error) error {
		return services.ScanSet(set, numThreads, func(_ int, rec []byte) error {
			return emit(rec)
		})
	}
}

// Warm hints that an imminent operator will read the whole set (e.g. the
// build side of a join the scheduler has just picked), prefetching every
// non-resident page that has an on-disk image. Best-effort: it returns the
// number of reads issued and never blocks on memory.
func Warm(set *core.LocalitySet) int {
	return set.Prefetch(set.PageNums())
}

// ScanThreaded is Scan with the worker-thread index exposed, for sinks that
// keep per-thread state (e.g. per-thread shuffle buffers).
func ScanThreaded(set *core.LocalitySet, numThreads int, fn func(thread int, row Row) error) error {
	return services.ScanSet(set, numThreads, fn)
}

// Filter drops rows failing the predicate (Table 2: Filter).
func Filter(in Iter, pred func(Row) bool) Iter {
	return func(emit func(Row) error) error {
		return in(func(r Row) error {
			if !pred(r) {
				return nil
			}
			return emit(r)
		})
	}
}

// Flatten maps one row to zero or more rows (Table 2: Flatten). fn calls
// out for each produced row.
func Flatten(in Iter, fn func(r Row, out func(Row) error) error) Iter {
	return func(emit func(Row) error) error {
		return in(func(r Row) error {
			return fn(r, emit)
		})
	}
}

// Map transforms each row one-to-one.
func Map(in Iter, fn func(Row) (Row, error)) Iter {
	return func(emit func(Row) error) error {
		return in(func(r Row) error {
			out, err := fn(r)
			if err != nil {
				return err
			}
			return emit(out)
		})
	}
}

// Count drains the stream and returns the row count.
func Count(in Iter) (int64, error) {
	var n int64
	var mu sync.Mutex
	err := in(func(Row) error {
		mu.Lock()
		n++
		mu.Unlock()
		return nil
	})
	return n, err
}

// Collect drains the stream into a slice, copying each row (rows emitted by
// Scan alias pinned pages and are invalid after the scan).
func Collect(in Iter) ([]Row, error) {
	var rows []Row
	var mu sync.Mutex
	err := in(func(r Row) error {
		c := append(Row(nil), r...)
		mu.Lock()
		rows = append(rows, c)
		mu.Unlock()
		return nil
	})
	return rows, err
}

// Materialize writes the stream into a locality set through the sequential
// write service and returns the row count.
func Materialize(in Iter, out *core.LocalitySet) (int64, error) {
	w := services.NewSeqWriter(out)
	var mu sync.Mutex
	err := in(func(r Row) error {
		mu.Lock()
		defer mu.Unlock()
		return w.Add(r)
	})
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	return w.Count(), err
}
