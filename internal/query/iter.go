// Package query implements the distributed relational query processor the
// paper builds on top of Pangea to run TPC-H (§9.1.2, Table 2): scan,
// filter, flatten, hash, broadcast/partitioned hash map construction, join,
// two-stage aggregation, pipelines, and query scheduling that consults the
// statistics service to pick co-partitioned replicas.
//
// Rows are raw byte records stored in locality sets; operators compose as
// push-based iterators so a whole pipeline runs over each page while it is
// pinned — the paper's pipelining of joins with other computations.
package query

import (
	"sync"
	"sync/atomic"

	"pangea/internal/core"
	"pangea/internal/services"
)

// Row is one relational record in its set's binary layout.
type Row = []byte

// Iter is a push-based row stream: it calls emit for every row, stopping on
// error. Operators wrap Iters, forming the paper's Pipeline module.
type Iter func(emit func(Row) error) error

// Scan streams every row of a locality set with numThreads concurrent page
// iterators (Table 2: Scan). emit may be called from multiple goroutines;
// downstream stateful sinks must either lock or use per-thread state via
// ScanThreaded.
//
// Scanning declares a sequential reading pattern on the set, so on a cold
// set the page iterators read ahead through the buffer pool's per-drive
// prefetch queues: the whole operator pipeline runs over a pinned page
// while the drives load the pages behind it, instead of stalling the
// pipeline on one synchronous read per page. Every TPC-H operator that
// consumes a base or intermediate set inherits this by scanning through
// here.
//
// Deprecated: use ScanSpec{Set: set, Threads: numThreads}.Iter(), which
// also takes a declarative Predicate the scan can prune pages with.
func Scan(set *core.LocalitySet, numThreads int) Iter {
	return ScanSpec{Set: set, Threads: numThreads}.Iter()
}

// Warm hints that an imminent operator will read the whole set (e.g. the
// build side of a join the scheduler has just picked), prefetching every
// non-resident page that has an on-disk image. Best-effort: it returns the
// number of reads issued and never blocks on memory.
func Warm(set *core.LocalitySet) int {
	return set.Prefetch(set.PageNums())
}

// ScanThreaded is Scan with the worker-thread index exposed, for sinks that
// keep per-thread state (e.g. per-thread shuffle buffers).
//
// Deprecated: use ScanSpec{Set: set, Threads: numThreads}.Run(fn).
func ScanThreaded(set *core.LocalitySet, numThreads int, fn func(thread int, row Row) error) error {
	return ScanSpec{Set: set, Threads: numThreads}.Run(fn)
}

// Filter drops rows failing the predicate (Table 2: Filter).
func Filter(in Iter, pred func(Row) bool) Iter {
	return func(emit func(Row) error) error {
		return in(func(r Row) error {
			if !pred(r) {
				return nil
			}
			return emit(r)
		})
	}
}

// Flatten maps one row to zero or more rows (Table 2: Flatten). fn calls
// out for each produced row.
func Flatten(in Iter, fn func(r Row, out func(Row) error) error) Iter {
	return func(emit func(Row) error) error {
		return in(func(r Row) error {
			return fn(r, emit)
		})
	}
}

// Map transforms each row one-to-one.
func Map(in Iter, fn func(Row) (Row, error)) Iter {
	return func(emit func(Row) error) error {
		return in(func(r Row) error {
			out, err := fn(r)
			if err != nil {
				return err
			}
			return emit(out)
		})
	}
}

// Count drains the stream and returns the row count.
func Count(in Iter) (int64, error) {
	var n atomic.Int64
	err := in(func(Row) error {
		n.Add(1)
		return nil
	})
	return n.Load(), err
}

// partials hands each emitting goroutine its own accumulator state and
// remembers every state it ever created, so multi-threaded sinks build
// per-thread partials and merge them once at the end, instead of
// serializing every row behind one sink mutex. Iter's emit carries no
// thread index (and sinks must keep working for plain single-goroutine
// Iters), so states live on a free list: an emit borrows one for the
// duration of a single row, which under a multi-threaded Scan settles into
// one state per worker without any state ever being shared between two
// rows at once. The borrow lock only pops and pushes a pointer — the
// per-row work itself runs unserialized.
//
// max > 0 caps how many states exist; borrowers beyond the cap wait for a
// free one. Sinks whose states pin buffer-pool pages use the cap to keep
// the combined pinned footprint inside the set's memory entitlement.
type partials[S any] struct {
	mu   sync.Mutex
	cond sync.Cond
	free []*S
	all  []*S
	max  int // >0 caps live states; 0 = one per concurrent borrower
	init func(*S) error
	err  error // first state-constructor failure; sticky
}

func newPartials[S any](init func(*S) error) (*partials[S], error) {
	return newBoundedPartials(0, init)
}

func newBoundedPartials[S any](max int, init func(*S) error) (*partials[S], error) {
	p := &partials[S]{max: max, init: init}
	p.cond.L = &p.mu
	// Create the first state eagerly so constructor errors surface before
	// the scan starts instead of on some mid-stream row.
	s, err := p.get()
	if err != nil {
		return nil, err
	}
	p.put(s)
	return p, nil
}

func (p *partials[S]) get() (*S, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.err != nil {
			return nil, p.err
		}
		if n := len(p.free); n > 0 {
			s := p.free[n-1]
			p.free = p.free[:n-1]
			return s, nil
		}
		if p.max <= 0 || len(p.all) < p.max {
			s := new(S)
			if p.init != nil {
				if err := p.init(s); err != nil {
					p.err = err
					p.cond.Broadcast()
					return nil, err
				}
			}
			p.all = append(p.all, s)
			return s, nil
		}
		p.cond.Wait()
	}
}

func (p *partials[S]) put(s *S) {
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
	p.cond.Signal()
}

// borrow runs fn with a state no other goroutine is using.
func (p *partials[S]) borrow(fn func(*S) error) error {
	s, err := p.get()
	if err != nil {
		return err
	}
	err = fn(s)
	p.put(s)
	return err
}

// states returns every state ever handed out, for the final merge.
func (p *partials[S]) states() []*S {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.all
}

// Collect drains the stream into a slice, copying each row (rows emitted by
// Scan alias pinned pages and are invalid after the scan). Each scan thread
// appends to its own partial slice; the partials are concatenated at the
// end, so row order across threads is unspecified (as it already was).
func Collect(in Iter) ([]Row, error) {
	type bucket struct{ rows []Row }
	parts, _ := newPartials[bucket](nil)
	err := in(func(r Row) error {
		return parts.borrow(func(b *bucket) error {
			b.rows = append(b.rows, append(Row(nil), r...))
			return nil
		})
	})
	var rows []Row
	for _, b := range parts.states() {
		rows = append(rows, b.rows...)
	}
	return rows, err
}

// Materialize writes the stream into a locality set through the sequential
// write service and returns the row count.
func Materialize(in Iter, out *core.LocalitySet) (int64, error) {
	w := services.NewSeqWriter(out)
	var mu sync.Mutex
	err := in(func(r Row) error {
		mu.Lock()
		defer mu.Unlock()
		return w.Add(r)
	})
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	return w.Count(), err
}
