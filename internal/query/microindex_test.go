package query

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"pangea/internal/core"
	"pangea/internal/services"
)

// permRows builds n rows whose key column (col 1) is a permutation of
// 0..n-1 scattered so consecutive keys land on distant pages: every key
// occurs exactly once, every page's key range spans nearly the whole
// domain (min/max cannot prune a point probe), and at a few hundred
// distinct keys per page the 256-bit blooms are close to saturated. The
// worst case for a zone map and the best case for a microindex.
func permRows(n int) []Row {
	const stride = 7919 // prime, coprime with the n values used here
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = mkRow(uint32(i), uint32((i*stride)%n), uint32(i%100))
	}
	return rows
}

func ensureBoth(t *testing.T, set *core.LocalitySet) {
	t.Helper()
	if _, err := services.EnsureZoneMap(set, services.ZoneMapSpec{Schema: testSchema(), BloomCols: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := services.EnsureMicroindex(set, services.MicroindexSpec{Schema: testSchema(), Cols: []int{1}}); err != nil {
		t.Fatal(err)
	}
}

// TestScanSpecIndexPointLookup: a point lookup on a non-clustered key
// column visits strictly fewer pages with the microindex than zone-map
// blooms alone — the counters prove it — while returning identical rows,
// and a full-range scan never consults the index at all.
func TestScanSpecIndexPointLookup(t *testing.T) {
	bp := newPool(t, 32<<20)
	const n = 20000
	rows := permRows(n)
	set := loadColSet(t, bp, "c", rows)
	ensureBoth(t, set)
	npages := set.NumPages()
	if npages < 20 {
		t.Fatalf("need a multi-page set for this test, got %d pages", npages)
	}

	count := func(pred Predicate, hint ScanHint) int64 {
		t.Helper()
		got, err := ScanSpec{Set: set, Threads: 2, Pred: pred, Hint: hint}.CountBatches(nil)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	// visited reports how many pages a scan actually evaluated rows on,
	// from the counter deltas it caused.
	pred := ColEq{Col: 1, V: 4242}

	// Zone-map-only baseline: blooms over ~340 distinct keys per page are
	// nearly saturated, so most pages survive the probe.
	zc0, zs0 := set.ZoneMapChecks(), set.ZoneMapSkips()
	ic0 := set.IndexChecks()
	if got := count(pred, HintNoIndex); got != 1 {
		t.Fatalf("zone-map-only point lookup found %d rows, want 1", got)
	}
	bloomVisited := (set.ZoneMapChecks() - zc0) - (set.ZoneMapSkips() - zs0)
	if set.IndexChecks() != ic0 {
		t.Error("HintNoIndex still consulted the microindex")
	}
	if set.ZoneMapChecks()-zc0 != npages {
		t.Errorf("zone-map-only scan checked %d pages, want all %d", set.ZoneMapChecks()-zc0, npages)
	}

	// Indexed: the candidate list is exactly the one page holding the key;
	// the zone map then only sees that candidate.
	ic0, ih0 := set.IndexChecks(), set.IndexHits()
	zc0 = set.ZoneMapChecks()
	if got := count(pred, HintNone); got != 1 {
		t.Fatalf("indexed point lookup found %d rows, want 1", got)
	}
	checks, hits := set.IndexChecks()-ic0, set.IndexHits()-ih0
	if checks != npages {
		t.Errorf("index evaluated %d pages, want %d", checks, npages)
	}
	if hits != 1 {
		t.Errorf("index kept %d candidate pages, want 1", hits)
	}
	if zmc := set.ZoneMapChecks() - zc0; zmc != hits {
		t.Errorf("zone map checked %d pages after the index pass, want the %d candidates", zmc, hits)
	}
	if hits >= bloomVisited {
		t.Errorf("index visited %d pages, blooms alone visited %d — index must be strictly better here",
			hits, bloomVisited)
	}

	// Equivalence with the unpruned truth, row path included.
	if got := count(pred, HintNoPrune); got != 1 {
		t.Fatalf("unpruned point lookup found %d rows, want 1", got)
	}
	var rowN atomic.Int64
	err := ScanSpec{Set: set, Threads: 2, Pred: pred}.Run(func(_ int, r Row) error {
		if rowGroup(r) != 4242 {
			t.Errorf("indexed row scan surfaced key %d", rowGroup(r))
		}
		rowN.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rowN.Load() != 1 {
		t.Fatalf("indexed row scan found %d rows, want 1", rowN.Load())
	}

	// A full-range scan is unregressed: the predicate's shape cannot be
	// answered by postings, so the index is never consulted and every row
	// still arrives.
	ic0 = set.IndexChecks()
	if got := count(ColRange{Col: 0, Lo: 0, Hi: 1 << 40}, HintNone); got != n {
		t.Errorf("full-range scan found %d rows, want %d", got, n)
	}
	if set.IndexChecks() != ic0 {
		t.Error("full-range scan consulted the microindex")
	}
}

// TestScanSpecIndexEquivalenceRandom: on random data, indexed scans return
// exactly what zone-map-only and unpruned scans return, across point,
// conjunction and disjunction predicates, on both layouts and both
// pipelines.
func TestScanSpecIndexEquivalenceRandom(t *testing.T) {
	bp := newPool(t, 32<<20)
	rng := rand.New(rand.NewSource(42))
	const n = 8000
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = mkRow(uint32(i), uint32(rng.Intn(2000)), uint32(rng.Intn(100)))
	}
	colSet := loadColSet(t, bp, "c", rows)
	rowSet := loadSet(t, bp, "r", rows)
	ensureBoth(t, colSet)
	ensureBoth(t, rowSet)

	preds := []Predicate{
		ColEq{Col: 1, V: uint64(rng.Intn(2000))},
		ColEq{Col: 1, V: 2001}, // absent key: zero candidate pages
		And{ColEq{Col: 1, V: uint64(rng.Intn(2000))}, ColRange{Col: 2, Lo: 0, Hi: 50}},
		And{ColEq{Col: 1, V: 7}, ColEq{Col: 2, V: 3}}, // conjunction of two lookups (col 2 unindexed)
		Or{ColEq{Col: 1, V: 11}, ColEq{Col: 1, V: 1999}},
		Or{ColEq{Col: 1, V: 13}, ColRange{Col: 2, Lo: 90, Hi: 100}}, // unanswerable arm: no index use
	}
	for i := 0; i < 10; i++ {
		preds = append(preds, ColEq{Col: 1, V: uint64(rng.Intn(2200))})
	}
	for pi, pred := range preds {
		truth := int64(0)
		match, err := pred.compileRow(testSchema())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if match(r) {
				truth++
			}
		}
		for _, hint := range []ScanHint{HintNone, HintNoIndex, HintNoPrune} {
			got, err := ScanSpec{Set: colSet, Threads: 2, Pred: pred, Hint: hint}.CountBatches(nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != truth {
				t.Errorf("pred %d hint %d: batch scan found %d rows, want %d", pi, hint, got, truth)
			}
			var rn atomic.Int64
			err = ScanSpec{Set: rowSet, Threads: 2, Pred: pred, Schema: testSchema(), Hint: hint}.
				Run(func(int, Row) error { rn.Add(1); return nil })
			if err != nil {
				t.Fatal(err)
			}
			if rn.Load() != truth {
				t.Errorf("pred %d hint %d: row scan found %d rows, want %d", pi, hint, rn.Load(), truth)
			}
		}
	}
}

// TestScanSpecIgnoresStaleIndex: an index that no longer covers the set
// (pages appended after it was built) must never answer — authoritative
// semantics make a stale index wrong, not merely suboptimal.
func TestScanSpecIgnoresStaleIndex(t *testing.T) {
	bp := newPool(t, 16<<20)
	rows := permRows(4000)
	set := loadColSet(t, bp, "c", rows[:2000])
	ensureBoth(t, set)
	// Grow the set behind the attached index's back.
	if err := services.WriteAll(set, rows[2000:]); err != nil {
		t.Fatal(err)
	}
	pred := ColEq{Col: 1, V: uint64(rowGroup(rows[3999]))} // key only in the new pages
	ic0 := set.IndexChecks()
	got, err := ScanSpec{Set: set, Threads: 2, Pred: pred}.CountBatches(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("scan over stale-indexed set found %d rows, want 1", got)
	}
	if set.IndexChecks() != ic0 {
		t.Error("scan consulted an index that does not cover the set")
	}
}
