package query

import (
	"fmt"
	"sync"

	"pangea/internal/cluster"
	"pangea/internal/core"
	"pangea/internal/placement"
	"pangea/internal/services"
)

// Executor runs query pipelines over a Pangea deployment (Table 2:
// QueryScheduling + Pipeline). The computation processes are co-located
// with the workers, per Fig 2; each per-node pipeline therefore operates
// directly on the node's buffer pool, while cross-node movement (shuffle,
// broadcast) goes through the cluster protocol.
type Executor struct {
	Client  *cluster.Client
	Workers []*cluster.Worker
	Addrs   []string
	// Threads is the number of long-living worker threads per node.
	Threads int
}

// NewExecutor assembles an executor over co-located workers.
func NewExecutor(cl *cluster.Client, workers []*cluster.Worker, threads int) *Executor {
	addrs := make([]string, len(workers))
	for i, w := range workers {
		addrs[i] = w.Addr()
	}
	if threads < 1 {
		threads = 1
	}
	return &Executor{Client: cl, Workers: workers, Addrs: addrs, Threads: threads}
}

// Parallel runs fn on every node concurrently and returns the first error.
func (e *Executor) Parallel(fn func(node int, w *cluster.Worker) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(e.Workers))
	for i, w := range e.Workers {
		wg.Add(1)
		go func(i int, w *cluster.Worker) {
			defer wg.Done()
			errs[i] = fn(i, w)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Set returns the named locality set on one node.
func (e *Executor) Set(node int, name string) (*core.LocalitySet, error) {
	s, ok := e.Workers[node].Pool().GetSet(name)
	if !ok {
		return nil, fmt.Errorf("query: no set %q on node %d", name, node)
	}
	return s, nil
}

// ChooseReplica is the query scheduler's replica selection (§9.1.2): it
// consults the manager's statistics service for the source set's
// replication group and returns the replica registered under the wanted
// partition scheme. coPartitioned is false when no such replica exists and
// the source itself must be used (forcing a runtime repartition, the
// Spark-over-HDFS situation).
func (e *Executor) ChooseReplica(source, scheme string) (set string, coPartitioned bool) {
	group, err := e.Client.Replicas(source)
	if err != nil {
		return source, false
	}
	for _, r := range group {
		if r.Scheme == scheme {
			return r.Set, true
		}
	}
	return source, false
}

// Exchange repartitions per-node row streams onto a fresh distributed set
// keyed by key — the runtime shuffle a query needs when no co-partitioned
// replica exists. The new set is created on every node; rows are routed
// with the same partition->node placement the data placement system uses.
func (e *Executor) Exchange(name string, sources func(node int) Iter, key func(Row) []byte, pageSize int64) error {
	if err := e.Client.CreateSet(name, pageSize, uint8(core.WriteBack)); err != nil {
		return err
	}
	part := &placement.Partitioner{
		Scheme:        "exchange",
		NumPartitions: len(e.Workers) * 4,
		Key:           func(rec []byte) ([]byte, error) { return key(rec), nil },
	}
	return e.Parallel(func(node int, w *cluster.Worker) error {
		const batchSize = 256
		batches := make([][][]byte, len(e.Workers))
		flush := func(dst int) error {
			if len(batches[dst]) == 0 {
				return nil
			}
			err := e.Client.AddRecords(e.Addrs[dst], name, batches[dst])
			batches[dst] = batches[dst][:0]
			return err
		}
		var mu sync.Mutex
		err := sources(node)(func(r Row) error {
			dst, err := part.NodeOf(r, len(e.Workers))
			if err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			batches[dst] = append(batches[dst], append(Row(nil), r...))
			if len(batches[dst]) >= batchSize {
				return flush(dst)
			}
			return nil
		})
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for dst := range batches {
			if err := flush(dst); err != nil {
				return err
			}
		}
		return nil
	})
}

// Broadcast replicates the union of a distributed set onto every node as a
// fresh local set, through the cluster's fetch stream — the broadcast
// service feeding broadcast joins.
func (e *Executor) Broadcast(source, target string, pageSize int64) error {
	// Gather the full set once.
	var rows [][]byte
	for _, addr := range e.Addrs {
		err := e.Client.FetchSet(addr, source, func(rec []byte) error {
			rows = append(rows, append([]byte(nil), rec...))
			return nil
		})
		if err != nil {
			return err
		}
	}
	if err := e.Client.CreateSet(target, pageSize, uint8(core.WriteBack)); err != nil {
		return err
	}
	return e.Parallel(func(node int, w *cluster.Worker) error {
		const batch = 512
		for i := 0; i < len(rows); i += batch {
			j := i + batch
			if j > len(rows) {
				j = len(rows)
			}
			if err := e.Client.AddRecords(e.Addrs[node], target, rows[i:j]); err != nil {
				return err
			}
		}
		return nil
	})
}

// DropEverywhere removes a set from every node, ignoring missing-set
// errors (a node may hold no pages of a sparse set).
func (e *Executor) DropEverywhere(name string) {
	for _, addr := range e.Addrs {
		_ = e.Client.DropSet(addr, name)
	}
}

// DistributedAggregate runs the two aggregation stages across the cluster:
// local hash aggregation per node over in(node), then a final merge of the
// per-node partials at the coordinator.
func (e *Executor) DistributedAggregate(tag string, in func(node int) Iter, spec AggSpec) (map[string][]byte, error) {
	return e.DistributedMerge(func(node int, w *cluster.Worker) (map[string][]byte, error) {
		setName := fmt.Sprintf("%s-agg-%d", tag, node)
		// The hash service pins one active page per root partition; keep
		// their combined footprint a small fraction of the pool so the
		// aggregation composes with concurrent scans under memory pressure.
		pageSize := w.Pool().Capacity() / 32
		if pageSize > 256<<10 {
			pageSize = 256 << 10
		}
		if pageSize < 8<<10 {
			pageSize = 8 << 10
		}
		set, err := w.Pool().CreateSet(core.SetSpec{Name: setName, PageSize: pageSize})
		if err != nil {
			return nil, err
		}
		h, err := LocalAggregate(in(node), set, 4, spec)
		if err != nil {
			_ = w.Pool().DropSet(set)
			return nil, err
		}
		res, err := FinalAggregate([]*services.VirtualHashBuffer{h}, spec)
		if derr := w.Pool().DropSet(set); err == nil {
			err = derr
		}
		return res, err
	}, spec.Combine)
}

// DistributedMerge runs one partial-result producer per node in parallel
// and merges the per-node maps with combine — the cross-node final stage
// shared by the row aggregation above and the columnar batch pipelines
// (query.AggBatches per node, merged here).
func (e *Executor) DistributedMerge(run func(node int, w *cluster.Worker) (map[string][]byte, error), combine func(dst, src []byte)) (map[string][]byte, error) {
	partials := make([]map[string][]byte, len(e.Workers))
	err := e.Parallel(func(node int, w *cluster.Worker) error {
		m, err := run(node, w)
		if err != nil {
			return err
		}
		partials[node] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte)
	for _, p := range partials {
		for k, v := range p {
			if old, ok := out[k]; ok {
				combine(old, v)
			} else {
				out[k] = append([]byte(nil), v...)
			}
		}
	}
	return out, nil
}
