package query

import (
	"encoding/binary"
	"testing"
)

// The sinks below used to serialize every emitted row behind one mutex
// (and LocalAggregate shared one scratch buffer across threads under it).
// These regression tests drive each sink from a many-threaded Scan; run
// under -race they fail if per-thread partials ever share state, and their
// assertions fail if a partial is lost in the merge.

func TestCountParallel(t *testing.T) {
	bp := newPool(t, 8<<20)
	s := loadSet(t, bp, "s", testRows(20000))
	n, err := Count(Scan(s, 8))
	if err != nil {
		t.Fatal(err)
	}
	if n != 20000 {
		t.Fatalf("count = %d, want 20000", n)
	}
}

func TestCollectParallel(t *testing.T) {
	bp := newPool(t, 8<<20)
	rows := testRows(10000)
	s := loadSet(t, bp, "s", rows)
	got, err := Collect(Scan(s, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("collected %d rows, want %d", len(got), len(rows))
	}
	// Every id exactly once, rows intact (order across threads is free).
	seen := make(map[uint32]uint32, len(got))
	for _, r := range got {
		seen[rowID(r)] = rowAmount(r)
	}
	if len(seen) != len(rows) {
		t.Fatalf("%d distinct ids, want %d", len(seen), len(rows))
	}
	for _, r := range rows {
		if seen[rowID(r)] != rowAmount(r) {
			t.Fatalf("row %d corrupted: amount %d, want %d", rowID(r), seen[rowID(r)], rowAmount(r))
		}
	}
}

// TestLocalAggregateParallelRace: a many-threaded aggregation must produce
// exact group sums. Before the per-thread accumulator fix, all threads
// zeroed and filled one shared val buffer, so -race flags the old design
// and lost updates skew the sums.
func TestLocalAggregateParallelRace(t *testing.T) {
	bp := newPool(t, 16<<20)
	rows := testRows(30000)
	s := loadSet(t, bp, "s", rows)
	spec := AggSpec{
		Key:     func(r Row) []byte { return r[4:8] },
		ValSize: 16,
		Init: func(r Row, val []byte) {
			binary.LittleEndian.PutUint64(val[0:8], uint64(rowAmount(r)))
			binary.LittleEndian.PutUint64(val[8:16], 1)
		},
		Combine: func(dst, src []byte) {
			binary.LittleEndian.PutUint64(dst[0:8],
				binary.LittleEndian.Uint64(dst[0:8])+binary.LittleEndian.Uint64(src[0:8]))
			binary.LittleEndian.PutUint64(dst[8:16],
				binary.LittleEndian.Uint64(dst[8:16])+binary.LittleEndian.Uint64(src[8:16]))
		},
	}
	got, err := Aggregate(Scan(s, 8), bp, "agg", spec)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := make(map[uint32]uint64)
	wantCnt := make(map[uint32]uint64)
	for _, r := range rows {
		wantSum[rowGroup(r)] += uint64(rowAmount(r))
		wantCnt[rowGroup(r)]++
	}
	if len(got) != len(wantSum) {
		t.Fatalf("%d groups, want %d", len(got), len(wantSum))
	}
	for k, v := range got {
		g := binary.LittleEndian.Uint32([]byte(k))
		sum := binary.LittleEndian.Uint64(v[0:8])
		cnt := binary.LittleEndian.Uint64(v[8:16])
		if sum != wantSum[g] || cnt != wantCnt[g] {
			t.Errorf("group %d: sum/cnt %d/%d, want %d/%d", g, sum, cnt, wantSum[g], wantCnt[g])
		}
	}
}

// TestPartialsPropagatesError: an error from the sink body must surface,
// not vanish into a pooled state.
func TestPartialsPropagatesError(t *testing.T) {
	bp := newPool(t, 8<<20)
	s := loadSet(t, bp, "s", testRows(100))
	spec := AggSpec{
		Key:     func(r Row) []byte { return r[0:4] },
		ValSize: 4,
		Init:    func(Row, []byte) {},
		Combine: func([]byte, []byte) {},
	}
	// Aggregating into a dropped set makes every thread's hash-page
	// allocation fail; LocalAggregate must report it, not swallow it in a
	// pooled partial.
	dead := loadSet(t, bp, "dead", nil)
	if err := bp.DropSet(dead); err != nil {
		t.Fatal(err)
	}
	if _, err := LocalAggregate(Scan(s, 4), dead, 4, spec); err == nil {
		t.Error("LocalAggregate into a dropped set must error")
	}
}
