package query

import (
	"encoding/binary"
	"fmt"
	"testing"

	"pangea/internal/cluster"
	"pangea/internal/core"
	"pangea/internal/disk"
	"pangea/internal/services"
)

func newPool(t *testing.T, mem int64) *core.BufferPool {
	t.Helper()
	arr, err := disk.NewArray(t.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	bp, err := core.NewPool(core.PoolConfig{Memory: mem, Array: arr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	return bp
}

func loadSet(t *testing.T, bp *core.BufferPool, name string, rows []Row) *core.LocalitySet {
	t.Helper()
	s, err := bp.CreateSet(core.SetSpec{Name: name, PageSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := services.WriteAll(s, rows); err != nil {
		t.Fatal(err)
	}
	return s
}

// row encodes (id, group, amount).
func mkRow(id, group, amount uint32) Row {
	r := make(Row, 12)
	binary.LittleEndian.PutUint32(r[0:4], id)
	binary.LittleEndian.PutUint32(r[4:8], group)
	binary.LittleEndian.PutUint32(r[8:12], amount)
	return r
}

func rowID(r Row) uint32     { return binary.LittleEndian.Uint32(r[0:4]) }
func rowGroup(r Row) uint32  { return binary.LittleEndian.Uint32(r[4:8]) }
func rowAmount(r Row) uint32 { return binary.LittleEndian.Uint32(r[8:12]) }

func testRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = mkRow(uint32(i), uint32(i%7), uint32(i%100))
	}
	return rows
}

func TestScanFilterCount(t *testing.T) {
	bp := newPool(t, 4<<20)
	s := loadSet(t, bp, "rows", testRows(1000))
	even := Filter(Scan(s, 3), func(r Row) bool { return rowID(r)%2 == 0 })
	n, err := Count(even)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Errorf("count = %d, want 500", n)
	}
}

func TestFlattenExpandsRows(t *testing.T) {
	bp := newPool(t, 4<<20)
	s := loadSet(t, bp, "rows", testRows(50))
	dup := Flatten(Scan(s, 1), func(r Row, out func(Row) error) error {
		if err := out(r); err != nil {
			return err
		}
		return out(r)
	})
	n, err := Count(dup)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("count = %d, want 100", n)
	}
}

func TestMapTransforms(t *testing.T) {
	bp := newPool(t, 4<<20)
	s := loadSet(t, bp, "rows", testRows(10))
	doubled := Map(Scan(s, 1), func(r Row) (Row, error) {
		out := append(Row(nil), r...)
		binary.LittleEndian.PutUint32(out[8:12], rowAmount(r)*2)
		return out, nil
	})
	rows, err := Collect(doubled)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if rowAmount(r) != (rowID(r)%100)*2 {
			t.Errorf("row %d amount = %d", rowID(r), rowAmount(r))
		}
	}
}

func sumSpec() AggSpec {
	return AggSpec{
		Key: func(r Row) []byte { return r[4:8] },
		// Accumulator: [sum u64][count u64]
		ValSize: 16,
		Init: func(r Row, val []byte) {
			binary.LittleEndian.PutUint64(val[0:8], uint64(rowAmount(r)))
			binary.LittleEndian.PutUint64(val[8:16], 1)
		},
		Combine: func(dst, src []byte) {
			binary.LittleEndian.PutUint64(dst[0:8], binary.LittleEndian.Uint64(dst[0:8])+binary.LittleEndian.Uint64(src[0:8]))
			binary.LittleEndian.PutUint64(dst[8:16], binary.LittleEndian.Uint64(dst[8:16])+binary.LittleEndian.Uint64(src[8:16]))
		},
	}
}

func TestAggregateMatchesReference(t *testing.T) {
	bp := newPool(t, 8<<20)
	rows := testRows(5000)
	s := loadSet(t, bp, "rows", rows)

	wantSum := make(map[uint32]uint64)
	wantCnt := make(map[uint32]uint64)
	for _, r := range rows {
		wantSum[rowGroup(r)] += uint64(rowAmount(r))
		wantCnt[rowGroup(r)]++
	}

	got, err := Aggregate(Scan(s, 2), bp, "agg-tmp", sumSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("groups = %d, want 7", len(got))
	}
	for k, v := range got {
		g := binary.LittleEndian.Uint32([]byte(k))
		sum := binary.LittleEndian.Uint64(v[0:8])
		cnt := binary.LittleEndian.Uint64(v[8:16])
		if sum != wantSum[g] || cnt != wantCnt[g] {
			t.Errorf("group %d: sum=%d cnt=%d, want %d/%d", g, sum, cnt, wantSum[g], wantCnt[g])
		}
	}
}

func TestBroadcastJoin(t *testing.T) {
	bp := newPool(t, 8<<20)
	// Build side: group -> name row [group u32][tag byte].
	var build []Row
	for g := uint32(0); g < 7; g++ {
		r := make(Row, 5)
		binary.LittleEndian.PutUint32(r[0:4], g)
		r[4] = byte('a' + g)
		build = append(build, r)
	}
	bs := loadSet(t, bp, "dim", build)
	probe := loadSet(t, bp, "fact", testRows(700))

	mapSet, err := bp.CreateSet(core.SetSpec{Name: "joinmap", PageSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildBroadcastMap(Scan(bs, 1), mapSet, func(r Row) []byte { return r[0:4] })
	if err != nil {
		t.Fatal(err)
	}
	joined := HashJoin(Scan(probe, 2), m, func(r Row) []byte { return r[4:8] },
		func(pr, br Row) Row {
			out := make(Row, 13)
			copy(out, pr)
			out[12] = br[4]
			return out
		})
	rows, err := Collect(joined)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 700 {
		t.Fatalf("joined rows = %d, want 700", len(rows))
	}
	for _, r := range rows {
		if r[12] != byte('a'+rowGroup(r)) {
			t.Errorf("row %d joined wrong dim tag %c", rowID(r), r[12])
		}
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	bp := newPool(t, 8<<20)
	var build []Row
	for g := uint32(0); g < 3; g++ { // groups 0..2 exist
		r := make(Row, 4)
		binary.LittleEndian.PutUint32(r, g)
		build = append(build, r)
	}
	bs := loadSet(t, bp, "dim", build)
	probe := loadSet(t, bp, "fact", testRows(700)) // groups 0..6

	mapSet, _ := bp.CreateSet(core.SetSpec{Name: "jm", PageSize: 64 << 10})
	m, err := BuildBroadcastMap(Scan(bs, 1), mapSet, func(r Row) []byte { return r[0:4] })
	if err != nil {
		t.Fatal(err)
	}
	probeKey := func(r Row) []byte { return r[4:8] }
	semi, err := Count(SemiJoin(Scan(probe, 1), m, probeKey))
	if err != nil {
		t.Fatal(err)
	}
	anti, err := Count(AntiJoin(Scan(probe, 1), m, probeKey))
	if err != nil {
		t.Fatal(err)
	}
	if semi+anti != 700 {
		t.Errorf("semi %d + anti %d != 700", semi, anti)
	}
	if semi != 300 { // groups 0,1,2 of 0..6 -> 3/7 of 700
		t.Errorf("semi = %d, want 300", semi)
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	bp := newPool(t, 8<<20)
	s := loadSet(t, bp, "in", testRows(300))
	out, err := bp.CreateSet(core.SetSpec{Name: "out", PageSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Materialize(Filter(Scan(s, 2), func(r Row) bool { return rowGroup(r) == 0 }), out)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Count(Scan(out, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n != m {
		t.Errorf("materialized %d but re-scan found %d", n, m)
	}
}

// --- distributed executor tests --------------------------------------------

const testKey = "query-test-key"

func startExec(t *testing.T, nodes int) *Executor {
	t.Helper()
	mgr, err := cluster.NewManager("127.0.0.1:0", testKey)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })
	cl := cluster.NewClient(mgr.Addr(), testKey)
	var workers []*cluster.Worker
	for i := 0; i < nodes; i++ {
		w, err := cluster.NewWorker("127.0.0.1:0", cluster.WorkerConfig{
			PrivateKey: testKey, Memory: 16 << 20, DiskDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		if _, err := cl.RegisterWorker(w.Addr()); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	return NewExecutor(cl, workers, 2)
}

func loadDistributed(t *testing.T, e *Executor, name string, rows []Row) {
	t.Helper()
	if err := e.Client.CreateSet(name, 64<<10, uint8(core.WriteBack)); err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		node := i % len(e.Workers)
		if err := e.Client.AddRecords(e.Addrs[node], name, [][]byte{r}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExchangeCoPartitions(t *testing.T) {
	e := startExec(t, 3)
	rows := testRows(600)
	loadDistributed(t, e, "src", rows)
	key := func(r Row) []byte { return r[4:8] }
	err := e.Exchange("exd", func(node int) Iter {
		return func(emit func(Row) error) error {
			s, err := e.Set(node, "src")
			if err != nil {
				return err
			}
			return Scan(s, 2)(emit)
		}
	}, key, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	// After the exchange, all rows of one group live on one node.
	groupNode := make(map[uint32]int)
	var total int
	for node := range e.Workers {
		s, err := e.Set(node, "exd")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(Scan(s, 1))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			total++
			g := rowGroup(r)
			if prev, ok := groupNode[g]; ok && prev != node {
				t.Errorf("group %d split across nodes %d and %d", g, prev, node)
			}
			groupNode[g] = node
		}
	}
	if total != 600 {
		t.Errorf("exchanged %d rows, want 600", total)
	}
}

func TestBroadcastReplicatesEverywhere(t *testing.T) {
	e := startExec(t, 3)
	rows := testRows(90)
	loadDistributed(t, e, "dim", rows)
	if err := e.Broadcast("dim", "dim-b", 64<<10); err != nil {
		t.Fatal(err)
	}
	for node := range e.Workers {
		s, err := e.Set(node, "dim-b")
		if err != nil {
			t.Fatal(err)
		}
		n, err := Count(Scan(s, 1))
		if err != nil {
			t.Fatal(err)
		}
		if n != 90 {
			t.Errorf("node %d broadcast copy has %d rows, want 90", node, n)
		}
	}
}

func TestDistributedAggregate(t *testing.T) {
	e := startExec(t, 3)
	rows := testRows(3000)
	loadDistributed(t, e, "fact", rows)
	got, err := e.DistributedAggregate("t", func(node int) Iter {
		return func(emit func(Row) error) error {
			s, err := e.Set(node, "fact")
			if err != nil {
				return err
			}
			return Scan(s, 2)(emit)
		}
	}, sumSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("groups = %d, want 7", len(got))
	}
	var totalCnt uint64
	for _, v := range got {
		totalCnt += binary.LittleEndian.Uint64(v[8:16])
	}
	if totalCnt != 3000 {
		t.Errorf("total count = %d, want 3000", totalCnt)
	}
}

func TestChooseReplicaConsultsStatistics(t *testing.T) {
	e := startExec(t, 2)
	if err := e.Client.RegisterReplica("lineitem", "lineitem_pt", "hash(l_partkey)"); err != nil {
		t.Fatal(err)
	}
	set, ok := e.ChooseReplica("lineitem", "hash(l_partkey)")
	if !ok || set != "lineitem_pt" {
		t.Errorf("ChooseReplica = %q, %v; want lineitem_pt, true", set, ok)
	}
	set, ok = e.ChooseReplica("lineitem", "hash(l_suppkey)")
	if ok || set != "lineitem" {
		t.Errorf("missing scheme: got %q, %v; want lineitem, false", set, ok)
	}
}

func ExampleFilter() {
	pred := func(r Row) bool { return len(r) > 0 && r[0] == 'x' }
	in := Iter(func(emit func(Row) error) error {
		for _, s := range []string{"x1", "y2", "x3"} {
			if err := emit(Row(s)); err != nil {
				return err
			}
		}
		return nil
	})
	n, _ := Count(Filter(in, pred))
	fmt.Println(n)
	// Output: 2
}
