package query

import (
	"encoding/binary"
	"fmt"
	"math"

	"pangea/internal/services"
)

// The predicate algebra: declarative filter expressions over fixed-width
// columns that one ScanSpec pushes down through all three layers of a scan —
// compiled to a row closure for record scans, to the typed Sel* batch
// kernels for columnar scans, and to a zone-map prune check that drops whole
// pages before they are pinned, read, or speculated on. An opaque
// func(Row) bool can only do the first; the scanner cannot see inside it,
// which is why the scan API takes a Predicate instead.
//
// Column indices address the scan's schema ([]services.ColumnSpec): for
// columnar sets the set's own column order, for row sets whatever schema the
// caller passes in ScanSpec. Integer comparisons use the column's unsigned
// little-endian interpretation; ColRangeF64 is the float64 view.

// PruneStats is the per-page summary surface a predicate consults to prove
// pages empty of matches — implemented by *services.ZoneMap. All methods are
// conservative: ok=false (or MayContain=true) means "cannot exclude".
type PruneStats interface {
	// ColRangeU returns the page's [min,max] for a column under the
	// unsigned interpretation.
	ColRangeU(pageNum int64, col int) (lo, hi uint64, ok bool)
	// ColRangeF64 returns the page's [min,max] for an 8-byte column under
	// the float64 interpretation.
	ColRangeF64(pageNum int64, col int) (lo, hi float64, ok bool)
	// MayContain reports whether the page may hold value v in the column.
	MayContain(pageNum int64, col int, v uint64) bool
}

// PointIndex is the candidate-lookup surface a microindex exposes to
// equality predicates — implemented by *services.Microindex. Unlike
// PruneStats it is authoritative, not conservative: an answered lookup
// asserts that every page holding the value is in the result, so pages
// absent from it are excluded outright. ScanSpec therefore only consults a
// PointIndex after Covers confirms the index describes every page the scan
// would visit.
type PointIndex interface {
	// Covers reports whether every page 0..n-1 is described by the index.
	Covers(n int64) bool
	// LookupPages returns the sorted candidate pages that may hold value v
	// in column col. ok=false means the column is not indexed and nothing
	// can be concluded; ok=true with an empty result means no page holds v.
	LookupPages(col int, v uint64) (pages []int64, ok bool)
}

// Predicate is one filter expression. Implementations are the algebra's
// node types (ColRange, ColRangeF64, ColEq, And, Or, RowPred); the methods
// are unexported because the set of compilation targets is the scan API's
// concern, not an extension point.
type Predicate interface {
	// compileRow compiles the predicate to a row closure over the schema —
	// and is also the validation gate: a column index out of range or a
	// width the node cannot handle errors here, for the batch path too.
	compileRow(schema []services.ColumnSpec) (func(Row) bool, error)
	// applyBatch narrows a batch's selection to the matching rows.
	applyBatch(b *Batch) error
	// evalBatchRow evaluates one row of a batch — the composition path Or
	// uses, where child selections cannot simply intersect.
	evalBatchRow(b *Batch, row int) bool
	// prune reports whether the page provably holds no matching row.
	prune(stats PruneStats, pageNum int64) bool
	// indexPages answers the predicate from a point index: the sorted pages
	// that may hold a matching row. ok=false means the predicate's shape (or
	// the index's column set) cannot answer it, and the scan falls back to
	// visiting every page; an answered result is authoritative and must not
	// omit any page that could match.
	indexPages(idx PointIndex) (pages []int64, ok bool)
}

// schemaCol validates a column index against the schema.
func schemaCol(schema []services.ColumnSpec, c int) (services.ColumnSpec, error) {
	if c < 0 || c >= len(schema) {
		return services.ColumnSpec{}, fmt.Errorf("query: predicate column %d out of range [0,%d)", c, len(schema))
	}
	return schema[c], nil
}

// widthMax returns the largest value a w-byte unsigned column can hold.
func widthMax(w int) uint64 {
	if w >= 8 {
		return math.MaxUint64
	}
	return 1<<(8*w) - 1
}

// readU builds a width-specialized unsigned reader at offset off; short
// records read as "no match" through the caller's length guard.
func readU(off, w int) func(Row) uint64 {
	switch w {
	case 1:
		return func(r Row) uint64 { return uint64(r[off]) }
	case 2:
		return func(r Row) uint64 { return uint64(binary.LittleEndian.Uint16(r[off:])) }
	case 4:
		return func(r Row) uint64 { return uint64(binary.LittleEndian.Uint32(r[off:])) }
	default:
		return func(r Row) uint64 { return binary.LittleEndian.Uint64(r[off:]) }
	}
}

// batchU reads one unsigned lane from a batch, any width.
func batchU(b *Batch, c, row int) uint64 {
	switch b.Width(c) {
	case 1:
		return uint64(b.Byte(c, row))
	case 2:
		return uint64(b.U16(c, row))
	case 4:
		return uint64(b.U32(c, row))
	default:
		return b.U64(c, row)
	}
}

// selNone clears a batch's selection — the compiled form of a vacuously
// false predicate (e.g. an empty range).
func selNone(b *Batch) { b.narrow(func(int32) bool { return false }) }

// ColRange keeps rows with Lo <= col < Hi under the column's unsigned
// interpretation — the half-open integer range node (dates, quantities,
// keys). An empty range (Hi <= Lo) matches nothing, and so prunes every
// page. The one value a width-8 range cannot reach is MaxUint64 itself
// (Hi is exclusive); use ColEq for that point.
type ColRange struct {
	Col    int
	Lo, Hi uint64
}

func (p ColRange) compileRow(schema []services.ColumnSpec) (func(Row) bool, error) {
	spec, err := schemaCol(schema, p.Col)
	if err != nil {
		return nil, err
	}
	switch spec.Width {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("query: ColRange over column %d of width %d", p.Col, spec.Width)
	}
	end := spec.Offset + spec.Width
	read := readU(spec.Offset, spec.Width)
	lo, hi := p.Lo, p.Hi
	return func(r Row) bool {
		if len(r) < end {
			return false
		}
		v := read(r)
		return v >= lo && v < hi
	}, nil
}

func (p ColRange) applyBatch(b *Batch) error {
	w := b.Width(p.Col)
	maxV := widthMax(w)
	if p.Hi <= p.Lo || p.Lo > maxV {
		selNone(b)
		return nil
	}
	if w < 8 && p.Hi > maxV {
		// The range is unbounded above within this column's domain.
		if p.Lo == 0 {
			return nil // matches every value: nothing to narrow
		}
		lo := p.Lo
		c := p.Col
		b.narrow(func(i int32) bool { return batchU(b, c, int(i)) >= lo })
		return nil
	}
	switch w {
	case 1:
		b.SelByteRange(p.Col, p.Lo, p.Hi)
	case 2:
		b.SelU16Range(p.Col, uint16(p.Lo), uint16(p.Hi))
	case 4:
		b.SelU32Range(p.Col, uint32(p.Lo), uint32(p.Hi))
	default:
		b.SelU64Range(p.Col, p.Lo, p.Hi)
	}
	return nil
}

func (p ColRange) evalBatchRow(b *Batch, row int) bool {
	v := batchU(b, p.Col, row)
	return v >= p.Lo && v < p.Hi
}

func (p ColRange) prune(stats PruneStats, pageNum int64) bool {
	if p.Hi <= p.Lo {
		return true
	}
	min, max, ok := stats.ColRangeU(pageNum, p.Col)
	return ok && (max < p.Lo || min >= p.Hi)
}

func (p ColRange) indexPages(PointIndex) ([]int64, bool) { return nil, false }

// ColRangeF64 keeps rows with Lo <= col <= Hi under the float64
// interpretation of an 8-byte column — closed on both ends, the shape of
// TPC-H's discount band. NaN lanes never match.
type ColRangeF64 struct {
	Col    int
	Lo, Hi float64
}

func (p ColRangeF64) compileRow(schema []services.ColumnSpec) (func(Row) bool, error) {
	spec, err := schemaCol(schema, p.Col)
	if err != nil {
		return nil, err
	}
	if spec.Width != 8 {
		return nil, fmt.Errorf("query: ColRangeF64 over column %d of width %d, want 8", p.Col, spec.Width)
	}
	end := spec.Offset + 8
	off := spec.Offset
	lo, hi := p.Lo, p.Hi
	return func(r Row) bool {
		if len(r) < end {
			return false
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(r[off:]))
		return v >= lo && v <= hi
	}, nil
}

func (p ColRangeF64) applyBatch(b *Batch) error {
	b.SelF64Range(p.Col, p.Lo, p.Hi)
	return nil
}

func (p ColRangeF64) evalBatchRow(b *Batch, row int) bool {
	v := b.F64(p.Col, row)
	return v >= p.Lo && v <= p.Hi
}

func (p ColRangeF64) prune(stats PruneStats, pageNum int64) bool {
	min, max, ok := stats.ColRangeF64(pageNum, p.Col)
	return ok && (max < p.Lo || min > p.Hi)
}

func (p ColRangeF64) indexPages(PointIndex) ([]int64, bool) { return nil, false }

// ColEq keeps rows whose column equals V — the equality node, and the one
// that exploits a zone map's bloom filter: min/max cannot prune a point
// probe on an unclustered column, a bloom usually can.
type ColEq struct {
	Col int
	V   uint64
}

func (p ColEq) compileRow(schema []services.ColumnSpec) (func(Row) bool, error) {
	spec, err := schemaCol(schema, p.Col)
	if err != nil {
		return nil, err
	}
	switch spec.Width {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("query: ColEq over column %d of width %d", p.Col, spec.Width)
	}
	end := spec.Offset + spec.Width
	read := readU(spec.Offset, spec.Width)
	v := p.V
	return func(r Row) bool { return len(r) >= end && read(r) == v }, nil
}

func (p ColEq) applyBatch(b *Batch) error {
	w := b.Width(p.Col)
	if p.V > widthMax(w) {
		selNone(b)
		return nil
	}
	switch {
	case w == 1:
		b.SelByteEq(p.Col, byte(p.V))
	case p.V == widthMax(w):
		// V+1 would wrap the kernel's exclusive bound; evaluate directly.
		c, v := p.Col, p.V
		b.narrow(func(i int32) bool { return batchU(b, c, int(i)) == v })
	case w == 2:
		b.SelU16Range(p.Col, uint16(p.V), uint16(p.V)+1)
	case w == 4:
		b.SelU32Range(p.Col, uint32(p.V), uint32(p.V)+1)
	default:
		b.SelU64Range(p.Col, p.V, p.V+1)
	}
	return nil
}

func (p ColEq) evalBatchRow(b *Batch, row int) bool {
	return batchU(b, p.Col, row) == p.V
}

func (p ColEq) prune(stats PruneStats, pageNum int64) bool {
	return !stats.MayContain(pageNum, p.Col, p.V)
}

// indexPages is the node the microindex exists for: a point probe answers
// directly from the value's posting list.
func (p ColEq) indexPages(idx PointIndex) ([]int64, bool) {
	return idx.LookupPages(p.Col, p.V)
}

// And is the conjunction of its children: each child narrows the batch
// selection in turn, and a page any child can prune is pruned. An empty And
// matches everything.
type And []Predicate

func (p And) compileRow(schema []services.ColumnSpec) (func(Row) bool, error) {
	fns := make([]func(Row) bool, len(p))
	for i, c := range p {
		fn, err := c.compileRow(schema)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	return func(r Row) bool {
		for _, fn := range fns {
			if !fn(r) {
				return false
			}
		}
		return true
	}, nil
}

func (p And) applyBatch(b *Batch) error {
	for _, c := range p {
		if err := c.applyBatch(b); err != nil {
			return err
		}
	}
	return nil
}

func (p And) evalBatchRow(b *Batch, row int) bool {
	for _, c := range p {
		if !c.evalBatchRow(b, row) {
			return false
		}
	}
	return true
}

func (p And) prune(stats PruneStats, pageNum int64) bool {
	for _, c := range p {
		if c.prune(stats, pageNum) {
			return true
		}
	}
	return false
}

// indexPages intersects the answers of whichever children the index can
// answer: a conjunction's matches lie in every child's candidate set, so one
// answered child is enough, and unanswerable children simply don't narrow.
func (p And) indexPages(idx PointIndex) ([]int64, bool) {
	var out []int64
	answered := false
	for _, c := range p {
		pages, ok := c.indexPages(idx)
		if !ok {
			continue
		}
		if !answered {
			out, answered = pages, true
			continue
		}
		out = intersectSorted(out, pages)
	}
	return out, answered
}

// Or is the disjunction of its children: a row matches if any child does,
// and a page is pruned only if every child prunes it. An empty Or matches
// nothing (and still prunes no page — vacuous disjunctions aren't worth a
// special case in the prune path).
type Or []Predicate

func (p Or) compileRow(schema []services.ColumnSpec) (func(Row) bool, error) {
	fns := make([]func(Row) bool, len(p))
	for i, c := range p {
		fn, err := c.compileRow(schema)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	return func(r Row) bool {
		for _, fn := range fns {
			if fn(r) {
				return true
			}
		}
		return false
	}, nil
}

func (p Or) applyBatch(b *Batch) error {
	// Children cannot narrow sequentially (each would intersect); evaluate
	// the union row-at-a-time over the current selection.
	b.narrow(func(i int32) bool { return p.evalBatchRow(b, int(i)) })
	return nil
}

func (p Or) evalBatchRow(b *Batch, row int) bool {
	for _, c := range p {
		if c.evalBatchRow(b, row) {
			return true
		}
	}
	return false
}

func (p Or) prune(stats PruneStats, pageNum int64) bool {
	if len(p) == 0 {
		return false
	}
	for _, c := range p {
		if !c.prune(stats, pageNum) {
			return false
		}
	}
	return true
}

// indexPages unions the children's answers — sound only when every child is
// answered, since a single unanswerable child could match anywhere. An empty
// Or stays unanswered, mirroring the prune path's treatment of vacuous
// disjunctions.
func (p Or) indexPages(idx PointIndex) ([]int64, bool) {
	if len(p) == 0 {
		return nil, false
	}
	var out []int64
	for _, c := range p {
		pages, ok := c.indexPages(idx)
		if !ok {
			return nil, false
		}
		out = unionSorted(out, pages)
	}
	return out, true
}

// RowPred is the escape hatch: an opaque row closure for the filter shapes
// the algebra cannot express (cross-column comparisons, decoded string
// probes). It pushes down to the row layer only — batch evaluation
// materializes each candidate row, and no page is ever pruned by it —
// so keep the selective, column-local parts of a filter in algebra nodes
// and put only the residual here, typically under an And.
type RowPred func(Row) bool

func (p RowPred) compileRow([]services.ColumnSpec) (func(Row) bool, error) {
	if p == nil {
		return nil, fmt.Errorf("query: nil RowPred")
	}
	return p, nil
}

func (p RowPred) applyBatch(b *Batch) error {
	b.narrow(func(i int32) bool { return p(b.MaterializeRow(int(i), nil)) })
	return nil
}

func (p RowPred) evalBatchRow(b *Batch, row int) bool {
	return p(b.MaterializeRow(row, nil))
}

func (p RowPred) prune(PruneStats, int64) bool { return false }

func (p RowPred) indexPages(PointIndex) ([]int64, bool) { return nil, false }

// intersectSorted merges two ascending page lists into their intersection.
func intersectSorted(a, b []int64) []int64 {
	out := make([]int64, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// unionSorted merges two ascending page lists into their deduplicated union.
func unionSorted(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
