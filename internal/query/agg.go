package query

import (
	"fmt"
	"sync"

	"pangea/internal/core"
	"pangea/internal/services"
)

// AggSpec defines a hash aggregation (Table 2: Hash + Aggregate). Values
// are fixed-size byte vectors; Init seeds the accumulator from a row and
// Combine merges two accumulators in place — the classic
// initialize/accumulate/merge contract that makes local partials mergeable
// in a final stage.
type AggSpec struct {
	// Key extracts the grouping key.
	Key func(Row) []byte
	// ValSize is the accumulator width in bytes.
	ValSize int
	// Init writes a row's contribution into the zeroed accumulator val.
	Init func(r Row, val []byte)
	// Combine merges src into dst.
	Combine func(dst, src []byte)
}

// LocalAggregate runs the local aggregation stage (Table 2: "Aggregate:
// local stage") on one node: rows stream into a virtual hash buffer whose
// pages live in the given locality set, spilling partials under memory
// pressure. numRoot is the root partition count of the hash service.
func LocalAggregate(in Iter, set *core.LocalitySet, numRoot int, spec AggSpec) (*services.VirtualHashBuffer, error) {
	h, err := services.NewVirtualHashBuffer(set, numRoot, spec.ValSize, spec.Combine)
	if err != nil {
		return nil, err
	}
	val := make([]byte, spec.ValSize)
	var mu sync.Mutex
	err = in(func(r Row) error {
		mu.Lock()
		defer mu.Unlock()
		for i := range val {
			val[i] = 0
		}
		spec.Init(r, val)
		return h.Upsert(spec.Key(r), val)
	})
	if cerr := h.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return h, nil
}

// FinalAggregate merges the partial results of per-node local stages into
// one map (Table 2: "Aggregate: final stage").
func FinalAggregate(partials []*services.VirtualHashBuffer, spec AggSpec) (map[string][]byte, error) {
	out := make(map[string][]byte)
	for _, h := range partials {
		err := h.Walk(func(key, val []byte) error {
			k := string(key)
			if old, ok := out[k]; ok {
				spec.Combine(old, val)
			} else {
				out[k] = append([]byte(nil), val...)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Aggregate runs both stages on a single node: a convenience for
// micro-benchmarks and examples.
func Aggregate(in Iter, bp *core.BufferPool, setName string, spec AggSpec) (map[string][]byte, error) {
	set, err := bp.CreateSet(core.SetSpec{Name: setName, PageSize: 256 << 10})
	if err != nil {
		return nil, fmt.Errorf("query: aggregate set: %w", err)
	}
	h, err := LocalAggregate(in, set, 8, spec)
	if err != nil {
		return nil, err
	}
	res, err := FinalAggregate([]*services.VirtualHashBuffer{h}, spec)
	if derr := bp.DropSet(set); err == nil && derr != nil {
		err = derr
	}
	return res, err
}
