package query

import (
	"fmt"

	"pangea/internal/core"
	"pangea/internal/services"
)

// AggSpec defines a hash aggregation (Table 2: Hash + Aggregate). Values
// are fixed-size byte vectors; Init seeds the accumulator from a row and
// Combine merges two accumulators in place — the classic
// initialize/accumulate/merge contract that makes local partials mergeable
// in a final stage.
type AggSpec struct {
	// Key extracts the grouping key.
	Key func(Row) []byte
	// ValSize is the accumulator width in bytes.
	ValSize int
	// Init writes a row's contribution into the zeroed accumulator val.
	Init func(r Row, val []byte)
	// Combine merges src into dst.
	Combine func(dst, src []byte)
}

// LocalAggregate runs the local aggregation stage (Table 2: "Aggregate:
// local stage") on one node: rows stream into virtual hash buffers whose
// pages live in the given locality set, spilling partials under memory
// pressure. numRoot is the root partition count of the hash service.
//
// Each scan thread upserts into its own hash buffer with its own
// accumulator scratch — no per-row lock, no shared val buffer. The buffers
// all page into the same set, and VirtualHashBuffer.Walk streams the whole
// set's partials regardless of which buffer wrote them, so the returned
// handle covers every thread's work and FinalAggregate is unchanged.
//
// Every buffer keeps up to numRoot pages pinned (one active partition page
// per root), so the state count is capped at what half the set's memory
// entitlement can pin; extra scan threads share states through the free
// list rather than exhausting the pool.
func LocalAggregate(in Iter, set *core.LocalitySet, numRoot int, spec AggSpec) (*services.VirtualHashBuffer, error) {
	type aggState struct {
		h   *services.VirtualHashBuffer
		val []byte
	}
	maxStates := 1
	if perState := int64(numRoot) * set.PageSize(); perState > 0 {
		if n := set.Entitlement() / 2 / perState; n > 1 {
			maxStates = int(n)
		}
	}
	parts, err := newBoundedPartials[aggState](maxStates, func(s *aggState) error {
		h, err := services.NewVirtualHashBuffer(set, numRoot, spec.ValSize, spec.Combine)
		if err != nil {
			return err
		}
		s.h, s.val = h, make([]byte, spec.ValSize)
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = in(func(r Row) error {
		return parts.borrow(func(s *aggState) error {
			for i := range s.val {
				s.val[i] = 0
			}
			spec.Init(r, s.val)
			return s.h.Upsert(spec.Key(r), s.val)
		})
	})
	states := parts.states()
	for _, s := range states {
		if cerr := s.h.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return nil, err
	}
	return states[0].h, nil
}

// FinalAggregate merges the partial results of per-node local stages into
// one map (Table 2: "Aggregate: final stage").
func FinalAggregate(partials []*services.VirtualHashBuffer, spec AggSpec) (map[string][]byte, error) {
	out := make(map[string][]byte)
	for _, h := range partials {
		err := h.Walk(func(key, val []byte) error {
			k := string(key)
			if old, ok := out[k]; ok {
				spec.Combine(old, val)
			} else {
				out[k] = append([]byte(nil), val...)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Aggregate runs both stages on a single node: a convenience for
// micro-benchmarks and examples.
func Aggregate(in Iter, bp *core.BufferPool, setName string, spec AggSpec) (map[string][]byte, error) {
	set, err := bp.CreateSet(core.SetSpec{Name: setName, PageSize: 256 << 10})
	if err != nil {
		return nil, fmt.Errorf("query: aggregate set: %w", err)
	}
	h, err := LocalAggregate(in, set, 8, spec)
	if err != nil {
		return nil, err
	}
	res, err := FinalAggregate([]*services.VirtualHashBuffer{h}, spec)
	if derr := bp.DropSet(set); err == nil && derr != nil {
		err = derr
	}
	return res, err
}
