package query

import (
	"encoding/binary"
	"sync/atomic"
	"testing"

	"pangea/internal/core"
	"pangea/internal/services"
)

func testSchema() []services.ColumnSpec {
	return services.MakeSchema([]string{"id", "group", "amount"}, []int{4, 4, 4})
}

// testPredicates is the equivalence corpus: every algebra node, the narrow
// fallbacks (bounds at or above a column's domain), and compositions.
func testPredicates() []struct {
	name string
	pred Predicate
	want func(Row) bool
} {
	return []struct {
		name string
		pred Predicate
		want func(Row) bool
	}{
		{"range", ColRange{Col: 2, Lo: 10, Hi: 40},
			func(r Row) bool { return rowAmount(r) >= 10 && rowAmount(r) < 40 }},
		{"range-unbounded-above", ColRange{Col: 2, Lo: 50, Hi: 1 << 40},
			func(r Row) bool { return rowAmount(r) >= 50 }},
		{"range-all", ColRange{Col: 2, Lo: 0, Hi: 1 << 40},
			func(Row) bool { return true }},
		{"range-empty", ColRange{Col: 2, Lo: 40, Hi: 40},
			func(Row) bool { return false }},
		{"eq", ColEq{Col: 1, V: 3},
			func(r Row) bool { return rowGroup(r) == 3 }},
		{"eq-domain-max", ColEq{Col: 1, V: 1<<32 - 1},
			func(Row) bool { return false }},
		{"and", And{ColRange{Col: 2, Lo: 0, Hi: 50}, ColEq{Col: 1, V: 2}},
			func(r Row) bool { return rowAmount(r) < 50 && rowGroup(r) == 2 }},
		{"or", Or{ColEq{Col: 1, V: 1}, ColEq{Col: 1, V: 5}},
			func(r Row) bool { return rowGroup(r) == 1 || rowGroup(r) == 5 }},
		{"rowpred", RowPred(func(r Row) bool { return rowID(r)%3 == 0 }),
			func(r Row) bool { return rowID(r)%3 == 0 }},
		{"and-rowpred", And{ColRange{Col: 0, Lo: 100, Hi: 900}, RowPred(func(r Row) bool { return rowID(r)%2 == 0 })},
			func(r Row) bool { return rowID(r) >= 100 && rowID(r) < 900 && rowID(r)%2 == 0 }},
	}
}

// TestPredicateEquivalence: every predicate selects exactly the rows its
// closure form selects, on all three execution paths — the row pipeline over
// a row set (Schema-compiled), the row pipeline over a columnar set, and the
// batch kernels — with identical counts and id-sums.
func TestPredicateEquivalence(t *testing.T) {
	bp := newPool(t, 16<<20)
	rows := testRows(5000)
	rowSet := loadSet(t, bp, "r", rows)
	colSet := loadColSet(t, bp, "c", rows)

	for _, tc := range testPredicates() {
		t.Run(tc.name, func(t *testing.T) {
			var wantN, wantSum int64
			for _, r := range rows {
				if tc.want(r) {
					wantN++
					wantSum += int64(rowID(r))
				}
			}
			check := func(path string, n, sum int64, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				if n != wantN || sum != wantSum {
					t.Errorf("%s: n=%d sum=%d, want %d/%d", path, n, sum, wantN, wantSum)
				}
			}
			runRows := func(set *core.LocalitySet, schema []services.ColumnSpec) (int64, int64, error) {
				var n, sum atomic.Int64
				err := ScanSpec{Set: set, Threads: 3, Pred: tc.pred, Schema: schema}.Run(func(_ int, r Row) error {
					n.Add(1)
					sum.Add(int64(rowID(r)))
					return nil
				})
				return n.Load(), sum.Load(), err
			}
			n, sum, err := runRows(rowSet, testSchema())
			check("row-set", n, sum, err)
			n, sum, err = runRows(colSet, nil)
			check("columnar-row-pipeline", n, sum, err)

			var bn, bsum atomic.Int64
			err = ScanSpec{Set: colSet, Threads: 3, Pred: tc.pred}.RunBatches(func(_ int, b *Batch) error {
				ids := b.Col(0)
				for _, r := range b.Sel() {
					bsum.Add(int64(binary.LittleEndian.Uint32(ids[int(r)*4:])))
				}
				bn.Add(int64(b.Selected()))
				return nil
			})
			check("batch", bn.Load(), bsum.Load(), err)
		})
	}
}

// TestScanSpecPrunesPages: over clustered data with a zone map attached, a
// selective range scan skips pages — counters prove it — while returning
// exactly the rows the unpruned scan returns; HintNoPrune and predicates on
// unsummarized shapes leave the counters alone.
func TestScanSpecPrunesPages(t *testing.T) {
	bp := newPool(t, 32<<20)
	rows := testRows(20000) // id is monotone: clustered for pruning
	colSet := loadColSet(t, bp, "c", rows)
	spec := services.ZoneMapSpec{Schema: testSchema()}
	if _, err := services.EnsureZoneMap(colSet, spec); err != nil {
		t.Fatal(err)
	}

	count := func(set *core.LocalitySet, pred Predicate, hint ScanHint) int64 {
		t.Helper()
		n, err := ScanSpec{Set: set, Threads: 2, Pred: pred, Hint: hint}.CountBatches(nil)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	pred := ColRange{Col: 0, Lo: 500, Hi: 1500}

	checks0, skips0 := colSet.ZoneMapChecks(), colSet.ZoneMapSkips()
	pruned := count(colSet, pred, HintNone)
	checks1, skips1 := colSet.ZoneMapChecks(), colSet.ZoneMapSkips()
	if checks1 == checks0 || skips1 == skips0 {
		t.Errorf("selective scan: checks %d->%d skips %d->%d, want both to advance",
			checks0, checks1, skips0, skips1)
	}
	if full := count(colSet, pred, HintNoPrune); pruned != full {
		t.Errorf("pruned scan found %d rows, unpruned %d", pruned, full)
	}
	if colSet.ZoneMapSkips() != skips1 {
		t.Error("HintNoPrune still skipped pages")
	}
	if got := count(colSet, pred, HintNone); got != pruned {
		t.Errorf("repeat pruned scan found %d rows, want %d", got, pruned)
	}
	// An unselective range prunes nothing but still checks every page.
	preSkips := colSet.ZoneMapSkips()
	preChecks := colSet.ZoneMapChecks()
	if got := count(colSet, ColRange{Col: 0, Lo: 0, Hi: 1 << 40}, HintNone); got != int64(len(rows)) {
		t.Errorf("full-range scan found %d rows, want %d", got, len(rows))
	}
	if colSet.ZoneMapSkips() != preSkips {
		t.Error("full-range scan skipped pages")
	}
	if colSet.ZoneMapChecks() == preChecks {
		t.Error("full-range scan consulted no zone map")
	}
	// RowPred is opaque: nothing to prune against.
	preSkips = colSet.ZoneMapSkips()
	if got := count(colSet, RowPred(func(r Row) bool { return rowID(r) < 100 }), HintNone); got != 100 {
		t.Errorf("rowpred scan found %d rows, want 100", got)
	}
	if colSet.ZoneMapSkips() != preSkips {
		t.Error("opaque row predicate pruned pages")
	}

	// The row pipeline prunes through the same spec on a row set.
	rowSet := loadSet(t, bp, "r", rows)
	if _, err := services.EnsureZoneMap(rowSet, spec); err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	err := ScanSpec{Set: rowSet, Threads: 2, Pred: pred, Schema: testSchema()}.Run(func(_ int, r Row) error {
		n.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != pruned {
		t.Errorf("row-set pruned scan found %d rows, want %d", n.Load(), pruned)
	}
	if rowSet.ZoneMapSkips() == 0 {
		t.Error("row-set scan skipped no pages over clustered data")
	}
}

// TestScanSpecValidation: predicate scans fail loudly on shape errors
// instead of silently scanning wrong bytes.
func TestScanSpecValidation(t *testing.T) {
	bp := newPool(t, 8<<20)
	rows := testRows(100)
	rowSet := loadSet(t, bp, "r", rows)
	colSet := loadColSet(t, bp, "c", rows)

	// Predicate over a row set needs a schema.
	err := ScanSpec{Set: rowSet, Pred: ColEq{Col: 1, V: 3}}.Run(func(int, Row) error { return nil })
	if err == nil {
		t.Error("predicate over schemaless row set must error")
	}
	// Out-of-range column, both paths.
	bad := ColRange{Col: 9, Lo: 0, Hi: 1}
	if err := (ScanSpec{Set: colSet, Pred: bad}).Run(func(int, Row) error { return nil }); err == nil {
		t.Error("out-of-range column must error on the row path")
	}
	if err := (ScanSpec{Set: colSet, Pred: bad}).RunBatches(func(int, *Batch) error { return nil }); err == nil {
		t.Error("out-of-range column must error on the batch path")
	}
	// A nil row closure is a programming error, not a match-all.
	if err := (ScanSpec{Set: colSet, Pred: RowPred(nil)}).Run(func(int, Row) error { return nil }); err == nil {
		t.Error("nil RowPred must error")
	}
	// Batch scans still reject row layouts.
	err = ScanSpec{Set: rowSet, Pred: ColEq{Col: 1, V: 3}, Schema: testSchema()}.RunBatches(func(int, *Batch) error { return nil })
	if err == nil {
		t.Error("batch scan over a row-layout set must error")
	}
}

// TestDeprecatedWrappersMatchScanSpec: the legacy entry points are thin
// wrappers — byte-identical visit sets and aggregates.
func TestDeprecatedWrappersMatchScanSpec(t *testing.T) {
	bp := newPool(t, 16<<20)
	rows := testRows(3000)
	rowSet := loadSet(t, bp, "r", rows)
	colSet := loadColSet(t, bp, "c", rows)

	sumVia := func(scan func(func(Row) error) error) int64 {
		t.Helper()
		var sum atomic.Int64
		if err := scan(func(r Row) error { sum.Add(int64(rowID(r))); return nil }); err != nil {
			t.Fatal(err)
		}
		return sum.Load()
	}
	legacy := sumVia(func(emit func(Row) error) error { return Scan(rowSet, 3)(emit) })
	speced := sumVia(func(emit func(Row) error) error { return ScanSpec{Set: rowSet, Threads: 3}.Iter()(emit) })
	threaded := sumVia(func(emit func(Row) error) error {
		return ScanThreaded(rowSet, 3, func(_ int, r Row) error { return emit(r) })
	})
	if legacy != speced || legacy != threaded {
		t.Errorf("wrapper sums differ: Scan %d, ScanSpec %d, ScanThreaded %d", legacy, speced, threaded)
	}

	filter := func(b *Batch) { b.SelU32Range(2, 0, 30) }
	nLegacy, err := CountBatches(colSet, 3, filter)
	if err != nil {
		t.Fatal(err)
	}
	nSpec, err := ScanSpec{Set: colSet, Threads: 3, Pred: ColRange{Col: 2, Lo: 0, Hi: 30}}.CountBatches(nil)
	if err != nil {
		t.Fatal(err)
	}
	if nLegacy != nSpec {
		t.Errorf("CountBatches wrapper %d, ScanSpec %d", nLegacy, nSpec)
	}
}
