// Package placement implements Pangea's distributed data placement system
// (paper §7): partition computations that turn one locality set into a
// differently-organized replica, replication groups in which heterogeneous
// replicas do double duty for computational efficiency and failure
// recovery, colliding-object detection, and single-node failure recovery
// that re-runs a replica's partitioner over a surviving replica.
package placement

import (
	"fmt"

	"pangea/internal/cluster"
)

// KeyFunc extracts the partitioning key from a record — the paper's
// PartitionComp UDF (getKeyUdf).
type KeyFunc func(rec []byte) ([]byte, error)

// Partitioner is one physical organization: a named partition computation
// mapping records to partitions, and partitions to worker nodes.
type Partitioner struct {
	// Scheme names the organization in the statistics database, e.g.
	// "hash(l_orderkey)".
	Scheme string
	// NumPartitions is the partition count; it should be >= the node count.
	NumPartitions int
	// Key extracts the partition key.
	Key KeyFunc
}

// fnv1a hashes a byte string (FNV-1a 64).
func fnv1a(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// PartitionOf maps a record to its partition index.
func (p *Partitioner) PartitionOf(rec []byte) (int, error) {
	key, err := p.Key(rec)
	if err != nil {
		return 0, err
	}
	return int(fnv1a(key) % uint64(p.NumPartitions)), nil
}

// NodeOfPartition places partition idx on a node in a k-node cluster.
func NodeOfPartition(idx, k int) int { return idx % k }

// NodeOf maps a record directly to the node holding its partition.
func (p *Partitioner) NodeOf(rec []byte, k int) (int, error) {
	idx, err := p.PartitionOf(rec)
	if err != nil {
		return 0, err
	}
	return NodeOfPartition(idx, k), nil
}

// RandomNode is the placement of a randomly dispatched source set: a
// content hash spreads records uniformly over the k nodes, deterministically
// so that tests and recovery can re-derive it.
func RandomNode(rec []byte, k int) int {
	// Salted so random dispatch decorrelates from hash partitioners that
	// hash the whole record.
	return int((fnv1a(rec) ^ 0x9e3779b97f4a7c15) % uint64(k))
}

// batcher accumulates per-node record batches and flushes them to workers.
type batcher struct {
	cl    *cluster.Client
	addrs []string
	set   string
	size  int
	buf   [][][]byte
}

func newBatcher(cl *cluster.Client, addrs []string, set string, size int) *batcher {
	return &batcher{cl: cl, addrs: addrs, set: set, size: size, buf: make([][][]byte, len(addrs))}
}

func (b *batcher) add(node int, rec []byte) error {
	b.buf[node] = append(b.buf[node], append([]byte(nil), rec...))
	if len(b.buf[node]) >= b.size {
		return b.flushNode(node)
	}
	return nil
}

func (b *batcher) flushNode(node int) error {
	if len(b.buf[node]) == 0 {
		return nil
	}
	err := b.cl.AddRecords(b.addrs[node], b.set, b.buf[node])
	b.buf[node] = b.buf[node][:0]
	if err != nil {
		return fmt.Errorf("placement: dispatch to node %d: %w", node, err)
	}
	return nil
}

func (b *batcher) flush() error {
	for node := range b.buf {
		if err := b.flushNode(node); err != nil {
			return err
		}
	}
	return nil
}

// DispatchRandom loads records into a source set spread over the cluster by
// content hash — the "randomly dispatched set" of §9.1.2. The set must
// already exist on every worker.
func DispatchRandom(cl *cluster.Client, addrs []string, set string, records [][]byte) error {
	b := newBatcher(cl, addrs, set, 256)
	for _, rec := range records {
		if err := b.add(RandomNode(rec, len(addrs)), rec); err != nil {
			return err
		}
	}
	return b.flush()
}

// PartitionSet runs a partition computation (§7): it scans the source set
// on every worker, extracts each record's key with the partitioner, and
// dispatches the record to the node owning its partition in the target set.
// The target set must already exist on every worker. It returns the number
// of records moved.
func PartitionSet(cl *cluster.Client, addrs []string, source, target string, part *Partitioner) (int64, error) {
	b := newBatcher(cl, addrs, target, 256)
	var n int64
	for _, addr := range addrs {
		err := cl.FetchSet(addr, source, func(rec []byte) error {
			node, err := part.NodeOf(rec, len(addrs))
			if err != nil {
				return err
			}
			n++
			return b.add(node, rec)
		})
		if err != nil {
			return n, fmt.Errorf("placement: partition %s -> %s: %w", source, target, err)
		}
	}
	return n, b.flush()
}
