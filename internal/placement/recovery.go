package placement

import (
	"fmt"

	"pangea/internal/cluster"
)

// RecoveryReport summarises one replica's recovery.
type RecoveryReport struct {
	Member        string
	FromSource    int64 // records recovered by re-partitioning surviving replicas
	FromColliding int64 // records recovered from the colliding-object set
}

// Recovered returns the total records restored for this member.
func (r RecoveryReport) Recovered() int64 { return r.FromSource + r.FromColliding }

// reassignNode maps a lost partition (or lost random placement) to a
// surviving node, round-robin over the survivors.
func reassignNode(idx, failed, k int) int {
	node := idx % (k - 1)
	if node >= failed {
		node++
	}
	return node
}

// memberNode computes where member m stores a record in a k-node cluster.
func memberNode(m Member, rec []byte, k int) (int, error) {
	if m.Part == nil {
		return RandomNode(rec, k), nil
	}
	p, err := m.Part.PartitionOf(rec)
	if err != nil {
		return 0, err
	}
	return NodeOfPartition(p, k), nil
}

// Recover rebuilds every member of a replication group after the failure of
// node failedIdx (paper §7). For each target member, the lost key range is
// the set of partitions placed on the failed node. Source replicas are the
// other members of the group: the target's partitioner is re-run over their
// surviving records, and records falling in the lost range are dispatched
// to the surviving nodes now owning them. Because every member stores the
// same objects, a record is dispatched only by the lowest-indexed member
// whose copy survived, which both avoids duplicates and covers records lost
// in several members at once. Colliding objects — whose every copy lived on
// the failed node — are restored from the group's dedicated
// colliding-object set. addrs lists all original workers; addrs[failedIdx]
// must be considered lost.
func Recover(cl *cluster.Client, addrs []string, g *Group, failedIdx int) ([]RecoveryReport, error) {
	k := len(addrs)
	if k < 2 {
		return nil, fmt.Errorf("placement: cannot recover a %d-node cluster", k)
	}
	surviving := make([]int, 0, k-1)
	for i := range addrs {
		if i != failedIdx {
			surviving = append(surviving, i)
		}
	}

	reports := make([]RecoveryReport, 0, len(g.Members))
	for ti, target := range g.Members {
		rep := RecoveryReport{Member: target.Set}

		// lostNode reports whether the record's copy in the target lived on
		// the failed node, and which surviving node now owns it.
		lostNode := func(rec []byte) (bool, int, error) {
			if target.Part == nil {
				if RandomNode(rec, k) != failedIdx {
					return false, 0, nil
				}
				return true, reassignNode(int(fnv1a(rec)%uint64(k)), failedIdx, k), nil
			}
			p, err := target.Part.PartitionOf(rec)
			if err != nil {
				return false, 0, err
			}
			if NodeOfPartition(p, k) != failedIdx {
				return false, 0, nil
			}
			return true, reassignNode(p, failedIdx, k), nil
		}

		// responsible reports whether member si is the lowest-indexed
		// non-target member whose copy of rec survived the failure. Only
		// that member dispatches the record, preventing duplicates.
		responsible := func(si int, rec []byte) (bool, error) {
			for mi, m := range g.Members {
				if mi == ti {
					continue
				}
				node, err := memberNode(m, rec, k)
				if err != nil {
					return false, err
				}
				if node != failedIdx {
					return mi == si, nil
				}
			}
			return false, nil // colliding: no surviving copy in any member
		}

		b := newBatcher(cl, addrs, target.Set, 256)
		dispatch := func(rec []byte) (bool, error) {
			lost, node, err := lostNode(rec)
			if err != nil || !lost {
				return false, err
			}
			return true, b.add(node, rec)
		}

		// Pass 1: re-run the target's partitioner over the surviving
		// records of the other members.
		for si, source := range g.Members {
			if si == ti {
				continue
			}
			for _, i := range surviving {
				err := cl.FetchSet(addrs[i], source.Set, func(rec []byte) error {
					ok, err := responsible(si, rec)
					if err != nil || !ok {
						return err
					}
					hit, err := dispatch(rec)
					if hit {
						rep.FromSource++
					}
					return err
				})
				if err != nil {
					return reports, fmt.Errorf("placement: recover %s from %s: %w", target.Set, source.Set, err)
				}
			}
		}

		// Pass 2: restore colliding objects. Their every copy lived on the
		// failed node, so pass 1 cannot see them; the dedicated set holds
		// an extra copy placed off the colliding node.
		for _, i := range surviving {
			err := cl.FetchSet(addrs[i], g.Colliding, func(rec []byte) error {
				if RandomNode(rec, k) != failedIdx {
					// The colliding node survived; nothing was lost.
					return nil
				}
				hit, err := dispatch(rec)
				if hit {
					rep.FromColliding++
				}
				return err
			})
			if err != nil {
				return reports, fmt.Errorf("placement: recover %s colliding objects: %w", target.Set, err)
			}
		}
		if err := b.flush(); err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// CountSet totals a set's records over the given workers.
func CountSet(cl *cluster.Client, addrs []string, set string) (int64, error) {
	var n int64
	for _, addr := range addrs {
		if err := cl.FetchSet(addr, set, func([]byte) error { n++; return nil }); err != nil {
			return n, err
		}
	}
	return n, nil
}
