package placement

import (
	"fmt"

	"pangea/internal/cluster"
)

// Member is one set in a replication group: a physical organization of the
// group's objects. Part is nil for the randomly dispatched source.
type Member struct {
	Set  string
	Part *Partitioner
}

// Group is a replication group (§7): every member contains exactly the same
// objects under a different physical organization, so any member can serve
// a computation and any member can be rebuilt from any other after a node
// failure. The group also owns a separate locality set holding the
// colliding objects — objects all of whose copies happen to land on one
// node — replicated HDFS-style so single-node failures lose nothing.
type Group struct {
	Source    string
	Members   []Member
	Colliding string // name of the colliding-object set
	PageSize  int64

	// NumColliding is filled by Build: how many objects collide.
	NumColliding int64
	// Total is the object count observed while building.
	Total int64
}

// nodesOf computes the nodes holding each copy of a record across all
// members, returning the bitmask of distinct nodes.
func (g *Group) nodesOf(rec []byte, k int) (uint64, error) {
	mask := uint64(1) << uint(RandomNode(rec, k))
	for _, m := range g.Members[1:] {
		node, err := m.Part.NodeOf(rec, k)
		if err != nil {
			return 0, err
		}
		mask |= 1 << uint(node)
	}
	return mask, nil
}

// collides reports whether all copies of a record share one node.
func collides(mask uint64) bool { return mask&(mask-1) == 0 }

// BuildGroup creates the replicas of a populated source set and assembles
// the replication group:
//
//  1. For each partitioner, a target set is created on every worker and
//     filled by PartitionSet.
//  2. Colliding objects are identified at partitioning time and stored in a
//     separate locality set, placed on a node that does NOT hold their
//     copies (the HDFS-style extra replica).
//  3. Every replica is registered in the manager's statistics database so
//     query schedulers can pick the best organization (§9.1.2).
//
// The source set must already exist on every worker and have been loaded
// with DispatchRandom (recovery relies on re-deriving the random node of
// each record from its content).
func BuildGroup(cl *cluster.Client, addrs []string, source string, parts []*Partitioner, pageSize int64) (*Group, error) {
	g := &Group{
		Source:    source,
		Colliding: source + ":colliding",
		PageSize:  pageSize,
		Members:   []Member{{Set: source}},
	}
	for _, p := range parts {
		target := fmt.Sprintf("%s_pt_%s", source, sanitize(p.Scheme))
		g.Members = append(g.Members, Member{Set: target, Part: p})
	}

	// Build each replica.
	for _, m := range g.Members[1:] {
		if err := cl.CreateSet(m.Set, pageSize, 0); err != nil {
			return nil, err
		}
		if _, err := PartitionSet(cl, addrs, source, m.Set, m.Part); err != nil {
			return nil, err
		}
		if err := cl.RegisterReplica(source, m.Set, m.Part.Scheme); err != nil {
			return nil, err
		}
	}

	// Identify and store colliding objects (one pass over the source).
	if err := cl.CreateSet(g.Colliding, pageSize, 0); err != nil {
		return nil, err
	}
	k := len(addrs)
	b := newBatcher(cl, addrs, g.Colliding, 256)
	for _, addr := range addrs {
		err := cl.FetchSet(addr, source, func(rec []byte) error {
			g.Total++
			mask, err := g.nodesOf(rec, k)
			if err != nil {
				return err
			}
			if !collides(mask) {
				return nil
			}
			g.NumColliding++
			// Place the extra copy off the colliding node.
			node := (RandomNode(rec, k) + 1) % k
			return b.add(node, rec)
		})
		if err != nil {
			return nil, fmt.Errorf("placement: collision pass: %w", err)
		}
	}
	if err := b.flush(); err != nil {
		return nil, err
	}
	return g, nil
}

// CollidingRatio returns the fraction of objects whose copies all share a
// node. For random organizations on k nodes with r+1 copies the expectation
// is roughly k^{-r} (§7 reports ~1/k for two partitionings).
func (g *Group) CollidingRatio() float64 {
	if g.Total == 0 {
		return 0
	}
	return float64(g.NumColliding) / float64(g.Total)
}

// CountColliding evaluates collision counts without moving any data — used
// for the §7 colliding-object study across cluster sizes.
func CountColliding(records [][]byte, parts []*Partitioner, k int) int64 {
	g := &Group{Members: make([]Member, 1, 1+len(parts))}
	for _, p := range parts {
		g.Members = append(g.Members, Member{Part: p})
	}
	var n int64
	for _, rec := range records {
		mask, err := g.nodesOf(rec, k)
		if err != nil {
			continue
		}
		if collides(mask) {
			n++
		}
	}
	return n
}

// sanitize turns a scheme like "hash(l_orderkey)" into a set-name suffix.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
