package placement

import (
	"testing"
)

func TestExtraPlacementReachesRPlusOneNodes(t *testing.T) {
	const k = 6
	for r := 1; r < 4; r++ {
		for mask := uint64(1); mask < 1<<k; mask++ {
			extra := extraPlacement(mask, k, r)
			have := len(distinctNodes(mask, k))
			want := r + 1 - have
			if want < 0 {
				want = 0
			}
			if have+want > k {
				continue // cannot spread wider than the cluster
			}
			if len(extra) != want {
				t.Fatalf("mask %b r=%d: extra=%v want %d nodes", mask, r, extra, want)
			}
			for _, e := range extra {
				if mask&(1<<uint(e)) != 0 {
					t.Fatalf("mask %b: extra copy on an occupied node %d", mask, e)
				}
			}
		}
	}
}

func TestBuildSafeGroupValidation(t *testing.T) {
	_, addrs, cl := startCluster(t, 3)
	if _, err := BuildSafeGroup(cl, addrs, "x", nil, 64<<10, 0); err == nil {
		t.Error("r=0 must be rejected")
	}
	if _, err := BuildSafeGroup(cl, addrs, "x", nil, 64<<10, 3); err == nil {
		t.Error("r=k must be rejected")
	}
}

// TestRecoverTwoNodeFailure: an r=2 safe group survives two concurrent
// node failures with every member restored to the exact multiset.
func TestRecoverTwoNodeFailure(t *testing.T) {
	workers, addrs, cl := startCluster(t, 5)
	if err := cl.CreateSet("li", 64<<10, 0); err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(1500)
	if err := DispatchRandom(cl, addrs, "li", recs); err != nil {
		t.Fatal(err)
	}
	sg, err := BuildSafeGroup(cl, addrs, "li", twoPartitioners(20), 64<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sg.ExtraCopies == 0 {
		t.Fatal("expected some under-spread objects needing extra copies")
	}

	failed := []int{1, 3}
	for _, f := range failed {
		if err := workers[f].Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sg.RecoverMulti(cl, addrs, failed); err != nil {
		t.Fatal(err)
	}

	var survivors []string
	for i, a := range addrs {
		if i != 1 && i != 3 {
			survivors = append(survivors, a)
		}
	}
	for _, m := range sg.Members {
		counts := make(map[string]int, len(recs))
		for _, rec := range recs {
			counts[string(rec)]++
		}
		for _, addr := range survivors {
			if err := cl.FetchSet(addr, m.Set, func(rec []byte) error {
				counts[string(rec)]--
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		for key, c := range counts {
			if c != 0 {
				t.Fatalf("member %s: record %x count off by %d after 2-node recovery", m.Set, key[:8], c)
			}
		}
	}
}

// TestRecoverMultiRejectsTooManyFailures: exceeding r is an error, not
// silent data loss.
func TestRecoverMultiRejectsTooManyFailures(t *testing.T) {
	_, addrs, cl := startCluster(t, 4)
	if err := cl.CreateSet("s", 64<<10, 0); err != nil {
		t.Fatal(err)
	}
	if err := DispatchRandom(cl, addrs, "s", mkRecords(100)); err != nil {
		t.Fatal(err)
	}
	sg, err := BuildSafeGroup(cl, addrs, "s", twoPartitioners(8), 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sg.RecoverMulti(cl, addrs, []int{0, 1}); err == nil {
		t.Error("recovering 2 failures with r=1 must be rejected")
	}
}

// TestSafeGroupSingleFailureMatchesPlainRecovery: with r=1 the safe group
// restores a single failure just like the plain path.
func TestSafeGroupSingleFailureMatchesPlainRecovery(t *testing.T) {
	workers, addrs, cl := startCluster(t, 3)
	if err := cl.CreateSet("s", 64<<10, 0); err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(600)
	if err := DispatchRandom(cl, addrs, "s", recs); err != nil {
		t.Fatal(err)
	}
	sg, err := BuildSafeGroup(cl, addrs, "s", twoPartitioners(9), 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = workers[2].Close()
	if _, err := sg.RecoverMulti(cl, addrs, []int{2}); err != nil {
		t.Fatal(err)
	}
	for _, m := range sg.Members {
		n, err := CountSet(cl, addrs[:2], m.Set)
		if err != nil {
			t.Fatal(err)
		}
		if n != 600 {
			t.Errorf("member %s: %d records, want 600", m.Set, n)
		}
	}
}
