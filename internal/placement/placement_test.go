package placement

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"pangea/internal/cluster"
)

const testKey = "placement-test-key"

func startCluster(t *testing.T, n int) ([]*cluster.Worker, []string, *cluster.Client) {
	t.Helper()
	mgr, err := cluster.NewManager("127.0.0.1:0", testKey)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })
	cl := cluster.NewClient(mgr.Addr(), testKey)
	var workers []*cluster.Worker
	var addrs []string
	for i := 0; i < n; i++ {
		w, err := cluster.NewWorker("127.0.0.1:0", cluster.WorkerConfig{
			PrivateKey: testKey,
			Memory:     8 << 20,
			DiskDir:    t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		if _, err := cl.RegisterWorker(w.Addr()); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	return workers, addrs, cl
}

// mkRecords builds records shaped like tiny lineitems: two int keys and a
// payload, so two different partitioners disagree on placement.
func mkRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := 0; i < n; i++ {
		rec := make([]byte, 24)
		binary.LittleEndian.PutUint64(rec[0:8], uint64(i/4))    // "orderkey": 4 lines per order
		binary.LittleEndian.PutUint64(rec[8:16], uint64(i%997)) // "partkey"
		binary.LittleEndian.PutUint64(rec[16:24], uint64(i))    // unique line id
		recs[i] = rec
	}
	return recs
}

func keyOrder(rec []byte) ([]byte, error) { return rec[0:8], nil }
func keyPart(rec []byte) ([]byte, error)  { return rec[8:16], nil }

func twoPartitioners(numPartitions int) []*Partitioner {
	return []*Partitioner{
		{Scheme: "hash(orderkey)", NumPartitions: numPartitions, Key: keyOrder},
		{Scheme: "hash(partkey)", NumPartitions: numPartitions, Key: keyPart},
	}
}

func TestPartitionSetRoutesByKey(t *testing.T) {
	_, addrs, cl := startCluster(t, 3)
	if err := cl.CreateSet("src", 64<<10, 0); err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(600)
	if err := DispatchRandom(cl, addrs, "src", recs); err != nil {
		t.Fatal(err)
	}
	part := &Partitioner{Scheme: "hash(orderkey)", NumPartitions: 12, Key: keyOrder}
	if err := cl.CreateSet("dst", 64<<10, 0); err != nil {
		t.Fatal(err)
	}
	n, err := PartitionSet(cl, addrs, "src", "dst", part)
	if err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Errorf("moved %d records, want 600", n)
	}
	// Every record on node i must belong to a partition owned by node i,
	// and all records with one key must share a node (co-location).
	keyNode := make(map[uint64]int)
	var total int
	for i, addr := range addrs {
		err := cl.FetchSet(addr, "dst", func(rec []byte) error {
			total++
			node, err := part.NodeOf(rec, len(addrs))
			if err != nil {
				return err
			}
			if node != i {
				t.Errorf("record on node %d belongs to node %d", i, node)
			}
			k := binary.LittleEndian.Uint64(rec[0:8])
			if prev, ok := keyNode[k]; ok && prev != i {
				t.Errorf("key %d split across nodes %d and %d", k, prev, i)
			}
			keyNode[k] = i
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 600 {
		t.Errorf("target holds %d records, want 600", total)
	}
}

func TestBuildGroupRegistersReplicas(t *testing.T) {
	_, addrs, cl := startCluster(t, 3)
	if err := cl.CreateSet("tbl", 64<<10, 0); err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(900)
	if err := DispatchRandom(cl, addrs, "tbl", recs); err != nil {
		t.Fatal(err)
	}
	g, err := BuildGroup(cl, addrs, "tbl", twoPartitioners(12), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total != 900 {
		t.Errorf("Total = %d, want 900", g.Total)
	}
	group, err := cl.Replicas("tbl")
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 3 {
		t.Fatalf("replica group = %d members, want 3", len(group))
	}
	// Each replica holds the full dataset.
	for _, m := range g.Members[1:] {
		n, err := CountSet(cl, addrs, m.Set)
		if err != nil {
			t.Fatal(err)
		}
		if n != 900 {
			t.Errorf("replica %s holds %d records, want 900", m.Set, n)
		}
	}
	// Colliding ratio should be near 1/k^2 for two independent hash
	// organizations plus the random source on k=3 nodes... the paper
	// reports "small"; just sanity-bound it.
	if r := g.CollidingRatio(); r > 0.5 {
		t.Errorf("colliding ratio %.3f implausibly high", r)
	}
}

func TestCollidingCountMatchesDirectCheck(t *testing.T) {
	_, addrs, cl := startCluster(t, 3)
	if err := cl.CreateSet("t", 64<<10, 0); err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(500)
	if err := DispatchRandom(cl, addrs, "t", recs); err != nil {
		t.Fatal(err)
	}
	parts := twoPartitioners(9)
	g, err := BuildGroup(cl, addrs, "t", parts, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	want := CountColliding(recs, parts, 3)
	if g.NumColliding != want {
		t.Errorf("BuildGroup found %d colliding, direct count %d", g.NumColliding, want)
	}
	got, err := CountSet(cl, addrs, g.Colliding)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("colliding set holds %d records, want %d", got, want)
	}
}

// TestCollidingRatioDeclinesWithClusterSize reproduces the §7 observation:
// the colliding ratio falls sharply as nodes are added (≈9% at 10 nodes,
// ≈3% at 20, ~0 at 30 for the paper's two-partitioning lineitem).
func TestCollidingRatioDeclinesWithClusterSize(t *testing.T) {
	recs := mkRecords(20000)
	parts := twoPartitioners(120)
	var ratios []float64
	for _, k := range []int{10, 20, 30} {
		n := CountColliding(recs, parts, k)
		ratios = append(ratios, float64(n)/float64(len(recs)))
	}
	if !(ratios[0] > ratios[1] && ratios[1] > ratios[2]) {
		t.Errorf("ratios %v do not decline with cluster size", ratios)
	}
	// Three organizations (source + two partitionings) on k nodes collide
	// with probability ~1/k² under independence.
	for i, k := range []int{10, 20, 30} {
		expect := 1 / float64(k*k)
		if ratios[i] > expect*6 {
			t.Errorf("k=%d: ratio %.5f far above expectation %.5f", k, ratios[i], expect)
		}
	}
}

// TestCollisionExpectationProperty checks the n/k estimate of §7 for a
// 2-member group (source + one random partitioning): the expected number of
// colliding objects is n/k.
func TestCollisionExpectationProperty(t *testing.T) {
	f := func(seed uint32) bool {
		const n, k = 4000, 8
		recs := make([][]byte, n)
		for i := range recs {
			rec := make([]byte, 16)
			binary.LittleEndian.PutUint64(rec[0:8], uint64(i)*2654435761+uint64(seed))
			binary.LittleEndian.PutUint64(rec[8:16], uint64(i))
			recs[i] = rec
		}
		parts := []*Partitioner{{Scheme: "hash(a)", NumPartitions: 64, Key: func(r []byte) ([]byte, error) { return r[0:8], nil }}}
		got := float64(CountColliding(recs, parts, k))
		want := float64(n) / float64(k)
		// Allow 5 standard deviations of binomial(n, 1/k).
		sd := math.Sqrt(float64(n) * (1.0 / k) * (1 - 1.0/k))
		return math.Abs(got-want) < 5*sd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestRecoverSingleNodeFailure(t *testing.T) {
	workers, addrs, cl := startCluster(t, 4)
	if err := cl.CreateSet("li", 64<<10, 0); err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(1200)
	if err := DispatchRandom(cl, addrs, "li", recs); err != nil {
		t.Fatal(err)
	}
	g, err := BuildGroup(cl, addrs, "li", twoPartitioners(16), 64<<10)
	if err != nil {
		t.Fatal(err)
	}

	const failed = 2
	// Count what the failed node held per member (these records are lost).
	lost := make(map[string]int64)
	for _, m := range g.Members {
		if err := cl.FetchSet(addrs[failed], m.Set, func([]byte) error {
			lost[m.Set]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Fail the node.
	if err := workers[failed].Close(); err != nil {
		t.Fatal(err)
	}
	survivors := make([]string, 0, 3)
	for i, a := range addrs {
		if i != failed {
			survivors = append(survivors, a)
		}
	}

	reports, err := Recover(cl, addrs, g, failed)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		surv, err := CountSet(cl, survivors, rep.Member)
		if err != nil {
			t.Fatal(err)
		}
		if surv != 1200 {
			t.Errorf("member %s: %d records after recovery, want 1200 (lost %d, recovered %d)",
				rep.Member, surv, lost[rep.Member], rep.Recovered())
		}
		if rep.Recovered() != lost[rep.Member] {
			t.Errorf("member %s: recovered %d, lost %d", rep.Member, rep.Recovered(), lost[rep.Member])
		}
	}
}

func TestRecoverRestoresExactMultiset(t *testing.T) {
	workers, addrs, cl := startCluster(t, 3)
	if err := cl.CreateSet("s", 64<<10, 0); err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(600)
	if err := DispatchRandom(cl, addrs, "s", recs); err != nil {
		t.Fatal(err)
	}
	g, err := BuildGroup(cl, addrs, "s", twoPartitioners(9), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	const failed = 0
	_ = workers[failed].Close()
	if _, err := Recover(cl, addrs, g, failed); err != nil {
		t.Fatal(err)
	}
	survivors := addrs[1:]
	for _, m := range g.Members {
		counts := make(map[string]int)
		for _, rec := range recs {
			counts[string(rec)]++
		}
		err := func() error {
			for _, addr := range survivors {
				if err := cl.FetchSet(addr, m.Set, func(rec []byte) error {
					counts[string(rec)]--
					return nil
				}); err != nil {
					return err
				}
			}
			return nil
		}()
		if err != nil {
			t.Fatal(err)
		}
		for k, c := range counts {
			if c != 0 {
				t.Fatalf("member %s: record %x count off by %d", m.Set, k[:8], c)
			}
		}
	}
}

func TestReassignNodeSkipsFailed(t *testing.T) {
	for idx := 0; idx < 100; idx++ {
		for failed := 0; failed < 5; failed++ {
			n := reassignNode(idx, failed, 5)
			if n == failed {
				t.Fatalf("reassignNode(%d, %d, 5) chose the failed node", idx, failed)
			}
			if n < 0 || n >= 5 {
				t.Fatalf("reassignNode out of range: %d", n)
			}
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("hash(l_orderkey)"); got != "hash_l_orderkey_" {
		t.Errorf("sanitize = %q", got)
	}
}

func ExamplePartitioner_PartitionOf() {
	p := &Partitioner{Scheme: "hash(id)", NumPartitions: 4, Key: func(r []byte) ([]byte, error) { return r, nil }}
	idx, _ := p.PartitionOf([]byte("object-1"))
	fmt.Println(idx >= 0 && idx < 4)
	// Output: true
}
