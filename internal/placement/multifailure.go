package placement

import (
	"fmt"

	"pangea/internal/cluster"
)

// This file implements the §7 extension: tolerating r concurrent node
// failures. The group separately replicates any object whose copies span
// fewer than r+1 distinct nodes, adding enough extra copies (placed
// deterministically on nodes that do not already hold the object) that
// every object reaches r+1 distinct nodes. The paper notes the expected
// extra-space ratio 1 − k·(k−1)·…·(k−r)/k^{r+1} and accepts it because
// analytics clusters are small.

// SafeGroup is a replication group hardened against r concurrent failures.
type SafeGroup struct {
	*Group
	// R is the tolerated concurrent failure count.
	R int
	// ExtraCopies counts the additional object copies stored in the
	// safety set.
	ExtraCopies int64
}

// distinctNodes returns the sorted distinct nodes of a mask.
func distinctNodes(mask uint64, k int) []int {
	var out []int
	for i := 0; i < k; i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// extraPlacement deterministically picks the nodes for the extra copies of
// a record whose member copies occupy mask: the lowest-numbered nodes not
// in the mask, enough to reach r+1 distinct nodes in total.
func extraPlacement(mask uint64, k, r int) []int {
	have := len(distinctNodes(mask, k))
	need := r + 1 - have
	if need <= 0 {
		return nil
	}
	var out []int
	for i := 0; i < k && len(out) < need; i++ {
		if mask&(1<<uint(i)) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// BuildSafeGroup builds the replicas like BuildGroup and then replicates
// every under-spread object (copies on fewer than r+1 nodes) into the
// group's safety set so that any r concurrent node failures leave at least
// one copy of every object.
func BuildSafeGroup(cl *cluster.Client, addrs []string, source string, parts []*Partitioner, pageSize int64, r int) (*SafeGroup, error) {
	k := len(addrs)
	if r < 1 || r >= k {
		return nil, fmt.Errorf("placement: r=%d invalid for a %d-node cluster", r, k)
	}
	g := &Group{
		Source:    source,
		Colliding: fmt.Sprintf("%s:safety-r%d", source, r),
		PageSize:  pageSize,
		Members:   []Member{{Set: source}},
	}
	for _, p := range parts {
		target := fmt.Sprintf("%s_pt_%s", source, sanitize(p.Scheme))
		g.Members = append(g.Members, Member{Set: target, Part: p})
	}
	for _, m := range g.Members[1:] {
		if err := cl.CreateSet(m.Set, pageSize, 0); err != nil {
			return nil, err
		}
		if _, err := PartitionSet(cl, addrs, source, m.Set, m.Part); err != nil {
			return nil, err
		}
		if err := cl.RegisterReplica(source, m.Set, m.Part.Scheme); err != nil {
			return nil, err
		}
	}

	if err := cl.CreateSet(g.Colliding, pageSize, 0); err != nil {
		return nil, err
	}
	sg := &SafeGroup{Group: g, R: r}
	b := newBatcher(cl, addrs, g.Colliding, 256)
	for _, addr := range addrs {
		err := cl.FetchSet(addr, source, func(rec []byte) error {
			g.Total++
			mask, err := g.nodesOf(rec, k)
			if err != nil {
				return err
			}
			extra := extraPlacement(mask, k, r)
			if len(extra) == 0 {
				return nil
			}
			g.NumColliding++
			for _, node := range extra {
				sg.ExtraCopies++
				if err := b.add(node, rec); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("placement: safety pass: %w", err)
		}
	}
	if err := b.flush(); err != nil {
		return nil, err
	}
	return sg, nil
}

// RecoverMulti rebuilds every member after up to R concurrent node
// failures. The per-record dispatch rule generalises single-node recovery:
// the lowest-indexed member whose copy survived dispatches the record; when
// no member copy survived, the first surviving node of the record's
// deterministic safety placement dispatches it.
func (sg *SafeGroup) RecoverMulti(cl *cluster.Client, addrs []string, failed []int) ([]RecoveryReport, error) {
	k := len(addrs)
	if len(failed) > sg.R {
		return nil, fmt.Errorf("placement: %d failures exceed the tolerated r=%d", len(failed), sg.R)
	}
	isFailed := make([]bool, k)
	for _, f := range failed {
		isFailed[f] = true
	}
	surviving := make([]int, 0, k)
	for i := 0; i < k; i++ {
		if !isFailed[i] {
			surviving = append(surviving, i)
		}
	}
	if len(surviving) == 0 {
		return nil, fmt.Errorf("placement: no surviving nodes")
	}
	// reassign maps a lost placement index to a surviving node.
	reassign := func(idx int) int { return surviving[idx%len(surviving)] }

	g := sg.Group
	reports := make([]RecoveryReport, 0, len(g.Members))
	for ti, target := range g.Members {
		rep := RecoveryReport{Member: target.Set}

		lostNode := func(rec []byte) (bool, int, error) {
			if target.Part == nil {
				if !isFailed[RandomNode(rec, k)] {
					return false, 0, nil
				}
				return true, reassign(int(fnv1a(rec) % uint64(k))), nil
			}
			p, err := target.Part.PartitionOf(rec)
			if err != nil {
				return false, 0, err
			}
			if !isFailed[NodeOfPartition(p, k)] {
				return false, 0, nil
			}
			return true, reassign(p), nil
		}

		// responsibleMember: is member si the lowest-indexed non-target
		// member with a surviving copy?
		responsibleMember := func(si int, rec []byte) (bool, error) {
			for mi, m := range g.Members {
				if mi == ti {
					continue
				}
				node, err := memberNode(m, rec, k)
				if err != nil {
					return false, err
				}
				if !isFailed[node] {
					return mi == si, nil
				}
			}
			return false, nil
		}

		b := newBatcher(cl, addrs, target.Set, 256)
		dispatch := func(rec []byte) (bool, error) {
			lost, node, err := lostNode(rec)
			if err != nil || !lost {
				return false, err
			}
			return true, b.add(node, rec)
		}

		// Pass 1: surviving member copies.
		for si, source := range g.Members {
			if si == ti {
				continue
			}
			for _, i := range surviving {
				err := cl.FetchSet(addrs[i], source.Set, func(rec []byte) error {
					ok, err := responsibleMember(si, rec)
					if err != nil || !ok {
						return err
					}
					hit, err := dispatch(rec)
					if hit {
						rep.FromSource++
					}
					return err
				})
				if err != nil {
					return reports, fmt.Errorf("placement: recover %s from %s: %w", target.Set, source.Set, err)
				}
			}
		}

		// Pass 2: safety copies. A node dispatches a safety copy only when
		// no member copy survived AND it is the first surviving node of the
		// record's deterministic extra placement.
		for _, i := range surviving {
			err := cl.FetchSet(addrs[i], g.Colliding, func(rec []byte) error {
				mask, err := g.nodesOf(rec, k)
				if err != nil {
					return err
				}
				for _, node := range distinctNodes(mask, k) {
					if !isFailed[node] {
						return nil // a member copy survived; pass 1 covered it
					}
				}
				for _, node := range extraPlacement(mask, k, sg.R) {
					if isFailed[node] {
						continue
					}
					if node != i {
						return nil // a lower surviving safety copy dispatches
					}
					break
				}
				hit, err := dispatch(rec)
				if hit {
					rep.FromColliding++
				}
				return err
			})
			if err != nil {
				return reports, fmt.Errorf("placement: recover %s safety copies: %w", target.Set, err)
			}
		}
		if err := b.flush(); err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
