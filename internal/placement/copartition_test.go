package placement

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// TestCoPartitioningProperty is the invariant the Fig 5 speedups rest on:
// two tables partitioned with the same scheme (same partition count, key
// hashing) place records with equal join keys on the same node, for any key
// and any cluster size — so the join needs no repartition.
func TestCoPartitioningProperty(t *testing.T) {
	f := func(key uint64, kRaw uint8) bool {
		k := 2 + int(kRaw%29) // 2..30 nodes
		np := k * 4
		// Table A stores the key at offset 0, table B at offset 8, like
		// lineitem.l_orderkey vs orders.o_orderkey.
		pa := &Partitioner{Scheme: "s", NumPartitions: np, Key: func(r []byte) ([]byte, error) { return r[0:8], nil }}
		pb := &Partitioner{Scheme: "s", NumPartitions: np, Key: func(r []byte) ([]byte, error) { return r[8:16], nil }}
		recA := make([]byte, 16)
		recB := make([]byte, 24)
		binary.LittleEndian.PutUint64(recA[0:8], key)
		binary.LittleEndian.PutUint64(recB[8:16], key)
		na, err := pa.NodeOf(recA, k)
		if err != nil {
			return false
		}
		nb, err := pb.NodeOf(recB, k)
		if err != nil {
			return false
		}
		return na == nb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPartitionOfStableAcrossCalls: partitioning is a pure function of the
// key — the property recovery relies on to re-derive lost placements.
func TestPartitionOfStableAcrossCalls(t *testing.T) {
	p := &Partitioner{Scheme: "s", NumPartitions: 64, Key: func(r []byte) ([]byte, error) { return r, nil }}
	f := func(key []byte) bool {
		a, err1 := p.PartitionOf(key)
		b, err2 := p.PartitionOf(key)
		return err1 == nil && err2 == nil && a == b && a >= 0 && a < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
