package exp

import (
	"fmt"
	"sync"
	"time"

	"pangea/internal/memory"
	"pangea/internal/numa"
)

// S8Locality measures what NUMA-aware shard placement buys: parallel page
// alloc/free traffic against the sharded allocator under three placements —
// node-affine homes (each worker's sets homed on its own node's shards),
// the interleaved baseline (homes spread over every shard regardless of
// node, the pre-NUMA behaviour), and an adversarial hot-node run (every
// worker homed on node 0, overflowing it so the two-tier steal must cross
// the interconnect). Each placement runs on the real discovered topology
// and on fake 2- and 4-node shapes, so the cross-node columns are
// meaningful on any machine. On single-socket hardware the throughput
// columns tie — the remote-allocation fraction and cross-node steal counts
// are the locality the placement controls, and on a multi-socket box every
// remote allocation is a page served at remote-DRAM latency for its whole
// residency.
func S8Locality(o Options) (*Table, error) {
	const (
		workers    = 8
		shards     = 8
		arenaBytes = 32 << 20
		allocSize  = 64 << 10
		window     = 40 // live blocks per worker; sized to overflow one node
	)
	ops := o.pick(4000, 40000)
	t := &Table{
		ID:     "s8",
		Title:  "NUMA shard placement: node-affine vs interleaved page allocation",
		Header: []string{"topology", "placement", "kops/s", "remote allocs", "cross-node steals"},
	}

	type shape struct {
		name string
		topo numa.Topology
		// nodeOf maps a worker index to the node it notionally runs on.
		nodeOf func(w int) int
	}
	real := numa.Discover()
	shapes := []shape{
		{fmt.Sprintf("real (%d node)", real.NumNodes()), real, func(int) int { return real.CurrentNode() }},
	}
	for _, nodes := range []int{2, 4} {
		fake := numa.NewFake(nodes, workers)
		shapes = append(shapes, shape{fmt.Sprintf("fake-%d", nodes), fake, fake.NodeOfCPU})
	}

	// home picks the i-th allocation's home shard for worker w, whose node
	// was sampled once at worker start — the same cadence as the pool,
	// which consults CurrentNode once per CreateSet, never per allocation.
	// Node-affine pins each worker to its own node's shards; interleaved
	// walks every shard regardless of node — the pre-NUMA behaviour, where
	// a set's home was its ID over all shards and so uncorrelated with the
	// creating worker's node; affine-hot-node homes everyone on node 0 so
	// the node overflows and the two-tier steal has to cross.
	type placement struct {
		name string
		home func(alloc *memory.ShardedTLSF, node, w, i int) int
	}
	placements := []placement{
		{"node-affine", func(a *memory.ShardedTLSF, node, w, _ int) int {
			return a.HomeShardOn(node, w)
		}},
		{"interleaved", func(a *memory.ShardedTLSF, _, w, i int) int {
			return a.HomeShard(w + i)
		}},
		{"affine-hot-node", func(a *memory.ShardedTLSF, _, w, _ int) int {
			return a.HomeShardOn(0, w)
		}},
	}

	for _, sh := range shapes {
		for _, pl := range placements {
			alloc := memory.NewShardedTLSFNUMA(memory.NewArena(arenaBytes), shards, sh.topo, nil)
			var remote, total int64
			var mu sync.Mutex
			run := func(ops int, count bool) (time.Duration, error) {
				errs := make(chan error, workers)
				// Barrier after the window fill: the placement question is
				// about co-resident working sets, so every worker's window
				// must be live at once — without this, a single-core
				// scheduler can run the workers back to back and no node
				// ever overflows.
				var ready sync.WaitGroup
				ready.Add(workers)
				churn := make(chan struct{})
				go func() {
					ready.Wait()
					close(churn)
				}()
				start := time.Now()
				for w := 0; w < workers; w++ {
					go func(w int) {
						node := sh.nodeOf(w)
						var rem, tot int64
						note := func(off int64) {
							tot++
							if alloc.NodeOfShard(alloc.ShardOf(off)) != node {
								rem++
							}
						}
						live := make([]int64, 0, window)
						var fillErr error
						for len(live) < window {
							off, err := alloc.AllocAffinity(allocSize, pl.home(alloc, node, w, len(live)))
							if err != nil {
								fillErr = err
								break
							}
							note(off)
							live = append(live, off)
						}
						ready.Done()
						if fillErr != nil {
							errs <- fillErr
							return
						}
						<-churn
						h := 0
						for i := window; i < ops; i++ {
							off, err := alloc.AllocAffinity(allocSize, pl.home(alloc, node, w, i))
							if err != nil {
								errs <- err
								return
							}
							note(off)
							alloc.Free(live[h])
							live[h] = off
							h = (h + 1) % window
						}
						for _, off := range live {
							alloc.Free(off)
						}
						if count {
							mu.Lock()
							remote += rem
							total += tot
							mu.Unlock()
						}
						errs <- nil
					}(w)
				}
				for w := 0; w < workers; w++ {
					if err := <-errs; err != nil {
						return 0, err
					}
				}
				return time.Since(start), nil
			}
			if _, err := run(ops/4, false); err != nil { // warm-up
				return nil, err
			}
			// Steals are reported as the measured-run delta so both
			// locality columns describe the same window.
			stealsBefore := alloc.CrossNodeSteals()
			elapsed, err := run(ops, true)
			if err != nil {
				return nil, err
			}
			kops := float64(workers*ops) / elapsed.Seconds() / 1000
			t.AddRow(sh.name, pl.name,
				fmt.Sprintf("%.0f", kops),
				fmt.Sprintf("%.1f%%", 100*float64(remote)/float64(total)),
				fmt.Sprintf("%d", alloc.CrossNodeSteals()-stealsBefore))
		}
	}
	t.Notes = append(t.Notes,
		"remote allocs = blocks served by a shard on a different node than the worker's; each is remote DRAM for the page's whole residency on real hardware",
		"node-affine keeps allocation node-local until a node genuinely overflows (affine-hot-node), where the two-tier steal crosses the interconnect instead of failing",
		"interleaved is the pre-NUMA baseline: home shards assigned round-robin over all shards, so most pages land remote by construction")
	return t, nil
}
