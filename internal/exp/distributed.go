package exp

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pangea/internal/cluster"
	"pangea/internal/core"
	"pangea/internal/disk"
	"pangea/internal/kmeans"
	"pangea/internal/layered"
	"pangea/internal/paging"
	"pangea/internal/placement"
	"pangea/internal/query"
	"pangea/internal/tpch"
)

// clusterKey is the private key of the harness's deployments.
const clusterKey = "pangea-bench-key"

// testCluster is one in-process deployment: a manager plus workers on
// localhost, each with its own buffer pool and throttled drives.
type testCluster struct {
	mgr     *cluster.Manager
	workers []*cluster.Worker
	exec    *query.Executor
}

func startCluster(o Options, tag string, nodes int, memPerNode int64, policy func() core.Policy) (*testCluster, error) {
	mgr, err := cluster.NewManager("127.0.0.1:0", clusterKey)
	if err != nil {
		return nil, err
	}
	cl := cluster.NewClient(mgr.Addr(), clusterKey)
	tc := &testCluster{mgr: mgr}
	for i := 0; i < nodes; i++ {
		var p core.Policy
		if policy != nil {
			p = policy()
		}
		w, err := cluster.NewWorker("127.0.0.1:0", cluster.WorkerConfig{
			PrivateKey: clusterKey,
			Memory:     memPerNode,
			DiskDir:    filepath.Join(o.Dir, tag, fmt.Sprintf("w%d", i)),
			DiskConfig: diskConfig(),
			Policy:     p,
		})
		if err != nil {
			tc.close()
			return nil, err
		}
		tc.workers = append(tc.workers, w)
		if _, err := cl.RegisterWorker(w.Addr()); err != nil {
			tc.close()
			return nil, err
		}
	}
	tc.exec = query.NewExecutor(cl, tc.workers, 2)
	return tc, nil
}

func (tc *testCluster) close() {
	for _, w := range tc.workers {
		_ = w.Close()
	}
	if tc.mgr != nil {
		_ = tc.mgr.Close()
	}
}

// --- Figs 3 and 4: the k-means study -----------------------------------------

// kmeansResult is one (system, scale) cell of the study.
type kmeansResult struct {
	latency time.Duration
	memory  int64
	failed  string // non-empty on failure, e.g. "FAIL(blocked)"
}

type kmeansStudy struct {
	scales  []int // ×1, ×2, ×3 point multipliers
	systems []string
	cells   map[string]map[int]kmeansResult
}

var (
	studyMu    sync.Mutex
	studyCache = map[bool]*kmeansStudy{}
)

// pangeaPolicies is the Fig 3 policy lineup for the Pangea rows.
func pangeaPolicies() []struct {
	Name   string
	Policy func() core.Policy
} {
	return []struct {
		Name   string
		Policy func() core.Policy
	}{
		{"Pangea w/ Data-aware", func() core.Policy { return core.NewDataAware() }},
		{"Pangea w/ LRU", func() core.Policy { return paging.NewLRU() }},
		{"Pangea w/ MRU", func() core.Policy { return paging.NewMRU() }},
		{"Pangea w/ DBMIN-1", func() core.Policy { return paging.NewDBMIN1() }},
		{"Pangea w/ DBMIN-1000", func() core.Policy { return paging.NewDBMIN1000() }},
		{"Pangea w/ DBMIN-adaptive", func() core.Policy { return paging.NewDBMINAdaptive() }},
	}
}

// runKMeansStudy executes the full Fig 3 / Fig 4 grid once and caches it.
func runKMeansStudy(o Options) (*kmeansStudy, error) {
	studyMu.Lock()
	defer studyMu.Unlock()
	if s, ok := studyCache[o.Quick]; ok {
		return s, nil
	}

	nodes := o.pick(2, 3)
	baseN := o.pick(8000, 30000)
	iters := o.pick(2, 5)
	poolPerNode := o.pick64(1<<20, 2<<20)
	const dim = 10
	cfg := kmeans.Config{K: 10, Dim: dim, Iterations: iters, Threads: 2, PageSize: 128 << 10}

	s := &kmeansStudy{scales: []int{1, 2, 3}, cells: map[string]map[int]kmeansResult{}}
	record := func(system string, scale int, r kmeansResult) {
		if s.cells[system] == nil {
			s.cells[system] = map[int]kmeansResult{}
			s.systems = append(s.systems, system)
		}
		s.cells[system][scale] = r
	}

	for _, scale := range s.scales {
		n := baseN * scale
		pts := kmeans.GeneratePoints(n, dim, cfg.K, 99)

		// Pangea under each paging policy.
		for _, pp := range pangeaPolicies() {
			tc, err := startCluster(o, fmt.Sprintf("fig3-%s-%d", pp.Name, scale), nodes, poolPerNode, pp.Policy)
			if err != nil {
				return nil, err
			}
			res := kmeansResult{}
			err = func() error {
				if err := tc.exec.Client.CreateSet("points", 128<<10, uint8(core.WriteThrough)); err != nil {
					return err
				}
				if err := placement.DispatchRandom(tc.exec.Client, tc.exec.Addrs, "points", pts); err != nil {
					return err
				}
				model, err := kmeans.Run(tc.exec, "points", cfg)
				if err != nil {
					return err
				}
				res.latency = model.TotalTime()
				for _, w := range tc.workers {
					res.memory += w.Pool().PeakBytes()
				}
				return nil
			}()
			if err != nil {
				if errors.Is(err, paging.ErrDBMINBlocked) {
					res.failed = "FAIL(blocked)"
				} else if errors.Is(err, core.ErrNoEvictable) {
					res.failed = "FAIL(exhausted)"
				} else {
					res.failed = "FAIL"
				}
			}
			record(pp.Name, scale, res)
			tc.close()
		}

		// The layered Spark configurations (single-node engine over the
		// same aggregate memory — see DESIGN.md substitutions).
		total := poolPerNode * int64(nodes)
		sparkSetups := []struct {
			name    string
			storage func() (layered.Storage, func(), error)
			pool    int64
		}{
			{"Spark w/ HDFS", func() (layered.Storage, func(), error) {
				arr, err := disk.NewArray(filepath.Join(o.Dir, fmt.Sprintf("fig3-hdfs-%d", scale)), 1, diskConfig())
				if err != nil {
					return nil, nil, err
				}
				return layered.NewHDFSStorage(arr, total/3), func() { _ = arr.RemoveAll() }, nil
			}, total * 2 / 3},
			{"Spark w/ Alluxio", func() (layered.Storage, func(), error) {
				// Alluxio gets the lion's share (the paper gave it 15 of
				// 50 GB), leaving Spark a thin RDD cache.
				return layered.NewAlluxioStorage(total * 3 / 2), func() {}, nil
			}, total / 4},
			{"Spark w/ Ignite", func() (layered.Storage, func(), error) {
				// The off-heap region fits ×1 but not ×2 — the segfault.
				return layered.NewIgniteStorage(int64(float64(baseN) * 100 * 1.6)), func() {}, nil
			}, total / 4},
		}
		for _, setup := range sparkSetups {
			st, cleanup, err := setup.storage()
			if err != nil {
				return nil, err
			}
			res := kmeansResult{}
			err = func() error {
				if err := layered.LoadPointsToStorage(st, "points", pts, 2000); err != nil {
					return err
				}
				model, err := layered.SparkKMeans(st, "points", layered.SparkConfig{
					K: cfg.K, Dim: dim, Iterations: iters,
					StoragePool: setup.pool, ExecPool: total / 8,
				})
				if err != nil {
					return err
				}
				res.latency = model.TotalTime()
				res.memory = model.PeakMemory
				return nil
			}()
			if err != nil {
				switch {
				case errors.Is(err, layered.ErrIgniteCrash):
					res.failed = "FAIL(segfault)"
				case errors.Is(err, layered.ErrAlluxioFull):
					res.failed = "FAIL(memory)"
				default:
					res.failed = "FAIL"
				}
			}
			record(setup.name, scale, res)
			cleanup()
		}
	}
	studyCache[o.Quick] = s
	return s, nil
}

// Fig3 reports the k-means latency comparison.
func Fig3(o Options) (*Table, error) {
	s, err := runKMeansStudy(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig3",
		Title:  "k-means latency (ms), initialization + iterations",
		Header: []string{"system", "x1 points", "x2 points", "x3 points"},
	}
	for _, sys := range s.systems {
		row := []string{sys}
		for _, scale := range s.scales {
			c := s.cells[sys][scale]
			if c.failed != "" {
				row = append(row, c.failed)
			} else {
				row = append(row, ms(c.latency))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Fig 3: Pangea data-aware up to 6× faster than Spark; DBMIN-adaptive and DBMIN-1000 block; Ignite segfaults at ≥2×")
	return t, nil
}

// Fig4 reports the memory usage of the same study.
func Fig4(o Options) (*Table, error) {
	s, err := runKMeansStudy(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig4",
		Title:  "k-means peak memory usage (MiB)",
		Header: []string{"system", "x1 points", "x2 points", "x3 points"},
	}
	show := map[string]bool{
		"Pangea w/ Data-aware": true,
		"Spark w/ HDFS":        true,
		"Spark w/ Alluxio":     true,
		"Spark w/ Ignite":      true,
	}
	for _, sys := range s.systems {
		if !show[sys] {
			continue
		}
		row := []string{sys}
		for _, scale := range s.scales {
			c := s.cells[sys][scale]
			if c.failed != "" {
				row = append(row, c.failed)
			} else {
				row = append(row, mb(c.memory))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Fig 4: Spark over Alluxio/Ignite double-cache the input and use the most memory; Pangea's single pool uses the least for the work done")
	return t, nil
}

// --- Fig 5: TPC-H -------------------------------------------------------------

// Fig5 runs the nine queries with heterogeneous replicas (the Pangea plan)
// and with runtime repartition (the layered plan) and reports both.
func Fig5(o Options) (*Table, error) {
	nodes := o.pick(3, 4)
	sf := 0.002
	if !o.Quick {
		sf = 0.01
	}
	tc, err := startCluster(o, "fig5", nodes, 32<<20, nil)
	if err != nil {
		return nil, err
	}
	defer tc.close()
	d := tpch.Generate(sf, 17)
	if err := tpch.Load(tc.exec, d, 256<<10); err != nil {
		return nil, err
	}
	if _, err := tpch.BuildReplicas(tc.exec, 256<<10); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig5",
		Title:  fmt.Sprintf("TPC-H latency (ms), scale %.3f, %d workers", sf, nodes),
		Header: []string{"query", "pangea (replicas)", "spark-like (repartition)", "speedup"},
	}
	pangea := tpch.NewRunner(tc.exec, 2, true)
	sparkish := tpch.NewRunner(tc.exec, 2, false)
	for _, q := range tpch.QueryNames {
		start := time.Now()
		resA, err := pangea.Run(q)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s pangea: %w", q, err)
		}
		tA := time.Since(start)
		start = time.Now()
		resB, err := sparkish.Run(q)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s spark-like: %w", q, err)
		}
		tB := time.Since(start)
		if err := tpch.ResultsEqual(resA, resB, 1e-9); err != nil {
			return nil, fmt.Errorf("fig5 %s: plans disagree: %w", q, err)
		}
		t.AddRow(q, ms(tA), ms(tB), fmt.Sprintf("%.1fx", float64(tB)/float64(tA)))
	}
	t.Notes = append(t.Notes,
		"paper Fig 5: replica-driven plans up to 20× faster (Q17); queries without a partitioned-join benefit (Q01, Q06) roughly even")
	return t, nil
}

// --- Fig 6: recovery -------------------------------------------------------------

// Fig6 measures heterogeneous-replica recovery after a single-node failure
// at three cluster sizes.
func Fig6(o Options) (*Table, error) {
	sizes := []int{4, 6, 8}
	sf := 0.002
	if !o.Quick {
		sizes = []int{10, 20, 30}
		sf = 0.005
	}
	t := &Table{
		ID:     "fig6",
		Title:  fmt.Sprintf("single-node failure recovery of lineitem (scale %.3f)", sf),
		Header: []string{"workers", "recovery ms", "colliding objects", "colliding %"},
	}
	for _, k := range sizes {
		tc, err := startCluster(o, fmt.Sprintf("fig6-%d", k), k, 8<<20, nil)
		if err != nil {
			return nil, err
		}
		d := tpch.Generate(sf, 23)
		if err := tc.exec.Client.CreateSet("lineitem", 128<<10, 0); err != nil {
			tc.close()
			return nil, err
		}
		if err := placement.DispatchRandom(tc.exec.Client, tc.exec.Addrs, "lineitem", d.Lineitem); err != nil {
			tc.close()
			return nil, err
		}
		np := k * 4
		key := func(f func([]byte) []byte) placement.KeyFunc {
			return func(rec []byte) ([]byte, error) { return f(rec), nil }
		}
		parts := []*placement.Partitioner{
			{Scheme: "hash(l_orderkey)", NumPartitions: np, Key: key(tpch.LOrderKey)},
			{Scheme: "hash(l_partkey)", NumPartitions: np, Key: key(tpch.LPartKey)},
		}
		g, err := placement.BuildGroup(tc.exec.Client, tc.exec.Addrs, "lineitem", parts, 128<<10)
		if err != nil {
			tc.close()
			return nil, err
		}
		const failed = 0
		_ = tc.workers[failed].Close()
		start := time.Now()
		if _, err := placement.Recover(tc.exec.Client, tc.exec.Addrs, g, failed); err != nil {
			tc.close()
			return nil, err
		}
		elapsed := time.Since(start)
		t.AddRow(fmt.Sprintf("%d", k), ms(elapsed),
			fmt.Sprintf("%d", g.NumColliding),
			fmt.Sprintf("%.2f%%", 100*g.CollidingRatio()))
		tc.close()
	}
	t.Notes = append(t.Notes,
		"paper Fig 6 / §7: ~5s to recover 79GB on 10 nodes; colliding ratio falls from <9% (10 nodes) to 3% (20) to ~0 (30)")
	return t, nil
}

// --- §7 colliding-object study ----------------------------------------------------

// S7Colliding counts colliding objects without moving data, across the
// paper's cluster sizes, against the n/k² expectation for three
// organizations. (Registered as s7c; the s7 slot now holds the
// multi-tenant fairness experiment.)
func S7Colliding(o Options) (*Table, error) {
	n := o.pick(20000, 100000)
	d := tpch.Generate(float64(n)/6_000_000, 31)
	key := func(f func([]byte) []byte) placement.KeyFunc {
		return func(rec []byte) ([]byte, error) { return f(rec), nil }
	}
	t := &Table{
		ID:     "s7c",
		Title:  fmt.Sprintf("colliding objects for two lineitem partitionings (%d rows)", len(d.Lineitem)),
		Header: []string{"workers", "colliding", "ratio", "expected ~1/k^2"},
	}
	for _, k := range []int{10, 20, 30} {
		parts := []*placement.Partitioner{
			{Scheme: "hash(l_orderkey)", NumPartitions: k * 4, Key: key(tpch.LOrderKey)},
			{Scheme: "hash(l_partkey)", NumPartitions: k * 4, Key: key(tpch.LPartKey)},
		}
		c := placement.CountColliding(d.Lineitem, parts, k)
		ratio := float64(c) / float64(len(d.Lineitem))
		t.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", c),
			fmt.Sprintf("%.4f%%", 100*ratio),
			fmt.Sprintf("%.4f%%", 100/float64(k*k)))
	}
	t.Notes = append(t.Notes,
		"paper §7: 53.39M colliding of 5.98B on 10 nodes, 15M on 20, none observed on 30 — a sharply declining ratio")
	return t, nil
}

// --- Table 2: SLOC breakdown -------------------------------------------------------

// Tab2 counts the source lines of the query processor's modules, the
// analogue of the paper's Table 2 effort breakdown.
func Tab2(Options) (*Table, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	components := []struct {
		name  string
		files []string
	}{
		{"Scan", []string{"internal/query/iter.go"}},
		{"Join", []string{"internal/query/join.go"}},
		{"Build broadcast hash map", []string{"internal/services/joinmap.go"}},
		{"Aggregate: local+final", []string{"internal/query/agg.go"}},
		{"Hash service", []string{"internal/services/hash.go"}},
		{"Pipeline & scheduling", []string{"internal/query/scheduler.go"}},
		{"TPC-H queries", []string{"internal/tpch/queries.go"}},
	}
	t := &Table{
		ID:     "tab2",
		Title:  "source code breakdown of the Pangea-based relational query processor",
		Header: []string{"component", "SLOC"},
	}
	var total int
	for _, c := range components {
		var n int
		for _, f := range c.files {
			sloc, err := countSLOC(filepath.Join(root, f))
			if err != nil {
				return nil, err
			}
			n += sloc
		}
		total += n
		t.AddRow(c.name, fmt.Sprintf("%d", n))
	}
	t.AddRow("Total", fmt.Sprintf("%d", total))
	t.Notes = append(t.Notes, "paper Table 2 totals 5889 SLOC of C++ for eleven modules")
	return t, nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("exp: go.mod not found above working directory")
		}
		dir = parent
	}
}

// countSLOC counts non-blank, non-comment-only lines.
func countSLOC(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "//") {
			continue
		}
		n++
	}
	return n, nil
}
