package exp

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"pangea/internal/core"
)

// S7Fairness measures multi-tenant isolation under the per-set admission
// control (ROADMAP: bound how much of the pool a single locality set may
// consume). A well-behaved "polite" tenant serves a write-through lookup
// set provisioned just under half the pool at a steady, latency-sensitive
// pace; an "aggressive" tenant scans a dirty random-read working set as
// large as the entire pool flat out, so every one of its misses demands
// memory. Without admission control the cost model does the globally
// I/O-optimal thing — the polite tenant's clean pages are free to drop
// (c_w = 0) while the aggressor's dirty random-read pages are expensive,
// so the polite tenant is evicted over and over and its residency and tail
// latency collapse: the Polynesia/HTAP co-residency failure mode, where
// per-page efficiency and per-tenant isolation pull apart. With a
// fair-share weight or a hard quota on the aggressor, its growth must
// self-evict before it may take a page from the under-entitlement tenant,
// however cheap that page looks.
func S7Fairness(o Options) (*Table, error) {
	const pageSize = 16 << 10
	poolPages := int64(o.pick(32, 64))
	mem := poolPages * pageSize
	// Provisioned under its 50% entitlement by a little more than the
	// pool's LowWater mark, so neither the polite tenant's own reload
	// demand nor the daemon's background free-memory target can ever be
	// satisfied only by taking the polite tenant's pages.
	politePages := int(poolPages * 3 / 8)
	aggrPages := int(poolPages)
	politeOps := o.pick(600, 3000)

	t := &Table{
		ID: "s7",
		Title: fmt.Sprintf("multi-tenant fairness: aggressive scan vs well-behaved tenant (%d KiB pages, %d KiB pool)",
			pageSize>>10, mem>>10),
		Header: []string{"admission", "polite share avg", "share min", "entitled",
			"pin p50 ms", "pin p99 ms", "polite loads", "aggr spills"},
	}

	pct := func(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }

	run := func(tag string, politeSpec, aggrSpec core.SetSpec, guaranteed float64) error {
		bp, arr, err := newPool(o, "s7-"+tag, mem, 1, nil)
		if err != nil {
			return err
		}
		defer func() { _ = arr.RemoveAll() }()

		polite, err := bp.CreateSet(politeSpec)
		if err != nil {
			return err
		}
		for i := 0; i < politePages; i++ {
			p, err := polite.NewPage()
			if err != nil {
				return err
			}
			p.Bytes()[0] = byte(i)
			// Write-through: the page is persisted here and stays clean in
			// memory, which is exactly what makes it the cost model's
			// favourite victim.
			if err := polite.Unpin(p, true); err != nil {
				return err
			}
		}
		aggr, err := bp.CreateSet(aggrSpec)
		if err != nil {
			return err
		}
		// A "well-tagged but selfish" tenant: random reads carry the w_r
		// re-read penalty, so the cost model is inclined to protect it.
		aggr.SetReading(core.RandomRead)

		var stop atomic.Bool
		done := make(chan error, 1)
		go func() {
			for i := 0; i < aggrPages && !stop.Load(); i++ {
				p, err := aggr.NewPage()
				if err != nil {
					done <- fmt.Errorf("aggressor NewPage %d: %w", i, err)
					return
				}
				p.Bytes()[0] = byte(i)
				if err := aggr.Unpin(p, true); err != nil {
					done <- err
					return
				}
			}
			for i := 0; !stop.Load(); i++ {
				p, err := aggr.Pin(int64(i % aggrPages))
				if err != nil {
					done <- fmt.Errorf("aggressor Pin: %w", err)
					return
				}
				if err := aggr.Unpin(p, false); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()

		lat := make([]time.Duration, 0, politeOps)
		var sumShare float64
		minShare := 1.0
		for op := 0; op < politeOps; op++ {
			start := time.Now()
			p, err := polite.Pin(int64(op % politePages))
			if err != nil {
				stop.Store(true)
				<-done
				return fmt.Errorf("polite Pin: %w", err)
			}
			if err := polite.Unpin(p, false); err != nil {
				stop.Store(true)
				<-done
				return err
			}
			lat = append(lat, time.Since(start))
			share := float64(polite.ResidentBytes()) / float64(mem)
			sumShare += share
			if share < minShare {
				minShare = share
			}
			// The polite tenant is latency-sensitive, not throughput-bound:
			// it works at a steady pace while the aggressor runs flat out.
			time.Sleep(250 * time.Microsecond)
		}
		stop.Store(true)
		if err := <-done; err != nil {
			return err
		}

		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p50, p99 := lat[len(lat)/2], lat[len(lat)*99/100]
		entitled := "-"
		if guaranteed > 0 {
			entitled = pct(guaranteed)
		}
		t.AddRow(tag, pct(sumShare/float64(politeOps)), pct(minShare), entitled,
			ms(p50), ms(p99),
			fmt.Sprintf("%d", polite.LoadReads()), fmt.Sprintf("%d", aggr.SpillWrites()))
		for _, s := range []*core.LocalitySet{polite, aggr} {
			if err := bp.DropSet(s); err != nil {
				return err
			}
		}
		return nil
	}

	scenarios := []struct {
		name       string
		polite     core.SetSpec
		aggr       core.SetSpec
		guaranteed float64 // polite's protected share of the pool
	}{
		{"none",
			core.SetSpec{Name: "polite", PageSize: pageSize, Durability: core.WriteThrough},
			core.SetSpec{Name: "aggr", PageSize: pageSize}, 0},
		{"weights 1:1",
			core.SetSpec{Name: "polite", PageSize: pageSize, Durability: core.WriteThrough, Weight: 1},
			core.SetSpec{Name: "aggr", PageSize: pageSize, Weight: 1}, 0.5},
		{"quota on aggressor",
			core.SetSpec{Name: "polite", PageSize: pageSize, Durability: core.WriteThrough},
			core.SetSpec{Name: "aggr", PageSize: pageSize, MemoryQuota: mem / 2}, 0.5},
	}
	for _, sc := range scenarios {
		if err := run(sc.name, sc.polite, sc.aggr, sc.guaranteed); err != nil {
			return nil, fmt.Errorf("s7 %s: %w", sc.name, err)
		}
	}
	t.Notes = append(t.Notes,
		"polite: write-through lookup set provisioned just under a 50% entitlement; aggressor: dirty random-read scan over the whole pool",
		"without admission the cost model rightly drops the cheap clean pages — and the polite tenant starves (share down, loads up, p99 up)",
		"with admission the aggressor's growth self-evicts (over-entitlement first, capped at its overage), so the polite share holds within ~10% of its working set")
	return t, nil
}
