// Package exp is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (§9) on the simulated substrate. Each
// experiment returns a Table whose rows mirror the series the paper plots;
// absolute numbers differ (MB-scale simulation vs the authors' AWS
// testbed), but the shapes — who wins, by what rough factor, and where the
// crossovers fall — are the reproduction target. EXPERIMENTS.md records
// paper-vs-measured for each.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"pangea/internal/disk"
)

// Table is one experiment's printable result.
type Table struct {
	ID     string // e.g. "fig3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Options tunes experiment scale. Quick shrinks workloads to CI size
// (sub-second to a few seconds per experiment); the default sizes are used
// by `pangea-bench` and the committed bench output.
type Options struct {
	Quick bool
	// Dir is the scratch directory for simulated drives. Required.
	Dir string
}

// pick returns quick or full depending on the options.
func (o Options) pick(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

func (o Options) pick64(quick, full int64) int64 {
	if o.Quick {
		return quick
	}
	return full
}

// diskConfig is the calibrated drive model shared by Pangea and every
// baseline: same bandwidth, same seek charge, so I/O-bound comparisons are
// apples to apples.
func diskConfig() disk.Config {
	return disk.Config{ReadMBps: 150, WriteMBps: 120, SeekLatency: 150 * time.Microsecond}
}

// ms renders a duration in milliseconds for table cells.
func ms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }

// mb renders bytes in MiB.
func mb(n int64) string { return fmt.Sprintf("%.2f", float64(n)/(1<<20)) }

// RunFunc is one experiment.
type RunFunc func(Options) (*Table, error)

// Registry maps experiment ids to their runners, in the paper's order.
var Registry = []struct {
	ID  string
	Fn  RunFunc
	Doc string
}{
	{"fig3", Fig3, "k-means latency: Pangea paging policies vs Spark over HDFS/Alluxio/Ignite"},
	{"fig4", Fig4, "k-means memory usage per setup"},
	{"fig5", Fig5, "TPC-H latency: heterogeneous replicas vs runtime repartition"},
	{"fig6", Fig6, "recovery latency and colliding ratio vs cluster size"},
	{"fig7", Fig7, "sequential access, transient data: Pangea vs OS VM vs Alluxio"},
	{"fig8", Fig8, "sequential access, persistent data: Pangea vs OS FS vs HDFS"},
	{"fig9", Fig9, "paging policies for sequential access (write-through and write-back)"},
	{"fig10", Fig10, "paging policies for shuffle"},
	{"tab2", Tab2, "SLOC breakdown of the query processor"},
	{"tab3", Tab3, "shuffle write/read: simulated Spark shuffle vs Pangea"},
	{"tab4", Tab4, "key-value aggregation: Go map vs Pangea hashmap vs Redis-like"},
	{"s7c", S7Colliding, "colliding objects vs node count and the n/k estimate"},
	{"s5", S5Concurrency, "parallel Pin/Unpin throughput: shared set vs per-goroutine sets"},
	{"s5b", S5AllocShards, "parallel page alloc/free throughput: 1 TLSF shard vs one per core"},
	{"s6", S6SpillThroughput, "spill throughput vs drive count: per-drive write-back pipeline"},
	{"s7", S7Fairness, "multi-tenant fairness: per-set admission control vs an aggressive hot set"},
	{"s8", S8Locality, "NUMA shard placement: node-affine vs interleaved allocation, real and fake topologies"},
	{"s9", S9Prefetch, "async prefetching read path: cold sequential/looping scans vs drive count, read-ahead on/off"},
	{"s10", S10Columnar, "columnar page layout: selective scan-filter-agg, batch kernels vs row decode, warm and cold"},
	{"s11", S11ZoneMap, "zone-map page skipping: selective scans with maps on/off, warm and cold, 1 and 4 drives"},
	{"s12", S12Microindex, "microindex point lookups on a non-clustered key: index vs zone-map blooms vs unpruned, warm and cold"},
}

// Run executes one experiment by id.
func Run(id string, o Options) (*Table, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Fn(o)
		}
	}
	return nil, fmt.Errorf("exp: unknown experiment %q", id)
}
