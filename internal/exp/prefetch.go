package exp

import (
	"fmt"
	"path/filepath"
	"time"

	"pangea/internal/core"
	"pangea/internal/disk"
	"pangea/internal/query"
	"pangea/internal/services"
)

// S9Prefetch measures the asynchronous read path: cold sequential scans,
// cold looping scans (three passes over data 4× the pool), and a warm-cache
// scan, each at 1/2/4 drives with automatic read-ahead on vs off. With
// prefetch off every pin miss is one synchronous read — N drives deliver
// single-drive latency to a serial scan because only one read is ever
// outstanding. With read-ahead on, the per-drive queues keep all drives
// busy ahead of the consumer, so cold-scan throughput should approach the
// array's aggregate bandwidth; the single-drive and warm configurations
// bound the overhead of speculation where it cannot help.
func S9Prefetch(o Options) (*Table, error) {
	const pageSize = 256 << 10
	totalPages := o.pick(24, 96)
	poolPages := int64(o.pick(10, 24))
	mem := poolPages * pageSize
	t := &Table{
		ID: "s9",
		Title: fmt.Sprintf("async prefetching read path (%d KiB pages, ~%d MiB data through a %d MiB pool)",
			pageSize>>10, int64(totalPages)*pageSize>>20, mem>>20),
		Header: []string{"config", "drives", "prefetch", "scan ms", "MB/s", "speedup",
			"issued", "hits", "wasted", "loads"},
	}
	configs := []struct {
		name   string
		drives int
	}{
		{"cold-seq", 1}, {"cold-seq", 2}, {"cold-seq", 4},
		{"loop", 1}, {"loop", 2}, {"loop", 4},
		{"warm", 1}, {"warm", 4},
	}
	for _, cfg := range configs {
		var off time.Duration
		for _, prefetch := range []bool{false, true} {
			r, err := s9Run(o, cfg.name, cfg.drives, prefetch, totalPages, poolPages, mem, pageSize)
			if err != nil {
				return nil, err
			}
			speedup := "-"
			if !prefetch {
				off = r.elapsed
			} else if r.elapsed > 0 {
				speedup = fmt.Sprintf("%.2fx", off.Seconds()/r.elapsed.Seconds())
			}
			mode := "off"
			if prefetch {
				mode = "on"
			}
			mbps := float64(r.bytes) / (1 << 20) / r.elapsed.Seconds()
			t.AddRow(cfg.name, fmt.Sprintf("%d", cfg.drives), mode, ms(r.elapsed),
				fmt.Sprintf("%.0f", mbps), speedup,
				fmt.Sprintf("%d", r.issued), fmt.Sprintf("%d", r.hits),
				fmt.Sprintf("%d", r.wasted), fmt.Sprintf("%d", r.loads))
		}
	}
	t.Notes = append(t.Notes,
		"cold-seq: one cold sequential scan, single consumer thread; loop: three consecutive cold-start passes",
		"warm: data half the pool, primed resident before timing — prefetch must cost nothing on hits",
		"issued/hits/wasted are the pool's speculation counters; loads counts demand misses only")
	return t, nil
}

type s9Result struct {
	elapsed                     time.Duration
	bytes                       int64
	issued, hits, wasted, loads int64
}

// s9Run builds one pool, writes the data set write-through (so every page
// has an on-disk image and eviction of its clean pages is free), makes the
// cache state the config asks for, and times the scan.
func s9Run(o Options, cfgName string, drives int, prefetch bool, totalPages int, poolPages, mem, pageSize int64) (s9Result, error) {
	mode := "off"
	if prefetch {
		mode = "on"
	}
	tag := fmt.Sprintf("s9-%s-%dd-%s", cfgName, drives, mode)
	arr, err := disk.NewArray(filepath.Join(o.Dir, tag), drives, diskConfig())
	if err != nil {
		return s9Result{}, err
	}
	defer func() { _ = arr.RemoveAll() }()
	ra := -1 // automatic read-ahead disabled
	if prefetch {
		ra = 0 // pool default window
	}
	bp, err := core.NewPool(core.PoolConfig{Memory: mem, Array: arr, ReadAhead: ra})
	if err != nil {
		return s9Result{}, err
	}
	dataPages := totalPages
	if cfgName == "warm" {
		dataPages = int(poolPages) / 2
	}
	set, err := bp.CreateSet(core.SetSpec{Name: "data", PageSize: pageSize, Durability: core.WriteThrough})
	if err != nil {
		return s9Result{}, err
	}
	// ~4 KiB records, enough to fill the target page count.
	rec := make([]byte, 4<<10)
	for i := range rec {
		rec[i] = byte(i)
	}
	perPage := int(pageSize) / (len(rec) + 64)
	objs := make([][]byte, dataPages*perPage)
	for i := range objs {
		objs[i] = rec
	}
	if err := services.WriteAll(set, objs); err != nil {
		return s9Result{}, err
	}
	scan := func() error {
		var sink int64
		return (query.ScanSpec{Set: set, Threads: 1}).Run(func(_ int, r query.Row) error {
			sink += int64(r[0]) + int64(r[len(r)-1])
			return nil
		})
	}
	loops := 1
	switch cfgName {
	case "warm":
		// Prime the cache; the timed scans below must be all hits. One pass
		// is microseconds, so time a batch of them for a stable number.
		if err := scan(); err != nil {
			return s9Result{}, err
		}
		loops = 50
	case "loop":
		loops = 3
		fallthrough
	default:
		if err := s9Chill(bp, set, pageSize); err != nil {
			return s9Result{}, err
		}
	}
	base := bp.Stats().Loads.Load()
	start := time.Now()
	for l := 0; l < loops; l++ {
		if err := scan(); err != nil {
			return s9Result{}, err
		}
	}
	elapsed := time.Since(start)
	stats := bp.Stats()
	res := s9Result{
		elapsed: elapsed,
		bytes:   int64(loops) * set.NumPages() * pageSize,
		issued:  stats.PrefetchesIssued.Load(),
		hits:    stats.PrefetchHits.Load(),
		wasted:  stats.PrefetchWasted.Load(),
		loads:   stats.Loads.Load() - base,
	}
	return res, bp.DropSet(set)
}

// s9Chill makes the data set fully cold: a throwaway filler set grows until
// the data set has no resident pages, then is dropped. The data pages are
// write-through clean, so the cost model reclaims them for free instead of
// spilling the filler's dirty output.
func s9Chill(bp *core.BufferPool, set *core.LocalitySet, pageSize int64) error {
	filler, err := bp.CreateSet(core.SetSpec{Name: "filler", PageSize: pageSize})
	if err != nil {
		return err
	}
	limit := int(bp.Capacity()/pageSize) * 4
	for i := 0; set.ResidentPages() > 0; i++ {
		if i > limit {
			return fmt.Errorf("s9: %d data pages still resident after %d filler pages", set.ResidentPages(), i)
		}
		p, err := filler.NewPage()
		if err != nil {
			return err
		}
		if err := filler.Unpin(p, false); err != nil {
			return err
		}
	}
	return bp.DropSet(filler)
}
