package exp

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"time"

	"pangea/internal/core"
	"pangea/internal/disk"
	"pangea/internal/query"
	"pangea/internal/services"
)

// s11 reuses the s10 fact row (u64 key, u16 date, f64 value, 78-byte
// payload) but writes the date column CLUSTERED: date = i*1000/n per-mil,
// monotone over the append order, so every page covers a narrow date band
// and a selective date range touches a proportional slice of the pages.
// That is the data shape zone maps exist for — s10's date = i%100 is the
// anti-shape (every page holds every date, nothing can ever be pruned).

// S11ZoneMap measures zone-map page skipping through the predicate scan
// API: the same selective scan-filter-agg at 0.1/1/10% selectivity with
// pruning on vs off (HintNoPrune), warm and cold, at 1 and 4 drives. The
// set's zone map is built incrementally by the writer's append hooks,
// persisted as a pfs side object, and reloaded from it before scanning —
// the full lifecycle. With maps on, a cold selective scan should issue
// roughly selectivity × the page reads of the unpruned scan (the skip
// counter says exactly how many pages never reached a drive); with maps
// off, or at 100% selectivity, the two paths must match.
func S11ZoneMap(o Options) (*Table, error) {
	nRows := o.pick(40_000, 600_000)
	const pageSize = 128 << 10
	t := &Table{
		ID: "s11",
		Title: fmt.Sprintf("zone-map page skipping: selective scans, maps on/off (%d rows, %d KiB pages)",
			nRows, pageSize>>10),
		Header: []string{"mode", "sel permil", "maps", "drives", "scan ms", "page reads", "pages skipped", "matched"},
	}
	rows := s11Rows(nRows)
	if err := s11Config(o, t, rows, pageSize, "warm", 1); err != nil {
		return nil, err
	}
	for _, drives := range []int{1, 4} {
		if err := s11Config(o, t, rows, pageSize, "cold", drives); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"date column is clustered (monotone per-mil), so page min/max ranges are tight and selective ranges prune",
		"maps=off runs the identical predicate with HintNoPrune: same rows, no page skipping — the baseline",
		"page reads counts pages actually read off the drives (demand + prefetch); pages skipped is the zone-map counter delta",
		"the zone map is built at append time, persisted as a pfs side object, and reloaded from it before the sweep",
		"matched counts and value sums are cross-checked against the generator every scan")
	return t, nil
}

// s11Rows generates the clustered-date fact rows.
func s11Rows(n int) [][]byte {
	rows := make([][]byte, n)
	flat := make([]byte, n*s10RowSize)
	for i := 0; i < n; i++ {
		r := flat[i*s10RowSize : (i+1)*s10RowSize]
		binary.LittleEndian.PutUint64(r[0:8], uint64(i))
		binary.LittleEndian.PutUint16(r[8:10], uint16(int64(i)*1000/int64(n)))
		binary.LittleEndian.PutUint64(r[10:18], math.Float64bits(float64(i%1000)))
		for j := 18; j < s10RowSize; j++ {
			r[j] = byte(i + j)
		}
		rows[i] = r
	}
	return rows
}

// s11Config loads one columnar deployment (building and persisting the zone
// map along the way) and sweeps selectivity × maps on/off over it.
func s11Config(o Options, t *Table, rows [][]byte, pageSize int64, mode string, drives int) error {
	warm := mode == "warm"
	cfg := diskConfig()
	if warm {
		cfg = disk.Unthrottled()
	}
	arr, err := disk.NewArray(filepath.Join(o.Dir, fmt.Sprintf("s11-%s-%dd", mode, drives)), drives, cfg)
	if err != nil {
		return err
	}
	defer func() { _ = arr.RemoveAll() }()
	dataBytes := int64(len(rows)) * (s10RowSize + 8)
	mem := dataBytes * 2
	if !warm {
		mem = dataBytes / 4
	}
	if min := 8 * pageSize; mem < min {
		mem = min
	}
	bp, err := core.NewPool(core.PoolConfig{Memory: mem, Array: arr})
	if err != nil {
		return err
	}
	set, err := bp.CreateSet(core.SetSpec{
		Name: "facts", PageSize: pageSize, Durability: core.WriteThrough,
		Layout: core.LayoutColumnar, Columns: s10Widths,
	})
	if err != nil {
		return err
	}

	// Load with the zone map maintained incrementally by the seal hook,
	// persist it, then detach and reload it from the side object — the
	// lifecycle a restarted worker goes through.
	zspec := services.ZoneMapSpec{Schema: s10Schema()}
	w := services.NewSeqWriter(set)
	zm, err := services.AttachZoneMap(w, zspec)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Add(r); err != nil {
			_ = w.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := zm.Save(set); err != nil {
		return err
	}
	set.SetSideIndex(services.ZoneMapTag, nil)
	if _, err := services.EnsureZoneMap(set, zspec); err != nil {
		return err
	}

	for _, cutoff := range []uint16{1, 10, 100} {
		var matched [2]int64
		for i, maps := range []bool{true, false} {
			if !warm {
				if err := s9Chill(bp, set, pageSize); err != nil {
					return err
				}
			} else if i == 0 {
				// Prime the cache once per cutoff; both variants then time
				// pure in-memory passes.
				if _, err := s11Scan(set, cutoff, true); err != nil {
					return err
				}
			}
			baseReads := set.LoadReads()
			baseSkips := set.ZoneMapSkips()
			start := time.Now()
			res, err := s11Scan(set, cutoff, maps)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			reads := set.LoadReads() - baseReads
			skips := set.ZoneMapSkips() - baseSkips

			wantMatched, wantSum := s11Truth(len(rows), cutoff)
			if res.matched != wantMatched || math.Abs(res.sum-wantSum) > 1e-6*math.Abs(wantSum)+1e-9 {
				return fmt.Errorf("s11 %s c%d maps=%v: matched %d sum %.3f, want %d / %.3f",
					mode, cutoff, maps, res.matched, res.sum, wantMatched, wantSum)
			}
			matched[i] = res.matched
			t.AddRow(mode, fmt.Sprintf("%d", cutoff), map[bool]string{true: "on", false: "off"}[maps],
				fmt.Sprintf("%d", drives), ms(elapsed),
				fmt.Sprintf("%d", reads), fmt.Sprintf("%d", skips), fmt.Sprintf("%d", res.matched))
		}
		if matched[0] != matched[1] {
			return fmt.Errorf("s11 %s c%d: pruned scan matched %d rows, unpruned %d", mode, cutoff, matched[0], matched[1])
		}
	}
	return bp.DropSet(set)
}

// s11Truth computes the generator-implied matched count and value sum for
// one cutoff.
func s11Truth(n int, cutoff uint16) (int64, float64) {
	var matched int64
	var sum float64
	for i := 0; i < n; i++ {
		if uint16(int64(i)*1000/int64(n)) < cutoff {
			matched++
			sum += float64(i % 1000)
		}
	}
	return matched, sum
}

// s11Scan is one predicate scan-filter-sum pass; maps=false runs the same
// predicate with pruning disabled.
func s11Scan(set *core.LocalitySet, cutoff uint16, maps bool) (s10Result, error) {
	hint := query.HintNone
	if !maps {
		hint = query.HintNoPrune
	}
	spec := query.ScanSpec{Set: set, Threads: s10Threads, Pred: s10Pred(cutoff), Hint: hint}
	var mu sync.Mutex
	var res s10Result
	err := spec.RunBatches(func(_ int, b *query.Batch) error {
		vals := b.Col(s10ColVal)
		var s float64
		for _, r := range b.Sel() {
			s += math.Float64frombits(binary.LittleEndian.Uint64(vals[int(r)*8:]))
		}
		mu.Lock()
		res.sum += s
		res.matched += int64(b.Selected())
		mu.Unlock()
		return nil
	})
	if err != nil {
		return s10Result{}, err
	}
	return res, nil
}
