package exp

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"time"

	"pangea/internal/core"
	"pangea/internal/disk"
	"pangea/internal/query"
	"pangea/internal/services"
)

// s12 reuses the s10 fact row but PERMUTES the key column: key =
// (i*stride) mod n for a stride coprime with n, so every key occurs
// exactly once and consecutive keys land on distant pages. That is the
// anti-shape for a zone map — every page's min/max spans nearly the whole
// key domain, and with a thousand-plus distinct keys per page the 256-bit
// blooms are saturated — and exactly the shape microindexes exist for: the
// posting list for any key names the single page holding it.

const s12Stride = 7919 // prime, coprime with both workload sizes

// S12Microindex measures point lookups on a non-clustered key column
// through the predicate scan API, three ways: with the microindex
// (HintNone), with zone-map blooms alone (HintNoIndex), and unpruned
// (HintNoPrune). Both side objects are built incrementally by one writer's
// chained hooks, persisted, dropped, and reloaded from pfs before the
// sweep — the restarted-worker lifecycle. The microindex variant must pin
// strictly fewer pages than the bloom variant, and a full-range scan must
// never consult the index at all.
func S12Microindex(o Options) (*Table, error) {
	nRows := o.pick(40_000, 400_000)
	const pageSize = 128 << 10
	t := &Table{
		ID: "s12",
		Title: fmt.Sprintf("microindex point lookups on a non-clustered key (%d rows, %d KiB pages)",
			nRows, pageSize>>10),
		Header: []string{"mode", "variant", "lookups", "scan ms", "page reads", "pages visited", "matched"},
	}
	if err := s12Config(o, t, nRows, pageSize, "warm", o.pick(32, 128)); err != nil {
		return nil, err
	}
	if err := s12Config(o, t, nRows, pageSize, "cold", o.pick(4, 8)); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"the key column is a permutation of 0..n-1: every page spans nearly the whole key domain, so min/max never prunes and the per-page blooms are saturated",
		"variant=index consults the microindex posting lists (candidate pages up front); zonemap probes every page's bloom; noprune visits everything",
		"pages visited counts pages the scan actually evaluated rows on (zone-map checks minus skips per variant); page reads counts pages read off the drives",
		"both side objects ride one writer's chained seal hooks, are persisted to pfs, and are reloaded from the side objects before the sweep",
		"every lookup's matched count and value are cross-checked against the generator; the full-range scan must match all rows and leave the index counters untouched")
	return t, nil
}

// s12Rows generates the permuted-key fact rows; keys[i] is row i's key.
func s12Rows(n int) (rows [][]byte, keys []uint64) {
	rows = make([][]byte, n)
	keys = make([]uint64, n)
	flat := make([]byte, n*s10RowSize)
	for i := 0; i < n; i++ {
		r := flat[i*s10RowSize : (i+1)*s10RowSize]
		keys[i] = uint64((i * s12Stride) % n)
		binary.LittleEndian.PutUint64(r[0:8], keys[i])
		binary.LittleEndian.PutUint16(r[8:10], uint16(i%1000))
		binary.LittleEndian.PutUint64(r[10:18], math.Float64bits(float64(i%1000)))
		for j := 18; j < s10RowSize; j++ {
			r[j] = byte(i + j)
		}
		rows[i] = r
	}
	return rows, keys
}

// s12Config loads one deployment (building and persisting both side
// objects along the way) and sweeps the three variants over it.
func s12Config(o Options, t *Table, nRows int, pageSize int64, mode string, nLookups int) error {
	warm := mode == "warm"
	cfg := diskConfig()
	if warm {
		cfg = disk.Unthrottled()
	}
	arr, err := disk.NewArray(filepath.Join(o.Dir, "s12-"+mode), 1, cfg)
	if err != nil {
		return err
	}
	defer func() { _ = arr.RemoveAll() }()
	rows, keys := s12Rows(nRows)
	dataBytes := int64(nRows) * (s10RowSize + 8)
	mem := dataBytes * 2
	if !warm {
		mem = dataBytes / 4
	}
	if min := 8 * pageSize; mem < min {
		mem = min
	}
	bp, err := core.NewPool(core.PoolConfig{Memory: mem, Array: arr})
	if err != nil {
		return err
	}
	set, err := bp.CreateSet(core.SetSpec{
		Name: "facts", PageSize: pageSize, Durability: core.WriteThrough,
		Layout: core.LayoutColumnar, Columns: s10Widths,
	})
	if err != nil {
		return err
	}

	// One writer, both side objects on its chained hooks; persist, drop the
	// attached copies, and reload from pfs.
	zspec := services.ZoneMapSpec{Schema: s10Schema(), BloomCols: []int{0}}
	mspec := services.MicroindexSpec{Schema: s10Schema(), Cols: []int{0}}
	w := services.NewSeqWriter(set)
	zm, err := services.AttachZoneMap(w, zspec)
	if err != nil {
		return err
	}
	mi, err := services.AttachMicroindex(w, mspec)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Add(r); err != nil {
			_ = w.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := zm.Save(set); err != nil {
		return err
	}
	if err := mi.Save(set); err != nil {
		return err
	}
	set.SetSideIndex(services.ZoneMapTag, nil)
	set.SetSideIndex(services.MicroindexTag, nil)
	if _, err := services.EnsureZoneMap(set, zspec); err != nil {
		return err
	}
	if _, err := services.EnsureMicroindex(set, mspec); err != nil {
		return err
	}

	// The lookup battery: nLookups keys spread evenly over the append
	// order, so their pages are spread over the whole set.
	probe := make([]int, nLookups)
	for j := range probe {
		probe[j] = j * nRows / nLookups
	}
	visited := map[string]int64{}
	for _, variant := range []string{"index", "zonemap", "noprune"} {
		if !warm {
			if err := s9Chill(bp, set, pageSize); err != nil {
				return err
			}
		}
		hint := query.HintNone
		switch variant {
		case "zonemap":
			hint = query.HintNoIndex
		case "noprune":
			hint = query.HintNoPrune
		}
		baseReads := set.LoadReads()
		baseChecks, baseSkips := set.ZoneMapChecks(), set.ZoneMapSkips()
		start := time.Now()
		for _, i := range probe {
			res, err := s12Lookup(set, keys[i], hint)
			if err != nil {
				return err
			}
			if res.matched != 1 || res.sum != float64(i%1000) {
				return fmt.Errorf("s12 %s %s key %d: matched %d sum %.1f, want 1 row of value %d",
					mode, variant, keys[i], res.matched, res.sum, i%1000)
			}
		}
		elapsed := time.Since(start)
		reads := set.LoadReads() - baseReads
		v := (set.ZoneMapChecks() - baseChecks) - (set.ZoneMapSkips() - baseSkips)
		if variant == "noprune" {
			v = int64(nLookups) * set.NumPages()
		}
		visited[variant] = v
		t.AddRow(mode, variant, fmt.Sprintf("%d", nLookups), ms(elapsed),
			fmt.Sprintf("%d", reads), fmt.Sprintf("%d", v), fmt.Sprintf("%d", nLookups))
	}
	if visited["index"] >= visited["zonemap"] {
		return fmt.Errorf("s12 %s: microindex visited %d pages, blooms alone %d — the index must pin strictly fewer",
			mode, visited["index"], visited["zonemap"])
	}

	// Full-range scans are unregressed: same matched count with and without
	// the index, and the unanswerable predicate never consults it.
	if warm {
		baseIdx := set.IndexChecks()
		for _, hint := range []query.ScanHint{query.HintNone, query.HintNoPrune} {
			var matched int64
			var mu sync.Mutex
			spec := query.ScanSpec{Set: set, Threads: s10Threads,
				Pred: query.ColRange{Col: 0, Lo: 0, Hi: uint64(nRows)}, Hint: hint}
			err := spec.RunBatches(func(_ int, b *query.Batch) error {
				mu.Lock()
				matched += int64(b.Selected())
				mu.Unlock()
				return nil
			})
			if err != nil {
				return err
			}
			if matched != int64(nRows) {
				return fmt.Errorf("s12 %s full-range hint %d: matched %d rows, want %d", mode, hint, matched, nRows)
			}
		}
		if set.IndexChecks() != baseIdx {
			return fmt.Errorf("s12 %s: a full-range scan consulted the microindex", mode)
		}
	}
	return bp.DropSet(set)
}

// s12Lookup is one point scan-filter-sum pass under the given hint.
func s12Lookup(set *core.LocalitySet, key uint64, hint query.ScanHint) (s10Result, error) {
	spec := query.ScanSpec{Set: set, Threads: 1, Pred: query.ColEq{Col: 0, V: key}, Hint: hint}
	var mu sync.Mutex
	var res s10Result
	err := spec.RunBatches(func(_ int, b *query.Batch) error {
		vals := b.Col(s10ColVal)
		var s float64
		for _, r := range b.Sel() {
			s += math.Float64frombits(binary.LittleEndian.Uint64(vals[int(r)*8:]))
		}
		mu.Lock()
		res.sum += s
		res.matched += int64(b.Selected())
		mu.Unlock()
		return nil
	})
	if err != nil {
		return s10Result{}, err
	}
	return res, nil
}
