package exp

import (
	"fmt"
	"path/filepath"
	"time"

	"pangea/internal/core"
	"pangea/internal/disk"
	"pangea/internal/layered"
	"pangea/internal/memory"
	"pangea/internal/paging"
	"pangea/internal/query"
	"pangea/internal/services"
)

// newPool builds a single-node Pangea buffer pool for the micro-benchmarks.
func newPool(o Options, tag string, mem int64, disks int, policy core.Policy) (*core.BufferPool, *disk.Array, error) {
	arr, err := disk.NewArray(filepath.Join(o.Dir, tag), disks, diskConfig())
	if err != nil {
		return nil, nil, err
	}
	bp, err := core.NewPool(core.PoolConfig{Memory: mem, Array: arr, Policy: policy})
	if err != nil {
		return nil, nil, err
	}
	return bp, arr, nil
}

// mkObjects builds the 80-byte character-array objects of §9.2.1.
func mkObjects(n int) [][]byte {
	out := make([][]byte, n)
	base := make([]byte, 80)
	for i := range base {
		base[i] = byte('a' + i%26)
	}
	for i := range out {
		obj := make([]byte, 80)
		copy(obj, base)
		obj[0] = byte(i)
		out[i] = obj
	}
	return out
}

// sumBytes is the per-object computation of the scan phase.
func sumBytes(rec []byte) int64 {
	var s int64
	for _, b := range rec {
		s += int64(b)
	}
	return s
}

const scanIters = 5

// seqCounts returns the object-count sweep for Figs 7–9: the paper's 50M to
// 300M objects (4–24 GB) scaled to cross the same memory boundary.
func seqCounts(o Options) ([]int, int64) {
	if o.Quick {
		return []int{20000, 40000, 60000}, 2 << 20 // boundary near 28k objects
	}
	// 50k..300k objects of ~84 framed bytes = 4..25 MB vs a 12 MB pool:
	// the boundary falls between 100k and 150k, like 100M vs 150M in Fig 7.
	return []int{50000, 100000, 150000, 200000, 250000, 300000}, 12 << 20
}

// pangeaSeqRun writes objs into a locality set, scans it scanIters times
// with two threads, then drops it.
func pangeaSeqRun(bp *core.BufferPool, name string, durability core.DurabilityType, objs [][]byte) (write, read time.Duration, err error) {
	set, err := bp.CreateSet(core.SetSpec{Name: name, PageSize: 512 << 10, Durability: durability})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if err := services.WriteAll(set, objs); err != nil {
		return 0, 0, err
	}
	write = time.Since(start)

	start = time.Now()
	for it := 0; it < scanIters; it++ {
		var sink int64
		if err := (query.ScanSpec{Set: set, Threads: 2}).Run(func(_ int, rec query.Row) error {
			sink += sumBytes(rec)
			return nil
		}); err != nil {
			return write, 0, err
		}
		_ = sink
	}
	read = time.Since(start) / scanIters
	return write, read, bp.DropSet(set)
}

// S5Concurrency measures the unified pool's multi-goroutine Pin/Unpin
// throughput (§5): workers hammering one shared locality set (every access
// serializes on that set's lock) vs one locality set per worker (accesses
// only share the pool's atomic clock and allocator). The per-set-locking
// architecture should scale the sharded layout with the worker count while
// the shared layout stays roughly flat — the ablation that motivates
// splitting the old global pool mutex.
func S5Concurrency(o Options) (*Table, error) {
	const pageSize = 4 << 10
	const pagesPerSet = 16
	opsPerWorker := o.pick(20000, 200000)
	t := &Table{
		ID:     "s5",
		Title:  "parallel Pin/Unpin throughput (kops/s; resident pages, no eviction)",
		Header: []string{"goroutines", "one shared set", "one set per goroutine", "sharded speedup"},
	}
	run := func(tag string, workers, nSets int) (float64, error) {
		bp, arr, err := newPool(o, tag, 64<<20, 1, nil)
		if err != nil {
			return 0, err
		}
		defer func() { _ = arr.RemoveAll() }()
		sets := make([]*core.LocalitySet, nSets)
		for i := range sets {
			s, err := bp.CreateSet(core.SetSpec{Name: fmt.Sprintf("s%d", i), PageSize: pageSize})
			if err != nil {
				return 0, err
			}
			for j := 0; j < pagesPerSet; j++ {
				p, err := s.NewPage()
				if err != nil {
					return 0, err
				}
				if err := s.Unpin(p, false); err != nil {
					return 0, err
				}
			}
			sets[i] = s
		}
		rep := func(ops int) (time.Duration, error) {
			errs := make(chan error, workers)
			start := time.Now()
			for w := 0; w < workers; w++ {
				go func(w int) {
					s := sets[w%nSets]
					for i := 0; i < ops; i++ {
						p, err := s.Pin(int64((w + i) % pagesPerSet))
						if err != nil {
							errs <- err
							return
						}
						if err := s.Unpin(p, false); err != nil {
							errs <- err
							return
						}
					}
					errs <- nil
				}(w)
			}
			for w := 0; w < workers; w++ {
				if err := <-errs; err != nil {
					return 0, err
				}
			}
			return time.Since(start), nil
		}
		// Warm-up rep touches every page (first-touch faults on the fresh
		// arena otherwise dominate short measurements), then best of two.
		if _, err := rep(opsPerWorker / 4); err != nil {
			return 0, err
		}
		best := time.Duration(0)
		for r := 0; r < 2; r++ {
			elapsed, err := rep(opsPerWorker)
			if err != nil {
				return 0, err
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return float64(workers*opsPerWorker) / best.Seconds() / 1000, nil
	}
	for _, g := range []int{1, 2, 4, 8} {
		shared, err := run(fmt.Sprintf("s5-shared-%d", g), g, 1)
		if err != nil {
			return nil, err
		}
		sharded, err := run(fmt.Sprintf("s5-sharded-%d", g), g, g)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", g), fmt.Sprintf("%.0f", shared), fmt.Sprintf("%.0f", sharded),
			fmt.Sprintf("%.2fx", sharded/shared))
	}
	t.Notes = append(t.Notes,
		"per-LocalitySet locking: disjoint sets never contend, so the sharded layout scales with GOMAXPROCS",
		"the shared-set column bounds what the old single pool mutex allowed for *all* traffic")
	return t, nil
}

// S5AllocShards measures parallel page allocation throughput against the
// pool arena configured as a single TLSF shard (the seed's one shared
// allocator mutex) vs one shard per core with per-size-class front caches.
// Workers alloc/free 4 KiB pages with distinct home-shard hints, the way
// locality sets route their page memory; the sharded layout should scale
// with the worker count while the single shard serializes — the §5
// specialize-per-workload argument applied to the allocator itself.
func S5AllocShards(o Options) (*Table, error) {
	const pageSize = 4 << 10
	const arenaBytes = 64 << 20
	opsPerWorker := o.pick(20000, 200000)
	auto := memory.DefaultShardCount(arenaBytes)
	t := &Table{
		ID:     "s5b",
		Title:  fmt.Sprintf("parallel page alloc/free throughput (kops/s; 4 KiB pages, %d-shard TLSF)", auto),
		Header: []string{"goroutines", "1 shard", fmt.Sprintf("%d shards", auto), "sharded speedup"},
	}
	run := func(shards, workers int) (float64, error) {
		alloc := memory.NewShardedTLSF(memory.NewArena(arenaBytes), shards)
		rep := func(ops int) (time.Duration, error) {
			errs := make(chan error, workers)
			start := time.Now()
			for w := 0; w < workers; w++ {
				go func(w int) {
					// Hold a small window of live pages so frees hit the
					// front caches with real churn, not same-block ping-pong.
					var held [8]int64
					h := 0
					for i := 0; i < ops; i++ {
						off, err := alloc.AllocAffinity(pageSize, w)
						if err != nil {
							errs <- err
							return
						}
						if held[h] != 0 {
							alloc.Free(held[h])
						}
						held[h] = off
						h = (h + 1) % len(held)
					}
					for _, off := range held {
						if off != 0 {
							alloc.Free(off)
						}
					}
					errs <- nil
				}(w)
			}
			for w := 0; w < workers; w++ {
				if err := <-errs; err != nil {
					return 0, err
				}
			}
			return time.Since(start), nil
		}
		if _, err := rep(opsPerWorker / 4); err != nil { // warm-up
			return 0, err
		}
		best := time.Duration(0)
		for r := 0; r < 2; r++ {
			elapsed, err := rep(opsPerWorker)
			if err != nil {
				return 0, err
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return float64(workers*opsPerWorker) / best.Seconds() / 1000, nil
	}
	for _, g := range []int{1, 2, 4, 8} {
		single, err := run(1, g)
		if err != nil {
			return nil, err
		}
		sharded, err := run(0, g)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", g), fmt.Sprintf("%.0f", single), fmt.Sprintf("%.0f", sharded),
			fmt.Sprintf("%.2fx", sharded/single))
	}
	t.Notes = append(t.Notes,
		"each worker allocates with its own home-shard hint, the way locality sets route page memory",
		"the 1-shard column is the seed's single-TLSF design: every allocation serializes on one mutex")
	return t, nil
}

// Fig7 compares sequential access to transient data: Pangea write-back
// with one and two disks, OS virtual memory (with page stealing), and the
// Alluxio in-memory FS (which cannot exceed its memory).
func Fig7(o Options) (*Table, error) {
	counts, mem := seqCounts(o)
	t := &Table{
		ID:     "fig7",
		Title:  "sequential access, transient data (ms; write + avg of 5 scans)",
		Header: []string{"objects", "pangea-wb-1d write", "pangea-wb-1d read", "pangea-wb-2d write", "pangea-wb-2d read", "osvm write", "osvm read", "alluxio write", "alluxio read"},
	}
	for _, n := range counts {
		objs := mkObjects(n)
		row := []string{fmt.Sprintf("%d", n)}

		for _, disks := range []int{1, 2} {
			bp, arr, err := newPool(o, fmt.Sprintf("fig7-p%dd-%d", disks, n), mem, disks, nil)
			if err != nil {
				return nil, err
			}
			w, r, err := pangeaSeqRun(bp, "t", core.WriteBack, objs)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(w), ms(r))
			_ = arr.RemoveAll()
		}

		// OS virtual memory: malloc + write, then scan via Read.
		{
			d, err := disk.Open(filepath.Join(o.Dir, fmt.Sprintf("fig7-vm-%d", n)), diskConfig())
			if err != nil {
				return nil, err
			}
			vm, err := layered.NewOSVM(d, mem, true)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			addrs := make([]int64, n)
			for i, obj := range objs {
				addrs[i] = vm.Malloc(int64(len(obj)))
				if err := vm.Write(addrs[i], obj); err != nil {
					return nil, err
				}
			}
			w := time.Since(start)
			start = time.Now()
			buf := make([]byte, 80)
			for it := 0; it < scanIters; it++ {
				var sink int64
				for _, a := range addrs {
					if err := vm.Read(a, buf); err != nil {
						return nil, err
					}
					sink += sumBytes(buf)
				}
				_ = sink
			}
			r := time.Since(start) / scanIters
			row = append(row, ms(w), ms(r))
			vm.FreeAll()
			_ = d.RemoveAll()
		}

		// Alluxio: fails beyond its configured memory.
		{
			a := layered.NewAlluxio(mem)
			a.Create("t")
			start := time.Now()
			failed := false
			for _, obj := range objs {
				if err := a.WriteObject("t", obj); err != nil {
					failed = true
					break
				}
			}
			if failed {
				row = append(row, "FAIL", "FAIL")
			} else {
				w := time.Since(start)
				start = time.Now()
				for it := 0; it < scanIters; it++ {
					var sink int64
					if err := a.Scan("t", func(obj []byte) error {
						sink += sumBytes(obj)
						return nil
					}); err != nil {
						return nil, err
					}
					_ = sink
				}
				r := time.Since(start) / scanIters
				row = append(row, ms(w), ms(r))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Fig 7: Pangea ≈ OS VM inside memory, 5.4–7× faster beyond it; Alluxio slowest in-memory and cannot exceed memory")
	return t, nil
}

// Fig8 compares sequential access to persistent data: Pangea write-through
// (1/2 disks) vs the OS file system vs HDFS (1/2 disks).
func Fig8(o Options) (*Table, error) {
	counts, mem := seqCounts(o)
	t := &Table{
		ID:     "fig8",
		Title:  "sequential access, persistent data (ms; write + avg of 5 scans)",
		Header: []string{"objects", "pangea-wt-1d write", "pangea-wt-1d read", "pangea-wt-2d write", "pangea-wt-2d read", "osfs write", "osfs read", "hdfs-1d write", "hdfs-1d read", "hdfs-2d write", "hdfs-2d read"},
	}
	for _, n := range counts {
		objs := mkObjects(n)
		row := []string{fmt.Sprintf("%d", n)}

		for _, disks := range []int{1, 2} {
			bp, arr, err := newPool(o, fmt.Sprintf("fig8-p%dd-%d", disks, n), mem, disks, nil)
			if err != nil {
				return nil, err
			}
			w, r, err := pangeaSeqRun(bp, "t", core.WriteThrough, objs)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(w), ms(r))
			_ = arr.RemoveAll()
		}

		// OS file system: length-prefixed objects through the buffer cache.
		{
			d, err := disk.Open(filepath.Join(o.Dir, fmt.Sprintf("fig8-fs-%d", n)), diskConfig())
			if err != nil {
				return nil, err
			}
			fs := layered.NewOSFS(d, mem)
			start := time.Now()
			var off int64
			for _, obj := range objs {
				if err := fs.WriteAt("t", obj, off); err != nil {
					return nil, err
				}
				off += int64(len(obj))
			}
			if err := fs.Sync("t"); err != nil {
				return nil, err
			}
			w := time.Since(start)
			start = time.Now()
			buf := make([]byte, 80)
			for it := 0; it < scanIters; it++ {
				var sink int64
				for p := int64(0); p < off; p += 80 {
					if err := fs.ReadAt("t", buf, p); err != nil {
						return nil, err
					}
					sink += sumBytes(buf)
				}
				_ = sink
			}
			r := time.Since(start) / scanIters
			row = append(row, ms(w), ms(r))
			_ = d.RemoveAll()
		}

		// HDFS with 1 and 2 data disks.
		for _, disks := range []int{1, 2} {
			arr, err := disk.NewArray(filepath.Join(o.Dir, fmt.Sprintf("fig8-h%dd-%d", disks, n)), disks, diskConfig())
			if err != nil {
				return nil, err
			}
			h := layered.NewHDFS(arr, mem)
			h.Create("t")
			start := time.Now()
			for _, obj := range objs {
				if err := h.Append("t", obj); err != nil {
					return nil, err
				}
			}
			if err := h.Sync("t"); err != nil {
				return nil, err
			}
			w := time.Since(start)
			start = time.Now()
			for it := 0; it < scanIters; it++ {
				var sink int64
				if err := h.Scan("t", func(chunk []byte) error {
					sink += sumBytes(chunk)
					return nil
				}); err != nil {
					return nil, err
				}
				_ = sink
			}
			r := time.Since(start) / scanIters
			row = append(row, ms(w), ms(r))
			_ = arr.RemoveAll()
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Fig 8: comparable write latency across systems; Pangea reads 1.9–2.7× faster than OS FS and 1.5–3.5× faster than HDFS")
	return t, nil
}

// policySet is the Fig 9/10 policy lineup.
func policySet() []struct {
	Name   string
	Policy func() core.Policy
} {
	return []struct {
		Name   string
		Policy func() core.Policy
	}{
		{"data-aware", func() core.Policy { return core.NewDataAware() }},
		{"DBMIN-tuned", func() core.Policy { return paging.NewDBMINTuned() }},
		{"MRU", func() core.Policy { return paging.NewMRU() }},
		{"LRU", func() core.Policy { return paging.NewLRU() }},
	}
}

// Fig9 compares the paging policies on the sequential micro-benchmark for
// both durability classes, at object counts beyond memory.
func Fig9(o Options) (*Table, error) {
	counts, mem := seqCounts(o)
	counts = counts[len(counts)-3:] // the beyond-memory sizes, as in Fig 9
	t := &Table{
		ID:     "fig9",
		Title:  "page replacement for sequential access (ms)",
		Header: []string{"durability", "objects"},
	}
	for _, p := range policySet() {
		t.Header = append(t.Header, p.Name+" write", p.Name+" read")
	}
	for _, durability := range []core.DurabilityType{core.WriteThrough, core.WriteBack} {
		for _, n := range counts {
			objs := mkObjects(n)
			row := []string{durability.String(), fmt.Sprintf("%d", n)}
			for _, p := range policySet() {
				bp, arr, err := newPool(o, fmt.Sprintf("fig9-%s-%s-%d", durability, p.Name, n), mem, 1, p.Policy())
				if err != nil {
					return nil, err
				}
				w, r, err := pangeaSeqRun(bp, "t", durability, objs)
				if err != nil {
					return nil, err
				}
				row = append(row, ms(w), ms(r))
				_ = arr.RemoveAll()
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig 9: data-aware/DBMIN-tuned/MRU read 1.6–2.5× faster than LRU; data-aware up to 50% over LRU/MRU and 20% over tuned DBMIN",
		"write-back reads are slower than write-through reads (transient pages still spill during the read phase)")
	return t, nil
}

// shuffleRun drives one shuffle write+read cycle under a policy. Shuffle
// pages are sized to a small fraction of the pool: concurrent writers can
// keep a few large pages per partition pinned at once, and those pins must
// never cover the whole pool.
func shuffleRun(bp *core.BufferPool, mbPerThread int) (write, read time.Duration, err error) {
	const writers, partitions = 4, 4
	pageSize := (bp.Capacity() / 48) &^ ((64 << 10) - 1)
	if pageSize < 64<<10 {
		pageSize = 64 << 10
	}
	sh, err := services.NewShuffle(bp, "sh", partitions, pageSize, int(pageSize/8))
	if err != nil {
		return 0, 0, err
	}
	rec := make([]byte, 100)
	perThread := mbPerThread << 20 / len(rec)
	start := time.Now()
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			bufs := sh.Writer()
			r := make([]byte, len(rec))
			copy(r, rec)
			for i := 0; i < perThread; i++ {
				r[0] = byte(i)
				if err := bufs[(w+i)%partitions].Add(r); err != nil {
					errs <- err
					return
				}
			}
			errs <- services.CloseWriters(bufs)
		}(w)
	}
	for w := 0; w < writers; w++ {
		if e := <-errs; e != nil {
			return 0, 0, e
		}
	}
	if err := sh.Close(); err != nil {
		return 0, 0, err
	}
	write = time.Since(start)

	start = time.Now()
	for p := 0; p < partitions; p++ {
		go func(p int) {
			var sink int64
			errs <- sh.ReadPartition(p, 1, func(rec []byte) error {
				sink += sumBytes(rec)
				return nil
			})
			_ = sink
		}(p)
	}
	for p := 0; p < partitions; p++ {
		if e := <-errs; e != nil {
			return write, 0, e
		}
	}
	read = time.Since(start)
	for p := 0; p < partitions; p++ {
		if s, ok := bp.GetSet(fmt.Sprintf("sh-%d", p)); ok {
			if err := bp.DropSet(s); err != nil {
				return write, read, err
			}
		}
	}
	return write, read, nil
}

// Fig10 compares the paging policies on the shuffle workload.
func Fig10(o Options) (*Table, error) {
	sweep := []int{4, 5, 6}
	mem := int64(16 << 20)
	if o.Quick {
		sweep = []int{2, 3}
		mem = 6 << 20
	}
	t := &Table{
		ID:     "fig10",
		Title:  "page replacement for shuffle (ms; 4 writers, 4 readers)",
		Header: []string{"MB/thread"},
	}
	for _, p := range policySet() {
		t.Header = append(t.Header, p.Name+" write", p.Name+" read")
	}
	for _, mbT := range sweep {
		row := []string{fmt.Sprintf("%d", mbT)}
		for _, p := range policySet() {
			bp, arr, err := newPool(o, fmt.Sprintf("fig10-%s-%d", p.Name, mbT), mem, 1, p.Policy())
			if err != nil {
				return nil, err
			}
			w, r, err := shuffleRun(bp, mbT)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(w), ms(r))
			_ = arr.RemoveAll()
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Fig 10: data-aware reads up to 3× faster than LRU, ~10% over tuned DBMIN; ~10% faster writes than LRU/MRU")
	return t, nil
}

// Tab3 compares Spark-style shuffle (numCores × numPartitions spill files)
// with the Pangea shuffle service on one and two disks.
func Tab3(o Options) (*Table, error) {
	sweep := []int{1, 2, 4, 6}
	mem := int64(12 << 20)
	if o.Quick {
		sweep = []int{1, 2}
		mem = 4 << 20
	}
	t := &Table{
		ID:     "tab3",
		Title:  "shuffle write/read latency, 4 writers 4 readers (ms)",
		Header: []string{"MB/thread", "spark write", "spark read", "pangea-1d write", "pangea-1d read", "pangea-2d write", "pangea-2d read"},
	}
	for _, mbT := range sweep {
		row := []string{fmt.Sprintf("%d", mbT)}

		// Simulated Spark shuffle.
		{
			arr, err := disk.NewArray(filepath.Join(o.Dir, fmt.Sprintf("tab3-s-%d", mbT)), 1, diskConfig())
			if err != nil {
				return nil, err
			}
			s, err := layered.NewSparkShuffle(arr, 4, 4)
			if err != nil {
				return nil, err
			}
			rec := make([]byte, 100)
			perThread := mbT << 20 / len(rec)
			start := time.Now()
			for c := 0; c < 4; c++ {
				for i := 0; i < perThread; i++ {
					if err := s.Write(c, (c+i)%4, rec); err != nil {
						return nil, err
					}
				}
			}
			if err := s.Flush(); err != nil {
				return nil, err
			}
			w := time.Since(start)
			start = time.Now()
			for p := 0; p < 4; p++ {
				var sink int64
				if err := s.ReadPartition(p, func(chunk []byte) error {
					sink += int64(len(chunk))
					return nil
				}); err != nil {
					return nil, err
				}
				_ = sink
			}
			r := time.Since(start)
			row = append(row, ms(w), ms(r))
			_ = s.Close()
			_ = arr.RemoveAll()
		}

		// Pangea shuffle, 1 and 2 disks.
		for _, disks := range []int{1, 2} {
			bp, arr, err := newPool(o, fmt.Sprintf("tab3-p%dd-%d", disks, mbT), mem, disks, nil)
			if err != nil {
				return nil, err
			}
			w, r, err := shuffleRun(bp, mbT)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(w), ms(r))
			_ = arr.RemoveAll()
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Table 3: Pangea 1.1–1.4× faster shuffle writes and 2.2–27× faster reads than the simulated Spark shuffle")
	return t, nil
}

// Tab4 compares key-value aggregation: a plain Go map (the STL
// unordered_map analogue), the Pangea hash service, and the Redis-like
// client/server store.
func Tab4(o Options) (*Table, error) {
	sweep := []int{50000, 100000, 200000, 400000}
	mem := int64(8 << 20)
	redisCap := 200000 // beyond this the client/server path is hopeless; cap like the paper's Redis failure
	if o.Quick {
		sweep = []int{20000, 50000}
		mem = 2 << 20
		redisCap = 50000
	}
	t := &Table{
		ID:     "tab4",
		Title:  "key-value pair aggregation (ms)",
		Header: []string{"numKeys", "go map", "pangea hashmap", "redis-like"},
	}
	for _, n := range sweep {
		row := []string{fmt.Sprintf("%d", n)}
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%09d", i)
		}

		// Go map.
		{
			start := time.Now()
			m := make(map[string]int64)
			for _, k := range keys {
				m[k] += 1
			}
			row = append(row, ms(time.Since(start)))
		}

		// Pangea hash service (spills under memory pressure instead of
		// thrashing).
		{
			bp, arr, err := newPool(o, fmt.Sprintf("tab4-%d", n), mem, 1, nil)
			if err != nil {
				return nil, err
			}
			// Hash pages sized so the 8 pinned root-partition pages cover
			// only a quarter of the pool.
			hashPage := (mem / 32) &^ ((8 << 10) - 1)
			if hashPage < 8<<10 {
				hashPage = 8 << 10
			}
			set, err := bp.CreateSet(core.SetSpec{Name: "agg", PageSize: hashPage})
			if err != nil {
				return nil, err
			}
			h, err := services.NewInt64HashBuffer(set, 8, services.Sum)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for _, k := range keys {
				if err := h.Upsert([]byte(k), 1); err != nil {
					return nil, err
				}
			}
			if err := h.Close(); err != nil {
				return nil, err
			}
			row = append(row, ms(time.Since(start)))
			_ = arr.RemoveAll()
		}

		// Redis-like client/server.
		if n > redisCap {
			row = append(row, "skipped")
		} else {
			srv, err := layered.NewRedisServer("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			c, err := layered.DialRedis(srv.Addr())
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for _, k := range keys {
				if _, err := c.IncrBy(k, 1); err != nil {
					return nil, err
				}
			}
			row = append(row, ms(time.Since(start)))
			_ = c.Close()
			_ = srv.Close()
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Table 4: Pangea up to 50× faster than STL unordered_map once it swaps, and up to 30× faster than Redis (client/server round trips)")
	return t, nil
}
