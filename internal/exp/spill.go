package exp

import (
	"fmt"
	"strings"
	"time"

	"pangea/internal/core"
)

// S6SpillThroughput measures the eviction daemon's write-back bandwidth
// against the drive count: a single producer streams dirty write-back pages
// through a pool an eighth the size of the data, so throughput is gated by
// how fast the daemon can spill victims. The paged file layer places pages
// round-robin across the array (paper §4), and the daemon's per-drive spill
// pipeline writes one victim group per drive concurrently — so spill
// bandwidth, and with it the producer's end-to-end rate, should scale with
// the array width. The per-drive columns expose how evenly round-robin
// placement balanced the traffic.
func S6SpillThroughput(o Options) (*Table, error) {
	const pageSize = 64 << 10
	poolPages := int64(o.pick(32, 64))
	totalPages := int(o.pick(128, 512))
	mem := poolPages * pageSize
	t := &Table{
		ID:    "s6",
		Title: fmt.Sprintf("spill throughput vs drive count (%d KiB pages, %d MiB through a %d MiB pool)", pageSize>>10, int64(totalPages)*pageSize>>20, mem>>20),
		Header: []string{"drives", "write ms", "spill MB/s", "speedup",
			"per-drive writes", "per-drive reads"},
	}
	var base float64
	for _, drives := range []int{1, 2, 4} {
		bp, arr, err := newPool(o, fmt.Sprintf("s6-%dd", drives), mem, drives, nil)
		if err != nil {
			return nil, err
		}
		set, err := bp.CreateSet(core.SetSpec{Name: "spill", PageSize: pageSize})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < totalPages; i++ {
			p, err := set.NewPage()
			if err != nil {
				return nil, fmt.Errorf("s6: page %d on %d drives: %w", i, drives, err)
			}
			p.Bytes()[0] = byte(i)
			if err := set.Unpin(p, true); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		stats := arr.Stats()
		mbps := float64(stats.BytesWritten) / (1 << 20) / elapsed.Seconds()
		if drives == 1 {
			base = elapsed.Seconds()
		}
		perDrive := arr.PerDriveStats()
		writes := make([]string, len(perDrive))
		reads := make([]string, len(perDrive))
		for i, ds := range perDrive {
			writes[i] = fmt.Sprintf("%d", ds.Writes)
			reads[i] = fmt.Sprintf("%d", ds.Reads)
		}
		t.AddRow(fmt.Sprintf("%d", drives), ms(elapsed), fmt.Sprintf("%.0f", mbps),
			fmt.Sprintf("%.2fx", base/elapsed.Seconds()),
			strings.Join(writes, "/"), strings.Join(reads, "/"))
		if err := bp.DropSet(set); err != nil {
			return nil, err
		}
		_ = arr.RemoveAll()
	}
	t.Notes = append(t.Notes,
		"one writer goroutine per drive: victim batches are grouped by the page's round-robin drive and written concurrently",
		"per-drive writes should be near-equal (round-robin balance); the seed wrote every victim serially from one goroutine")
	return t, nil
}
