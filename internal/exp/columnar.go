package exp

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"time"

	"pangea/internal/core"
	"pangea/internal/disk"
	"pangea/internal/query"
	"pangea/internal/services"
)

// s10 schema: u64 key, u16 date, f64 value, 78-byte payload — a 96-byte
// fact row whose date column drives the selectivity sweep (date = key %
// 100, so a cutoff of c selects exactly c% of the rows). The payload makes
// the row realistically wide: the row pipeline drags all 96 bytes of every
// row through the cache, while the selection kernel reads only the 2-byte
// date lane and the matching 8-byte values.
var s10Widths = []int{8, 2, 8, 78}

const (
	s10ColDate = 1
	s10ColVal  = 2
	s10RowSize = 96
	s10Threads = 4
)

// S10Columnar measures the columnar page layout against the row layout on
// the workload it exists for: a selective scan-filter-aggregate, expressed
// in each mode's native pipeline. The row mode runs the row operators a
// query actually composes — Scan into Filter into an aggregation sink, one
// emit per row whether it matches or not. The columnar mode runs the batch
// pipeline: a vectorized selection kernel over the date column, then only
// the matching lanes of the value column are touched. The warm sweep holds
// the data resident and varies selectivity, isolating that decode gap; the
// cold rows stream the same scan through a pool smaller than the data at 1
// and 4 calibrated drives, showing the batch path rides the same per-drive
// prefetch pipeline as the row path.
func S10Columnar(o Options) (*Table, error) {
	nRows := o.pick(40_000, 600_000)
	const pageSize = 128 << 10
	t := &Table{
		ID: "s10",
		Title: fmt.Sprintf("columnar scan-filter-agg vs row pipeline (%d rows, %d KiB pages)",
			nRows, pageSize>>10),
		Header: []string{"mode", "sel %", "layout", "drives", "scan ms", "matched", "speedup"},
	}
	rows := s10Rows(nRows)

	// Warm sweep: data resident, unthrottled single drive, pure decode CPU.
	// Each layout is loaded once and swept across every selectivity.
	warmRow, err := s10Sweep(o, rows, pageSize, false, 1, true, []uint16{1, 10, 50, 100})
	if err != nil {
		return nil, err
	}
	warmCol, err := s10Sweep(o, rows, pageSize, true, 1, true, []uint16{1, 10, 50, 100})
	if err != nil {
		return nil, err
	}
	for i, sel := range []uint16{1, 10, 50, 100} {
		r, c := warmRow[i], warmCol[i]
		t.AddRow("warm", fmt.Sprintf("%d", sel), "row", "1", ms(r.elapsed), fmt.Sprintf("%d", r.matched), "-")
		t.AddRow("warm", fmt.Sprintf("%d", sel), "columnar", "1", ms(c.elapsed), fmt.Sprintf("%d", c.matched),
			fmt.Sprintf("%.2fx", r.elapsed.Seconds()/c.elapsed.Seconds()))
	}
	// Cold rows: pool a fraction of the data, calibrated drives, 10% cutoff.
	for _, drives := range []int{1, 4} {
		var rowElapsed time.Duration
		for _, columnar := range []bool{false, true} {
			rs, err := s10Sweep(o, rows, pageSize, columnar, drives, false, []uint16{10})
			if err != nil {
				return nil, err
			}
			r := rs[0]
			speedup := "-"
			if !columnar {
				rowElapsed = r.elapsed
			} else if r.elapsed > 0 {
				speedup = fmt.Sprintf("%.2fx", rowElapsed.Seconds()/r.elapsed.Seconds())
			}
			t.AddRow("cold", "10", s10Layout(columnar), fmt.Sprintf("%d", drives),
				ms(r.elapsed), fmt.Sprintf("%d", r.matched), speedup)
		}
	}
	t.Notes = append(t.Notes,
		"row mode runs the row operator pipeline (Scan -> Filter -> agg sink); columnar runs the batch kernels",
		"warm: data resident, timing is decode CPU only — the batch kernels' win grows as selectivity drops",
		"cold: data streamed through a pool 1/4 its size over calibrated drives; both layouts are I/O-bound and scale with drives",
		"matched counts and value sums are cross-checked between layouts every run")
	return t, nil
}

func s10Layout(columnar bool) string {
	if columnar {
		return "columnar"
	}
	return "row"
}

// s10Rows generates the synthetic fact rows once; both layouts load the
// same records.
func s10Rows(n int) [][]byte {
	rows := make([][]byte, n)
	flat := make([]byte, n*s10RowSize)
	for i := 0; i < n; i++ {
		r := flat[i*s10RowSize : (i+1)*s10RowSize]
		binary.LittleEndian.PutUint64(r[0:8], uint64(i))
		binary.LittleEndian.PutUint16(r[8:10], uint16(i%100))
		binary.LittleEndian.PutUint64(r[10:18], math.Float64bits(float64(i%1000)))
		for j := 18; j < s10RowSize; j++ {
			r[j] = byte(i + j)
		}
		rows[i] = r
	}
	return rows
}

type s10Result struct {
	elapsed time.Duration
	matched int64
	sum     float64
}

// s10Sweep loads the rows into a set of the requested layout once, then
// times the scan-filter-agg at each cutoff. Warm sweeps prime the cache and
// time several passes per cutoff; cold sweeps chill the set before each
// timed streaming pass.
func s10Sweep(o Options, rows [][]byte, pageSize int64, columnar bool, drives int, warm bool, cutoffs []uint16) ([]s10Result, error) {
	tag := fmt.Sprintf("s10-%s-%s-%dd", s10Layout(columnar), map[bool]string{true: "warm", false: "cold"}[warm], drives)
	cfg := diskConfig()
	if warm {
		cfg = disk.Unthrottled()
	}
	arr, err := disk.NewArray(filepath.Join(o.Dir, tag), drives, cfg)
	if err != nil {
		return nil, err
	}
	defer func() { _ = arr.RemoveAll() }()
	dataBytes := int64(len(rows)) * (s10RowSize + 8)
	mem := dataBytes * 2 // warm: everything resident
	if !warm {
		mem = dataBytes / 4
	}
	if min := 8 * pageSize; mem < min {
		mem = min
	}
	bp, err := core.NewPool(core.PoolConfig{Memory: mem, Array: arr})
	if err != nil {
		return nil, err
	}
	spec := core.SetSpec{Name: "facts", PageSize: pageSize, Durability: core.WriteThrough}
	if columnar {
		spec.Layout = core.LayoutColumnar
		spec.Columns = s10Widths
	}
	set, err := bp.CreateSet(spec)
	if err != nil {
		return nil, err
	}
	if err := services.WriteAll(set, rows); err != nil {
		return nil, err
	}

	out := make([]s10Result, 0, len(cutoffs))
	for _, cutoff := range cutoffs {
		scan := func() (s10Result, error) { return s10Scan(set, cutoff, columnar) }
		loops := 1
		if warm {
			// Prime, then time a batch of passes for a stable number.
			if _, err := scan(); err != nil {
				return nil, err
			}
			loops = o.pick(5, 9)
		} else if err := s9Chill(bp, set, pageSize); err != nil {
			return nil, err
		}
		// Best of the timed passes: the min is the standard robust
		// estimator under scheduler noise, and it is applied to both
		// layouts alike.
		var res s10Result
		best := time.Duration(-1)
		for l := 0; l < loops; l++ {
			start := time.Now()
			r, err := scan()
			if err != nil {
				return nil, err
			}
			if d := time.Since(start); best < 0 || d < best {
				best = d
			}
			res = r
		}
		res.elapsed = best

		// Cross-check against the truth the generator implies.
		var wantMatched int64
		var wantSum float64
		for i := range rows {
			if uint16(i%100) < cutoff {
				wantMatched++
				wantSum += float64(i % 1000)
			}
		}
		if res.matched != wantMatched || math.Abs(res.sum-wantSum) > 1e-6*math.Abs(wantSum)+1e-9 {
			return nil, fmt.Errorf("s10 %s c%d: matched %d sum %.3f, want %d / %.3f",
				tag, cutoff, res.matched, res.sum, wantMatched, wantSum)
		}
		out = append(out, res)
	}
	return out, bp.DropSet(set)
}

// s10Pred is the sweep's date filter in predicate form: one expression
// that compiles to the row closure, the selection kernel, and (on sets
// with zone maps — s10's modulo dates make every page unprunable, s11's
// clustered dates the opposite) the page prune.
func s10Pred(cutoff uint16) query.Predicate {
	return query.ColRange{Col: s10ColDate, Lo: 0, Hi: uint64(cutoff)}
}

// s10Schema describes the fact row to the predicate algebra for row-layout
// scans (columnar sets carry their own widths).
func s10Schema() []services.ColumnSpec {
	return services.MakeSchema([]string{"key", "date", "val", "pad"}, s10Widths)
}

// s10Scan runs one scan-filter-sum pass over the set with either pipeline.
// Both modes express the filter as the same ScanSpec predicate; the sink's
// lock is taken only for rows that survive it, so the row mode's
// per-unmatched-row cost is purely the pipeline's.
func s10Scan(set *core.LocalitySet, cutoff uint16, columnar bool) (s10Result, error) {
	var mu sync.Mutex
	var res s10Result
	var err error
	if columnar {
		spec := query.ScanSpec{Set: set, Threads: s10Threads, Pred: s10Pred(cutoff)}
		err = spec.RunBatches(func(_ int, b *query.Batch) error {
			vals := b.Col(s10ColVal)
			var s float64
			for _, r := range b.Sel() {
				s += math.Float64frombits(binary.LittleEndian.Uint64(vals[int(r)*8:]))
			}
			mu.Lock()
			res.sum += s
			res.matched += int64(b.Selected())
			mu.Unlock()
			return nil
		})
	} else {
		spec := query.ScanSpec{Set: set, Threads: s10Threads, Pred: s10Pred(cutoff), Schema: s10Schema()}
		err = spec.Run(func(_ int, r query.Row) error {
			v := math.Float64frombits(binary.LittleEndian.Uint64(r[10:18]))
			mu.Lock()
			res.sum += v
			res.matched++
			mu.Unlock()
			return nil
		})
	}
	if err != nil {
		return s10Result{}, err
	}
	return res, nil
}
