package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickOpts(t *testing.T) Options {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment harness is slow; skipped in -short mode")
	}
	return Options{Quick: true, Dir: t.TempDir()}
}

// cell parses a numeric cell, failing on FAIL markers.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d = %q not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func TestRegistryRunsEveryExperiment(t *testing.T) {
	for _, e := range Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Fn(quickOpts(t))
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			var buf bytes.Buffer
			tab.Print(&buf)
			if !strings.Contains(buf.String(), tab.ID) {
				t.Error("printed table missing its id")
			}
		})
	}
}

func TestFig3Shape(t *testing.T) {
	tab, err := Fig3(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	// DBMIN-adaptive and DBMIN-1000 must block at sizes beyond memory.
	for _, sys := range []string{"Pangea w/ DBMIN-adaptive", "Pangea w/ DBMIN-1000"} {
		row := byName[sys]
		if row == nil {
			t.Fatalf("missing row %q", sys)
		}
		if !strings.HasPrefix(row[3], "FAIL") {
			t.Errorf("%s at x3 = %q, want FAIL (DBMIN blocking)", sys, row[3])
		}
	}
	// Ignite must crash at x2 and x3.
	ig := byName["Spark w/ Ignite"]
	if !strings.HasPrefix(ig[2], "FAIL") || !strings.HasPrefix(ig[3], "FAIL") {
		t.Errorf("Ignite row = %v, want FAIL at x2/x3", ig)
	}
	// Data-aware must beat Spark w/ HDFS at every scale it completes.
	da, hd := byName["Pangea w/ Data-aware"], byName["Spark w/ HDFS"]
	for col := 1; col <= 3; col++ {
		a, err1 := strconv.ParseFloat(da[col], 64)
		b, err2 := strconv.ParseFloat(hd[col], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		if a >= b {
			t.Errorf("x%d: data-aware %.1fms not faster than Spark/HDFS %.1fms", col, a, b)
		}
	}
}

func TestFig5ReplicasBeatRepartitionOnJoins(t *testing.T) {
	tab, err := Fig5(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	byQ := map[string][]string{}
	for _, row := range tab.Rows {
		byQ[row[0]] = row
	}
	// The co-partitioned join queries must speed up; Q17 most of all.
	for _, q := range []string{"Q04", "Q12", "Q14", "Q17"} {
		row := byQ[q]
		a, _ := strconv.ParseFloat(row[1], 64)
		b, _ := strconv.ParseFloat(row[2], 64)
		if a >= b {
			t.Errorf("%s: replicas %.1fms not faster than repartition %.1fms", q, a, b)
		}
	}
}

func TestFig6CollidingRatioDeclines(t *testing.T) {
	tab, err := Fig6(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = 101
	for i := range tab.Rows {
		r := strings.TrimSuffix(tab.Rows[i][3], "%")
		v, err := strconv.ParseFloat(r, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v > prev {
			t.Errorf("colliding ratio rose: %v", tab.Rows)
		}
		prev = v
	}
}

func TestFig7PangeaBeatsOSVMBeyondMemory(t *testing.T) {
	tab, err := Fig7(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	last := len(tab.Rows) - 1
	pangeaRead := cell(t, tab, last, 2)
	osvmRead := cell(t, tab, last, 6)
	if pangeaRead >= osvmRead {
		t.Errorf("beyond memory: pangea read %.1fms not faster than OS VM %.1fms", pangeaRead, osvmRead)
	}
	// Alluxio must fail at the largest size (cannot exceed memory).
	if tab.Rows[last][7] != "FAIL" {
		t.Errorf("alluxio at max size = %q, want FAIL", tab.Rows[last][7])
	}
}

func TestFig9LRUReadSlowerThanMRUFamily(t *testing.T) {
	tab, err := Fig9(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	// Columns: 0 durability, 1 objects, then (write, read) per policy in
	// order data-aware, DBMIN-tuned, MRU, LRU.
	last := len(tab.Rows) - 1
	daRead := cell(t, tab, last, 3)
	lruRead := cell(t, tab, last, 9)
	// 5% tolerance: at quick sizes the data-aware margin over LRU can fall
	// within scheduler noise on slow single-core machines; the assertion is
	// that LRU is not meaningfully ahead.
	if daRead >= lruRead*1.05 {
		t.Errorf("data-aware read %.1fms not faster than LRU %.1fms on loop-sequential", daRead, lruRead)
	}
}

func TestTab3SparkNeedsMoreFiles(t *testing.T) {
	tab, err := Tab3(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	last := len(tab.Rows) - 1
	sparkRead := cell(t, tab, last, 2)
	pangeaRead := cell(t, tab, last, 4)
	if pangeaRead >= sparkRead {
		t.Errorf("pangea shuffle read %.1fms not faster than spark-style %.1fms", pangeaRead, sparkRead)
	}
}

func TestTab2CountsRealFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow; skipped in -short mode")
	}
	tab, err := Tab2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := tab.Rows[len(tab.Rows)-1]
	if total[0] != "Total" {
		t.Fatalf("last row = %v, want Total", total)
	}
	n, err := strconv.Atoi(total[1])
	if err != nil || n < 500 {
		t.Errorf("total SLOC = %v, want a four-digit real count", total[1])
	}
}

func TestS7RatioDeclines(t *testing.T) {
	tab, err := S7Colliding(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = 101
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if v > prev {
			t.Errorf("ratio rose with more nodes: %v", tab.Rows)
		}
		prev = v
	}
}

// TestS7FairnessProtectsPolite: with a fair-share weight or a hard quota
// on the aggressor, the well-behaved tenant must retain its residency
// share (within 10% of its provisioned working set) and suffer almost no
// forced reloads, while the unprotected baseline shows real starvation.
func TestS7FairnessProtectsPolite(t *testing.T) {
	tab, err := S7Fairness(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	share := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("share cell %q not numeric", cell)
		}
		return v
	}
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	// The polite working set is 3/8 = 37.5% of the pool; within 10% means
	// its minimum share never drops below ~27.5%.
	for _, name := range []string{"weights 1:1", "quota on aggressor"} {
		row := byName[name]
		if row == nil {
			t.Fatalf("no %q row in %v", name, tab.Rows)
		}
		if got := share(row[2]); got < 27.5 {
			t.Errorf("%s: min polite share = %v%%, want >= 27.5%% (held within 10%% of its 37.5%% working set)", name, got)
		}
		loads, err := strconv.Atoi(row[6])
		if err != nil || loads > 3 {
			t.Errorf("%s: polite forced reloads = %v, want ~0", name, row[6])
		}
	}
	baseline := byName["none"]
	if baseline == nil {
		t.Fatalf("no baseline row in %v", tab.Rows)
	}
	if loads, _ := strconv.Atoi(baseline[6]); loads == 0 {
		t.Error("baseline shows no polite reloads: the aggressor failed to starve anyone, so the experiment demonstrates nothing")
	}
}

// TestS8LocalityShape: on the fake multi-node topologies, node-affine
// placement must be fully node-local with zero interconnect crossings,
// the interleaved baseline must push a large share of allocations remote,
// and the hot-node overflow must be served by crossing the interconnect
// rather than failing.
func TestS8LocalityShape(t *testing.T) {
	tab, err := S8Locality(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	remote := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatalf("remote cell %q not numeric", row[3])
		}
		return v
	}
	steals := func(row []string) int {
		v, err := strconv.Atoi(row[4])
		if err != nil {
			t.Fatalf("steals cell %q not numeric", row[4])
		}
		return v
	}
	rows := map[string][]string{}
	for _, row := range tab.Rows {
		rows[row[0]+"/"+row[1]] = row
	}
	for _, shape := range []string{"fake-2", "fake-4"} {
		affine := rows[shape+"/node-affine"]
		if affine == nil {
			t.Fatalf("missing %s node-affine row in %v", shape, tab.Rows)
		}
		if remote(affine) != 0 || steals(affine) != 0 {
			t.Errorf("%s node-affine: remote %.1f%%, steals %d — want fully node-local", shape, remote(affine), steals(affine))
		}
		inter := rows[shape+"/interleaved"]
		if got := remote(inter); got < 30 {
			t.Errorf("%s interleaved: remote %.1f%%, want the baseline to scatter pages off-node", shape, got)
		}
		hot := rows[shape+"/affine-hot-node"]
		if steals(hot) == 0 {
			t.Errorf("%s affine-hot-node: no cross-node steals — overflowing node 0 never crossed the interconnect", shape)
		}
	}
	// The real-topology rows must exist and run green whatever the machine.
	found := false
	for key := range rows {
		if strings.HasPrefix(key, "real") {
			found = true
		}
	}
	if !found {
		t.Errorf("no real-topology rows in %v", tab.Rows)
	}
}

// TestS10ColumnarBeatsRowWhenSelective: the warm sweep's batch pipeline
// must beat the row decode at the selective end — that is the layout's
// reason to exist. The margin is asserted loosely (quick sizes on shared CI
// runners are noisy); the committed full-size bench output records the
// real factor.
func TestS10ColumnarBeatsRowWhenSelective(t *testing.T) {
	tab, err := S10Columnar(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ mode, sel, layout, drives string }
	byKey := map[key]float64{}
	for i, row := range tab.Rows {
		byKey[key{row[0], row[1], row[2], row[3]}] = cell(t, tab, i, 4)
	}
	for _, sel := range []string{"1", "10"} {
		rowMS := byKey[key{"warm", sel, "row", "1"}]
		colMS := byKey[key{"warm", sel, "columnar", "1"}]
		if rowMS == 0 || colMS == 0 {
			t.Fatalf("missing warm rows at sel=%s%%: %v", sel, tab.Rows)
		}
		if colMS >= rowMS {
			t.Errorf("warm sel=%s%%: columnar %.2fms not faster than row %.2fms", sel, colMS, rowMS)
		}
	}
	// Cold rows exist for both drive counts and both layouts.
	for _, d := range []string{"1", "4"} {
		for _, l := range []string{"row", "columnar"} {
			if _, ok := byKey[key{"cold", "10", l, d}]; !ok {
				t.Errorf("missing cold row layout=%s drives=%s", l, d)
			}
		}
	}
}

// TestS11ZoneMapSkipsPages: the cold selective scans with maps on must do
// measurably fewer drive page reads than the identical scan with pruning
// disabled, and the skip counter must show real pruning — that is the zone
// map's reason to exist. At 10% (the loosest cutoff in the sweep) the data
// is clustered, so pruning must still drop most pages.
func TestS11ZoneMapSkipsPages(t *testing.T) {
	tab, err := S11ZoneMap(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ mode, sel, maps, drives string }
	reads := map[key]float64{}
	skips := map[key]float64{}
	for i, row := range tab.Rows {
		k := key{row[0], row[1], row[2], row[3]}
		reads[k] = cell(t, tab, i, 5)
		skips[k] = cell(t, tab, i, 6)
	}
	for _, drives := range []string{"1", "4"} {
		for _, sel := range []string{"1", "10", "100"} {
			on := key{"cold", sel, "on", drives}
			off := key{"cold", sel, "off", drives}
			if _, ok := reads[on]; !ok {
				t.Fatalf("missing cold maps=on row sel=%s drives=%s: %v", sel, drives, tab.Rows)
			}
			if skips[on] == 0 {
				t.Errorf("cold sel=%s drives=%s: zone map skipped no pages over clustered data", sel, drives)
			}
			if skips[off] != 0 {
				t.Errorf("cold sel=%s drives=%s: HintNoPrune scan skipped %v pages, want 0", sel, drives, skips[off])
			}
			if reads[on] >= reads[off] {
				t.Errorf("cold sel=%s drives=%s: maps on read %v pages, off read %v — pruning saved no I/O",
					sel, drives, reads[on], reads[off])
			}
		}
	}
	// The most selective cutoff must read only a sliver of the pages.
	if r, full := reads[key{"cold", "1", "on", "1"}], reads[key{"cold", "1", "off", "1"}]; r > full/4 {
		t.Errorf("cold sel=1 permil: maps on read %v of %v pages, want a small fraction", r, full)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown experiment must error")
	}
}
