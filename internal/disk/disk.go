// Package disk provides the secondary-storage substrate for Pangea.
//
// The paper evaluates on AWS instance-store SSDs (one or two per node). We
// do not have those, so Disk models a drive: files created on it share one
// calibrated throughput/latency timeline — every operation reserves an
// exclusive slot (seek latency + bytes/bandwidth) and sleeps until its slot
// ends. Concurrent requests to one drive therefore queue, while requests to
// different drives in an Array proceed in parallel — reproducing the 1-disk
// vs 2-disk separation in Figs 7, 8 and Table 3 without hardware.
package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"pangea/internal/locking"
)

// Config describes the performance envelope of one simulated drive.
type Config struct {
	// ReadMBps and WriteMBps are sequential bandwidths in MiB/s. Zero
	// disables throttling for that direction.
	ReadMBps  float64
	WriteMBps float64
	// SeekLatency is charged once per operation.
	SeekLatency time.Duration
}

// DefaultConfig approximates the paper's instance-store SSD, scaled so that
// MB-range experiments show the same memory/disk separation the paper's
// GB-range experiments do.
func DefaultConfig() Config {
	return Config{ReadMBps: 200, WriteMBps: 180, SeekLatency: 100 * time.Microsecond}
}

// Unthrottled returns a config with the time model disabled; used by unit
// tests that only care about correctness.
func Unthrottled() Config { return Config{} }

// Stats counts the traffic a drive has served.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

// Disk is one simulated drive. All Files opened on it share its timeline.
type Disk struct {
	cfg Config
	dir string

	mu        locking.Mutex
	busyUntil time.Time

	reads, writes, bytesRead, bytesWritten atomic.Int64

	// writeFault, when set, is consulted before every write on the drive;
	// a non-nil return fails the write without touching the file. Tests use
	// it to inject per-drive spill failures.
	writeFault atomic.Pointer[func() error]
	// readFault mirrors writeFault for the read direction: the load/prefetch
	// failure tests inject per-drive read errors without real I/O faults.
	readFault atomic.Pointer[func() error]
}

// Open mounts a drive rooted at dir, creating the directory if needed.
func Open(dir string, cfg Config) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	d := &Disk{cfg: cfg, dir: dir}
	d.mu.Init(locking.RankDisk)
	return d, nil
}

// Dir returns the drive's mount directory.
func (d *Disk) Dir() string { return d.dir }

// Create opens (truncating) a file named name on this drive.
func (d *Disk) Create(name string) (*File, error) {
	path := filepath.Join(d.dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	return &File{d: d, f: f, path: path}, nil
}

// Exists reports whether a file named name is present on this drive.
// OpenFile creates absent files, so callers that must distinguish "never
// written" (pfs side objects) check here first.
func (d *Disk) Exists(name string) bool {
	_, err := os.Stat(filepath.Join(d.dir, name))
	return err == nil
}

// OpenFile opens an existing file on this drive without truncating it,
// creating it empty if absent (used when re-attaching meta/data files).
func (d *Disk) OpenFile(name string) (*File, error) {
	path := filepath.Join(d.dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	return &File{d: d, f: f, path: path}, nil
}

// throttle reserves a slot of the appropriate duration on the drive
// timeline and sleeps until the slot completes.
func (d *Disk) throttle(n int, mbps float64) {
	if mbps == 0 && d.cfg.SeekLatency == 0 {
		return
	}
	dur := d.cfg.SeekLatency
	if mbps > 0 {
		dur += time.Duration(float64(n) / (mbps * 1024 * 1024) * float64(time.Second))
	}
	d.mu.Lock()
	now := time.Now()
	start := d.busyUntil
	if start.Before(now) {
		start = now
	}
	end := start.Add(dur)
	d.busyUntil = end
	d.mu.Unlock()
	if wait := end.Sub(now); wait > 0 {
		time.Sleep(wait)
	}
}

// SetWriteFault installs f as the drive's write-fault hook; every write on
// the drive first calls f and fails with its error when non-nil. Passing
// nil clears the hook. Intended for tests that simulate a failing drive.
func (d *Disk) SetWriteFault(f func() error) {
	if f == nil {
		d.writeFault.Store(nil)
		return
	}
	d.writeFault.Store(&f)
}

// SetReadFault installs f as the drive's read-fault hook; every read on the
// drive first calls f and fails with its error when non-nil. A hook that
// returns nil observes the read without failing it (tests count or delay
// reads this way). Passing nil clears the hook.
func (d *Disk) SetReadFault(f func() error) {
	if f == nil {
		d.readFault.Store(nil)
		return
	}
	d.readFault.Store(&f)
}

// Stats returns a snapshot of traffic counters.
func (d *Disk) Stats() Stats {
	return Stats{
		Reads:        d.reads.Load(),
		Writes:       d.writes.Load(),
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
	}
}

// RemoveAll deletes the drive's entire directory tree.
func (d *Disk) RemoveAll() error { return os.RemoveAll(d.dir) }

// File is a file on a simulated drive; reads and writes are charged to the
// drive's time model. Pangea performs direct I/O to bypass the OS buffer
// cache (paper §4); the time model plays that role here — every operation
// pays the device cost.
type File struct {
	d    *Disk
	f    *os.File
	path string
}

// ReadAt reads len(p) bytes at offset off.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if hook := f.d.readFault.Load(); hook != nil {
		if err := (*hook)(); err != nil {
			return 0, err
		}
	}
	f.d.throttle(len(p), f.d.cfg.ReadMBps)
	n, err := f.f.ReadAt(p, off)
	f.d.reads.Add(1)
	f.d.bytesRead.Add(int64(n))
	return n, err
}

// WriteAt writes p at offset off.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if hook := f.d.writeFault.Load(); hook != nil {
		if err := (*hook)(); err != nil {
			return 0, err
		}
	}
	f.d.throttle(len(p), f.d.cfg.WriteMBps)
	n, err := f.f.WriteAt(p, off)
	f.d.writes.Add(1)
	f.d.bytesWritten.Add(int64(n))
	return n, err
}

// Size returns the current file length in bytes.
func (f *File) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Sync flushes the file to stable storage.
func (f *File) Sync() error { return f.f.Sync() }

// Truncate resizes the file.
func (f *File) Truncate(n int64) error { return f.f.Truncate(n) }

// Path returns the file's path on the host filesystem.
func (f *File) Path() string { return f.path }

// Close closes the file.
func (f *File) Close() error { return f.f.Close() }

// Remove closes and deletes the file.
func (f *File) Remove() error {
	if err := f.f.Close(); err != nil {
		return err
	}
	return os.Remove(f.path)
}
