package disk

import (
	"sync"

	"pangea/internal/locking"
)

// Queue is a bounded FIFO of I/O jobs bound to one drive. The eviction
// daemon's spill pipeline attaches one Queue per Disk of an Array: jobs on
// the same queue run strictly in submission order on a single worker
// goroutine (matching the drive's serial time model), while jobs on
// different drives' queues proceed in parallel — an N-drive array absorbs
// ~N concurrent page write-backs.
//
// The worker is lazy, like the eviction daemon itself: it starts on the
// first Submit and exits once the queue drains, so an idle pipeline holds
// no goroutines and a Queue never needs explicit shutdown.
type Queue struct {
	mu      locking.Mutex
	notFull *sync.Cond
	jobs    []func()
	limit   int
	running bool
}

// NewQueue builds a queue that admits at most limit pending jobs; Submit
// blocks while the queue is full, which backpressures the producer to the
// drive's real drain rate. limit must be positive.
func NewQueue(limit int) *Queue {
	if limit <= 0 {
		limit = 1
	}
	q := &Queue{limit: limit}
	q.mu.Init(locking.RankIOQueue)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// Submit enqueues job, starting the worker goroutine if none is live.
// It blocks while the queue holds limit pending jobs.
func (q *Queue) Submit(job func()) {
	q.mu.Lock()
	for len(q.jobs) >= q.limit {
		q.notFull.Wait()
	}
	q.jobs = append(q.jobs, job)
	if !q.running {
		q.running = true
		go q.drain()
	}
	q.mu.Unlock()
}

// Len reports the number of pending jobs (not counting one mid-execution).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// drain runs queued jobs in FIFO order until the queue is empty, then
// exits. No lock is held while a job runs.
func (q *Queue) drain() {
	for {
		q.mu.Lock()
		if len(q.jobs) == 0 {
			q.running = false
			q.mu.Unlock()
			return
		}
		job := q.jobs[0]
		q.jobs[0] = nil
		q.jobs = q.jobs[1:]
		q.notFull.Signal()
		q.mu.Unlock()
		job()
	}
}
