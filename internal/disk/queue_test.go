package disk

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueRunsJobsInOrder(t *testing.T) {
	q := NewQueue(4)
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		q.Submit(func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	for i, v := range got {
		if v != i {
			t.Fatalf("job %d ran at position %d: queue not FIFO", v, i)
		}
	}
}

func TestQueueNeverRunsJobsConcurrently(t *testing.T) {
	q := NewQueue(8)
	var inFlight, maxSeen atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		q.Submit(func() {
			if n := inFlight.Add(1); n > maxSeen.Load() {
				maxSeen.Store(n)
			}
			time.Sleep(50 * time.Microsecond)
			inFlight.Add(-1)
			wg.Done()
		})
	}
	wg.Wait()
	if maxSeen.Load() != 1 {
		t.Fatalf("queue ran %d jobs concurrently, want 1", maxSeen.Load())
	}
}

func TestQueueSubmitBlocksWhenFull(t *testing.T) {
	q := NewQueue(1)
	gate := make(chan struct{})
	var done sync.WaitGroup
	done.Add(3)
	q.Submit(func() { <-gate; done.Done() }) // occupies the worker
	q.Submit(func() { done.Done() })         // fills the single slot

	submitted := make(chan struct{})
	go func() {
		q.Submit(func() { done.Done() })
		close(submitted)
	}()
	select {
	case <-submitted:
		t.Fatal("Submit returned while the queue was full")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	select {
	case <-submitted:
	case <-time.After(2 * time.Second):
		t.Fatal("Submit never unblocked after the queue drained")
	}
	done.Wait()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", q.Len())
	}
}

func TestQueueWorkerExitsAndRestarts(t *testing.T) {
	q := NewQueue(4)
	for round := 0; round < 3; round++ {
		ran := make(chan struct{})
		q.Submit(func() { close(ran) })
		select {
		case <-ran:
		case <-time.After(2 * time.Second):
			t.Fatalf("round %d: job never ran", round)
		}
		// Let the lazy worker drain and exit before the next round.
		deadline := time.Now().Add(time.Second)
		for q.Len() != 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
}

func TestWriteFaultInjection(t *testing.T) {
	d := mustDisk(t, Unthrottled())
	f, err := d.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sentinel := errors.New("drive on fire")
	d.SetWriteFault(func() error { return sentinel })
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, sentinel) {
		t.Fatalf("WriteAt error = %v, want injected %v", err, sentinel)
	}
	if s := d.Stats(); s.Writes != 0 {
		t.Fatalf("failed write counted: Writes = %d, want 0", s.Writes)
	}
	d.SetWriteFault(nil)
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("WriteAt after clearing fault: %v", err)
	}
}

func TestArrayStatsSumsAllCounters(t *testing.T) {
	a, err := NewArray(t.TempDir(), 2, Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	defer a.RemoveAll()
	buf := make([]byte, 100)
	for i := 0; i < 2; i++ {
		f, err := a.Disk(i).Create("f")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(buf, 0)
		f.ReadAt(buf, 0)
		f.Close()
	}
	s := a.Stats()
	if s.Writes != 2 || s.BytesWritten != 200 {
		t.Fatalf("writes=%d bytes=%d, want 2/200", s.Writes, s.BytesWritten)
	}
	if s.Reads != 2 || s.BytesRead != 200 {
		t.Fatalf("reads=%d bytes=%d, want 2/200", s.Reads, s.BytesRead)
	}
	per := a.PerDriveStats()
	if len(per) != 2 {
		t.Fatalf("PerDriveStats len = %d, want 2", len(per))
	}
	for i, ds := range per {
		if ds.Reads != 1 || ds.Writes != 1 {
			t.Fatalf("drive %d: reads=%d writes=%d, want 1/1", i, ds.Reads, ds.Writes)
		}
	}
}
