package disk

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pangea/internal/locking"
)

func mustDisk(t *testing.T, cfg Config) *Disk {
	t.Helper()
	d, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := mustDisk(t, Unthrottled())
	f, err := d.Create("set1.data")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := []byte("pangea monolithic storage")
	if _, err := f.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestOpenFilePreservesContents(t *testing.T) {
	d := mustDisk(t, Unthrottled())
	f, _ := d.Create("meta")
	f.WriteAt([]byte("hello"), 0)
	f.Close()
	g, err := d.OpenFile("meta")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	buf := make([]byte, 5)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("OpenFile lost contents: %q", buf)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := mustDisk(t, Unthrottled())
	f, _ := d.Create("f")
	defer f.Close()
	buf := make([]byte, 1000)
	f.WriteAt(buf, 0)
	f.WriteAt(buf, 1000)
	f.ReadAt(buf, 0)
	s := d.Stats()
	if s.Writes != 2 || s.BytesWritten != 2000 {
		t.Fatalf("writes=%d bytes=%d, want 2/2000", s.Writes, s.BytesWritten)
	}
	if s.Reads != 1 || s.BytesRead != 1000 {
		t.Fatalf("reads=%d bytes=%d, want 1/1000", s.Reads, s.BytesRead)
	}
}

func TestFilesShareDriveTimeline(t *testing.T) {
	// Two files on ONE drive: concurrent 1MiB writes at 100MiB/s must
	// serialize to ~20ms total.
	d := mustDisk(t, Config{WriteMBps: 100})
	f1, _ := d.Create("a")
	f2, _ := d.Create("b")
	defer f1.Close()
	defer f2.Close()
	buf := make([]byte, 1<<20)
	start := time.Now()
	var wg sync.WaitGroup
	for _, f := range []*File{f1, f2} {
		wg.Add(1)
		go func(f *File) { defer wg.Done(); f.WriteAt(buf, 0) }(f)
	}
	wg.Wait()
	if el := time.Since(start); el < 18*time.Millisecond {
		t.Fatalf("same-drive writes did not serialize: %v", el)
	}
}

func TestThrottleEnforcesBandwidth(t *testing.T) {
	d := mustDisk(t, Config{WriteMBps: 100})
	f, _ := d.Create("f")
	defer f.Close()
	buf := make([]byte, 1<<20)
	start := time.Now()
	f.WriteAt(buf, 0)
	if el := time.Since(start); el < 8*time.Millisecond {
		t.Fatalf("1MiB@100MBps took %v, want >= ~10ms", el)
	}
}

func TestArrayParallelism(t *testing.T) {
	if locking.Checked {
		// The 2-disk/1-disk speedup ratio is calibrated against the raw
		// time model; the pangea_checks lock instrumentation adds enough
		// fixed per-op overhead to squeeze it below threshold. The checked
		// build is for correctness assertions, not timing.
		t.Skip("timing-calibrated ratio unreliable under pangea_checks instrumentation")
	}
	measure := func(numDisks int) time.Duration {
		a, err := NewArray(t.TempDir(), numDisks, Config{WriteMBps: 100})
		if err != nil {
			t.Fatal(err)
		}
		defer a.RemoveAll()
		buf := make([]byte, 1<<20)
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				f, _ := a.Pick(int64(i)).Create("f")
				defer f.Close()
				f.WriteAt(buf, 0)
			}(i)
		}
		wg.Wait()
		return time.Since(start)
	}
	one := measure(1)
	two := measure(2)
	if one < 18*time.Millisecond {
		t.Fatalf("single disk did not serialize: %v", one)
	}
	if two > one*8/10 {
		t.Fatalf("two disks not faster than one: 1-disk=%v 2-disk=%v", one, two)
	}
}

func TestArrayRoundRobin(t *testing.T) {
	a, err := NewArray(t.TempDir(), 3, Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	defer a.RemoveAll()
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	seen := map[int]bool{}
	for seq := int64(0); seq < 6; seq++ {
		seen[a.PickIndex(seq)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin hit %d disks, want 3", len(seen))
	}
	if a.PickIndex(0) != a.PickIndex(3) {
		t.Fatal("round-robin not periodic")
	}
}

func TestArrayRejectsZeroDisks(t *testing.T) {
	if _, err := NewArray(t.TempDir(), 0, Unthrottled()); err == nil {
		t.Fatal("expected error for zero-disk array")
	}
}

func TestFileSizeAndTruncate(t *testing.T) {
	d := mustDisk(t, Unthrottled())
	f, _ := d.Create("f")
	defer f.Close()
	f.WriteAt(make([]byte, 500), 0)
	if n, _ := f.Size(); n != 500 {
		t.Fatalf("Size = %d, want 500", n)
	}
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Size(); n != 100 {
		t.Fatalf("Size after truncate = %d, want 100", n)
	}
}

// TestReadFault covers the read-side fault hook: an error-returning hook
// fails every ReadAt (writes are untouched), a nil-returning hook observes
// reads without failing them, and clearing the hook restores normal reads.
func TestReadFault(t *testing.T) {
	d := mustDisk(t, Unthrottled())
	f, err := d.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := []byte("payload")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	sentinel := errSentinel{}
	d.SetReadFault(func() error { return sentinel })
	if _, err := f.ReadAt(make([]byte, len(data)), 0); err != sentinel {
		t.Fatalf("ReadAt under fault = %v, want the injected error", err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt must not see the read fault: %v", err)
	}
	var observed int
	d.SetReadFault(func() error { observed++; return nil })
	buf := make([]byte, len(data))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("nil-returning hook must not fail reads: %v", err)
	}
	if observed != 1 {
		t.Fatalf("observing hook saw %d reads, want 1", observed)
	}
	d.SetReadFault(nil)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt after clearing fault: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %q, want %q", buf, data)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "injected read fault" }
