package disk

import (
	"fmt"
	"path/filepath"
)

// Array is the set of drives on one worker node. A Pangea data file instance
// can be automatically distributed across multiple disk drives (paper §4);
// the file system assigns pages to drives round-robin, and because each
// drive has its own time model, an Array of two disks delivers roughly twice
// the aggregate bandwidth of one.
type Array struct {
	disks []*Disk
}

// NewArray mounts n drives under dir with the given per-drive config.
func NewArray(dir string, n int, cfg Config) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("disk: array needs at least one disk, got %d", n)
	}
	a := &Array{}
	for i := 0; i < n; i++ {
		d, err := Open(filepath.Join(dir, fmt.Sprintf("disk%d", i)), cfg)
		if err != nil {
			//lint:ignore errdrop best-effort cleanup of a half-built array; the Open error is the one the caller must see
			a.RemoveAll()
			return nil, err
		}
		a.disks = append(a.disks, d)
	}
	return a, nil
}

// Len returns the number of drives.
func (a *Array) Len() int { return len(a.disks) }

// Disk returns drive i.
func (a *Array) Disk(i int) *Disk { return a.disks[i] }

// Pick maps a page sequence number to a drive (round-robin placement).
func (a *Array) Pick(seq int64) *Disk { return a.disks[int(seq)%len(a.disks)] }

// PickIndex returns the drive index for a page sequence number.
func (a *Array) PickIndex(seq int64) int { return int(seq) % len(a.disks) }

// Stats sums every traffic counter — reads and writes, operations and
// bytes — over all drives, so array-level accounting never under-reports a
// direction.
func (a *Array) Stats() Stats {
	var s Stats
	for _, ds := range a.PerDriveStats() {
		s.Reads += ds.Reads
		s.Writes += ds.Writes
		s.BytesRead += ds.BytesRead
		s.BytesWritten += ds.BytesWritten
	}
	return s
}

// PerDriveStats snapshots each drive's traffic counters individually, in
// drive order. The s6 spill experiment uses it to report how evenly the
// round-robin placement balances read/write traffic across the array.
func (a *Array) PerDriveStats() []Stats {
	out := make([]Stats, len(a.disks))
	for i, d := range a.disks {
		out[i] = d.Stats()
	}
	return out
}

// RemoveAll deletes all drives' directory trees.
func (a *Array) RemoveAll() error {
	var first error
	for _, d := range a.disks {
		if err := d.RemoveAll(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
