package core

import (
	"testing"
	"time"
)

// TestPrefetchFilterSkipsPrunedPages installs a prune filter (what a
// predicate scan's zone-map pass does) and verifies speculation honours it:
// hints on pruned pages issue no reads, the surviving pages still stream in,
// and a demand Pin of a pruned page keeps working — the filter is a hint to
// speculation, never a correctness gate.
func TestPrefetchFilterSkipsPrunedPages(t *testing.T) {
	const pageSize = 4 << 10
	const n = 8
	bp, _ := prefetchPool(t, 2, 16, pageSize)
	s := writeSpilled(t, bp, "data", n, pageSize, 0)
	coolSet(t, bp, s)

	s.SetPrefetchFilter(func(num int64) bool { return num%2 == 0 })
	if issued := s.Prefetch(s.PageNums()); issued != n/2 {
		t.Fatalf("Prefetch issued %d reads with half the pages pruned, want %d", issued, n/2)
	}
	waitFor(t, 5*time.Second, func() bool { return bp.Stats().LoadsInFlight.Load() == 0 }, "loads to settle")
	if got := s.ResidentPages(); got != n/2 {
		t.Errorf("ResidentPages = %d, want %d (only unpruned pages speculated)", got, n/2)
	}
	if got := s.LoadReads(); got != n/2 {
		t.Errorf("LoadReads = %d, want %d — a pruned page reached a drive", got, n/2)
	}
	// Demand access ignores the filter.
	p, err := s.Pin(1)
	if err != nil {
		t.Fatalf("Pin of a pruned page: %v", err)
	}
	if err := checkStamp(p.Bytes(), int64(s.ID()), 1); err != nil {
		t.Error(err)
	}
	if err := s.Unpin(p, false); err != nil {
		t.Fatal(err)
	}
	// Clearing the filter re-opens speculation on the rest.
	s.SetPrefetchFilter(nil)
	s.Prefetch(s.PageNums())
	waitFor(t, 5*time.Second, func() bool { return s.ResidentPages() == n }, "remaining pages to land")
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchFilterStarvedBudgetExcludesPruned is the prune/prefetch
// interaction regression test: when speculation starves against a full pool,
// the eviction daemon's reclaim budget must be armed with only the hinted
// pages a predicate scan still wants — pruned pages were never going to be
// read, and charging for them would make background reclaim evict real
// residents to make room for reads that never come.
func TestPrefetchFilterStarvedBudgetExcludesPruned(t *testing.T) {
	const pageSize = 4 << 10
	const n = 8
	// Three pages of arena hold exactly two carved frames (each frame pays a
	// small allocator header), so two pinned filler pages fill the pool.
	bp, _ := prefetchPool(t, 1, 3, pageSize)
	s := writeSpilled(t, bp, "data", n, pageSize, 0)
	coolSet(t, bp, s)

	filler, err := bp.CreateSet(SetSpec{Name: "pins", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	pinned := make([]*Page, 2)
	for i := range pinned {
		if pinned[i], err = filler.NewPage(); err != nil {
			t.Fatal(err)
		}
	}

	s.SetPrefetchFilter(func(num int64) bool { return num%4 == 0 })
	base := bp.loadStarved.Load()
	if issued := s.Prefetch(s.PageNums()); issued != 0 {
		t.Fatalf("Prefetch against a pinned-full pool issued %d reads, want 0", issued)
	}
	// The batch starved on page 0; its unfulfilled tail holds all 8 hints but
	// only the 2 unpruned ones may be charged (the budget clamps at pool
	// memory, so charging the full tail would saturate it instead).
	if got := bp.loadStarved.Load() - base; got != (n/4)*pageSize {
		t.Fatalf("starved budget charged %d bytes, want %d (pruned pages must not count)", got, (n/4)*pageSize)
	}

	for _, p := range pinned {
		if err := filler.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.DropSet(filler); err != nil {
		t.Fatal(err)
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
}
