package core

import (
	"fmt"
	"testing"
	"time"

	"pangea/internal/disk"
)

// The ablations in this file probe the knobs of the data-aware priority
// model (§6): the time horizon t of p_reuse, the w_r read penalty for
// random patterns, and the 1-page vs 10% eviction batch rule.

// newAblationPool builds a pool with lightly throttled disks so paging
// decisions have a measurable cost.
func newAblationPool(tb testing.TB, mem int64, cfg PoolConfig) *BufferPool {
	tb.Helper()
	arr, err := disk.NewArray(tb.TempDir(), 1, disk.Config{
		ReadMBps: 300, WriteMBps: 250, SeekLatency: 40 * time.Microsecond,
	})
	if err != nil {
		tb.Fatal(err)
	}
	cfg.Memory = mem
	cfg.Array = arr
	bp, err := NewPool(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = arr.RemoveAll() })
	return bp
}

// mixedWorkload runs the workload the data-aware policy is built for: a
// loop-sequential scan set competing with a random-access hash-style set in
// one pool.
func mixedWorkload(tb testing.TB, bp *BufferPool) {
	tb.Helper()
	const pageSize = 16 << 10
	seq, err := bp.CreateSet(SetSpec{Name: "seq", PageSize: pageSize})
	if err != nil {
		tb.Fatal(err)
	}
	seq.SetReading(SequentialRead)
	hash, err := bp.CreateSet(SetSpec{Name: "hash", PageSize: pageSize})
	if err != nil {
		tb.Fatal(err)
	}
	hash.SetWriting(RandomMutableWrite)
	hash.SetReading(RandomRead)

	const nSeq, nHash = 48, 16
	for i := 0; i < nSeq; i++ {
		p, err := seq.NewPage()
		if err != nil {
			tb.Fatal(err)
		}
		if err := seq.Unpin(p, true); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < nHash; i++ {
		p, err := hash.NewPage()
		if err != nil {
			tb.Fatal(err)
		}
		if err := hash.Unpin(p, true); err != nil {
			tb.Fatal(err)
		}
	}
	// Loop-sequential re-reads of seq interleaved with random probes of
	// hash — the contention pattern where the set-level priority matters.
	for loop := 0; loop < 3; loop++ {
		for i := 0; i < nSeq; i++ {
			p, err := seq.Pin(int64(i))
			if err != nil {
				tb.Fatal(err)
			}
			if err := seq.Unpin(p, false); err != nil {
				tb.Fatal(err)
			}
			if i%3 == 0 {
				h := int64((i * 7) % nHash)
				p, err := hash.Pin(h)
				if err != nil {
					tb.Fatal(err)
				}
				if err := hash.Unpin(p, true); err != nil {
					tb.Fatal(err)
				}
			}
		}
	}
	if err := bp.DropSet(seq); err != nil {
		tb.Fatal(err)
	}
	if err := bp.DropSet(hash); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkAblationHorizon sweeps the horizon t of p_reuse = 1 − e^{−λt}.
// §6 argues t=1 behaves like the linear λ weighting; large horizons push
// every probability toward 1 and wash out the recency signal.
func BenchmarkAblationHorizon(b *testing.B) {
	for _, h := range []float64{0.25, 1, 4, 64, 4096} {
		b.Run(fmt.Sprintf("t=%g", h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bp := newAblationPool(b, 40*(16<<10), PoolConfig{Horizon: h})
				mixedWorkload(b, bp)
			}
		})
	}
}

// BenchmarkAblationReadPenalty sweeps the w_r penalty that makes spilled
// random-access data costlier to re-read than sequential data.
func BenchmarkAblationReadPenalty(b *testing.B) {
	for _, pen := range []float64{1, 3, 10} {
		b.Run(fmt.Sprintf("wr=%g", pen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bp := newAblationPool(b, 40*(16<<10), PoolConfig{
					Profile: IOProfile{ReadCost: pen, WriteCost: 1},
				})
				mixedWorkload(b, bp)
			}
		})
	}
}

// TestHorizonExtremesStillCorrect: the priority model is a performance
// heuristic; data must survive any horizon.
func TestHorizonExtremesStillCorrect(t *testing.T) {
	for _, h := range []float64{1e-6, 1, 1e9} {
		bp := newAblationPool(t, 24*(16<<10), PoolConfig{Horizon: h})
		s, err := bp.CreateSet(SetSpec{Name: "s", PageSize: 16 << 10})
		if err != nil {
			t.Fatal(err)
		}
		const n = 64
		for i := 0; i < n; i++ {
			p, err := s.NewPage()
			if err != nil {
				t.Fatalf("h=%g: %v", h, err)
			}
			p.Bytes()[0] = byte(i)
			if err := s.Unpin(p, true); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			p, err := s.Pin(int64(i))
			if err != nil {
				t.Fatalf("h=%g pin %d: %v", h, i, err)
			}
			if p.Bytes()[0] != byte(i) {
				t.Fatalf("h=%g: page %d corrupt", h, i)
			}
			if err := s.Unpin(p, false); err != nil {
				t.Fatal(err)
			}
		}
		if err := bp.DropSet(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEvictionBatchRuleReducesSpillsUnderWrite verifies the asymmetric
// batch rule of §6: while a set is being written, taking a single victim
// page avoids evicting fresh output that is about to be read. We compare
// spilled-page counts for a write-then-immediately-read loop under the
// normal rule vs a set mislabelled as read-only (which loses 10% at once).
func TestEvictionBatchRuleReducesSpillsUnderWrite(t *testing.T) {
	run := func(mislabel bool) int64 {
		bp := newAblationPool(t, 10*(16<<10), PoolConfig{})
		s, err := bp.CreateSet(SetSpec{Name: "s", PageSize: 16 << 10})
		if err != nil {
			t.Fatal(err)
		}
		if mislabel {
			s.SetCurrentOp(OpRead)
		} else {
			s.SetCurrentOp(OpWrite)
		}
		for i := 0; i < 40; i++ {
			p, err := s.NewPage()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Unpin(p, true); err != nil {
				t.Fatal(err)
			}
			// Immediately re-read the page just written.
			q, err := s.Pin(int64(i))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Unpin(q, false); err != nil {
				t.Fatal(err)
			}
		}
		return bp.Stats().Loads.Load()
	}
	correct, mislabelled := run(false), run(true)
	if correct > mislabelled {
		t.Errorf("write-labelled run re-loaded %d pages, read-labelled %d; the 1-page rule should protect fresh output", correct, mislabelled)
	}
}

// BenchmarkPinUnpinHit measures the hot path: pinning a resident page.
func BenchmarkPinUnpinHit(b *testing.B) {
	bp := newAblationPool(b, 1<<20, PoolConfig{})
	s, err := bp.CreateSet(SetSpec{Name: "s", PageSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	p, err := s.NewPage()
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Unpin(p, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := s.Pin(0)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Unpin(p, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewPageWithEviction measures page allocation under constant
// memory pressure (every allocation evicts).
func BenchmarkNewPageWithEviction(b *testing.B) {
	bp := newAblationPool(b, 8*4096, PoolConfig{})
	s, err := bp.CreateSet(SetSpec{Name: "s", PageSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := s.NewPage()
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Unpin(p, false); err != nil {
			b.Fatal(err)
		}
	}
}
