package core

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
	"testing"

	"pangea/internal/disk"
)

// newTestPool builds a pool with unthrottled disks in a temp dir.
func newTestPool(t *testing.T, mem int64, policy Policy) *BufferPool {
	t.Helper()
	arr, err := disk.NewArray(t.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	bp, err := NewPool(PoolConfig{Memory: mem, Array: arr, Policy: policy})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	return bp
}

func TestCreateSetAndLookup(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	s, err := bp.CreateSet(SetSpec{Name: "data", PageSize: 4096})
	if err != nil {
		t.Fatalf("CreateSet: %v", err)
	}
	if s.Name() != "data" || s.PageSize() != 4096 {
		t.Errorf("got name=%q pageSize=%d", s.Name(), s.PageSize())
	}
	got, ok := bp.GetSet("data")
	if !ok || got != s {
		t.Errorf("GetSet returned %v, %v", got, ok)
	}
	if _, err := bp.CreateSet(SetSpec{Name: "data", PageSize: 4096}); err == nil {
		t.Error("duplicate CreateSet should fail")
	}
	if _, err := bp.CreateSet(SetSpec{Name: "big", PageSize: 2 << 20}); err == nil {
		t.Error("page size exceeding pool should fail")
	}
	if _, err := bp.CreateSet(SetSpec{Name: "zero", PageSize: 0}); err == nil {
		t.Error("zero page size should fail")
	}
}

// TestCreateSetRejectsPageLargerThanShard: a page cannot span allocator
// shards, so a page size no shard can hold must fail fast at CreateSet —
// not block for the full AllocTimeout on the first NewPage.
func TestCreateSetRejectsPageLargerThanShard(t *testing.T) {
	arr, err := disk.NewArray(t.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	bp, err := NewPool(PoolConfig{Memory: 8 << 20, Array: arr, AllocShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.CreateSet(SetSpec{Name: "huge", PageSize: 3 << 20}); err == nil {
		t.Fatal("page size above the per-shard maximum must fail at CreateSet")
	}
	// A page that fits one 2 MiB shard still works.
	s, err := bp.CreateSet(SetSpec{Name: "fits", PageSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Unpin(p, false); err != nil {
		t.Fatal(err)
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
}

func TestNewPageWriteReadBack(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	s, err := bp.CreateSet(SetSpec{Name: "s", PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	copy(p.Bytes(), []byte("hello pangea"))
	if err := s.Unpin(p, true); err != nil {
		t.Fatalf("Unpin: %v", err)
	}
	q, err := s.Pin(0)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if string(q.Bytes()[:12]) != "hello pangea" {
		t.Errorf("page bytes = %q", q.Bytes()[:12])
	}
	if err := s.Unpin(q, false); err != nil {
		t.Fatal(err)
	}
}

func TestPinMissingPage(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	s, _ := bp.CreateSet(SetSpec{Name: "s", PageSize: 1024})
	if _, err := s.Pin(0); err == nil {
		t.Error("pin of non-existent page must fail")
	}
	if _, err := s.Pin(-1); err == nil {
		t.Error("pin of negative page must fail")
	}
}

func TestDoubleUnpinFails(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	s, _ := bp.CreateSet(SetSpec{Name: "s", PageSize: 1024})
	p, _ := s.NewPage()
	if err := s.Unpin(p, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Unpin(p, false); err == nil {
		t.Error("double unpin must fail")
	}
}

// TestEvictionSpillsAndReloads writes more write-back pages than fit in the
// pool and checks that evicted pages are spilled and can be pinned back with
// their contents intact.
func TestEvictionSpillsAndReloads(t *testing.T) {
	const pageSize = 4096
	// Pool fits ~4 pages (TLSF needs header space).
	bp := newTestPool(t, 5*pageSize, nil)
	s, err := bp.CreateSet(SetSpec{Name: "wb", PageSize: pageSize, Durability: WriteBack})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := 0; i < n; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		copy(p.Bytes(), []byte(fmt.Sprintf("page-%02d", i)))
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	if bp.Stats().Evictions.Load() == 0 {
		t.Fatal("expected evictions")
	}
	if bp.Stats().Spills.Load() == 0 {
		t.Fatal("expected dirty spills for write-back data")
	}
	for i := 0; i < n; i++ {
		p, err := s.Pin(int64(i))
		if err != nil {
			t.Fatalf("Pin %d: %v", i, err)
		}
		want := fmt.Sprintf("page-%02d", i)
		if string(p.Bytes()[:len(want)]) != want {
			t.Errorf("page %d = %q, want %q", i, p.Bytes()[:len(want)], want)
		}
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWriteThroughFlushesAtUnpin checks the d=0 property: write-through pages
// are persisted when unpinned, so eviction never needs to spill them.
func TestWriteThroughFlushesAtUnpin(t *testing.T) {
	const pageSize = 4096
	bp := newTestPool(t, 5*pageSize, nil)
	s, err := bp.CreateSet(SetSpec{Name: "wt", PageSize: pageSize, Durability: WriteThrough})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.Bytes()[0] = byte(i)
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	if got := bp.Stats().FlushWrites.Load(); got != 12 {
		t.Errorf("FlushWrites = %d, want 12", got)
	}
	if got := bp.Stats().Spills.Load(); got != 0 {
		t.Errorf("Spills = %d, want 0 (write-through pages are clean at eviction)", got)
	}
}

// TestLifetimeEndedEvictedWithoutSpill: dirty pages of lifetime-ended sets
// are dropped, not spilled, and are preferred victims.
func TestLifetimeEndedEvictedWithoutSpill(t *testing.T) {
	const pageSize = 4096
	bp := newTestPool(t, 8*pageSize, nil)
	dead, _ := bp.CreateSet(SetSpec{Name: "dead", PageSize: pageSize})
	// live is write-through: its pages are clean at eviction time, so any
	// spill observed below must have come from the dead set — a bug.
	live, _ := bp.CreateSet(SetSpec{Name: "live", PageSize: pageSize, Durability: WriteThrough})
	for i := 0; i < 3; i++ {
		p, err := dead.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		_ = dead.Unpin(p, true)
	}
	dead.EndLifetime()
	// Fill the pool from the live set, forcing evictions.
	for i := 0; i < 8; i++ {
		p, err := live.NewPage()
		if err != nil {
			t.Fatalf("NewPage live %d: %v", i, err)
		}
		_ = live.Unpin(p, true)
	}
	if dead.ResidentPages() != 0 {
		t.Errorf("lifetime-ended set still has %d resident pages", dead.ResidentPages())
	}
	if got := bp.Stats().Spills.Load(); got != 0 {
		t.Errorf("Spills = %d, want 0: dead dirty pages must not be written", got)
	}
	if live.ResidentPages() == 0 {
		t.Error("live set should retain pages while dead set is drained")
	}
}

// TestPinnedLocationNeverEvicted: sets whose Location attribute is pinned
// survive memory pressure; allocation fails instead.
func TestPinnedLocationNeverEvicted(t *testing.T) {
	const pageSize = 4096
	bp := newTestPool(t, 5*pageSize, nil)
	bp.cfg.AllocTimeout = 1 // fail fast
	pinned, _ := bp.CreateSet(SetSpec{Name: "p", PageSize: pageSize, Pinned: true})
	for i := 0; i < 4; i++ {
		p, err := pinned.NewPage()
		if err != nil {
			break // pool can hold only ~4 pages
		}
		_ = pinned.Unpin(p, false)
	}
	before := pinned.ResidentPages()
	other, _ := bp.CreateSet(SetSpec{Name: "o", PageSize: pageSize})
	_, err := other.NewPage()
	if err == nil {
		t.Fatal("allocation should fail: all memory is held by a pinned set")
	}
	if !errors.Is(err, ErrNoEvictable) {
		t.Errorf("err = %v, want ErrNoEvictable", err)
	}
	if pinned.ResidentPages() != before {
		t.Errorf("pinned set lost pages: %d -> %d", before, pinned.ResidentPages())
	}
}

func TestDropSetFreesMemory(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	s, _ := bp.CreateSet(SetSpec{Name: "s", PageSize: 4096})
	p, _ := s.NewPage()
	if err := bp.DropSet(s); err == nil {
		t.Error("drop with pinned page must fail")
	}
	_ = s.Unpin(p, false)
	used := bp.UsedBytes()
	if used == 0 {
		t.Fatal("expected non-zero usage")
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatalf("DropSet: %v", err)
	}
	if bp.UsedBytes() != 0 {
		t.Errorf("UsedBytes = %d after drop, want 0", bp.UsedBytes())
	}
	if _, ok := bp.GetSet("s"); ok {
		t.Error("dropped set still visible")
	}
	if _, err := s.NewPage(); err == nil {
		t.Error("NewPage on dropped set must fail")
	}
	// Dropping again is a no-op.
	if err := bp.DropSet(s); err != nil {
		t.Errorf("second DropSet: %v", err)
	}
}

// TestCreateSetConcurrentDuplicate is the regression test for the
// CreateSet TOCTOU race: two goroutines racing on the same name must
// produce exactly one winner, no orphan registry entry, and no leaked pfs
// file from the loser.
func TestCreateSetConcurrentDuplicate(t *testing.T) {
	dir := t.TempDir()
	arr, err := disk.NewArray(dir, 1, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	bp, err := NewPool(PoolConfig{Memory: 1 << 20, Array: arr})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 25; round++ {
		name := fmt.Sprintf("dup%d", round)
		var wg sync.WaitGroup
		results := make([]*LocalitySet, 2)
		errs := make([]error, 2)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g], errs[g] = bp.CreateSet(SetSpec{Name: name, PageSize: 4096})
			}(g)
		}
		wg.Wait()
		var winner *LocalitySet
		wins := 0
		for g := 0; g < 2; g++ {
			if errs[g] == nil {
				wins++
				winner = results[g]
			}
		}
		if wins != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1 (errs: %v)", round, wins, errs)
		}
		if got, ok := bp.GetSet(name); !ok || got != winner {
			t.Fatalf("round %d: GetSet(%q) = %v, %v; want the winner", round, name, got, ok)
		}
		if err := bp.DropSet(winner); err != nil {
			t.Fatalf("round %d: DropSet: %v", round, err)
		}
	}
	bp.regMu.RLock()
	orphans := len(bp.sets)
	bp.regMu.RUnlock()
	if orphans != 0 {
		t.Errorf("%d orphan sets left in the registry", orphans)
	}
	// Every winner was dropped; the losers must never have created a file.
	var leaked []string
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			leaked = append(leaked, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaked) != 0 {
		t.Errorf("leaked pfs files: %v", leaked)
	}
}

// TestCreateSetReleasesReservationOnFileError: a failed pfs.Create must
// release the name reservation and recycle the ID (no burned nextID).
func TestCreateSetReleasesReservationOnFileError(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	bad := "bad\x00name" // NUL makes the OS reject the file path
	if _, err := bp.CreateSet(SetSpec{Name: bad, PageSize: 4096}); err == nil {
		t.Fatal("CreateSet with an invalid file name should fail")
	}
	s, err := bp.CreateSet(SetSpec{Name: "good", PageSize: 4096})
	if err != nil {
		t.Fatalf("CreateSet after a failed create: %v", err)
	}
	if s.ID() != 0 {
		t.Errorf("set ID = %d, want 0: the failed create burned an ID", s.ID())
	}
	// The failed name must not be permanently reserved: retrying reports
	// the file error again, not a duplicate-name error.
	_, err = bp.CreateSet(SetSpec{Name: bad, PageSize: 4096})
	if err == nil {
		t.Fatal("invalid name should still fail")
	}
	if err.Error() == fmt.Sprintf("core: set %q already exists", bad) {
		t.Errorf("reservation leaked: %v", err)
	}
}

func TestConcurrentPinUnpin(t *testing.T) {
	const pageSize = 4096
	bp := newTestPool(t, 6*pageSize, nil)
	s, _ := bp.CreateSet(SetSpec{Name: "c", PageSize: pageSize})
	const n = 12
	for i := 0; i < n; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.Bytes()[0] = byte(i)
		_ = s.Unpin(p, true)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 40; it++ {
				num := int64((w*7 + it) % n)
				p, err := s.Pin(num)
				if err != nil {
					errCh <- fmt.Errorf("pin %d: %w", num, err)
					return
				}
				if p.Bytes()[0] != byte(num) {
					errCh <- fmt.Errorf("page %d corrupt: %d", num, p.Bytes()[0])
				}
				if err := s.Unpin(p, false); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestFlushAllPersistsDirtyPages(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	s, _ := bp.CreateSet(SetSpec{Name: "f", PageSize: 4096})
	for i := 0; i < 5; i++ {
		p, _ := s.NewPage()
		p.Bytes()[0] = byte(i + 1)
		_ = s.Unpin(p, true)
	}
	if err := s.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if s.DiskBytes() < 5*4096 {
		t.Errorf("DiskBytes = %d, want >= %d", s.DiskBytes(), 5*4096)
	}
}

func TestPeakBytesTracksHighWater(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	s, _ := bp.CreateSet(SetSpec{Name: "s", PageSize: 8192})
	var pages []*Page
	for i := 0; i < 10; i++ {
		p, _ := s.NewPage()
		pages = append(pages, p)
	}
	peak := bp.PeakBytes()
	for _, p := range pages {
		_ = s.Unpin(p, false)
	}
	_ = bp.DropSet(s)
	if bp.PeakBytes() != peak || peak < 10*8192 {
		t.Errorf("PeakBytes = %d (was %d), want stable high-water >= %d", bp.PeakBytes(), peak, 10*8192)
	}
}
