package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pangea/internal/disk"
)

// prefetchPool builds a pool over an n-drive unthrottled array, sized in
// pages, with automatic read-ahead disabled so tests drive every hint
// explicitly.
func prefetchPool(t *testing.T, drives int, pages, pageSize int64) (*BufferPool, *disk.Array) {
	t.Helper()
	arr, err := disk.NewArray(t.TempDir(), drives, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	bp, err := NewPool(PoolConfig{Memory: pages * pageSize, Array: arr, ReadAhead: -1})
	if err != nil {
		t.Fatal(err)
	}
	return bp, arr
}

// writeSpilled creates a write-through set of n stamped pages; write-through
// gives every page an on-disk image at unpin time, so the set can be cooled
// without any spill I/O and read back by the prefetcher.
func writeSpilled(t *testing.T, bp *BufferPool, name string, n int, pageSize, quota int64) *LocalitySet {
	t.Helper()
	s, err := bp.CreateSet(SetSpec{Name: name, PageSize: pageSize, Durability: WriteThrough, MemoryQuota: quota})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		stamp(p.Bytes(), int64(s.ID()), p.Num())
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// coolSet evicts every resident page of s through the public path: a
// throwaway filler set grows until s is fully cold (the cost model reclaims
// s's clean write-through pages rather than spilling the filler's dirty
// ones), then the filler is dropped.
func coolSet(t *testing.T, bp *BufferPool, s *LocalitySet) {
	t.Helper()
	filler, err := bp.CreateSet(SetSpec{Name: s.Name() + "-chill", PageSize: s.PageSize()})
	if err != nil {
		t.Fatal(err)
	}
	limit := int(bp.Capacity()/s.PageSize()) * 4
	for i := 0; s.ResidentPages() > 0; i++ {
		if i > limit {
			t.Fatalf("%d pages of %q still resident after %d filler pages", s.ResidentPages(), s.Name(), i)
		}
		p, err := filler.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		if err := filler.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.DropSet(filler); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchLoadsAndHits prefetches a cold set and verifies the frames
// arrive resident at pin count zero, later pins are hits that never touch
// the demand-load path, and the speculation counters tell that story.
func TestPrefetchLoadsAndHits(t *testing.T) {
	const pageSize = 4 << 10
	const n = 4
	bp, _ := prefetchPool(t, 2, 8, pageSize)
	s := writeSpilled(t, bp, "data", n, pageSize, 0)
	coolSet(t, bp, s)

	if issued := s.Prefetch(s.PageNums()); issued != n {
		t.Fatalf("Prefetch issued %d reads, want %d", issued, n)
	}
	waitFor(t, 5*time.Second, func() bool {
		return s.ResidentPages() == n && bp.Stats().LoadsInFlight.Load() == 0
	}, "prefetched frames to land")
	// A second hint over the same pages must dedupe against residency.
	if issued := s.Prefetch(s.PageNums()); issued != 0 {
		t.Fatalf("re-hinting resident pages issued %d reads, want 0", issued)
	}
	for _, num := range s.PageNums() {
		p, err := s.Pin(num)
		if err != nil {
			t.Fatalf("Pin(%d): %v", num, err)
		}
		if err := checkStamp(p.Bytes(), int64(s.ID()), num); err != nil {
			t.Error(err)
		}
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}
	st := bp.Stats()
	if got := st.PrefetchesIssued.Load(); got != n {
		t.Errorf("PrefetchesIssued = %d, want %d", got, n)
	}
	if got := st.PrefetchHits.Load(); got != n {
		t.Errorf("PrefetchHits = %d, want %d", got, n)
	}
	if got := st.Loads.Load(); got != 0 {
		t.Errorf("demand Loads = %d, want 0 — pins of prefetched frames must not count as misses", got)
	}
	if got := s.LoadReads(); got != n {
		t.Errorf("set LoadReads = %d, want %d (prefetch reads count as set reads)", got, n)
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
}

// TestPinCoalescesOntoPrefetch holds a prefetch's disk read open and races
// pinners against it: every pinner must coalesce onto the in-flight load and
// the drive must see exactly one read for the page.
func TestPinCoalescesOntoPrefetch(t *testing.T) {
	const pageSize = 4 << 10
	bp, arr := prefetchPool(t, 1, 8, pageSize)
	s := writeSpilled(t, bp, "data", 1, pageSize, 0)
	coolSet(t, bp, s)

	var reads atomic.Int64
	gate := make(chan struct{})
	arr.Disk(0).SetReadFault(func() error {
		reads.Add(1)
		<-gate
		return nil
	})
	if issued := s.Prefetch([]int64{0}); issued != 1 {
		t.Fatalf("Prefetch issued %d, want 1", issued)
	}
	const pinners = 8
	var wg sync.WaitGroup
	errCh := make(chan error, 2*pinners)
	for i := 0; i < pinners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := s.Pin(0)
			if err != nil {
				errCh <- err
				return
			}
			if err := checkStamp(p.Bytes(), int64(s.ID()), 0); err != nil {
				errCh <- err
			}
			errCh <- s.Unpin(p, false)
		}()
	}
	waitFor(t, 5*time.Second, func() bool { return reads.Load() == 1 }, "the prefetch read to start")
	close(gate)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := reads.Load(); got != 1 {
		t.Fatalf("drive saw %d reads for one page with %d racing pinners, want 1", got, pinners)
	}
	arr.Disk(0).SetReadFault(nil)
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
}

// TestLoadErrorReachesCoalescedWaiters fails a prefetch's read and verifies
// the single-flight contract on the error path: every coalesced pinner sees
// the read's error (not a hang, not a panic), the speculative frame and its
// admission charge are released exactly once, and once the fault clears a
// retry pins the page successfully.
func TestLoadErrorReachesCoalescedWaiters(t *testing.T) {
	const pageSize = 4 << 10
	bp, arr := prefetchPool(t, 1, 8, pageSize)
	s := writeSpilled(t, bp, "data", 1, pageSize, 0)
	coolSet(t, bp, s)

	sentinel := errors.New("injected read fault")
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	arr.Disk(0).SetReadFault(func() error {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
		return sentinel
	})
	if issued := s.Prefetch([]int64{0}); issued != 1 {
		t.Fatalf("Prefetch issued %d, want 1", issued)
	}
	<-started
	const pinners = 4
	var wg sync.WaitGroup
	errCh := make(chan error, pinners)
	for i := 0; i < pinners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Pin(0)
			errCh <- err
		}()
	}
	close(gate)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if !errors.Is(err, sentinel) {
			t.Fatalf("coalesced pinner got %v, want the injected read fault", err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return bp.Stats().LoadsInFlight.Load() == 0 }, "load gauge to settle")
	if got := s.ResidentBytes(); got != 0 {
		t.Fatalf("ResidentBytes = %d after failed load, want 0 — frame not released exactly once", got)
	}
	if got := s.ResidentPages(); got != 0 {
		t.Fatalf("ResidentPages = %d after failed load, want 0", got)
	}
	arr.Disk(0).SetReadFault(nil)
	p, err := s.Pin(0)
	if err != nil {
		t.Fatalf("Pin after clearing fault: %v", err)
	}
	if err := checkStamp(p.Bytes(), int64(s.ID()), 0); err != nil {
		t.Error(err)
	}
	if err := s.Unpin(p, false); err != nil {
		t.Fatal(err)
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
}

// TestDropSetMidPrefetch drops a set while its prefetched reads are still on
// the drive: DropSet must wait out the in-flight loads, and every frame —
// landed or in flight — must be released exactly once, leaving the arena
// empty and the in-flight counters at zero.
func TestDropSetMidPrefetch(t *testing.T) {
	const pageSize = 4 << 10
	const n = 4
	bp, arr := prefetchPool(t, 2, 8, pageSize)
	s := writeSpilled(t, bp, "data", n, pageSize, 0)
	coolSet(t, bp, s)

	gate := make(chan struct{})
	for i := 0; i < arr.Len(); i++ {
		arr.Disk(i).SetReadFault(func() error {
			<-gate
			return nil
		})
	}
	if issued := s.Prefetch(s.PageNums()); issued != n {
		t.Fatalf("Prefetch issued %d, want %d", issued, n)
	}
	dropped := make(chan error, 1)
	go func() { dropped <- bp.DropSet(s) }()
	close(gate)
	if err := <-dropped; err != nil {
		t.Fatalf("DropSet mid-prefetch: %v", err)
	}
	if got := bp.Stats().LoadsInFlight.Load(); got != 0 {
		t.Fatalf("LoadsInFlight = %d after DropSet, want 0", got)
	}
	if got := bp.UsedBytes(); got != 0 {
		t.Fatalf("UsedBytes = %d after DropSet, want 0 — a speculative frame leaked", got)
	}
}

// TestEvictorReclaimsSpeculativeFirst parks prefetched frames on an idle set
// and grows another: the evictor must burn the speculation (counted as
// wasted) before touching anything else, since an idle set's guesses are the
// cheapest memory in the pool.
func TestEvictorReclaimsSpeculativeFirst(t *testing.T) {
	const pageSize = 4 << 10
	const n = 2
	bp, _ := prefetchPool(t, 1, 4, pageSize)
	s := writeSpilled(t, bp, "data", n, pageSize, 0)
	coolSet(t, bp, s)

	if issued := s.Prefetch(s.PageNums()); issued != n {
		t.Fatalf("Prefetch issued %d, want %d", issued, n)
	}
	waitFor(t, 5*time.Second, func() bool { return s.ResidentPages() == n }, "prefetched frames to land")
	// Grow a second set past what free memory can hold; the reclaim must
	// come out of the idle speculation.
	grower := writeSpilled(t, bp, "grower", 4, pageSize, 0)
	waitFor(t, 5*time.Second, func() bool { return bp.Stats().PrefetchWasted.Load() >= 1 }, "speculative frames to be reclaimed")
	if got := s.ResidentPages(); got >= n {
		t.Fatalf("idle set still holds %d speculative pages under pressure", got)
	}
	if err := bp.DropSet(grower); err != nil {
		t.Fatal(err)
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchRespectsQuota hints a whole cold set at a tenant whose hard
// quota only covers half of it: speculation must stop at the quota line, not
// push the set over its entitlement.
func TestPrefetchRespectsQuota(t *testing.T) {
	const pageSize = 4 << 10
	const n = 4
	bp, _ := prefetchPool(t, 1, 8, pageSize)
	s := writeSpilled(t, bp, "tenant", n, pageSize, 2*pageSize)
	coolSet(t, bp, s)

	if issued := s.Prefetch(s.PageNums()); issued != 2 {
		t.Fatalf("Prefetch issued %d reads against a 2-page quota, want 2", issued)
	}
	waitFor(t, 5*time.Second, func() bool { return bp.Stats().LoadsInFlight.Load() == 0 }, "loads to settle")
	if got := s.ResidentBytes(); got > 2*pageSize {
		t.Fatalf("ResidentBytes = %d, above the %d-byte quota", got, 2*pageSize)
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchPinRace hammers Prefetch against concurrent pinners and a
// final mid-flight DropSet under the race detector: hints, hits, demand
// misses and eviction interleave freely, and the arena must come back empty.
func TestPrefetchPinRace(t *testing.T) {
	const pageSize = 4 << 10
	const n = 16
	bp, _ := prefetchPool(t, 2, 6, pageSize)
	s := writeSpilled(t, bp, "race", n, pageSize, 0)
	coolSet(t, bp, s)

	stop := make(chan struct{})
	hintsDone := make(chan struct{})
	go func() {
		defer close(hintsDone)
		nums := s.PageNums()
		for {
			select {
			case <-stop:
				return
			default:
				s.Prefetch(nums)
			}
		}
	}()
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for num := int64(0); num < n; num++ {
					p, err := s.Pin(num)
					if err != nil {
						errCh <- fmt.Errorf("worker %d Pin(%d): %w", w, num, err)
						return
					}
					if err := checkStamp(p.Bytes(), int64(s.ID()), num); err != nil {
						errCh <- err
						return
					}
					if err := s.Unpin(p, false); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-hintsDone
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
	if got := bp.UsedBytes(); got != 0 {
		t.Fatalf("UsedBytes = %d after drop, want 0", got)
	}
}

// TestPrefetchCompletionWakesBlockedAllocation is the regression test for a
// lost wakeup that stalled fig7-sized pools: speculation claims the last
// free frames while its reads are still on the drive, a demand allocation
// blocks behind them, and the eviction daemon's pass finds nothing evictable
// (in-flight frames aren't resident yet) and parks. When the reads then land
// — frames resident at pin count zero, perfectly evictable — someone must
// wake the blocked allocation; before the fix nobody did, and it rode out
// its full AllocTimeout into a spurious ErrNoEvictable.
func TestPrefetchCompletionWakesBlockedAllocation(t *testing.T) {
	const pageSize = 4 << 10
	// Three pages of arena hold exactly two carved frames (each frame pays a
	// small allocator header), so the two gated prefetches below fill the
	// pool completely.
	bp, arr := prefetchPool(t, 1, 3, pageSize)
	s := writeSpilled(t, bp, "data", 2, pageSize, 0)
	coolSet(t, bp, s)

	gate := make(chan struct{})
	arr.Disk(0).SetReadFault(func() error {
		<-gate
		return nil
	})
	if issued := s.Prefetch(s.PageNums()); issued != 2 {
		t.Fatalf("Prefetch issued %d, want 2", issued)
	}

	late, err := bp.CreateSet(SetSpec{Name: "late", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		p, err := late.NewPage()
		if err == nil {
			err = late.Unpin(p, false)
		}
		done <- err
	}()
	// Let the allocation block and the daemon's pass run dry and park while
	// every frame is still in flight on the gated drive.
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("NewPage completed against a full pool of gated loads: %v", err)
	default:
	}

	close(gate)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked allocation after prefetches landed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("allocation still blocked after the prefetched frames landed evictable")
	}
	if got := bp.Stats().PrefetchWasted.Load(); got < 1 {
		t.Errorf("PrefetchWasted = %d, want >= 1 (a speculative frame fed the blocked allocation)", got)
	}
}
