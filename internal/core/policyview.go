package core

import (
	"math"
	"sort"
)

// PolicyView is an immutable snapshot of the buffer pool taken by the
// eviction daemon just before it consults the paging policy. Policies
// compute over the snapshot without holding any pool or set lock: the
// locking model is invisible to them, and a slow policy can never stall
// Pin/Unpin traffic. Victim choices are returned as PageRefs; the daemon
// re-validates each one against live state (the page may have been pinned
// or dropped since the snapshot) before actually evicting it.
type PolicyView struct {
	// Capacity is the pool's arena size in bytes.
	Capacity int64
	// Used is the number of arena bytes allocated when the snapshot was
	// taken (including allocator headers).
	Used int64
	// Tick is the pool's logical clock at snapshot time.
	Tick int64
	// NodeUsed is the per-NUMA-node residency gauge at snapshot time: the
	// arena bytes allocated from each node's shards. One entry on
	// single-node machines; a lopsided profile on a multi-node box tells a
	// policy (or an operator reading the node stats) which node's memory
	// the pressure is on.
	NodeUsed []int64
	// CrossNodeSteals is the pool-lifetime count of allocations that had
	// to cross the interconnect because their home node was exhausted.
	CrossNodeSteals int64
	// PrefetchesIssued, PrefetchHits and PrefetchWasted are the pool's
	// lifetime speculation counters (see PoolStats), and LoadsInFlight the
	// number of reads outstanding, at snapshot time. A policy can read the
	// hit/wasted ratio to judge how trustworthy speculative frames are
	// before deciding whether to victimize them.
	PrefetchesIssued int64
	PrefetchHits     int64
	PrefetchWasted   int64
	LoadsInFlight    int64
	// Sets holds one snapshot per live locality set.
	Sets []*SetSnapshot

	horizon float64
	profile IOProfile
}

// SetSnapshot is one locality set's state within a PolicyView.
type SetSnapshot struct {
	// Name is the set's name, for diagnostics.
	Name string
	// Attrs is the set's attribute tag vector (Table 1).
	Attrs Attributes
	// PageSize is the fixed page size shared by the set's pages.
	PageSize int64
	// HomeNode is the NUMA node of the set's home allocator shard.
	HomeNode int
	// LastAccess is the set-level AccessRecency tick.
	LastAccess int64
	// Resident is the number of pages cached at snapshot time.
	Resident int
	// ResidentBytes is the set's resident-page footprint in bytes at
	// snapshot time.
	ResidentBytes int64
	// PendingBytes is allocation demand blocked on this set's behalf at
	// snapshot time; it counts toward the set's footprint in Overage, so a
	// tenant at its entitlement asking for one more page self-evicts for it
	// instead of stealing from an under-quota set.
	PendingBytes int64
	// Entitlement is the set's fair share of the arena in bytes: its
	// memory quota, or its weight-proportional share, or Capacity when the
	// set is unconstrained. The daemon reclaims from sets above their
	// entitlement before any set below it; policies may also use the ratio
	// to rank victims.
	Entitlement int64
	// TotalPages is the total logical page count (resident or spilled),
	// which DBMIN's looping/random size estimates use.
	TotalPages int64
	// ZoneMapChecks and ZoneMapSkips are the set's lifetime page-skipping
	// gauges at snapshot time: pages predicate scans evaluated against the
	// set's zone map, and the subset pruned without any pin or I/O.
	ZoneMapChecks int64
	ZoneMapSkips  int64
	// IndexChecks and IndexHits are the set's lifetime microindex gauges at
	// snapshot time: pages point-lookup scans evaluated against the set's
	// microindex, and the candidate subset the index kept.
	IndexChecks int64
	IndexHits   int64
	// Evictable lists the set's pages that were evictable at snapshot time:
	// resident, unpinned, and not already being evicted. Empty for sets
	// whose Location attribute pins them in memory.
	Evictable []PageRef

	set   *LocalitySet // live handle for victim resolution
	quota int64        // explicit resident-byte cap, 0 = none
}

// Overage reports how many bytes the set's footprint — resident pages
// plus blocked allocation demand — exceeds its entitlement by; zero or
// negative means the set is within its fair share.
func (s *SetSnapshot) Overage() int64 { return s.ResidentBytes + s.PendingBytes - s.Entitlement }

// PageRef identifies one evictable page within a PolicyView.
type PageRef struct {
	// Set is the snapshot of the page's owning locality set.
	Set *SetSnapshot
	// Num is the page's sequence number within its set.
	Num int64
	// LastRef is the page's last-access tick.
	LastRef int64
	// Dirty reports whether the page held unpersisted modifications.
	Dirty bool
	// Speculative reports that the prefetcher loaded the page and nothing
	// has referenced it yet. Always clean (a speculative frame is a copy of
	// its on-disk image), so reclaiming one costs no write-back.
	Speculative bool
}

// EvictablePages flattens the evictable pages of every set, the raw
// material for global policies like LRU and MRU.
func (v *PolicyView) EvictablePages() []PageRef {
	var out []PageRef
	for _, s := range v.Sets {
		out = append(out, s.Evictable...)
	}
	return out
}

// PageCost evaluates the expected cost of evicting page p within the
// horizon t (§6):
//
//	cost = c_w + p_reuse · c_r
//	c_w  = d · v_w            (d = 1 iff the page must be written back)
//	c_r  = v_r · w_r          (w_r > 1 for random reading patterns)
//	p_reuse = 1 − e^{−λt},  λ = 1 / (t_now − t_ref)
func (v *PolicyView) PageCost(p PageRef) float64 {
	attrs := p.Set.Attrs
	var cw float64
	if p.Dirty && !attrs.LifetimeEnded {
		// Only write-back data can be dirty at eviction time; write-through
		// pages were persisted at unpin (d=0 for write-through).
		cw = v.profile.WriteCost
	}
	cr := v.profile.ReadCost * attrs.ReadPenalty()
	return cw + v.reuseProbability(p.LastRef)*cr
}

// reuseProbability computes p_reuse from the time since last reference,
// relative to the snapshot's tick.
func (v *PolicyView) reuseProbability(lastRef int64) float64 {
	delta := v.Tick - lastRef
	if delta < 1 {
		delta = 1
	}
	lambda := 1.0 / float64(delta)
	return 1 - math.Exp(-lambda*v.horizon)
}

// NextVictim returns the page the set's own replacement strategy (MRU/LRU,
// derived from its access-pattern tags) would evict next; ok is false if
// nothing is evictable.
func (s *SetSnapshot) NextVictim() (PageRef, bool) {
	if len(s.Evictable) == 0 {
		return PageRef{}, false
	}
	mru := s.Attrs.Strategy() == EvictMRU
	best := s.Evictable[0]
	for _, p := range s.Evictable[1:] {
		if mru && p.LastRef > best.LastRef || !mru && p.LastRef < best.LastRef {
			best = p
		}
	}
	return best, true
}

// VictimBatch returns the pages one eviction round takes from this set: a
// single page while the set is being written (evicting fresh output is
// costly), or 10% of the evictable pages for read-only sets, in the set's
// strategy order (§6).
//
// Speculative frames get attribute-driven treatment. While the set is idle
// (no current read operation), they sort first: nobody is consuming the
// window, so never-referenced speculation is the cheapest memory in the set
// — clean, and with no evidence of reuse. While a read is in progress the
// order inverts — the window is about to be consumed, so the round takes
// already-referenced pages behind the cursor first and touches the window
// only when nothing else is left (evicting it would just turn the same
// reads into demand misses again).
func (s *SetSnapshot) VictimBatch() []PageRef {
	if len(s.Evictable) == 0 {
		return nil
	}
	cands := append([]PageRef(nil), s.Evictable...)
	mru := s.Attrs.Strategy() == EvictMRU
	reading := s.Attrs.CurrentOp == OpRead || s.Attrs.CurrentOp == OpReadWrite
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Speculative != cands[j].Speculative {
			if reading {
				return !cands[i].Speculative
			}
			return cands[i].Speculative
		}
		if mru {
			return cands[i].LastRef > cands[j].LastRef
		}
		return cands[i].LastRef < cands[j].LastRef
	})
	n := 1
	if !s.Attrs.CurrentOp.involvesWrite() {
		n = (len(cands) + 9) / 10 // ceil(10%)
	}
	return cands[:n]
}

// snapshot builds a PolicyView. It takes the registry lock briefly to list
// the sets, then each set's lock in turn — never two locks at once.
func (bp *BufferPool) snapshot() *PolicyView {
	bp.regMu.RLock()
	sets := make([]*LocalitySet, 0, len(bp.sets))
	for _, s := range bp.sets {
		sets = append(sets, s)
	}
	bp.regMu.RUnlock()

	view := &PolicyView{
		Capacity:         bp.cfg.Memory,
		Used:             bp.alloc.Used(),
		Tick:             bp.tick.Load(),
		NodeUsed:         bp.alloc.NodeUsed(),
		CrossNodeSteals:  bp.stats.CrossNodeSteals.Load(),
		PrefetchesIssued: bp.stats.PrefetchesIssued.Load(),
		PrefetchHits:     bp.stats.PrefetchHits.Load(),
		PrefetchWasted:   bp.stats.PrefetchWasted.Load(),
		LoadsInFlight:    bp.stats.LoadsInFlight.Load(),
		horizon:          bp.cfg.Horizon,
		profile:          bp.cfg.Profile,
	}
	// Entitlements: one weight sum over the listed sets (weights are
	// immutable, so a set dropped between here and its lock below only
	// shrinks other sets' nominal shares by a stale epsilon).
	var totalWeight float64
	for _, s := range sets {
		totalWeight += s.weight
	}
	for _, s := range sets {
		s.mu.Lock()
		if s.dropped {
			s.mu.Unlock()
			continue
		}
		ss := &SetSnapshot{
			Name:          s.name,
			Attrs:         s.attrs,
			PageSize:      s.pageSize,
			HomeNode:      s.homeNode,
			LastAccess:    s.lastAccess,
			Resident:      len(s.resident),
			ResidentBytes: s.residentBytes.Load(),
			PendingBytes:  s.pendingBytes.Load(),
			Entitlement:   bp.entitlementWith(totalWeight, s),
			TotalPages:    s.nextNum,
			ZoneMapChecks: s.zmChecks.Load(),
			ZoneMapSkips:  s.zmSkips.Load(),
			IndexChecks:   s.idxChecks.Load(),
			IndexHits:     s.idxHits.Load(),
			set:           s,
			quota:         s.quota,
		}
		if !s.attrs.Pinned {
			for _, p := range s.resident {
				if p.pin == 0 && !p.evicting {
					ss.Evictable = append(ss.Evictable, PageRef{
						Set:         ss,
						Num:         p.num,
						LastRef:     p.lastRef,
						Dirty:       p.dirty,
						Speculative: p.prefetched,
					})
				}
			}
		}
		s.mu.Unlock()
		view.Sets = append(view.Sets, ss)
	}
	return view
}

// overEntitled returns a derived view restricted to the sets holding more
// than their entitlement and having something evictable — the fairness
// pre-pass input — or nil when every set is within its share. With
// quotaOnly set (no allocation pressure), only sets over an explicit
// MemoryQuota count: weight entitlements never trigger spilling on their
// own. The filtered view shares the receiver's SetSnapshots, so the
// PageRefs a policy returns from it resolve identically.
func (v *PolicyView) overEntitled(quotaOnly bool) *PolicyView {
	var over []*SetSnapshot
	for _, s := range v.Sets {
		if s.Overage() <= 0 || len(s.Evictable) == 0 {
			continue
		}
		if quotaOnly && s.quota == 0 {
			continue
		}
		over = append(over, s)
	}
	if over == nil {
		return nil
	}
	w := *v
	w.Sets = over
	return &w
}
