package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pangea/internal/disk"
	"pangea/internal/numa"
)

// numaPool builds a pool over a synthetic topology (NUMANodes shape) with a
// fixed shard count.
func numaPool(t *testing.T, mem int64, shards, nodes int) *BufferPool {
	t.Helper()
	arr, err := disk.NewArray(t.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	bp, err := NewPool(PoolConfig{
		Memory: mem, Array: arr, AllocShards: shards, NUMANodes: nodes,
		// Keep the everything-pinned failure path fast: those tests assert
		// on ErrNoEvictable, not on how long the daemon waits for it.
		AllocTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestPoolConfigNUMAValidation(t *testing.T) {
	arr, err := disk.NewArray(t.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	if _, err := NewPool(PoolConfig{Memory: 1 << 20, Array: arr, AllocShards: -1}); err == nil {
		t.Error("negative AllocShards must be rejected")
	}
	if _, err := NewPool(PoolConfig{Memory: 1 << 20, Array: arr, NUMANodes: -2}); err == nil {
		t.Error("negative NUMANodes must be rejected")
	}
}

// TestPoolNodeAffineHome: under a synthetic multi-node topology, every
// created set's home node is a real node, and with an explicit single-node
// topology all sets keep home node 0 (the seed behaviour).
func TestPoolNodeAffineHome(t *testing.T) {
	bp := numaPool(t, 8<<20, 4, 2)
	if bp.NUMANodes() != 2 {
		t.Fatalf("NUMANodes = %d, want 2", bp.NUMANodes())
	}
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		s, err := bp.CreateSet(SetSpec{Name: fmt.Sprintf("s%d", i), PageSize: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		if n := s.HomeNode(); n < 0 || n >= 2 {
			t.Fatalf("set %d home node = %d", i, n)
		} else {
			seen[n] = true
		}
	}
	// The fake topology's default current-CPU walk visits both nodes, so
	// homes must not all collapse onto one node.
	if len(seen) != 2 {
		t.Errorf("8 sets homed on nodes %v, want both nodes used", seen)
	}

	arr, err := disk.NewArray(t.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	single, err := NewPool(PoolConfig{Memory: 8 << 20, Array: arr, AllocShards: 4, Topology: numa.SingleNode()})
	if err != nil {
		t.Fatal(err)
	}
	s, err := single.CreateSet(SetSpec{Name: "s", PageSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.HomeNode() != 0 {
		t.Errorf("single-node home node = %d, want 0", s.HomeNode())
	}
}

// TestPoolCrossNodeDrain: one set must be able to pin nearly the whole pool
// even when its home node's shards cover only half of it — the allocator
// crosses the interconnect (counting steals) instead of reporting
// ErrNoEvictable while remote shards hold free memory.
func TestPoolCrossNodeDrain(t *testing.T) {
	const pageSize = 64 << 10
	bp := numaPool(t, 4<<20, 4, 2)
	s, err := bp.CreateSet(SetSpec{Name: "hog", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	var pages []*Page
	for {
		p, err := s.NewPage()
		if err != nil {
			if !errors.Is(err, ErrNoEvictable) {
				t.Fatalf("NewPage: %v", err)
			}
			break
		}
		pages = append(pages, p) // keep pinned: eviction can never help
	}
	// 4 MiB pool, 64 KiB pages: well past the two home-node shards' ~32.
	if len(pages) < 48 {
		t.Fatalf("only %d pinned pages before OOM; cross-node drain failed", len(pages))
	}
	if bp.Stats().CrossNodeSteals.Load() == 0 {
		t.Error("CrossNodeSteals = 0 after overflowing the home node")
	}
	view := bp.snapshot()
	if len(view.NodeUsed) != 2 {
		t.Fatalf("PolicyView.NodeUsed len = %d, want 2", len(view.NodeUsed))
	}
	if view.NodeUsed[0] == 0 || view.NodeUsed[1] == 0 {
		t.Errorf("NodeUsed = %v, want both nodes carrying pages", view.NodeUsed)
	}
	if view.CrossNodeSteals == 0 {
		t.Error("PolicyView.CrossNodeSteals = 0 after cross-node overflow")
	}
	var sum int64
	for _, u := range view.NodeUsed {
		sum += u
	}
	if sum != bp.UsedBytes() {
		t.Errorf("NodeUsed sums to %d, UsedBytes = %d", sum, bp.UsedBytes())
	}
	for _, p := range pages {
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
	if got := bp.UsedBytes(); got != 0 {
		t.Errorf("UsedBytes = %d after drop", got)
	}
}

// TestPoolNUMAStress is the -race stress for the node-affine path:
// concurrent CreateSet/alloc/free across a fake 2-node topology under real
// memory pressure, with interleaved per-shard consistency checks, then the
// residency-gauge and per-node accounting invariants at quiescence.
func TestPoolNUMAStress(t *testing.T) {
	const (
		pageSize = 4 << 10
		workers  = 8
		iters    = 300
	)
	bp := numaPool(t, 8<<20, 4, 2)

	var workersWG sync.WaitGroup
	errCh := make(chan error, workers+1)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			gen := 0
			s, err := bp.CreateSet(SetSpec{Name: fmt.Sprintf("w%d.%d", w, gen), PageSize: pageSize})
			if err != nil {
				fail(err)
				return
			}
			for it := 0; it < iters; it++ {
				p, err := s.NewPage()
				if err != nil {
					fail(fmt.Errorf("worker %d: NewPage: %w", w, err))
					return
				}
				stamp(p.Bytes(), int64(w), p.Num())
				if err := s.Unpin(p, rng.Intn(2) == 0); err != nil {
					fail(err)
					return
				}
				// Recycle the set periodically: fresh CreateSet calls keep
				// re-running the node-affine home placement under load.
				if s.NumPages() >= 48 {
					if err := bp.DropSet(s); err != nil {
						fail(fmt.Errorf("worker %d: DropSet: %w", w, err))
						return
					}
					gen++
					s, err = bp.CreateSet(SetSpec{Name: fmt.Sprintf("w%d.%d", w, gen), PageSize: pageSize})
					if err != nil {
						fail(err)
						return
					}
				}
			}
			if err := bp.DropSet(s); err != nil {
				fail(err)
			}
		}(w)
	}
	stop := make(chan struct{})
	var checkerWG sync.WaitGroup
	checkerWG.Add(1)
	go func() {
		defer checkerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := bp.alloc.CheckConsistency(); err != nil {
				fail(fmt.Errorf("mid-stress shard check: %w", err))
				return
			}
			if used := bp.NodeUsedBytes(); len(used) != 2 {
				fail(fmt.Errorf("NodeUsedBytes len = %d mid-stress", len(used)))
				return
			}
		}
	}()
	workersWG.Wait()
	close(stop)
	checkerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := bp.UsedBytes(); got != 0 {
		t.Errorf("UsedBytes = %d after dropping every set, want 0", got)
	}
	var perNode int64
	for _, u := range bp.NodeUsedBytes() {
		perNode += u
	}
	if perNode != 0 {
		t.Errorf("NodeUsedBytes sums to %d at quiescence, want 0", perNode)
	}
	if err := bp.alloc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolSingleShardSeedBehaviourUnderFakeNUMA: AllocShards=1 must pin the
// entire topology onto shard 0 — home node 0 for every set, zero cross-node
// steals — no matter how many synthetic nodes the topology reports. The
// pool-level guarantee behind the allocator-level seed-equivalence test.
func TestPoolSingleShardSeedBehaviourUnderFakeNUMA(t *testing.T) {
	bp := numaPool(t, 4<<20, 1, 4)
	if bp.AllocatorShards() != 1 {
		t.Fatalf("AllocatorShards = %d, want 1", bp.AllocatorShards())
	}
	for i := 0; i < 6; i++ {
		s, err := bp.CreateSet(SetSpec{Name: fmt.Sprintf("s%d", i), PageSize: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		if s.HomeNode() != 0 {
			t.Errorf("set %d home node = %d with one shard, want 0", i, s.HomeNode())
		}
		for j := 0; j < 16; j++ {
			p, err := s.NewPage()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Unpin(p, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := bp.Stats().CrossNodeSteals.Load(); got != 0 {
		t.Errorf("CrossNodeSteals = %d with one shard, want 0", got)
	}
}
