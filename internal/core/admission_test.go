package core

import (
	"fmt"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitEvictorIdle waits until no daemon goroutine is live.
func waitEvictorIdle(t *testing.T, bp *BufferPool) {
	t.Helper()
	e := bp.evictor
	waitFor(t, 5*time.Second, func() bool {
		e.mu.Lock()
		defer e.mu.Unlock()
		return !e.running
	}, "eviction daemon to idle")
}

// checkResidencyGauges verifies every set's residentBytes gauge matches its
// resident map exactly: the admission counters must be wound on page entry
// and unwound exactly once on every release path (eviction, DropSet), and
// not at all when a failed spill keeps the page resident.
func checkResidencyGauges(t *testing.T, sets []*LocalitySet) {
	t.Helper()
	for _, s := range sets {
		s.mu.Lock()
		want := int64(len(s.resident)) * s.pageSize
		got := s.residentBytes.Load()
		s.mu.Unlock()
		if got != want {
			t.Errorf("set %s: ResidentBytes gauge = %d, resident map holds %d bytes", s.Name(), got, want)
		}
	}
}

// TestQuotaSpecValidation: admission fields must be sane at CreateSet time.
func TestQuotaSpecValidation(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	for _, spec := range []SetSpec{
		{Name: "negq", PageSize: 4096, MemoryQuota: -1},
		{Name: "negw", PageSize: 4096, Weight: -0.5},
		{Name: "tiny", PageSize: 4096, MemoryQuota: 4095},
		{Name: "huge", PageSize: 4096, MemoryQuota: 2 << 20},
	} {
		if _, err := bp.CreateSet(spec); err == nil {
			t.Errorf("CreateSet(%+v) succeeded, want error", spec)
		}
	}
	s, err := bp.CreateSet(SetSpec{Name: "ok", PageSize: 4096, MemoryQuota: 8192, Weight: 2})
	if err != nil {
		t.Fatalf("valid quota+weight spec rejected: %v", err)
	}
	if s.MemoryQuota() != 8192 || s.Weight() != 2 {
		t.Errorf("gauges = (%d, %g), want (8192, 2)", s.MemoryQuota(), s.Weight())
	}
	// An explicit quota takes precedence over the weight share.
	if got := s.Entitlement(); got != 8192 {
		t.Errorf("Entitlement = %d, want the 8192-byte quota", got)
	}
}

// TestEntitlementMath covers the three entitlement classes: explicit
// quota, weight-proportional share, and unconstrained (whole arena).
func TestEntitlementMath(t *testing.T) {
	const mem = 1 << 20
	bp := newTestPool(t, mem, nil)
	q, _ := bp.CreateSet(SetSpec{Name: "q", PageSize: 4096, MemoryQuota: 64 << 10})
	w1, _ := bp.CreateSet(SetSpec{Name: "w1", PageSize: 4096, Weight: 1})
	w3, _ := bp.CreateSet(SetSpec{Name: "w3", PageSize: 4096, Weight: 3})
	free, _ := bp.CreateSet(SetSpec{Name: "free", PageSize: 4096})
	if got := q.Entitlement(); got != 64<<10 {
		t.Errorf("quota set entitlement = %d, want %d", got, 64<<10)
	}
	if got := w1.Entitlement(); got != mem/4 {
		t.Errorf("weight-1 entitlement = %d, want %d (1/4 of the pool)", got, mem/4)
	}
	if got := w3.Entitlement(); got != 3*mem/4 {
		t.Errorf("weight-3 entitlement = %d, want %d (3/4 of the pool)", got, 3*mem/4)
	}
	if got := free.Entitlement(); got != mem {
		t.Errorf("unconstrained entitlement = %d, want the whole %d-byte arena", got, mem)
	}
	// Dropping a weighted set redistributes the shares.
	if err := bp.DropSet(w3); err != nil {
		t.Fatal(err)
	}
	if got := w1.Entitlement(); got != mem {
		t.Errorf("after dropping w3, w1 entitlement = %d, want %d", got, mem)
	}
}

// TestQuotaRespected: a set with a hard quota streaming far more data than
// the quota allows must converge back to at most its quota via
// self-eviction — with no pool-wide memory pressure at all (the rest of
// the arena stays free).
func TestQuotaRespected(t *testing.T) {
	const pageSize = 4096
	bp := newTestPool(t, 64*pageSize, nil)
	quota := int64(8 * pageSize)
	s, err := bp.CreateSet(SetSpec{Name: "capped", PageSize: pageSize, MemoryQuota: quota})
	if err != nil {
		t.Fatal(err)
	}
	const total = 32
	for i := 0; i < total; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		stamp(p.Bytes(), 11, p.Num())
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return s.ResidentBytes() <= quota },
		fmt.Sprintf("resident bytes (%d) to drop to the %d-byte quota", s.ResidentBytes(), quota))
	if bp.Stats().Spills.Load() == 0 {
		t.Error("self-eviction of dirty write-back pages must spill them")
	}
	checkResidencyGauges(t, []*LocalitySet{s})
	// Every page, evicted or resident, must read back intact.
	for num := int64(0); num < total; num++ {
		p, err := s.Pin(num)
		if err != nil {
			t.Fatalf("Pin(%d): %v", num, err)
		}
		if err := checkStamp(p.Bytes(), 11, num); err != nil {
			t.Error(err)
		}
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
}

// TestOverQuotaSelfEvictsBeforeCrossSetSteal: while an over-quota set
// hammers the pool into pressure, a well-behaved unconstrained tenant must
// not lose a single resident page — the aggressor's growth is fed
// exclusively by its own overage. The pool is sized with a little headroom
// over the two tenants' combined footprint (16 of 20 pages): committing
// entitlements to 100% of the arena would leave free memory permanently
// below the background low watermark, and those watermark rounds reclaim
// by policy cost, not by fairness.
func TestOverQuotaSelfEvictsBeforeCrossSetSteal(t *testing.T) {
	const pageSize = 4096
	bp := newTestPool(t, 20*pageSize, nil)
	polite, err := bp.CreateSet(SetSpec{Name: "polite", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	const politePages = 8
	for i := 0; i < politePages; i++ {
		p, err := polite.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		stamp(p.Bytes(), 21, p.Num())
		if err := polite.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	aggr, err := bp.CreateSet(SetSpec{Name: "aggr", PageSize: pageSize, MemoryQuota: 8 * pageSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		p, err := aggr.NewPage()
		if err != nil {
			t.Fatalf("aggressor NewPage %d: %v", i, err)
		}
		stamp(p.Bytes(), 22, p.Num())
		if err := aggr.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
		if got := polite.ResidentPages(); got != politePages {
			t.Fatalf("after %d aggressor pages the polite set holds %d resident pages, want %d: cross-set steal before self-eviction", i+1, got, politePages)
		}
	}
	if polite.SpillWrites() != 0 {
		t.Errorf("polite set absorbed %d spill writes, want 0", polite.SpillWrites())
	}
	if aggr.SpillWrites() == 0 {
		t.Error("aggressor streamed 60 dirty pages through an 8-page quota without spilling")
	}
	checkResidencyGauges(t, []*LocalitySet{polite, aggr})
	for _, s := range []*LocalitySet{polite, aggr} {
		if err := bp.DropSet(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWeightProportionalSplit: two weighted tenants contending for the
// whole pool settle at a residency split proportional to their weights.
// The first tenant is deliberately allowed to bloat far past its share
// while it has the pool to itself (weights bind only under pressure), and
// is then squeezed back to its entitlement by the second tenant's growth.
func TestWeightProportionalSplit(t *testing.T) {
	const pageSize = 4096
	const pages = 32
	bp := newTestPool(t, pages*pageSize, nil)
	a, err := bp.CreateSet(SetSpec{Name: "a", PageSize: pageSize, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bp.CreateSet(SetSpec{Name: "b", PageSize: pageSize, Weight: 3})
	if err != nil {
		t.Fatal(err)
	}
	entA, entB := int64(pages*pageSize/4), int64(3*pages*pageSize/4)
	if a.Entitlement() != entA || b.Entitlement() != entB {
		t.Fatalf("entitlements = (%d, %d), want (%d, %d)", a.Entitlement(), b.Entitlement(), entA, entB)
	}
	// Alone, tenant a may fill the pool well past its 1/4 share: weight
	// entitlements must not spill anything while memory is idle.
	for i := 0; i < pages; i++ {
		p, err := a.NewPage()
		if err != nil {
			t.Fatalf("a.NewPage %d: %v", i, err)
		}
		stamp(p.Bytes(), 31, p.Num())
		if err := a.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	if a.ResidentBytes() <= entA {
		t.Fatalf("a.ResidentBytes = %d: expected the idle pool to let a bloat past its %d-byte share", a.ResidentBytes(), entA)
	}
	// Tenant b's growth squeezes a back toward its entitlement.
	for i := 0; i < 3*pages; i++ {
		p, err := b.NewPage()
		if err != nil {
			t.Fatalf("b.NewPage %d: %v", i, err)
		}
		stamp(p.Bytes(), 32, p.Num())
		if err := b.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	waitEvictorIdle(t, bp)
	slack := int64(3 * pageSize) // one policy batch of rounding room
	if got := a.ResidentBytes(); got > entA+slack {
		t.Errorf("a.ResidentBytes = %d after contention, want <= entitlement %d (+%d slack)", got, entA, slack)
	}
	if got := b.ResidentBytes(); got < entB-3*slack {
		t.Errorf("b.ResidentBytes = %d after contention, want near its %d-byte entitlement", got, entB)
	}
	checkResidencyGauges(t, []*LocalitySet{a, b})
	for _, s := range []*LocalitySet{a, b} {
		if err := bp.DropSet(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUnconstrainedPoolSkipsFairnessPass: when no spec sets a quota or a
// weight, every entitlement equals the arena, the fairness pre-pass never
// fires, and eviction behaves exactly like the pre-admission pool — the
// backward-compat guarantee for all existing workloads.
func TestUnconstrainedPoolSkipsFairnessPass(t *testing.T) {
	const pageSize = 4096
	bp := newTestPool(t, 5*pageSize, nil)
	s, err := bp.CreateSet(SetSpec{Name: "plain", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Entitlement(); got != bp.Capacity() {
		t.Fatalf("Entitlement = %d, want the whole %d-byte arena", got, bp.Capacity())
	}
	const total = 16
	for i := 0; i < total; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		stamp(p.Bytes(), 41, p.Num())
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
		// Even with the pool saturated, no set is ever over-entitled.
		if view := bp.snapshot().overEntitled(false); view != nil {
			t.Fatalf("fairness pass engaged on an unconstrained pool: %d over-entitled sets", len(view.Sets))
		}
	}
	if bp.Stats().Evictions.Load() == 0 {
		t.Fatal("seed-style eviction should have run (16 pages through a 5-page pool)")
	}
	for num := int64(0); num < total; num++ {
		p, err := s.Pin(num)
		if err != nil {
			t.Fatalf("Pin(%d): %v", num, err)
		}
		if err := checkStamp(p.Bytes(), 41, num); err != nil {
			t.Error(err)
		}
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}
	checkResidencyGauges(t, []*LocalitySet{s})
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
	if got := s.ResidentBytes(); got != 0 {
		t.Errorf("ResidentBytes = %d after DropSet, want 0", got)
	}
}

// TestCapToOverage: one fairness round takes no more than each set's
// overage from it, but always at least one page per selected set.
func TestCapToOverage(t *testing.T) {
	mk := func(pageSize, resident, entitlement int64) *SetSnapshot {
		return &SetSnapshot{PageSize: pageSize, ResidentBytes: resident, Entitlement: entitlement}
	}
	oneOver := mk(4096, 5*4096, 4*4096)  // one page over
	wayOver := mk(4096, 16*4096, 4*4096) // twelve pages over
	refs := func(s *SetSnapshot, n int) []PageRef {
		out := make([]PageRef, n)
		for i := range out {
			out[i] = PageRef{Set: s, Num: int64(i)}
		}
		return out
	}
	got := capToOverage(append(refs(oneOver, 4), refs(wayOver, 4)...))
	counts := map[*SetSnapshot]int{}
	for _, r := range got {
		counts[r.Set]++
	}
	if counts[oneOver] != 1 {
		t.Errorf("one-page-over set contributes %d victims, want exactly 1", counts[oneOver])
	}
	if counts[wayOver] != 4 {
		t.Errorf("way-over set contributes %d victims, want all 4 offered (still below its overage)", counts[wayOver])
	}
}
