package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pangea/internal/disk"
	"pangea/internal/locking"
	"pangea/internal/memory"
	"pangea/internal/numa"
	"pangea/internal/pfs"
)

// Policy selects eviction victims when the buffer pool runs out of memory.
// SelectVictims receives an immutable PolicyView snapshot and runs without
// any pool lock held; it may retain nothing from the view after returning.
// Returning an empty slice means nothing is evictable right now; returning
// an error aborts the allocations waiting on memory (DBMIN's blocking
// behaviour surfaces this way).
type Policy interface {
	Name() string
	SelectVictims(view *PolicyView) ([]PageRef, error)
}

// IOProfile carries the profiled per-page I/O costs v_r and v_w used by the
// priority model (§6). Only their ratio matters for victim ordering.
type IOProfile struct {
	ReadCost  float64 // v_r: profiled time to read one page from disk
	WriteCost float64 // v_w: profiled time to write one page to disk
}

// PoolConfig configures one node's unified buffer pool.
type PoolConfig struct {
	// Memory is the shared arena size in bytes (the paper's anonymous-mmap
	// region, §5).
	Memory int64
	// Array is the node's set of disk drives.
	Array *disk.Array
	// Policy picks eviction victims; nil selects the paper's data-aware
	// policy.
	Policy Policy
	// Horizon is the time horizon t (in ticks) of the reuse probability
	// p_reuse = 1 − e^{−λt}. Defaults to 1, the linear-approximation
	// regime discussed in §6.
	Horizon float64
	// Profile holds v_r/v_w; both default to 1.
	Profile IOProfile
	// AllocTimeout bounds how long an allocation waits without progress
	// (no memory reclaimed, no page unpinned) before failing. Defaults
	// to 5s.
	AllocTimeout time.Duration
	// LowWater and HighWater are the eviction daemon's free-memory
	// watermarks in bytes, compared against free memory aggregated across
	// every allocator shard: when total free memory falls below LowWater
	// the daemon starts evicting in the background. While allocations are
	// blocked it keeps going until free memory reaches HighWater; with no
	// waiter left it stops as soon as free memory is back above LowWater,
	// so it never spills dirty pages nobody is waiting for just to reach
	// the higher mark. Defaults are Memory/16 and Memory/8.
	LowWater  int64
	HighWater int64
	// AllocShards is the number of TLSF allocator shards (rounded to a
	// power of two, each shard at least 1 MiB). 0 selects ~GOMAXPROCS;
	// 1 restores the seed's single shared allocator; negative is rejected.
	// The effective count is AllocatorShards.
	AllocShards int
	// Topology is the machine's NUMA topology. Allocator shards are
	// partitioned across its nodes, each shard's arena region is bound to
	// its node (mmap-backed arenas on real multi-socket hardware), and a
	// locality set's home shard is chosen on the node of the worker that
	// creates it. nil selects numa.Discover(), which honours the
	// PANGEA_FAKE_NUMA override; single-node machines keep the exact
	// pre-NUMA behaviour.
	Topology numa.Topology
	// NUMANodes overrides Topology with a synthetic N-node shape
	// (numa.NewFake over GOMAXPROCS CPUs) so tests and experiments can
	// exercise the cross-node paths on any machine. 0 defers to Topology;
	// negative is rejected.
	NUMANodes int
	// ReadAhead is the automatic prefetch window in pages for sets with a
	// declared sequential reading pattern: a demand miss — or the first
	// reference to a frame the prefetcher loaded — schedules asynchronous
	// reads of the next ReadAhead pages through the per-drive read queues.
	// 0 selects the default of DefaultReadAheadPerDrive pages per drive in
	// the array (the window's job is to keep every drive busy — deeper
	// speculation only displaces pages a looping reader would have re-hit);
	// negative disables automatic read-ahead (explicit LocalitySet.Prefetch
	// hints still work).
	ReadAhead int
}

// PoolStats counts buffer pool activity.
type PoolStats struct {
	Evictions   atomic.Int64 // pages evicted
	Spills      atomic.Int64 // dirty pages written back on eviction
	Loads       atomic.Int64 // pages read from disk on pin miss
	FlushWrites atomic.Int64 // write-through flushes at unpin time
	// SpillsInFlight is the number of victim write-backs currently queued
	// on or executing in the per-drive spill writers. It is zero whenever
	// the daemon is between batches: evictOnce waits for the whole batch
	// before releasing any page frame.
	SpillsInFlight atomic.Int64
	// CrossNodeSteals counts allocations that crossed the NUMA
	// interconnect: page frames served by an allocator shard on a
	// different node than the home shard's, after the home node was
	// exhausted. Bumped by the allocator itself; stays zero on single-node
	// topologies.
	CrossNodeSteals atomic.Int64
	// PrefetchesIssued counts speculative page reads handed to the
	// per-drive read queues. PrefetchHits counts prefetched frames a Pin
	// later referenced (the speculation paid off); PrefetchWasted counts
	// prefetched frames evicted or dropped before any reference. Issued
	// reads still in flight — or resident and not yet referenced — are in
	// neither bucket, so Hits+Wasted ≤ Issued at any instant.
	PrefetchesIssued atomic.Int64
	PrefetchHits     atomic.Int64
	PrefetchWasted   atomic.Int64
	// LoadsInFlight is the number of page loads — demand misses and
	// prefetches — currently queued on or executing in the read path.
	LoadsInFlight atomic.Int64
	// ZoneMapChecks counts pages a scan evaluated against a set's zone-map
	// summaries before pinning; ZoneMapSkips counts the subset those checks
	// pruned — pages a selective scan never pinned, read, or speculated on.
	// Bumped through LocalitySet.NoteZoneMap by the query layer.
	ZoneMapChecks atomic.Int64
	ZoneMapSkips  atomic.Int64
	// IndexChecks counts pages a point-lookup scan evaluated against a
	// set's microindex; IndexHits counts the candidate subset the index
	// kept — checks minus hits is the pages dropped before the zone-map
	// pass, any pin, or any I/O. Bumped through LocalitySet.NoteMicroindex
	// by the query layer.
	IndexChecks atomic.Int64
	IndexHits   atomic.Int64
	// SideObjectRebuilds counts persisted side objects (zone maps,
	// microindexes) that were present but unusable — torn by a crash
	// mid-write, or undecodable — and were healed by a full-scan rebuild.
	// Absent side objects (seed sets) rebuild without bumping it.
	SideObjectRebuilds atomic.Int64
}

// ErrNoEvictable is returned when an allocation cannot be satisfied because
// every resident page is pinned or the policy refuses to evict.
var ErrNoEvictable = errors.New("core: buffer pool exhausted and nothing evictable")

// BufferPool is the node-local unified buffer pool (§5): one shared memory
// region holding user data, job data and execution data for every
// application on the node, with a TLSF allocator carving variable-sized
// pages out of it and a single paging policy across all locality sets.
//
// Concurrency model: the pool itself holds only a registry lock (regMu,
// guarding the set tables) and atomics (logical clock, peak usage). All
// page state — resident maps, pin counts, dirty flags, recency — is guarded
// by the owning LocalitySet's lock, so traffic on different sets never
// contends. Spill I/O runs in a background eviction daemon; allocators
// block on the daemon's broadcast channel instead of polling.
type BufferPool struct {
	cfg   PoolConfig
	topo  numa.Topology
	arena *memory.Arena
	alloc memory.Allocator
	array *disk.Array

	regMu    locking.RWMutex
	sets     map[SetID]*LocalitySet
	byName   map[string]*LocalitySet
	reserved map[string]bool // names mid-CreateSet, not yet in byName
	freeIDs  []SetID         // IDs returned by failed CreateSet calls
	nextID   SetID

	evictor *evictor
	spill   *spillPipeline
	load    *loadPipeline

	// readAhead is the resolved PoolConfig.ReadAhead window (0 = automatic
	// read-ahead disabled). Immutable after NewPool.
	readAhead int

	tick atomic.Int64
	peak atomic.Int64

	// loadStarved is the speculative-reclaim budget, in bytes: how much
	// memory prefetch hints asked for and were refused since the eviction
	// daemon last caught up. The daemon treats it as watermark pressure and
	// pays it down as it frees memory (see noteStarved/consumeStarved), so a
	// sequential scan's read-ahead window keeps rolling instead of stalling
	// the moment the pool fills.
	loadStarved atomic.Int64

	stats PoolStats
}

// NewPool builds a buffer pool over a fresh arena.
func NewPool(cfg PoolConfig) (*BufferPool, error) {
	if cfg.Memory <= 0 {
		return nil, fmt.Errorf("core: invalid pool memory %d", cfg.Memory)
	}
	if cfg.Array == nil {
		return nil, errors.New("core: pool requires a disk array")
	}
	if cfg.AllocShards < 0 {
		return nil, fmt.Errorf("core: negative allocator shard count %d", cfg.AllocShards)
	}
	if cfg.NUMANodes < 0 {
		return nil, fmt.Errorf("core: negative NUMA node count %d", cfg.NUMANodes)
	}
	if cfg.Policy == nil {
		cfg.Policy = NewDataAware()
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 1
	}
	if cfg.Profile.ReadCost == 0 {
		cfg.Profile.ReadCost = 1
	}
	if cfg.Profile.WriteCost == 0 {
		cfg.Profile.WriteCost = 1
	}
	if cfg.AllocTimeout == 0 {
		cfg.AllocTimeout = 5 * time.Second
	}
	if cfg.LowWater == 0 {
		cfg.LowWater = cfg.Memory / 16
	}
	if cfg.HighWater == 0 {
		cfg.HighWater = cfg.Memory / 8
	}
	if cfg.HighWater < cfg.LowWater {
		cfg.HighWater = cfg.LowWater
	}
	topo := cfg.Topology
	if cfg.NUMANodes > 0 {
		topo = numa.NewFakeAuto(cfg.NUMANodes)
	}
	if topo == nil {
		topo = numa.Discover()
	}
	arena := memory.NewNUMAArena(cfg.Memory, topo)
	bp := &BufferPool{
		cfg:      cfg,
		topo:     topo,
		arena:    arena,
		array:    cfg.Array,
		sets:     make(map[SetID]*LocalitySet),
		byName:   make(map[string]*LocalitySet),
		reserved: make(map[string]bool),
	}
	bp.regMu.Init(locking.RankRegistry)
	bp.readAhead = cfg.ReadAhead
	if bp.readAhead == 0 {
		bp.readAhead = DefaultReadAheadPerDrive * cfg.Array.Len()
	}
	if bp.readAhead < 0 {
		bp.readAhead = 0
	}
	bp.alloc = memory.NewShardedTLSFNUMA(arena, cfg.AllocShards, topo, &bp.stats.CrossNodeSteals)
	bp.evictor = newEvictor(bp)
	bp.spill = newSpillPipeline(bp, cfg.Array)
	bp.load = newLoadPipeline(bp, cfg.Array)
	return bp, nil
}

// PageLayout selects how records are arranged inside a set's pages.
type PageLayout uint8

const (
	// LayoutRow is the seed behaviour: records stored contiguously with
	// length framing (services row pages). The zero value, so existing
	// specs are untouched.
	LayoutRow PageLayout = iota
	// LayoutColumnar stores fixed-width records transposed into per-column
	// segments within each page, for vectorized scans. Requires
	// SetSpec.Columns.
	LayoutColumnar
)

func (l PageLayout) String() string {
	switch l {
	case LayoutRow:
		return "row"
	case LayoutColumnar:
		return "columnar"
	default:
		return fmt.Sprintf("layout(%d)", uint8(l))
	}
}

// SetSpec describes a locality set to create.
type SetSpec struct {
	Name       string
	PageSize   int64
	Durability DurabilityType // WriteBack unless specified
	Pinned     bool           // Location attribute

	// Layout selects the page layout; LayoutRow (zero) keeps the seed's
	// record-framed pages. Columnar sets additionally need Columns.
	Layout PageLayout
	// Columns gives the fixed byte width of each column for LayoutColumnar
	// sets (the record size is their sum). Must be empty for LayoutRow;
	// column names and offsets live in the services schema descriptor, the
	// pool only needs the widths to lay segments out.
	Columns []int

	// MemoryQuota caps the set's resident bytes (admission control): growth
	// past the quota triggers self-eviction — the daemon reclaims the
	// overage from this set, and under pool-wide pressure over-quota sets
	// are reclaimed from before any under-quota tenant. 0 means no quota.
	MemoryQuota int64
	// Weight is the set's fair-share weight: under memory pressure the set
	// is entitled to Weight/ΣWeights of the arena (summed over all weighted
	// sets), and sets holding more than their entitlement are reclaimed
	// from first. Unlike MemoryQuota, a weight entitlement is enforced only
	// under pressure — a weighted set may use idle memory freely. 0 leaves
	// the set unweighted (entitled to the whole arena, the pre-admission
	// behaviour).
	Weight float64
}

// CreateSet registers a new locality set and its file instance. The name
// and ID are reserved atomically before the pfs file is created, so two
// concurrent CreateSet calls for the same name can never both pass the
// duplicate check (the loser would otherwise become an unreachable orphan
// in the registry with a leaked pfs file); if pfs.Create fails, the
// reservation is released and the ID recycled.
func (bp *BufferPool) CreateSet(spec SetSpec) (*LocalitySet, error) {
	if spec.PageSize <= 0 || spec.PageSize > bp.cfg.Memory {
		return nil, fmt.Errorf("core: page size %d invalid for pool of %d bytes", spec.PageSize, bp.cfg.Memory)
	}
	// A page cannot span allocator shards, so reject sizes no shard can
	// ever hold — otherwise NewPage would block for the full AllocTimeout
	// on an empty pool and fail with a misleading ErrNoEvictable.
	if max := bp.alloc.MaxAlloc(); spec.PageSize > max {
		return nil, fmt.Errorf("core: page size %d exceeds the %d-byte shard maximum (pool %d bytes in %d allocator shards)",
			spec.PageSize, max, bp.cfg.Memory, bp.alloc.Shards())
	}
	if spec.MemoryQuota < 0 || spec.Weight < 0 {
		return nil, fmt.Errorf("core: set %q: negative quota/weight (%d, %g)", spec.Name, spec.MemoryQuota, spec.Weight)
	}
	if spec.MemoryQuota > 0 && spec.MemoryQuota < spec.PageSize {
		return nil, fmt.Errorf("core: set %q: quota %d below one %d-byte page", spec.Name, spec.MemoryQuota, spec.PageSize)
	}
	if spec.MemoryQuota > bp.cfg.Memory {
		return nil, fmt.Errorf("core: set %q: quota %d exceeds the %d-byte pool", spec.Name, spec.MemoryQuota, bp.cfg.Memory)
	}
	switch spec.Layout {
	case LayoutRow:
		if len(spec.Columns) > 0 {
			return nil, fmt.Errorf("core: set %q: column widths given for a row-layout set", spec.Name)
		}
	case LayoutColumnar:
		if len(spec.Columns) == 0 {
			return nil, fmt.Errorf("core: set %q: columnar layout needs column widths", spec.Name)
		}
		rowSize := int64(0)
		for i, w := range spec.Columns {
			if w <= 0 {
				return nil, fmt.Errorf("core: set %q: column %d has width %d", spec.Name, i, w)
			}
			rowSize += int64(w)
		}
		// The columnar page header is 16 bytes plus one u32 width per
		// column (see services); at least one row must fit under it.
		if hdr := int64(16 + 4*len(spec.Columns)); hdr+rowSize > spec.PageSize {
			return nil, fmt.Errorf("core: set %q: page size %d below columnar header %d + one %d-byte row",
				spec.Name, spec.PageSize, hdr, rowSize)
		}
	default:
		return nil, fmt.Errorf("core: set %q: unknown page layout %d", spec.Name, spec.Layout)
	}
	bp.regMu.Lock()
	if _, dup := bp.byName[spec.Name]; dup || bp.reserved[spec.Name] {
		bp.regMu.Unlock()
		return nil, fmt.Errorf("core: set %q already exists", spec.Name)
	}
	bp.reserved[spec.Name] = true
	var id SetID
	if n := len(bp.freeIDs); n > 0 {
		id = bp.freeIDs[n-1]
		bp.freeIDs = bp.freeIDs[:n-1]
	} else {
		id = bp.nextID
		bp.nextID++
	}
	bp.regMu.Unlock()

	file, err := pfs.Create(bp.array, fmt.Sprintf("%s.%d", spec.Name, id), spec.PageSize)
	if err != nil {
		bp.regMu.Lock()
		delete(bp.reserved, spec.Name)
		bp.freeIDs = append(bp.freeIDs, id)
		bp.regMu.Unlock()
		return nil, err
	}
	// Node-affine home: the set's page memory prefers a shard local to the
	// NUMA node of the worker creating the set — the paper's locality-set
	// model extended down to the DRAM the pages land in. CurrentNode is a
	// hint (the goroutine can migrate), but locality sets are overwhelmingly
	// created and consumed by the same worker, so it is the right prior.
	home := bp.alloc.HomeShardOn(bp.topo.CurrentNode(), int(id))
	s := &LocalitySet{
		pool:     bp,
		id:       id,
		name:     spec.Name,
		pageSize: spec.PageSize,
		layout:   spec.Layout,
		columns:  append([]int(nil), spec.Columns...),
		home:     home,
		homeNode: bp.alloc.NodeOfShard(home),
		quota:    spec.MemoryQuota,
		weight:   spec.Weight,
		attrs:    Attributes{Durability: spec.Durability, Pinned: spec.Pinned},
		file:     file,
		resident: make(map[int64]*Page),
		loading:  make(map[int64]*loadOp),
	}
	s.mu.Init(locking.RankSet)
	s.cond = sync.NewCond(&s.mu)
	bp.regMu.Lock()
	delete(bp.reserved, spec.Name)
	bp.sets[id] = s
	bp.byName[spec.Name] = s
	bp.regMu.Unlock()
	return s, nil
}

// GetSet looks a locality set up by name.
func (bp *BufferPool) GetSet(name string) (*LocalitySet, bool) {
	bp.regMu.RLock()
	defer bp.regMu.RUnlock()
	s, ok := bp.byName[name]
	return s, ok
}

// DropSet releases all of a set's memory and removes its file instance. The
// caller must have unpinned every page first. DropSet waits out any
// in-flight eviction of the set's pages (the daemon may be spilling their
// bytes) and any in-flight load — demand or prefetch, whose reader still
// holds a carved frame — before recycling the memory, so when it returns
// every frame and residency charge has been released exactly once.
func (bp *BufferPool) DropSet(s *LocalitySet) error {
	s.mu.Lock()
	if s.dropped {
		s.mu.Unlock()
		return nil
	}
	for {
		evicting := false
		for _, p := range s.resident {
			if p.pin > 0 {
				num := p.num
				s.mu.Unlock()
				return fmt.Errorf("core: drop set %q: page %d still pinned", s.name, num)
			}
			if p.evicting {
				evicting = true
			}
		}
		if !evicting && len(s.loading) == 0 {
			break
		}
		s.cond.Wait()
	}
	s.dropped = true
	offs := make([]int64, 0, len(s.resident))
	wasted := int64(0)
	for num, p := range s.resident {
		if p.prefetched {
			wasted++
		}
		offs = append(offs, p.off)
		delete(s.resident, num)
	}
	if wasted > 0 {
		bp.stats.PrefetchWasted.Add(wasted)
	}
	// Unwind the residency gauge exactly once per page released here; any
	// in-flight eviction was waited out above, so no page can be released
	// twice. Add (not Store) keeps a double-release visible to the counter
	// invariant the stress tests check.
	s.releaseResident(int64(len(offs)) * s.pageSize)
	s.cond.Broadcast()
	s.mu.Unlock()

	for _, off := range offs {
		bp.alloc.Free(off)
	}
	bp.regMu.Lock()
	delete(bp.sets, s.id)
	delete(bp.byName, s.name)
	bp.regMu.Unlock()
	if len(offs) > 0 {
		bp.evictor.broadcast(nil) // memory reclaimed
	}
	return s.file.Remove()
}

// Sets returns a snapshot of the registered locality sets.
func (bp *BufferPool) Sets() []*LocalitySet {
	bp.regMu.RLock()
	defer bp.regMu.RUnlock()
	out := make([]*LocalitySet, 0, len(bp.sets))
	for _, s := range bp.sets {
		out = append(out, s)
	}
	return out
}

// Capacity returns the pool's arena size in bytes.
func (bp *BufferPool) Capacity() int64 { return bp.cfg.Memory }

// AllocatorShards reports how many TLSF shards the arena was split into.
func (bp *BufferPool) AllocatorShards() int { return bp.alloc.Shards() }

// NUMANodes reports how many NUMA nodes the allocator shards are
// partitioned over (1 on single-node machines).
func (bp *BufferPool) NUMANodes() int { return bp.alloc.NumNodes() }

// NodeUsedBytes returns the arena bytes currently allocated per NUMA node;
// the per-node residency gauges that PolicyView and the cluster's node
// stats expose.
func (bp *BufferPool) NodeUsedBytes() []int64 { return bp.alloc.NodeUsed() }

// Topology returns the topology the pool was built over.
func (bp *BufferPool) Topology() numa.Topology { return bp.topo }

// UsedBytes returns the bytes currently allocated from the arena.
func (bp *BufferPool) UsedBytes() int64 { return bp.alloc.Used() }

// PeakBytes returns the high-water mark of arena usage; the memory-usage
// comparison of Fig 4 reports this.
func (bp *BufferPool) PeakBytes() int64 { return bp.peak.Load() }

// Stats exposes the pool's activity counters.
func (bp *BufferPool) Stats() *PoolStats { return &bp.stats }

// Array returns the node's disk array.
func (bp *BufferPool) Array() *disk.Array { return bp.array }

// SharedMemory exposes the pool's arena. The data proxy hands arena offsets
// to computation threads over the socket so they can touch page bytes
// without copying, the way the paper's computation processes map the
// storage process's shared memory region (§5, Fig 2).
func (bp *BufferPool) SharedMemory() *memory.Arena { return bp.arena }

// entitlement computes a set's fair share of the arena: its explicit
// quota if one is set, else a weight-proportional share of the arena among
// all weighted sets, else the whole arena. Only quota reads hit the alloc
// hot path (via LocalitySet.noteResident); the weight sum is computed here
// on demand for the daemon's snapshots and the per-set gauges.
func (bp *BufferPool) entitlement(s *LocalitySet) int64 {
	if s.quota > 0 || s.weight <= 0 {
		return bp.entitlementWith(0, s)
	}
	bp.regMu.RLock()
	var total float64
	for _, o := range bp.sets {
		total += o.weight
	}
	bp.regMu.RUnlock()
	return bp.entitlementWith(total, s)
}

// entitlementWith is the single home of the entitlement rules — quota
// overrides weight, weight share = Weight/totalWeight of the arena,
// unconstrained sets get the whole arena — shared by the on-demand gauge
// above and the daemon's snapshot (which precomputes totalWeight once per
// round).
func (bp *BufferPool) entitlementWith(totalWeight float64, s *LocalitySet) int64 {
	if s.quota > 0 {
		return s.quota
	}
	if s.weight <= 0 || totalWeight <= 0 {
		return bp.cfg.Memory
	}
	return int64(float64(bp.cfg.Memory) * s.weight / totalWeight)
}

// anyOverQuota reports whether some set holds more resident bytes than its
// hard quota. The eviction daemon uses it to justify self-eviction rounds
// when no allocation is blocked and free memory looks healthy; weight
// entitlements deliberately don't count here — they matter only under
// pressure, when the fairness pass in evictOnce orders the victims.
func (bp *BufferPool) anyOverQuota() bool {
	bp.regMu.RLock()
	defer bp.regMu.RUnlock()
	for _, s := range bp.sets {
		if s.quota > 0 && s.residentBytes.Load() > s.quota {
			return true
		}
	}
	return false
}

// TickNow returns the current logical tick.
func (bp *BufferPool) TickNow() int64 { return bp.tick.Load() }

// nextTick advances the logical clock; every page access calls it.
func (bp *BufferPool) nextTick() int64 { return bp.tick.Add(1) }

// notePeak records a new high-water mark after a successful allocation.
func (bp *BufferPool) notePeak() {
	u := bp.alloc.Used()
	for {
		old := bp.peak.Load()
		if u <= old || bp.peak.CompareAndSwap(old, u) {
			return
		}
	}
}

// allocMem carves size bytes out of the arena for set s, preferring the
// set's home shard (work-stealing into the other shards happens inside the
// allocator). On pressure it kicks the eviction daemon and blocks on its
// broadcast channel until memory is reclaimed, the policy reports an
// error, or the deadline passes — no spill I/O ever runs on this path.
func (bp *BufferPool) allocMem(s *LocalitySet, size int64) (int64, error) {
	e := bp.evictor
	home := s.home
	// charge books the carved frame against the set's admission gauge the
	// instant the allocation lands — before the page is inserted — so the
	// daemon can never snapshot a set mid-growth as innocently under quota;
	// quota overshoot kicks the self-eviction round right here.
	charge := func(off int64) (int64, error) {
		bp.notePeak()
		if res := s.chargeResident(size); s.quota > 0 && res > s.quota {
			e.kick()
		}
		return off, nil
	}
	if off, err := bp.alloc.AllocAffinity(size, home); err == nil {
		if bp.alloc.FreeBytes() < bp.cfg.LowWater {
			e.kick()
		}
		return charge(off)
	}

	e.waiters.Add(1)
	defer e.waiters.Add(-1)
	// Count the blocked demand toward the set's fairness footprint (see
	// LocalitySet.pendingBytes).
	s.chargePending(size)
	defer s.releasePending(size)
	timer := time.NewTimer(bp.cfg.AllocTimeout)
	defer timer.Stop()
	for {
		// Observe before the attempt: any reclaim after this point closes
		// ch, so the retry cannot miss it.
		ch, seq := e.observe()
		off, err := bp.alloc.AllocAffinity(size, home)
		if err == nil {
			return charge(off)
		}
		e.kick()
		select {
		case <-ch:
			// Retry before consulting errSince: a partially failed spill
			// round records its first error but still releases the victims
			// whose writes landed, and freed memory that satisfies this
			// allocation beats reporting another victim's I/O failure. An
			// allocator that stays stuck keeps seeing the error — every
			// failed retry re-kicks the daemon, whose next failing round
			// re-records it.
			if off, aerr := bp.alloc.AllocAffinity(size, home); aerr == nil {
				return charge(off)
			}
			if err := e.errSince(seq); err != nil {
				return 0, err
			}
			// A broadcast signals progress (memory reclaimed or a page
			// unpinned); rearm the timeout so the deadline only triggers
			// while the pool is genuinely stuck — stalled eviction rounds
			// never broadcast. This mirrors the seed's loop, which checked
			// its deadline only when a round evicted nothing.
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(bp.cfg.AllocTimeout)
		case <-timer.C:
			if off, err := bp.alloc.AllocAffinity(size, home); err == nil {
				return charge(off)
			}
			// The daemon may have recorded a policy/spill failure in the
			// same instant the deadline fired (both select cases ready);
			// surface the real cause instead of a bare ErrNoEvictable.
			return 0, e.timeoutErr(seq)
		}
	}
}

// tryAllocMem is allocMem's non-blocking sibling for speculative loads: one
// affinity attempt (so prefetched frames land on the set's home NUMA node,
// like demand frames) with the same charge-at-carve admission accounting,
// but it never enlists the eviction daemon's waiter machinery — a prefetch
// that cannot get memory is skipped, not paid for with synchronous reclaim
// (the caller records the refusal as starved-budget pressure instead; see
// noteStarved). It also refuses to take a set over its hard quota:
// speculation counts against the tenant's entitlement, so it must fit
// inside it. Like allocMem it kicks the daemon when free memory dips below
// the low watermark, keeping background reclaim ahead of the window.
func (bp *BufferPool) tryAllocMem(s *LocalitySet, size int64) (int64, error) {
	if s.quota > 0 && s.residentBytes.Load()+size > s.quota {
		return 0, fmt.Errorf("%w: set %q at its %d-byte quota", errSpecQuota, s.name, s.quota)
	}
	off, err := bp.alloc.AllocAffinity(size, s.home)
	if err != nil {
		return 0, err
	}
	bp.notePeak()
	if res := s.chargeResident(size); s.quota > 0 && res > s.quota {
		// Lost a race against concurrent demand growth: undo rather than
		// let speculation push the tenant over its cap.
		s.releaseResident(size)
		bp.alloc.Free(off)
		return 0, fmt.Errorf("%w: set %q at its %d-byte quota", errSpecQuota, s.name, s.quota)
	}
	if bp.alloc.FreeBytes() < bp.cfg.LowWater {
		bp.evictor.kick()
	}
	return off, nil
}

// noteStarved records size bytes of speculative demand the allocator turned
// away and kicks the eviction daemon. The count is a one-shot reclaim
// budget, not a raised watermark: the daemon keeps background rounds alive
// while free memory is below LowWater plus the budget and pays the budget
// down as it frees (consumeStarved), so a burst of starved hints buys one
// matching burst of reclaim and the pressure then decays — a scan that has
// ended cannot keep draining the pool. If the freed memory is consumed by
// demand instead, the retried hints starve again and re-arm the budget.
// Clamped at pool capacity so a pathological hint stream cannot ask for
// more memory than exists.
func (bp *BufferPool) noteStarved(size int64) {
	if bp.loadStarved.Add(size) > bp.cfg.Memory {
		bp.loadStarved.Store(bp.cfg.Memory)
	}
	bp.evictor.kick()
}

// consumeStarved pays freed bytes against the speculative-reclaim budget.
func (bp *BufferPool) consumeStarved(freed int64) {
	if bp.loadStarved.Load() <= 0 {
		return
	}
	if bp.loadStarved.Add(-freed) < 0 {
		bp.loadStarved.Store(0)
	}
}

// evictOnce runs one round of the paging system (§6) on behalf of the
// eviction daemon. Admission control shapes the round: if any set holds
// more than its entitlement, the policy first sees a view restricted to
// those sets — an over-quota tenant's growth reclaims its own overage
// before it may steal a byte from an under-quota one — with the round's
// take from each set capped at its overage. Only when every set is within
// its share (or the over-entitled ones have nothing evictable) does the
// policy rank the full pool. Without allocation pressure — a blocked
// waiter, free memory under the low watermark, or unpaid starved-prefetch
// budget — only hard quotas justify spilling: weight entitlements bind
// solely when someone actually needs the memory.
func (bp *BufferPool) evictOnce() (bool, error) {
	view := bp.snapshot()
	pressure := bp.evictor.waiters.Load() > 0 ||
		bp.alloc.FreeBytes() < bp.cfg.LowWater+bp.loadStarved.Load()
	if fair := view.overEntitled(!pressure); fair != nil {
		victims, err := bp.cfg.Policy.SelectVictims(fair)
		if err != nil {
			return false, fmt.Errorf("core: paging policy %s: %w", bp.cfg.Policy.Name(), err)
		}
		if victims = capToOverage(victims); len(victims) > 0 {
			evicted, err := bp.evictVictims(victims)
			if evicted > 0 || err != nil {
				return evicted > 0, err
			}
		}
		// The over-entitled sets had nothing reclaimable (pinned or already
		// in flight); fall through to the pool-wide pass, but only under
		// real pressure — a pure quota round must not evict innocents.
	}
	if !pressure {
		return false, nil
	}
	victims, err := bp.cfg.Policy.SelectVictims(view)
	if err != nil {
		return false, fmt.Errorf("core: paging policy %s: %w", bp.cfg.Policy.Name(), err)
	}
	if len(victims) == 0 {
		return false, nil
	}
	evicted, err := bp.evictVictims(victims)
	return evicted > 0, err
}

// capToOverage trims a fairness-pass victim list so one round reclaims at
// most each set's overage (always at least one page per selected set),
// keeping self-eviction proportional: a set one page over its share gives
// up one page, not a full 10% policy batch.
func capToOverage(victims []PageRef) []PageRef {
	taken := make(map[*SetSnapshot]int64, 4)
	out := victims[:0]
	for _, ref := range victims {
		if t := taken[ref.Set]; t > 0 && t >= ref.Set.Overage() {
			continue
		}
		taken[ref.Set] += ref.Set.PageSize
		out = append(out, ref)
	}
	return out
}

// evictVictims claims the policy's chosen victims against live state,
// spills dirty alive pages with no locks held, then recycles the memory;
// it returns how many pages were actually evicted.
func (bp *BufferPool) evictVictims(victims []PageRef) (int, error) {
	// Group the victim refs by owning set in a single pass, preserving
	// policy order within each set (the old per-claim rescan of the whole
	// victims slice made claiming O(sets × victims)).
	type claim struct {
		set    *LocalitySet
		refs   []PageRef
		pages  []*Page
		spills []*Page
	}
	var claims []*claim
	bySet := make(map[*LocalitySet]*claim)
	for _, ref := range victims {
		s := ref.Set.set
		c := bySet[s]
		if c == nil {
			c = &claim{set: s}
			bySet[s] = c
			claims = append(claims, c)
		}
		c.refs = append(c.refs, ref)
	}
	for _, c := range claims {
		s := c.set
		s.mu.Lock()
		if s.dropped {
			s.mu.Unlock()
			continue
		}
		attrs := s.attrs
		for _, ref := range c.refs {
			// Re-validate against live state: the page may have been
			// pinned, evicted or dropped since the snapshot.
			p := s.resident[ref.Num]
			if p == nil || p.pin > 0 || p.evicting {
				continue
			}
			p.evicting = true
			c.pages = append(c.pages, p)
			if p.dirty && !attrs.LifetimeEnded {
				c.spills = append(c.spills, p)
			}
		}
		s.mu.Unlock()
	}

	// Write-back of dirty alive victims, outside all locks: assign every
	// victim its on-disk location (the only step that needs the file's
	// index lock), then fan the writes out by drive to the per-drive
	// writers — a 4-drive array lands ~4 victims concurrently where the
	// old loop wrote them one at a time. writeBatch returns only after
	// every writer in the batch has landed, so no page reference outlives
	// this call and the eviction claims below still cover the frames.
	var jobs []*spillJob
	for _, c := range claims {
		for _, p := range c.spills {
			jobs = append(jobs, &spillJob{set: c.set, page: p, loc: c.set.file.PlacePage(p.num)})
		}
	}
	spillErr := bp.spill.writeBatch(jobs)
	failed := make(map[*Page]bool)
	if spillErr != nil {
		for _, j := range jobs {
			if j.err != nil {
				failed[j.page] = true
			}
		}
	}

	evicted := 0
	for _, c := range claims {
		s := c.set
		var offs []int64
		s.mu.Lock()
		for _, p := range c.pages {
			if failed[p] {
				// This victim's own write-back failed: keep it resident
				// and dirty, and clear the claim so a later round (or a
				// healthy drive) can retry. Victims whose writes landed —
				// and clean victims, which already have an on-disk image —
				// are still released below.
				p.evicting = false
				continue
			}
			p.dirty = false
			p.evicting = false
			if p.prefetched {
				// Reclaimed before any pin referenced it: the speculation
				// was wrong (or too early).
				p.prefetched = false
				bp.stats.PrefetchWasted.Add(1)
			}
			delete(s.resident, p.num)
			s.releaseResident(p.size)
			offs = append(offs, p.off)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		for _, off := range offs {
			bp.alloc.Free(off)
			bp.stats.Evictions.Add(1)
			evicted++
		}
	}
	if spillErr != nil {
		return evicted, fmt.Errorf("core: spill during eviction: %w", spillErr)
	}
	return evicted, nil
}
