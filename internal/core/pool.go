package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pangea/internal/disk"
	"pangea/internal/memory"
	"pangea/internal/pfs"
)

// Policy selects eviction victims when the buffer pool runs out of memory.
// SelectVictims is invoked with the pool mutex held and must only use the
// Policy* accessors. Returning an empty slice means nothing is evictable
// right now; returning an error aborts the allocation (DBMIN's blocking
// behaviour surfaces this way).
type Policy interface {
	Name() string
	SelectVictims(pool *BufferPool) ([]*Page, error)
}

// IOProfile carries the profiled per-page I/O costs v_r and v_w used by the
// priority model (§6). Only their ratio matters for victim ordering.
type IOProfile struct {
	ReadCost  float64 // v_r: profiled time to read one page from disk
	WriteCost float64 // v_w: profiled time to write one page to disk
}

// PoolConfig configures one node's unified buffer pool.
type PoolConfig struct {
	// Memory is the shared arena size in bytes (the paper's anonymous-mmap
	// region, §5).
	Memory int64
	// Array is the node's set of disk drives.
	Array *disk.Array
	// Policy picks eviction victims; nil selects the paper's data-aware
	// policy.
	Policy Policy
	// Horizon is the time horizon t (in ticks) of the reuse probability
	// p_reuse = 1 − e^{−λt}. Defaults to 1, the linear-approximation
	// regime discussed in §6.
	Horizon float64
	// Profile holds v_r/v_w; both default to 1.
	Profile IOProfile
	// AllocTimeout bounds how long an allocation waits for pages to become
	// unpinned before failing. Defaults to 5s.
	AllocTimeout time.Duration
}

// PoolStats counts buffer pool activity.
type PoolStats struct {
	Evictions   atomic.Int64 // pages evicted
	Spills      atomic.Int64 // dirty pages written back on eviction
	Loads       atomic.Int64 // pages read from disk on pin miss
	FlushWrites atomic.Int64 // write-through flushes at unpin time
}

// ErrNoEvictable is returned when an allocation cannot be satisfied because
// every resident page is pinned or the policy refuses to evict.
var ErrNoEvictable = errors.New("core: buffer pool exhausted and nothing evictable")

// BufferPool is the node-local unified buffer pool (§5): one shared memory
// region holding user data, job data and execution data for every
// application on the node, with a TLSF allocator carving variable-sized
// pages out of it and a single paging policy across all locality sets.
type BufferPool struct {
	cfg   PoolConfig
	arena *memory.Arena
	alloc *memory.TLSF
	array *disk.Array

	mu     sync.Mutex
	cond   *sync.Cond
	sets   map[SetID]*LocalitySet
	byName map[string]*LocalitySet
	nextID SetID

	tick atomic.Int64
	peak atomic.Int64

	stats PoolStats
}

// NewPool builds a buffer pool over a fresh arena.
func NewPool(cfg PoolConfig) (*BufferPool, error) {
	if cfg.Memory <= 0 {
		return nil, fmt.Errorf("core: invalid pool memory %d", cfg.Memory)
	}
	if cfg.Array == nil {
		return nil, errors.New("core: pool requires a disk array")
	}
	if cfg.Policy == nil {
		cfg.Policy = NewDataAware()
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 1
	}
	if cfg.Profile.ReadCost == 0 {
		cfg.Profile.ReadCost = 1
	}
	if cfg.Profile.WriteCost == 0 {
		cfg.Profile.WriteCost = 1
	}
	if cfg.AllocTimeout == 0 {
		cfg.AllocTimeout = 5 * time.Second
	}
	arena := memory.NewArena(cfg.Memory)
	bp := &BufferPool{
		cfg:    cfg,
		arena:  arena,
		alloc:  memory.NewTLSF(arena),
		array:  cfg.Array,
		sets:   make(map[SetID]*LocalitySet),
		byName: make(map[string]*LocalitySet),
	}
	bp.cond = sync.NewCond(&bp.mu)
	return bp, nil
}

// SetSpec describes a locality set to create.
type SetSpec struct {
	Name       string
	PageSize   int64
	Durability DurabilityType // WriteBack unless specified
	Pinned     bool           // Location attribute
}

// CreateSet registers a new locality set and its file instance.
func (bp *BufferPool) CreateSet(spec SetSpec) (*LocalitySet, error) {
	if spec.PageSize <= 0 || spec.PageSize > bp.cfg.Memory {
		return nil, fmt.Errorf("core: page size %d invalid for pool of %d bytes", spec.PageSize, bp.cfg.Memory)
	}
	bp.mu.Lock()
	if _, dup := bp.byName[spec.Name]; dup {
		bp.mu.Unlock()
		return nil, fmt.Errorf("core: set %q already exists", spec.Name)
	}
	id := bp.nextID
	bp.nextID++
	bp.mu.Unlock()

	file, err := pfs.Create(bp.array, fmt.Sprintf("%s.%d", spec.Name, id), spec.PageSize)
	if err != nil {
		return nil, err
	}
	s := &LocalitySet{
		pool:     bp,
		id:       id,
		name:     spec.Name,
		pageSize: spec.PageSize,
		attrs:    Attributes{Durability: spec.Durability, Pinned: spec.Pinned},
		file:     file,
		resident: make(map[int64]*Page),
		loading:  make(map[int64]bool),
	}
	bp.mu.Lock()
	bp.sets[id] = s
	bp.byName[spec.Name] = s
	bp.mu.Unlock()
	return s, nil
}

// GetSet looks a locality set up by name.
func (bp *BufferPool) GetSet(name string) (*LocalitySet, bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	s, ok := bp.byName[name]
	return s, ok
}

// DropSet releases all of a set's memory and removes its file instance. The
// caller must have unpinned every page first.
func (bp *BufferPool) DropSet(s *LocalitySet) error {
	bp.mu.Lock()
	if s.dropped {
		bp.mu.Unlock()
		return nil
	}
	for _, p := range s.resident {
		if p.pin > 0 {
			bp.mu.Unlock()
			return fmt.Errorf("core: drop set %q: page %d still pinned", s.name, p.num)
		}
	}
	s.dropped = true
	for num, p := range s.resident {
		bp.alloc.Free(p.off)
		delete(s.resident, num)
	}
	delete(bp.sets, s.id)
	delete(bp.byName, s.name)
	bp.cond.Broadcast()
	bp.mu.Unlock()
	return s.file.Remove()
}

// Sets returns a snapshot of the registered locality sets.
func (bp *BufferPool) Sets() []*LocalitySet {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	out := make([]*LocalitySet, 0, len(bp.sets))
	for _, s := range bp.sets {
		out = append(out, s)
	}
	return out
}

// Capacity returns the pool's arena size in bytes.
func (bp *BufferPool) Capacity() int64 { return bp.cfg.Memory }

// UsedBytes returns the bytes currently allocated from the arena.
func (bp *BufferPool) UsedBytes() int64 { return bp.alloc.Used() }

// PeakBytes returns the high-water mark of arena usage; the memory-usage
// comparison of Fig 4 reports this.
func (bp *BufferPool) PeakBytes() int64 { return bp.peak.Load() }

// Stats exposes the pool's activity counters.
func (bp *BufferPool) Stats() *PoolStats { return &bp.stats }

// Array returns the node's disk array.
func (bp *BufferPool) Array() *disk.Array { return bp.array }

// SharedMemory exposes the pool's arena. The data proxy hands arena offsets
// to computation threads over the socket so they can touch page bytes
// without copying, the way the paper's computation processes map the
// storage process's shared memory region (§5, Fig 2).
func (bp *BufferPool) SharedMemory() *memory.Arena { return bp.arena }

// TickNow returns the current logical tick.
func (bp *BufferPool) TickNow() int64 { return bp.tick.Load() }

// nextTick advances the logical clock; every page access calls it.
func (bp *BufferPool) nextTick() int64 { return bp.tick.Add(1) }

// allocMem carves size bytes out of the arena, running eviction rounds
// until the allocation fits or nothing can be evicted before the deadline.
func (bp *BufferPool) allocMem(size int64) (int64, error) {
	deadline := time.Now().Add(bp.cfg.AllocTimeout)
	for {
		off, err := bp.alloc.Alloc(size)
		if err == nil {
			if u := bp.alloc.Used(); u > bp.peak.Load() {
				bp.peak.Store(u)
			}
			return off, nil
		}
		evicted, evictErr := bp.evictOnce()
		if evictErr != nil {
			return 0, evictErr
		}
		if evicted {
			continue
		}
		if time.Now().After(deadline) {
			return 0, ErrNoEvictable
		}
		// All candidate pages are pinned; wait briefly for an unpin.
		time.Sleep(200 * time.Microsecond)
	}
}

// evictOnce runs one round of the paging system (§6): the policy selects a
// victim batch, dirty alive pages are spilled to their file instances with
// the pool unlocked, then the memory is recycled.
func (bp *BufferPool) evictOnce() (bool, error) {
	bp.mu.Lock()
	victims, err := bp.cfg.Policy.SelectVictims(bp)
	if err != nil {
		bp.mu.Unlock()
		return false, fmt.Errorf("core: paging policy %s: %w", bp.cfg.Policy.Name(), err)
	}
	if len(victims) == 0 {
		bp.mu.Unlock()
		return false, nil
	}
	type spill struct {
		p    *Page
		file *pfs.PagedFile
	}
	var spills []spill
	for _, p := range victims {
		p.evicting = true
		if p.dirty && !p.set.attrs.LifetimeEnded {
			spills = append(spills, spill{p, p.set.file})
		}
	}
	bp.mu.Unlock()

	var spillErr error
	for _, sp := range spills {
		if err := sp.file.WritePage(sp.p.num, sp.p.Bytes()); err != nil {
			spillErr = err
			break
		}
		bp.stats.Spills.Add(1)
	}

	bp.mu.Lock()
	for _, p := range victims {
		if spillErr != nil {
			p.evicting = false // abort eviction, keep pages resident
			continue
		}
		p.dirty = false
		p.evicting = false
		delete(p.set.resident, p.num)
		bp.alloc.Free(p.off)
		bp.stats.Evictions.Add(1)
	}
	bp.cond.Broadcast()
	bp.mu.Unlock()
	if spillErr != nil {
		return false, fmt.Errorf("core: spill during eviction: %w", spillErr)
	}
	return true, nil
}

// PolicySets lists all live locality sets. It must be called only from a
// Policy with the pool lock held.
func (bp *BufferPool) PolicySets() []*LocalitySet {
	out := make([]*LocalitySet, 0, len(bp.sets))
	for _, s := range bp.sets {
		out = append(out, s)
	}
	return out
}

// PolicyPageCost evaluates the expected cost of evicting page p within the
// horizon t (§6):
//
//	cost = c_w + p_reuse · c_r
//	c_w  = d · v_w            (d = 1 iff the page must be written back)
//	c_r  = v_r · w_r          (w_r > 1 for random reading patterns)
//	p_reuse = 1 − e^{−λt},  λ = 1 / (t_now − t_ref)
//
// Policy-only; pool lock held.
func (bp *BufferPool) PolicyPageCost(p *Page) float64 {
	attrs := p.set.attrs
	var cw float64
	if p.dirty && !attrs.LifetimeEnded {
		// Only write-back data can be dirty at eviction time; write-through
		// pages were persisted at unpin (d=0 for write-through).
		cw = bp.cfg.Profile.WriteCost
	}
	cr := bp.cfg.Profile.ReadCost * attrs.ReadPenalty()
	return cw + bp.reuseProbability(p.lastRef)*cr
}

// reuseProbability computes p_reuse from the time since last reference.
func (bp *BufferPool) reuseProbability(lastRef int64) float64 {
	delta := bp.tick.Load() - lastRef
	if delta < 1 {
		delta = 1
	}
	lambda := 1.0 / float64(delta)
	return 1 - math.Exp(-lambda*bp.cfg.Horizon)
}
