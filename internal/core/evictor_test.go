package core

import (
	"errors"
	"testing"
	"time"

	"pangea/internal/disk"
)

// TestTimeoutErrSurfacesRecordedError is the regression test for the
// allocMem timeout path swallowing eviction errors: when the daemon
// recorded a policy/spill error after the waiter's observation point, a
// timed-out allocation must report that error, not a bare ErrNoEvictable.
func TestTimeoutErrSurfacesRecordedError(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	e := bp.evictor

	_, seq := e.observe()
	if err := e.timeoutErr(seq); !errors.Is(err, ErrNoEvictable) {
		t.Fatalf("no recorded error: got %v, want ErrNoEvictable", err)
	}

	sentinel := errors.New("spill exploded")
	e.broadcast(sentinel)
	if err := e.timeoutErr(seq); !errors.Is(err, sentinel) {
		t.Fatalf("recorded error swallowed: got %v, want %v", err, sentinel)
	}

	// Errors recorded before the observation point are stale and must not
	// be replayed to later waiters.
	_, seq2 := e.observe()
	if err := e.timeoutErr(seq2); !errors.Is(err, ErrNoEvictable) {
		t.Fatalf("stale error replayed: got %v, want ErrNoEvictable", err)
	}
}

// TestAllocFailureSurfacesPolicyError: when the paging policy itself
// errors, the blocked allocation must report that error to its caller.
func TestAllocFailureSurfacesPolicyError(t *testing.T) {
	sentinel := errors.New("policy refused")
	bp := newTestPool(t, 5*4096, refusingPolicy{sentinel})
	s, err := bp.CreateSet(SetSpec{Name: "s", PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		p, err := s.NewPage()
		if err != nil {
			if !errors.Is(err, sentinel) {
				t.Fatalf("NewPage error = %v, want wrapped %v", err, sentinel)
			}
			break
		}
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
		if i > 64 {
			t.Fatal("pool never filled up")
		}
	}
}

type refusingPolicy struct{ err error }

func (p refusingPolicy) Name() string                                 { return "refuse" }
func (p refusingPolicy) SelectVictims(*PolicyView) ([]PageRef, error) { return nil, p.err }

// TestStaleKickSpillsNothing is the over-spill regression test: a kick
// that arrives with free memory above the watermarks and no allocation
// waiting must not run an eviction round at all — the seed guaranteed one
// round per kick unconditionally, spilling a batch of dirty pages nobody
// was waiting for.
func TestStaleKickSpillsNothing(t *testing.T) {
	const pageSize = 4096
	bp := newTestPool(t, 64*pageSize, nil)
	s, err := bp.CreateSet(SetSpec{Name: "idle", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8 // dirty evictable pages; free stays far above HighWater
	for i := 0; i < n; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	bp.evictor.kick()
	waitEvictorIdle(t, bp)
	if got := bp.Stats().Spills.Load(); got != 0 {
		t.Errorf("stale kick spilled %d pages with no waiter and no watermark pressure", got)
	}
	if got := s.ResidentPages(); got != n {
		t.Errorf("stale kick evicted pages: %d resident, want %d", got, n)
	}
}

// TestNoSpillAfterLastWaiterServed: once the producer stops and the last
// blocked allocation has been served, the daemon must come to rest — no
// further spill I/O trickles out of leftover kicks, even though plenty of
// dirty evictable pages remain below the high watermark.
func TestNoSpillAfterLastWaiterServed(t *testing.T) {
	const pageSize = 4096
	bp := newTestPool(t, 16*pageSize, nil)
	s, err := bp.CreateSet(SetSpec{Name: "wb", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	waitEvictorIdle(t, bp)
	settled := bp.Stats().Spills.Load()
	if settled == 0 {
		t.Fatal("80 dirty pages through a 16-page pool must have spilled")
	}
	time.Sleep(50 * time.Millisecond)
	if got := bp.Stats().Spills.Load(); got != settled {
		t.Errorf("daemon kept spilling after the last waiter was served: %d -> %d", settled, got)
	}
}

// TestFreshKickAfterErrorRoundGetsFreshRound: an eviction round that fails
// (here: a transient whole-array write fault) must not wedge the daemon —
// allocations kicked after the fault clears get a fresh round and succeed,
// and the stale error is not replayed to them.
func TestFreshKickAfterErrorRoundGetsFreshRound(t *testing.T) {
	const pageSize = 4096
	arr, err := disk.NewArray(t.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	bp, err := NewPool(PoolConfig{Memory: 6 * pageSize, Array: arr, AllocTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("transient drive failure")
	arr.Disk(0).SetWriteFault(func() error { return sentinel })
	s, err := bp.CreateSet(SetSpec{Name: "wb", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	written := 0
	for i := 0; i < 64 && sawErr == nil; i++ {
		p, err := s.NewPage()
		if err != nil {
			sawErr = err
			break
		}
		stamp(p.Bytes(), 9, p.Num())
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
		written++
	}
	if !errors.Is(sawErr, sentinel) {
		t.Fatalf("got %v, want the injected %v", sawErr, sentinel)
	}
	arr.Disk(0).SetWriteFault(nil)
	// Fresh kicks after the failed pass must produce fresh, healthy rounds.
	for i := 0; i < 8; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d after the fault cleared: %v (stale error replayed or daemon wedged)", i, err)
		}
		stamp(p.Bytes(), 9, p.Num())
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	// No page written before the fault may have been lost to it.
	for num := int64(0); num < int64(written); num++ {
		p, err := s.Pin(num)
		if err != nil {
			t.Fatalf("Pin(%d): %v", num, err)
		}
		if err := checkStamp(p.Bytes(), 9, num); err != nil {
			t.Error(err)
		}
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}
}
