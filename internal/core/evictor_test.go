package core

import (
	"errors"
	"testing"
)

// TestTimeoutErrSurfacesRecordedError is the regression test for the
// allocMem timeout path swallowing eviction errors: when the daemon
// recorded a policy/spill error after the waiter's observation point, a
// timed-out allocation must report that error, not a bare ErrNoEvictable.
func TestTimeoutErrSurfacesRecordedError(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	e := bp.evictor

	_, seq := e.observe()
	if err := e.timeoutErr(seq); !errors.Is(err, ErrNoEvictable) {
		t.Fatalf("no recorded error: got %v, want ErrNoEvictable", err)
	}

	sentinel := errors.New("spill exploded")
	e.broadcast(sentinel)
	if err := e.timeoutErr(seq); !errors.Is(err, sentinel) {
		t.Fatalf("recorded error swallowed: got %v, want %v", err, sentinel)
	}

	// Errors recorded before the observation point are stale and must not
	// be replayed to later waiters.
	_, seq2 := e.observe()
	if err := e.timeoutErr(seq2); !errors.Is(err, ErrNoEvictable) {
		t.Fatalf("stale error replayed: got %v, want ErrNoEvictable", err)
	}
}

// TestAllocFailureSurfacesPolicyError: when the paging policy itself
// errors, the blocked allocation must report that error to its caller.
func TestAllocFailureSurfacesPolicyError(t *testing.T) {
	sentinel := errors.New("policy refused")
	bp := newTestPool(t, 5*4096, refusingPolicy{sentinel})
	s, err := bp.CreateSet(SetSpec{Name: "s", PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		p, err := s.NewPage()
		if err != nil {
			if !errors.Is(err, sentinel) {
				t.Fatalf("NewPage error = %v, want wrapped %v", err, sentinel)
			}
			break
		}
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
		if i > 64 {
			t.Fatal("pool never filled up")
		}
	}
}

type refusingPolicy struct{ err error }

func (p refusingPolicy) Name() string                                 { return "refuse" }
func (p refusingPolicy) SelectVictims(*PolicyView) ([]PageRef, error) { return nil, p.err }
