package core

// PageID identifies a page cluster-wide: the locality set it belongs to and
// its sequence number within the set on this node.
type PageID struct {
	Set SetID
	Num int64
}

// Page is one fixed-size buffer-pool page of a locality set. The page's
// bytes live in the node's shared arena; the struct itself is only the
// control block (pin count, dirty flag, recency), mirroring the paper's
// pinned/unpinned and dirty/clean flags plus reference counting (§5).
//
// All mutable fields are guarded by the owning LocalitySet's mutex; num,
// off and size are immutable after creation. Policies never see a Page —
// they work on PageRef snapshots inside a PolicyView.
type Page struct {
	set      *LocalitySet
	num      int64
	off      int64 // arena offset
	size     int64
	pin      int32
	dirty    bool
	evicting bool
	// prefetched marks a frame the read-ahead path loaded speculatively and
	// no Pin has referenced yet. The first pin clears it (a prefetch hit);
	// eviction or DropSet of a still-flagged frame counts as wasted
	// speculation. Policies see it as PageRef.Speculative.
	prefetched bool
	lastRef    int64 // logical tick of last access
}

// Num returns the page's sequence number within its locality set.
func (p *Page) Num() int64 { return p.num }

// Set returns the locality set this page belongs to.
func (p *Page) Set() *LocalitySet { return p.set }

// Size returns the page capacity in bytes.
func (p *Page) Size() int64 { return p.size }

// Bytes returns the page's memory. The slice aliases the shared arena and is
// valid only while the caller holds a pin on the page.
func (p *Page) Bytes() []byte { return p.set.pool.arena.Slice(p.off, p.size) }

// Offset returns the page's offset within the node's shared arena. The data
// proxy ships this value over the socket so computation threads can map the
// page without copying (§5, Fig 2).
func (p *Page) Offset() int64 { return p.off }
