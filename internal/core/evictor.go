package core

import (
	"sync"
	"sync/atomic"
)

// evictor is the pool's background eviction daemon. It owns all spill I/O:
// allocation paths never write to disk, they kick the daemon and block on a
// broadcast channel until memory is reclaimed (or the policy reports an
// error). The daemon is lazy — the goroutine starts on the first kick and
// exits once free memory is back above the high watermark and no allocation
// is waiting, so idle pools hold no goroutine and can be garbage collected.
type evictor struct {
	bp *BufferPool

	mu      sync.Mutex
	running bool          // a daemon goroutine is live
	kicked  bool          // a pass was requested since the daemon last idled
	notify  chan struct{} // closed and replaced on every broadcast
	seq     uint64        // broadcast sequence number
	lastErr error         // error from the most recent failed round
	errSeq  uint64        // seq at which lastErr was recorded

	// waiters counts allocations currently blocked on reclaimed memory.
	// Unpin consults it (one atomic load on the hot path) to decide whether
	// a page becoming evictable is worth a broadcast.
	waiters atomic.Int32
}

func newEvictor(bp *BufferPool) *evictor {
	return &evictor{bp: bp, notify: make(chan struct{})}
}

// kick requests an eviction pass, starting the daemon goroutine if none is
// live. Multiple kicks coalesce into one pass.
func (e *evictor) kick() {
	e.mu.Lock()
	e.kicked = true
	if !e.running {
		e.running = true
		go e.run()
	}
	e.mu.Unlock()
}

// broadcast wakes every blocked allocation. A non-nil err records a failed
// eviction round (policy refusal or spill I/O error) for waiters to pick up.
func (e *evictor) broadcast(err error) {
	e.mu.Lock()
	e.seq++
	if err != nil {
		e.lastErr = err
		e.errSeq = e.seq
	}
	close(e.notify)
	e.notify = make(chan struct{})
	e.mu.Unlock()
}

// observe returns the current wait channel and sequence number. A waiter
// must call observe before its allocation attempt: any reclaim after the
// observed point closes the returned channel, so no wakeup can be lost.
func (e *evictor) observe() (<-chan struct{}, uint64) {
	e.mu.Lock()
	ch, seq := e.notify, e.seq
	e.mu.Unlock()
	return ch, seq
}

// errSince reports an eviction error recorded after the observed sequence
// point, if any.
func (e *evictor) errSince(seq uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.errSeq > seq {
		return e.lastErr
	}
	return nil
}

// timeoutErr decides what a timed-out allocation reports: the eviction
// error recorded since the waiter's observation point if there is one
// (the broadcast and the deadline can fire in the same select), else a
// bare ErrNoEvictable.
func (e *evictor) timeoutErr(seq uint64) error {
	if err := e.errSince(seq); err != nil {
		return err
	}
	return ErrNoEvictable
}

// run is the daemon loop: drain eviction passes until a pass completes with
// no pending kick, then exit. Each kick guarantees at least one eviction
// round (a blocked allocation may need memory even when free bytes look
// healthy, e.g. under fragmentation); beyond that the pass continues only
// while free memory is below the high watermark, so the daemon can never
// outrace a woken waiter and drain the pool. If a round reclaims too little,
// the waiter's failed retry kicks the next round — the same
// evict-retry-evict convergence as a synchronous loop, minus the spilling
// on the allocation path.
func (e *evictor) run() {
	for {
		e.mu.Lock()
		e.kicked = false
		e.mu.Unlock()

		for round := 0; ; round++ {
			if round > 0 && e.bp.alloc.FreeBytes() >= e.bp.cfg.HighWater {
				break
			}
			evicted, err := e.bp.evictOnce()
			if err != nil {
				e.broadcast(err)
				break
			}
			if !evicted {
				// Nothing evictable right now. Park; an Unpin or DropSet
				// will wake the waiters, and their retry re-kicks us.
				break
			}
			e.broadcast(nil)
		}

		e.mu.Lock()
		if !e.kicked {
			e.running = false
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
	}
}
