package core

import (
	"sync"
	"sync/atomic"
)

// evictor is the pool's background eviction daemon. It owns all spill I/O:
// allocation paths never write to disk, they kick the daemon and block on a
// broadcast channel until memory is reclaimed (or the policy reports an
// error). The daemon is lazy — the goroutine starts on the first kick and
// exits once free memory is back above the high watermark and no allocation
// is waiting, so idle pools hold no goroutine and can be garbage collected.
type evictor struct {
	bp *BufferPool

	mu      sync.Mutex
	running bool          // a daemon goroutine is live
	kicked  bool          // a pass was requested since the daemon last idled
	notify  chan struct{} // closed and replaced on every broadcast
	seq     uint64        // broadcast sequence number
	lastErr error         // error from the most recent failed round
	errSeq  uint64        // seq at which lastErr was recorded

	// waiters counts allocations currently blocked on reclaimed memory.
	// Unpin consults it (one atomic load on the hot path) to decide whether
	// a page becoming evictable is worth a broadcast.
	waiters atomic.Int32
}

func newEvictor(bp *BufferPool) *evictor {
	return &evictor{bp: bp, notify: make(chan struct{})}
}

// kick requests an eviction pass, starting the daemon goroutine if none is
// live. Multiple kicks coalesce into one pass.
func (e *evictor) kick() {
	e.mu.Lock()
	e.kicked = true
	if !e.running {
		e.running = true
		go e.run()
	}
	e.mu.Unlock()
}

// broadcast wakes every blocked allocation. A non-nil err records a failed
// eviction round (policy refusal or spill I/O error) for waiters to pick up.
func (e *evictor) broadcast(err error) {
	e.mu.Lock()
	e.seq++
	if err != nil {
		e.lastErr = err
		e.errSeq = e.seq
	}
	close(e.notify)
	e.notify = make(chan struct{})
	e.mu.Unlock()
}

// observe returns the current wait channel and sequence number. A waiter
// must call observe before its allocation attempt: any reclaim after the
// observed point closes the returned channel, so no wakeup can be lost.
func (e *evictor) observe() (<-chan struct{}, uint64) {
	e.mu.Lock()
	ch, seq := e.notify, e.seq
	e.mu.Unlock()
	return ch, seq
}

// errSince reports an eviction error recorded after the observed sequence
// point, if any.
func (e *evictor) errSince(seq uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.errSeq > seq {
		return e.lastErr
	}
	return nil
}

// timeoutErr decides what a timed-out allocation reports: the eviction
// error recorded since the waiter's observation point if there is one
// (the broadcast and the deadline can fire in the same select), else a
// bare ErrNoEvictable.
func (e *evictor) timeoutErr(seq uint64) error {
	if err := e.errSince(seq); err != nil {
		return err
	}
	return ErrNoEvictable
}

// run is the daemon loop: drain eviction passes until a pass completes with
// no pending kick, then exit. If a round reclaims too little, the waiter's
// failed retry kicks the next round — the same evict-retry-evict
// convergence as a synchronous loop, minus the spilling on the allocation
// path.
func (e *evictor) run() {
	for {
		e.mu.Lock()
		e.kicked = false
		e.mu.Unlock()

		progressed := false
		for round := 0; ; round++ {
			if !e.shouldEvict(round) {
				break
			}
			free := e.bp.alloc.FreeBytes()
			evicted, err := e.bp.evictOnce()
			// Pay whatever the round freed against the starved-prefetch
			// budget, so speculation-driven passes are one-shot: the budget
			// buys reclaim once and then decays (a concurrent allocation may
			// eat the freed bytes first — its retried hint re-arms the
			// budget).
			if freed := e.bp.alloc.FreeBytes() - free; freed > 0 {
				e.bp.consumeStarved(freed)
			}
			if err != nil {
				// Wake the waiters with the error, but don't end the
				// daemon outright: a fresh kick that arrived while the
				// failing round was in flight (its victims may live on a
				// healthy drive) gets a fresh pass from the outer loop's
				// kicked re-check below instead of riding out its timeout.
				e.broadcast(err)
				break
			}
			if !evicted {
				// Nothing evictable right now. Park; an Unpin or DropSet
				// will wake the waiters, and their retry re-kicks us.
				break
			}
			progressed = true
			e.broadcast(nil)
		}

		e.mu.Lock()
		if !e.kicked {
			// A pass that made progress may have stopped at the waiter
			// gate (free back above HighWater) with hard-quota overage
			// still outstanding, and the waiters' successful retries never
			// re-kick; give the overage another pass rather than stranding
			// it until the set's next growth. A pass that evicted nothing
			// must exit even if overage remains (the victims are pinned) —
			// the next kick retries.
			if progressed && e.bp.anyOverQuota() {
				e.mu.Unlock()
				continue
			}
			e.running = false
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
	}
}

// shouldEvict gates every round of a pass. A round may spill dirty pages,
// so it must be justified by somebody who needs the memory: while
// allocations are blocked, their kick guarantees one round (a waiter may
// need memory even when free bytes look healthy, e.g. under fragmentation)
// and further rounds run up to the high watermark; with no waiter left,
// genuine watermark pressure (free below the background low-water mark
// plus any unpaid starved-prefetch budget — speculation that was refused
// memory is a real consumer waiting, it just refuses to block for it) or a
// set over its hard quota (admission control's self-eviction) keeps the
// pass alive. The seed ran the first round unconditionally and kept
// evicting until free reached HighWater even at waiters == 0, so a stale
// kick could spill a batch — and then drain the pool to the high
// watermark — with nobody waiting for a byte of it.
func (e *evictor) shouldEvict(round int) bool {
	bp := e.bp
	if e.waiters.Load() > 0 {
		return round == 0 || bp.alloc.FreeBytes() < bp.cfg.HighWater
	}
	return bp.alloc.FreeBytes() < bp.cfg.LowWater+bp.loadStarved.Load() ||
		bp.anyOverQuota()
}
