package core

import (
	"errors"
	"fmt"

	"pangea/internal/disk"
	"pangea/internal/pfs"
)

// errSpecQuota marks a speculative allocation refused by the set's own hard
// quota rather than by pool memory: evicting other tenants would not help,
// so the refusal must not arm the eviction daemon's reclaim budget.
var errSpecQuota = errors.New("core: speculation refused by quota")

// loadQueueDepth bounds how many page reads may be pending on one drive.
// Prefetch submission stops when a drive's queue is full (Submit blocks the
// hinting goroutine, which issues at most a window's worth of pages), so
// speculation can never buffer unbounded frames ahead of what the drives
// deliver.
const loadQueueDepth = 32

// DefaultReadAheadPerDrive scales the automatic read-ahead window with the
// disk array when PoolConfig.ReadAhead is zero: two pages in flight per
// drive keeps each drive's queue fed while the previous page streams off it,
// which is all the depth a scan can use — reads can't go faster than the
// array. Deeper windows only cost: every speculative frame displaces a
// resident page, so on a looping scan an oversized window evicts exactly the
// pages the next pass would have re-hit (measured: a fixed 8-page window on
// one drive turned ~8% of a looping scan's cross-pass hits back into reads).
const DefaultReadAheadPerDrive = 2

// loadOp tracks one in-flight page load — a demand miss or a prefetch. It
// lives in the set's loading map while the read is outstanding; concurrent
// pins of the page coalesce onto it single-flight style and share its
// outcome, so N racing pinners of one page cost one disk read, and a failed
// read fails every waiter instead of fanning out into N retries. All fields
// are guarded by the owning set's mutex.
type loadOp struct {
	done bool  // outcome published; the op has left the loading map
	err  error // the read's outcome, seen by every coalesced waiter
}

// loadPipeline fans page loads out across the disk array with one bounded
// queue — and one lazy reader goroutine — per drive, the read-side twin of
// the spill pipeline: the paged file layer places pages round-robin across
// the array, so N drives deliver ~N× read bandwidth to a scan whose window
// keeps them all busy. The queues are separate from the spill writers' so a
// burst of speculative reads never queues behind victim write-backs (and
// vice versa); on one drive, reads and writes still share the drive's time
// model, as they would the device.
type loadPipeline struct {
	bp     *BufferPool
	queues []*disk.Queue // one per drive, indexed like the Array
}

func newLoadPipeline(bp *BufferPool, arr *disk.Array) *loadPipeline {
	lp := &loadPipeline{bp: bp, queues: make([]*disk.Queue, arr.Len())}
	for i := range lp.queues {
		lp.queues[i] = disk.NewQueue(loadQueueDepth)
	}
	return lp
}

// submit queues one speculative page read on the page's drive. The frame at
// off is already carved and charged to the set; the drive's reader fills it
// and publishes the outcome through finishLoad.
func (lp *loadPipeline) submit(s *LocalitySet, num, off int64, loc pfs.PageLoc, op *loadOp) {
	bp := lp.bp
	bp.stats.PrefetchesIssued.Add(1)
	bp.stats.LoadsInFlight.Add(1)
	lp.queues[loc.Drive].Submit(func() {
		err := s.file.ReadPageAt(loc, num, bp.arena.Slice(off, s.pageSize))
		s.finishLoad(num, op, off, err, true)
		bp.stats.LoadsInFlight.Add(-1)
	})
}

// Prefetch hints that the given pages are about to be read, scheduling
// asynchronous loads of any that are neither resident nor already loading
// through the per-drive read queues. Completed frames enter the resident map
// at pin count zero (a later Pin is a hit; the evictor may also reclaim them
// first if the guess was wrong), and in-flight ones are registered in the
// loading map so a racing Pin coalesces onto the read instead of issuing its
// own. Speculation is best-effort: pages with no on-disk image are skipped,
// a set at its memory quota is left alone, and the first allocation failure
// stops the whole batch — a prefetch never blocks waiting for memory. A
// refused batch does charge its unfulfilled bytes to the eviction daemon's
// background reclaim budget (see noteStarved), so callers that re-hint as
// they advance — the sequential iterators do — find frames freed for the
// retried window instead of stalling speculation for the rest of the scan.
// Returns the number of reads issued.
//
// Sets with a declared sequential reading pattern get hints generated
// automatically (see PoolConfig.ReadAhead); Prefetch is the explicit surface
// for callers that know more than the pattern tags say, and it works even
// with automatic read-ahead disabled.
func (s *LocalitySet) Prefetch(nums []int64) int {
	filter := s.prefetchFilterFn()
	issued := 0
	for i, num := range nums {
		if filter != nil && !filter(num) {
			// A predicate scan pruned this page: it will never be read, so
			// neither speculate on it nor let it count toward any reclaim
			// budget below.
			continue
		}
		ok, stop, starved := s.prefetchOne(num)
		if ok {
			issued++
		}
		if starved {
			// The allocator refused the frame. Arm the eviction daemon's
			// speculative-reclaim budget with the unfulfilled tail of this
			// batch — the bytes these hints actually wanted, which excludes
			// any pruned pages in the tail (they were never going to be
			// read) — so background reclaim frees enough for the retried
			// window, not just one frame per batch.
			want := int64(0)
			for _, m := range nums[i:] {
				if filter == nil || filter(m) {
					want++
				}
			}
			s.pool.noteStarved(want * s.pageSize)
		}
		if stop {
			break
		}
	}
	return issued
}

// prefetchOne schedules one speculative load; stop reports that the set (or
// the pool's memory) cannot accept further speculation right now, and
// starved that the reason was specifically an allocation refusal worth
// charging to the eviction daemon's speculative-reclaim budget.
func (s *LocalitySet) prefetchOne(num int64) (issued, stop, starved bool) {
	bp := s.pool
	s.mu.Lock()
	if s.dropped {
		s.mu.Unlock()
		return false, true, false
	}
	if num < 0 || num >= s.nextNum {
		s.mu.Unlock()
		return false, false, false
	}
	if _, ok := s.resident[num]; ok || s.loading[num] != nil {
		s.mu.Unlock()
		return false, false, false
	}
	loc, err := s.file.Locate(num)
	if err != nil {
		// No on-disk image: the page only ever lived in memory (a transient
		// set that never spilled it) and a demand Pin would fail too — there
		// is nothing to read ahead.
		s.mu.Unlock()
		return false, false, false
	}
	op := &loadOp{}
	s.loading[num] = op
	s.mu.Unlock()

	off, err := bp.tryAllocMem(s, s.pageSize)
	if err != nil {
		// No frame without forcing reclaim: retract the op (waiters, if any
		// raced in, fall back to their own demand load) and stop hinting.
		// Only pool-memory refusals count as starved — a set at its own
		// quota can't be helped by evicting anyone.
		s.cancelLoad(num, op)
		return false, true, !errors.Is(err, errSpecQuota)
	}
	bp.load.submit(s, num, off, loc, op)
	return true, false, false
}

// ReadAhead returns the set's effective automatic read-ahead window in
// pages: the pool's configured window for sets with a declared sequential
// reading pattern, 0 otherwise.
func (s *LocalitySet) ReadAhead() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readAheadLocked()
}

// readAheadLocked is ReadAhead with the set's mutex already held.
func (s *LocalitySet) readAheadLocked() int {
	if s.attrs.Reading != SequentialRead {
		return 0
	}
	return s.pool.readAhead
}

// readAheadFrom schedules the k pages after num, clipped at the set's end.
// The window deliberately does not wrap: a single-pass scan would pay a
// whole window of wasted reads at its tail, while a looping scan loses
// almost nothing — its next pass's first miss re-opens the window at the
// head. With a prefetch filter installed (a predicate scan pruned pages),
// the window is built from the next k accepted pages — depth extends over
// pruned runs so the drives still see k useful reads, and pruned pages are
// never speculated on.
func (s *LocalitySet) readAheadFrom(num int64, k int) {
	s.mu.Lock()
	n := s.nextNum
	filter := s.prefetchFilter
	s.mu.Unlock()
	if num+1 >= n || k <= 0 {
		return
	}
	nums := make([]int64, 0, k)
	for i := num + 1; i < n && len(nums) < k; i++ {
		if filter != nil && !filter(i) {
			continue
		}
		nums = append(nums, i)
	}
	if len(nums) > 0 {
		s.Prefetch(nums)
	}
}

// finishLoad publishes a load's outcome: on success the frame enters the
// resident map — pinned for a demand load, at pin count zero and flagged
// speculative for a prefetch — and on failure (or if the set was dropped
// mid-read) the frame and its admission charge are released exactly once,
// with the error recorded on the op for every coalesced waiter. The frame is
// released before waiters are woken, so a DropSet that waited out this load
// observes the residency gauge already unwound.
func (s *LocalitySet) finishLoad(num int64, op *loadOp, off int64, readErr error, prefetch bool) (*Page, error) {
	bp := s.pool
	s.mu.Lock()
	delete(s.loading, num)
	op.done = true
	op.err = readErr
	if readErr != nil || s.dropped {
		s.dropFrame(off)
		s.cond.Broadcast()
		s.mu.Unlock()
		if bp.evictor.waiters.Load() > 0 {
			// The frame just went back to the allocator; let blocked
			// allocations retry.
			bp.evictor.broadcast(nil)
		}
		if readErr != nil {
			return nil, fmt.Errorf("core: load page %d of set %q: %w", num, s.name, readErr)
		}
		return nil, fmt.Errorf("core: set %q is dropped", s.name)
	}
	s.loads.Add(1)
	tick := bp.nextTick()
	p := &Page{set: s, num: num, off: off, size: s.pageSize, lastRef: tick}
	if prefetch {
		// A speculative frame is not an application access: it does not bump
		// the set's AccessRecency or the demand-load counter, and it stays
		// flagged until a Pin actually references it (the hit/wasted split
		// the prefetch stats report).
		p.prefetched = true
	} else {
		p.pin = 1
		s.lastAccess = tick
		bp.stats.Loads.Add(1)
	}
	s.resident[num] = p
	s.cond.Broadcast()
	s.mu.Unlock()
	if prefetch && bp.evictor.waiters.Load() > 0 {
		// The speculative frame enters the pool already evictable (pin count
		// zero), and the allocation it displaced may be blocked right now:
		// at a tiny pool's scan boundary the whole window can be in flight
		// while the demand pins behind it wait, the daemon's pass finds
		// nothing evictable and parks, and without this wakeup nobody wakes
		// the waiters — their retry re-kicks the daemon, which can now
		// reclaim this very frame if the guess was wrong.
		bp.evictor.broadcast(nil)
	}
	return p, nil
}

// cancelLoad retracts a registered load whose frame never materialized (the
// allocator refused or timed out). No error is recorded: coalesced waiters
// wake, find the page neither resident nor loading, and fall through to
// their own demand load — which may block on reclaim where the canceled
// speculation would not.
func (s *LocalitySet) cancelLoad(num int64, op *loadOp) {
	s.mu.Lock()
	delete(s.loading, num)
	op.done = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
