package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pangea/internal/disk"
)

// spillPool builds a pool over an n-drive array with the given per-drive
// config, sized in pages.
func spillPool(t *testing.T, drives int, cfg disk.Config, pages int64, pageSize int64) (*BufferPool, *disk.Array) {
	t.Helper()
	arr, err := disk.NewArray(t.TempDir(), drives, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	bp, err := NewPool(PoolConfig{Memory: pages * pageSize, Array: arr, AllocShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	return bp, arr
}

// TestSpillDistributesAcrossDrives forces heavy write-back through the
// per-drive pipeline and verifies every drive of the array absorbed spill
// writes, the in-flight gauge returned to zero, and every spilled page
// reads back intact.
func TestSpillDistributesAcrossDrives(t *testing.T) {
	const pageSize = 4 << 10
	const drives = 4
	bp, arr := spillPool(t, drives, disk.Unthrottled(), 8, pageSize)
	s, err := bp.CreateSet(SetSpec{Name: "wb", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	const total = 64
	for i := 0; i < total; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		stamp(p.Bytes(), 1, p.Num())
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	if got := bp.Stats().Spills.Load(); got == 0 {
		t.Fatal("no spills despite 8x memory pressure")
	}
	for i, ds := range arr.PerDriveStats() {
		if ds.Writes == 0 {
			t.Errorf("drive %d absorbed no spill writes: pipeline not spread across the array", i)
		}
	}
	waitEvictorIdle(t, bp)
	if got := bp.Stats().SpillsInFlight.Load(); got != 0 {
		t.Fatalf("SpillsInFlight = %d with the daemon at rest, want 0", got)
	}
	for num := int64(0); num < total; num++ {
		p, err := s.Pin(num)
		if err != nil {
			t.Fatalf("Pin(%d): %v", num, err)
		}
		if err := checkStamp(p.Bytes(), 1, num); err != nil {
			t.Error(err)
		}
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
}

// TestSpillErrorReachesBlockedAllocators injects a write fault on one drive
// of a two-drive array: once only that drive's pages remain evictable, the
// failed round's error must surface to allocations blocked in allocMem via
// the errSince/timeoutErr fan-in — not vanish into the daemon.
func TestSpillErrorReachesBlockedAllocators(t *testing.T) {
	const pageSize = 4 << 10
	bp, arr := spillPool(t, 2, disk.Unthrottled(), 8, pageSize)
	sentinel := errors.New("injected drive-1 failure")
	arr.Disk(1).SetWriteFault(func() error { return sentinel })

	s, err := bp.CreateSet(SetSpec{Name: "wb", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for i := 0; i < 500 && sawErr == nil; i++ {
		p, err := s.NewPage()
		if err != nil {
			sawErr = err
			break
		}
		stamp(p.Bytes(), 2, p.Num())
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	if sawErr == nil {
		t.Fatal("allocations kept succeeding although half the array cannot spill")
	}
	if !errors.Is(sawErr, sentinel) {
		t.Fatalf("blocked allocator got %v, want the injected %v", sawErr, sentinel)
	}

	// Heal the drive, then verify no page was lost: victims whose
	// write-back failed had to stay resident and dirty (never dropped), so
	// every page must still read back with its stamp intact.
	arr.Disk(1).SetWriteFault(nil)
	for num := int64(0); num < s.NumPages(); num++ {
		p, err := s.Pin(num)
		if err != nil {
			t.Fatalf("Pin(%d) after failed round: %v", num, err)
		}
		if err := checkStamp(p.Bytes(), 2, num); err != nil {
			t.Error(err)
		}
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}

	// The retried write-back must drain the backlog and let allocations
	// proceed again.
	for i := 0; i < 16; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatalf("NewPage after healing the drive: %v", err)
		}
		stamp(p.Bytes(), 2, p.Num())
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
}

// TestSpillAllDrivesFailing: with every drive faulted, each eviction round
// fails, no dirty page may be dropped, and the error must keep surfacing
// until the fault clears.
func TestSpillAllDrivesFailing(t *testing.T) {
	const pageSize = 4 << 10
	bp, arr := spillPool(t, 1, disk.Unthrottled(), 6, pageSize)
	sentinel := errors.New("injected whole-array failure")
	arr.Disk(0).SetWriteFault(func() error { return sentinel })
	s, err := bp.CreateSet(SetSpec{Name: "wb", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for i := 0; i < 64 && sawErr == nil; i++ {
		p, err := s.NewPage()
		if err != nil {
			sawErr = err
			break
		}
		stamp(p.Bytes(), 3, p.Num())
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	if !errors.Is(sawErr, sentinel) {
		t.Fatalf("got %v, want the injected %v", sawErr, sentinel)
	}
	arr.Disk(0).SetWriteFault(nil)
	// Failed spill rounds kept every victim resident — the admission gauge
	// must not have been unwound for a page that never left the pool.
	checkResidencyGauges(t, []*LocalitySet{s})
	for num := int64(0); num < s.NumPages(); num++ {
		p, err := s.Pin(num)
		if err != nil {
			t.Fatalf("Pin(%d): %v", num, err)
		}
		if err := checkStamp(p.Bytes(), 3, num); err != nil {
			t.Error(err)
		}
		if err := s.Unpin(p, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.DropSet(s); err != nil {
		t.Fatal(err)
	}
	if got := s.ResidentBytes(); got != 0 {
		t.Errorf("ResidentBytes = %d after DropSet, want 0", got)
	}
}

// TestSpillPinRaceStress pins victim pages from many goroutines while the
// per-drive writers are genuinely in flight (throttled drives widen the
// window), exercising the claim/re-validate protocol against asynchronous
// completion. Run with -race; the stamps catch any frame released or
// recycled while a writer or a pinner could still touch it.
func TestSpillPinRaceStress(t *testing.T) {
	const pageSize = 4 << 10
	const hotPages = 4
	cfg := disk.Config{ReadMBps: 400, WriteMBps: 200}
	bp, _ := spillPool(t, 2, cfg, 8, pageSize)
	hot, err := bp.CreateSet(SetSpec{Name: "hot", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hotPages; i++ {
		p, err := hot.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		stamp(p.Bytes(), 7, p.Num())
		if err := hot.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	cold, err := bp.CreateSet(SetSpec{Name: "cold", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 6
	iters := 150
	if testing.Short() {
		iters = 60
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers+1)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				num := int64((w + i) % hotPages)
				p, err := hot.Pin(num)
				if err != nil {
					fail(fmt.Errorf("worker %d: Pin(%d): %w", w, num, err))
					return
				}
				if err := checkStamp(p.Bytes(), 7, num); err != nil {
					fail(err)
				}
				if err := hot.Unpin(p, false); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	// Pressure: stream cold dirty pages so the daemon keeps claiming hot
	// pages and handing them to the in-flight writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			p, err := cold.NewPage()
			if err != nil {
				fail(fmt.Errorf("cold NewPage: %w", err))
				return
			}
			stamp(p.Bytes(), 8, p.Num())
			if err := cold.Unpin(p, true); err != nil {
				fail(err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// The daemon may still be draining a background round kicked by the
	// storm's tail; the gauge must read zero once it comes to rest.
	waitEvictorIdle(t, bp)
	if got := bp.Stats().SpillsInFlight.Load(); got != 0 {
		t.Fatalf("SpillsInFlight = %d with the daemon at rest, want 0", got)
	}
	checkResidencyGauges(t, []*LocalitySet{hot, cold})
	for _, s := range []*LocalitySet{hot, cold} {
		if err := bp.DropSet(s); err != nil {
			t.Fatal(err)
		}
		if got := s.ResidentBytes(); got != 0 {
			t.Errorf("set %s: ResidentBytes = %d after DropSet, want 0", s.Name(), got)
		}
	}
	if bp.UsedBytes() != 0 {
		t.Errorf("UsedBytes = %d after dropping every set, want 0", bp.UsedBytes())
	}
}
