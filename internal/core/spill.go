package core

import (
	"sync"

	"pangea/internal/disk"
	"pangea/internal/pfs"
)

// spillQueueDepth bounds how many page write-backs may be pending on one
// drive. A full queue blocks the daemon's submission loop, so eviction can
// never buffer unbounded page references ahead of what the drives drain.
const spillQueueDepth = 32

// spillJob is one dirty victim's write-back: the owning set, the page (held
// under an eviction claim, so its bytes cannot be touched mid-flight), the
// pre-assigned on-disk location, and the write's outcome.
type spillJob struct {
	set  *LocalitySet
	page *Page
	loc  pfs.PageLoc
	err  error
}

// spillPipeline fans victim write-back out across the disk array with one
// bounded queue — and one lazy writer goroutine — per drive. The paged file
// layer places pages round-robin across the array precisely so that N
// drives deliver ~N× write bandwidth (paper §4); writing victims serially
// from the daemon forfeited that, stalling every blocked allocator behind
// single-drive spill I/O. Jobs on one drive still serialize (the drive's
// time model does anyway); jobs on different drives land concurrently.
type spillPipeline struct {
	bp     *BufferPool
	queues []*disk.Queue // one per drive, indexed like the Array
}

func newSpillPipeline(bp *BufferPool, arr *disk.Array) *spillPipeline {
	sp := &spillPipeline{bp: bp, queues: make([]*disk.Queue, arr.Len())}
	for i := range sp.queues {
		sp.queues[i] = disk.NewQueue(spillQueueDepth)
	}
	return sp
}

// writeBatch writes every job's page image, routing each job to its
// drive's writer, and waits for the whole batch to land before returning —
// the daemon must not broadcast completion, release any page frame, or
// start the next round while a writer still holds page references. On
// failure it returns the first error in submission order (the error fan-in
// that allocMem's errSince/timeoutErr paths surface to blocked allocators);
// per-job outcomes stay recorded in the jobs for the caller's per-page
// release decision.
func (sp *spillPipeline) writeBatch(jobs []*spillJob) error {
	if len(jobs) == 0 {
		return nil
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		j := j
		wg.Add(1)
		sp.bp.stats.SpillsInFlight.Add(1)
		sp.queues[j.loc.Drive].Submit(func() {
			j.err = j.set.file.WritePageAt(j.loc, j.page.num, j.page.Bytes())
			if j.err == nil {
				sp.bp.stats.Spills.Add(1)
				// Attribute the write-back to the owning set: the fairness
				// experiment reads this gauge to show which tenant's churn
				// absorbs the eviction I/O. Failed writes count nowhere —
				// the page stays resident and dirty, so a later retry that
				// lands will be the one counted.
				j.set.spills.Add(1)
			}
			sp.bp.stats.SpillsInFlight.Add(-1)
			wg.Done()
		})
	}
	wg.Wait()
	for _, j := range jobs {
		if j.err != nil {
			return j.err
		}
	}
	return nil
}
