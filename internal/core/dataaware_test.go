package core

import (
	"math"
	"testing"
	"testing/quick"
)

// viewAt builds a bare PolicyView at the given logical tick, for probing
// the probability model in isolation.
func viewAt(tick int64) *PolicyView {
	return &PolicyView{Tick: tick, horizon: 1, profile: IOProfile{ReadCost: 1, WriteCost: 1}}
}

// findSet returns the snapshot of the named set within a view.
func findSet(t *testing.T, view *PolicyView, name string) *SetSnapshot {
	t.Helper()
	for _, s := range view.Sets {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("view has no set %q", name)
	return nil
}

func TestReuseProbabilityMonotone(t *testing.T) {
	v := viewAt(1000)
	// More recent references must have a higher reuse probability.
	pRecent := v.reuseProbability(999)
	pOld := v.reuseProbability(1)
	if pRecent <= pOld {
		t.Errorf("p(recent)=%v <= p(old)=%v", pRecent, pOld)
	}
	if pRecent <= 0 || pRecent >= 1 || pOld <= 0 || pOld >= 1 {
		t.Errorf("probabilities out of (0,1): %v %v", pRecent, pOld)
	}
}

func TestReuseProbabilityProperty(t *testing.T) {
	v := viewAt(1 << 40)
	f := func(a, b uint32) bool {
		// For any two last-ref ticks, the more recent one has >= probability.
		ta, tb := int64(a), int64(b)
		pa, pb := v.reuseProbability(ta), v.reuseProbability(tb)
		if ta > tb {
			return pa >= pb
		}
		if tb > ta {
			return pb >= pa
		}
		return pa == pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLinearApproximation verifies the §6 note: with horizon t=1,
// p_reuse = 1 − e^{−λ} ≈ λ for small λ.
func TestLinearApproximation(t *testing.T) {
	v := viewAt(1 << 20)
	for _, delta := range []int64{100, 1000, 10000} {
		lambda := 1.0 / float64(delta)
		p := v.reuseProbability(v.Tick - delta)
		if math.Abs(p-lambda) > lambda*lambda {
			t.Errorf("delta=%d: p=%v not within λ² of λ=%v", delta, p, lambda)
		}
	}
}

// TestPageCostOrdering: dirty write-back pages cost more to evict than clean
// ones, and random-read sets carry the w_r penalty.
func TestPageCostOrdering(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	seq, _ := bp.CreateSet(SetSpec{Name: "seq", PageSize: 4096})
	hash, _ := bp.CreateSet(SetSpec{Name: "hash", PageSize: 4096})
	hash.SetReading(RandomRead)

	ps, _ := seq.NewPage()
	ph, _ := hash.NewPage()
	_ = seq.Unpin(ps, true)  // dirty
	_ = hash.Unpin(ph, true) // dirty
	// Equalise recency so only attributes differ.
	now := bp.tick.Load()
	seq.mu.Lock()
	ps.lastRef = now
	seq.mu.Unlock()
	hash.mu.Lock()
	ph.lastRef = now
	hash.mu.Unlock()

	view := bp.snapshot()
	refSeq, okSeq := findSet(t, view, "seq").NextVictim()
	refHash, okHash := findSet(t, view, "hash").NextVictim()
	if !okSeq || !okHash {
		t.Fatal("expected evictable pages in both sets")
	}
	costSeq := view.PageCost(refSeq)
	costHash := view.PageCost(refHash)
	// Clean copy of the sequential page.
	refClean := refSeq
	refClean.Dirty = false
	costClean := view.PageCost(refClean)

	if costHash <= costSeq {
		t.Errorf("random-read cost %v should exceed sequential cost %v", costHash, costSeq)
	}
	if costClean >= costSeq {
		t.Errorf("clean cost %v should be below dirty cost %v", costClean, costSeq)
	}
}

// TestStrategySelection checks §6's pattern→strategy table.
func TestStrategySelection(t *testing.T) {
	cases := []struct {
		attrs Attributes
		want  EvictStrategy
	}{
		{Attributes{Writing: SequentialWrite}, EvictMRU},
		{Attributes{Writing: ConcurrentWrite}, EvictMRU},
		{Attributes{Reading: SequentialRead}, EvictMRU},
		{Attributes{Writing: RandomMutableWrite}, EvictLRU},
		{Attributes{Reading: RandomRead}, EvictLRU},
		{Attributes{}, EvictMRU},
	}
	for _, c := range cases {
		if got := c.attrs.Strategy(); got != c.want {
			t.Errorf("Strategy(%+v) = %v, want %v", c.attrs, got, c.want)
		}
	}
}

// TestVictimBatchSize: write sets lose one page, read-only sets lose 10%.
func TestVictimBatchSize(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	s, _ := bp.CreateSet(SetSpec{Name: "s", PageSize: 1024})
	for i := 0; i < 40; i++ {
		p, _ := s.NewPage()
		_ = s.Unpin(p, false)
	}
	s.SetCurrentOp(OpWrite)
	if n := len(findSet(t, bp.snapshot(), "s").VictimBatch()); n != 1 {
		t.Errorf("write batch = %d, want 1", n)
	}
	s.SetCurrentOp(OpRead)
	if n := len(findSet(t, bp.snapshot(), "s").VictimBatch()); n != 4 {
		t.Errorf("read batch = %d, want 4 (10%% of 40)", n)
	}
	s.SetCurrentOp(OpReadWrite)
	if n := len(findSet(t, bp.snapshot(), "s").VictimBatch()); n != 1 {
		t.Errorf("read-and-write batch = %d, want 1", n)
	}
}

// TestMRUvsLRUVictimOrder: an MRU set evicts its most recently used page,
// an LRU set its least recently used.
func TestMRUvsLRUVictimOrder(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	s, _ := bp.CreateSet(SetSpec{Name: "s", PageSize: 1024})
	for i := 0; i < 3; i++ {
		p, _ := s.NewPage()
		_ = s.Unpin(p, false)
	}
	// Touch page 1 last: it becomes the MRU page.
	p1, _ := s.Pin(1)
	_ = s.Unpin(p1, false)

	s.SetReading(SequentialRead) // -> MRU
	if v, ok := findSet(t, bp.snapshot(), "s").NextVictim(); !ok || v.Num != 1 {
		t.Errorf("MRU victim = %d (ok=%v), want 1", v.Num, ok)
	}

	s.SetReading(RandomRead) // -> LRU
	if v, ok := findSet(t, bp.snapshot(), "s").NextVictim(); !ok || v.Num != 0 {
		t.Errorf("LRU victim = %d (ok=%v), want 0", v.Num, ok)
	}
}

// TestDataAwarePrefersCheapVictim: between a clean sequential set and a dirty
// random set with equal recency, the policy drains the cheap one.
func TestDataAwarePrefersCheapVictim(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)
	cheap, _ := bp.CreateSet(SetSpec{Name: "cheap", PageSize: 1024, Durability: WriteThrough})
	costly, _ := bp.CreateSet(SetSpec{Name: "costly", PageSize: 1024})
	costly.SetWriting(RandomMutableWrite)
	for i := 0; i < 4; i++ {
		p, _ := cheap.NewPage()
		_ = cheap.Unpin(p, true) // flushed at unpin: clean
		q, _ := costly.NewPage()
		_ = costly.Unpin(q, true) // dirty write-back
	}
	// Equalise recency to isolate the attribute-driven cost difference.
	now := bp.tick.Load()
	for _, s := range []*LocalitySet{cheap, costly} {
		s.mu.Lock()
		for _, p := range s.resident {
			p.lastRef = now
		}
		s.mu.Unlock()
	}
	victims, err := NewDataAware().SelectVictims(bp.snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) == 0 {
		t.Fatal("no victims")
	}
	for _, v := range victims {
		if v.Set.Name != "cheap" {
			t.Errorf("victim from %q, want all from cheap clean set", v.Set.Name)
		}
	}
}
