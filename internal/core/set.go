package core

import (
	"fmt"
	"sort"

	"pangea/internal/pfs"
)

// SetID identifies a locality set within one Pangea deployment.
type SetID int32

// LocalitySet is a set of pages associated with one dataset that an
// application uses in a uniform way (paper §3.2). All pages of a set share
// one size. A page may reside in memory, on disk, or both: the set's file
// instance (one Pangea data file + meta file per node, §4) holds images of
// all, some, or none of its pages, because transient write-back sets spill
// only under memory pressure.
type LocalitySet struct {
	pool     *BufferPool
	id       SetID
	name     string
	pageSize int64

	// Everything below is guarded by pool.mu.
	attrs      Attributes
	file       *pfs.PagedFile
	resident   map[int64]*Page
	loading    map[int64]bool // pages being read from disk right now
	nextNum    int64
	lastAccess int64 // AccessRecency: tick of the set's last page access
	dropped    bool
}

// ID returns the set's identifier.
func (s *LocalitySet) ID() SetID { return s.id }

// Name returns the set's name.
func (s *LocalitySet) Name() string { return s.name }

// PageSize returns the fixed page size shared by all pages of the set.
func (s *LocalitySet) PageSize() int64 { return s.pageSize }

// Attrs returns a snapshot of the set's attribute tags.
func (s *LocalitySet) Attrs() Attributes {
	s.pool.mu.Lock()
	defer s.pool.mu.Unlock()
	return s.attrs
}

// SetWriting stamps the writing-pattern attribute. Services call this when
// an allocator is attached to the set (§3.2).
func (s *LocalitySet) SetWriting(w WritingPattern) {
	s.pool.mu.Lock()
	s.attrs.Writing = w
	s.pool.mu.Unlock()
}

// SetReading stamps the reading-pattern attribute.
func (s *LocalitySet) SetReading(r ReadingPattern) {
	s.pool.mu.Lock()
	s.attrs.Reading = r
	s.pool.mu.Unlock()
}

// SetCurrentOp stamps the current-operation attribute.
func (s *LocalitySet) SetCurrentOp(op CurrentOperation) {
	s.pool.mu.Lock()
	s.attrs.CurrentOp = op
	s.pool.mu.Unlock()
}

// SetPinnedLocation marks the set's Location attribute: a pinned set is
// never chosen for eviction.
func (s *LocalitySet) SetPinnedLocation(pinned bool) {
	s.pool.mu.Lock()
	s.attrs.Pinned = pinned
	s.pool.mu.Unlock()
}

// EndLifetime declares that the data will never be accessed again. Pages of
// lifetime-ended sets are always evicted first, and dirty pages are dropped
// without being spilled (§6).
func (s *LocalitySet) EndLifetime() {
	s.pool.mu.Lock()
	s.attrs.LifetimeEnded = true
	s.pool.mu.Unlock()
}

// NumPages returns the total number of logical pages ever appended to the
// set on this node (resident and/or spilled).
func (s *LocalitySet) NumPages() int64 {
	s.pool.mu.Lock()
	defer s.pool.mu.Unlock()
	return s.nextNum
}

// ResidentPages returns how many of the set's pages are currently cached.
func (s *LocalitySet) ResidentPages() int {
	s.pool.mu.Lock()
	defer s.pool.mu.Unlock()
	return len(s.resident)
}

// PageNums returns the sorted page numbers of the set on this node.
func (s *LocalitySet) PageNums() []int64 {
	s.pool.mu.Lock()
	n := s.nextNum
	s.pool.mu.Unlock()
	nums := make([]int64, n)
	for i := range nums {
		nums[i] = int64(i)
	}
	return nums
}

// NewPage appends a fresh page to the set and returns it pinned and dirty.
// The caller must Unpin it when done writing.
func (s *LocalitySet) NewPage() (*Page, error) {
	off, err := s.pool.allocMem(s.pageSize)
	if err != nil {
		return nil, fmt.Errorf("core: new page for set %q: %w", s.name, err)
	}
	bp := s.pool
	bp.mu.Lock()
	if s.dropped {
		bp.mu.Unlock()
		bp.alloc.Free(off)
		return nil, fmt.Errorf("core: set %q is dropped", s.name)
	}
	tick := bp.nextTick()
	p := &Page{set: s, num: s.nextNum, off: off, size: s.pageSize, pin: 1, dirty: true, lastRef: tick}
	s.nextNum++
	s.resident[p.num] = p
	s.lastAccess = tick
	bp.mu.Unlock()
	return p, nil
}

// Pin makes page num resident (loading it from the set's file instance if
// needed), increments its reference count, and returns it. The caller must
// Unpin it.
func (s *LocalitySet) Pin(num int64) (*Page, error) {
	bp := s.pool
	bp.mu.Lock()
	for {
		if s.dropped {
			bp.mu.Unlock()
			return nil, fmt.Errorf("core: set %q is dropped", s.name)
		}
		if p, ok := s.resident[num]; ok {
			if p.evicting {
				bp.cond.Wait()
				continue
			}
			p.pin++
			tick := bp.nextTick()
			p.lastRef = tick
			s.lastAccess = tick
			bp.mu.Unlock()
			return p, nil
		}
		if s.loading[num] {
			// Another goroutine is reading this page from disk.
			bp.cond.Wait()
			continue
		}
		break
	}
	if num < 0 || num >= s.nextNum {
		bp.mu.Unlock()
		return nil, fmt.Errorf("core: set %q has no page %d", s.name, num)
	}
	s.loading[num] = true
	bp.mu.Unlock()

	finish := func() {
		bp.mu.Lock()
		delete(s.loading, num)
		bp.cond.Broadcast()
		bp.mu.Unlock()
	}
	off, err := bp.allocMem(s.pageSize)
	if err != nil {
		finish()
		return nil, fmt.Errorf("core: pin page %d of set %q: %w", num, s.name, err)
	}
	buf := bp.arena.Slice(off, s.pageSize)
	if err := s.file.ReadPage(num, buf); err != nil {
		bp.alloc.Free(off)
		finish()
		return nil, fmt.Errorf("core: load page %d of set %q: %w", num, s.name, err)
	}
	bp.stats.Loads.Add(1)
	bp.mu.Lock()
	delete(s.loading, num)
	tick := bp.nextTick()
	p := &Page{set: s, num: num, off: off, size: s.pageSize, pin: 1, dirty: false, lastRef: tick}
	s.resident[num] = p
	s.lastAccess = tick
	bp.cond.Broadcast()
	bp.mu.Unlock()
	return p, nil
}

// Unpin releases one reference to the page. If dirty is true the page is
// marked modified; for write-through sets a modified page is synchronously
// persisted to the set's file instance before the pin drops (§4).
func (s *LocalitySet) Unpin(p *Page, dirty bool) error {
	bp := s.pool
	bp.mu.Lock()
	if p.pin <= 0 {
		bp.mu.Unlock()
		return fmt.Errorf("core: unpin of unpinned page %d of set %q", p.num, s.name)
	}
	if dirty {
		p.dirty = true
	}
	needFlush := p.dirty && s.attrs.Durability == WriteThrough && !s.attrs.LifetimeEnded
	bp.mu.Unlock()

	var flushErr error
	if needFlush {
		flushErr = s.file.WritePage(p.num, p.Bytes())
		if flushErr == nil {
			bp.stats.FlushWrites.Add(1)
		}
	}
	bp.mu.Lock()
	if needFlush && flushErr == nil {
		p.dirty = false
	}
	p.pin--
	if p.pin == 0 {
		bp.cond.Broadcast()
	}
	bp.mu.Unlock()
	return flushErr
}

// Touch bumps the page's recency without re-pinning, for long computations
// that keep referencing a pinned page.
func (s *LocalitySet) Touch(p *Page) {
	bp := s.pool
	bp.mu.Lock()
	tick := bp.nextTick()
	p.lastRef = tick
	s.lastAccess = tick
	bp.mu.Unlock()
}

// FlushAll persists every resident dirty page. Used to force a consistent
// on-disk image (e.g. before registering the set as a replica).
func (s *LocalitySet) FlushAll() error {
	bp := s.pool
	bp.mu.Lock()
	var dirtyPages []*Page
	for _, p := range s.resident {
		if p.dirty {
			p.pin++ // hold against eviction during the write
			dirtyPages = append(dirtyPages, p)
		}
	}
	bp.mu.Unlock()
	var first error
	for _, p := range dirtyPages {
		if err := s.file.WritePage(p.num, p.Bytes()); err != nil && first == nil {
			first = err
		}
	}
	bp.mu.Lock()
	for _, p := range dirtyPages {
		if first == nil {
			p.dirty = false
		}
		p.pin--
	}
	bp.cond.Broadcast()
	bp.mu.Unlock()
	if first != nil {
		return first
	}
	return s.file.FlushMeta()
}

// DiskBytes reports the set's on-disk footprint on this node.
func (s *LocalitySet) DiskBytes() int64 { return s.file.DiskBytes() }

// --- policy-facing accessors (pool lock held by the paging system) ---------

// PolicyAttrs returns the set's attributes. It must be called only from a
// Policy with the pool lock held.
func (s *LocalitySet) PolicyAttrs() Attributes { return s.attrs }

// PolicyLastAccess returns the set-level AccessRecency tick. Policy-only.
func (s *LocalitySet) PolicyLastAccess() int64 { return s.lastAccess }

// PolicyResidentCount returns the number of resident pages. Policy-only.
func (s *LocalitySet) PolicyResidentCount() int { return len(s.resident) }

// PolicyTotalPages returns the total logical page count of the set (resident
// or spilled), which DBMIN's looping/random size estimates use. Policy-only.
func (s *LocalitySet) PolicyTotalPages() int64 { return s.nextNum }

// PolicyEvictable lists the set's pages that may be evicted right now:
// resident, unpinned, and not already being evicted. Returns nil for sets
// whose Location attribute pins them in memory. Policy-only.
func (s *LocalitySet) PolicyEvictable() []*Page {
	if s.attrs.Pinned || s.dropped {
		return nil
	}
	out := make([]*Page, 0, len(s.resident))
	for _, p := range s.resident {
		if p.pin == 0 && !p.evicting {
			out = append(out, p)
		}
	}
	return out
}

// PolicyNextVictim returns the page the set's own replacement strategy
// (MRU/LRU, derived from its access-pattern tags) would evict next, or nil
// if nothing is evictable. Policy-only.
func (s *LocalitySet) PolicyNextVictim() *Page {
	cands := s.PolicyEvictable()
	if len(cands) == 0 {
		return nil
	}
	mru := s.attrs.Strategy() == EvictMRU
	best := cands[0]
	for _, p := range cands[1:] {
		if mru && p.lastRef > best.lastRef || !mru && p.lastRef < best.lastRef {
			best = p
		}
	}
	return best
}

// PolicyVictimBatch returns the pages one eviction round takes from this
// set: a single page while the set is being written (evicting fresh output
// is costly), or 10% of the evictable pages for read-only sets, in the
// set's strategy order (§6). Policy-only.
func (s *LocalitySet) PolicyVictimBatch() []*Page {
	cands := s.PolicyEvictable()
	if len(cands) == 0 {
		return nil
	}
	mru := s.attrs.Strategy() == EvictMRU
	sort.Slice(cands, func(i, j int) bool {
		if mru {
			return cands[i].lastRef > cands[j].lastRef
		}
		return cands[i].lastRef < cands[j].lastRef
	})
	n := 1
	if !s.attrs.CurrentOp.involvesWrite() {
		n = (len(cands) + 9) / 10 // ceil(10%)
	}
	return cands[:n]
}
