package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pangea/internal/locking"
	"pangea/internal/pfs"
)

// SetID identifies a locality set within one Pangea deployment.
type SetID int32

// LocalitySet is a set of pages associated with one dataset that an
// application uses in a uniform way (paper §3.2). All pages of a set share
// one size. A page may reside in memory, on disk, or both: the set's file
// instance (one Pangea data file + meta file per node, §4) holds images of
// all, some, or none of its pages, because transient write-back sets spill
// only under memory pressure.
type LocalitySet struct {
	pool     *BufferPool
	id       SetID
	name     string
	pageSize int64
	layout   PageLayout // page layout; immutable after CreateSet
	columns  []int      // columnar column widths; immutable after CreateSet
	home     int        // home allocator shard; page memory prefers this shard
	homeNode int        // NUMA node of the home shard (the creating worker's)
	quota    int64      // admission control: resident-byte cap, 0 = unlimited
	weight   float64    // fair-share weight, 0 = unweighted

	// residentBytes is the set's arena footprint. It is mutated exactly
	// once per frame transition — charged the moment allocMem carves a
	// frame for the set (before the page is even inserted, so the daemon
	// can never observe an under-quota set that is in fact mid-growth) and
	// released when the frame is freed (eviction, DropSet, or an abandoned
	// load). At quiescence residentBytes == len(resident)·pageSize, the
	// invariant the stress tests check. It is an atomic so the eviction
	// daemon and the per-set gauges read it without taking the set's lock.
	residentBytes atomic.Int64
	// pendingBytes counts allocation demand currently blocked in allocMem
	// on this set's behalf. It counts toward the set's footprint in the
	// fairness pass, so a tenant sitting exactly at its entitlement whose
	// next page would push it over self-evicts for that page instead of
	// stealing from an under-quota set. Touched only on the blocked path.
	pendingBytes atomic.Int64
	// spills counts dirty write-backs of this set's pages, attributed by
	// the spill pipeline; loads counts pages read back from disk on a pin
	// miss. The fairness experiment reads both to show which tenant
	// absorbs the eviction I/O and who is forced to re-read.
	spills atomic.Int64
	loads  atomic.Int64
	// zmChecks counts pages a scan evaluated against this set's zone map;
	// zmSkips the pages those checks pruned (never pinned or read). Bumped
	// by NoteZoneMap from the query layer's predicate scans.
	zmChecks atomic.Int64
	zmSkips  atomic.Int64
	// idxChecks counts pages a point-lookup scan evaluated against this
	// set's microindex; idxHits the candidate pages the index kept — the
	// rest never reached the zone-map pass, a pin, or a drive. Bumped by
	// NoteMicroindex from the query layer's predicate scans.
	idxChecks atomic.Int64
	idxHits   atomic.Int64

	// mu guards everything below, plus the mutable fields of this set's
	// Pages. Each set has its own lock so Pin/Unpin/NewPage traffic on
	// different sets never contends; cond wakes waiters for pages that are
	// mid-load or mid-eviction.
	mu       locking.Mutex
	cond     *sync.Cond
	attrs    Attributes
	file     *pfs.PagedFile
	resident map[int64]*Page
	// loading holds one loadOp per page currently being read from disk —
	// demand misses and prefetches alike. Pins of a loading page coalesce
	// onto the op and share its outcome (frame or error) single-flight
	// style instead of issuing their own reads.
	loading    map[int64]*loadOp
	nextNum    int64
	lastAccess int64 // AccessRecency: tick of the set's last page access
	dropped    bool
	// sideIndexes is a small keyed registry of opaque scan-side summaries
	// attached to the set (the services zone map and microindex; core
	// cannot name the types without an import cycle). Keys are the side
	// objects' pfs tags, so one set carries several coexisting summaries;
	// scans read them through SideIndex to prune pages before pinning.
	sideIndexes map[string]any
	// prefetchFilter, when non-nil, limits speculation to pages it accepts:
	// Prefetch and the automatic read-ahead skip pages the filter rejects,
	// and rejected pages never charge the starved-speculation reclaim
	// budget (they were never going to be read). Installed by predicate
	// scans for the pages their zone map pruned.
	prefetchFilter func(num int64) bool
}

// ID returns the set's identifier.
func (s *LocalitySet) ID() SetID { return s.id }

// Name returns the set's name.
func (s *LocalitySet) Name() string { return s.name }

// PageSize returns the fixed page size shared by all pages of the set.
func (s *LocalitySet) PageSize() int64 { return s.pageSize }

// Layout returns the set's page layout (LayoutRow unless the spec asked
// for columnar pages).
func (s *LocalitySet) Layout() PageLayout { return s.layout }

// ColumnWidths returns the fixed byte width of each column for columnar
// sets (nil for row layout). The slice is shared and must not be mutated.
func (s *LocalitySet) ColumnWidths() []int { return s.columns }

// HomeNode returns the NUMA node of the set's home allocator shard — the
// node of the worker that created the set, when that node owns shards. The
// set's page memory is node-local to it unless the node was exhausted at
// allocation time.
func (s *LocalitySet) HomeNode() int { return s.homeNode }

// Attrs returns a snapshot of the set's attribute tags.
func (s *LocalitySet) Attrs() Attributes {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs
}

// SetWriting stamps the writing-pattern attribute. Services call this when
// an allocator is attached to the set (§3.2).
func (s *LocalitySet) SetWriting(w WritingPattern) {
	s.mu.Lock()
	s.attrs.Writing = w
	s.mu.Unlock()
}

// SetReading stamps the reading-pattern attribute.
func (s *LocalitySet) SetReading(r ReadingPattern) {
	s.mu.Lock()
	s.attrs.Reading = r
	s.mu.Unlock()
}

// SetCurrentOp stamps the current-operation attribute.
func (s *LocalitySet) SetCurrentOp(op CurrentOperation) {
	s.mu.Lock()
	s.attrs.CurrentOp = op
	s.mu.Unlock()
}

// SetPinnedLocation marks the set's Location attribute: a pinned set is
// never chosen for eviction.
func (s *LocalitySet) SetPinnedLocation(pinned bool) {
	s.mu.Lock()
	s.attrs.Pinned = pinned
	s.mu.Unlock()
	if !pinned && s.pool.evictor.waiters.Load() > 0 {
		// The whole set just became eligible for eviction; wake blocked
		// allocations so their retry re-kicks the daemon.
		s.pool.evictor.broadcast(nil)
	}
}

// EndLifetime declares that the data will never be accessed again. Pages of
// lifetime-ended sets are always evicted first, and dirty pages are dropped
// without being spilled (§6).
func (s *LocalitySet) EndLifetime() {
	s.mu.Lock()
	s.attrs.LifetimeEnded = true
	s.mu.Unlock()
}

// NumPages returns the total number of logical pages ever appended to the
// set on this node (resident and/or spilled).
func (s *LocalitySet) NumPages() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextNum
}

// ResidentPages returns how many of the set's pages are currently cached.
func (s *LocalitySet) ResidentPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.resident)
}

// ResidentBytes returns the set's resident-page footprint in bytes.
func (s *LocalitySet) ResidentBytes() int64 { return s.residentBytes.Load() }

// MemoryQuota returns the set's resident-byte cap (0 = unlimited).
func (s *LocalitySet) MemoryQuota() int64 { return s.quota }

// Weight returns the set's fair-share weight (0 = unweighted).
func (s *LocalitySet) Weight() float64 { return s.weight }

// Entitlement returns the set's fair share of the pool in bytes: its
// quota if one is set, else its weight-proportional share of the arena,
// else the whole arena (an unconstrained set is never over-entitled).
func (s *LocalitySet) Entitlement() int64 { return s.pool.entitlement(s) }

// SpillWrites returns how many of this set's dirty pages the eviction
// daemon has written back.
func (s *LocalitySet) SpillWrites() int64 { return s.spills.Load() }

// LoadReads returns how many of this set's pages were read from disk — on
// demand pin misses and by the prefetcher alike. For a set that never
// declared a sequential reading pattern it counts exactly the pages the set
// once had resident and lost.
func (s *LocalitySet) LoadReads() int64 { return s.loads.Load() }

// ZoneMapChecks returns how many pages scans evaluated against this set's
// zone map before pinning.
func (s *LocalitySet) ZoneMapChecks() int64 { return s.zmChecks.Load() }

// ZoneMapSkips returns how many of those checked pages the zone map pruned —
// pages a selective scan never pinned, read, or speculated on.
func (s *LocalitySet) ZoneMapSkips() int64 { return s.zmSkips.Load() }

// NoteZoneMap attributes one scan's zone-map consultation to the set and the
// pool: checks pages evaluated, skips the subset pruned.
func (s *LocalitySet) NoteZoneMap(checks, skips int64) {
	s.zmChecks.Add(checks)
	s.zmSkips.Add(skips)
	s.pool.stats.ZoneMapChecks.Add(checks)
	s.pool.stats.ZoneMapSkips.Add(skips)
}

// IndexChecks returns how many pages point-lookup scans evaluated against
// this set's microindex.
func (s *LocalitySet) IndexChecks() int64 { return s.idxChecks.Load() }

// IndexHits returns how many of those checked pages the microindex kept as
// candidates — every other page was dropped before the zone-map pass, any
// pin, or any I/O.
func (s *LocalitySet) IndexHits() int64 { return s.idxHits.Load() }

// NoteMicroindex attributes one scan's microindex consultation to the set
// and the pool: checks pages evaluated, hits the candidate subset kept.
func (s *LocalitySet) NoteMicroindex(checks, hits int64) {
	s.idxChecks.Add(checks)
	s.idxHits.Add(hits)
	s.pool.stats.IndexChecks.Add(checks)
	s.pool.stats.IndexHits.Add(hits)
}

// NoteSideObjectRebuild records that one of the set's persisted side
// objects (zone map, microindex) was present but unusable — torn or
// undecodable — and was healed by a full-scan rebuild.
func (s *LocalitySet) NoteSideObjectRebuild() { s.pool.stats.SideObjectRebuilds.Add(1) }

// SetSideIndex attaches an opaque scan-side summary (e.g. the services zone
// map or microindex) under key — conventionally the summary's pfs
// side-object tag; nil detaches that key. Keys are independent, so several
// summaries coexist on one set. The set does not interpret the values — the
// query layer type-asserts what it finds.
func (s *LocalitySet) SetSideIndex(key string, idx any) {
	s.mu.Lock()
	if idx == nil {
		delete(s.sideIndexes, key)
	} else {
		if s.sideIndexes == nil {
			s.sideIndexes = make(map[string]any)
		}
		s.sideIndexes[key] = idx
	}
	s.mu.Unlock()
}

// SideIndex returns the scan-side summary attached under key, or nil.
func (s *LocalitySet) SideIndex(key string) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sideIndexes[key]
}

// SetPrefetchFilter installs (or with nil clears) a filter limiting
// speculation to pages the filter accepts. A predicate scan installs one for
// the duration of a pruned scan so neither its own hints nor the automatic
// read-ahead speculate on pages the predicate excludes; pages the filter
// rejects also never count toward the starved-speculation reclaim budget.
// Concurrent scans overwrite each other (last writer wins) — the filter is a
// conservative performance hint, never a correctness gate: demand Pins
// ignore it.
func (s *LocalitySet) SetPrefetchFilter(f func(num int64) bool) {
	s.mu.Lock()
	s.prefetchFilter = f
	s.mu.Unlock()
}

// prefetchFilterFn snapshots the current prefetch filter.
func (s *LocalitySet) prefetchFilterFn() func(num int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prefetchFilter
}

// WriteSideObject persists a named per-set side object (e.g. a serialized
// zone map) through the set's file instance. The object is replaced
// atomically with respect to readers of this process.
func (s *LocalitySet) WriteSideObject(tag string, data []byte) error {
	return s.file.WriteSideObject(tag, data)
}

// ReadSideObject returns the contents of a named side object, or an error
// wrapping pfs.ErrNoSideObject when none was ever written.
func (s *LocalitySet) ReadSideObject(tag string) ([]byte, error) {
	return s.file.ReadSideObject(tag)
}

// dropFrame frees a carved frame that never became (or no longer is) a
// resident page and releases its admission charge — the abandon-path
// counterpart of allocMem's charge.
func (s *LocalitySet) dropFrame(off int64) {
	s.pool.alloc.Free(off)
	s.releaseResident(s.pageSize)
}

// chargeResident books n bytes against the set's residency gauge and
// returns the new total. Every resident-byte mutation must flow through
// chargeResident/releaseResident — the gaugepair analyzer enforces this, so
// charge/release sites stay greppable and pair up one-to-one.
func (s *LocalitySet) chargeResident(n int64) int64 {
	return s.residentBytes.Add(n)
}

// releaseResident unwinds a chargeResident of n bytes.
func (s *LocalitySet) releaseResident(n int64) {
	s.residentBytes.Add(-n)
}

// chargePending books n bytes of blocked demand against the set's fairness
// footprint; the blessed twin of releasePending (see chargeResident).
func (s *LocalitySet) chargePending(n int64) int64 {
	return s.pendingBytes.Add(n)
}

// releasePending unwinds a chargePending of n bytes.
func (s *LocalitySet) releasePending(n int64) {
	s.pendingBytes.Add(-n)
}

// PageNums returns the sorted page numbers of the set on this node.
func (s *LocalitySet) PageNums() []int64 {
	s.mu.Lock()
	n := s.nextNum
	s.mu.Unlock()
	nums := make([]int64, n)
	for i := range nums {
		nums[i] = int64(i)
	}
	return nums
}

// NewPage appends a fresh page to the set and returns it pinned and dirty.
// The caller must Unpin it when done writing.
func (s *LocalitySet) NewPage() (*Page, error) {
	bp := s.pool
	off, err := bp.allocMem(s, s.pageSize)
	if err != nil {
		return nil, fmt.Errorf("core: new page for set %q: %w", s.name, err)
	}
	s.mu.Lock()
	if s.dropped {
		s.mu.Unlock()
		s.dropFrame(off)
		return nil, fmt.Errorf("core: set %q is dropped", s.name)
	}
	tick := bp.nextTick()
	p := &Page{set: s, num: s.nextNum, off: off, size: s.pageSize, pin: 1, dirty: true, lastRef: tick}
	s.nextNum++
	s.resident[p.num] = p
	s.lastAccess = tick
	s.mu.Unlock()
	return p, nil
}

// Pin makes page num resident (loading it from the set's file instance if
// needed), increments its reference count, and returns it. The caller must
// Unpin it.
//
// A pin of a page that is already mid-load — whether by a demand miss or by
// the prefetcher — coalesces onto the in-flight read single-flight style:
// one disk read serves every waiter, and if the read fails every waiter gets
// the loader's error instead of fanning out into its own retry read. On a
// set with a declared sequential reading pattern, both a demand miss and the
// first reference to a prefetched frame schedule read-ahead of the next
// window (see PoolConfig.ReadAhead), overlapping the scan's disk reads with
// its computation.
func (s *LocalitySet) Pin(num int64) (*Page, error) {
	bp := s.pool
	s.mu.Lock()
	for {
		if s.dropped {
			s.mu.Unlock()
			return nil, fmt.Errorf("core: set %q is dropped", s.name)
		}
		if p, ok := s.resident[num]; ok {
			if p.evicting {
				s.cond.Wait()
				continue
			}
			p.pin++
			tick := bp.nextTick()
			p.lastRef = tick
			s.lastAccess = tick
			ra := 0
			if p.prefetched {
				// First real reference to a speculative frame: the guess paid
				// off. Keep the window rolling ahead of the consumer.
				p.prefetched = false
				bp.stats.PrefetchHits.Add(1)
				ra = s.readAheadLocked()
			}
			s.mu.Unlock()
			if ra > 0 {
				s.readAheadFrom(num, ra)
			}
			return p, nil
		}
		if op := s.loading[num]; op != nil {
			// Another goroutine is reading this page from disk; wait for its
			// outcome instead of issuing a second read.
			for !op.done {
				s.cond.Wait()
			}
			if op.err != nil {
				s.mu.Unlock()
				return nil, fmt.Errorf("core: load page %d of set %q: %w", num, s.name, op.err)
			}
			// Loaded (the resident branch picks it up) or canceled before a
			// frame was carved (this pin becomes the loader).
			continue
		}
		break
	}
	if num < 0 || num >= s.nextNum {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: set %q has no page %d", s.name, num)
	}
	op := &loadOp{}
	s.loading[num] = op
	ra := s.readAheadLocked()
	s.mu.Unlock()

	if ra > 0 {
		// Demand miss on a sequential reader: schedule the window before
		// paying for the synchronous read below, so the drives work on the
		// next pages while this one loads.
		s.readAheadFrom(num, ra)
	}
	bp.stats.LoadsInFlight.Add(1)
	defer bp.stats.LoadsInFlight.Add(-1)
	off, err := bp.allocMem(s, s.pageSize)
	if err != nil {
		s.cancelLoad(num, op)
		return nil, fmt.Errorf("core: pin page %d of set %q: %w", num, s.name, err)
	}
	loc, err := s.file.Locate(num)
	if err == nil {
		err = s.file.ReadPageAt(loc, num, bp.arena.Slice(off, s.pageSize))
	}
	return s.finishLoad(num, op, off, err, false)
}

// Unpin releases one reference to the page. If dirty is true the page is
// marked modified; for write-through sets a modified page is synchronously
// persisted to the set's file instance before the pin drops (§4).
func (s *LocalitySet) Unpin(p *Page, dirty bool) error {
	bp := s.pool
	s.mu.Lock()
	if p.pin <= 0 {
		s.mu.Unlock()
		return fmt.Errorf("core: unpin of unpinned page %d of set %q", p.num, s.name)
	}
	if dirty {
		p.dirty = true
	}
	needFlush := p.dirty && s.attrs.Durability == WriteThrough && !s.attrs.LifetimeEnded
	s.mu.Unlock()

	var flushErr error
	if needFlush {
		flushErr = s.file.WritePage(p.num, p.Bytes())
		if flushErr == nil {
			bp.stats.FlushWrites.Add(1)
		}
	}
	s.mu.Lock()
	if needFlush && flushErr == nil {
		p.dirty = false
	}
	p.pin--
	nowEvictable := p.pin == 0
	s.mu.Unlock()
	if nowEvictable && bp.evictor.waiters.Load() > 0 {
		// The page just became evictable; let blocked allocations retry
		// (their retry re-kicks the eviction daemon).
		bp.evictor.broadcast(nil)
	}
	return flushErr
}

// Touch bumps the page's recency without re-pinning, for long computations
// that keep referencing a pinned page.
func (s *LocalitySet) Touch(p *Page) {
	tick := s.pool.nextTick()
	s.mu.Lock()
	p.lastRef = tick
	s.lastAccess = tick
	s.mu.Unlock()
}

// FlushAll persists every resident dirty page. Used to force a consistent
// on-disk image (e.g. before registering the set as a replica).
func (s *LocalitySet) FlushAll() error {
	s.mu.Lock()
	// Wait out in-flight evictions of dirty pages: the daemon is already
	// writing those back, and pinning a page mid-eviction would let its
	// memory be recycled while we hold it.
	for {
		busy := false
		for _, p := range s.resident {
			if p.dirty && p.evicting {
				busy = true
				break
			}
		}
		if !busy {
			break
		}
		s.cond.Wait()
	}
	var dirtyPages []*Page
	for _, p := range s.resident {
		if p.dirty {
			p.pin++ // hold against eviction during the write
			dirtyPages = append(dirtyPages, p)
		}
	}
	s.mu.Unlock()
	var first error
	for _, p := range dirtyPages {
		if err := s.file.WritePage(p.num, p.Bytes()); err != nil && first == nil {
			first = err
		}
	}
	s.mu.Lock()
	released := false
	for _, p := range dirtyPages {
		if first == nil {
			p.dirty = false
		}
		p.pin--
		if p.pin == 0 {
			released = true
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if released && s.pool.evictor.waiters.Load() > 0 {
		// Pages held against eviction during the writes are evictable
		// again; wake blocked allocations.
		s.pool.evictor.broadcast(nil)
	}
	if first != nil {
		return first
	}
	return s.file.FlushMeta()
}

// DiskBytes reports the set's on-disk footprint on this node.
func (s *LocalitySet) DiskBytes() int64 { return s.file.DiskBytes() }
