package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"pangea/internal/disk"
)

// stamp writes a recognizable pattern derived from (set, page) into buf, and
// check verifies it; together they catch pages whose memory was recycled
// while still reachable, the classic failure of a racy eviction path.
func stamp(buf []byte, set, num int64) {
	n := len(buf)
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		buf[i] = byte(set*31 + num*7 + int64(i))
	}
}

func checkStamp(buf []byte, set, num int64) error {
	n := len(buf)
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		if buf[i] != byte(set*31+num*7+int64(i)) {
			return fmt.Errorf("set %d page %d corrupt at byte %d", set, num, i)
		}
	}
	return nil
}

// TestPoolConcurrentStress hammers Pin/Unpin/NewPage/Touch across several
// locality sets from many goroutines while a churn goroutine creates,
// fills, lifetime-ends and drops extra sets — all under enough memory
// pressure that the eviction daemon runs constantly. Run with -race; the
// content stamps verify that no page's memory is recycled while reachable.
func TestPoolConcurrentStress(t *testing.T) {
	const (
		pageSize = 4 << 10
		nSets    = 4
		pages    = 24 // logical pages per set: 96 total vs a 40-page pool
		workers  = 8
		iters    = 300
	)
	arr, err := disk.NewArray(t.TempDir(), 2, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	bp, err := NewPool(PoolConfig{Memory: 40 * pageSize, Array: arr})
	if err != nil {
		t.Fatal(err)
	}

	sets := make([]*LocalitySet, nSets)
	written := make([]atomic.Int64, nSets) // pages fully written, safe to pin
	for i := range sets {
		s, err := bp.CreateSet(SetSpec{Name: fmt.Sprintf("s%d", i), PageSize: pageSize})
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = s
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers+1)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for it := 0; it < iters; it++ {
				si := rng.Intn(nSets)
				s := sets[si]
				avail := written[si].Load()
				if avail < pages && (avail == 0 || rng.Intn(3) == 0) {
					p, err := s.NewPage()
					if err != nil {
						fail(fmt.Errorf("worker %d: NewPage: %w", w, err))
						return
					}
					stamp(p.Bytes(), int64(si), p.Num())
					if rng.Intn(4) == 0 {
						s.Touch(p)
					}
					if err := s.Unpin(p, true); err != nil {
						fail(err)
						return
					}
					// Only count pages written in order; concurrent NewPage
					// calls may interleave, so advance conservatively.
					for {
						cur := written[si].Load()
						if p.Num() != cur || written[si].CompareAndSwap(cur, cur+1) {
							break
						}
					}
					continue
				}
				num := rng.Int63n(avail)
				p, err := s.Pin(num)
				if err != nil {
					fail(fmt.Errorf("worker %d: Pin(%s,%d): %w", w, s.Name(), num, err))
					return
				}
				if err := checkStamp(p.Bytes(), int64(si), num); err != nil {
					fail(err)
				}
				if err := s.Unpin(p, false); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}

	// Churn goroutine: transient sets appear, fill, end their lifetime and
	// vanish, exercising DropSet against the eviction daemon.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 10; round++ {
			c, err := bp.CreateSet(SetSpec{Name: fmt.Sprintf("churn%d", round), PageSize: pageSize})
			if err != nil {
				fail(err)
				return
			}
			for i := 0; i < 6; i++ {
				p, err := c.NewPage()
				if err != nil {
					fail(err)
					return
				}
				stamp(p.Bytes(), -1, p.Num())
				if err := c.Unpin(p, true); err != nil {
					fail(err)
					return
				}
			}
			c.EndLifetime()
			if err := bp.DropSet(c); err != nil {
				fail(err)
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Invariants after the storm: accounting is sane, every allocator
	// shard's physical chain is intact, every set's admission gauge matches
	// its resident map (each release path unwound it exactly once), and
	// every page that was fully written survives with its contents intact.
	if err := bp.alloc.CheckConsistency(); err != nil {
		t.Fatalf("allocator inconsistent after stress: %v", err)
	}
	checkResidencyGauges(t, sets)
	if used := bp.UsedBytes(); used < 0 || used > bp.Capacity() {
		t.Fatalf("UsedBytes %d outside [0, %d]", used, bp.Capacity())
	}
	if peak := bp.PeakBytes(); peak > bp.Capacity() {
		t.Fatalf("PeakBytes %d exceeds capacity %d", peak, bp.Capacity())
	}
	for si, s := range sets {
		if int64(s.ResidentPages()) > s.NumPages() {
			t.Fatalf("set %s: resident %d > total %d", s.Name(), s.ResidentPages(), s.NumPages())
		}
		for num := int64(0); num < written[si].Load(); num++ {
			p, err := s.Pin(num)
			if err != nil {
				t.Fatalf("final Pin(%s,%d): %v", s.Name(), num, err)
			}
			if err := checkStamp(p.Bytes(), int64(si), num); err != nil {
				t.Error(err)
			}
			if err := s.Unpin(p, false); err != nil {
				t.Fatal(err)
			}
		}
		if err := bp.DropSet(s); err != nil {
			t.Fatalf("DropSet(%s): %v", s.Name(), err)
		}
		if got := s.ResidentBytes(); got != 0 {
			t.Errorf("set %s: ResidentBytes = %d after DropSet, want 0", s.Name(), got)
		}
	}
	if bp.UsedBytes() != 0 {
		t.Errorf("UsedBytes = %d after dropping every set, want 0", bp.UsedBytes())
	}
}

// TestPoolAllocatorShardStress exercises the sharded allocation path at
// pool level with a multi-shard arena: workers churn pages on their own
// sets (each homed on a shard by set ID) and periodically drop/recreate
// them, while interleaved per-shard consistency checks run. Run with -race.
func TestPoolAllocatorShardStress(t *testing.T) {
	const (
		pageSize = 4 << 10
		workers  = 8
		iters    = 400
	)
	arr, err := disk.NewArray(t.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	// 8 MiB arena: sharded when the machine has multiple cores (1 MiB
	// minimum shard size), so workers exercise home routing and stealing.
	bp, err := NewPool(PoolConfig{Memory: 8 << 20, Array: arr})
	if err != nil {
		t.Fatal(err)
	}

	var workersWG sync.WaitGroup
	errCh := make(chan error, workers+1)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			gen := 0
			s, err := bp.CreateSet(SetSpec{Name: fmt.Sprintf("w%d.%d", w, gen), PageSize: pageSize})
			if err != nil {
				fail(err)
				return
			}
			for it := 0; it < iters; it++ {
				p, err := s.NewPage()
				if err != nil {
					fail(fmt.Errorf("worker %d: NewPage: %w", w, err))
					return
				}
				stamp(p.Bytes(), int64(w), p.Num())
				if err := s.Unpin(p, false); err != nil {
					fail(err)
					return
				}
				// Recycle the whole set periodically so the allocator sees
				// batched frees and fresh home-shard assignments.
				if s.NumPages() >= 64 {
					if err := bp.DropSet(s); err != nil {
						fail(fmt.Errorf("worker %d: DropSet: %w", w, err))
						return
					}
					gen++
					s, err = bp.CreateSet(SetSpec{Name: fmt.Sprintf("w%d.%d", w, gen), PageSize: pageSize})
					if err != nil {
						fail(err)
						return
					}
				}
			}
			if err := bp.DropSet(s); err != nil {
				fail(err)
			}
		}(w)
	}
	// Interleaved consistency checks for as long as the storm runs.
	stop := make(chan struct{})
	var checkerWG sync.WaitGroup
	checkerWG.Add(1)
	go func() {
		defer checkerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := bp.alloc.CheckConsistency(); err != nil {
				fail(fmt.Errorf("mid-stress shard check: %w", err))
				return
			}
		}
	}()
	workersWG.Wait()
	close(stop)
	checkerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := bp.UsedBytes(); got != 0 {
		t.Errorf("UsedBytes = %d after dropping every set, want 0", got)
	}
	if err := bp.alloc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPinWhileEvicting pins one page from many goroutines while
// memory pressure forces that page in and out of memory, exercising the
// evicting/loading wait paths of Pin against the daemon.
func TestConcurrentPinWhileEvicting(t *testing.T) {
	const pageSize = 4 << 10
	arr, err := disk.NewArray(t.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	bp, err := NewPool(PoolConfig{Memory: 6 * pageSize, Array: arr})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := bp.CreateSet(SetSpec{Name: "hot", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	p, err := hot.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	stamp(p.Bytes(), 0, 0)
	if err := hot.Unpin(p, true); err != nil {
		t.Fatal(err)
	}
	cold, err := bp.CreateSet(SetSpec{Name: "cold", PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 9)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p, err := hot.Pin(0)
				if err != nil {
					errCh <- err
					return
				}
				if err := checkStamp(p.Bytes(), 0, 0); err != nil {
					errCh <- err
				}
				if err := hot.Unpin(p, false); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	// Pressure: stream cold pages through the pool so "hot" keeps getting
	// selected for eviction between pins.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			p, err := cold.NewPage()
			if err != nil {
				errCh <- err
				return
			}
			if err := cold.Unpin(p, true); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
