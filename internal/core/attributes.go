// Package core implements Pangea's primary contribution: the locality set
// abstraction (paper §3), the unified buffer pool shared by all data types
// on a node (§5), and the data-aware paging system that orders locality sets
// by the expected cost of evicting their next victim page (§6).
package core

// DurabilityType says when a locality set's pages reach disk (Table 1).
type DurabilityType uint8

const (
	// WriteBack pages are cached first and written to disk only when
	// evicted while still alive. Used for transient job and execution data.
	WriteBack DurabilityType = iota
	// WriteThrough pages are persisted as soon as they are fully written.
	// Used for user data that other applications must be able to read.
	WriteThrough
)

func (d DurabilityType) String() string {
	if d == WriteThrough {
		return "write-through"
	}
	return "write-back"
}

// WritingPattern describes how pages of a set are produced (Table 1). It is
// inferred automatically from the service the application attaches to the
// set (§3.2).
type WritingPattern uint8

const (
	// WriteNone means the set is not being written.
	WriteNone WritingPattern = iota
	// SequentialWrite: immutable data written to each page sequentially
	// (the sequential write service).
	SequentialWrite
	// ConcurrentWrite: multiple concurrent streams write one page (the
	// shuffle service).
	ConcurrentWrite
	// RandomMutableWrite: data dynamically allocated, modified and freed in
	// a page (the hash service).
	RandomMutableWrite
)

func (w WritingPattern) String() string {
	switch w {
	case SequentialWrite:
		return "sequential-write"
	case ConcurrentWrite:
		return "concurrent-write"
	case RandomMutableWrite:
		return "random-mutable-write"
	default:
		return "none"
	}
}

// ReadingPattern describes how pages of a set are consumed (Table 1).
type ReadingPattern uint8

const (
	// ReadNone means the set is not being read.
	ReadNone ReadingPattern = iota
	// SequentialRead: pages scanned front to back (sequential read
	// service, shuffle read side).
	SequentialRead
	// RandomRead: pages probed in arbitrary order (hash service).
	RandomRead
)

func (r ReadingPattern) String() string {
	switch r {
	case SequentialRead:
		return "sequential-read"
	case RandomRead:
		return "random-read"
	default:
		return "none"
	}
}

// CurrentOperation is what the application is doing to the set right now
// (Table 1). It controls how many pages an eviction takes: sets under write
// lose a single page, read-only sets lose 10% at a time (§6).
type CurrentOperation uint8

const (
	// OpNone: no operation in progress.
	OpNone CurrentOperation = iota
	// OpRead: a read-only operation is in progress.
	OpRead
	// OpWrite: a write-only operation is in progress.
	OpWrite
	// OpReadWrite: the set is being read and written (e.g. aggregation).
	OpReadWrite
)

func (o CurrentOperation) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpReadWrite:
		return "read-and-write"
	default:
		return "none"
	}
}

// involvesWrite reports whether the operation writes; such sets lose only
// one page per eviction because data just written tends to be read soon.
func (o CurrentOperation) involvesWrite() bool { return o == OpWrite || o == OpReadWrite }

// Attributes is the tag vector of one locality set (Table 1). Reading,
// Writing and CurrentOp are stamped by services at runtime; Durability and
// Pinned are chosen by the application at set creation; LifetimeEnded is
// raised by the application when the data will never be referenced again.
type Attributes struct {
	Durability    DurabilityType
	Writing       WritingPattern
	Reading       ReadingPattern
	CurrentOp     CurrentOperation
	Pinned        bool // Location attribute: pinned sets are never evicted
	LifetimeEnded bool
}

// EvictStrategy is the per-locality-set page replacement order, selected
// automatically from the set's access patterns (§6): MRU for sequential
// patterns, LRU for random patterns.
type EvictStrategy uint8

const (
	// EvictMRU evicts the most recently used page first.
	EvictMRU EvictStrategy = iota
	// EvictLRU evicts the least recently used page first.
	EvictLRU
)

func (e EvictStrategy) String() string {
	if e == EvictLRU {
		return "LRU"
	}
	return "MRU"
}

// Strategy derives the set's replacement order from its attribute tags.
// Random patterns (hash data) take LRU; all sequential patterns take MRU,
// which protects the front of a scan loop from being evicted right before
// it is re-read (§6).
func (a Attributes) Strategy() EvictStrategy {
	if a.Writing == RandomMutableWrite || a.Reading == RandomRead {
		return EvictLRU
	}
	return EvictMRU
}

// ReadPenalty is the w_r factor of the priority model: re-reading spilled
// random-access data costs more than its raw I/O because the hash map must
// be reconstructed and partial aggregates merged (§6).
func (a Attributes) ReadPenalty() float64 {
	if a.Reading == RandomRead || a.Writing == RandomMutableWrite {
		return 3.0
	}
	return 1.0
}
