package core

import "testing"

// TestCreateSetLayoutValidation: layout and column widths are validated at
// CreateSet, so a writer can never meet a set whose schema cannot fit its
// pages.
func TestCreateSetLayoutValidation(t *testing.T) {
	bp := newTestPool(t, 1<<20, nil)

	s, err := bp.CreateSet(SetSpec{Name: "col", PageSize: 4096, Layout: LayoutColumnar, Columns: []int{4, 2, 8}})
	if err != nil {
		t.Fatalf("valid columnar spec rejected: %v", err)
	}
	if s.Layout() != LayoutColumnar {
		t.Errorf("layout = %v, want columnar", s.Layout())
	}
	if w := s.ColumnWidths(); len(w) != 3 || w[0] != 4 || w[1] != 2 || w[2] != 8 {
		t.Errorf("column widths = %v, want [4 2 8]", w)
	}

	cases := []struct {
		name string
		spec SetSpec
	}{
		{"row layout with columns", SetSpec{Name: "a", PageSize: 4096, Columns: []int{4}}},
		{"columnar without columns", SetSpec{Name: "b", PageSize: 4096, Layout: LayoutColumnar}},
		{"zero-width column", SetSpec{Name: "c", PageSize: 4096, Layout: LayoutColumnar, Columns: []int{4, 0}}},
		{"negative-width column", SetSpec{Name: "d", PageSize: 4096, Layout: LayoutColumnar, Columns: []int{-1}}},
		{"row wider than page", SetSpec{Name: "e", PageSize: 64, Layout: LayoutColumnar, Columns: []int{64}}},
		{"unknown layout", SetSpec{Name: "f", PageSize: 4096, Layout: PageLayout(9)}},
	}
	for _, c := range cases {
		if _, err := bp.CreateSet(c.spec); err == nil {
			t.Errorf("%s: CreateSet accepted %+v", c.name, c.spec)
		}
	}

	// Row sets default to LayoutRow with no widths.
	r, err := bp.CreateSet(SetSpec{Name: "row", PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if r.Layout() != LayoutRow || len(r.ColumnWidths()) != 0 {
		t.Errorf("row set: layout %v widths %v", r.Layout(), r.ColumnWidths())
	}
}

func TestPageLayoutString(t *testing.T) {
	if LayoutRow.String() != "row" || LayoutColumnar.String() != "columnar" {
		t.Errorf("String() = %q/%q", LayoutRow, LayoutColumnar)
	}
	if PageLayout(9).String() == "" {
		t.Error("unknown layout must still render")
	}
}
