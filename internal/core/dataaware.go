package core

import "math"

// DataAware is the paper's paging policy (§6). It maintains a dynamic
// priority over locality sets: the victim set is the one whose *next
// page-to-be-evicted* (chosen by the set's own MRU/LRU strategy) has the
// lowest expected eviction cost c_w + p_reuse·c_r. Sets whose lifetime has
// ended are always drained first. The victim set then gives up one page if
// it is under write, or 10% of its pages if it is read-only.
type DataAware struct{}

// NewDataAware returns the default Pangea paging policy.
func NewDataAware() *DataAware { return &DataAware{} }

// Name implements Policy.
func (*DataAware) Name() string { return "data-aware" }

// SelectVictims implements Policy over the pool snapshot.
func (*DataAware) SelectVictims(view *PolicyView) ([]PageRef, error) {
	pick := func(wantEnded bool) *SetSnapshot {
		var best *SetSnapshot
		bestCost := math.Inf(1)
		for _, s := range view.Sets {
			if s.Attrs.LifetimeEnded != wantEnded {
				continue
			}
			p, ok := s.NextVictim()
			if !ok {
				continue
			}
			if c := view.PageCost(p); c < bestCost {
				bestCost, best = c, s
			}
		}
		return best
	}

	// Lifetime-ended sets are always chosen first (their pages can never be
	// referenced again and dirty ones are dropped without spilling).
	if s := pick(true); s != nil {
		return s.VictimBatch(), nil
	}
	if s := pick(false); s != nil {
		return s.VictimBatch(), nil
	}
	return nil, nil
}
