package core

import "math"

// DataAware is the paper's paging policy (§6). It maintains a dynamic
// priority over locality sets: the victim set is the one whose *next
// page-to-be-evicted* (chosen by the set's own MRU/LRU strategy) has the
// lowest expected eviction cost c_w + p_reuse·c_r. Sets whose lifetime has
// ended are always drained first. The victim set then gives up one page if
// it is under write, or 10% of its pages if it is read-only.
type DataAware struct{}

// NewDataAware returns the default Pangea paging policy.
func NewDataAware() *DataAware { return &DataAware{} }

// Name implements Policy.
func (*DataAware) Name() string { return "data-aware" }

// SelectVictims implements Policy. The pool lock is held.
func (*DataAware) SelectVictims(bp *BufferPool) ([]*Page, error) {
	sets := bp.PolicySets()

	pick := func(wantEnded bool) *LocalitySet {
		var best *LocalitySet
		bestCost := math.Inf(1)
		for _, s := range sets {
			if s.PolicyAttrs().LifetimeEnded != wantEnded {
				continue
			}
			p := s.PolicyNextVictim()
			if p == nil {
				continue
			}
			if c := bp.PolicyPageCost(p); c < bestCost {
				bestCost, best = c, s
			}
		}
		return best
	}

	// Lifetime-ended sets are always chosen first (their pages can never be
	// referenced again and dirty ones are dropped without spilling).
	if s := pick(true); s != nil {
		return s.PolicyVictimBatch(), nil
	}
	if s := pick(false); s != nil {
		return s.PolicyVictimBatch(), nil
	}
	return nil, nil
}
