//go:build linux

package numa

import (
	"os"
	"syscall"
	"unsafe"
)

// mbind sets the memory policy of buf's page range to prefer the given
// kernel node id. The region is aligned outward to page boundaries (mbind
// rejects unaligned addresses); neighbouring shard regions may share a
// boundary page, which at most misplaces a single page per shard. Called
// only for mmap-backed arenas on real multi-node machines — never for Go
// heap memory, whose placement belongs to the runtime.
func mbind(buf []byte, node int) error {
	if node < 0 || node >= 64 {
		return nil // outside one nodemask word; leave placement to the kernel
	}
	page := uintptr(os.Getpagesize())
	addr := uintptr(unsafe.Pointer(&buf[0]))
	end := addr + uintptr(len(buf))
	start := addr &^ (page - 1)
	length := (end - start + page - 1) &^ (page - 1)
	mask := uint64(1) << uint(node)
	const mpolPreferred = 1
	_, _, errno := syscall.Syscall6(syscall.SYS_MBIND,
		start, length, mpolPreferred,
		uintptr(unsafe.Pointer(&mask)), 64+1, 0)
	if errno != 0 {
		return errno
	}
	return nil
}
