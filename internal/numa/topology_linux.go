//go:build linux

package numa

import (
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

const sysNodeDir = "/sys/devices/system/node"

// sysTopology is the Linux topology discovered from sysfs: the online node
// list and each node's cpulist. Built only for real multi-node machines;
// single-node boxes get the singleNode fast path.
type sysTopology struct {
	nodes   []int // online node ids, ascending
	maxNode int   // highest online node id
	cpuNode []int // cpu id -> node id (-1 for cpus listed on no node)

	// rr spreads CurrentNode answers when getcpu is unavailable on this
	// architecture.
	rr atomic.Uint32
}

// discoverOS parses /sys/devices/system/node. Any parse failure, and any
// machine with fewer than two online nodes, degrades to the single-node
// topology — NUMA placement is an optimisation, never a requirement.
func discoverOS() Topology {
	nodes, err := readList(sysNodeDir + "/online")
	if err != nil || len(nodes) < 2 {
		return singleNode{}
	}
	t := &sysTopology{nodes: nodes, maxNode: nodes[len(nodes)-1]}
	for _, n := range nodes {
		cpus, err := readList(sysNodeDir + "/node" + strconv.Itoa(n) + "/cpulist")
		if err != nil {
			return singleNode{}
		}
		for _, c := range cpus {
			for len(t.cpuNode) <= c {
				t.cpuNode = append(t.cpuNode, -1)
			}
			t.cpuNode[c] = n
		}
	}
	return t
}

// readList parses a sysfs list file ("0-3,8-11" style) into sorted ints.
func readList(path string) ([]int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseCPUList(strings.TrimSpace(string(raw)))
}

func (t *sysTopology) NumNodes() int  { return len(t.nodes) }
func (t *sysTopology) Physical() bool { return true }

// CurrentNode asks the kernel which node the current CPU belongs to via
// getcpu; if the syscall is unavailable on this architecture it walks the
// nodes round-robin — spreading set homes over every node (the pre-NUMA
// behaviour of spreading over every shard) instead of piling them all
// onto node 0.
func (t *sysTopology) CurrentNode() int {
	cpu, node := getcpu()
	if node >= 0 && node <= t.maxNode {
		return t.nodeIndex(node)
	}
	if cpu >= 0 && cpu < len(t.cpuNode) && t.cpuNode[cpu] >= 0 {
		return t.nodeIndex(t.cpuNode[cpu])
	}
	return int(t.rr.Add(1)-1) % len(t.nodes)
}

// nodeIndex maps a kernel node id to its dense index in t.nodes (node ids
// can be sparse on partitioned machines).
func (t *sysTopology) nodeIndex(id int) int {
	for i, n := range t.nodes {
		if n == id {
			return i
		}
	}
	return 0
}

// Bind mbinds buf's page range to the node (MPOL_PREFERRED, so the kernel
// may still fall back to another node under memory pressure rather than
// fail the fault).
func (t *sysTopology) Bind(buf []byte, node int) error {
	if err := validateNode(node, len(t.nodes)); err != nil {
		return err
	}
	if len(buf) == 0 {
		return nil
	}
	return mbind(buf, t.nodes[node])
}
