package numa

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// BindRecord is one Bind call observed by a FakeTopology: which node the
// caller asked for and how many bytes the region covered, in call order.
// Tests assert the allocator's shard→node placement against these.
type BindRecord struct {
	Node  int
	Bytes int
}

// FakeTopology is a synthetic NUMA shape over ordinary heap memory: N nodes
// owning contiguous blocks of M CPUs (cpu c belongs to node c·N/M, the way
// real sockets own contiguous CPU ranges). Bind records instead of binding,
// and the current CPU is injectable, so shard partitioning, node-affine
// routing and the two-tier steal order are all testable on any machine.
// Safe for concurrent use.
type FakeTopology struct {
	nodes   int
	cpuNode []int

	// currentCPU reports the CPU of the calling goroutine; the default
	// walks the CPUs round-robin so untargeted traffic spreads over every
	// node. Override with SetCurrentCPU for deterministic placement.
	currentCPU atomic.Pointer[func() int]
	rr         atomic.Uint32

	mu    sync.Mutex
	binds []BindRecord
}

// NewFake builds a synthetic topology of nodes over cpus. cpus may exceed,
// equal, or (unlike real hardware) fall below nodes — a node with no CPUs
// simply never appears as CurrentNode. Panics on nodes < 1 or cpus < 1:
// a topology with nothing in it is a bug, not a configuration.
func NewFake(nodes, cpus int) *FakeTopology {
	if nodes < 1 || cpus < 1 {
		panic(fmt.Sprintf("numa: fake topology with %d nodes over %d cpus", nodes, cpus))
	}
	t := &FakeTopology{nodes: nodes, cpuNode: make([]int, cpus)}
	for c := range t.cpuNode {
		t.cpuNode[c] = c * nodes / cpus
	}
	return t
}

func (t *FakeTopology) NumNodes() int  { return t.nodes }
func (t *FakeTopology) Physical() bool { return false }

// NumCPUs reports how many CPUs the fake machine has.
func (t *FakeTopology) NumCPUs() int { return len(t.cpuNode) }

// NodeOfCPU maps a CPU id to its node (contiguous blocks).
func (t *FakeTopology) NodeOfCPU(cpu int) int {
	if cpu < 0 || cpu >= len(t.cpuNode) {
		return 0
	}
	return t.cpuNode[cpu]
}

// SetCurrentCPU injects the "what CPU am I on" answer; tests use it to pin
// the creating goroutine to a chosen node. fn may be called from any
// goroutine concurrently. nil restores the round-robin default.
func (t *FakeTopology) SetCurrentCPU(fn func() int) {
	if fn == nil {
		t.currentCPU.Store(nil)
		return
	}
	t.currentCPU.Store(&fn)
}

// CurrentNode reports the node of the injected (or round-robin default)
// current CPU.
func (t *FakeTopology) CurrentNode() int {
	if fn := t.currentCPU.Load(); fn != nil {
		return t.NodeOfCPU((*fn)())
	}
	return t.NodeOfCPU(int(t.rr.Add(1)-1) % len(t.cpuNode))
}

// Bind records the call; fake nodes own no physical memory to bind.
func (t *FakeTopology) Bind(buf []byte, node int) error {
	if err := validateNode(node, t.nodes); err != nil {
		return err
	}
	t.mu.Lock()
	t.binds = append(t.binds, BindRecord{Node: node, Bytes: len(buf)})
	t.mu.Unlock()
	return nil
}

// Binds returns the Bind calls observed so far, in call order.
func (t *FakeTopology) Binds() []BindRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]BindRecord(nil), t.binds...)
}
