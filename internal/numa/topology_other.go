//go:build !linux

package numa

// discoverOS is the non-Linux fallback: no portable NUMA discovery, so the
// whole machine is one node and binding is a no-op.
func discoverOS() Topology { return singleNode{} }
