//go:build linux && amd64

package numa

import (
	"syscall"
	"unsafe"
)

// sysGetcpu is the getcpu(2) syscall number on linux/amd64; the syscall
// package does not export it.
const sysGetcpu = 309

// getcpu reports the CPU and NUMA node the calling thread is running on,
// or (-1, -1) if the syscall fails. The vDSO makes this cheap enough for
// a per-CreateSet placement decision.
func getcpu() (cpu, node int) {
	var c, n uintptr
	if _, _, errno := syscall.RawSyscall(sysGetcpu,
		uintptr(unsafe.Pointer(&c)), uintptr(unsafe.Pointer(&n)), 0); errno != 0 {
		return -1, -1
	}
	return int(c), int(n)
}
