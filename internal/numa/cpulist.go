package numa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParseCPUList parses the kernel's list format ("0-3,8,10-11") into sorted,
// deduplicated ids. Exported so tests can feed sysfs-shaped inputs without
// a real /sys.
func ParseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lo, hi, ok := strings.Cut(part, "-")
		a, err := strconv.Atoi(lo)
		if err != nil || a < 0 {
			return nil, fmt.Errorf("numa: bad cpu list entry %q", part)
		}
		b := a
		if ok {
			if b, err = strconv.Atoi(hi); err != nil || b < a {
				return nil, fmt.Errorf("numa: bad cpu range %q", part)
			}
		}
		for i := a; i <= b; i++ {
			seen[i] = true
		}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out, nil
}
