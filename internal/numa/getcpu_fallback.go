//go:build linux && !amd64 && !arm64

package numa

// getcpu is unavailable without the arch-specific syscall number; report
// unknown and let CurrentNode fall back to spreading across nodes.
func getcpu() (cpu, node int) { return -1, -1 }
