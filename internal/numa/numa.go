// Package numa models the machine's NUMA topology for the buffer pool's
// memory substrate. The paper's unified pool assumes page memory is equally
// cheap to touch from any worker, but on multi-socket hardware a page whose
// arena region lives on a remote node serves every pin at remote-DRAM
// latency. The sharded allocator therefore partitions its shards across
// nodes and binds each shard's arena region to its node; this package is
// the discovery and binding layer behind that placement, with an injectable
// FakeTopology so every cross-node code path is testable on a single-node
// laptop or CI runner.
package numa

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
)

// FakeEnv is the environment variable that overrides topology discovery
// with a synthetic multi-node shape: PANGEA_FAKE_NUMA=4 makes Discover
// return a 4-node FakeTopology regardless of the real hardware, so CI can
// exercise the cross-node allocator paths on a single-node runner.
const FakeEnv = "PANGEA_FAKE_NUMA"

// Topology is the NUMA shape the allocator programs against. Real
// implementations come from OS discovery (sysfs on Linux, a single-node
// fallback elsewhere); tests inject a FakeTopology.
type Topology interface {
	// NumNodes reports how many NUMA nodes the machine has (always >= 1).
	NumNodes() int
	// CurrentNode reports the node whose CPU the calling goroutine is
	// executing on right now. Go can migrate the goroutine the instant the
	// call returns, so this is a placement hint, never a guarantee.
	CurrentNode() int
	// Bind advises the OS to place the physical pages backing buf on the
	// given node. Best-effort: errors mean the memory stays wherever the
	// first touch puts it. Synthetic topologies record the call instead.
	Bind(buf []byte, node int) error
	// Physical reports whether this topology describes the real machine
	// (so mmap-backed arenas and mbind make sense) rather than a synthetic
	// or test shape over ordinary heap memory.
	Physical() bool
}

// Discover returns the machine's topology: the PANGEA_FAKE_NUMA override
// when set (a synthetic multi-node shape for tests and CI), otherwise OS
// discovery — /sys/devices/system/node on Linux, a single node elsewhere
// or whenever discovery fails.
func Discover() Topology {
	if n := fakeNodesFromEnv(); n > 1 {
		return NewFakeAuto(n)
	}
	return discoverOS()
}

// NewFakeAuto builds a synthetic topology of the given node count over the
// machine's GOMAXPROCS CPUs (at least one CPU per node) — the shape the
// PANGEA_FAKE_NUMA override and PoolConfig.NUMANodes both use.
func NewFakeAuto(nodes int) *FakeTopology {
	cpus := runtime.GOMAXPROCS(0)
	if cpus < nodes {
		cpus = nodes
	}
	return NewFake(nodes, cpus)
}

// fakeNodesFromEnv parses the PANGEA_FAKE_NUMA override; 0 means unset or
// unusable.
func fakeNodesFromEnv() int {
	v := os.Getenv(FakeEnv)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 2 || n > 64 {
		return 0
	}
	return n
}

// singleNode is the degenerate topology: one node, everything local. It is
// the fallback for non-Linux builds, single-socket machines, and any
// discovery failure, and preserves the pre-NUMA allocator behaviour bit for
// bit (one node tier, no binding, no cross-node steals).
type singleNode struct{}

// SingleNode returns the one-node topology explicitly.
func SingleNode() Topology { return singleNode{} }

func (singleNode) NumNodes() int                   { return 1 }
func (singleNode) CurrentNode() int                { return 0 }
func (singleNode) Bind(buf []byte, node int) error { return nil }
func (singleNode) Physical() bool                  { return true }

// validateNode is shared bounds checking for Bind implementations.
func validateNode(node, numNodes int) error {
	if node < 0 || node >= numNodes {
		return fmt.Errorf("numa: node %d out of range [0,%d)", node, numNodes)
	}
	return nil
}
