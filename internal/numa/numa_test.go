package numa

import (
	"reflect"
	"testing"
)

func TestDiscoverAlwaysUsable(t *testing.T) {
	t.Setenv(FakeEnv, "")
	topo := Discover()
	if topo.NumNodes() < 1 {
		t.Fatalf("NumNodes = %d, want >= 1", topo.NumNodes())
	}
	if n := topo.CurrentNode(); n < 0 || n >= topo.NumNodes() {
		t.Fatalf("CurrentNode = %d outside [0,%d)", n, topo.NumNodes())
	}
	// Binding to node 0 must never fail on whatever real shape we found
	// (single-node short-circuits; a real multi-node box mbinds).
	if err := topo.Bind(make([]byte, 64), 0); err != nil {
		t.Fatalf("Bind(node 0): %v", err)
	}
	if !topo.Physical() {
		t.Error("discovered topology must report Physical")
	}
}

func TestDiscoverFakeEnvOverride(t *testing.T) {
	t.Setenv(FakeEnv, "4")
	topo := Discover()
	if topo.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d with %s=4, want 4", topo.NumNodes(), FakeEnv)
	}
	if topo.Physical() {
		t.Error("fake topology must not report Physical")
	}
	for _, bad := range []string{"1", "0", "-3", "banana", "65"} {
		t.Setenv(FakeEnv, bad)
		if n := Discover().NumNodes(); n != 1 && bad != "" {
			// Unusable overrides fall back to real discovery; on the test
			// machines that is single-node, but any valid shape is fine —
			// the point is it did not trust the bad value.
			if n < 1 {
				t.Errorf("%s=%q: NumNodes = %d", FakeEnv, bad, n)
			}
		}
	}
}

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"", nil, false},
		{"0", []int{0}, false},
		{"0-3", []int{0, 1, 2, 3}, false},
		{"0-1,4-5", []int{0, 1, 4, 5}, false},
		{"3,1,1-2", []int{1, 2, 3}, false},
		{"2-1", nil, true},
		{"-1", nil, true},
		{"a-b", nil, true},
	}
	for _, c := range cases {
		got, err := ParseCPUList(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParseCPUList(%q) err = %v, want error=%v", c.in, err, c.err)
			continue
		}
		if !c.err && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseCPUList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestFakeCPUPartition checks the contiguous cpu→node blocks for square,
// lopsided, and degenerate shapes, including non-power-of-two CPU counts.
func TestFakeCPUPartition(t *testing.T) {
	cases := []struct {
		nodes, cpus int
		want        []int // cpu -> node
	}{
		{1, 1, []int{0}},
		{1, 4, []int{0, 0, 0, 0}},
		{2, 4, []int{0, 0, 1, 1}},
		{2, 5, []int{0, 0, 0, 1, 1}},
		{4, 6, []int{0, 0, 1, 2, 2, 3}},
		{4, 2, []int{0, 2}}, // more nodes than CPUs: nodes 1 and 3 own none
	}
	for _, c := range cases {
		topo := NewFake(c.nodes, c.cpus)
		got := make([]int, c.cpus)
		for cpu := range got {
			got[cpu] = topo.NodeOfCPU(cpu)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("NewFake(%d,%d) cpu→node = %v, want %v", c.nodes, c.cpus, got, c.want)
		}
	}
}

func TestFakeCurrentNode(t *testing.T) {
	topo := NewFake(2, 4)
	// Round-robin default must visit both nodes.
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		n := topo.CurrentNode()
		if n < 0 || n >= 2 {
			t.Fatalf("CurrentNode = %d", n)
		}
		seen[n] = true
	}
	if len(seen) != 2 {
		t.Errorf("round-robin CurrentNode visited %v, want both nodes", seen)
	}
	// Injection pins it.
	topo.SetCurrentCPU(func() int { return 3 })
	for i := 0; i < 4; i++ {
		if n := topo.CurrentNode(); n != 1 {
			t.Fatalf("pinned CurrentNode = %d, want 1", n)
		}
	}
	topo.SetCurrentCPU(nil)
}

func TestFakeBindRecords(t *testing.T) {
	topo := NewFake(2, 2)
	if err := topo.Bind(make([]byte, 100), 1); err != nil {
		t.Fatal(err)
	}
	if err := topo.Bind(make([]byte, 50), 0); err != nil {
		t.Fatal(err)
	}
	if err := topo.Bind(nil, 2); err == nil {
		t.Error("Bind to out-of-range node must error")
	}
	want := []BindRecord{{Node: 1, Bytes: 100}, {Node: 0, Bytes: 50}}
	if got := topo.Binds(); !reflect.DeepEqual(got, want) {
		t.Errorf("Binds = %v, want %v", got, want)
	}
}
