//go:build linux && arm64

package numa

import (
	"syscall"
	"unsafe"
)

// sysGetcpu is the getcpu(2) syscall number on linux/arm64; the syscall
// package does not export it.
const sysGetcpu = 168

// getcpu reports the CPU and NUMA node the calling thread is running on,
// or (-1, -1) if the syscall fails.
func getcpu() (cpu, node int) {
	var c, n uintptr
	if _, _, errno := syscall.RawSyscall(sysGetcpu,
		uintptr(unsafe.Pointer(&c)), uintptr(unsafe.Pointer(&n)), 0); errno != 0 {
		return -1, -1
	}
	return int(c), int(n)
}
