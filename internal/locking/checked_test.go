//go:build pangea_checks

package locking

import (
	"strings"
	"sync"
	"testing"
)

// mustPanic runs f and returns the recovered panic message, failing the
// test if f completes without panicking.
func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg, _ = r.(string)
			} else {
				t.Fatal("expected lock-order panic, got none")
			}
		}()
		f()
	}()
	return msg
}

func TestInversionPanics(t *testing.T) {
	var set, reg Mutex
	set.Init(RankSet)
	reg.Init(RankRegistry)

	set.Lock()
	msg := mustPanic(t, func() { reg.Lock() })
	set.Unlock()
	if !strings.Contains(msg, "lock order violation") ||
		!strings.Contains(msg, "core.BufferPool.regMu") ||
		!strings.Contains(msg, "core.LocalitySet.mu") {
		t.Fatalf("panic message missing context: %q", msg)
	}
	if got := heldRanks(); len(got) != 0 {
		t.Fatalf("held set not empty after panic+unlock: %v", got)
	}

	// The same pair in documented order is silent.
	reg.Lock()
	set.Lock()
	set.Unlock()
	reg.Unlock()
}

func TestSameRankPanics(t *testing.T) {
	var a, b Mutex
	a.Init(RankSet)
	b.Init(RankSet)
	a.Lock()
	mustPanic(t, func() { b.Lock() })
	a.Unlock()
}

func TestRecursiveRLockPanics(t *testing.T) {
	var m RWMutex
	m.Init(RankRegistry)
	m.RLock()
	mustPanic(t, func() { m.RLock() })
	m.RUnlock()
}

func TestUnrankedIgnored(t *testing.T) {
	var ranked, unranked Mutex
	ranked.Init(RankDisk)
	// unranked never Init'd: acquiring it while holding the highest rank
	// must not trip the checker, in either order.
	ranked.Lock()
	unranked.Lock()
	unranked.Unlock()
	ranked.Unlock()
	unranked.Lock()
	ranked.Lock()
	ranked.Unlock()
	unranked.Unlock()
}

func TestTryLockInversionPanics(t *testing.T) {
	var set, reg Mutex
	set.Init(RankSet)
	reg.Init(RankRegistry)
	set.Lock()
	mustPanic(t, func() { reg.TryLock() })
	set.Unlock()
}

// TestHeldSetIsPerGoroutine: one goroutine holding a high rank must not
// poison acquisitions of lower ranks on other goroutines.
func TestHeldSetIsPerGoroutine(t *testing.T) {
	var set, reg Mutex
	set.Init(RankSet)
	reg.Init(RankRegistry)

	set.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		reg.Lock()
		reg.Unlock()
	}()
	<-done
	set.Unlock()
}

// TestCondWait checks that sync.Cond over a ranked Mutex keeps the held
// set balanced across Wait's internal Unlock/Lock pair.
func TestCondWait(t *testing.T) {
	var m Mutex
	m.Init(RankSet)
	cond := sync.NewCond(&m)
	ready := false

	go func() {
		m.Lock()
		ready = true
		m.Unlock()
		cond.Broadcast()
	}()

	m.Lock()
	for !ready {
		cond.Wait()
	}
	if got := heldRanks(); len(got) != 1 || got[0] != RankSet {
		t.Fatalf("held set after Wait = %v, want [RankSet]", got)
	}
	m.Unlock()
	if got := heldRanks(); len(got) != 0 {
		t.Fatalf("held set after Unlock = %v, want empty", got)
	}
}
