//go:build !pangea_checks

package locking

import "sync"

// Checked reports whether this build carries lock-order instrumentation.
const Checked = false

// Mutex is a mutual-exclusion lock with an assigned rank in the global
// lock order. In normal builds it is a zero-cost wrapper around
// sync.Mutex; under -tags pangea_checks the instrumented variant panics
// when a goroutine acquires it out of order. The zero Mutex is valid and
// unranked; call Init at construction to place it in the order.
type Mutex struct {
	mu sync.Mutex
}

// Init assigns the mutex's rank. Call once, before the mutex is shared.
func (m *Mutex) Init(r Rank) {}

// Lock locks m.
func (m *Mutex) Lock() { m.mu.Lock() }

// Unlock unlocks m.
func (m *Mutex) Unlock() { m.mu.Unlock() }

// TryLock tries to lock m and reports whether it succeeded.
func (m *Mutex) TryLock() bool { return m.mu.TryLock() }

// RWMutex is a reader/writer lock with an assigned rank in the global
// lock order; see Mutex.
type RWMutex struct {
	mu sync.RWMutex
}

// Init assigns the mutex's rank. Call once, before the mutex is shared.
func (m *RWMutex) Init(r Rank) {}

// Lock locks m for writing.
func (m *RWMutex) Lock() { m.mu.Lock() }

// Unlock unlocks m for writing.
func (m *RWMutex) Unlock() { m.mu.Unlock() }

// RLock locks m for reading.
func (m *RWMutex) RLock() { m.mu.RLock() }

// RUnlock unlocks m for reading.
func (m *RWMutex) RUnlock() { m.mu.RUnlock() }
