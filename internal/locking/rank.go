// Package locking provides the ranked mutexes that encode Pangea's global
// lock order. Every long-lived mutex in the system belongs to a named class
// with a numeric rank; a goroutine may only acquire a lock whose rank is
// strictly greater than every ranked lock it already holds. The table below
// is the single source of truth: the static lockorder analyzer in
// internal/lint checks acquisition sites against it at build time, and the
// `pangea_checks` build tag swaps in instrumented wrappers that track
// per-goroutine held-lock sets at run time and panic on any inversion.
//
// The order, lowest rank (acquired first) to highest (acquired last):
//
//	rank 10  cluster.Worker.mu        worker set registry
//	rank 15  cluster.setWriter.mu     per-set sequential writer
//	rank 20  core.BufferPool.regMu    pool set registry
//	rank 30  core.LocalitySet.mu      per-set page table + residency state
//	rank 40  services.ZoneMap.mu      per-set zone-map summaries
//	rank 45  services.Microindex.mu   per-set microindex postings
//	rank 50  memory.tlsfShard.cacheMu allocator shard front cache
//	rank 60  memory.TLSF.mu           allocator shard heap
//	rank 70  pfs.PagedFile.mu         paged-file extent index
//	rank 80  disk.Queue.mu            per-drive I/O queue
//	rank 90  disk.Disk.mu             drive time model
//
// Rank 0 (RankNone) marks a mutex that opted out of checking; it is never
// tracked. Acquiring a lock of rank equal to one already held is also a
// violation: classes at one rank are leaves with respect to each other
// (e.g. code must never hold two LocalitySet mutexes at once — the pool
// iterates sets strictly one at a time).
package locking

import "fmt"

// Rank is a position in the global lock order. Higher ranks must be
// acquired after lower ranks on any single goroutine.
type Rank int32

const (
	// RankNone disables order checking for a mutex.
	RankNone Rank = 0
	// RankWorker orders cluster.Worker.mu (worker set registry).
	RankWorker Rank = 10
	// RankSetWriter orders cluster.setWriter.mu (per-set seq writer).
	RankSetWriter Rank = 15
	// RankRegistry orders core.BufferPool.regMu (pool set registry).
	RankRegistry Rank = 20
	// RankSet orders core.LocalitySet.mu (per-set page table).
	RankSet Rank = 30
	// RankZoneMap orders services.ZoneMap.mu (zone-map summaries).
	RankZoneMap Rank = 40
	// RankMicroindex orders services.Microindex.mu (microindex postings).
	// It sits after RankZoneMap so a scan may consult the zone map while
	// holding index results, never the reverse while holding the index lock.
	RankMicroindex Rank = 45
	// RankAllocCache orders memory.tlsfShard.cacheMu (shard front cache).
	RankAllocCache Rank = 50
	// RankAllocTLSF orders memory.TLSF.mu (shard heap).
	RankAllocTLSF Rank = 60
	// RankPFS orders pfs.PagedFile.mu (extent index).
	RankPFS Rank = 70
	// RankIOQueue orders disk.Queue.mu (per-drive I/O queue).
	RankIOQueue Rank = 80
	// RankDisk orders disk.Disk.mu (drive time model).
	RankDisk Rank = 90
)

// rankNames maps each rank to the lock class it orders, for diagnostics.
var rankNames = map[Rank]string{
	RankNone:       "unranked",
	RankWorker:     "cluster.Worker.mu",
	RankSetWriter:  "cluster.setWriter.mu",
	RankRegistry:   "core.BufferPool.regMu",
	RankSet:        "core.LocalitySet.mu",
	RankZoneMap:    "services.ZoneMap.mu",
	RankMicroindex: "services.Microindex.mu",
	RankAllocCache: "memory.tlsfShard.cacheMu",
	RankAllocTLSF:  "memory.TLSF.mu",
	RankPFS:        "pfs.PagedFile.mu",
	RankIOQueue:    "disk.Queue.mu",
	RankDisk:       "disk.Disk.mu",
}

// String names the lock class a rank orders.
func (r Rank) String() string {
	if n, ok := rankNames[r]; ok {
		return fmt.Sprintf("%s(rank %d)", n, int32(r))
	}
	return fmt.Sprintf("rank %d", int32(r))
}
