package locking

import (
	"sync"
	"testing"
)

// TestMutexBasics exercises the wrappers as plain mutexes in whichever
// build mode is active: mutual exclusion must hold and the wrappers must
// satisfy sync.Locker (LocalitySet and disk.Queue hang sync.Conds off
// them).
func TestMutexBasics(t *testing.T) {
	var m Mutex
	m.Init(RankSet)
	var _ sync.Locker = &m

	const workers, iters = 8, 2000
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}

func TestRWMutexBasics(t *testing.T) {
	var m RWMutex
	m.Init(RankRegistry)

	val := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Lock()
				val++
				m.Unlock()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.RLock()
				_ = val
				m.RUnlock()
			}
		}()
	}
	wg.Wait()
	if val != 2000 {
		t.Fatalf("val = %d, want 2000", val)
	}
}

func TestTryLock(t *testing.T) {
	var m Mutex
	m.Init(RankDisk)
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	done := make(chan bool)
	go func() {
		done <- m.TryLock()
	}()
	if <-done {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
}

func TestRankString(t *testing.T) {
	if got := RankSet.String(); got != "core.LocalitySet.mu(rank 30)" {
		t.Fatalf("RankSet.String() = %q", got)
	}
	if got := Rank(99).String(); got != "rank 99" {
		t.Fatalf("Rank(99).String() = %q", got)
	}
}

// TestNestedInOrder takes the full documented chain in order; this must be
// silent in both build modes.
func TestNestedInOrder(t *testing.T) {
	ranks := []Rank{
		RankWorker, RankSetWriter, RankRegistry, RankSet, RankZoneMap,
		RankAllocCache, RankAllocTLSF, RankPFS, RankIOQueue, RankDisk,
	}
	ms := make([]*Mutex, len(ranks))
	for i, r := range ranks {
		ms[i] = new(Mutex)
		ms[i].Init(r)
	}
	for _, m := range ms {
		m.Lock()
	}
	for i := len(ms) - 1; i >= 0; i-- {
		ms[i].Unlock()
	}
}
