//go:build pangea_checks

package locking

import (
	"fmt"
	"runtime"
	"sync"
)

// Checked reports whether this build carries lock-order instrumentation.
const Checked = true

// Instrumented build: every ranked Lock/RLock first consults the calling
// goroutine's held-lock set and panics if the acquisition would invert the
// global order (any held rank >= the new rank). The held sets live in one
// process-wide map keyed by goroutine id; the id is parsed from the first
// line of runtime.Stack, which costs a few microseconds per operation —
// acceptable for the -tags pangea_checks test build, unacceptable for
// production, hence the build tag split.

type heldLock struct {
	key  any // *Mutex or *RWMutex identity, for release matching
	rank Rank
}

var (
	heldMu sync.Mutex
	held   = make(map[uint64][]heldLock)
)

// goid returns the current goroutine's id by parsing the
// "goroutine N [" header of its stack trace.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// checkAcquire panics if taking a lock of rank r would invert the order for
// the current goroutine, and otherwise records it as held. The record is
// made before the underlying Lock call blocks; that is safe because the
// held set is only ever consulted by its own goroutine, which is about to
// be parked in that very Lock call.
func checkAcquire(r Rank, key any, op string) {
	if r == RankNone {
		return
	}
	gid := goid()
	heldMu.Lock()
	defer heldMu.Unlock()
	for _, h := range held[gid] {
		if h.rank >= r {
			panic(fmt.Sprintf(
				"pangea_checks: lock order violation: goroutine %d %s %v while holding %v",
				gid, op, r, h.rank))
		}
	}
	held[gid] = append(held[gid], heldLock{key: key, rank: r})
}

// noteRelease removes the most recent held record for key on the current
// goroutine. A missing record (lock handed off across goroutines) is
// ignored: the underlying sync primitives allow it, and Pangea has no such
// pattern to enforce against.
func noteRelease(r Rank, key any) {
	if r == RankNone {
		return
	}
	gid := goid()
	heldMu.Lock()
	defer heldMu.Unlock()
	hs := held[gid]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].key == key {
			hs = append(hs[:i], hs[i+1:]...)
			break
		}
	}
	if len(hs) == 0 {
		delete(held, gid)
	} else {
		held[gid] = hs
	}
}

// heldRanks returns the ranks currently held by the calling goroutine, in
// acquisition order. Test helper.
func heldRanks() []Rank {
	gid := goid()
	heldMu.Lock()
	defer heldMu.Unlock()
	var out []Rank
	for _, h := range held[gid] {
		out = append(out, h.rank)
	}
	return out
}

// Mutex is the instrumented variant of the ranked mutual-exclusion lock;
// see the !pangea_checks file for the API contract.
type Mutex struct {
	mu   sync.Mutex
	rank Rank
}

// Init assigns the mutex's rank. Call once, before the mutex is shared.
func (m *Mutex) Init(r Rank) { m.rank = r }

// Lock locks m, panicking if the acquisition inverts the lock order.
func (m *Mutex) Lock() {
	checkAcquire(m.rank, m, "acquiring")
	m.mu.Lock()
}

// Unlock unlocks m.
func (m *Mutex) Unlock() {
	m.mu.Unlock()
	noteRelease(m.rank, m)
}

// TryLock tries to lock m and reports whether it succeeded. A successful
// out-of-order TryLock still panics: Pangea has no order-breaking trylock
// pattern, so any such acquisition is a bug.
func (m *Mutex) TryLock() bool {
	if !m.mu.TryLock() {
		return false
	}
	checkAcquire(m.rank, m, "try-acquiring")
	return true
}

// RWMutex is the instrumented variant of the ranked reader/writer lock.
// Read locks participate in the order at the same rank as write locks:
// a recursive RLock on one goroutine can deadlock against a pending
// writer, so it is flagged like any other same-rank reacquisition.
type RWMutex struct {
	mu   sync.RWMutex
	rank Rank
}

// Init assigns the mutex's rank. Call once, before the mutex is shared.
func (m *RWMutex) Init(r Rank) { m.rank = r }

// Lock locks m for writing, panicking on lock-order inversion.
func (m *RWMutex) Lock() {
	checkAcquire(m.rank, m, "acquiring")
	m.mu.Lock()
}

// Unlock unlocks m for writing.
func (m *RWMutex) Unlock() {
	m.mu.Unlock()
	noteRelease(m.rank, m)
}

// RLock locks m for reading, panicking on lock-order inversion.
func (m *RWMutex) RLock() {
	checkAcquire(m.rank, m, "read-acquiring")
	m.mu.RLock()
}

// RUnlock unlocks m for reading.
func (m *RWMutex) RUnlock() {
	m.mu.RUnlock()
	noteRelease(m.rank, m)
}
