package cluster

import (
	"fmt"
	"sync"
	"testing"

	"pangea/internal/core"
)

const testKey = "test-private-key"

// startCluster spins up a manager and n workers on localhost, registering
// the workers.
func startCluster(t *testing.T, n int, memPerWorker int64) (*Manager, []*Worker, *Client) {
	t.Helper()
	mgr, err := NewManager("127.0.0.1:0", testKey)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })
	cl := NewClient(mgr.Addr(), testKey)
	var workers []*Worker
	for i := 0; i < n; i++ {
		w, err := NewWorker("127.0.0.1:0", WorkerConfig{
			PrivateKey: testKey,
			Memory:     memPerWorker,
			DiskDir:    t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		if _, err := cl.RegisterWorker(w.Addr()); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	return mgr, workers, cl
}

func TestRegisterAndListWorkers(t *testing.T) {
	_, workers, cl := startCluster(t, 3, 1<<20)
	addrs, err := cl.Workers()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 {
		t.Fatalf("workers = %d, want 3", len(addrs))
	}
	for i, w := range workers {
		if addrs[i] != w.Addr() {
			t.Errorf("worker %d addr = %s, want %s", i, addrs[i], w.Addr())
		}
	}
}

func TestInvalidKeyRejected(t *testing.T) {
	mgr, err := NewManager("127.0.0.1:0", testKey)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	bad := NewClient(mgr.Addr(), "wrong-key")
	if _, err := bad.Workers(); err == nil {
		t.Error("manager accepted an invalid key")
	}
	w, err := NewWorker("127.0.0.1:0", WorkerConfig{PrivateKey: testKey, Memory: 1 << 20, DiskDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := bad.CreateSetOn(w.Addr(), "s", 4096, 0); err == nil {
		t.Error("worker accepted an invalid key")
	}
}

func TestAddFetchRoundTrip(t *testing.T) {
	_, workers, cl := startCluster(t, 2, 1<<20)
	if err := cl.CreateSet("data", 4096, uint8(core.WriteBack)); err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	for i := 0; i < 100; i++ {
		recs = append(recs, []byte(fmt.Sprintf("rec-%03d", i)))
	}
	if err := cl.AddRecords(workers[0].Addr(), "data", recs[:60]); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddRecords(workers[1].Addr(), "data", recs[60:]); err != nil {
		t.Fatal(err)
	}
	var got int
	for _, w := range workers {
		if err := cl.FetchSet(w.Addr(), "data", func(rec []byte) error {
			got++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got != 100 {
		t.Errorf("fetched %d records, want 100", got)
	}
}

func TestProxyScanSharedMemory(t *testing.T) {
	_, workers, cl := startCluster(t, 1, 4<<20)
	w := workers[0]
	if err := cl.CreateSet("scan", 64<<10, uint8(core.WriteBack)); err != nil {
		t.Fatal(err)
	}
	const n = 5000
	var recs [][]byte
	for i := 0; i < n; i++ {
		recs = append(recs, []byte(fmt.Sprintf("%06d", i)))
	}
	if err := cl.AddRecords(w.Addr(), "scan", recs); err != nil {
		t.Fatal(err)
	}
	dp := NewDataProxy(w, testKey)
	seen := make([]bool, n)
	var mu sync.Mutex
	if err := dp.Scan("scan", 4, func(_ int, rec []byte) error {
		var i int
		if _, err := fmt.Sscanf(string(rec), "%d", &i); err != nil {
			return err
		}
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("record %d missed by proxy scan", i)
		}
	}
	// After the scan everything must be unpinned: a DropSet must succeed.
	if err := cl.DropSet(w.Addr(), "scan"); err != nil {
		t.Errorf("drop after scan: %v", err)
	}
}

func TestProxyPageWriter(t *testing.T) {
	_, workers, cl := startCluster(t, 1, 4<<20)
	w := workers[0]
	if err := cl.CreateSet("out", 32<<10, uint8(core.WriteBack)); err != nil {
		t.Fatal(err)
	}
	dp := NewDataProxy(w, testKey)
	pw := dp.NewPageWriter("out")
	const n = 3000
	for i := 0; i < n; i++ {
		if err := pw.Add([]byte(fmt.Sprintf("row-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if pw.Count() != n {
		t.Errorf("Count = %d, want %d", pw.Count(), n)
	}
	var got int
	if err := dp.Scan("out", 2, func(_ int, rec []byte) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("scanned %d, want %d", got, n)
	}
}

func TestScanSpilledSetViaProxy(t *testing.T) {
	// The set exceeds worker memory; the proxy scan must transparently
	// reload spilled pages through the storage process.
	_, workers, cl := startCluster(t, 1, 128<<10)
	w := workers[0]
	if err := cl.CreateSet("big", 16<<10, uint8(core.WriteBack)); err != nil {
		t.Fatal(err)
	}
	const n = 20000
	batch := make([][]byte, 0, 500)
	for i := 0; i < n; i++ {
		batch = append(batch, []byte(fmt.Sprintf("%08d", i)))
		if len(batch) == 500 {
			if err := cl.AddRecords(w.Addr(), "big", batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if w.Pool().Stats().Evictions.Load() == 0 {
		t.Fatal("expected evictions on the worker")
	}
	dp := NewDataProxy(w, testKey)
	var count int
	var mu sync.Mutex
	if err := dp.Scan("big", 3, func(_ int, rec []byte) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Errorf("scanned %d, want %d", count, n)
	}
}

func TestReplicaRegistry(t *testing.T) {
	_, _, cl := startCluster(t, 1, 1<<20)
	if err := cl.RegisterReplica("lineitem", "lineitem_by_orderkey", "hash(l_orderkey)"); err != nil {
		t.Fatal(err)
	}
	if err := cl.RegisterReplica("lineitem", "lineitem_by_partkey", "hash(l_partkey)"); err != nil {
		t.Fatal(err)
	}
	group, err := cl.Replicas("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 3 {
		t.Fatalf("replica group size = %d, want 3 (source + 2 replicas)", len(group))
	}
	if group[0].Set != "lineitem" || group[0].Scheme != "random" {
		t.Errorf("group[0] = %+v, want the source with scheme random", group[0])
	}
	// Unregistered sets answer with only themselves.
	solo, err := cl.Replicas("orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(solo) != 1 || solo[0].Set != "orders" {
		t.Errorf("solo group = %+v", solo)
	}
}

func TestSetStats(t *testing.T) {
	_, workers, cl := startCluster(t, 1, 1<<20)
	w := workers[0]
	if err := cl.CreateSet("s", 4096, uint8(core.WriteThrough)); err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	for i := 0; i < 100; i++ {
		recs = append(recs, make([]byte, 100))
	}
	if err := cl.AddRecords(w.Addr(), "s", recs); err != nil {
		t.Fatal(err)
	}
	// Fetch closes the writer so all pages are sealed and flushed.
	if err := cl.FetchSet(w.Addr(), "s", func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st, err := cl.SetStats(w.Addr(), "s")
	if err != nil {
		t.Fatal(err)
	}
	if st.NumPages < 3 {
		t.Errorf("NumPages = %d, want >= 3", st.NumPages)
	}
	if st.DiskBytes == 0 {
		t.Error("write-through set should have disk bytes")
	}
	// The I/O attribution gauges travel the wire unchanged.
	set, ok := w.Pool().GetSet("s")
	if !ok {
		t.Fatal("worker has no set \"s\"")
	}
	if st.SpillWrites != set.SpillWrites() || st.LoadReads != set.LoadReads() {
		t.Errorf("wire reports spills=%d loads=%d, pool reports %d/%d",
			st.SpillWrites, st.LoadReads, set.SpillWrites(), set.LoadReads())
	}
	// The zone-map and microindex gauges travel too: bump them on the set
	// and re-ask.
	set.NoteZoneMap(10, 4)
	set.NoteMicroindex(10, 2)
	st, err = cl.SetStats(w.Addr(), "s")
	if err != nil {
		t.Fatal(err)
	}
	if st.ZoneMapChecks != set.ZoneMapChecks() || st.ZoneMapSkips != set.ZoneMapSkips() ||
		st.ZoneMapChecks == 0 || st.ZoneMapSkips == 0 {
		t.Errorf("wire reports zone-map checks=%d skips=%d, set reports %d/%d (want nonzero, equal)",
			st.ZoneMapChecks, st.ZoneMapSkips, set.ZoneMapChecks(), set.ZoneMapSkips())
	}
	if st.IndexChecks != set.IndexChecks() || st.IndexHits != set.IndexHits() ||
		st.IndexChecks == 0 || st.IndexHits == 0 {
		t.Errorf("wire reports index checks=%d hits=%d, set reports %d/%d (want nonzero, equal)",
			st.IndexChecks, st.IndexHits, set.IndexChecks(), set.IndexHits())
	}
	nst, err := cl.NodeStats(w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if nst.ZoneMapChecks != 10 || nst.ZoneMapSkips != 4 {
		t.Errorf("node-wide zone-map gauges = %d/%d, want the set's 10/4 aggregated", nst.ZoneMapChecks, nst.ZoneMapSkips)
	}
	if nst.IndexChecks != 10 || nst.IndexHits != 2 {
		t.Errorf("node-wide microindex gauges = %d/%d, want the set's 10/2 aggregated", nst.IndexChecks, nst.IndexHits)
	}
}

// TestNodeStats: a worker reports its pool's NUMA placement gauges over
// the wire — topology shape, per-node residency that accounts for the
// resident pages, and the cross-node steal counter (zero on the test
// machines' single-node or synthetic shapes with no memory pressure).
func TestNodeStats(t *testing.T) {
	_, workers, cl := startCluster(t, 1, 4<<20)
	w := workers[0]
	if err := cl.CreateSet("ns", 4096, uint8(core.WriteBack)); err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	for i := 0; i < 50; i++ {
		recs = append(recs, make([]byte, 100))
	}
	if err := cl.AddRecords(w.Addr(), "ns", recs); err != nil {
		t.Fatal(err)
	}
	st, err := cl.NodeStats(w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes < 1 || st.Shards < 1 {
		t.Fatalf("NodeStats = %+v, want at least one node and shard", st)
	}
	if len(st.NodeUsedBytes) != st.Nodes {
		t.Fatalf("NodeUsedBytes has %d entries for %d nodes", len(st.NodeUsedBytes), st.Nodes)
	}
	var sum int64
	for _, u := range st.NodeUsedBytes {
		sum += u
	}
	if sum != w.Pool().UsedBytes() || sum == 0 {
		t.Errorf("NodeUsedBytes sums to %d, pool uses %d (want equal and nonzero)", sum, w.Pool().UsedBytes())
	}
	if st.CrossNodeSteals != w.Pool().Stats().CrossNodeSteals.Load() {
		t.Errorf("CrossNodeSteals = %d over the wire, pool reports %d", st.CrossNodeSteals, w.Pool().Stats().CrossNodeSteals.Load())
	}
	pstats := w.Pool().Stats()
	if st.PrefetchesIssued != pstats.PrefetchesIssued.Load() ||
		st.PrefetchHits != pstats.PrefetchHits.Load() ||
		st.PrefetchWasted != pstats.PrefetchWasted.Load() {
		t.Errorf("wire prefetch counters = %d/%d/%d, pool reports %d/%d/%d",
			st.PrefetchesIssued, st.PrefetchHits, st.PrefetchWasted,
			pstats.PrefetchesIssued.Load(), pstats.PrefetchHits.Load(), pstats.PrefetchWasted.Load())
	}
	if st.LoadsInFlight != 0 {
		t.Errorf("LoadsInFlight = %d with no reads outstanding", st.LoadsInFlight)
	}
	// The gauges are worker-wide, so a bad key is the only failure mode.
	bad := NewClient("", "wrong-key")
	if _, err := bad.NodeStats(w.Addr()); err == nil {
		t.Error("worker accepted node-stats request with an invalid key")
	}
}

// TestCreateSetSpecPlumbsAdmissionFields: quota and weight travel the wire
// to the worker's buffer pool, and the stats reply reports the resulting
// entitlement and residency gauges.
func TestCreateSetSpecPlumbsAdmissionFields(t *testing.T) {
	_, workers, cl := startCluster(t, 2, 1<<20)
	if err := cl.CreateSetSpec(core.SetSpec{Name: "capped", PageSize: 4096, MemoryQuota: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateSetSpec(core.SetSpec{Name: "weighted", PageSize: 4096, Weight: 2}); err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		capped, ok := w.Pool().GetSet("capped")
		if !ok {
			t.Fatalf("worker %s has no set \"capped\"", w.Addr())
		}
		if got := capped.MemoryQuota(); got != 64<<10 {
			t.Errorf("worker %s: quota = %d, want %d", w.Addr(), got, 64<<10)
		}
		weighted, ok := w.Pool().GetSet("weighted")
		if !ok {
			t.Fatalf("worker %s has no set \"weighted\"", w.Addr())
		}
		// The only weighted set takes the whole arena as its share.
		if got := weighted.Entitlement(); got != 1<<20 {
			t.Errorf("worker %s: entitlement = %d, want %d", w.Addr(), got, 1<<20)
		}
	}
	st, err := cl.SetStats(workers[0].Addr(), "capped")
	if err != nil {
		t.Fatal(err)
	}
	if st.Entitlement != 64<<10 {
		t.Errorf("SetStats entitlement = %d, want the %d-byte quota", st.Entitlement, 64<<10)
	}
	// An invalid quota must fail set creation through the proxy too.
	if err := cl.CreateSetSpec(core.SetSpec{Name: "bad", PageSize: 4096, MemoryQuota: 100}); err == nil {
		t.Error("sub-page quota accepted over the wire")
	}
}

// TestCreateSetSpecPlumbsLayout: the page layout and column widths travel
// the wire, so a columnar set created through the manager is columnar on
// every worker — and a bad schema is rejected by the worker's pool just as
// it would be locally.
func TestCreateSetSpecPlumbsLayout(t *testing.T) {
	_, workers, cl := startCluster(t, 2, 1<<20)
	if err := cl.CreateSetSpec(core.SetSpec{
		Name: "facts", PageSize: 4096,
		Layout: core.LayoutColumnar, Columns: []int{8, 2, 8},
	}); err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		s, ok := w.Pool().GetSet("facts")
		if !ok {
			t.Fatalf("worker %s has no set \"facts\"", w.Addr())
		}
		if s.Layout() != core.LayoutColumnar {
			t.Errorf("worker %s: layout = %v, want columnar", w.Addr(), s.Layout())
		}
		if widths := s.ColumnWidths(); len(widths) != 3 || widths[0] != 8 || widths[1] != 2 || widths[2] != 8 {
			t.Errorf("worker %s: column widths = %v, want [8 2 8]", w.Addr(), widths)
		}
	}
	// Plain specs stay row-layout.
	if err := cl.CreateSetSpec(core.SetSpec{Name: "plain", PageSize: 4096}); err != nil {
		t.Fatal(err)
	}
	if s, ok := workers[0].Pool().GetSet("plain"); !ok || s.Layout() != core.LayoutRow {
		t.Errorf("plain set: ok=%v layout=%v, want row", ok, s.Layout())
	}
	// Schema validation still applies across the wire.
	if err := cl.CreateSetSpec(core.SetSpec{
		Name: "bad", PageSize: 64, Layout: core.LayoutColumnar, Columns: []int{64},
	}); err == nil {
		t.Error("columnar row wider than the page accepted over the wire")
	}
}

func TestCircularBufferOrderAndClose(t *testing.T) {
	cb := NewCircularBuffer(4)
	go func() {
		for i := 0; i < 100; i++ {
			cb.Push(PageMeta{PageNum: int64(i)})
		}
		cb.Close()
	}()
	for i := 0; i < 100; i++ {
		m, ok := cb.Pull()
		if !ok {
			t.Fatalf("buffer closed early at %d", i)
		}
		if m.PageNum != int64(i) {
			t.Fatalf("out of order: got %d want %d", m.PageNum, i)
		}
	}
	if _, ok := cb.Pull(); ok {
		t.Error("Pull after close+drain must report no more pages")
	}
}

func TestCircularBufferConcurrentPullers(t *testing.T) {
	cb := NewCircularBuffer(8)
	const n = 1000
	go func() {
		for i := 0; i < n; i++ {
			cb.Push(PageMeta{PageNum: int64(i)})
		}
		cb.Close()
	}()
	var mu sync.Mutex
	seen := make(map[int64]bool)
	var wg sync.WaitGroup
	for t := 0; t < 5; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok := cb.Pull()
				if !ok {
					return
				}
				mu.Lock()
				seen[m.PageNum] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Errorf("pulled %d distinct items, want %d", len(seen), n)
	}
}

func TestAuthTokenDeterministic(t *testing.T) {
	if AuthToken("k") != AuthToken("k") {
		t.Error("token not deterministic")
	}
	if AuthToken("a") == AuthToken("b") {
		t.Error("different keys produced the same token")
	}
}
