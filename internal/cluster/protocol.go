// Package cluster implements Pangea's distributed layer (paper §3.3, §5):
// a light-weight manager node that accepts applications, maintains the
// locality set catalog and the statistics database; worker nodes that run
// the storage process (buffer pool + file system + services); and the data
// proxy through which co-located computation processes coordinate page
// access with the storage process over sockets while touching page bytes
// through shared memory (Fig 2).
//
// All wire messages are gob-encoded envelopes over TCP, standing in for the
// paper's hand-rolled message protocols on top of TCP/IP.
package cluster

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"net"

	"pangea/internal/core"
)

// Messages. Every request carries an Auth token derived from the cluster's
// private key; a non-valid key terminates the request (the paper's
// public-key bootstrap, §3.3).

// envelope wraps one message for gob transport.
type envelope struct {
	Msg any
}

// RegisterWorkerReq announces a worker to the manager.
type RegisterWorkerReq struct {
	Auth string
	Addr string // the worker's listen address
}

// RegisterWorkerResp acknowledges registration with the worker's index.
type RegisterWorkerResp struct {
	ID  int
	Err string
}

// ListWorkersReq asks the manager for the live worker addresses.
type ListWorkersReq struct{ Auth string }

// ListWorkersResp lists worker addresses in registration order.
type ListWorkersResp struct {
	Addrs []string
	Err   string
}

// CreateSetReq creates a locality set on one worker.
type CreateSetReq struct {
	Auth       string
	Name       string
	PageSize   int64
	Durability uint8 // core.DurabilityType
	// MemoryQuota and Weight are the set's admission-control fields: a
	// hard resident-byte cap and a fair-share weight (see core.SetSpec).
	// Zero values leave the set unconstrained, so old clients keep the
	// pre-admission behaviour.
	MemoryQuota int64
	Weight      float64
	// Layout selects the page layout (core.PageLayout); Columns carries
	// the per-column byte widths for columnar sets. Zero values keep the
	// row layout, so old clients are unaffected.
	Layout  uint8
	Columns []int
}

// OKResp is the generic acknowledgement.
type OKResp struct{ Err string }

// AddRecordsReq appends a batch of records to a set through the worker's
// sequential write service.
type AddRecordsReq struct {
	Auth    string
	Set     string
	Records [][]byte
}

// FetchSetReq streams every record of a set back to the caller, batched.
// Used by broadcast and recovery, which must cross node boundaries.
type FetchSetReq struct {
	Auth string
	Set  string
}

// RecordBatch is one streamed batch; Last marks the end of the stream.
type RecordBatch struct {
	Records [][]byte
	Last    bool
	Err     string
}

// GetSetPagesReq starts the Fig 2 scan flow: the storage process pins the
// set's pages and streams their metadata; the proxy feeds a circular buffer.
type GetSetPagesReq struct {
	Auth string
	Set  string
}

// PageMeta is the metadata of one pinned page, shipped over the socket. The
// page's bytes are NOT copied: computation threads slice the shared arena
// at Offset.
type PageMeta struct {
	PageNum int64
	Offset  int64
	Size    int64
	// NoMorePage marks the end of the scan stream.
	NoMorePage bool
	Err        string
}

// PageDone tells the storage process a computation thread has finished one
// page, so it can be unpinned.
type PageDone struct {
	PageNum int64
}

// PinPageReq asks the storage process to pin a fresh page of a set for
// writing (the PinPage message of §5).
type PinPageReq struct {
	Auth string
	Set  string
}

// PinPageResp returns the pinned page's location in shared memory.
type PinPageResp struct {
	PageNum int64
	Offset  int64
	Size    int64
	Err     string
}

// UnpinPageReq releases a page pinned via PinPageReq.
type UnpinPageReq struct {
	Auth    string
	Set     string
	PageNum int64
	Dirty   bool
}

// DropSetReq removes a set from one worker.
type DropSetReq struct {
	Auth string
	Set  string
}

// SetStatsReq asks a worker for a set's page counts.
type SetStatsReq struct {
	Auth string
	Set  string
}

// SetStatsResp reports one worker's view of a set, including the
// admission-control gauges (resident footprint vs entitlement) and the
// set's I/O attribution: dirty pages spilled by eviction and pages read
// back from disk (demand misses plus prefetches).
type SetStatsResp struct {
	NumPages      int64
	Resident      int
	ResidentBytes int64
	Entitlement   int64
	DiskBytes     int64
	SpillWrites   int64
	LoadReads     int64
	// ZoneMapChecks and ZoneMapSkips are the set's page-skipping gauges:
	// pages predicate scans evaluated against the set's zone map, and the
	// subset pruned without any pin or read.
	ZoneMapChecks int64
	ZoneMapSkips  int64
	// IndexChecks and IndexHits are the microindex gauges: pages point
	// lookups evaluated through the set's microindex, and the candidates
	// the postings kept.
	IndexChecks int64
	IndexHits   int64
	Err         string
}

// NodeStatsReq asks a worker for its buffer pool's NUMA placement gauges.
type NodeStatsReq struct{ Auth string }

// NodeStatsResp reports one worker's memory-placement and read-path view:
// how the allocator shards are partitioned over the node's NUMA topology,
// how many arena bytes are resident per node, how often allocations had to
// cross the interconnect, and the buffer pool's prefetch counters (issued /
// hit / wasted speculative reads, plus loads currently in flight). Single-
// node workers report one node and zero steals.
type NodeStatsResp struct {
	Nodes            int
	Shards           int
	NodeUsedBytes    []int64
	CrossNodeSteals  int64
	PrefetchesIssued int64
	PrefetchHits     int64
	PrefetchWasted   int64
	LoadsInFlight    int64
	// ZoneMapChecks and ZoneMapSkips aggregate the page-skipping gauges
	// over every set in the worker's pool; IndexChecks and IndexHits do
	// the same for the microindex gauges.
	ZoneMapChecks int64
	ZoneMapSkips  int64
	IndexChecks   int64
	IndexHits     int64
	Err           string
}

// RegisterReplicaReq records replica metadata in the manager's statistics
// database (§7): target set is a replica of source set under scheme.
type RegisterReplicaReq struct {
	Auth   string
	Source string
	Target string
	Scheme string // partitioner name, e.g. "hash(l_orderkey)"
}

// GetReplicasReq queries the statistics database for a set's replica group.
type GetReplicasReq struct {
	Auth   string
	Source string
}

// ReplicaInfo describes one registered replica.
type ReplicaInfo struct {
	Set    string
	Scheme string
}

// GetReplicasResp lists the replica group of a set, including the source
// itself.
type GetReplicasResp struct {
	Replicas []ReplicaInfo
	Err      string
}

// ShutdownReq asks a node to stop serving.
type ShutdownReq struct{ Auth string }

func init() {
	gob.Register(RegisterWorkerReq{})
	gob.Register(RegisterWorkerResp{})
	gob.Register(ListWorkersReq{})
	gob.Register(ListWorkersResp{})
	gob.Register(CreateSetReq{})
	gob.Register(OKResp{})
	gob.Register(AddRecordsReq{})
	gob.Register(FetchSetReq{})
	gob.Register(RecordBatch{})
	gob.Register(GetSetPagesReq{})
	gob.Register(PageMeta{})
	gob.Register(PageDone{})
	gob.Register(PinPageReq{})
	gob.Register(PinPageResp{})
	gob.Register(UnpinPageReq{})
	gob.Register(DropSetReq{})
	gob.Register(SetStatsReq{})
	gob.Register(SetStatsResp{})
	gob.Register(NodeStatsReq{})
	gob.Register(NodeStatsResp{})
	gob.Register(RegisterReplicaReq{})
	gob.Register(GetReplicasReq{})
	gob.Register(GetReplicasResp{})
	gob.Register(ShutdownReq{})
}

// conn wraps a TCP connection with gob codecs.
type conn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func dial(addr string) (*conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return newConn(c), nil
}

func (c *conn) send(msg any) error {
	return c.enc.Encode(envelope{Msg: msg})
}

func (c *conn) recv() (any, error) {
	var env envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, err
	}
	return env.Msg, nil
}

func (c *conn) close() error { return c.c.Close() }

// call performs one request/response round trip on a fresh connection.
func call(addr string, req any) (any, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.close()
	if err := c.send(req); err != nil {
		return nil, err
	}
	return c.recv()
}

// AuthToken derives the wire token from the cluster's private key. A
// deployment shares one key pair; the HMAC keeps the raw key off the wire.
func AuthToken(privateKey string) string {
	m := hmac.New(sha256.New, []byte(privateKey))
	m.Write([]byte("pangea-cluster-v1"))
	return fmt.Sprintf("%x", m.Sum(nil))
}

// durabilityFromWire converts the wire byte back to a core type.
func durabilityFromWire(d uint8) core.DurabilityType {
	if d == uint8(core.WriteThrough) {
		return core.WriteThrough
	}
	return core.WriteBack
}
