package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"pangea/internal/core"
)

// Manager is Pangea's light-weight manager node (§3.3): it accepts user
// applications, maintains the worker registry, the locality set catalog and
// the statistics database that records replica groups and partition schemes
// for the data placement optimizer (§7). Compared to an HDFS name node it
// stores considerably less metadata: per-page locations live in the worker
// meta files, not here (§4).
type Manager struct {
	auth string
	ln   net.Listener

	mu       sync.Mutex
	workers  []string
	replicas map[string][]ReplicaInfo // source set -> replica group
	closed   bool

	wg sync.WaitGroup
}

// NewManager starts a manager listening on addr.
func NewManager(addr, privateKey string) (*Manager, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		auth:     AuthToken(privateKey),
		ln:       ln,
		replicas: make(map[string][]ReplicaInfo),
	}
	m.wg.Add(1)
	go m.serve()
	return m, nil
}

// Addr returns the manager's listen address.
func (m *Manager) Addr() string { return m.ln.Addr().String() }

// Close stops the manager.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	err := m.ln.Close()
	m.wg.Wait()
	return err
}

func (m *Manager) serve() {
	defer m.wg.Done()
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.handleConn(newConn(c))
		}()
	}
}

func (m *Manager) handleConn(c *conn) {
	defer c.close()
	msg, err := c.recv()
	if err != nil {
		return
	}
	switch req := msg.(type) {
	case RegisterWorkerReq:
		if req.Auth != m.auth {
			c.send(RegisterWorkerResp{Err: "invalid key"})
			return
		}
		m.mu.Lock()
		id := len(m.workers)
		m.workers = append(m.workers, req.Addr)
		m.mu.Unlock()
		c.send(RegisterWorkerResp{ID: id})
	case ListWorkersReq:
		if req.Auth != m.auth {
			c.send(ListWorkersResp{Err: "invalid key"})
			return
		}
		m.mu.Lock()
		addrs := append([]string(nil), m.workers...)
		m.mu.Unlock()
		c.send(ListWorkersResp{Addrs: addrs})
	case RegisterReplicaReq:
		if req.Auth != m.auth {
			c.send(OKResp{Err: "invalid key"})
			return
		}
		m.mu.Lock()
		group := m.replicas[req.Source]
		if len(group) == 0 {
			// The source itself is the first member of its replication
			// group, with its native (random-dispatch) organization.
			group = append(group, ReplicaInfo{Set: req.Source, Scheme: "random"})
		}
		group = append(group, ReplicaInfo{Set: req.Target, Scheme: req.Scheme})
		m.replicas[req.Source] = group
		m.mu.Unlock()
		c.send(OKResp{})
	case GetReplicasReq:
		if req.Auth != m.auth {
			c.send(GetReplicasResp{Err: "invalid key"})
			return
		}
		m.mu.Lock()
		group := append([]ReplicaInfo(nil), m.replicas[req.Source]...)
		m.mu.Unlock()
		if len(group) == 0 {
			group = []ReplicaInfo{{Set: req.Source, Scheme: "random"}}
		}
		c.send(GetReplicasResp{Replicas: group})
	case ShutdownReq:
		if req.Auth == m.auth {
			c.send(OKResp{})
			go m.Close()
		} else {
			c.send(OKResp{Err: "invalid key"})
		}
	default:
		c.send(OKResp{Err: fmt.Sprintf("manager: unexpected message %T", msg)})
	}
}

// Client is an application's handle on a Pangea deployment: it talks to the
// manager for catalog and statistics queries, and to the workers for data
// operations. Bootstrapping requires the cluster's private key; a non-valid
// key causes every call to fail (§3.3).
type Client struct {
	managerAddr string
	auth        string
}

// NewClient builds a client from the manager address and the user's
// submitted private key.
func NewClient(managerAddr, privateKey string) *Client {
	return &Client{managerAddr: managerAddr, auth: AuthToken(privateKey)}
}

// respErr converts a transport or in-band error to a Go error.
func respErr(msg any, err error) error {
	if err != nil {
		return err
	}
	switch r := msg.(type) {
	case OKResp:
		if r.Err != "" {
			return errors.New(r.Err)
		}
	case RegisterWorkerResp:
		if r.Err != "" {
			return errors.New(r.Err)
		}
	case ListWorkersResp:
		if r.Err != "" {
			return errors.New(r.Err)
		}
	case GetReplicasResp:
		if r.Err != "" {
			return errors.New(r.Err)
		}
	case SetStatsResp:
		if r.Err != "" {
			return errors.New(r.Err)
		}
	case NodeStatsResp:
		if r.Err != "" {
			return errors.New(r.Err)
		}
	}
	return nil
}

// RegisterWorker announces a worker to the manager and returns its index.
func (cl *Client) RegisterWorker(workerAddr string) (int, error) {
	msg, err := call(cl.managerAddr, RegisterWorkerReq{Auth: cl.auth, Addr: workerAddr})
	if err := respErr(msg, err); err != nil {
		return 0, err
	}
	return msg.(RegisterWorkerResp).ID, nil
}

// Workers lists the registered worker addresses.
func (cl *Client) Workers() ([]string, error) {
	msg, err := call(cl.managerAddr, ListWorkersReq{Auth: cl.auth})
	if err := respErr(msg, err); err != nil {
		return nil, err
	}
	return msg.(ListWorkersResp).Addrs, nil
}

// CreateSet creates a locality set with the same name on every worker.
func (cl *Client) CreateSet(name string, pageSize int64, durability uint8) error {
	return cl.CreateSetSpec(core.SetSpec{Name: name, PageSize: pageSize,
		Durability: core.DurabilityType(durability)})
}

// CreateSetSpec creates a locality set on every worker from a full spec,
// carrying the admission-control fields (memory quota / fair-share weight)
// to each node's buffer pool; CreateSet is the unconstrained shorthand.
func (cl *Client) CreateSetSpec(spec core.SetSpec) error {
	addrs, err := cl.Workers()
	if err != nil {
		return err
	}
	for _, a := range addrs {
		msg, err := call(a, CreateSetReq{Auth: cl.auth, Name: spec.Name, PageSize: spec.PageSize,
			Durability: uint8(spec.Durability), MemoryQuota: spec.MemoryQuota, Weight: spec.Weight,
			Layout: uint8(spec.Layout), Columns: spec.Columns})
		if err := respErr(msg, err); err != nil {
			return fmt.Errorf("create %q on %s: %w", spec.Name, a, err)
		}
	}
	return nil
}

// CreateSetOn creates a locality set on one worker only.
func (cl *Client) CreateSetOn(addr, name string, pageSize int64, durability uint8) error {
	msg, err := call(addr, CreateSetReq{Auth: cl.auth, Name: name, PageSize: pageSize, Durability: durability})
	return respErr(msg, err)
}

// AddRecords appends records to a set on one worker.
func (cl *Client) AddRecords(addr, set string, records [][]byte) error {
	msg, err := call(addr, AddRecordsReq{Auth: cl.auth, Set: set, Records: records})
	return respErr(msg, err)
}

// FetchSet streams every record of a set on one worker to fn.
func (cl *Client) FetchSet(addr, set string, fn func(rec []byte) error) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.close()
	if err := c.send(FetchSetReq{Auth: cl.auth, Set: set}); err != nil {
		return err
	}
	for {
		msg, err := c.recv()
		if err != nil {
			return err
		}
		b, ok := msg.(RecordBatch)
		if !ok {
			return fmt.Errorf("cluster: unexpected %T in fetch stream", msg)
		}
		if b.Err != "" {
			return errors.New(b.Err)
		}
		for _, rec := range b.Records {
			if err := fn(rec); err != nil {
				return err
			}
		}
		if b.Last {
			return nil
		}
	}
}

// DropSet removes a set from one worker.
func (cl *Client) DropSet(addr, set string) error {
	msg, err := call(addr, DropSetReq{Auth: cl.auth, Set: set})
	return respErr(msg, err)
}

// SetStats queries one worker's statistics for a set.
func (cl *Client) SetStats(addr, set string) (SetStatsResp, error) {
	msg, err := call(addr, SetStatsReq{Auth: cl.auth, Set: set})
	if err := respErr(msg, err); err != nil {
		return SetStatsResp{}, err
	}
	return msg.(SetStatsResp), nil
}

// NodeStats queries one worker's NUMA placement gauges: per-node resident
// bytes, shard partitioning, and cross-node steal count.
func (cl *Client) NodeStats(addr string) (NodeStatsResp, error) {
	msg, err := call(addr, NodeStatsReq{Auth: cl.auth})
	if err := respErr(msg, err); err != nil {
		return NodeStatsResp{}, err
	}
	return msg.(NodeStatsResp), nil
}

// RegisterReplica records target as a replica of source in the statistics
// database (§7).
func (cl *Client) RegisterReplica(source, target, scheme string) error {
	msg, err := call(cl.managerAddr, RegisterReplicaReq{Auth: cl.auth, Source: source, Target: target, Scheme: scheme})
	return respErr(msg, err)
}

// Replicas returns the replica group of a source set. Query schedulers use
// this to choose the physical organization that co-partitions a join (§7,
// §9.1.2).
func (cl *Client) Replicas(source string) ([]ReplicaInfo, error) {
	msg, err := call(cl.managerAddr, GetReplicasReq{Auth: cl.auth, Source: source})
	if err := respErr(msg, err); err != nil {
		return nil, err
	}
	return msg.(GetReplicasResp).Replicas, nil
}
