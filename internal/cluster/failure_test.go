package cluster

import (
	"strings"
	"sync"
	"testing"
)

// TestFetchFromDeadWorker: operations against a closed worker fail cleanly
// instead of hanging.
func TestFetchFromDeadWorker(t *testing.T) {
	_, workers, cl := startCluster(t, 1, 1<<20)
	w := workers[0]
	if err := cl.CreateSet("s", 4096, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.FetchSet(w.Addr(), "s", func([]byte) error { return nil }); err == nil {
		t.Error("fetch from a dead worker must fail")
	}
	if err := cl.AddRecords(w.Addr(), "s", [][]byte{{1}}); err == nil {
		t.Error("add to a dead worker must fail")
	}
}

// TestScanUnknownSet: the scan stream reports the missing set in-band.
func TestScanUnknownSet(t *testing.T) {
	_, workers, _ := startCluster(t, 1, 1<<20)
	dp := NewDataProxy(workers[0], testKey)
	err := dp.Scan("ghost", 2, func(int, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("err = %v, want missing-set error naming the set", err)
	}
}

// TestScanCallbackErrorUnpinsPages: a failing computation callback aborts
// the scan, and the storage process releases every pin so the set can be
// dropped immediately.
func TestScanCallbackErrorUnpinsPages(t *testing.T) {
	_, workers, cl := startCluster(t, 1, 4<<20)
	w := workers[0]
	if err := cl.CreateSet("s", 8<<10, 0); err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	for i := 0; i < 2000; i++ {
		recs = append(recs, make([]byte, 64))
	}
	if err := cl.AddRecords(w.Addr(), "s", recs); err != nil {
		t.Fatal(err)
	}
	dp := NewDataProxy(w, testKey)
	wantErr := "computation exploded"
	err := dp.Scan("s", 2, func(int, []byte) error {
		return &scanErr{wantErr}
	})
	if err == nil || !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("err = %v, want the callback error", err)
	}
	// Give the storage process a moment to observe the closed connection,
	// then the drop must succeed (retry covers the race between the proxy
	// returning and the server unpinning).
	var dropErr error
	for i := 0; i < 50; i++ {
		if dropErr = cl.DropSet(w.Addr(), "s"); dropErr == nil {
			return
		}
	}
	t.Errorf("drop after aborted scan: %v", dropErr)
}

type scanErr struct{ s string }

func (e *scanErr) Error() string { return e.s }

// TestConcurrentScansSameSet: two proxies can scan one set concurrently;
// the storage process pins pages independently per stream.
func TestConcurrentScansSameSet(t *testing.T) {
	_, workers, cl := startCluster(t, 1, 4<<20)
	w := workers[0]
	if err := cl.CreateSet("s", 16<<10, 0); err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	for i := 0; i < 3000; i++ {
		recs = append(recs, make([]byte, 50))
	}
	if err := cl.AddRecords(w.Addr(), "s", recs); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	counts := make([]int, 3)
	errs := make([]error, 3)
	for i := range counts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dp := NewDataProxy(w, testKey)
			var mu sync.Mutex
			errs[i] = dp.Scan("s", 2, func(_ int, rec []byte) error {
				mu.Lock()
				counts[i]++
				mu.Unlock()
				return nil
			})
		}(i)
	}
	wg.Wait()
	for i := range counts {
		if errs[i] != nil {
			t.Fatalf("scan %d: %v", i, errs[i])
		}
		if counts[i] != 3000 {
			t.Errorf("scan %d saw %d records, want 3000", i, counts[i])
		}
	}
}

// TestWriterSealedBeforeScan: records buffered in the server-side writer
// become visible the moment a scan starts (the writer is closed first).
func TestWriterSealedBeforeScan(t *testing.T) {
	_, workers, cl := startCluster(t, 1, 1<<20)
	w := workers[0]
	if err := cl.CreateSet("s", 32<<10, 0); err != nil {
		t.Fatal(err)
	}
	// A single small record stays in the writer's open page.
	if err := cl.AddRecords(w.Addr(), "s", [][]byte{[]byte("only")}); err != nil {
		t.Fatal(err)
	}
	var got int
	if err := cl.FetchSet(w.Addr(), "s", func(rec []byte) error {
		got++
		if string(rec) != "only" {
			t.Errorf("rec = %q", rec)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("fetched %d records, want 1", got)
	}
}

// TestWorkerShutdownMessage: the shutdown protocol honours the key.
func TestWorkerShutdownMessage(t *testing.T) {
	_, workers, _ := startCluster(t, 1, 1<<20)
	w := workers[0]
	// Wrong key: refused.
	msg, err := call(w.Addr(), ShutdownReq{Auth: AuthToken("wrong")})
	if err != nil {
		t.Fatal(err)
	}
	if ok := msg.(OKResp); ok.Err == "" {
		t.Error("shutdown with wrong key must be refused")
	}
	// Right key: accepted; worker stops accepting.
	if _, err := call(w.Addr(), ShutdownReq{Auth: AuthToken(testKey)}); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleCloseWorker is idempotent.
func TestDoubleCloseWorker(t *testing.T) {
	_, workers, _ := startCluster(t, 1, 1<<20)
	if err := workers[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := workers[0].Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestPageWriterRecordsSurviveEviction: proxy-written pages spill and
// reload like any other locality set data.
func TestPageWriterRecordsSurviveEviction(t *testing.T) {
	_, workers, cl := startCluster(t, 1, 96<<10)
	w := workers[0]
	if err := cl.CreateSet("out", 16<<10, 0); err != nil {
		t.Fatal(err)
	}
	dp := NewDataProxy(w, testKey)
	pw := dp.NewPageWriter("out")
	const n = 4000
	rec := make([]byte, 64)
	for i := 0; i < n; i++ {
		rec[0], rec[1] = byte(i), byte(i>>8)
		if err := pw.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Pool().Stats().Evictions.Load() == 0 {
		t.Fatal("expected evictions")
	}
	var got int
	if err := dp.Scan("out", 2, func(_ int, rec []byte) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("scanned %d, want %d", got, n)
	}
}
